package legalchain_test

// Integration tests reproducing the paper's figures (the per-experiment
// index of DESIGN.md §4). Each test drives the corresponding artifact's
// behaviour end to end through the public API and asserts the paper's
// qualitative claims.

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"legalchain/internal/contracts"
	"legalchain/internal/core"
	"legalchain/internal/ethtypes"
	"legalchain/internal/evm"
	"legalchain/internal/web3"
)

// TestFig1_FourTierTrace traces one user action through all four tiers:
// an HTTP request (presentation) reaches the contract manager
// (business), reads the registry (data) and the chain (blockchain).
func TestFig1_FourTierTrace(t *testing.T) {
	r := newRig(t)
	u, err := r.App.Register("four_tier", "u@x.io", "pw")
	if err != nil {
		t.Fatal(err)
	}
	dep := r.deployV1(t)

	// Tier 4 (blockchain): code is on chain.
	if len(r.BC.GetCode(dep.Contract.Address)) == 0 {
		t.Fatal("blockchain tier missing code")
	}
	// Tier 3 (data): the registry row and the legal document exist.
	if _, err := r.Manager.GetRow(dep.Contract.Address); err != nil {
		t.Fatal("data tier missing row")
	}
	if _, err := r.Manager.LegalDocument(dep.Contract.Address); err != nil {
		t.Fatal("data tier missing document")
	}
	// Tier 2 (business): the manager builds the dashboard model.
	rows, err := r.App.Dashboard(u)
	if err != nil || len(rows) != 1 {
		t.Fatalf("business tier dashboard: %v", err)
	}
	// Tier 1 (presentation): the HTTP layer renders it.
	srv := httptest.NewServer(r.App.Handler())
	defer srv.Close()
	token, _ := r.App.Login("four_tier", "pw")
	req, _ := httpNewRequest("GET", srv.URL+"/dashboard", token)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "BaseRental") {
		t.Fatalf("presentation tier: %d", resp.StatusCode)
	}
}

// TestFig2_EvidenceLine builds a five-version chain and checks that the
// walked evidence line equals the deployment order, is verified, and is
// reachable from every member.
func TestFig2_EvidenceLine(t *testing.T) {
	r := newRig(t)
	deps := r.buildChainOfVersions(t, 5)
	for _, start := range deps {
		line, err := r.Manager.WalkChain(start.Contract.Address)
		if err != nil {
			t.Fatal(err)
		}
		if len(line) != 5 {
			t.Fatalf("line length %d from %s", len(line), start.Contract.Address)
		}
		for i, node := range line {
			if node.Address != deps[i].Contract.Address {
				t.Fatalf("order mismatch at %d", i)
			}
		}
		if err := core.VerifyChain(line); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFig3_DataSeparation checks the DataStorage mechanism: the new
// version can read its predecessor's data knowing only the old address.
func TestFig3_DataSeparation(t *testing.T) {
	r := newRig(t)
	v1 := r.deployV1(t)
	if err := r.Rental.Confirm(r.Tenant, v1.Contract.Address); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Rental.PayRent(r.Tenant, v1.Contract.Address); err != nil {
			t.Fatal(err)
		}
	}
	v2, err := r.Rental.Modify(r.Landlord, v1.Contract.Address, standardTerms())
	if err != nil {
		t.Fatal(err)
	}
	// New version knows its predecessor (on chain) ...
	prevAddr, err := v2.Contract.CallAddress(r.Landlord, "getPrev")
	if err != nil || prevAddr != v1.Contract.Address {
		t.Fatal("prev pointer wrong")
	}
	// ... and can read the old data from the storage contract.
	snap, err := r.Manager.LoadSnapshot(r.Landlord, prevAddr)
	if err != nil {
		t.Fatal(err)
	}
	if snap["monthCounter"] != "4" {
		t.Fatalf("old monthCounter = %q", snap["monthCounter"])
	}
}

// TestFig4_SequenceOfActions replays the sequence diagram exactly:
// upload/deploy by landlord, confirm + deposit by tenant, rent transfer
// tenant -> landlord, further months, termination with refund.
func TestFig4_SequenceOfActions(t *testing.T) {
	r := newRig(t)
	dep := r.deployV1(t)
	// Deposit moves tenant -> contract.
	if err := r.Rental.Confirm(r.Tenant, dep.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if got := r.BC.GetBalance(dep.Contract.Address); got != ethtypes.Ether(2) {
		t.Fatalf("escrowed deposit = %s", ethtypes.FormatEther(got))
	}
	// Rent moves tenant -> landlord.
	llBefore := r.BC.GetBalance(r.Landlord)
	if _, err := r.Rental.PayRent(r.Tenant, dep.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if diff := r.BC.GetBalance(r.Landlord).Sub(llBefore); diff != ethtypes.Ether(1) {
		t.Fatalf("rent received = %s", ethtypes.FormatEther(diff))
	}
	// Early termination by the tenant: half deposit penalty.
	if err := r.Rental.Terminate(r.Tenant, dep.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if got := r.BC.GetBalance(dep.Contract.Address); !got.IsZero() {
		t.Fatalf("contract kept %s after termination", ethtypes.FormatEther(got))
	}
	row, _ := r.Manager.GetRow(dep.Contract.Address)
	if row.State != core.StateTerminated {
		t.Fatal("registry row not terminated")
	}
}

// TestFig5_BaseContractArtifacts checks the compiled Fig. 5 contract:
// it fits the code-size limit, exposes the paper's members and the
// selectors are canonical keccak-derived values.
func TestFig5_BaseContractArtifacts(t *testing.T) {
	art := contracts.MustArtifact("BaseRental")
	if len(art.Runtime) > evm.MaxCodeSize {
		t.Fatalf("runtime %d exceeds EIP-170", len(art.Runtime))
	}
	for _, m := range []string{"confirmAgreement", "payRent", "terminateContract",
		"getNext", "getPrev", "setNext", "setPrev",
		"paidrents", "rent", "house", "state", "createdTimestamp"} {
		if _, ok := art.ABI.Methods[m]; !ok {
			t.Errorf("missing method %s", m)
		}
	}
	for _, e := range []string{"agreementConfirmed", "paidRent", "contractTerminated"} {
		if _, ok := art.ABI.Events[e]; !ok {
			t.Errorf("missing event %s", e)
		}
	}
	// Selector sanity: getNext() must be keccak("getNext()")[0:4].
	want := ethtypes.Keccak256([]byte("getNext()"))
	got := art.ABI.Methods["getNext"].ID()
	if string(got[:]) != string(want[:4]) {
		t.Fatal("selector derivation broken")
	}
}

// TestFig6_UpgradedContract checks the updated contract of Fig. 6: the
// inherited surface persists and the new function exists.
func TestFig6_UpgradedContract(t *testing.T) {
	art := contracts.MustArtifact("RentalAgreementV2")
	for _, m := range []string{"payRent", "payMaintenanceFee", "maintenanceFee", "discount", "fine"} {
		if _, ok := art.ABI.Methods[m]; !ok {
			t.Errorf("missing method %s", m)
		}
	}
	// The overridden payRent has the same selector as the base one —
	// clients need not change.
	base := contracts.MustArtifact("BaseRental")
	if base.ABI.Methods["payRent"].ID() != art.ABI.Methods["payRent"].ID() {
		t.Fatal("payRent selector changed across versions")
	}
}

// TestFig7_Dashboard seeds a user with each contract state and checks
// the dashboard annotations.
func TestFig7_Dashboard(t *testing.T) {
	r := newRig(t)
	landlordUser, err := r.App.Register("fig7_landlord", "l@x.io", "pw")
	if err != nil {
		t.Fatal(err)
	}
	// Deployable (awaiting tenant).
	if _, err := r.Rental.DeployRental(landlordUser.Addr(), core.RentalTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(1), Months: 6, House: "open-house",
	}); err != nil {
		t.Fatal(err)
	}
	// Another landlord's open contract: joinable.
	r.deployV1(t)
	rows, err := r.App.Dashboard(landlordUser)
	if err != nil {
		t.Fatal(err)
	}
	var sawAwaiting, sawConfirm bool
	for _, row := range rows {
		switch row.Action {
		case "AWAITING TENANT":
			sawAwaiting = true
		case "CONFIRM AGREEMENT":
			sawConfirm = true
		}
	}
	if !sawAwaiting || !sawConfirm {
		t.Fatalf("dashboard actions: %+v", rows)
	}
}

// TestFig8_DeployAndTransact is the paper's snippet as a test: deploy
// via the web3 layer, transact, read the receipt.
func TestFig8_DeployAndTransact(t *testing.T) {
	r := newRig(t)
	art := contracts.MustArtifact("DataStorage")
	bound, rcpt, err := r.Client.Deploy(web3.TxOpts{From: r.Landlord}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.ContractAddress == nil || *rcpt.ContractAddress != bound.Address {
		t.Fatal("creation receipt address mismatch")
	}
	rcpt2, err := bound.Transact(web3.TxOpts{From: r.Landlord}, "setValue",
		bound.Address, "greeting", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if rcpt2.GasUsed == 0 || !rcpt2.Succeeded() {
		t.Fatal("transact receipt")
	}
	v, err := bound.CallString(r.Landlord, "getValue", bound.Address, "greeting")
	if err != nil || v != "hello" {
		t.Fatal("call after transact")
	}
}

// TestFig9_UploadContract uploads an artifact as bytecode+ABI (the two
// files of the upload form) and deploys it from the stored copy.
func TestFig9_UploadContract(t *testing.T) {
	r := newRig(t)
	u, err := r.App.Register("fig9", "u@x.io", "pw")
	if err != nil {
		t.Fatal(err)
	}
	src := contracts.Sources()["DataStorage"]
	if _, err := r.App.CompileArtifact(u, src, "DataStorage"); err != nil {
		t.Fatal(err)
	}
	art, err := r.App.GetArtifact("DataStorage")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := r.Manager.DeployVersion(u.Addr(), art, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BC.GetCode(dep.Contract.Address)) == 0 {
		t.Fatal("uploaded artifact not deployable")
	}
}

// TestFig10_DeployViaWeb drives the deploy form over HTTP and asserts a
// row appears with an address and the receipt-backed state.
func TestFig10_DeployViaWeb(t *testing.T) {
	r := newRig(t)
	srv := httptest.NewServer(r.App.Handler())
	defer srv.Close()
	jar, _ := cookiejar.New(nil)
	c := &http.Client{Jar: jar}
	mustPost := func(path string, form url.Values) string {
		resp, err := c.PostForm(srv.URL+path, form)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %d %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	mustPost("/register", url.Values{"name": {"fig10"}, "password": {"pw"}})
	mustPost("/login", url.Values{"name": {"fig10"}, "password": {"pw"}})
	mustPost("/deploy", url.Values{
		"artifact": {"BaseRental"}, "rent": {"1"}, "deposit": {"2"},
		"months": {"12"}, "house": {"web-deployed"},
	})
	resp, err := c.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "web-deployed") {
		t.Fatalf("deployed contract missing from dashboard:\n%s", body)
	}
}

// TestFig11_TerminateModify covers the terminate-or-modify screen: both
// branches, including the tenant's reject path from the paper's
// lifecycle ("if the tenant rejects the contract the previous contract
// is terminated").
func TestFig11_TerminateModify(t *testing.T) {
	r := newRig(t)

	// Branch 1: modify then tenant ACCEPTS.
	a1 := r.deployV1(t)
	if err := r.Rental.Confirm(r.Tenant, a1.Contract.Address); err != nil {
		t.Fatal(err)
	}
	a2, err := r.Rental.Modify(r.Landlord, a1.Contract.Address, standardTerms())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Rental.ConfirmModification(r.Tenant, a2.Contract.Address); err != nil {
		t.Fatal(err)
	}
	row, _ := r.Manager.GetRow(a2.Contract.Address)
	if row.State != core.StateActive || row.Tenant == "" {
		t.Fatalf("accepted modification row: %+v", row)
	}

	// Branch 2: modify then tenant REJECTS.
	b1 := r.deployV1(t)
	if err := r.Rental.Confirm(r.Tenant, b1.Contract.Address); err != nil {
		t.Fatal(err)
	}
	b2, err := r.Rental.Modify(r.Landlord, b1.Contract.Address, standardTerms())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Rental.RejectModification(r.Tenant, b2.Contract.Address); err != nil {
		t.Fatal(err)
	}
	oldRow, _ := r.Manager.GetRow(b1.Contract.Address)
	newRow, _ := r.Manager.GetRow(b2.Contract.Address)
	if oldRow.State != core.StateTerminated || newRow.State != core.StateRejected {
		t.Fatalf("reject states: old=%s new=%s", oldRow.State, newRow.State)
	}

	// Branch 3: plain terminate.
	c1 := r.deployV1(t)
	if err := r.Rental.Confirm(r.Tenant, c1.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if err := r.Rental.Terminate(r.Landlord, c1.Contract.Address); err != nil {
		t.Fatal(err)
	}
	cRow, _ := r.Manager.GetRow(c1.Contract.Address)
	if cRow.State != core.StateTerminated {
		t.Fatal("terminate branch")
	}
}

// TestEtherConservation is the global invariant behind every experiment:
// no flow creates or destroys ether — it only moves between tenant,
// landlord, contracts and the coinbase (fees).
func TestEtherConservation(t *testing.T) {
	r := newRig(t)
	supply0 := r.BC.TotalSupply()
	dep := r.deployV1(t)
	r.Rental.Confirm(r.Tenant, dep.Contract.Address)
	for i := 0; i < 3; i++ {
		r.Rental.PayRent(r.Tenant, dep.Contract.Address)
	}
	v2, err := r.Rental.Modify(r.Landlord, dep.Contract.Address, standardTerms())
	if err != nil {
		t.Fatal(err)
	}
	r.Rental.ConfirmModification(r.Tenant, v2.Contract.Address)
	r.Rental.Terminate(r.Tenant, v2.Contract.Address)
	if got := r.BC.TotalSupply(); got != supply0 {
		t.Fatalf("supply drifted: %s -> %s", supply0, got)
	}
}
