GO ?= go

.PHONY: build test check bench race persistence-torture

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-merge gate: vet everything, run the
# concurrency-sensitive suites (state commit pipeline, chain) under the
# race detector, then the crash-recovery fault-injection suites.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/state/... ./internal/chain/...
	$(MAKE) persistence-torture

# persistence-torture runs every fault-injection suite — torn log
# tails, flipped bytes, deleted/corrupted snapshots, damaged WALs —
# under the race detector.
persistence-torture:
	$(GO) test -race ./internal/blockdb/... ./internal/docstore/...
	$(GO) test -race -run 'Restart|Torture|Genesis|WAL' ./internal/chain/... ./internal/rpc/...

race:
	$(GO) test -race ./internal/state/... ./internal/chain/... ./internal/app/...

bench:
	$(GO) test -run xxx -bench . -benchtime 3x .
	$(GO) test -run xxx -bench 'StateRoot|Copy_COW|EthCall' ./internal/state/ ./internal/chain/
	$(GO) test -run xxx -bench Recovery -benchtime 3x ./internal/chain/
