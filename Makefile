GO ?= go

.PHONY: build test check ci bench bench-smoke race persistence-torture conflict-torture fmt-check obs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-merge gate: vet everything, run the
# concurrency-sensitive suites (state commit pipeline, chain read/write
# paths, rpc, app) under the race detector, then the crash-recovery
# fault-injection suites.
check:
	$(MAKE) fmt-check
	$(GO) vet ./...
	$(GO) test -race ./internal/state/... ./internal/chain/... ./internal/rpc/... ./internal/app/... ./internal/xtrace/...
	$(MAKE) persistence-torture
	$(MAKE) conflict-torture
	$(MAKE) obs-check

# ci mirrors .github/workflows/ci.yml exactly, so the merge gate is
# reproducible locally: the build-test matrix job, the check job, and
# the bench-smoke job. If ci passes here, the workflow passes there.
ci:
	$(MAKE) build
	$(MAKE) test
	$(MAKE) check
	$(MAKE) bench-smoke

# fmt-check fails the build if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# obs-check is the instrumentation-overhead gate: it fails if the
# metrics layer or disabled span tracing slows the EthCall hot path by
# more than 5% (interleaved best-of-8 comparison per gate).
obs-check:
	OBS_CHECK=1 $(GO) test -run 'TestEthCallInstrumentationOverhead|TestEthCallTracingOverhead' -count 1 ./internal/chain/

# persistence-torture runs every fault-injection suite — torn log
# tails, flipped bytes, deleted/corrupted snapshots, damaged WALs —
# under the race detector.
persistence-torture:
	$(GO) test -race ./internal/blockdb/... ./internal/docstore/...
	$(GO) test -race -run 'Restart|Torture|Genesis|WAL' ./internal/chain/... ./internal/rpc/...

# conflict-torture stresses the optimistic-parallel executor and the
# pipelined seal under the race detector: adversarial all-conflicting
# batches (nonce chains, shared storage slots), the serial-equivalence
# property fuzz, and concurrent writers/readers over in-flight tails.
conflict-torture:
	$(GO) test -race -count 1 -run 'TestParallel|TestPipelined' ./internal/chain/

race:
	$(GO) test -race ./internal/state/... ./internal/chain/... ./internal/rpc/... ./internal/app/... ./internal/xtrace/...

bench:
	$(GO) test -run xxx -bench . -benchtime 3x .
	$(GO) test -run xxx -bench 'StateRoot|Copy_COW|EthCall' ./internal/state/ ./internal/chain/
	$(GO) test -run xxx -bench Recovery -benchtime 3x ./internal/chain/
	$(GO) test -run xxx -bench 'ParallelEthCall|ReadsDuringSeal' -benchtime 1s ./internal/chain/
	$(GO) test -run xxx -bench 'MineBlockParallel|MineLoopPipelined' -benchtime 5x ./internal/chain/

# bench-smoke is the CI-sized benchmark run: one iteration of each
# tracked benchmark, enough to catch panics and pathological
# regressions without burning runner minutes. Output lands in
# bench-smoke.txt (uploaded as a CI artifact).
bench-smoke:
	$(GO) test -run xxx -bench 'StateRoot|EthCall|Recovery|ParallelEthCall|ReadsDuringSeal|MineBlockParallel|MineLoopPipelined' -benchtime 1x ./internal/state/ ./internal/chain/ | tee bench-smoke.txt
