GO ?= go

# Pinned lint tool versions, kept in sync with .github/workflows/ci.yml.
STATICCHECK_VERSION ?= v0.6.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build test check ci lint bench bench-smoke bench-par race persistence-torture conflict-torture fmt-check obs-check metrics-doc soak slo-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-merge gate: vet everything, run the
# concurrency-sensitive suites (state commit pipeline, chain read/write
# paths, rpc, app) under the race detector, the upgrade-guard suites
# (layout-diff round-trip property included) plus the manager tier that
# exercises them end to end, then the crash-recovery fault-injection
# suites.
check:
	$(MAKE) fmt-check
	$(MAKE) metrics-doc
	$(GO) vet ./...
	$(GO) test -race ./internal/state/... ./internal/chain/... ./internal/rpc/... ./internal/app/... ./internal/xtrace/...
	$(GO) test -race -count 1 ./internal/upgrade/... ./internal/core/...
	$(MAKE) persistence-torture
	$(MAKE) conflict-torture
	$(MAKE) obs-check

# ci mirrors .github/workflows/ci.yml exactly, so the merge gate is
# reproducible locally: the build-test matrix job, the lint job, the
# check job, and the bench-smoke job. If ci passes here, the workflow
# passes there.
ci:
	$(MAKE) build
	$(MAKE) test
	$(MAKE) lint
	$(MAKE) check
	$(MAKE) bench-smoke
	$(MAKE) slo-smoke
	$(MAKE) soak

# lint mirrors the ci.yml lint job: staticcheck plus govulncheck at the
# pinned versions above. Binaries already on PATH are preferred so the
# target works offline; otherwise the pinned module versions are
# resolved through `go run` (needs network once, then the module cache).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	fi

# fmt-check fails the build if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# metrics-doc fails if a registered metric family is missing from the
# README's metrics reference table (rows: `go run ./cmd/metricsdoc -list`).
metrics-doc:
	$(GO) run ./cmd/metricsdoc

# obs-check is the instrumentation-overhead gate: it fails if the
# metrics layer or disabled span tracing slows the EthCall hot path by
# more than 5% (interleaved best-of-8 comparison per gate).
obs-check:
	OBS_CHECK=1 $(GO) test -run 'TestEthCallInstrumentationOverhead|TestEthCallTracingOverhead' -count 1 ./internal/chain/

# persistence-torture runs every fault-injection suite — torn log
# tails, flipped bytes, deleted/corrupted snapshots, damaged WALs —
# under the race detector.
persistence-torture:
	$(GO) test -race ./internal/blockdb/... ./internal/docstore/...
	$(GO) test -race -run 'Restart|Torture|Genesis|WAL' ./internal/chain/... ./internal/rpc/...

# conflict-torture stresses the optimistic-parallel executor and the
# pipelined seal under the race detector: adversarial all-conflicting
# batches (nonce chains, shared storage slots), the serial-equivalence
# property fuzz, and concurrent writers/readers over in-flight tails.
conflict-torture:
	$(GO) test -race -count 1 -run 'TestParallel|TestPipelined' ./internal/chain/

race:
	$(GO) test -race ./internal/state/... ./internal/chain/... ./internal/rpc/... ./internal/app/... ./internal/xtrace/...

# bench-host prints the parallelism the numbers were taken at — the §P6
# scaling table is meaningless without it (benchmark name suffixes also
# carry GOMAXPROCS, but only implicitly).
define BENCH_HOST
echo "bench host: $$(nproc) cores, GOMAXPROCS=$${GOMAXPROCS:-$$(nproc)} ($$(uname -s)/$$(uname -m))"
endef

bench:
	@$(BENCH_HOST)
	$(GO) test -run xxx -bench . -benchtime 3x .
	$(GO) test -run xxx -bench 'StateRoot|Copy_COW|EthCall' ./internal/state/ ./internal/chain/
	$(GO) test -run xxx -bench Recovery -benchtime 3x ./internal/chain/
	$(GO) test -run xxx -bench 'ParallelEthCall|ReadsDuringSeal' -benchtime 1s ./internal/chain/
	$(GO) test -run xxx -bench 'MineBlockParallel|MineLoopPipelined' -benchtime 5x ./internal/chain/
	$(GO) test -run xxx -bench MineLoopSubscribers -benchtime 20x ./internal/chain/

# bench-smoke is the CI-sized benchmark run: one iteration of each
# tracked benchmark, enough to catch panics and pathological
# regressions without burning runner minutes. Output lands in
# bench-smoke.txt (uploaded as a CI artifact).
bench-smoke:
	@{ $(BENCH_HOST); \
	$(GO) test -run xxx -bench 'StateRoot|EthCall|Recovery|ParallelEthCall|ReadsDuringSeal|MineBlockParallel|MineLoopPipelined|MineLoopSubscribers' -benchtime 1x ./internal/state/ ./internal/chain/; } | tee bench-smoke.txt

# bench-par is the EXPERIMENTS.md §P6 scaling table: the full
# BenchmarkMineBlockParallel sweep (workers 1/2/4/8 at three conflict
# rates, 3 repetitions for spread) on whatever parallelism the host
# offers. CI runs it on the standard 4-vCPU runner — that run is what
# makes the §P6 "re-measure on >=4 cores" numbers routine instead of a
# one-off. Output lands in bench-par.txt (uploaded as a CI artifact).
bench-par:
	@{ $(BENCH_HOST); \
	$(GO) test -run xxx -bench MineBlockParallel -benchtime 5x -count 3 -timeout 20m ./internal/chain/; } | tee bench-par.txt

# soak is the bounded-memory gate for the disk-backed state store: it
# grows the world to SOAK_ACCOUNTS accounts (default 100k; the paper
# experiment in EXPERIMENTS.md §P7 uses 1M) through per-block
# commit/evict cycles and fails if the process RSS ever exceeds
# SOAK_RSS_MB. Per-interval samples land in soak-rss.csv (uploaded as
# a CI artifact).
# slo-smoke is the latency/SLO gate for the serving tier: the loadgen
# drives SLO_USERS simulated read-only users, SLO_PAIRS full rental
# lifecycles and SLO_SUBS WebSocket newHeads subscribers against an
# in-process node for SLO_SECONDS, then fails unless read p99 stays
# under SLO_P99_READ with zero lifecycle errors, zero subscription
# gaps and zero out-of-order heads. Per-op percentiles land in
# loadgen.csv / loadgen.json (uploaded as a CI artifact).
SLO_USERS ?= 10000
SLO_PAIRS ?= 8
SLO_SUBS ?= 128
SLO_SECONDS ?= 30
SLO_P99_READ ?= 50ms
SLO_WATCH_LAG ?= 1
slo-smoke:
	$(GO) run ./cmd/loadgen -users $(SLO_USERS) -pairs $(SLO_PAIRS) \
		-subscribers $(SLO_SUBS) -duration $(SLO_SECONDS)s -think 2s \
		-gate-p99-read $(SLO_P99_READ) -gate-zero-drops \
		-gate-watch-lag $(SLO_WATCH_LAG) \
		-out loadgen.json -csv loadgen.csv
	@cat loadgen.csv

SOAK_ACCOUNTS ?= 100000
SOAK_RSS_MB ?= 512
soak:
	SOAK=1 SOAK_ACCOUNTS=$(SOAK_ACCOUNTS) SOAK_RSS_MB=$(SOAK_RSS_MB) SOAK_CSV=$(CURDIR)/soak-rss.csv \
		$(GO) test -run TestSoakDiskStateRSS -count 1 -timeout 60m -v ./internal/state/
