GO ?= go

.PHONY: build test check bench race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-merge gate: vet everything, then run the
# concurrency-sensitive suites (state commit pipeline, chain) under the
# race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/state/... ./internal/chain/...

race:
	$(GO) test -race ./internal/state/... ./internal/chain/... ./internal/app/...

bench:
	$(GO) test -run xxx -bench . -benchtime 3x .
	$(GO) test -run xxx -bench 'StateRoot|Copy_COW|EthCall' ./internal/state/ ./internal/chain/
