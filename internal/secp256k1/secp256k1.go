// Package secp256k1 implements the secp256k1 elliptic curve and the
// ECDSA operations Ethereum uses for transaction signing: deterministic
// signing (RFC 6979), verification, and public-key recovery from a
// recoverable signature (the ecrecover primitive).
//
// The standard library does not ship secp256k1 (crypto/elliptic only
// covers the NIST curves), so the group law is implemented here directly
// over math/big. Performance is adequate for a development chain; this
// is not a constant-time implementation and must not be used to guard
// production funds — a limitation shared with every devnet keystore.
package secp256k1

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"math/big"
)

// Curve parameters: y² = x³ + 7 over F_p.
var (
	// P is the field prime 2^256 - 2^32 - 977.
	P, _ = new(big.Int).SetString("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f", 16)
	// N is the group order.
	N, _ = new(big.Int).SetString("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141", 16)
	// Gx, Gy are the coordinates of the base point.
	Gx, _ = new(big.Int).SetString("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798", 16)
	Gy, _ = new(big.Int).SetString("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8", 16)

	halfN = new(big.Int).Rsh(N, 1)
	seven = big.NewInt(7)
)

// Point is an affine curve point; the point at infinity is represented
// by X == nil.
type Point struct {
	X, Y *big.Int
}

// Infinity returns the identity element.
func Infinity() Point { return Point{} }

// IsInfinity reports whether p is the identity.
func (p Point) IsInfinity() bool { return p.X == nil }

// OnCurve reports whether p satisfies the curve equation.
func (p Point) OnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	if p.X.Sign() < 0 || p.X.Cmp(P) >= 0 || p.Y.Sign() < 0 || p.Y.Cmp(P) >= 0 {
		return false
	}
	y2 := new(big.Int).Mul(p.Y, p.Y)
	y2.Mod(y2, P)
	x3 := new(big.Int).Mul(p.X, p.X)
	x3.Mul(x3, p.X)
	x3.Add(x3, seven)
	x3.Mod(x3, P)
	return y2.Cmp(x3) == 0
}

func modInverse(a *big.Int, m *big.Int) *big.Int {
	return new(big.Int).ModInverse(new(big.Int).Mod(a, m), m)
}

// Add returns p + q using the affine group law.
func Add(p, q Point) Point {
	if p.IsInfinity() {
		return q
	}
	if q.IsInfinity() {
		return p
	}
	if p.X.Cmp(q.X) == 0 {
		sum := new(big.Int).Add(p.Y, q.Y)
		sum.Mod(sum, P)
		if sum.Sign() == 0 {
			return Infinity() // p == -q
		}
		return Double(p)
	}
	// lambda = (qy - py) / (qx - px)
	num := new(big.Int).Sub(q.Y, p.Y)
	den := new(big.Int).Sub(q.X, p.X)
	lambda := num.Mul(num, modInverse(den, P))
	lambda.Mod(lambda, P)
	return chord(p, q, lambda)
}

// Double returns 2p.
func Double(p Point) Point {
	if p.IsInfinity() || p.Y.Sign() == 0 {
		return Infinity()
	}
	// lambda = 3x² / 2y
	num := new(big.Int).Mul(p.X, p.X)
	num.Mul(num, big.NewInt(3))
	den := new(big.Int).Lsh(p.Y, 1)
	lambda := num.Mul(num, modInverse(den, P))
	lambda.Mod(lambda, P)
	return chord(p, p, lambda)
}

// chord completes point addition given the slope lambda.
func chord(p, q Point, lambda *big.Int) Point {
	x := new(big.Int).Mul(lambda, lambda)
	x.Sub(x, p.X)
	x.Sub(x, q.X)
	x.Mod(x, P)
	if x.Sign() < 0 {
		x.Add(x, P)
	}
	y := new(big.Int).Sub(p.X, x)
	y.Mul(y, lambda)
	y.Sub(y, p.Y)
	y.Mod(y, P)
	if y.Sign() < 0 {
		y.Add(y, P)
	}
	return Point{X: x, Y: y}
}

// ScalarMult returns k·p (double-and-add).
func ScalarMult(p Point, k *big.Int) Point {
	k = new(big.Int).Mod(k, N)
	result := Infinity()
	addend := p
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			result = Add(result, addend)
		}
		addend = Double(addend)
	}
	return result
}

// ScalarBaseMult returns k·G.
func ScalarBaseMult(k *big.Int) Point {
	return ScalarMult(Point{X: Gx, Y: Gy}, k)
}

// PrivateKey is a secp256k1 private scalar with its public point.
type PrivateKey struct {
	D      *big.Int
	Public Point
}

// GenerateKey creates a key from crypto/rand.
func GenerateKey() (*PrivateKey, error) {
	for {
		var buf [32]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return nil, err
		}
		d := new(big.Int).SetBytes(buf[:])
		if d.Sign() > 0 && d.Cmp(N) < 0 {
			return PrivateKeyFromScalar(d), nil
		}
	}
}

// PrivateKeyFromScalar builds a key from an in-range scalar.
func PrivateKeyFromScalar(d *big.Int) *PrivateKey {
	return &PrivateKey{D: new(big.Int).Set(d), Public: ScalarBaseMult(d)}
}

// PrivateKeyFromBytes parses a 32-byte scalar.
func PrivateKeyFromBytes(b []byte) (*PrivateKey, error) {
	d := new(big.Int).SetBytes(b)
	if d.Sign() == 0 || d.Cmp(N) >= 0 {
		return nil, errors.New("secp256k1: private key out of range")
	}
	return PrivateKeyFromScalar(d), nil
}

// Bytes returns the 32-byte big-endian scalar.
func (k *PrivateKey) Bytes() []byte {
	out := make([]byte, 32)
	k.D.FillBytes(out)
	return out
}

// SerializePublic returns the 65-byte uncompressed encoding 0x04||X||Y.
func SerializePublic(p Point) []byte {
	out := make([]byte, 65)
	out[0] = 0x04
	p.X.FillBytes(out[1:33])
	p.Y.FillBytes(out[33:65])
	return out
}

// ParsePublic parses a 65-byte uncompressed public key.
func ParsePublic(b []byte) (Point, error) {
	if len(b) != 65 || b[0] != 0x04 {
		return Point{}, errors.New("secp256k1: invalid uncompressed public key")
	}
	p := Point{X: new(big.Int).SetBytes(b[1:33]), Y: new(big.Int).SetBytes(b[33:65])}
	if !p.OnCurve() || p.IsInfinity() {
		return Point{}, errors.New("secp256k1: point not on curve")
	}
	return p, nil
}

// Signature is a recoverable ECDSA signature. V is the recovery id (0/1),
// identifying which of the candidate R points was used.
type Signature struct {
	R, S *big.Int
	V    byte
}

// Serialize returns the 65-byte [R||S||V] form used in transactions.
func (sig *Signature) Serialize() []byte {
	out := make([]byte, 65)
	sig.R.FillBytes(out[:32])
	sig.S.FillBytes(out[32:64])
	out[64] = sig.V
	return out
}

// ParseSignature parses the 65-byte [R||S||V] form.
func ParseSignature(b []byte) (*Signature, error) {
	if len(b) != 65 {
		return nil, errors.New("secp256k1: signature must be 65 bytes")
	}
	sig := &Signature{
		R: new(big.Int).SetBytes(b[:32]),
		S: new(big.Int).SetBytes(b[32:64]),
		V: b[64],
	}
	if err := sig.validate(); err != nil {
		return nil, err
	}
	return sig, nil
}

func (sig *Signature) validate() error {
	if sig.R.Sign() <= 0 || sig.R.Cmp(N) >= 0 || sig.S.Sign() <= 0 || sig.S.Cmp(N) >= 0 {
		return errors.New("secp256k1: signature component out of range")
	}
	if sig.V > 1 {
		return errors.New("secp256k1: recovery id must be 0 or 1")
	}
	if sig.S.Cmp(halfN) > 0 {
		return errors.New("secp256k1: signature s not normalized (malleable)")
	}
	return nil
}

// Sign produces a deterministic (RFC 6979, HMAC-SHA256) recoverable
// signature over the 32-byte digest. S is normalized to the low half to
// rule out malleability, as Ethereum requires.
func (k *PrivateKey) Sign(digest []byte) (*Signature, error) {
	if len(digest) != 32 {
		return nil, errors.New("secp256k1: digest must be 32 bytes")
	}
	z := hashToInt(digest)
	for attempt := 0; ; attempt++ {
		kNonce := rfc6979Nonce(k.D, digest, attempt)
		if kNonce.Sign() == 0 || kNonce.Cmp(N) >= 0 {
			continue
		}
		rp := ScalarBaseMult(kNonce)
		if rp.IsInfinity() {
			continue
		}
		r := new(big.Int).Mod(rp.X, N)
		if r.Sign() == 0 {
			continue
		}
		// s = k^-1 (z + r d) mod n
		s := new(big.Int).Mul(r, k.D)
		s.Add(s, z)
		s.Mul(s, modInverse(kNonce, N))
		s.Mod(s, N)
		if s.Sign() == 0 {
			continue
		}
		v := byte(rp.Y.Bit(0))
		if rp.X.Cmp(N) >= 0 {
			// r aliased past the group order; the recovery id encoding
			// cannot express this (~2^-127 chance) — retry.
			continue
		}
		if s.Cmp(halfN) > 0 {
			s.Sub(N, s)
			v ^= 1
		}
		return &Signature{R: r, S: s, V: v}, nil
	}
}

// Verify checks a (non-recoverable) signature over digest against pub.
func Verify(pub Point, digest []byte, r, s *big.Int) bool {
	if len(digest) != 32 || pub.IsInfinity() || !pub.OnCurve() {
		return false
	}
	if r.Sign() <= 0 || r.Cmp(N) >= 0 || s.Sign() <= 0 || s.Cmp(N) >= 0 {
		return false
	}
	z := hashToInt(digest)
	w := modInverse(s, N)
	u1 := new(big.Int).Mul(z, w)
	u1.Mod(u1, N)
	u2 := new(big.Int).Mul(r, w)
	u2.Mod(u2, N)
	pt := Add(ScalarBaseMult(u1), ScalarMult(pub, u2))
	if pt.IsInfinity() {
		return false
	}
	return new(big.Int).Mod(pt.X, N).Cmp(r) == 0
}

// Recover returns the public key that produced sig over digest
// (the ecrecover primitive).
func Recover(digest []byte, sig *Signature) (Point, error) {
	if len(digest) != 32 {
		return Point{}, errors.New("secp256k1: digest must be 32 bytes")
	}
	if err := sig.validate(); err != nil {
		return Point{}, err
	}
	// Reconstruct R from x = r and the parity bit v.
	x := new(big.Int).Set(sig.R)
	y, err := liftX(x, sig.V)
	if err != nil {
		return Point{}, err
	}
	rPoint := Point{X: x, Y: y}
	// Q = r^-1 (s·R - z·G)
	z := hashToInt(digest)
	rInv := modInverse(sig.R, N)
	sR := ScalarMult(rPoint, sig.S)
	zG := ScalarBaseMult(new(big.Int).Mod(new(big.Int).Neg(z), N))
	q := ScalarMult(Add(sR, zG), rInv)
	if q.IsInfinity() || !q.OnCurve() {
		return Point{}, errors.New("secp256k1: recovery produced invalid point")
	}
	return q, nil
}

// liftX computes the curve y with the requested parity for the given x.
func liftX(x *big.Int, parity byte) (*big.Int, error) {
	if x.Cmp(P) >= 0 {
		return nil, errors.New("secp256k1: x out of field")
	}
	// y² = x³ + 7; sqrt via exponent (p+1)/4 since p ≡ 3 (mod 4).
	y2 := new(big.Int).Mul(x, x)
	y2.Mul(y2, x)
	y2.Add(y2, seven)
	y2.Mod(y2, P)
	exp := new(big.Int).Add(P, big.NewInt(1))
	exp.Rsh(exp, 2)
	y := new(big.Int).Exp(y2, exp, P)
	// Check y is actually a root.
	chk := new(big.Int).Mul(y, y)
	chk.Mod(chk, P)
	if chk.Cmp(y2) != 0 {
		return nil, errors.New("secp256k1: x has no square root (invalid signature)")
	}
	if byte(y.Bit(0)) != parity {
		y.Sub(P, y)
	}
	return y, nil
}

func hashToInt(digest []byte) *big.Int {
	return new(big.Int).SetBytes(digest)
}

// rfc6979Nonce derives the deterministic nonce k for signing. The extra
// counter folds in retry attempts (RFC 6979 §3.2 step h loop).
func rfc6979Nonce(d *big.Int, digest []byte, attempt int) *big.Int {
	x := make([]byte, 32)
	d.FillBytes(x)

	v := make([]byte, 32)
	kk := make([]byte, 32)
	for i := range v {
		v[i] = 0x01
	}

	mac := func(key []byte, chunks ...[]byte) []byte {
		m := hmac.New(sha256.New, key)
		for _, c := range chunks {
			m.Write(c)
		}
		return m.Sum(nil)
	}

	kk = mac(kk, v, []byte{0x00}, x, digest)
	v = mac(kk, v)
	kk = mac(kk, v, []byte{0x01}, x, digest)
	v = mac(kk, v)

	for i := 0; ; i++ {
		v = mac(kk, v)
		if i >= attempt {
			return new(big.Int).SetBytes(v)
		}
		kk = mac(kk, v, []byte{0x00})
		v = mac(kk, v)
	}
}
