package secp256k1

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"
)

func TestBasePointOnCurve(t *testing.T) {
	g := Point{X: Gx, Y: Gy}
	if !g.OnCurve() {
		t.Fatal("base point not on curve")
	}
	// n·G = infinity
	if !ScalarBaseMult(N).IsInfinity() {
		t.Fatal("N*G is not the identity")
	}
	// (n-1)·G = -G
	m := ScalarBaseMult(new(big.Int).Sub(N, big.NewInt(1)))
	if m.X.Cmp(Gx) != 0 {
		t.Fatal("(N-1)*G has wrong x")
	}
	if new(big.Int).Add(m.Y, Gy).Mod(new(big.Int).Add(m.Y, Gy), P).Sign() != 0 {
		t.Fatal("(N-1)*G is not -G")
	}
}

// Known scalar multiples of G (from the canonical secp256k1 test table).
func TestKnownMultiples(t *testing.T) {
	cases := []struct{ k, x, y string }{
		{"1",
			"79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798",
			"483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8"},
		{"2",
			"C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5",
			"1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A"},
		{"3",
			"F9308A019258C31049344F85F89D5229B531C845836F99B08601F113BCE036F9",
			"388F7B0F632DE8140FE337E62A37F3566500A99934C2231B6CB9FD7584B8E672"},
		{"20",
			"4CE119C96E2FA357200B559B2F7DD5A5F02D5290AFF74B03F3E471B273211C97",
			"12BA26DCB10EC1625DA61FA10A844C676162948271D96967450288EE9233DC3A"},
		{"112233445566778899",
			"A90CC3D3F3E146DAADFC74CA1372207CB4B725AE708CEF713A98EDD73D99EF29",
			"5A79D6B289610C68BC3B47F3D72F9788A26A06868B4D8E433E1E2AD76FB7DC76"},
	}
	for _, c := range cases {
		k, _ := new(big.Int).SetString(c.k, 10)
		wantX, _ := new(big.Int).SetString(c.x, 16)
		wantY, _ := new(big.Int).SetString(c.y, 16)
		got := ScalarBaseMult(k)
		if got.X.Cmp(wantX) != 0 || got.Y.Cmp(wantY) != 0 {
			t.Errorf("k=%s: got (%x, %x)", c.k, got.X, got.Y)
		}
	}
}

func TestGroupLaws(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		a := new(big.Int).Rand(r, N)
		b := new(big.Int).Rand(r, N)
		pa, pb := ScalarBaseMult(a), ScalarBaseMult(b)
		// (a+b)G == aG + bG
		sum := ScalarBaseMult(new(big.Int).Mod(new(big.Int).Add(a, b), N))
		got := Add(pa, pb)
		if (sum.IsInfinity()) != (got.IsInfinity()) {
			t.Fatal("infinity mismatch")
		}
		if !sum.IsInfinity() && (sum.X.Cmp(got.X) != 0 || sum.Y.Cmp(got.Y) != 0) {
			t.Fatalf("distributivity failed at i=%d", i)
		}
		// Commutativity
		ba := Add(pb, pa)
		if !got.IsInfinity() && (ba.X.Cmp(got.X) != 0 || ba.Y.Cmp(got.Y) != 0) {
			t.Fatal("addition not commutative")
		}
		// Identity
		idl := Add(pa, Infinity())
		if idl.X.Cmp(pa.X) != 0 {
			t.Fatal("identity law failed")
		}
	}
}

func TestSignVerifyRecover(t *testing.T) {
	key := PrivateKeyFromScalar(big.NewInt(0x1337))
	for i := 0; i < 10; i++ {
		digest := sha256.Sum256([]byte{byte(i), 0xaa})
		sig, err := key.Sign(digest[:])
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(key.Public, digest[:], sig.R, sig.S) {
			t.Fatal("verification failed")
		}
		// Deterministic: same digest ⇒ same signature.
		sig2, _ := key.Sign(digest[:])
		if sig.R.Cmp(sig2.R) != 0 || sig.S.Cmp(sig2.S) != 0 || sig.V != sig2.V {
			t.Fatal("signing is not deterministic")
		}
		// Recovery returns the signing key.
		rec, err := Recover(digest[:], sig)
		if err != nil {
			t.Fatal(err)
		}
		if rec.X.Cmp(key.Public.X) != 0 || rec.Y.Cmp(key.Public.Y) != 0 {
			t.Fatal("recovered wrong public key")
		}
		// Low-s normalization.
		if sig.S.Cmp(halfN) > 0 {
			t.Fatal("signature s not normalized")
		}
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	key := PrivateKeyFromScalar(big.NewInt(42))
	digest := sha256.Sum256([]byte("pay rent"))
	sig, _ := key.Sign(digest[:])

	other := sha256.Sum256([]byte("pay rent twice"))
	if Verify(key.Public, other[:], sig.R, sig.S) {
		t.Fatal("signature verified against wrong digest")
	}
	wrongKey := PrivateKeyFromScalar(big.NewInt(43))
	if Verify(wrongKey.Public, digest[:], sig.R, sig.S) {
		t.Fatal("signature verified against wrong key")
	}
	badS := new(big.Int).Add(sig.S, big.NewInt(1))
	if Verify(key.Public, digest[:], sig.R, badS) {
		t.Fatal("tampered s accepted")
	}
	if _, err := Recover(other[:], sig); err == nil {
		rec, _ := Recover(other[:], sig)
		if rec.X.Cmp(key.Public.X) == 0 {
			t.Fatal("recovery returned original key for wrong digest")
		}
	}
}

func TestSignatureSerialization(t *testing.T) {
	key := PrivateKeyFromScalar(big.NewInt(7777))
	digest := sha256.Sum256([]byte("serialize me"))
	sig, _ := key.Sign(digest[:])
	raw := sig.Serialize()
	if len(raw) != 65 {
		t.Fatal("signature must be 65 bytes")
	}
	back, err := ParseSignature(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.R.Cmp(sig.R) != 0 || back.S.Cmp(sig.S) != 0 || back.V != sig.V {
		t.Fatal("round trip mismatch")
	}
	// High-s must be rejected on parse.
	high := &Signature{R: sig.R, S: new(big.Int).Sub(N, big.NewInt(1)), V: 0}
	if _, err := ParseSignature(high.Serialize()); err == nil {
		t.Fatal("malleable signature accepted")
	}
}

func TestPublicKeySerialization(t *testing.T) {
	key, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	raw := SerializePublic(key.Public)
	if len(raw) != 65 || raw[0] != 0x04 {
		t.Fatal("bad uncompressed encoding")
	}
	back, err := ParsePublic(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.X.Cmp(key.Public.X) != 0 || back.Y.Cmp(key.Public.Y) != 0 {
		t.Fatal("round trip mismatch")
	}
	// Off-curve point must be rejected.
	raw[40] ^= 0x01
	if _, err := ParsePublic(raw); err == nil {
		t.Fatal("off-curve point accepted")
	}
}

func TestPrivateKeyRange(t *testing.T) {
	if _, err := PrivateKeyFromBytes(make([]byte, 32)); err == nil {
		t.Fatal("zero key accepted")
	}
	nBytes := make([]byte, 32)
	N.FillBytes(nBytes)
	if _, err := PrivateKeyFromBytes(nBytes); err == nil {
		t.Fatal("key == N accepted")
	}
	k, err := PrivateKeyFromBytes(bytes.Repeat([]byte{0x11}, 32))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k.Bytes(), bytes.Repeat([]byte{0x11}, 32)) {
		t.Fatal("Bytes round trip")
	}
}

func TestRecoverDistinctKeys(t *testing.T) {
	// Two different keys signing the same digest recover to themselves.
	digest := sha256.Sum256([]byte("shared message"))
	for _, d := range []int64{2, 3, 99999, 123456789} {
		key := PrivateKeyFromScalar(big.NewInt(d))
		sig, err := key.Sign(digest[:])
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(digest[:], sig)
		if err != nil {
			t.Fatal(err)
		}
		if rec.X.Cmp(key.Public.X) != 0 {
			t.Fatalf("key %d: wrong recovery", d)
		}
	}
}

func BenchmarkSign(b *testing.B) {
	key := PrivateKeyFromScalar(big.NewInt(0xabcdef))
	digest := sha256.Sum256([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Sign(digest[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecover(b *testing.B) {
	key := PrivateKeyFromScalar(big.NewInt(0xabcdef))
	digest := sha256.Sum256([]byte("bench"))
	sig, _ := key.Sign(digest[:])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recover(digest[:], sig); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRandomKeysSignVerifyRecover is the end-to-end property over fresh
// random keys: sign/verify/recover agree, and signatures never verify
// under a different key.
func TestRandomKeysSignVerifyRecover(t *testing.T) {
	var prev *PrivateKey
	for i := 0; i < 6; i++ {
		key, err := GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		digest := sha256.Sum256([]byte{byte(i), 0x55, byte(i * 7)})
		sig, err := key.Sign(digest[:])
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(key.Public, digest[:], sig.R, sig.S) {
			t.Fatal("self-verify failed")
		}
		rec, err := Recover(digest[:], sig)
		if err != nil || rec.X.Cmp(key.Public.X) != 0 || rec.Y.Cmp(key.Public.Y) != 0 {
			t.Fatal("recovery mismatch")
		}
		if prev != nil && Verify(prev.Public, digest[:], sig.R, sig.S) {
			t.Fatal("signature verified under unrelated key")
		}
		prev = key
	}
}
