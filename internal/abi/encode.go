package abi

import (
	"fmt"
	"math/big"

	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
	"legalchain/internal/uint256"
)

// EncodeArgs encodes values according to args using the standard
// head/tail layout.
func EncodeArgs(args []Arg, values []interface{}) ([]byte, error) {
	if len(args) != len(values) {
		return nil, fmt.Errorf("abi: argument count mismatch: %d args, %d values", len(args), len(values))
	}
	types := make([]Type, len(args))
	for i, a := range args {
		types[i] = a.Type
	}
	return encodeTuple(types, values)
}

// encodeTuple lays out a sequence of typed values: static heads inline,
// dynamic values as offsets into a shared tail.
func encodeTuple(types []Type, values []interface{}) ([]byte, error) {
	headSize := 0
	for _, t := range types {
		headSize += t.HeadSize()
	}
	var head, tail []byte
	for i, t := range types {
		enc, err := encodeValue(t, values[i])
		if err != nil {
			return nil, fmt.Errorf("abi: argument %d (%s): %w", i, t, err)
		}
		if t.IsDynamic() {
			offset := uint256.NewUint64(uint64(headSize + len(tail))).Bytes32()
			head = append(head, offset[:]...)
			tail = append(tail, enc...)
		} else {
			head = append(head, enc...)
		}
	}
	return append(head, tail...), nil
}

// encodeValue encodes one value of type t (without head/tail framing for
// dynamic members — the caller places it).
func encodeValue(t Type, v interface{}) ([]byte, error) {
	switch t.Kind {
	case KindUint, KindInt:
		n, err := toUint256(v)
		if err != nil {
			return nil, err
		}
		b := n.Bytes32()
		return b[:], nil
	case KindAddress:
		a, err := toAddress(v)
		if err != nil {
			return nil, err
		}
		return hexutil.LeftPad(a[:], 32), nil
	case KindBool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", v)
		}
		out := make([]byte, 32)
		if b {
			out[31] = 1
		}
		return out, nil
	case KindFixedBytes:
		raw, err := toBytes(v)
		if err != nil {
			return nil, err
		}
		if len(raw) != t.Size {
			return nil, fmt.Errorf("want %d bytes, got %d", t.Size, len(raw))
		}
		return hexutil.RightPad(raw, 32), nil
	case KindBytes:
		raw, err := toBytes(v)
		if err != nil {
			return nil, err
		}
		return encodeLengthPrefixed(raw), nil
	case KindString:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", v)
		}
		return encodeLengthPrefixed([]byte(s)), nil
	case KindSlice:
		items, ok := v.([]interface{})
		if !ok {
			return nil, fmt.Errorf("want []interface{}, got %T", v)
		}
		lenWord := uint256.NewUint64(uint64(len(items))).Bytes32()
		types := make([]Type, len(items))
		for i := range types {
			types[i] = *t.Elem
		}
		body, err := encodeTuple(types, items)
		if err != nil {
			return nil, err
		}
		return append(lenWord[:], body...), nil
	case KindTuple:
		items, ok := v.([]interface{})
		if !ok {
			return nil, fmt.Errorf("want []interface{} for tuple, got %T", v)
		}
		if len(items) != len(t.Components) {
			return nil, fmt.Errorf("tuple arity mismatch: want %d, got %d", len(t.Components), len(items))
		}
		types := make([]Type, len(items))
		for i, c := range t.Components {
			types[i] = c.Type
		}
		return encodeTuple(types, items)
	default:
		return nil, fmt.Errorf("unsupported kind %d", t.Kind)
	}
}

func encodeLengthPrefixed(raw []byte) []byte {
	lenWord := uint256.NewUint64(uint64(len(raw))).Bytes32()
	out := append([]byte(nil), lenWord[:]...)
	out = append(out, raw...)
	if pad := len(raw) % 32; pad != 0 {
		out = append(out, make([]byte, 32-pad)...)
	}
	return out
}

// toUint256 normalizes the numeric representations callers may pass.
func toUint256(v interface{}) (uint256.Int, error) {
	switch n := v.(type) {
	case uint256.Int:
		return n, nil
	case *big.Int:
		return uint256.FromBig(n), nil
	case uint64:
		return uint256.NewUint64(n), nil
	case int:
		if n < 0 {
			return uint256.FromBig(big.NewInt(int64(n))), nil
		}
		return uint256.NewUint64(uint64(n)), nil
	case int64:
		return uint256.FromBig(big.NewInt(n)), nil
	default:
		return uint256.Zero, fmt.Errorf("want integer, got %T", v)
	}
}

func toAddress(v interface{}) (ethtypes.Address, error) {
	switch a := v.(type) {
	case ethtypes.Address:
		return a, nil
	case string:
		raw, err := hexutil.Decode(a)
		if err != nil || len(raw) != 20 {
			return ethtypes.Address{}, fmt.Errorf("bad address string %q", a)
		}
		return ethtypes.BytesToAddress(raw), nil
	default:
		return ethtypes.Address{}, fmt.Errorf("want address, got %T", v)
	}
}

func toBytes(v interface{}) ([]byte, error) {
	switch b := v.(type) {
	case []byte:
		return b, nil
	case [32]byte:
		return b[:], nil
	case ethtypes.Hash:
		return b[:], nil
	case string:
		if raw, err := hexutil.Decode(b); err == nil {
			return raw, nil
		}
		return []byte(b), nil
	default:
		return nil, fmt.Errorf("want bytes, got %T", v)
	}
}

// DecodeArgs decodes data into the values described by args.
func DecodeArgs(args []Arg, data []byte) ([]interface{}, error) {
	types := make([]Type, len(args))
	for i, a := range args {
		types[i] = a.Type
	}
	return decodeTuple(types, data)
}

func decodeTuple(types []Type, data []byte) ([]interface{}, error) {
	out := make([]interface{}, len(types))
	offset := 0
	for i, t := range types {
		if t.IsDynamic() {
			if offset+32 > len(data) {
				return nil, fmt.Errorf("abi: truncated head at arg %d", i)
			}
			tailOff := uint256.SetBytes(data[offset : offset+32])
			if !tailOff.IsUint64() || tailOff.Uint64() > uint64(len(data)) {
				return nil, fmt.Errorf("abi: offset out of range at arg %d", i)
			}
			v, err := decodeValue(t, data[tailOff.Uint64():])
			if err != nil {
				return nil, fmt.Errorf("abi: arg %d (%s): %w", i, t, err)
			}
			out[i] = v
			offset += 32
		} else {
			sz := t.HeadSize()
			if offset+sz > len(data) {
				return nil, fmt.Errorf("abi: truncated static arg %d", i)
			}
			v, err := decodeValue(t, data[offset:offset+sz])
			if err != nil {
				return nil, fmt.Errorf("abi: arg %d (%s): %w", i, t, err)
			}
			out[i] = v
			offset += sz
		}
	}
	return out, nil
}

// decodeValue decodes one value whose encoding begins at data[0].
func decodeValue(t Type, data []byte) (interface{}, error) {
	switch t.Kind {
	case KindUint, KindInt:
		if len(data) < 32 {
			return nil, fmt.Errorf("truncated word")
		}
		return uint256.SetBytes(data[:32]), nil
	case KindAddress:
		if len(data) < 32 {
			return nil, fmt.Errorf("truncated word")
		}
		return ethtypes.BytesToAddress(data[12:32]), nil
	case KindBool:
		if len(data) < 32 {
			return nil, fmt.Errorf("truncated word")
		}
		return data[31] != 0, nil
	case KindFixedBytes:
		if len(data) < 32 {
			return nil, fmt.Errorf("truncated word")
		}
		return append([]byte(nil), data[:t.Size]...), nil
	case KindBytes:
		raw, err := decodeLengthPrefixed(data)
		if err != nil {
			return nil, err
		}
		return raw, nil
	case KindString:
		raw, err := decodeLengthPrefixed(data)
		if err != nil {
			return nil, err
		}
		return string(raw), nil
	case KindSlice:
		if len(data) < 32 {
			return nil, fmt.Errorf("truncated slice length")
		}
		n := uint256.SetBytes(data[:32])
		if !n.IsUint64() || n.Uint64() > uint64(len(data)) {
			return nil, fmt.Errorf("slice length out of range")
		}
		count := int(n.Uint64())
		types := make([]Type, count)
		for i := range types {
			types[i] = *t.Elem
		}
		return decodeTuple(types, data[32:])
	case KindTuple:
		types := make([]Type, len(t.Components))
		for i, c := range t.Components {
			types[i] = c.Type
		}
		return decodeTuple(types, data)
	default:
		return nil, fmt.Errorf("unsupported kind %d", t.Kind)
	}
}

func decodeLengthPrefixed(data []byte) ([]byte, error) {
	if len(data) < 32 {
		return nil, fmt.Errorf("truncated length")
	}
	n := uint256.SetBytes(data[:32])
	if !n.IsUint64() || 32+n.Uint64() > uint64(len(data)) {
		return nil, fmt.Errorf("length out of range")
	}
	return append([]byte(nil), data[32:32+n.Uint64()]...), nil
}
