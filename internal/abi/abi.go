package abi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"legalchain/internal/ethtypes"
)

// Method describes a callable function (or the constructor).
type Method struct {
	Name            string
	Inputs          []Arg
	Outputs         []Arg
	StateMutability string // "payable", "nonpayable", "view", "pure"
}

// Signature returns the canonical signature, e.g. "payRent()".
func (m Method) Signature() string {
	parts := make([]string, len(m.Inputs))
	for i, in := range m.Inputs {
		parts[i] = in.Type.String()
	}
	return m.Name + "(" + strings.Join(parts, ",") + ")"
}

// ID returns the 4-byte selector.
func (m Method) ID() [4]byte {
	h := ethtypes.Keccak256([]byte(m.Signature()))
	var id [4]byte
	copy(id[:], h[:4])
	return id
}

// Payable reports whether the method accepts ether.
func (m Method) Payable() bool { return m.StateMutability == "payable" }

// ReadOnly reports whether the method can be served by eth_call without
// a transaction.
func (m Method) ReadOnly() bool {
	return m.StateMutability == "view" || m.StateMutability == "pure"
}

// Event describes a log-emitting event.
type Event struct {
	Name      string
	Inputs    []Arg
	Anonymous bool
}

// Signature returns the canonical event signature.
func (e Event) Signature() string {
	parts := make([]string, len(e.Inputs))
	for i, in := range e.Inputs {
		parts[i] = in.Type.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

// Topic returns keccak(signature), the first log topic of non-anonymous
// events.
func (e Event) Topic() ethtypes.Hash {
	return ethtypes.Keccak256([]byte(e.Signature()))
}

// ABI is a contract interface: constructor, functions and events.
type ABI struct {
	Constructor *Method
	Methods     map[string]Method // by name
	Events      map[string]Event  // by name
}

// MethodByID finds a method by its 4-byte selector.
func (a *ABI) MethodByID(id []byte) (Method, bool) {
	if len(id) < 4 {
		return Method{}, false
	}
	for _, m := range a.Methods {
		mid := m.ID()
		if bytes.Equal(mid[:], id[:4]) {
			return m, true
		}
	}
	return Method{}, false
}

// EventByTopic finds an event by its topic hash.
func (a *ABI) EventByTopic(topic ethtypes.Hash) (Event, bool) {
	for _, e := range a.Events {
		if e.Topic() == topic {
			return e, true
		}
	}
	return Event{}, false
}

// Pack encodes a method call: selector followed by encoded arguments.
func (a *ABI) Pack(name string, args ...interface{}) ([]byte, error) {
	m, ok := a.Methods[name]
	if !ok {
		return nil, fmt.Errorf("abi: no method %q", name)
	}
	enc, err := EncodeArgs(m.Inputs, args)
	if err != nil {
		return nil, err
	}
	id := m.ID()
	return append(id[:], enc...), nil
}

// PackConstructor encodes constructor arguments (appended to bytecode).
func (a *ABI) PackConstructor(args ...interface{}) ([]byte, error) {
	if a.Constructor == nil {
		if len(args) != 0 {
			return nil, errors.New("abi: contract has no constructor but args given")
		}
		return nil, nil
	}
	return EncodeArgs(a.Constructor.Inputs, args)
}

// Unpack decodes the return data of a method call.
func (a *ABI) Unpack(name string, data []byte) ([]interface{}, error) {
	m, ok := a.Methods[name]
	if !ok {
		return nil, fmt.Errorf("abi: no method %q", name)
	}
	return DecodeArgs(m.Outputs, data)
}

// UnpackInput decodes the calldata arguments of a method call
// (excluding the selector).
func (a *ABI) UnpackInput(name string, data []byte) ([]interface{}, error) {
	m, ok := a.Methods[name]
	if !ok {
		return nil, fmt.Errorf("abi: no method %q", name)
	}
	return DecodeArgs(m.Inputs, data)
}

// DecodedEvent is an event log resolved against the ABI.
type DecodedEvent struct {
	Name string
	Args map[string]interface{}
	Raw  *ethtypes.Log
}

// DecodeLog resolves a log against the contract's events, decoding both
// indexed topics and the data section.
func (a *ABI) DecodeLog(log *ethtypes.Log) (*DecodedEvent, error) {
	if len(log.Topics) == 0 {
		return nil, errors.New("abi: anonymous logs unsupported")
	}
	ev, ok := a.EventByTopic(log.Topics[0])
	if !ok {
		return nil, fmt.Errorf("abi: no event with topic %s", log.Topics[0])
	}
	out := &DecodedEvent{Name: ev.Name, Args: map[string]interface{}{}, Raw: log}
	var dataArgs []Arg
	topicIdx := 1
	for _, in := range ev.Inputs {
		if in.Indexed {
			if topicIdx >= len(log.Topics) {
				return nil, errors.New("abi: missing indexed topic")
			}
			t := log.Topics[topicIdx]
			topicIdx++
			switch in.Type.Kind {
			case KindAddress:
				out.Args[in.Name] = ethtypes.BytesToAddress(t[12:])
			case KindUint, KindInt, KindBool, KindFixedBytes:
				v, err := decodeValue(in.Type, t[:])
				if err != nil {
					return nil, err
				}
				out.Args[in.Name] = v
			default:
				// Dynamic indexed values are stored as their keccak hash.
				out.Args[in.Name] = t
			}
		} else {
			dataArgs = append(dataArgs, in)
		}
	}
	values, err := DecodeArgs(dataArgs, log.Data)
	if err != nil {
		return nil, err
	}
	for i, arg := range dataArgs {
		out.Args[arg.Name] = values[i]
	}
	return out, nil
}

// jsonEntry is one element of the standard JSON ABI array.
type jsonEntry struct {
	Type            string      `json:"type"`
	Name            string      `json:"name,omitempty"`
	Inputs          []jsonParam `json:"inputs,omitempty"`
	Outputs         []jsonParam `json:"outputs,omitempty"`
	StateMutability string      `json:"stateMutability,omitempty"`
	Anonymous       bool        `json:"anonymous,omitempty"`
}

type jsonParam struct {
	Name       string      `json:"name"`
	Type       string      `json:"type"`
	Indexed    bool        `json:"indexed,omitempty"`
	Components []jsonParam `json:"components,omitempty"`
}

// ParseJSON parses a standard JSON ABI document.
func ParseJSON(data []byte) (*ABI, error) {
	var entries []jsonEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("abi: bad JSON: %w", err)
	}
	out := &ABI{Methods: map[string]Method{}, Events: map[string]Event{}}
	for _, e := range entries {
		switch e.Type {
		case "function", "":
			inputs, err := parseParams(e.Inputs)
			if err != nil {
				return nil, err
			}
			outputs, err := parseParams(e.Outputs)
			if err != nil {
				return nil, err
			}
			mut := e.StateMutability
			if mut == "" {
				mut = "nonpayable"
			}
			out.Methods[e.Name] = Method{Name: e.Name, Inputs: inputs, Outputs: outputs, StateMutability: mut}
		case "constructor":
			inputs, err := parseParams(e.Inputs)
			if err != nil {
				return nil, err
			}
			mut := e.StateMutability
			if mut == "" {
				mut = "nonpayable"
			}
			out.Constructor = &Method{Name: "", Inputs: inputs, StateMutability: mut}
		case "event":
			inputs, err := parseParams(e.Inputs)
			if err != nil {
				return nil, err
			}
			out.Events[e.Name] = Event{Name: e.Name, Inputs: inputs, Anonymous: e.Anonymous}
		case "fallback", "receive":
			// No dispatch data needed.
		default:
			return nil, fmt.Errorf("abi: unknown entry type %q", e.Type)
		}
	}
	return out, nil
}

func parseParams(params []jsonParam) ([]Arg, error) {
	out := make([]Arg, len(params))
	for i, p := range params {
		var t Type
		var err error
		if strings.HasPrefix(p.Type, "tuple") {
			comps, err := parseParams(p.Components)
			if err != nil {
				return nil, err
			}
			t = TupleOf(comps...)
			if strings.HasSuffix(p.Type, "[]") {
				t = SliceOf(t)
			}
		} else if t, err = ParseType(p.Type); err != nil {
			return nil, err
		}
		out[i] = Arg{Name: p.Name, Type: t, Indexed: p.Indexed}
	}
	return out, nil
}

// MarshalJSON renders the ABI back to the standard JSON format, so
// compiled artifacts can be stored (e.g. in IPFS, as the paper does).
func (a *ABI) MarshalJSON() ([]byte, error) {
	var entries []jsonEntry
	if a.Constructor != nil {
		entries = append(entries, jsonEntry{
			Type:            "constructor",
			Inputs:          renderParams(a.Constructor.Inputs),
			StateMutability: a.Constructor.StateMutability,
		})
	}
	names := make([]string, 0, len(a.Methods))
	for n := range a.Methods {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		m := a.Methods[n]
		entries = append(entries, jsonEntry{
			Type:            "function",
			Name:            m.Name,
			Inputs:          renderParams(m.Inputs),
			Outputs:         renderParams(m.Outputs),
			StateMutability: m.StateMutability,
		})
	}
	evNames := make([]string, 0, len(a.Events))
	for n := range a.Events {
		evNames = append(evNames, n)
	}
	sortStrings(evNames)
	for _, n := range evNames {
		e := a.Events[n]
		entries = append(entries, jsonEntry{
			Type:      "event",
			Name:      e.Name,
			Inputs:    renderParams(e.Inputs),
			Anonymous: e.Anonymous,
		})
	}
	return json.MarshalIndent(entries, "", "  ")
}

func renderParams(args []Arg) []jsonParam {
	out := make([]jsonParam, len(args))
	for i, a := range args {
		p := jsonParam{Name: a.Name, Indexed: a.Indexed}
		if a.Type.Kind == KindTuple {
			p.Type = "tuple"
			p.Components = renderParams(a.Type.Components)
		} else if a.Type.Kind == KindSlice && a.Type.Elem.Kind == KindTuple {
			p.Type = "tuple[]"
			p.Components = renderParams(a.Type.Elem.Components)
		} else {
			p.Type = a.Type.String()
		}
		out[i] = p
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// revertSelector is the selector of Error(string), the canonical revert
// reason encoding.
var revertSelector = func() [4]byte {
	h := ethtypes.Keccak256([]byte("Error(string)"))
	var id [4]byte
	copy(id[:], h[:4])
	return id
}()

// PackRevertReason encodes a revert reason string as Error(string).
func PackRevertReason(reason string) []byte {
	enc, _ := EncodeArgs([]Arg{{Name: "message", Type: StringType}}, []interface{}{reason})
	return append(revertSelector[:], enc...)
}

// UnpackRevertReason decodes an Error(string) payload; ok is false when
// the data is not a standard revert reason.
func UnpackRevertReason(data []byte) (string, bool) {
	if len(data) < 4 || !bytes.Equal(data[:4], revertSelector[:]) {
		return "", false
	}
	vals, err := DecodeArgs([]Arg{{Name: "message", Type: StringType}}, data[4:])
	if err != nil {
		return "", false
	}
	s, ok := vals[0].(string)
	return s, ok
}
