package abi

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

func TestSelectorKnown(t *testing.T) {
	m := Method{Name: "transfer", Inputs: []Arg{
		{Name: "to", Type: AddressType},
		{Name: "value", Type: Uint256Type},
	}}
	if m.Signature() != "transfer(address,uint256)" {
		t.Fatalf("signature = %s", m.Signature())
	}
	id := m.ID()
	if hex.EncodeToString(id[:]) != "a9059cbb" {
		t.Fatalf("selector = %x, want a9059cbb", id)
	}
	// baz(uint32,bool) from the Solidity ABI spec examples.
	baz := Method{Name: "baz", Inputs: []Arg{
		{Type: Type{Kind: KindUint, Bits: 32}},
		{Type: BoolType},
	}}
	bid := baz.ID()
	if hex.EncodeToString(bid[:]) != "cdcd77c0" {
		t.Fatalf("baz selector = %x, want cdcd77c0", bid)
	}
}

// The canonical example from the Solidity ABI spec:
// baz(69, true) encodes to two padded words.
func TestSpecStaticEncoding(t *testing.T) {
	enc, err := EncodeArgs([]Arg{
		{Type: Type{Kind: KindUint, Bits: 32}},
		{Type: BoolType},
	}, []interface{}{uint64(69), true})
	if err != nil {
		t.Fatal(err)
	}
	want := "0000000000000000000000000000000000000000000000000000000000000045" +
		"0000000000000000000000000000000000000000000000000000000000000001"
	if hex.EncodeToString(enc) != want {
		t.Fatalf("encoding = %x", enc)
	}
}

// sam("dave", true, [1,2,3]) from the Solidity spec (dynamic types).
func TestSpecDynamicEncoding(t *testing.T) {
	enc, err := EncodeArgs([]Arg{
		{Type: BytesType},
		{Type: BoolType},
		{Type: SliceOf(Uint256Type)},
	}, []interface{}{[]byte("dave"), true, []interface{}{uint64(1), uint64(2), uint64(3)}})
	if err != nil {
		t.Fatal(err)
	}
	want := "0000000000000000000000000000000000000000000000000000000000000060" +
		"0000000000000000000000000000000000000000000000000000000000000001" +
		"00000000000000000000000000000000000000000000000000000000000000a0" +
		"0000000000000000000000000000000000000000000000000000000000000004" +
		"6461766500000000000000000000000000000000000000000000000000000000" +
		"0000000000000000000000000000000000000000000000000000000000000003" +
		"0000000000000000000000000000000000000000000000000000000000000001" +
		"0000000000000000000000000000000000000000000000000000000000000002" +
		"0000000000000000000000000000000000000000000000000000000000000003"
	if hex.EncodeToString(enc) != want {
		t.Fatalf("encoding mismatch:\n got %x", enc)
	}
}

func sampleArgs() []Arg {
	return []Arg{
		{Name: "a", Type: Uint256Type},
		{Name: "b", Type: AddressType},
		{Name: "c", Type: BoolType},
		{Name: "d", Type: StringType},
		{Name: "e", Type: BytesType},
		{Name: "f", Type: SliceOf(Uint256Type)},
	}
}

func sampleValues(r *rand.Rand) []interface{} {
	n := r.Intn(5)
	slice := make([]interface{}, n)
	for i := range slice {
		slice[i] = uint256.NewUint64(r.Uint64())
	}
	buf := make([]byte, r.Intn(70))
	r.Read(buf)
	var a ethtypes.Address
	r.Read(a[:])
	return []interface{}{
		uint256.Int{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()},
		a,
		r.Intn(2) == 0,
		string(buf[:len(buf)/2]),
		buf,
		slice,
	}
}

// Property: decode(encode(x)) == x across random values.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	args := sampleArgs()
	for i := 0; i < 300; i++ {
		vals := sampleValues(r)
		enc, err := EncodeArgs(args, vals)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeArgs(args, enc)
		if err != nil {
			t.Fatal(err)
		}
		if back[0].(uint256.Int) != vals[0].(uint256.Int) {
			t.Fatal("uint mismatch")
		}
		if back[1].(ethtypes.Address) != vals[1].(ethtypes.Address) {
			t.Fatal("address mismatch")
		}
		if back[2].(bool) != vals[2].(bool) {
			t.Fatal("bool mismatch")
		}
		if back[3].(string) != vals[3].(string) {
			t.Fatal("string mismatch")
		}
		if !bytes.Equal(back[4].([]byte), vals[4].([]byte)) {
			t.Fatal("bytes mismatch")
		}
		gotSlice := back[5].([]interface{})
		wantSlice := vals[5].([]interface{})
		if len(gotSlice) != len(wantSlice) {
			t.Fatal("slice length mismatch")
		}
		for j := range gotSlice {
			if gotSlice[j].(uint256.Int) != wantSlice[j].(uint256.Int) {
				t.Fatal("slice element mismatch")
			}
		}
	}
}

func TestTupleEncoding(t *testing.T) {
	// struct PaidRent { uint Monthid; uint value; } — the paper's type.
	paidRent := TupleOf(
		Arg{Name: "Monthid", Type: Uint256Type},
		Arg{Name: "value", Type: Uint256Type},
	)
	args := []Arg{{Name: "rent", Type: paidRent}}
	vals := []interface{}{[]interface{}{uint64(3), uint64(1500)}}
	enc, err := EncodeArgs(args, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 64 {
		t.Fatalf("static tuple must be 64 bytes, got %d", len(enc))
	}
	back, err := DecodeArgs(args, enc)
	if err != nil {
		t.Fatal(err)
	}
	tup := back[0].([]interface{})
	if tup[0].(uint256.Int).Uint64() != 3 || tup[1].(uint256.Int).Uint64() != 1500 {
		t.Fatal("tuple round trip failed")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	doc := `[
	  {"type":"constructor","inputs":[{"name":"_rent","type":"uint256"},{"name":"_house","type":"string"}],"stateMutability":"payable"},
	  {"type":"function","name":"payRent","inputs":[],"outputs":[],"stateMutability":"payable"},
	  {"type":"function","name":"getNext","inputs":[],"outputs":[{"name":"addr","type":"address"}],"stateMutability":"view"},
	  {"type":"event","name":"paidRent","inputs":[{"name":"tenant","type":"address","indexed":true},{"name":"amount","type":"uint256","indexed":false}]}
	]`
	a, err := ParseJSON([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if a.Constructor == nil || len(a.Constructor.Inputs) != 2 {
		t.Fatal("constructor not parsed")
	}
	if !a.Methods["payRent"].Payable() {
		t.Fatal("payRent must be payable")
	}
	if !a.Methods["getNext"].ReadOnly() {
		t.Fatal("getNext must be view")
	}
	if _, ok := a.Events["paidRent"]; !ok {
		t.Fatal("event not parsed")
	}
	// Round trip through MarshalJSON.
	out, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ParseJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Methods["payRent"].ID() != a.Methods["payRent"].ID() {
		t.Fatal("selector changed across JSON round trip")
	}
	if a2.Events["paidRent"].Topic() != a.Events["paidRent"].Topic() {
		t.Fatal("topic changed across JSON round trip")
	}
}

func TestPackUnpack(t *testing.T) {
	doc := `[{"type":"function","name":"setRent","inputs":[{"name":"amount","type":"uint256"}],"outputs":[{"name":"ok","type":"bool"}]}]`
	a, err := ParseJSON([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.Pack("setRent", uint64(1500))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4+32 {
		t.Fatalf("packed length = %d", len(data))
	}
	in, err := a.UnpackInput("setRent", data[4:])
	if err != nil || in[0].(uint256.Int).Uint64() != 1500 {
		t.Fatal("input unpack failed")
	}
	if _, err := a.Pack("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
	// Outputs.
	ret, _ := EncodeArgs(a.Methods["setRent"].Outputs, []interface{}{true})
	vals, err := a.Unpack("setRent", ret)
	if err != nil || vals[0].(bool) != true {
		t.Fatal("output unpack failed")
	}
}

func TestDecodeLog(t *testing.T) {
	doc := `[{"type":"event","name":"paidRent","inputs":[
	  {"name":"tenant","type":"address","indexed":true},
	  {"name":"month","type":"uint256","indexed":false},
	  {"name":"amount","type":"uint256","indexed":false}]}]`
	a, err := ParseJSON([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	ev := a.Events["paidRent"]
	tenant := ethtypes.HexToAddress("0x00000000000000000000000000000000000000aa")
	data, _ := EncodeArgs([]Arg{
		{Name: "month", Type: Uint256Type},
		{Name: "amount", Type: Uint256Type},
	}, []interface{}{uint64(2), uint64(1500)})
	var topicAddr ethtypes.Hash
	copy(topicAddr[12:], tenant[:])
	log := &ethtypes.Log{
		Topics: []ethtypes.Hash{ev.Topic(), topicAddr},
		Data:   data,
	}
	dec, err := a.DecodeLog(log)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != "paidRent" {
		t.Fatal("event name")
	}
	if dec.Args["tenant"].(ethtypes.Address) != tenant {
		t.Fatal("indexed address")
	}
	if dec.Args["amount"].(uint256.Int).Uint64() != 1500 {
		t.Fatal("data arg")
	}
}

func TestRevertReason(t *testing.T) {
	payload := PackRevertReason("Only the landlord can terminate")
	got, ok := UnpackRevertReason(payload)
	if !ok || got != "Only the landlord can terminate" {
		t.Fatalf("revert reason round trip: %q %v", got, ok)
	}
	if _, ok := UnpackRevertReason([]byte{1, 2, 3}); ok {
		t.Fatal("garbage accepted as revert reason")
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, s := range []string{"uint7", "uint512", "int0", "bytes0", "bytes33", "map", "uint256[][]x"} {
		if _, err := ParseType(s); err == nil {
			t.Errorf("ParseType(%q) accepted", s)
		}
	}
	// Nested slices are fine.
	tt, err := ParseType("uint256[][]")
	if err != nil || tt.Kind != KindSlice || tt.Elem.Kind != KindSlice {
		t.Error("nested slice parse failed")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	args := []Arg{{Type: StringType}}
	enc, _ := EncodeArgs(args, []interface{}{"hello world"})
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeArgs(args, enc[:len(enc)-cut]); err == nil {
			// Truncation within padding can be legal; a wrong value must not appear.
			vals, _ := DecodeArgs(args, enc[:len(enc)-cut])
			if len(vals) == 1 {
				if s, ok := vals[0].(string); ok && s != "hello world" && s != "" {
					t.Fatalf("truncated decode produced garbage %q", s)
				}
			}
		}
	}
	// Malicious offset.
	bad := make([]byte, 32)
	bad[0] = 0xff
	if _, err := DecodeArgs(args, bad); err == nil {
		t.Fatal("huge offset accepted")
	}
}

func BenchmarkPackCall(b *testing.B) {
	doc := `[{"type":"function","name":"setRent","inputs":[{"name":"amount","type":"uint256"},{"name":"house","type":"string"}]}]`
	a, _ := ParseJSON([]byte(doc))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Pack("setRent", uint64(i), "12345-Main-St"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeRandomNeverPanics: arbitrary bytes against every supported
// type must error or decode, never panic.
func TestDecodeRandomNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	types := []Type{
		Uint256Type, AddressType, BoolType, StringType, BytesType,
		Bytes32Type, SliceOf(Uint256Type), SliceOf(StringType),
		TupleOf(Arg{Name: "a", Type: Uint256Type}, Arg{Name: "s", Type: StringType}),
	}
	for i := 0; i < 2000; i++ {
		buf := make([]byte, r.Intn(256))
		r.Read(buf)
		tt := types[r.Intn(len(types))]
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on type %s with %x: %v", tt, buf, p)
				}
			}()
			DecodeArgs([]Arg{{Name: "x", Type: tt}}, buf)
		}()
	}
}
