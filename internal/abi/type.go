// Package abi implements the Ethereum contract Application Binary
// Interface: the type system, argument encoding/decoding (head/tail
// layout), function selectors, event topics, and the JSON ABI format
// that the paper stores in IPFS to make deployed contract versions
// callable from their addresses alone.
package abi

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the ABI type kinds this implementation supports.
type Kind int

const (
	// KindUint is uint8..uint256.
	KindUint Kind = iota
	// KindInt is int8..int256 (two's complement).
	KindInt
	// KindAddress is a 20-byte address, padded to 32.
	KindAddress
	// KindBool is a boolean, padded to 32.
	KindBool
	// KindFixedBytes is bytes1..bytes32, right-padded.
	KindFixedBytes
	// KindBytes is a dynamic byte string.
	KindBytes
	// KindString is a dynamic UTF-8 string.
	KindString
	// KindSlice is a dynamic array T[].
	KindSlice
	// KindTuple is an (anonymous or named) tuple / struct.
	KindTuple
)

// Type describes one ABI type.
type Type struct {
	Kind       Kind
	Bits       int   // KindUint/KindInt: 8..256
	Size       int   // KindFixedBytes: 1..32
	Elem       *Type // KindSlice element
	Components []Arg // KindTuple fields
}

// Arg is a named, typed function/event parameter.
type Arg struct {
	Name    string
	Type    Type
	Indexed bool // events only
}

// Convenience constructors for the common types.
var (
	Uint256Type = Type{Kind: KindUint, Bits: 256}
	Uint8Type   = Type{Kind: KindUint, Bits: 8}
	AddressType = Type{Kind: KindAddress}
	BoolType    = Type{Kind: KindBool}
	BytesType   = Type{Kind: KindBytes}
	StringType  = Type{Kind: KindString}
	Bytes32Type = Type{Kind: KindFixedBytes, Size: 32}
)

// SliceOf returns the dynamic-array type of elem.
func SliceOf(elem Type) Type { return Type{Kind: KindSlice, Elem: &elem} }

// TupleOf returns a tuple type with the given components.
func TupleOf(components ...Arg) Type { return Type{Kind: KindTuple, Components: components} }

// String renders the canonical type name used in signatures.
func (t Type) String() string {
	switch t.Kind {
	case KindUint:
		return "uint" + strconv.Itoa(t.Bits)
	case KindInt:
		return "int" + strconv.Itoa(t.Bits)
	case KindAddress:
		return "address"
	case KindBool:
		return "bool"
	case KindFixedBytes:
		return "bytes" + strconv.Itoa(t.Size)
	case KindBytes:
		return "bytes"
	case KindString:
		return "string"
	case KindSlice:
		return t.Elem.String() + "[]"
	case KindTuple:
		names := make([]string, len(t.Components))
		for i, c := range t.Components {
			names[i] = c.Type.String()
		}
		return "(" + strings.Join(names, ",") + ")"
	default:
		return "<invalid>"
	}
}

// IsDynamic reports whether the type uses tail encoding.
func (t Type) IsDynamic() bool {
	switch t.Kind {
	case KindBytes, KindString, KindSlice:
		return true
	case KindTuple:
		for _, c := range t.Components {
			if c.Type.IsDynamic() {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// HeadSize returns the number of bytes the type occupies in the head
// section (32 for dynamic types, which store an offset).
func (t Type) HeadSize() int {
	if t.IsDynamic() {
		return 32
	}
	if t.Kind == KindTuple {
		n := 0
		for _, c := range t.Components {
			n += c.Type.HeadSize()
		}
		return n
	}
	return 32
}

// ParseType parses a canonical type name ("uint256", "address[]",
// "bytes32"). Tuples cannot be expressed in this syntax; build them with
// TupleOf (they appear in JSON ABIs with explicit components).
func ParseType(s string) (Type, error) {
	if strings.HasSuffix(s, "[]") {
		elem, err := ParseType(strings.TrimSuffix(s, "[]"))
		if err != nil {
			return Type{}, err
		}
		return SliceOf(elem), nil
	}
	switch {
	case s == "address":
		return AddressType, nil
	case s == "bool":
		return BoolType, nil
	case s == "string":
		return StringType, nil
	case s == "bytes":
		return BytesType, nil
	case s == "uint":
		return Uint256Type, nil
	case s == "int":
		return Type{Kind: KindInt, Bits: 256}, nil
	case strings.HasPrefix(s, "uint"):
		bits, err := parseBits(s[4:])
		if err != nil {
			return Type{}, fmt.Errorf("abi: bad type %q: %w", s, err)
		}
		return Type{Kind: KindUint, Bits: bits}, nil
	case strings.HasPrefix(s, "int"):
		bits, err := parseBits(s[3:])
		if err != nil {
			return Type{}, fmt.Errorf("abi: bad type %q: %w", s, err)
		}
		return Type{Kind: KindInt, Bits: bits}, nil
	case strings.HasPrefix(s, "bytes"):
		n, err := strconv.Atoi(s[5:])
		if err != nil || n < 1 || n > 32 {
			return Type{}, fmt.Errorf("abi: bad fixed bytes type %q", s)
		}
		return Type{Kind: KindFixedBytes, Size: n}, nil
	default:
		return Type{}, fmt.Errorf("abi: unknown type %q", s)
	}
}

func parseBits(s string) (int, error) {
	bits, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if bits < 8 || bits > 256 || bits%8 != 0 {
		return 0, errors.New("bits must be a multiple of 8 in [8,256]")
	}
	return bits, nil
}
