package abi

import (
	"testing"

	"legalchain/internal/uint256"
)

// TestTupleSliceEncoding covers struct arrays (PaidRent[] in the paper):
// a dynamic array of static tuples.
func TestTupleSliceEncoding(t *testing.T) {
	paidRent := TupleOf(
		Arg{Name: "Monthid", Type: Uint256Type},
		Arg{Name: "value", Type: Uint256Type},
	)
	args := []Arg{{Name: "rents", Type: SliceOf(paidRent)}}
	vals := []interface{}{[]interface{}{
		[]interface{}{uint64(1), uint64(100)},
		[]interface{}{uint64(2), uint64(200)},
		[]interface{}{uint64(3), uint64(300)},
	}}
	enc, err := EncodeArgs(args, vals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArgs(args, enc)
	if err != nil {
		t.Fatal(err)
	}
	rents := back[0].([]interface{})
	if len(rents) != 3 {
		t.Fatalf("len = %d", len(rents))
	}
	for i, r := range rents {
		tup := r.([]interface{})
		if tup[0].(uint256.Int).Uint64() != uint64(i+1) {
			t.Fatalf("month %d", i)
		}
		if tup[1].(uint256.Int).Uint64() != uint64((i+1)*100) {
			t.Fatalf("value %d", i)
		}
	}
}

// TestDynamicTuple covers tuples containing dynamic members (the whole
// tuple moves to the tail).
func TestDynamicTuple(t *testing.T) {
	person := TupleOf(
		Arg{Name: "name", Type: StringType},
		Arg{Name: "age", Type: Uint256Type},
	)
	if !person.IsDynamic() {
		t.Fatal("tuple with string must be dynamic")
	}
	args := []Arg{{Name: "p", Type: person}, {Name: "tail", Type: Uint256Type}}
	vals := []interface{}{
		[]interface{}{"eleanna", uint64(42)},
		uint64(7),
	}
	enc, err := EncodeArgs(args, vals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArgs(args, enc)
	if err != nil {
		t.Fatal(err)
	}
	tup := back[0].([]interface{})
	if tup[0].(string) != "eleanna" || tup[1].(uint256.Int).Uint64() != 42 {
		t.Fatalf("tuple = %v", tup)
	}
	if back[1].(uint256.Int).Uint64() != 7 {
		t.Fatal("trailing static arg corrupted")
	}
}

// TestSliceOfStrings covers string[].
func TestSliceOfStrings(t *testing.T) {
	args := []Arg{{Name: "xs", Type: SliceOf(StringType)}}
	vals := []interface{}{[]interface{}{"a", "bb", strings70()}}
	enc, err := EncodeArgs(args, vals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArgs(args, enc)
	if err != nil {
		t.Fatal(err)
	}
	xs := back[0].([]interface{})
	if xs[0].(string) != "a" || xs[1].(string) != "bb" || xs[2].(string) != strings70() {
		t.Fatalf("xs = %v", xs)
	}
}

func strings70() string {
	out := make([]byte, 70)
	for i := range out {
		out[i] = byte('a' + i%26)
	}
	return string(out)
}

// TestEmptySlice round-trips a zero-length array.
func TestEmptySlice(t *testing.T) {
	args := []Arg{{Name: "xs", Type: SliceOf(Uint256Type)}}
	enc, err := EncodeArgs(args, []interface{}{[]interface{}{}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArgs(args, enc)
	if err != nil {
		t.Fatal(err)
	}
	if xs := back[0].([]interface{}); len(xs) != 0 {
		t.Fatalf("xs = %v", xs)
	}
}

// TestArityMismatch checks argument count validation.
func TestArityMismatch(t *testing.T) {
	args := []Arg{{Type: Uint256Type}, {Type: BoolType}}
	if _, err := EncodeArgs(args, []interface{}{uint64(1)}); err == nil {
		t.Fatal("short values accepted")
	}
	if _, err := EncodeArgs(args, []interface{}{uint64(1), true, "x"}); err == nil {
		t.Fatal("long values accepted")
	}
	// Wrong type.
	if _, err := EncodeArgs(args, []interface{}{"str", true}); err == nil {
		t.Fatal("wrong type accepted")
	}
}
