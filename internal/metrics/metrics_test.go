package metrics

import (
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	out := expose(r)
	for _, want := range []string{
		"# TYPE test_ops_total counter", "test_ops_total 5",
		"# TYPE test_depth gauge", "test_depth 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.56 || got > 5.57 {
		t.Fatalf("sum = %v", got)
	}
	out := expose(r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.01"} 2`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestBucketMonotonicity checks the exposition invariant that bucket
// counts are cumulative and non-decreasing in le order, ending at the
// +Inf bucket == _count, under concurrent observation.
func TestBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_seconds", "m", DefBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(seed*j%97) / 1000)
			}
		}(i + 1)
	}
	wg.Wait()
	out := expose(r)
	re := regexp.MustCompile(`mono_seconds_bucket\{le="([^"]+)"\} (\d+)`)
	var prev uint64
	var last uint64
	matches := re.FindAllStringSubmatch(out, -1)
	if len(matches) != len(DefBuckets)+1 {
		t.Fatalf("want %d bucket lines, got %d", len(DefBuckets)+1, len(matches))
	}
	for _, m := range matches {
		n, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("bucket le=%s count %d < previous %d", m[1], n, prev)
		}
		prev, last = n, n
	}
	if last != 8000 || h.Count() != 8000 {
		t.Fatalf("+Inf bucket = %d, count = %d, want 8000", last, h.Count())
	}
}

func TestVecsAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_errs_total", "errors", "method", "code")
	cv.With("eth_call", "3").Add(2)
	cv.With(`weird"label\with`+"\nnewline", "-32000").Inc()
	hv := r.HistogramVec("test_rpc_seconds", "rpc latency", []float64{0.1}, "method")
	hv.With("eth_call").Observe(0.05)
	out := expose(r)
	for _, want := range []string{
		`test_errs_total{method="eth_call",code="3"} 2`,
		`test_errs_total{method="weird\"label\\with\nnewline",code="-32000"} 1`,
		`test_rpc_seconds_bucket{method="eth_call",le="0.1"} 1`,
		`test_rpc_seconds_count{method="eth_call"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The raw (unescaped) newline must not appear inside any sample line.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "weird") && !strings.Contains(line, `\n`) {
			t.Fatalf("unescaped newline in %q", line)
		}
	}
}

func TestGaugeFuncAndCollector(t *testing.T) {
	r := NewRegistry()
	depth := 3
	r.GaugeFunc("test_pool_depth", "queued", func() float64 { return float64(depth) })
	out := expose(r)
	if !strings.Contains(out, "test_pool_depth 3") {
		t.Fatalf("gauge func missing:\n%s", out)
	}
	depth = 9
	if out = expose(r); !strings.Contains(out, "test_pool_depth 9") {
		t.Fatalf("gauge func not live:\n%s", out)
	}
}

func TestDefaultRegistryRuntimeCollector(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "process_uptime_seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime collector missing %q", want)
		}
	}
}

func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_gate_total", "gated")
	h := r.Histogram("test_gate_seconds", "gated", nil)
	SetEnabled(false)
	c.Inc()
	h.Observe(1)
	h.ObserveSince(time.Now())
	SetEnabled(true)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled instruments moved: %d %d", c.Value(), h.Count())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not move")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "b")
}

func expose(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}
