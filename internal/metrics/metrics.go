// Package metrics is a dependency-free instrumentation substrate for
// the whole stack: atomic counters, gauges and fixed-bucket histograms
// registered in a process-wide registry and exposed in the Prometheus
// text format (version 0.0.4). Every tier — JSON-RPC, chain, EVM,
// blockdb, docstore, web app — records into package-level instruments
// created at init, so a single scrape of /metrics answers "which tier
// is the bottleneck" without attaching a profiler.
//
// Instruments are safe for concurrent use and cost a few atomic
// operations per observation. SetEnabled(false) turns every observation
// into a single atomic load, which the obs-check overhead gate uses to
// prove the instrumented hot path stays within 5% of the bare one.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every observation. Default on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns observation on or off process-wide. Registration and
// exposition are unaffected; disabled instruments simply stop moving.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether observations are being recorded.
func Enabled() bool { return enabled.Load() }

// DefBuckets are the default latency buckets in seconds, spanning 50µs
// (an in-memory state read) to 10s (a pathological fsync stall).
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// --- instruments -----------------------------------------------------------

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Buckets are upper bounds
// (Prometheus "le" semantics); an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, updated by CAS
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if !enabled.Load() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// --- label vectors ---------------------------------------------------------

// labelKey joins label values into a map key; 0xff cannot appear in
// valid UTF-8 label values, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Counter
	order    []string // insertion-ordered keys for stable exposition
}

// With returns (creating if needed) the counter for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: want %d label values, got %d", len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = &Counter{}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Gauge
	order    []string
}

// With returns (creating if needed) the gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: want %d label values, got %d", len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.RLock()
	g := v.children[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[key]; g == nil {
		g = &Gauge{}
		v.children[key] = g
		v.order = append(v.order, key)
	}
	return g
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
	order    []string
}

// With returns (creating if needed) the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: want %d label values, got %d", len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h == nil {
		h = newHistogram(v.bounds)
		v.children[key] = h
		v.order = append(v.order, key)
	}
	return h
}

// --- registry --------------------------------------------------------------

// family is one named metric family in a registry.
type family struct {
	name, help, typ string
	write           func(w io.Writer)
	raw             func(w io.Writer) // collector family: writes everything itself
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	names map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// Default is the process-wide registry every package-level instrument
// registers into.
var Default = NewRegistry()

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f.name != "" && r.names[f.name] {
		panic("metrics: duplicate metric " + f.name)
	}
	if f.name != "" {
		r.names[f.name] = true
	}
	r.fams = append(r.fams, f)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", write: func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(float64(c.Value())))
	}})
	return c
}

// CounterVec registers and returns a new labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: map[string]*Counter{}}
	r.register(&family{name: name, help: help, typ: "counter", write: func(w io.Writer) {
		v.mu.RLock()
		defer v.mu.RUnlock()
		for _, key := range v.order {
			fmt.Fprintf(w, "%s{%s} %s\n", name, formatLabels(labels, strings.Split(key, "\xff")),
				formatFloat(float64(v.children[key].Value())))
		}
	}})
	return v
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", write: func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(float64(g.Value())))
	}})
	return g
}

// GaugeVec registers and returns a new labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{labels: labels, children: map[string]*Gauge{}}
	r.register(&family{name: name, help: help, typ: "gauge", write: func(w io.Writer) {
		v.mu.RLock()
		defer v.mu.RUnlock()
		for _, key := range v.order {
			fmt.Fprintf(w, "%s{%s} %s\n", name, formatLabels(labels, strings.Split(key, "\xff")),
				formatFloat(float64(v.children[key].Value())))
		}
	}})
	return v
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", write: func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	}})
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, typ: "histogram", write: func(w io.Writer) {
		writeHistogram(w, name, "", h)
	}})
	return h
}

// HistogramVec registers and returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	v := &HistogramVec{labels: labels, bounds: bounds, children: map[string]*Histogram{}}
	r.register(&family{name: name, help: help, typ: "histogram", write: func(w io.Writer) {
		v.mu.RLock()
		defer v.mu.RUnlock()
		for _, key := range v.order {
			writeHistogram(w, name, formatLabels(labels, strings.Split(key, "\xff")), v.children[key])
		}
	}})
	return v
}

// RegisterCollector adds a family that writes its own fully formed
// exposition lines (HELP/TYPE included) at scrape time — used by the
// Go-runtime collector, which gathers everything in one ReadMemStats.
func (r *Registry) RegisterCollector(fn func(w io.Writer)) {
	r.register(&family{raw: fn})
}

// FamilyInfo describes one registered metric family.
type FamilyInfo struct {
	Name string
	Type string
	Help string
}

// Families returns the registered families in registration order.
// Collector families (RegisterCollector) have no declared name — they
// write their own exposition lines at scrape time — and are skipped.
// This is the inventory `make metrics-doc` diffs against the README.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(r.fams))
	for _, f := range r.fams {
		if f.name == "" {
			continue
		}
		out = append(out, FamilyInfo{Name: f.name, Type: f.typ, Help: f.help})
	}
	return out
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if f.raw != nil {
			f.raw(w)
			continue
		}
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.write(w)
	}
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }

// --- exposition helpers ----------------------------------------------------

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	// Bucket counts are cumulative in the exposition format.
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, bucketPrefix(labels), formatFloat(ub), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, bucketPrefix(labels), cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
	}
}

func bucketPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// formatLabels renders name="value" pairs with exposition-format
// escaping of the values.
func formatLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// EscapeLabel escapes a label value per the text exposition format:
// backslash, double-quote and newline must be escaped.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
