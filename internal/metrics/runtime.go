package metrics

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// The process/Go-runtime collector gathers everything from one
// runtime.ReadMemStats call per scrape, so scraping stays cheap and the
// numbers within a scrape are mutually consistent.

var processStart = time.Now()

func init() {
	Default.RegisterCollector(writeRuntimeMetrics)
}

func writeRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	gauge("go_goroutines", "Number of goroutines that currently exist.", float64(runtime.NumGoroutine()))
	gauge("go_threads_max", "GOMAXPROCS setting.", float64(runtime.GOMAXPROCS(0)))
	gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	gauge("go_memstats_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
	gauge("go_memstats_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects))
	gauge("go_memstats_stack_inuse_bytes", "Bytes in stack spans in use.", float64(ms.StackInuse))
	gauge("go_memstats_next_gc_bytes", "Heap size at which the next GC cycle starts.", float64(ms.NextGC))
	counter("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", float64(ms.TotalAlloc))
	counter("go_memstats_mallocs_total", "Cumulative count of heap allocations.", float64(ms.Mallocs))
	counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	counter("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9)
	gauge("process_start_time_seconds", "Unix time the process started.", float64(processStart.Unix()))
	gauge("process_uptime_seconds", "Seconds since the process started.", time.Since(processStart).Seconds())
	gauge("process_cpu_count", "Number of logical CPUs usable by the process.", float64(runtime.NumCPU()))
}
