package ws

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// pair spins up an HTTP server whose handler upgrades to WebSocket and
// hands the server conn to the test via a channel, then dials it.
func pair(t *testing.T) (client, server *Conn) {
	t.Helper()
	serverCh := make(chan *Conn, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		serverCh <- c
	}))
	t.Cleanup(srv.Close)
	c, err := Dial("ws"+strings.TrimPrefix(srv.URL, "http"), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close(CloseGoingAway, "") })
	select {
	case s := <-serverCh:
		t.Cleanup(func() { s.Close(CloseGoingAway, "") })
		return c, s
	case <-time.After(5 * time.Second):
		t.Fatal("server conn never arrived")
		return nil, nil
	}
}

func TestAcceptKeyRFCExample(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("acceptKey = %q, want %q", got, want)
	}
}

func TestEcho(t *testing.T) {
	c, s := pair(t)
	go func() {
		for {
			op, msg, err := s.ReadMessage()
			if err != nil {
				return
			}
			s.WriteMessage(op, msg)
		}
	}()
	for _, msg := range []string{"hello", "", strings.Repeat("x", 70000)} {
		if err := c.WriteText(msg); err != nil {
			t.Fatalf("write: %v", err)
		}
		op, got, err := c.ReadMessage()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if op != OpText || string(got) != msg {
			t.Fatalf("echo mismatch: op=%d len=%d want len=%d", op, len(got), len(msg))
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	c, s := pair(t)
	payload := []byte{0, 1, 2, 0xFF, 0xFE}
	if err := s.WriteMessage(OpBinary, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	op, got, err := c.ReadMessage()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if op != OpBinary || !bytes.Equal(got, payload) {
		t.Fatalf("got op=%d %v", op, got)
	}
}

func TestPingAnsweredTransparently(t *testing.T) {
	c, s := pair(t)
	if err := c.Ping([]byte("are-you-there")); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// The server's next ReadMessage should answer the ping internally
	// and then deliver the data message that follows it.
	if err := c.WriteText("after-ping"); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, msg, err := s.ReadMessage()
	if err != nil {
		t.Fatalf("server read: %v", err)
	}
	if string(msg) != "after-ping" {
		t.Fatalf("server got %q", msg)
	}
}

func TestCloseCodeAndReason(t *testing.T) {
	c, s := pair(t)
	go s.Close(ClosePolicyViolation, "too slow")
	_, _, err := c.ReadMessage()
	var ce *CloseError
	if !errors.As(err, &ce) {
		t.Fatalf("want CloseError, got %v", err)
	}
	if ce.Code != ClosePolicyViolation || ce.Reason != "too slow" {
		t.Fatalf("got %d %q", ce.Code, ce.Reason)
	}
}

func TestCloseReasonTruncated(t *testing.T) {
	c, s := pair(t)
	long := strings.Repeat("r", 300)
	go s.Close(CloseNormal, long)
	_, _, err := c.ReadMessage()
	var ce *CloseError
	if !errors.As(err, &ce) {
		t.Fatalf("want CloseError, got %v", err)
	}
	if len(ce.Reason) != MaxCloseReason {
		t.Fatalf("reason length %d, want %d", len(ce.Reason), MaxCloseReason)
	}
}

func TestConcurrentWriters(t *testing.T) {
	c, s := pair(t)
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.WriteText("msg"); err != nil {
					return
				}
			}
		}()
	}
	got := 0
	for got < writers*per {
		_, msg, err := c.ReadMessage()
		if err != nil {
			t.Fatalf("read after %d: %v", got, err)
		}
		if string(msg) != "msg" {
			t.Fatalf("corrupt frame: %q", msg)
		}
		got++
	}
	wg.Wait()
}

func TestUpgradeRejectsNonWebSocket(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("upgrade accepted a plain GET")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusSwitchingProtocols {
		t.Fatal("plain GET was upgraded")
	}
}

func TestMessageSizeLimit(t *testing.T) {
	c, s := pair(t)
	s.MaxMessage = 16
	if err := c.WriteText(strings.Repeat("x", 64)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := s.ReadMessage(); err == nil {
		t.Fatal("oversize message accepted")
	}
}
