// Package ws is a minimal RFC 6455 WebSocket implementation built on
// the standard library only. It covers exactly what the subscription
// tier needs — server-side upgrade, client-side dial, text/binary
// messages, ping/pong and close handshakes — and nothing else: no
// extensions, no compression, no subprotocol negotiation.
//
// A Conn is safe for one concurrent reader and one concurrent writer;
// writes are serialised internally so control frames (pong, close) may
// be sent from the read loop while another goroutine streams data.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Frame opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// Close status codes (RFC 6455 §7.4.1).
const (
	CloseNormal          = 1000
	CloseGoingAway       = 1001
	CloseProtocolError   = 1002
	CloseUnsupported     = 1003
	CloseInvalidPayload  = 1007
	ClosePolicyViolation = 1008
	CloseTooLarge        = 1009
	CloseInternalError   = 1011
)

// magicGUID is the fixed key-digest suffix from RFC 6455 §1.3.
const magicGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// maxControlPayload is the RFC limit for control-frame payloads; a
// close frame spends two of those bytes on the status code.
const maxControlPayload = 125

// MaxCloseReason is the longest close-reason text that fits a close
// frame next to its 2-byte status code.
const MaxCloseReason = maxControlPayload - 2

// DefaultMaxMessage bounds incoming message size; a peer exceeding it
// gets a 1009 close. Subscription traffic is small JSON, so 4 MiB is
// generous.
const DefaultMaxMessage = 4 << 20

// CloseError is returned by Read methods once the peer has sent a
// close frame (or the connection is locally closed).
type CloseError struct {
	Code   int
	Reason string
}

func (e *CloseError) Error() string {
	return fmt.Sprintf("ws: closed %d %q", e.Code, e.Reason)
}

// ErrBadHandshake is returned by Dial when the server does not
// complete the RFC 6455 upgrade.
var ErrBadHandshake = errors.New("ws: bad handshake")

// Conn is an established WebSocket connection.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // true: we mask outgoing frames; false: we require masked incoming

	wmu       sync.Mutex // serialises whole frames onto conn
	closeOnce sync.Once
	closeSent bool

	// MaxMessage bounds the total size of an incoming (possibly
	// fragmented) message. Zero means DefaultMaxMessage.
	MaxMessage int64
}

// acceptKey computes the Sec-WebSocket-Accept digest for a key.
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + magicGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade hijacks an HTTP request and completes the server side of the
// RFC 6455 opening handshake. On error it has already written an HTTP
// error response.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: method must be GET", http.StatusMethodNotAllowed)
		return nil, errors.New("ws: method not GET")
	}
	if !tokenListContains(r.Header.Get("Connection"), "upgrade") {
		http.Error(w, "websocket: Connection header must include upgrade", http.StatusBadRequest)
		return nil, errors.New("ws: missing Connection: upgrade")
	}
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket: Upgrade header must be websocket", http.StatusBadRequest)
		return nil, errors.New("ws: missing Upgrade: websocket")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "websocket: unsupported version", http.StatusUpgradeRequired)
		return nil, errors.New("ws: unsupported version")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("ws: missing key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: response does not support hijacking", http.StatusInternalServerError)
		return nil, errors.New("ws: not a hijacker")
	}
	netConn, rw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "websocket: hijack failed", http.StatusInternalServerError)
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := netConn.Write([]byte(resp)); err != nil {
		netConn.Close()
		return nil, fmt.Errorf("ws: write handshake: %w", err)
	}
	return &Conn{conn: netConn, br: rw.Reader, client: false}, nil
}

// tokenListContains reports whether a comma-separated header value
// contains token (case-insensitive) — Connection can be "keep-alive,
// Upgrade".
func tokenListContains(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Dial opens a client WebSocket connection to url ("ws://host:port/path").
func Dial(rawURL string, timeout time.Duration) (*Conn, error) {
	rest, ok := strings.CutPrefix(rawURL, "ws://")
	if !ok {
		return nil, fmt.Errorf("ws: unsupported url %q (only ws:// is implemented)", rawURL)
	}
	host := rest
	path := "/"
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		host, path = rest[:i], rest[i:]
	}
	if !strings.Contains(host, ":") {
		host += ":80"
	}
	d := net.Dialer{Timeout: timeout}
	netConn, err := d.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		netConn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if timeout > 0 {
		netConn.SetDeadline(time.Now().Add(timeout))
	}
	if _, err := netConn.Write([]byte(req)); err != nil {
		netConn.Close()
		return nil, err
	}
	br := bufio.NewReader(netConn)
	status, err := br.ReadString('\n')
	if err != nil {
		netConn.Close()
		return nil, err
	}
	if !strings.Contains(status, "101") {
		netConn.Close()
		return nil, fmt.Errorf("%w: %s", ErrBadHandshake, strings.TrimSpace(status))
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			netConn.Close()
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if name, value, ok := strings.Cut(line, ":"); ok &&
			strings.EqualFold(strings.TrimSpace(name), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(value)
		}
	}
	if accept != acceptKey(key) {
		netConn.Close()
		return nil, fmt.Errorf("%w: Sec-WebSocket-Accept mismatch", ErrBadHandshake)
	}
	netConn.SetDeadline(time.Time{})
	return &Conn{conn: netConn, br: br, client: true}, nil
}

// SetReadDeadline bounds the next ReadMessage call.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// writeFrame sends one frame with FIN set.
func (c *Conn) writeFrame(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closeSent && opcode != opClose {
		return net.ErrClosed
	}
	return c.writeFrameLocked(opcode, payload)
}

func (c *Conn) writeFrameLocked(opcode byte, payload []byte) error {
	var hdr [14]byte
	hdr[0] = 0x80 | opcode // FIN + opcode
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) < 1<<16:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80 // MASK bit
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		copy(hdr[n:], mask[:])
		n += 4
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i&3]
		}
		payload = masked
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// WriteMessage sends one complete text or binary message.
func (c *Conn) WriteMessage(opcode byte, payload []byte) error {
	if opcode != OpText && opcode != OpBinary {
		return fmt.Errorf("ws: WriteMessage opcode %#x", opcode)
	}
	return c.writeFrame(opcode, payload)
}

// WriteText sends s as a text message.
func (c *Conn) WriteText(s string) error { return c.writeFrame(OpText, []byte(s)) }

// Ping sends a ping control frame.
func (c *Conn) Ping(data []byte) error {
	if len(data) > maxControlPayload {
		data = data[:maxControlPayload]
	}
	return c.writeFrame(opPing, data)
}

// Close sends a close frame with the given status code and reason
// (truncated to MaxCloseReason bytes) and closes the connection. Safe
// to call multiple times; only the first wins.
func (c *Conn) Close(code int, reason string) error {
	var err error
	c.closeOnce.Do(func() {
		if len(reason) > MaxCloseReason {
			reason = reason[:MaxCloseReason]
		}
		payload := make([]byte, 2+len(reason))
		binary.BigEndian.PutUint16(payload, uint16(code))
		copy(payload[2:], reason)
		c.wmu.Lock()
		werr := c.writeFrameLocked(opClose, payload)
		c.closeSent = true
		c.wmu.Unlock()
		// Give the peer a moment to read the close frame, then drop
		// the TCP connection either way.
		cerr := c.conn.Close()
		if werr != nil {
			err = werr
		} else {
			err = cerr
		}
	})
	return err
}

// readFrame reads one frame, unmasking if needed. It enforces the
// client/server masking rules from RFC 6455 §5.1.
func (c *Conn) readFrame() (opcode byte, fin bool, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, false, nil, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return 0, false, nil, errors.New("ws: reserved bits set (extensions are not negotiated)")
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	max := c.MaxMessage
	if max == 0 {
		max = DefaultMaxMessage
	}
	if length > uint64(max) {
		return 0, false, nil, fmt.Errorf("ws: frame of %d bytes exceeds limit %d", length, max)
	}
	if !c.client && !masked {
		return 0, false, nil, errors.New("ws: client frame not masked")
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return 0, false, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return 0, false, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return opcode, fin, payload, nil
}

// ReadMessage reads the next complete data message, transparently
// answering pings and reassembling fragments. When the peer closes, it
// returns a *CloseError carrying the peer's status code and reason.
func (c *Conn) ReadMessage() (opcode byte, payload []byte, err error) {
	var msg []byte
	var msgOp byte
	for {
		op, fin, data, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case opPing:
			if len(data) > maxControlPayload {
				data = data[:maxControlPayload]
			}
			if err := c.writeFrame(opPong, data); err != nil {
				return 0, nil, err
			}
			continue
		case opPong:
			continue
		case opClose:
			ce := &CloseError{Code: CloseNormal}
			if len(data) >= 2 {
				ce.Code = int(binary.BigEndian.Uint16(data[:2]))
				ce.Reason = string(data[2:])
			}
			// Echo the close and tear down (RFC 6455 §5.5.1).
			c.Close(ce.Code, "")
			return 0, nil, ce
		case OpText, OpBinary:
			if msg != nil {
				return 0, nil, errors.New("ws: new data frame inside fragmented message")
			}
			if fin {
				return op, data, nil
			}
			msgOp, msg = op, data
		case opContinuation:
			if msg == nil {
				return 0, nil, errors.New("ws: continuation without start frame")
			}
			max := c.MaxMessage
			if max == 0 {
				max = DefaultMaxMessage
			}
			if int64(len(msg))+int64(len(data)) > max {
				return 0, nil, fmt.Errorf("ws: message exceeds limit %d", max)
			}
			msg = append(msg, data...)
			if fin {
				return msgOp, msg, nil
			}
		default:
			return 0, nil, fmt.Errorf("ws: unknown opcode %#x", op)
		}
	}
}
