// Package obs is the request-observability layer shared by every HTTP
// surface of the system (JSON-RPC endpoint, web application, REST API):
// structured request logging via log/slog, per-request IDs propagated
// through context.Context and the X-Request-Id header, and per-route
// HTTP metrics recorded into internal/metrics.
//
// The intended stack, outermost first:
//
//	obs.LogRequests(logger, ...)   // one JSON line per request, assigns the ID
//	obs.InstrumentHandler(route, ...) // per-route latency/error metrics
//	<application handler>
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"legalchain/internal/metrics"
	"legalchain/internal/xtrace"
)

// ctxKey carries the request ID through a context.
type ctxKey struct{}

var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID. Randomness
// failures fall back to a process-local sequence — IDs must never be
// the reason a request fails.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "seq-" + strconv.FormatUint(reqSeq.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns ctx annotated with the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom extracts the request ID from ctx ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// RequestIDHeader is the header the middleware reads and writes.
const RequestIDHeader = "X-Request-Id"

// NewLogger builds a JSON slog logger at the given level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel maps a -log-level flag value to a slog.Level (info when
// unrecognised).
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// --- HTTP metrics ----------------------------------------------------------

var (
	httpInFlight = metrics.Default.Gauge("legalchain_http_in_flight",
		"HTTP requests currently being served across all instrumented routes.")
	httpRequests = metrics.Default.CounterVec("legalchain_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	httpSeconds = metrics.Default.HistogramVec("legalchain_http_request_seconds",
		"HTTP request latency by route pattern.", nil, "route")
)

// StatusWriter wraps a ResponseWriter to capture the status code and
// body size for logging and metrics.
type StatusWriter struct {
	http.ResponseWriter
	Status int
	Bytes  int64
}

// WrapWriter returns w as a *StatusWriter (idempotent).
func WrapWriter(w http.ResponseWriter) *StatusWriter {
	if sw, ok := w.(*StatusWriter); ok {
		return sw
	}
	return &StatusWriter{ResponseWriter: w, Status: http.StatusOK}
}

// WriteHeader records the status code.
func (sw *StatusWriter) WriteHeader(code int) {
	sw.Status = code
	sw.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes.
func (sw *StatusWriter) Write(p []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(p)
	sw.Bytes += int64(n)
	return n, err
}

// Unwrap exposes the wrapped writer so http.ResponseController can
// reach Flush/Hijack through the instrumentation (SSE, WebSocket).
func (sw *StatusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// InstrumentHandler records in-flight, latency and status-code metrics
// for one route pattern. Use the mux pattern, never the raw request
// path, to keep label cardinality bounded.
func InstrumentHandler(route string, next http.Handler) http.Handler {
	hist := httpSeconds.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		httpInFlight.Inc()
		defer httpInFlight.Dec()
		sw := WrapWriter(w)
		next.ServeHTTP(sw, r)
		hist.ObserveSince(t0)
		httpRequests.With(route, strconv.Itoa(sw.Status)).Inc()
	})
}

// LogRequests assigns each request an ID (reusing an inbound
// X-Request-Id when present), reflects it in the response headers and
// context, opens the root span of the request's trace (the trace ID is
// the request ID, so logs, error envelopes and traces join on one key),
// and emits one structured log line per request. A nil logger still
// propagates IDs and spans but logs nothing.
func LogRequests(l *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		ctx, span := xtrace.StartRoot(WithRequestID(r.Context(), rid), "http", r.Method+" "+r.URL.Path, rid)
		r = r.WithContext(ctx)
		t0 := time.Now()
		sw := WrapWriter(w)
		next.ServeHTTP(sw, r)
		span.SetAttr("status", strconv.Itoa(sw.Status))
		span.End()
		if l == nil {
			return
		}
		l.LogAttrs(r.Context(), slog.LevelInfo, "http_request",
			slog.String("id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.Status),
			slog.Int64("bytes", sw.Bytes),
			slog.Duration("duration", time.Since(t0)),
			slog.String("remote", r.RemoteAddr),
		)
	})
}
