package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"legalchain/internal/metrics"
)

func TestRequestIDRoundTrip(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Fatalf("id %q: want 16 hex chars", id)
	}
	ctx := WithRequestID(t.Context(), id)
	if got := RequestIDFrom(ctx); got != id {
		t.Fatalf("got %q want %q", got, id)
	}
	if RequestIDFrom(t.Context()) != "" {
		t.Fatal("empty context should yield empty id")
	}
}

func TestLogRequestsAssignsAndReusesID(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo)
	var seen string
	h := LogRequests(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))

	// Fresh ID assigned and reflected.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	rid := rec.Header().Get(RequestIDHeader)
	if rid == "" || rid != seen {
		t.Fatalf("header id %q, context id %q", rid, seen)
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if line["id"] != rid || line["status"] != float64(http.StatusTeapot) || line["path"] != "/x" {
		t.Fatalf("bad log line: %v", line)
	}
	if line["bytes"] != float64(len("short and stout")) {
		t.Fatalf("bytes = %v", line["bytes"])
	}

	// Inbound ID reused.
	req := httptest.NewRequest("GET", "/y", nil)
	req.Header.Set(RequestIDHeader, "caller-chosen")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "caller-chosen" || rec.Header().Get(RequestIDHeader) != "caller-chosen" {
		t.Fatalf("inbound id not propagated: %q", seen)
	}
}

func TestLogRequestsNilLogger(t *testing.T) {
	h := LogRequests(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if RequestIDFrom(r.Context()) == "" {
			t.Error("nil logger should still assign ids")
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestWrapWriterIdempotentAndUnwrap(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := WrapWriter(rec)
	if again := WrapWriter(sw); again != sw {
		t.Fatal("WrapWriter should not double-wrap")
	}
	if sw.Unwrap() != http.ResponseWriter(rec) {
		t.Fatal("Unwrap should expose the inner writer")
	}
}

// TestStatusWriterFlushThroughController is the SSE path: the stream
// handler flushes through http.ResponseController, which must find the
// inner Flusher via StatusWriter.Unwrap even under the full middleware
// stack.
func TestStatusWriterFlushThroughController(t *testing.T) {
	h := LogRequests(nil, InstrumentHandler("/stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(*StatusWriter); !ok {
			t.Errorf("handler saw %T, want *StatusWriter", w)
		}
		w.Write([]byte("event: ping\n\n"))
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("flush through instrumented writer: %v", err)
		}
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !rec.Flushed {
		t.Fatal("flush did not reach the underlying writer")
	}
	if rec.Body.String() != "event: ping\n\n" {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestInstrumentHandler(t *testing.T) {
	before := httpRequests.With("/test-route", "404").Value()
	h := InstrumentHandler("/test-route", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/test-route/abc", nil))
	}
	if got := httpRequests.With("/test-route", "404").Value(); got != before+3 {
		t.Fatalf("requests counter = %d, want %d", got, before+3)
	}
	var b strings.Builder
	metrics.Default.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`legalchain_http_requests_total{route="/test-route",code="404"}`,
		`legalchain_http_request_seconds_bucket{route="/test-route",le="+Inf"}`,
		"legalchain_http_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}
