package obs

import (
	"time"

	"legalchain/internal/chain"
)

// ChainHealth summarises the blockchain tier for /healthz: the sealed
// head, how stale the published read view is, the txpool depth, and —
// for durable chains — what crash recovery found on the last start.
// devnet and rentald both merge this map into their health() hook.
func ChainHealth(bc *chain.Blockchain) map[string]interface{} {
	v := bc.View()
	head := v.Head()
	out := map[string]interface{}{
		"head": map[string]interface{}{
			"number": head.Header.Number,
			"hash":   head.Hash().Hex(),
		},
		"headViewAgeMs": time.Since(v.PublishedAt()).Milliseconds(),
		"txpool":        bc.PendingCount(),
	}
	if rep := bc.RecoveryReport(); rep != nil {
		rec := map[string]interface{}{
			"head":           rep.Head,
			"snapshotUsed":   rep.SnapshotUsed,
			"blocksReplayed": rep.BlocksReplayed,
		}
		if rep.Dropped() {
			rec["blocksDropped"] = rep.BlocksDropped
			rec["droppedReason"] = rep.DroppedReason
			rec["logDroppedBytes"] = rep.LogDroppedBytes
		}
		out["recovery"] = rec
	}
	return out
}
