package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"legalchain/internal/metrics"
	"legalchain/internal/xtrace"
)

// OpsHandler builds the operational sidecar mux served on the
// -metrics-addr listener of devnet and rentald:
//
//	/metrics        Prometheus text exposition of metrics.Default
//	/healthz        liveness + readiness JSON; health() contributes
//	                extra fields, ready() gates the status code
//	/debug/traces   completed xtrace spans (list, detail, Chrome format)
//	/debug/pprof/*  Go profiler, only when pprofEnabled
//
// ready is the readiness probe: when it returns false, /healthz answers
// 503 with {"status":"unavailable","reason":...} so load balancers and
// orchestration pull the node out of rotation while it still reports
// its health fields for diagnosis. nil means "always ready" (liveness
// only). The pprof handlers are registered explicitly rather than
// through net/http/pprof's init side effects on http.DefaultServeMux,
// so profiling stays off unless the operator opts in with -pprof.
func OpsHandler(pprofEnabled bool, health func() map[string]interface{}, ready func() (bool, string)) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler())
	mux.Handle("/debug/traces", xtrace.Handler())
	mux.Handle("/debug/traces/", xtrace.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]interface{}{"status": "ok"}
		status := http.StatusOK
		if ready != nil {
			if ok, reason := ready(); !ok {
				body["status"] = "unavailable"
				body["reason"] = reason
				status = http.StatusServiceUnavailable
			}
		}
		if health != nil {
			for k, v := range health() {
				body[k] = v
			}
		}
		writeHealthJSON(w, status, body)
	})
	if pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeHealthJSON(w http.ResponseWriter, status int, body map[string]interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}
