package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func getHealth(t *testing.T, h http.Handler) (int, map[string]interface{}) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, rec.Body.String())
	}
	return rec.Code, body
}

func TestOpsHandlerHealthz(t *testing.T) {
	health := func() map[string]interface{} {
		return map[string]interface{}{"height": 42}
	}
	h := OpsHandler(false, health, nil)
	code, body := getHealth(t, h)
	if code != http.StatusOK || body["status"] != "ok" || body["height"] != float64(42) {
		t.Fatalf("healthz: %d %v", code, body)
	}
}

func TestOpsHandlerReadiness(t *testing.T) {
	ready := true
	h := OpsHandler(false,
		func() map[string]interface{} { return map[string]interface{}{"height": 7} },
		func() (bool, string) {
			if ready {
				return true, ""
			}
			return false, "watchtower 99 blocks behind (max 64)"
		})

	if code, body := getHealth(t, h); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("ready node: %d %v", code, body)
	}

	ready = false
	code, body := getHealth(t, h)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("not-ready node answered %d", code)
	}
	if body["status"] != "unavailable" || body["reason"] != "watchtower 99 blocks behind (max 64)" {
		t.Fatalf("503 body: %v", body)
	}
	// Health fields stay visible for diagnosis even while out of rotation.
	if body["height"] != float64(7) {
		t.Fatalf("health fields dropped from 503 body: %v", body)
	}

	ready = true
	if code, _ := getHealth(t, h); code != http.StatusOK {
		t.Fatalf("recovered node still answers %d", code)
	}
}

func TestOpsHandlerPprofGate(t *testing.T) {
	probe := func(h http.Handler) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
		return rec.Code
	}
	if code := probe(OpsHandler(false, nil, nil)); code != http.StatusNotFound {
		t.Fatalf("pprof off: %d", code)
	}
	if code := probe(OpsHandler(true, nil, nil)); code != http.StatusOK {
		t.Fatalf("pprof on: %d", code)
	}
}
