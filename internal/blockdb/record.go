package blockdb

import (
	"errors"
	"fmt"

	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
)

// Record is one sealed block as journaled in the log: the header, the
// transactions, and the full receipts (including the derived metadata —
// block hash, indexes, log positions — so that a restart can rebuild
// the receipt and log indexes of historical blocks without re-executing
// them).
type Record struct {
	Header   *ethtypes.Header
	Txs      []*ethtypes.Transaction
	Receipts []*ethtypes.Receipt
}

// Encode serialises the record as RLP:
// [header, [txRLP...], [receipt...]].
func (r *Record) Encode() []byte {
	txItems := make([]*rlp.Item, len(r.Txs))
	for i, tx := range r.Txs {
		txItems[i] = rlp.Bytes(tx.Encode())
	}
	rcptItems := make([]*rlp.Item, len(r.Receipts))
	for i, rc := range r.Receipts {
		rcptItems[i] = receiptItem(rc)
	}
	return rlp.Encode(rlp.List(
		headerItem(r.Header),
		rlp.List(txItems...),
		rlp.List(rcptItems...),
	))
}

func headerItem(h *ethtypes.Header) *rlp.Item {
	return rlp.List(
		rlp.Bytes(h.ParentHash[:]),
		rlp.Uint(h.Number),
		rlp.Uint(h.Time),
		rlp.Uint(h.GasLimit),
		rlp.Uint(h.GasUsed),
		rlp.Bytes(h.Coinbase[:]),
		rlp.Bytes(h.StateRoot[:]),
		rlp.Bytes(h.TxRoot[:]),
		rlp.Bytes(h.ReceiptRoot[:]),
	)
}

func optAddrItem(a *ethtypes.Address) *rlp.Item {
	if a == nil {
		return rlp.Bytes(nil)
	}
	return rlp.Bytes(a[:])
}

func receiptItem(r *ethtypes.Receipt) *rlp.Item {
	logItems := make([]*rlp.Item, len(r.Logs))
	for i, l := range r.Logs {
		logItems[i] = logItem(l)
	}
	return rlp.List(
		rlp.Bytes(r.TxHash[:]),
		rlp.Uint(uint64(r.TxIndex)),
		rlp.Uint(r.BlockNumber),
		rlp.Bytes(r.BlockHash[:]),
		rlp.Bytes(r.From[:]),
		optAddrItem(r.To),
		optAddrItem(r.ContractAddress),
		rlp.Uint(r.GasUsed),
		rlp.Uint(r.CumulativeGasUsed),
		rlp.Uint(r.Status),
		rlp.String(r.RevertReason),
		rlp.List(logItems...),
	)
}

func logItem(l *ethtypes.Log) *rlp.Item {
	topics := make([]*rlp.Item, len(l.Topics))
	for i := range l.Topics {
		topics[i] = rlp.Bytes(l.Topics[i][:])
	}
	return rlp.List(
		rlp.Bytes(l.Address[:]),
		rlp.List(topics...),
		rlp.Bytes(l.Data),
		rlp.Uint(l.BlockNumber),
		rlp.Bytes(l.BlockHash[:]),
		rlp.Bytes(l.TxHash[:]),
		rlp.Uint(uint64(l.TxIndex)),
		rlp.Uint(uint64(l.Index)),
	)
}

// DecodeRecord parses a journaled block record.
func DecodeRecord(data []byte) (*Record, error) {
	it, err := rlp.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("blockdb: record: %w", err)
	}
	if it.Kind() != rlp.KindList || it.Len() != 3 {
		return nil, errors.New("blockdb: record must be a 3-item list")
	}
	rec := &Record{}
	if rec.Header, err = decodeHeader(it.At(0)); err != nil {
		return nil, err
	}
	txList := it.At(1)
	if txList.Kind() != rlp.KindList {
		return nil, errors.New("blockdb: record txs must be a list")
	}
	rec.Txs = make([]*ethtypes.Transaction, txList.Len())
	for i := 0; i < txList.Len(); i++ {
		raw := txList.At(i)
		if raw.Kind() != rlp.KindString {
			return nil, errors.New("blockdb: record tx must be a string item")
		}
		if rec.Txs[i], err = ethtypes.DecodeTransaction(raw.Str()); err != nil {
			return nil, fmt.Errorf("blockdb: record tx %d: %w", i, err)
		}
	}
	rcptList := it.At(2)
	if rcptList.Kind() != rlp.KindList {
		return nil, errors.New("blockdb: record receipts must be a list")
	}
	rec.Receipts = make([]*ethtypes.Receipt, rcptList.Len())
	for i := 0; i < rcptList.Len(); i++ {
		if rec.Receipts[i], err = decodeReceipt(rcptList.At(i)); err != nil {
			return nil, fmt.Errorf("blockdb: record receipt %d: %w", i, err)
		}
	}
	return rec, nil
}

// Block materialises the record's block.
func (r *Record) Block() *ethtypes.Block {
	return &ethtypes.Block{Header: r.Header, Transactions: r.Txs}
}

func asHash(it *rlp.Item) (ethtypes.Hash, error) {
	if it.Kind() != rlp.KindString || it.Len() != ethtypes.HashLength {
		return ethtypes.Hash{}, errors.New("blockdb: expected 32-byte hash")
	}
	return ethtypes.BytesToHash(it.Str()), nil
}

func asAddr(it *rlp.Item) (ethtypes.Address, error) {
	if it.Kind() != rlp.KindString || it.Len() != ethtypes.AddressLength {
		return ethtypes.Address{}, errors.New("blockdb: expected 20-byte address")
	}
	return ethtypes.BytesToAddress(it.Str()), nil
}

func asOptAddr(it *rlp.Item) (*ethtypes.Address, error) {
	if it.Kind() != rlp.KindString {
		return nil, errors.New("blockdb: expected optional address")
	}
	switch it.Len() {
	case 0:
		return nil, nil
	case ethtypes.AddressLength:
		a := ethtypes.BytesToAddress(it.Str())
		return &a, nil
	default:
		return nil, errors.New("blockdb: bad optional address length")
	}
}

func decodeHeader(it *rlp.Item) (*ethtypes.Header, error) {
	if it.Kind() != rlp.KindList || it.Len() != 9 {
		return nil, errors.New("blockdb: header must be a 9-item list")
	}
	h := &ethtypes.Header{}
	var err error
	if h.ParentHash, err = asHash(it.At(0)); err != nil {
		return nil, err
	}
	if h.Number, err = it.At(1).AsUint64(); err != nil {
		return nil, err
	}
	if h.Time, err = it.At(2).AsUint64(); err != nil {
		return nil, err
	}
	if h.GasLimit, err = it.At(3).AsUint64(); err != nil {
		return nil, err
	}
	if h.GasUsed, err = it.At(4).AsUint64(); err != nil {
		return nil, err
	}
	if h.Coinbase, err = asAddr(it.At(5)); err != nil {
		return nil, err
	}
	if h.StateRoot, err = asHash(it.At(6)); err != nil {
		return nil, err
	}
	if h.TxRoot, err = asHash(it.At(7)); err != nil {
		return nil, err
	}
	if h.ReceiptRoot, err = asHash(it.At(8)); err != nil {
		return nil, err
	}
	return h, nil
}

func decodeReceipt(it *rlp.Item) (*ethtypes.Receipt, error) {
	if it.Kind() != rlp.KindList || it.Len() != 12 {
		return nil, errors.New("blockdb: receipt must be a 12-item list")
	}
	r := &ethtypes.Receipt{}
	var err error
	var u uint64
	if r.TxHash, err = asHash(it.At(0)); err != nil {
		return nil, err
	}
	if u, err = it.At(1).AsUint64(); err != nil {
		return nil, err
	}
	r.TxIndex = uint(u)
	if r.BlockNumber, err = it.At(2).AsUint64(); err != nil {
		return nil, err
	}
	if r.BlockHash, err = asHash(it.At(3)); err != nil {
		return nil, err
	}
	if r.From, err = asAddr(it.At(4)); err != nil {
		return nil, err
	}
	if r.To, err = asOptAddr(it.At(5)); err != nil {
		return nil, err
	}
	if r.ContractAddress, err = asOptAddr(it.At(6)); err != nil {
		return nil, err
	}
	if r.GasUsed, err = it.At(7).AsUint64(); err != nil {
		return nil, err
	}
	if r.CumulativeGasUsed, err = it.At(8).AsUint64(); err != nil {
		return nil, err
	}
	if r.Status, err = it.At(9).AsUint64(); err != nil {
		return nil, err
	}
	if it.At(10).Kind() != rlp.KindString {
		return nil, errors.New("blockdb: receipt revert reason must be a string")
	}
	r.RevertReason = string(it.At(10).Str())
	logList := it.At(11)
	if logList.Kind() != rlp.KindList {
		return nil, errors.New("blockdb: receipt logs must be a list")
	}
	if logList.Len() > 0 {
		r.Logs = make([]*ethtypes.Log, logList.Len())
		for i := 0; i < logList.Len(); i++ {
			if r.Logs[i], err = decodeLog(logList.At(i)); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

func decodeLog(it *rlp.Item) (*ethtypes.Log, error) {
	if it.Kind() != rlp.KindList || it.Len() != 8 {
		return nil, errors.New("blockdb: log must be an 8-item list")
	}
	l := &ethtypes.Log{}
	var err error
	var u uint64
	if l.Address, err = asAddr(it.At(0)); err != nil {
		return nil, err
	}
	topics := it.At(1)
	if topics.Kind() != rlp.KindList {
		return nil, errors.New("blockdb: log topics must be a list")
	}
	for i := 0; i < topics.Len(); i++ {
		t, err := asHash(topics.At(i))
		if err != nil {
			return nil, err
		}
		l.Topics = append(l.Topics, t)
	}
	if it.At(2).Kind() != rlp.KindString {
		return nil, errors.New("blockdb: log data must be a string")
	}
	l.Data = append([]byte(nil), it.At(2).Str()...)
	if l.BlockNumber, err = it.At(3).AsUint64(); err != nil {
		return nil, err
	}
	if l.BlockHash, err = asHash(it.At(4)); err != nil {
		return nil, err
	}
	if l.TxHash, err = asHash(it.At(5)); err != nil {
		return nil, err
	}
	if u, err = it.At(6).AsUint64(); err != nil {
		return nil, err
	}
	l.TxIndex = uint(u)
	if u, err = it.At(7).AsUint64(); err != nil {
		return nil, err
	}
	l.Index = uint(u)
	return l, nil
}
