package blockdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Frame layout: a fixed 8-byte header — payload length (uint32 BE)
// followed by CRC32-C of the payload (uint32 BE) — then the payload
// itself. The CRC is computed with the Castagnoli polynomial, which
// detects torn writes and bit rot far better than IEEE for short
// records and has hardware support on the platforms we care about.
const (
	frameHeaderSize = 8
	// maxFramePayload bounds a single record; anything larger is treated
	// as corruption (a devnet block with receipts is a few KiB).
	maxFramePayload = 32 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one CRC-framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameSize returns the on-disk size of a frame carrying n payload bytes.
func frameSize(n int) int64 { return int64(frameHeaderSize + n) }

// AppendFrame appends one CRC-framed payload to dst. Exported so
// sibling stores (statestore's KV segments) reuse the exact frame
// format — and therefore the same torn-write/bit-rot detection — as
// the block log.
func AppendFrame(dst, payload []byte) []byte { return appendFrame(dst, payload) }

// FrameSize returns the on-disk size of a frame carrying n payload
// bytes.
func FrameSize(n int) int64 { return frameSize(n) }

// ScanFrames walks the frames in data, calling fn with each payload;
// see scanFrames for the return convention.
func ScanFrames(data []byte, fn func(payload []byte) error) (valid int64, err error) {
	return scanFrames(data, fn)
}

// scanFrames walks the frames in data, calling fn with each payload.
// It returns the byte offset just past the last whole valid frame and,
// when scanning stopped before the end of data, a description of why
// (torn tail, CRC mismatch, oversized length). A nil error with
// valid == len(data) means the segment is clean.
func scanFrames(data []byte, fn func(payload []byte) error) (valid int64, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderSize {
			return int64(off), fmt.Errorf("torn frame header: %d trailing bytes", len(data)-off)
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > maxFramePayload {
			return int64(off), fmt.Errorf("frame length %d exceeds limit", n)
		}
		if len(data)-off-frameHeaderSize < n {
			return int64(off), fmt.Errorf("torn frame payload: have %d of %d bytes", len(data)-off-frameHeaderSize, n)
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return int64(off), fmt.Errorf("frame CRC mismatch at offset %d", off)
		}
		if err := fn(payload); err != nil {
			return int64(off), err
		}
		off += frameHeaderSize + n
	}
	return int64(off), nil
}
