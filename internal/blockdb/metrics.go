package blockdb

import (
	"legalchain/internal/metrics"
)

// Storage-tier metrics for the segmented block log. Append latency is
// split from fsync latency so an operator can tell write-path pressure
// from disk-flush pressure.
var (
	mAppendSeconds = metrics.Default.Histogram("legalchain_blockdb_append_seconds",
		"Wall time to append one block record (framing, write and any fsync).", nil)
	mFsyncSeconds = metrics.Default.Histogram("legalchain_blockdb_fsync_seconds",
		"Wall time of fsync calls on the active segment.", nil)
	mAppends = metrics.Default.Counter("legalchain_blockdb_appends_total",
		"Block records appended to the log.")
	mRotations = metrics.Default.Counter("legalchain_blockdb_rotations_total",
		"Segment rotations performed.")
)
