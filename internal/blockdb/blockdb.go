// Package blockdb is the durable persistence layer of the devnet chain:
// an append-only, segmented block log of length-prefixed, CRC32C-framed
// RLP records, fsync'd on seal, plus periodic state snapshots that
// bound startup replay. The chain journals every sealed block here and
// recovers on open by loading the latest valid snapshot and
// re-executing only the blocks after it.
//
// Corruption handling is prefix-oriented: opening the log scans every
// segment in order and keeps the longest verifiable prefix of records —
// a torn tail, a flipped byte inside a frame, or an undecodable record
// stops the scan, the damaged bytes are truncated away, and later
// segments are dropped. Open never fails because of a damaged tail; it
// reports what was discarded instead.
package blockdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	segPrefix = "blocks-"
	segSuffix = ".seg"
	// DefaultSegmentSize rotates segments at 4 MiB — small enough that a
	// damaged segment loses little, large enough to keep the directory
	// tidy on long chains.
	DefaultSegmentSize = 4 << 20
)

// Options tunes the log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (0 = default).
	SegmentSize int64
	// NoSync skips the per-append fsync. Only for tests and benchmarks;
	// a production chain must keep the sync-on-seal guarantee.
	NoSync bool
}

// OpenReport describes what an Open scan found and repaired.
type OpenReport struct {
	Segments        int    // segment files seen
	Records         int    // valid records recovered
	DroppedBytes    int64  // bytes truncated from the damaged segment
	DroppedSegments int    // whole segments discarded after the damage
	Reason          string // why the scan stopped early, if it did
}

// Dropped reports whether the open scan discarded anything.
func (r *OpenReport) Dropped() bool {
	return r.DroppedBytes > 0 || r.DroppedSegments > 0
}

// recLoc remembers where a record lives so Rewind can truncate there.
type recLoc struct {
	seg int   // index into segs
	off int64 // byte offset of the record's frame within the segment
}

type segment struct {
	path  string
	first uint64 // number of the first record in the segment
	size  int64
}

// Log is the segmented block log. Methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	segs []segment
	locs []recLoc // one per record, in order
	f    *os.File // active (last) segment, opened for append
	size int64    // size of the active segment
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%010d%s", segPrefix, first, segSuffix))
}

// Open opens (creating if needed) the log in dir and returns the
// longest verifiable prefix of records together with a report of
// anything that had to be dropped to get there. The log file is
// repaired in place: damaged tails are truncated, segments after the
// damage are deleted.
func Open(dir string, opts Options) (*Log, []*Record, *OpenReport, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("blockdb: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	recs, report, err := l.scan()
	if err != nil {
		return nil, nil, nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, nil, nil, err
	}
	return l, recs, report, nil
}

// listSegments returns the segment files in dir sorted by first-record
// number. Files whose names don't parse are ignored.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blockdb: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(name, segPrefix+"%010d"+segSuffix, &first); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), first: first, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// scan reads every segment in order, decoding records and validating
// the numbering, and repairs the log down to the longest valid prefix.
func (l *Log) scan() ([]*Record, *OpenReport, error) {
	segs, err := listSegments(l.dir)
	if err != nil {
		return nil, nil, err
	}
	report := &OpenReport{Segments: len(segs)}
	var recs []*Record
	var locs []recLoc
	next := uint64(0) // expected record number

	damagedAt := -1 // index of the segment where scanning stopped
	var keepBytes int64

	for si := range segs {
		seg := &segs[si]
		if seg.first != next {
			// Gap or overlap in segment numbering: everything from here on
			// is unusable.
			damagedAt = si
			keepBytes = 0
			report.Reason = fmt.Sprintf("segment %s starts at record %d, want %d", filepath.Base(seg.path), seg.first, next)
			break
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, nil, fmt.Errorf("blockdb: read segment: %w", err)
		}
		var off int64
		valid, scanErr := scanFrames(data, func(payload []byte) error {
			rec, err := DecodeRecord(payload)
			if err != nil {
				return err
			}
			if rec.Header.Number != next {
				return fmt.Errorf("record number %d, want %d", rec.Header.Number, next)
			}
			recs = append(recs, rec)
			locs = append(locs, recLoc{seg: si, off: off})
			off += frameSize(len(payload))
			next++
			return nil
		})
		if scanErr != nil {
			damagedAt = si
			keepBytes = valid
			report.Reason = scanErr.Error()
			report.DroppedBytes = int64(len(data)) - valid
			break
		}
	}

	if damagedAt >= 0 {
		// Truncate the damaged segment to its valid prefix (or remove it
		// entirely when nothing in it survived) and delete every later
		// segment.
		for si := len(segs) - 1; si > damagedAt; si-- {
			fi, statErr := os.Stat(segs[si].path)
			if statErr == nil {
				report.DroppedBytes += fi.Size()
			}
			if err := os.Remove(segs[si].path); err != nil {
				return nil, nil, fmt.Errorf("blockdb: drop segment: %w", err)
			}
			report.DroppedSegments++
		}
		seg := &segs[damagedAt]
		if keepBytes == 0 {
			if err := os.Remove(seg.path); err != nil {
				return nil, nil, fmt.Errorf("blockdb: drop segment: %w", err)
			}
			report.DroppedSegments++
			segs = segs[:damagedAt]
		} else {
			if err := os.Truncate(seg.path, keepBytes); err != nil {
				return nil, nil, fmt.Errorf("blockdb: repair segment: %w", err)
			}
			seg.size = keepBytes
			segs = segs[:damagedAt+1]
		}
	}

	l.segs = segs
	l.locs = locs
	report.Records = len(recs)
	return recs, report, nil
}

// openActive opens the last segment for appending, creating the first
// segment when the log is empty.
func (l *Log) openActive() error {
	if len(l.segs) == 0 {
		l.segs = append(l.segs, segment{path: segPath(l.dir, 0), first: 0})
	}
	seg := &l.segs[len(l.segs)-1]
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("blockdb: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("blockdb: stat segment: %w", err)
	}
	l.f = f
	l.size = fi.Size()
	seg.size = fi.Size()
	return nil
}

// Append journals one record, rotating to a fresh segment when the
// active one is full and fsyncing before returning (unless NoSync).
func (l *Log) Append(rec *Record) error {
	appendStart := time.Now()
	defer mAppendSeconds.ObserveSince(appendStart)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("blockdb: log is closed")
	}
	if want := uint64(len(l.locs)); rec.Header.Number != want {
		return fmt.Errorf("blockdb: append out of order: record %d, want %d", rec.Header.Number, want)
	}
	frame := appendFrame(nil, rec.Encode())
	if l.size > 0 && l.size+int64(len(frame)) > l.opts.SegmentSize {
		if err := l.rotateLocked(rec.Header.Number); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("blockdb: append: %w", err)
	}
	if !l.opts.NoSync {
		syncStart := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("blockdb: sync: %w", err)
		}
		mFsyncSeconds.ObserveSince(syncStart)
	}
	mAppends.Inc()
	l.locs = append(l.locs, recLoc{seg: len(l.segs) - 1, off: l.size})
	l.size += int64(len(frame))
	l.segs[len(l.segs)-1].size = l.size
	return nil
}

func (l *Log) rotateLocked(first uint64) error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("blockdb: sync before rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("blockdb: close segment: %w", err)
	}
	l.segs = append(l.segs, segment{path: segPath(l.dir, first), first: first})
	l.f = nil
	l.size = 0
	mRotations.Inc()
	return l.openActiveLocked()
}

func (l *Log) openActiveLocked() error {
	seg := &l.segs[len(l.segs)-1]
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("blockdb: open segment: %w", err)
	}
	l.f = f
	return nil
}

// ReadRecord re-reads record n from disk and decodes it — the
// read-through path for block bodies that have been evicted from
// memory. It opens the owning segment read-only, so it is safe
// against the appender (frames are immutable once written; Rewind
// only ever truncates records the caller no longer references).
func (l *Log) ReadRecord(n uint64) (*Record, error) {
	l.mu.Lock()
	if int(n) >= len(l.locs) {
		l.mu.Unlock()
		return nil, fmt.Errorf("blockdb: record %d out of range (have %d)", n, len(l.locs))
	}
	loc := l.locs[n]
	path := l.segs[loc.seg].path
	l.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("blockdb: read record: %w", err)
	}
	defer f.Close()
	var hdr [frameHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], loc.off); err != nil {
		return nil, fmt.Errorf("blockdb: read record header: %w", err)
	}
	size := int(binary.BigEndian.Uint32(hdr[0:4]))
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if size > maxFramePayload {
		return nil, fmt.Errorf("blockdb: record %d frame length %d exceeds limit", n, size)
	}
	payload := make([]byte, size)
	if _, err := f.ReadAt(payload, loc.off+frameHeaderSize); err != nil {
		return nil, fmt.Errorf("blockdb: read record payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("blockdb: record %d CRC mismatch", n)
	}
	rec, err := DecodeRecord(payload)
	if err != nil {
		return nil, fmt.Errorf("blockdb: record %d: %w", n, err)
	}
	return rec, nil
}

// Len returns the number of records in the log.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.locs)
}

// Rewind truncates the log to its first keep records — used when
// recovery finds that records past some point fail state verification
// even though their frames are intact.
func (l *Log) Rewind(keep int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if keep < 0 || keep > len(l.locs) {
		return fmt.Errorf("blockdb: rewind to %d out of range (have %d)", keep, len(l.locs))
	}
	if keep == len(l.locs) {
		return nil
	}
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	var cutSeg int
	var cutOff int64
	if keep == 0 {
		cutSeg, cutOff = 0, 0
	} else {
		loc := l.locs[keep]
		cutSeg, cutOff = loc.seg, loc.off
	}
	for si := len(l.segs) - 1; si > cutSeg; si-- {
		if err := os.Remove(l.segs[si].path); err != nil {
			return fmt.Errorf("blockdb: rewind: %w", err)
		}
	}
	l.segs = l.segs[:cutSeg+1]
	if cutOff == 0 && cutSeg > 0 {
		// The cut lands exactly on a segment boundary: drop the whole
		// segment and append to its predecessor.
		if err := os.Remove(l.segs[cutSeg].path); err != nil {
			return fmt.Errorf("blockdb: rewind: %w", err)
		}
		l.segs = l.segs[:cutSeg]
	} else {
		if err := os.Truncate(l.segs[cutSeg].path, cutOff); err != nil {
			return fmt.Errorf("blockdb: rewind: %w", err)
		}
		l.segs[cutSeg].size = cutOff
	}
	l.locs = l.locs[:keep]
	return l.reopenActiveLocked()
}

// reopenActiveLocked reopens the tail segment for append after a rewind
// and refreshes the cached size.
func (l *Log) reopenActiveLocked() error {
	if err := l.openActiveLocked(); err != nil {
		return err
	}
	fi, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("blockdb: stat segment: %w", err)
	}
	l.size = fi.Size()
	l.segs[len(l.segs)-1].size = l.size
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
