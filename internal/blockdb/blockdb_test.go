package blockdb

import (
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

// makeRecords builds n+1 hash-linked records (genesis plus n blocks),
// each carrying one dummy transaction and receipt so the codec paths
// are exercised.
func makeRecords(n int) []*Record {
	recs := make([]*Record, 0, n+1)
	genesis := &Record{Header: &ethtypes.Header{Number: 0, Time: 1000, GasLimit: 8_000_000}}
	recs = append(recs, genesis)
	for i := 1; i <= n; i++ {
		to := ethtypes.HexToAddress("0x00000000000000000000000000000000000000aa")
		tx := &ethtypes.Transaction{
			Nonce:    uint64(i - 1),
			GasPrice: uint256.NewUint64(1_000_000_000),
			Gas:      21000,
			To:       &to,
			Value:    uint256.NewUint64(uint64(i)),
			Data:     []byte{byte(i)},
			V:        big.NewInt(37),
			R:        big.NewInt(int64(i) + 1),
			S:        big.NewInt(int64(i) + 2),
		}
		h := &ethtypes.Header{
			ParentHash: recs[i-1].Header.Hash(),
			Number:     uint64(i),
			Time:       1000 + uint64(i),
			GasLimit:   8_000_000,
			GasUsed:    21000,
		}
		rcpt := &ethtypes.Receipt{
			TxHash:            tx.Hash(),
			BlockNumber:       uint64(i),
			From:              ethtypes.HexToAddress("0x00000000000000000000000000000000000000bb"),
			To:                &to,
			GasUsed:           21000,
			CumulativeGasUsed: 21000,
			Status:            ethtypes.ReceiptStatusSuccessful,
			Logs: []*ethtypes.Log{{
				Address:     to,
				Topics:      []ethtypes.Hash{ethtypes.Keccak256([]byte("topic"))},
				Data:        []byte{1, 2, 3},
				BlockNumber: uint64(i),
				TxHash:      tx.Hash(),
			}},
		}
		recs = append(recs, &Record{Header: h, Txs: []*ethtypes.Transaction{tx}, Receipts: []*ethtypes.Receipt{rcpt}})
	}
	return recs
}

func openFilled(t *testing.T, dir string, n int, opts Options) []*Record {
	t.Helper()
	l, got, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh log has %d records", len(got))
	}
	recs := makeRecords(n)
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func reopen(t *testing.T, dir string, opts Options) (*Log, []*Record, *OpenReport) {
	t.Helper()
	l, recs, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs, rep
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := openFilled(t, dir, 10, Options{})
	_, got, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped() {
		t.Fatalf("clean log reported drops: %+v", rep)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Header.Hash() != want[i].Header.Hash() {
			t.Fatalf("record %d header hash mismatch", i)
		}
		if len(got[i].Txs) != len(want[i].Txs) {
			t.Fatalf("record %d tx count", i)
		}
		for j := range want[i].Txs {
			if got[i].Txs[j].Hash() != want[i].Txs[j].Hash() {
				t.Fatalf("record %d tx %d hash", i, j)
			}
		}
		for j := range want[i].Receipts {
			w, g := want[i].Receipts[j], got[i].Receipts[j]
			if g.TxHash != w.TxHash || g.GasUsed != w.GasUsed || g.Status != w.Status {
				t.Fatalf("record %d receipt %d mismatch", i, j)
			}
			if len(g.Logs) != len(w.Logs) || g.Logs[0].Topics[0] != w.Logs[0].Topics[0] {
				t.Fatalf("record %d receipt %d logs mismatch", i, j)
			}
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	openFilled(t, dir, 50, Options{SegmentSize: 2048})
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	_, got, rep, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped() || len(got) != 51 {
		t.Fatalf("rotated log recovery: %d records, report %+v", len(got), rep)
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return segs[len(segs)-1].path
}

func TestTortureTornTail(t *testing.T) {
	dir := t.TempDir()
	openFilled(t, dir, 8, Options{})
	// Chop bytes off the tail, mid-frame.
	path := lastSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	l, got, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 { // genesis + 7 full blocks survive
		t.Fatalf("recovered %d records, want 8", len(got))
	}
	if !rep.Dropped() || rep.DroppedBytes == 0 {
		t.Fatalf("report misses the drop: %+v", rep)
	}
	// The log must accept appends that continue the recovered prefix.
	recs := makeRecords(8)
	fresh := &Record{Header: &ethtypes.Header{ParentHash: recs[7].Header.Hash(), Number: 8, Time: 2000, GasLimit: 8_000_000}}
	if err := l.Append(fresh); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got2, rep2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 9 || rep2.Dropped() {
		t.Fatalf("after repair+append: %d records, report %+v", len(got2), rep2)
	}
}

func TestTortureFlippedByte(t *testing.T) {
	dir := t.TempDir()
	openFilled(t, dir, 20, Options{SegmentSize: 2048})
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	// Flip a byte in the middle of the second segment: its prefix stays,
	// everything after — including later segments — is dropped.
	path := segs[1].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, rep, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= 21 || len(got) < int(segs[1].first) {
		t.Fatalf("recovered %d records", len(got))
	}
	if !rep.Dropped() {
		t.Fatalf("report misses the drop: %+v", rep)
	}
	// Recovered prefix must still be hash-linked.
	for i := 1; i < len(got); i++ {
		if got[i].Header.ParentHash != got[i-1].Header.Hash() {
			t.Fatalf("recovered prefix broken at %d", i)
		}
	}
	// And a second open of the repaired log is clean.
	_, got2, rep2, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(got) || rep2.Dropped() {
		t.Fatalf("repair not sticky: %d vs %d, %+v", len(got2), len(got), rep2)
	}
}

func TestTortureGarbageHeader(t *testing.T) {
	dir := t.TempDir()
	openFilled(t, dir, 4, Options{})
	// Declare an absurd frame length in a fresh tail frame.
	path := lastSegment(t, dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Close()
	_, got, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || !rep.Dropped() {
		t.Fatalf("recovered %d records, report %+v", len(got), rep)
	}
}

func TestRewind(t *testing.T) {
	dir := t.TempDir()
	openFilled(t, dir, 30, Options{SegmentSize: 2048})
	l, got, _, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Rewind(12); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 12 {
		t.Fatalf("Len after rewind = %d", l.Len())
	}
	// Appending record 12 continues the prefix.
	next := &Record{Header: &ethtypes.Header{ParentHash: got[11].Header.Hash(), Number: 12, Time: 5000, GasLimit: 8_000_000}}
	if err := l.Append(next); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got2, rep, err := Open(dir, Options{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 13 || rep.Dropped() {
		t.Fatalf("after rewind+append: %d records, %+v", len(got2), rep)
	}
	if got2[12].Header.Hash() != next.Header.Hash() {
		t.Fatal("appended record lost")
	}
}

func TestAppendOutOfOrderRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(&Record{Header: &ethtypes.Header{Number: 5}}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	for i := uint64(1); i <= 4; i++ {
		s := &Snapshot{Number: i * 10, BlockHash: ethtypes.Keccak256([]byte{byte(i)}), State: []byte{byte(i), 0xee}}
		if err := WriteSnapshot(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	snaps := LoadSnapshots(dir)
	if len(snaps) != snapshotsKept {
		t.Fatalf("pruning kept %d snapshots, want %d", len(snaps), snapshotsKept)
	}
	if snaps[0].Number != 40 || snaps[1].Number != 30 {
		t.Fatalf("wrong generations kept: %d, %d", snaps[0].Number, snaps[1].Number)
	}
	if snaps[0].State[0] != 4 || snaps[0].BlockHash != ethtypes.Keccak256([]byte{4}) {
		t.Fatal("snapshot payload mismatch")
	}
}

func TestSnapshotCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	for i := uint64(1); i <= 2; i++ {
		s := &Snapshot{Number: i * 10, BlockHash: ethtypes.Keccak256([]byte{byte(i)}), State: []byte{byte(i)}}
		if err := WriteSnapshot(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest snapshot.
	path := filepath.Join(dir, "state-0000000020.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snaps := LoadSnapshots(dir)
	if len(snaps) != 1 || snaps[0].Number != 10 {
		t.Fatalf("corrupt snapshot not skipped: %+v", snaps)
	}
}
