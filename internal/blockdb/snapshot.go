package blockdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
)

const (
	snapPrefix = "state-"
	snapSuffix = ".snap"
	// snapshotsKept is how many snapshot generations survive pruning:
	// the newest plus one fallback in case the newest is damaged or
	// describes a block the repaired log no longer reaches.
	snapshotsKept = 2
)

// Snapshot is a point-in-time state capture bound to a specific block.
// State is an opaque payload (the state package's snapshot encoding);
// blockdb only frames, checksums and names it.
type Snapshot struct {
	Number    uint64
	BlockHash ethtypes.Hash
	State     []byte
}

func snapPath(dir string, number uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%010d%s", snapPrefix, number, snapSuffix))
}

// DefaultSnapshotsKept is the retention used when a caller does not
// configure one (see WriteSnapshotKeep).
const DefaultSnapshotsKept = snapshotsKept

// WriteSnapshot atomically writes a snapshot file and prunes old
// generations beyond the default retention of snapshotsKept.
func WriteSnapshot(dir string, s *Snapshot) error {
	return WriteSnapshotKeep(dir, s, snapshotsKept)
}

// WriteSnapshotKeep atomically writes a snapshot file (tmp + rename,
// CRC framed) and prunes old generations beyond keep (values < 1 fall
// back to the default retention).
func WriteSnapshotKeep(dir string, s *Snapshot, keep int) error {
	payload := rlp.Encode(rlp.List(
		rlp.Uint(s.Number),
		rlp.Bytes(s.BlockHash[:]),
		rlp.Bytes(s.State),
	))
	data := appendFrame(nil, payload)
	final := snapPath(dir, s.Number)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("blockdb: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("blockdb: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("blockdb: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockdb: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockdb: snapshot rename: %w", err)
	}
	pruneSnapshots(dir, keep)
	return nil
}

// listSnapshotFiles returns snapshot file numbers present in dir,
// newest first.
func listSnapshotFiles(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var nums []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(name, snapPrefix+"%010d"+snapSuffix, &n); err != nil {
			continue
		}
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] > nums[j] })
	return nums
}

func pruneSnapshots(dir string, keep int) {
	if keep < 1 {
		keep = snapshotsKept
	}
	nums := listSnapshotFiles(dir)
	for _, n := range nums[min(len(nums), keep):] {
		os.Remove(snapPath(dir, n))
	}
}

// SnapshotNumbers returns the block numbers of the snapshot files
// present in dir, newest first, without reading any of them. Recovery
// walks this list and loads snapshots one at a time (LoadSnapshot),
// stopping at the first one that verifies — so a directory full of
// old generations costs directory-listing time, not decode time.
func SnapshotNumbers(dir string) []uint64 { return listSnapshotFiles(dir) }

// LoadSnapshot reads and verifies the single snapshot for block n. A
// CRC or decode failure returns an error; callers fall back to the
// next-older snapshot (a damaged snapshot must never block recovery,
// it just costs more replay).
func LoadSnapshot(dir string, n uint64) (*Snapshot, error) {
	return readSnapshot(snapPath(dir, n))
}

// LoadSnapshots reads every snapshot in dir, newest first, silently
// skipping any that fail CRC or decode.
//
// Deprecated: this decodes every generation up front; use
// SnapshotNumbers + LoadSnapshot to stop at the first usable one.
func LoadSnapshots(dir string) []*Snapshot {
	var out []*Snapshot
	for _, n := range listSnapshotFiles(dir) {
		s, err := readSnapshot(snapPath(dir, n))
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s *Snapshot
	valid, err := scanFrames(data, func(payload []byte) error {
		if s != nil {
			return errors.New("blockdb: snapshot has multiple frames")
		}
		it, err := rlp.Decode(payload)
		if err != nil {
			return err
		}
		if it.Kind() != rlp.KindList || it.Len() != 3 {
			return errors.New("blockdb: snapshot must be a 3-item list")
		}
		snap := &Snapshot{}
		if snap.Number, err = it.At(0).AsUint64(); err != nil {
			return err
		}
		if snap.BlockHash, err = asHash(it.At(1)); err != nil {
			return err
		}
		if it.At(2).Kind() != rlp.KindString {
			return errors.New("blockdb: snapshot state must be a string item")
		}
		snap.State = append([]byte(nil), it.At(2).Str()...)
		s = snap
		return nil
	})
	if err != nil {
		return nil, err
	}
	if s == nil || valid != int64(len(data)) {
		return nil, errors.New("blockdb: damaged snapshot")
	}
	return s, nil
}
