package blockdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
)

const (
	snapPrefix = "state-"
	snapSuffix = ".snap"
	// snapshotsKept is how many snapshot generations survive pruning:
	// the newest plus one fallback in case the newest is damaged or
	// describes a block the repaired log no longer reaches.
	snapshotsKept = 2
)

// Snapshot is a point-in-time state capture bound to a specific block.
// State is an opaque payload (the state package's snapshot encoding);
// blockdb only frames, checksums and names it.
type Snapshot struct {
	Number    uint64
	BlockHash ethtypes.Hash
	State     []byte
}

func snapPath(dir string, number uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%010d%s", snapPrefix, number, snapSuffix))
}

// WriteSnapshot atomically writes a snapshot file (tmp + rename, CRC
// framed) and prunes old generations beyond snapshotsKept.
func WriteSnapshot(dir string, s *Snapshot) error {
	payload := rlp.Encode(rlp.List(
		rlp.Uint(s.Number),
		rlp.Bytes(s.BlockHash[:]),
		rlp.Bytes(s.State),
	))
	data := appendFrame(nil, payload)
	final := snapPath(dir, s.Number)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("blockdb: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("blockdb: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("blockdb: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockdb: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockdb: snapshot rename: %w", err)
	}
	pruneSnapshots(dir)
	return nil
}

// listSnapshotFiles returns snapshot file numbers present in dir,
// newest first.
func listSnapshotFiles(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var nums []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(name, snapPrefix+"%010d"+snapSuffix, &n); err != nil {
			continue
		}
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] > nums[j] })
	return nums
}

func pruneSnapshots(dir string) {
	nums := listSnapshotFiles(dir)
	for _, n := range nums[min(len(nums), snapshotsKept):] {
		os.Remove(snapPath(dir, n))
	}
}

// LoadSnapshots reads the snapshots in dir, newest first, silently
// skipping any that fail CRC or decode — a damaged snapshot must never
// block recovery, it just costs more replay.
func LoadSnapshots(dir string) []*Snapshot {
	var out []*Snapshot
	for _, n := range listSnapshotFiles(dir) {
		s, err := readSnapshot(snapPath(dir, n))
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s *Snapshot
	valid, err := scanFrames(data, func(payload []byte) error {
		if s != nil {
			return errors.New("blockdb: snapshot has multiple frames")
		}
		it, err := rlp.Decode(payload)
		if err != nil {
			return err
		}
		if it.Kind() != rlp.KindList || it.Len() != 3 {
			return errors.New("blockdb: snapshot must be a 3-item list")
		}
		snap := &Snapshot{}
		if snap.Number, err = it.At(0).AsUint64(); err != nil {
			return err
		}
		if snap.BlockHash, err = asHash(it.At(1)); err != nil {
			return err
		}
		if it.At(2).Kind() != rlp.KindString {
			return errors.New("blockdb: snapshot state must be a string item")
		}
		snap.State = append([]byte(nil), it.At(2).Str()...)
		s = snap
		return nil
	})
	if err != nil {
		return nil, err
	}
	if s == nil || valid != int64(len(data)) {
		return nil, errors.New("blockdb: damaged snapshot")
	}
	return s, nil
}
