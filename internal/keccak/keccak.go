// Package keccak implements the legacy Keccak-256 and Keccak-512 hash
// functions as used by Ethereum.
//
// Ethereum predates the FIPS-202 standardisation of SHA-3 and uses the
// original Keccak padding (domain byte 0x01) rather than the SHA-3 domain
// byte 0x06, so the standard library's sha3 cannot be substituted even if
// it were available. The implementation below is a straightforward
// sponge over Keccak-f[1600].
package keccak

import "hash"

// round constants for the iota step of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets for the rho step, indexed [x][y].
var rotc = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// permute applies the full 24-round Keccak-f[1600] permutation to the
// state a, indexed a[x][y].
func permute(a *[5][5]uint64) {
	var b [5][5]uint64
	var c, d [5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x][y] ^= d[x]
			}
		}
		// rho and pi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y][(2*x+3*y)%5] = rotl(a[x][y], rotc[x][y])
			}
		}
		// chi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x][y] = b[x][y] ^ (^b[(x+1)%5][y] & b[(x+2)%5][y])
			}
		}
		// iota
		a[0][0] ^= roundConstants[round]
	}
}

// digest is a sponge instance. It implements hash.Hash.
type digest struct {
	a       [5][5]uint64 // state
	buf     []byte       // unabsorbed input, len < rate
	rate    int          // bytes absorbed per block
	outSize int
}

// New256 returns a hash.Hash computing Keccak-256 (32-byte output).
func New256() hash.Hash { return &digest{rate: 136, outSize: 32} }

// New512 returns a hash.Hash computing Keccak-512 (64-byte output).
func New512() hash.Hash { return &digest{rate: 72, outSize: 64} }

func (d *digest) Size() int      { return d.outSize }
func (d *digest) BlockSize() int { return d.rate }

func (d *digest) Reset() {
	d.a = [5][5]uint64{}
	d.buf = d.buf[:0]
}

func (d *digest) Write(p []byte) (int, error) {
	n := len(p)
	d.buf = append(d.buf, p...)
	for len(d.buf) >= d.rate {
		d.absorb(d.buf[:d.rate])
		d.buf = d.buf[d.rate:]
	}
	return n, nil
}

// absorb XORs one rate-sized block into the state and permutes.
func (d *digest) absorb(block []byte) {
	for i := 0; i < d.rate/8; i++ {
		lane := le64(block[i*8:])
		x, y := i%5, i/5
		d.a[x][y] ^= lane
	}
	permute(&d.a)
}

func (d *digest) Sum(in []byte) []byte {
	// Copy the state so Sum does not disturb the running hash.
	dup := *d
	dup.buf = append([]byte(nil), d.buf...)

	// Keccak (pre-FIPS) multi-rate padding: 0x01 ... 0x80.
	pad := make([]byte, dup.rate-len(dup.buf))
	pad[0] = 0x01
	pad[len(pad)-1] |= 0x80
	dup.buf = append(dup.buf, pad...)
	dup.absorb(dup.buf)

	// Squeeze.
	out := make([]byte, dup.outSize)
	off := 0
	for off < dup.outSize {
		for i := 0; i < dup.rate/8 && off < dup.outSize; i++ {
			x, y := i%5, i/5
			putLE64(out[off:], dup.a[x][y], dup.outSize-off)
			off += 8
		}
		if off < dup.outSize {
			permute(&dup.a)
		}
	}
	return append(in, out...)
}

// Sum256 computes the Keccak-256 digest of data.
func Sum256(data []byte) [32]byte {
	d := digest{rate: 136, outSize: 32}
	d.Write(data)
	var out [32]byte
	copy(out[:], d.Sum(nil))
	return out
}

// Sum512 computes the Keccak-512 digest of data.
func Sum512(data []byte) [64]byte {
	d := digest{rate: 72, outSize: 64}
	d.Write(data)
	var out [64]byte
	copy(out[:], d.Sum(nil))
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// putLE64 writes up to max (≤8) bytes of v into b little-endian.
func putLE64(b []byte, v uint64, max int) {
	n := 8
	if max < n {
		n = max
	}
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
