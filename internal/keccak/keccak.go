// Package keccak implements the legacy Keccak-256 and Keccak-512 hash
// functions as used by Ethereum.
//
// Ethereum predates the FIPS-202 standardisation of SHA-3 and uses the
// original Keccak padding (domain byte 0x01) rather than the SHA-3 domain
// byte 0x06, so the standard library's sha3 cannot be substituted even if
// it were available. The implementation below is a straightforward
// sponge over Keccak-f[1600].
package keccak

import "hash"

// round constants for the iota step of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets for the rho step, indexed [x][y].
var rotc = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// permute applies the full 24-round Keccak-f[1600] permutation to the
// state a, indexed a[x][y].
func permute(a *[5][5]uint64) {
	var b [5][5]uint64
	var c, d [5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x][y] ^= d[x]
			}
		}
		// rho and pi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y][(2*x+3*y)%5] = rotl(a[x][y], rotc[x][y])
			}
		}
		// chi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x][y] = b[x][y] ^ (^b[(x+1)%5][y] & b[(x+2)%5][y])
			}
		}
		// iota
		a[0][0] ^= roundConstants[round]
	}
}

// digest is a sponge instance. It implements hash.Hash.
type digest struct {
	a       [5][5]uint64 // state
	buf     []byte       // unabsorbed input, len < rate
	rate    int          // bytes absorbed per block
	outSize int
}

// New256 returns a hash.Hash computing Keccak-256 (32-byte output).
func New256() hash.Hash { return &digest{rate: 136, outSize: 32} }

// New512 returns a hash.Hash computing Keccak-512 (64-byte output).
func New512() hash.Hash { return &digest{rate: 72, outSize: 64} }

func (d *digest) Size() int      { return d.outSize }
func (d *digest) BlockSize() int { return d.rate }

func (d *digest) Reset() {
	d.a = [5][5]uint64{}
	d.buf = d.buf[:0]
}

func (d *digest) Write(p []byte) (int, error) {
	n := len(p)
	// Top up a partial block first.
	if len(d.buf) > 0 {
		need := d.rate - len(d.buf)
		if need > len(p) {
			need = len(p)
		}
		d.buf = append(d.buf, p[:need]...)
		p = p[need:]
		if len(d.buf) == d.rate {
			d.absorb(d.buf)
			d.buf = d.buf[:0]
		}
	}
	// Absorb full blocks straight from the input, no copying.
	for len(p) >= d.rate {
		d.absorb(p[:d.rate])
		p = p[d.rate:]
	}
	if len(p) > 0 {
		d.buf = append(d.buf, p...)
	}
	return n, nil
}

// absorb XORs one rate-sized block into the state and permutes.
func (d *digest) absorb(block []byte) { absorbInto(&d.a, block) }

// absorbInto XORs one rate-sized block into a and permutes.
func absorbInto(a *[5][5]uint64, block []byte) {
	for i := 0; i < len(block)/8; i++ {
		lane := le64(block[i*8:])
		x, y := i%5, i/5
		a[x][y] ^= lane
	}
	permute(a)
}

func (d *digest) Sum(in []byte) []byte {
	// Copy the state so Sum does not disturb the running hash. The
	// partial block is padded on the stack: rate is at most 136 bytes.
	a := d.a
	var block [136]byte
	n := copy(block[:], d.buf)

	// Keccak (pre-FIPS) multi-rate padding: 0x01 ... 0x80.
	block[n] = 0x01
	block[d.rate-1] |= 0x80
	absorbInto(&a, block[:d.rate])

	// Squeeze.
	var out [64]byte
	off := 0
	for off < d.outSize {
		for i := 0; i < d.rate/8 && off < d.outSize; i++ {
			x, y := i%5, i/5
			putLE64(out[off:], a[x][y], d.outSize-off)
			off += 8
		}
		if off < d.outSize {
			permute(&a)
		}
	}
	return append(in, out[:d.outSize]...)
}

// sum finalizes into out without preserving the running state; out must
// be outSize bytes. Used by the one-shot helpers to stay allocation-free.
func (d *digest) sum(out []byte) {
	var block [136]byte
	n := copy(block[:], d.buf)
	block[n] = 0x01
	block[d.rate-1] |= 0x80
	absorbInto(&d.a, block[:d.rate])
	off := 0
	for off < d.outSize {
		for i := 0; i < d.rate/8 && off < d.outSize; i++ {
			x, y := i%5, i/5
			putLE64(out[off:], d.a[x][y], d.outSize-off)
			off += 8
		}
		if off < d.outSize {
			permute(&d.a)
		}
	}
}

// Sum256 computes the Keccak-256 digest of data without heap allocation.
func Sum256(data []byte) [32]byte {
	d := digest{rate: 136, outSize: 32}
	for len(data) >= d.rate {
		d.absorb(data[:d.rate])
		data = data[d.rate:]
	}
	var block [136]byte
	n := copy(block[:], data)
	block[n] = 0x01
	block[d.rate-1] |= 0x80
	d.absorb(block[:d.rate])
	var out [32]byte
	for i := 0; i < 4; i++ {
		x, y := i%5, i/5
		putLE64(out[i*8:], d.a[x][y], 8)
	}
	return out
}

// Sum512 computes the Keccak-512 digest of data.
func Sum512(data []byte) [64]byte {
	d := digest{rate: 72, outSize: 64}
	d.Write(data)
	var out [64]byte
	d.sum(out[:])
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// putLE64 writes up to max (≤8) bytes of v into b little-endian.
func putLE64(b []byte, v uint64, max int) {
	n := 8
	if max < n {
		n = max
	}
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
