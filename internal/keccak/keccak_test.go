package keccak

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// Published Keccak-256 test vectors (legacy padding, as used by Ethereum).
var vectors256 = []struct {
	in  string
	out string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
	// keccak256("hello world")
	{"hello world", "47173285a8d7341e5e972fc677286384f802f8ef42a5ec5f03bbfa254cb01fad"},
	// keccak256 of the canonical transfer event signature
	{"Transfer(address,address,uint256)", "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"},
	// Function selector source for ERC-20 transfer.
	{"transfer(address,uint256)", "a9059cbb2ab09eb219583f4a59a5d0623ade346d962bcd4e46b11da047c9049b"},
	{"The quick brown fox jumps over the lazy dog", "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"},
}

func TestSum256Vectors(t *testing.T) {
	for _, v := range vectors256 {
		got := Sum256([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.out {
			t.Errorf("Sum256(%q) = %x, want %s", v.in, got, v.out)
		}
	}
}

func TestSum512Vector(t *testing.T) {
	// Keccak-512("") from the original Keccak submission.
	want := "0eab42de4c3ceb9235fc91acffe746b29c29a8c366b7c60e4e67c466f36a4304" +
		"c00fa9caf9d87976ba469bcbe06713b435f091ef2769fb160cdab33d3670680e"
	got := Sum512(nil)
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("Sum512(\"\") = %x, want %s", got, want)
	}
}

// TestIncrementalWrite checks that chunked writes agree with one-shot
// hashing for a range of chunk sizes straddling the sponge rate.
func TestIncrementalWrite(t *testing.T) {
	msg := bytes.Repeat([]byte("legalchain"), 100) // 1000 bytes, > 7 blocks
	want := Sum256(msg)
	for _, chunk := range []int{1, 3, 7, 31, 135, 136, 137, 271, 1000} {
		h := New256()
		for off := 0; off < len(msg); off += chunk {
			end := off + chunk
			if end > len(msg) {
				end = len(msg)
			}
			h.Write(msg[off:end])
		}
		if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Errorf("chunk=%d: got %x want %x", chunk, got, want)
		}
	}
}

// TestSumIdempotent checks Sum does not consume or alter the running state.
func TestSumIdempotent(t *testing.T) {
	h := New256()
	h.Write([]byte("part one "))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("Sum not idempotent: %x vs %x", first, second)
	}
	h.Write([]byte("part two"))
	want := Sum256([]byte("part one part two"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Fatalf("continuing after Sum diverged: got %x want %x", got, want)
	}
}

func TestReset(t *testing.T) {
	h := New256()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Fatalf("Reset did not clear state")
	}
}

func TestSizes(t *testing.T) {
	if New256().Size() != 32 || New512().Size() != 64 {
		t.Fatal("wrong output sizes")
	}
	if New256().BlockSize() != 136 || New512().BlockSize() != 72 {
		t.Fatal("wrong block sizes")
	}
}

// Property: one-shot == incremental for arbitrary inputs and split points.
func TestQuickIncrementalAgreement(t *testing.T) {
	f := func(data []byte, split uint16) bool {
		s := int(split)
		if s > len(data) {
			s = len(data)
		}
		h := New256()
		h.Write(data[:s])
		h.Write(data[s:])
		want := Sum256(data)
		return bytes.Equal(h.Sum(nil), want[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct short inputs give distinct digests (collision
// resistance smoke test on a small corpus).
func TestNoTrivialCollisions(t *testing.T) {
	seen := map[[32]byte]string{}
	for _, s := range []string{"", "a", "b", "ab", "ba", "aa", "bb", "abc", "acb"} {
		d := Sum256([]byte(s))
		if prev, ok := seen[d]; ok {
			t.Fatalf("collision between %q and %q", prev, s)
		}
		seen[d] = s
	}
}

func TestLongInput(t *testing.T) {
	// Hash 1 MiB; mostly a crash/accounting test for the sponge loop.
	msg := []byte(strings.Repeat("0123456789abcdef", 65536))
	d1 := Sum256(msg)
	h := New256()
	h.Write(msg)
	if got := h.Sum(nil); !bytes.Equal(got, d1[:]) {
		t.Fatal("mismatch on 1MiB input")
	}
}

func BenchmarkSum256_1KiB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
