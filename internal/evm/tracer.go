package evm

import (
	"fmt"
	"strings"
)

// Tracer observes execution step by step (the debug_traceTransaction
// facility). Implementations must be cheap; the interpreter calls
// CaptureStep before every instruction when a tracer is installed.
type Tracer interface {
	// CaptureStep is invoked before executing one instruction.
	CaptureStep(depth int, pc uint64, op OpCode, gas uint64, stackSize int)
	// CaptureFault is invoked when a frame aborts with err.
	CaptureFault(depth int, pc uint64, op OpCode, err error)
}

// StructLog is one recorded step.
type StructLog struct {
	Depth     int
	PC        uint64
	Op        OpCode
	Gas       uint64
	StackSize int
}

// String renders one line of the trace.
func (l StructLog) String() string {
	return fmt.Sprintf("depth=%d pc=%04d gas=%-8d stack=%-3d %s", l.Depth, l.PC, l.Gas, l.StackSize, l.Op)
}

// StructLogger records every step up to a cap, plus the first fault.
type StructLogger struct {
	Logs  []StructLog
	Fault error
	// MaxSteps bounds memory; 0 means DefaultMaxSteps.
	MaxSteps int
	// OpCount aggregates executed instruction counts by mnemonic.
	OpCount map[string]int

	truncated bool
}

// DefaultMaxSteps bounds a StructLogger when MaxSteps is unset.
const DefaultMaxSteps = 100_000

// NewStructLogger returns an empty logger.
func NewStructLogger() *StructLogger {
	return &StructLogger{OpCount: map[string]int{}}
}

// CaptureStep implements Tracer.
func (s *StructLogger) CaptureStep(depth int, pc uint64, op OpCode, gas uint64, stackSize int) {
	limit := s.MaxSteps
	if limit == 0 {
		limit = DefaultMaxSteps
	}
	s.OpCount[op.String()]++
	if len(s.Logs) >= limit {
		s.truncated = true
		return
	}
	s.Logs = append(s.Logs, StructLog{Depth: depth, PC: pc, Op: op, Gas: gas, StackSize: stackSize})
}

// CaptureFault implements Tracer.
func (s *StructLogger) CaptureFault(depth int, pc uint64, op OpCode, err error) {
	if s.Fault == nil {
		s.Fault = fmt.Errorf("at depth %d pc %d (%s): %w", depth, pc, op, err)
	}
}

// Truncated reports whether the step cap was hit.
func (s *StructLogger) Truncated() bool { return s.truncated }

// Format renders the whole trace, one step per line.
func (s *StructLogger) Format() string {
	var b strings.Builder
	for _, l := range s.Logs {
		b.WriteString(l.String())
		b.WriteByte('\n')
	}
	if s.truncated {
		b.WriteString("... (truncated)\n")
	}
	if s.Fault != nil {
		fmt.Fprintf(&b, "FAULT: %v\n", s.Fault)
	}
	return b.String()
}
