package evm

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"legalchain/internal/abi"
	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

// Tracer observes execution step by step (the debug_traceTransaction
// facility). Implementations must be cheap; the interpreter calls
// CaptureStep before every instruction when a tracer is installed.
type Tracer interface {
	// CaptureStep is invoked before executing one instruction.
	CaptureStep(depth int, pc uint64, op OpCode, gas uint64, stackSize int)
	// CaptureFault is invoked when a frame aborts with err.
	CaptureFault(depth int, pc uint64, op OpCode, err error)
}

// FrameTracer is an optional extension of Tracer. When the installed
// tracer also implements it, the EVM reports every call/create frame —
// including precompile and empty-code calls that never reach the
// interpreter — as a balanced CaptureEnter/CaptureExit pair. This is
// what the geth-style callTracer and the span tracer build on; plain
// step tracers (StructLogger) are unaffected.
type FrameTracer interface {
	// CaptureEnter is invoked when a new frame opens. typ is the opcode
	// that opened it (CALL, STATICCALL, DELEGATECALL, CALLCODE, CREATE,
	// CREATE2); for delegate/callcode, to is the code address.
	CaptureEnter(typ OpCode, from, to ethtypes.Address, input []byte, gas uint64, value uint256.Int)
	// CaptureExit closes the most recently entered frame.
	CaptureExit(output []byte, gasUsed uint64, err error)
}

// StructLog is one recorded step.
type StructLog struct {
	Depth     int
	PC        uint64
	Op        OpCode
	Gas       uint64
	StackSize int
}

// String renders one line of the trace.
func (l StructLog) String() string {
	return fmt.Sprintf("depth=%d pc=%04d gas=%-8d stack=%-3d %s", l.Depth, l.PC, l.Gas, l.StackSize, l.Op)
}

// StructLogger records every step up to a cap, plus the first fault.
type StructLogger struct {
	Logs  []StructLog
	Fault error
	// MaxSteps bounds memory; 0 means DefaultMaxSteps.
	MaxSteps int
	// OpCount aggregates executed instruction counts by mnemonic.
	OpCount map[string]int

	truncated bool
}

// DefaultMaxSteps bounds a StructLogger when MaxSteps is unset.
const DefaultMaxSteps = 100_000

// NewStructLogger returns an empty logger.
func NewStructLogger() *StructLogger {
	return &StructLogger{OpCount: map[string]int{}}
}

// CaptureStep implements Tracer.
func (s *StructLogger) CaptureStep(depth int, pc uint64, op OpCode, gas uint64, stackSize int) {
	limit := s.MaxSteps
	if limit == 0 {
		limit = DefaultMaxSteps
	}
	s.OpCount[op.String()]++
	if len(s.Logs) >= limit {
		s.truncated = true
		return
	}
	s.Logs = append(s.Logs, StructLog{Depth: depth, PC: pc, Op: op, Gas: gas, StackSize: stackSize})
}

// CaptureFault implements Tracer.
func (s *StructLogger) CaptureFault(depth int, pc uint64, op OpCode, err error) {
	if s.Fault == nil {
		s.Fault = fmt.Errorf("at depth %d pc %d (%s): %w", depth, pc, op, err)
	}
}

// Truncated reports whether the step cap was hit.
func (s *StructLogger) Truncated() bool { return s.truncated }

// CallFrame is one node of the geth-style callTracer output: the frame
// tree of a transaction with inputs, outputs, gas accounting and revert
// reasons. It marshals to the exact JSON shape geth's callTracer emits
// (hex quantities, 0x-prefixed byte strings, nested "calls").
type CallFrame struct {
	Type         string
	From         ethtypes.Address
	To           ethtypes.Address
	Value        *uint256.Int
	Gas          uint64
	GasUsed      uint64
	Input        []byte
	Output       []byte
	Error        string
	RevertReason string
	Calls        []*CallFrame
}

// MarshalJSON renders the frame in geth callTracer shape.
func (f *CallFrame) MarshalJSON() ([]byte, error) {
	type frameJSON struct {
		Type         string       `json:"type"`
		From         string       `json:"from"`
		To           string       `json:"to,omitempty"`
		Value        string       `json:"value,omitempty"`
		Gas          string       `json:"gas"`
		GasUsed      string       `json:"gasUsed"`
		Input        string       `json:"input"`
		Output       string       `json:"output,omitempty"`
		Error        string       `json:"error,omitempty"`
		RevertReason string       `json:"revertReason,omitempty"`
		Calls        []*CallFrame `json:"calls,omitempty"`
	}
	out := frameJSON{
		Type:         f.Type,
		From:         f.From.Hex(),
		To:           f.To.Hex(),
		Gas:          fmt.Sprintf("0x%x", f.Gas),
		GasUsed:      fmt.Sprintf("0x%x", f.GasUsed),
		Input:        "0x" + hex.EncodeToString(f.Input),
		Error:        f.Error,
		RevertReason: f.RevertReason,
		Calls:        f.Calls,
	}
	if f.Value != nil {
		out.Value = f.Value.Hex()
	}
	if len(f.Output) > 0 {
		out.Output = "0x" + hex.EncodeToString(f.Output)
	}
	return json.Marshal(out)
}

// CallTracer collects the call-frame tree of one transaction. It
// ignores per-step events entirely, so it stays cheap even on long
// executions. Install as evm.Tracer; the EVM detects the FrameTracer
// extension and feeds it every frame.
type CallTracer struct {
	root  *CallFrame
	stack []*CallFrame
}

// NewCallTracer returns an empty call tracer.
func NewCallTracer() *CallTracer { return &CallTracer{} }

// CaptureStep implements Tracer (no-op).
func (t *CallTracer) CaptureStep(int, uint64, OpCode, uint64, int) {}

// CaptureFault implements Tracer (no-op; frame errors arrive through
// CaptureExit).
func (t *CallTracer) CaptureFault(int, uint64, OpCode, error) {}

// CaptureEnter implements FrameTracer.
func (t *CallTracer) CaptureEnter(typ OpCode, from, to ethtypes.Address, input []byte, gas uint64, value uint256.Int) {
	f := &CallFrame{
		Type:  typ.String(),
		From:  from,
		To:    to,
		Gas:   gas,
		Input: append([]byte(nil), input...),
	}
	if !value.IsZero() {
		v := value
		f.Value = &v
	}
	if len(t.stack) > 0 {
		parent := t.stack[len(t.stack)-1]
		parent.Calls = append(parent.Calls, f)
	} else if t.root == nil {
		t.root = f
	}
	t.stack = append(t.stack, f)
}

// CaptureExit implements FrameTracer.
func (t *CallTracer) CaptureExit(output []byte, gasUsed uint64, err error) {
	if len(t.stack) == 0 {
		return
	}
	f := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	f.GasUsed = gasUsed
	f.Output = append([]byte(nil), output...)
	if err != nil {
		f.Error = err.Error()
		if errors.Is(err, ErrExecutionReverted) {
			if reason, ok := abi.UnpackRevertReason(output); ok {
				f.RevertReason = reason
			}
		}
	}
}

// Result returns the root frame of the traced transaction (nil before
// any frame was captured).
func (t *CallTracer) Result() *CallFrame { return t.root }

// Find returns the first frame in the tree (pre-order) whose callee is
// to, or nil. Handy for asserting "this tx called contract X".
func (f *CallFrame) Find(to ethtypes.Address) *CallFrame {
	if f == nil {
		return nil
	}
	if f.To == to {
		return f
	}
	for _, c := range f.Calls {
		if hit := c.Find(to); hit != nil {
			return hit
		}
	}
	return nil
}

// Format renders the whole trace, one step per line.
func (s *StructLogger) Format() string {
	var b strings.Builder
	for _, l := range s.Logs {
		b.WriteString(l.String())
		b.WriteByte('\n')
	}
	if s.truncated {
		b.WriteString("... (truncated)\n")
	}
	if s.Fault != nil {
		fmt.Fprintf(&b, "FAULT: %v\n", s.Fault)
	}
	return b.String()
}
