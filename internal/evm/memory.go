package evm

import "legalchain/internal/uint256"

// Memory is the byte-addressed scratch memory of a call frame. It grows
// in 32-byte words; expansion cost is charged by the interpreter before
// the grow happens.
type Memory struct {
	data []byte
}

func newMemory() *Memory { return &Memory{} }

// Len returns the current size in bytes (always a multiple of 32).
func (m *Memory) Len() int { return len(m.data) }

// grow ensures memory covers [0, size) rounded up to a word boundary.
func (m *Memory) grow(size uint64) {
	if size == 0 {
		return
	}
	words := (size + 31) / 32
	need := int(words * 32)
	if need > len(m.data) {
		m.data = append(m.data, make([]byte, need-len(m.data))...)
	}
}

// Set writes value at [offset, offset+len(value)).
func (m *Memory) Set(offset uint64, value []byte) {
	if len(value) == 0 {
		return
	}
	m.grow(offset + uint64(len(value)))
	copy(m.data[offset:], value)
}

// SetWord writes a 32-byte big-endian word at offset.
func (m *Memory) SetWord(offset uint64, v uint256.Int) {
	w := v.Bytes32()
	m.Set(offset, w[:])
}

// SetByte writes one byte at offset.
func (m *Memory) SetByte(offset uint64, b byte) {
	m.grow(offset + 1)
	m.data[offset] = b
}

// GetWord reads the 32-byte word at offset (zero-extending).
func (m *Memory) GetWord(offset uint64) uint256.Int {
	m.grow(offset + 32)
	return uint256.SetBytes(m.data[offset : offset+32])
}

// GetCopy returns a copy of [offset, offset+size).
func (m *Memory) GetCopy(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	m.grow(offset + size)
	out := make([]byte, size)
	copy(out, m.data[offset:offset+size])
	return out
}

// View returns the live slice [offset, offset+size) after growing; the
// caller must not retain it across further writes.
func (m *Memory) View(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	m.grow(offset + size)
	return m.data[offset : offset+size]
}
