package evm

import (
	"strings"
	"testing"

	"legalchain/internal/uint256"
)

func TestStructLoggerRecordsSteps(t *testing.T) {
	e, st := testEVM()
	c := addrOf(0x70)
	deployRaw(st, c, (&asm{}).push(2).push(3).op(ADD).returnTop())
	tr := NewStructLogger()
	e.Tracer = tr
	if _, _, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero); err != nil {
		t.Fatal(err)
	}
	if len(tr.Logs) == 0 {
		t.Fatal("no steps recorded")
	}
	// First op is the first PUSH, last is RETURN.
	if tr.Logs[0].Op != PUSH1 {
		t.Fatalf("first op %s", tr.Logs[0].Op)
	}
	if tr.Logs[len(tr.Logs)-1].Op != RETURN {
		t.Fatalf("last op %s", tr.Logs[len(tr.Logs)-1].Op)
	}
	if tr.OpCount["ADD"] != 1 || tr.OpCount["PUSH1"] < 2 {
		t.Fatalf("op counts %v", tr.OpCount)
	}
	// Gas decreases monotonically within the frame.
	for i := 1; i < len(tr.Logs); i++ {
		if tr.Logs[i].Gas > tr.Logs[i-1].Gas {
			t.Fatal("gas increased mid-frame")
		}
	}
	if tr.Fault != nil {
		t.Fatalf("unexpected fault: %v", tr.Fault)
	}
	if !strings.Contains(tr.Format(), "ADD") {
		t.Fatal("Format missing ops")
	}
}

func TestStructLoggerCapturesFault(t *testing.T) {
	e, st := testEVM()
	c := addrOf(0x71)
	deployRaw(st, c, (&asm{}).push(99).op(JUMP).code) // invalid jump
	tr := NewStructLogger()
	e.Tracer = tr
	if _, _, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero); err == nil {
		t.Fatal("expected failure")
	}
	if tr.Fault == nil || !strings.Contains(tr.Fault.Error(), "invalid jump") {
		t.Fatalf("fault = %v", tr.Fault)
	}
}

func TestStructLoggerDepthAcrossCalls(t *testing.T) {
	e, st := testEVM()
	inner, outer := addrOf(0x72), addrOf(0x73)
	deployRaw(st, inner, (&asm{}).push(1).returnTop())
	a := &asm{}
	a.push(0).push(0).push(0).push(0).push(0)
	a.pushBytes(inner[:])
	a.push(100_000).op(CALL, POP, STOP)
	deployRaw(st, outer, a.code)
	tr := NewStructLogger()
	e.Tracer = tr
	callIt(t, e, outer, nil, uint256.Zero)
	var sawDepth2 bool
	for _, l := range tr.Logs {
		if l.Depth == 2 {
			sawDepth2 = true
		}
	}
	if !sawDepth2 {
		t.Fatal("inner frame not traced at depth 2")
	}
}

func TestStructLoggerTruncation(t *testing.T) {
	e, st := testEVM()
	c := addrOf(0x74)
	// Tight loop.
	deployRaw(st, c, (&asm{}).op(JUMPDEST).push(0).op(JUMP).code)
	tr := NewStructLogger()
	tr.MaxSteps = 10
	e.Tracer = tr
	e.Call(addrOf(0xEE), c, nil, 10_000, uint256.Zero)
	if len(tr.Logs) != 10 || !tr.Truncated() {
		t.Fatalf("logs=%d truncated=%v", len(tr.Logs), tr.Truncated())
	}
	if !strings.Contains(tr.Format(), "truncated") {
		t.Fatal("Format missing truncation marker")
	}
}
