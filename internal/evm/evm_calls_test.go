package evm

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/secp256k1"
	"legalchain/internal/uint256"
)

// buildInitCode wraps runtime code in a standard deployment preamble:
// CODECOPY the runtime part to memory and RETURN it.
func buildInitCode(runtime []byte) []byte {
	a := &asm{}
	// push len, push srcOffset (filled after we know preamble length), push 0, codecopy
	// Preamble layout is deterministic: compute length by assembling twice.
	assembleWith := func(srcOff uint64) []byte {
		b := &asm{}
		b.push(uint64(len(runtime))).push(srcOff).push(0).op(CODECOPY)
		b.push(uint64(len(runtime))).push(0).op(RETURN)
		return b.code
	}
	probe := assembleWith(0xff) // placeholder with same instruction widths
	code := assembleWith(uint64(len(probe)))
	if len(code) != len(probe) {
		// Widths changed (len crossed a push-size boundary); re-assemble.
		code = assembleWith(uint64(len(code)))
	}
	a.code = append(code, runtime...)
	return a.code
}

func TestCreateAndCallDeployedContract(t *testing.T) {
	e, st := testEVM()
	creator := addrOf(0xEE)
	st.AddBalance(creator, ethtypes.Ether(1))

	runtime := (&asm{}).push(42).returnTop() // always returns 42
	init := buildInitCode(runtime)
	ret, addr, left, err := e.Create(creator, init, 1_000_000, uint256.Zero)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if !bytes.Equal(ret, runtime) {
		t.Fatalf("deployed code mismatch: %x vs %x", ret, runtime)
	}
	if left == 0 {
		t.Fatal("create consumed all gas")
	}
	if !bytes.Equal(st.GetCode(addr), runtime) {
		t.Fatal("code not installed")
	}
	if st.GetNonce(addr) != 1 {
		t.Fatal("EIP-161 contract nonce must be 1")
	}
	if st.GetNonce(creator) != 1 {
		t.Fatal("creator nonce must bump")
	}
	out, _ := callIt(t, e, addr, nil, uint256.Zero)
	if uint256.SetBytes(out).Uint64() != 42 {
		t.Fatalf("deployed contract returned %x", out)
	}
	// Deterministic address.
	if addr != ethtypes.CreateAddress(creator, 0) {
		t.Fatal("create address mismatch")
	}
}

func TestCreateRevertingInitCode(t *testing.T) {
	e, st := testEVM()
	creator := addrOf(0xEE)
	st.AddBalance(creator, ethtypes.Ether(1))
	init := (&asm{}).push(0).push(0).op(REVERT).code
	_, addr, _, err := e.Create(creator, init, 500_000, ethtypes.Ether(1))
	if !errors.Is(err, ErrExecutionReverted) {
		t.Fatalf("err = %v", err)
	}
	if st.GetCodeSize(addr) != 0 {
		t.Fatal("code installed despite revert")
	}
	if st.GetBalance(creator) != ethtypes.Ether(1) {
		t.Fatal("value not returned on revert")
	}
	// Nonce still bumps on failed create (post-EIP-161 behaviour).
	if st.GetNonce(creator) != 1 {
		t.Fatal("creator nonce must bump even on failure")
	}
}

func TestNestedCallRevertIsolation(t *testing.T) {
	e, st := testEVM()
	inner, outer := addrOf(20), addrOf(21)
	// inner: sstore(1,1) then revert
	deployRaw(st, inner, (&asm{}).push(1).push(1).op(SSTORE).push(0).push(0).op(REVERT).code)
	// outer: sstore(2,2); call inner; return call-success flag
	out := &asm{}
	out.push(2).push(2).op(SSTORE)
	out.push(0).push(0).push(0).push(0).push(0) // retSize retOff inSize inOff value
	out.pushBytes(inner[:])                     // address
	out.push(200_000).op(CALL)
	deployRaw(st, outer, out.returnTop())

	ret, _ := callIt(t, e, outer, nil, uint256.Zero)
	if uint256.SetBytes(ret).Uint64() != 0 {
		t.Fatal("inner revert must push 0")
	}
	slot1 := ethtypes.Hash(uint256.NewUint64(1).Bytes32())
	slot2 := ethtypes.Hash(uint256.NewUint64(2).Bytes32())
	if !st.GetState(inner, slot1).IsZero() {
		t.Fatal("inner write survived its revert")
	}
	if st.GetState(outer, slot2).Uint64() != 2 {
		t.Fatal("outer write must survive")
	}
}

func TestReturnDataPropagation(t *testing.T) {
	e, st := testEVM()
	callee, caller := addrOf(22), addrOf(23)
	deployRaw(st, callee, (&asm{}).push(0xBEEF).returnTop())
	// caller: call callee, then RETURNDATACOPY everything and return it.
	a := &asm{}
	a.push(0).push(0).push(0).push(0).push(0)
	a.pushBytes(callee[:])
	a.push(100_000).op(CALL, POP)
	a.op(RETURNDATASIZE).push(0).push(0).op(RETURNDATACOPY)
	a.op(RETURNDATASIZE).push(0).op(RETURN)
	deployRaw(st, caller, a.code)
	ret, _ := callIt(t, e, caller, nil, uint256.Zero)
	if uint256.SetBytes(ret).Uint64() != 0xBEEF {
		t.Fatalf("returndata = %x", ret)
	}
}

func TestReturnDataCopyOutOfBounds(t *testing.T) {
	e, st := testEVM()
	c := addrOf(24)
	// No prior call -> returndatasize 0; copying 1 byte must fail hard.
	deployRaw(st, c, (&asm{}).push(1).push(0).push(0).op(RETURNDATACOPY).code)
	_, _, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero)
	if !errors.Is(err, ErrReturnDataOutOfBounds) {
		t.Fatalf("err = %v", err)
	}
}

func TestStaticCallBlocksWrites(t *testing.T) {
	e, st := testEVM()
	writer, caller := addrOf(25), addrOf(26)
	deployRaw(st, writer, (&asm{}).push(1).push(1).op(SSTORE).op(STOP).code)
	// caller does STATICCALL into writer and returns the success flag.
	a := &asm{}
	a.push(0).push(0).push(0).push(0)
	a.pushBytes(writer[:])
	a.push(100_000).op(STATICCALL)
	deployRaw(st, caller, a.returnTop())
	ret, _ := callIt(t, e, caller, nil, uint256.Zero)
	if uint256.SetBytes(ret).Uint64() != 0 {
		t.Fatal("static write must fail")
	}
	slot := ethtypes.Hash(uint256.NewUint64(1).Bytes32())
	if !st.GetState(writer, slot).IsZero() {
		t.Fatal("write leaked through staticcall")
	}
	// Direct StaticCall API should report the violation.
	_, _, err := e.StaticCall(addrOf(0xEE), writer, nil, 100_000)
	if !errors.Is(err, ErrWriteProtection) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelegateCallUsesCallerStorage(t *testing.T) {
	e, st := testEVM()
	lib, proxy := addrOf(27), addrOf(28)
	// lib: sstore(5, 0xAA)
	deployRaw(st, lib, (&asm{}).push(0xAA).push(5).op(SSTORE).op(STOP).code)
	// proxy: delegatecall lib
	a := &asm{}
	a.push(0).push(0).push(0).push(0)
	a.pushBytes(lib[:])
	a.push(200_000).op(DELEGATECALL, POP, STOP)
	deployRaw(st, proxy, a.code)
	callIt(t, e, proxy, nil, uint256.Zero)
	slot := ethtypes.Hash(uint256.NewUint64(5).Bytes32())
	if st.GetState(proxy, slot).Uint64() != 0xAA {
		t.Fatal("delegatecall must write proxy storage")
	}
	if !st.GetState(lib, slot).IsZero() {
		t.Fatal("delegatecall must not write lib storage")
	}
}

func TestDelegateCallPreservesCallerAndValue(t *testing.T) {
	e, st := testEVM()
	lib, proxy := addrOf(29), addrOf(30)
	st.AddBalance(addrOf(0xEE), ethtypes.Ether(1))
	// lib returns CALLER.
	deployRaw(st, lib, (&asm{}).op(CALLER).returnTop())
	a := &asm{}
	a.push(0).push(0).push(0).push(0)
	a.pushBytes(lib[:])
	a.push(200_000).op(DELEGATECALL, POP)
	a.op(RETURNDATASIZE).push(0).push(0).op(RETURNDATACOPY)
	a.op(RETURNDATASIZE).push(0).op(RETURN)
	deployRaw(st, proxy, a.code)
	ret, _ := callIt(t, e, proxy, nil, uint256.Zero)
	if got := wordToAddress(uint256.SetBytes(ret)); got != addrOf(0xEE) {
		t.Fatalf("delegatecall caller = %s, want original sender", got)
	}
}

func TestCallDepthLimit(t *testing.T) {
	e, st := testEVM()
	c := addrOf(31)
	// Contract calls itself forever; the 63/64 rule or depth cap stops it.
	a := &asm{}
	a.push(0).push(0).push(0).push(0).push(0)
	a.pushBytes(c[:])
	a.op(GAS).op(CALL, POP, STOP)
	deployRaw(st, c, a.code)
	_, _, err := e.Call(addrOf(0xEE), c, nil, 5_000_000, uint256.Zero)
	if err != nil {
		t.Fatalf("recursion must terminate cleanly at the top level: %v", err)
	}
}

func TestOutOfGas(t *testing.T) {
	e, st := testEVM()
	c := addrOf(32)
	// Infinite loop.
	deployRaw(st, c, (&asm{}).op(JUMPDEST).push(0).op(JUMP).code)
	_, left, err := e.Call(addrOf(0xEE), c, nil, 30_000, uint256.Zero)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v", err)
	}
	if left != 0 {
		t.Fatal("OOG must consume everything")
	}
}

func TestSha256AndIdentityPrecompiles(t *testing.T) {
	e, _ := testEVM()
	input := []byte("legal smart contracts")
	ret, _, err := e.Call(addrOf(0xEE), ethtypes.BytesToAddress([]byte{2}), input, 100_000, uint256.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret) != 32 {
		t.Fatal("sha256 output size")
	}
	ret2, _, err := e.Call(addrOf(0xEE), ethtypes.BytesToAddress([]byte{4}), input, 100_000, uint256.Zero)
	if err != nil || !bytes.Equal(ret2, input) {
		t.Fatal("identity precompile")
	}
}

func TestEcrecoverPrecompile(t *testing.T) {
	e, _ := testEVM()
	key := secp256k1.PrivateKeyFromScalar(big.NewInt(0x5eed))
	digest := ethtypes.Keccak256([]byte("signed message"))
	sig, err := key.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 128)
	copy(input[:32], digest[:])
	input[63] = sig.V + 27
	sig.R.FillBytes(input[64:96])
	sig.S.FillBytes(input[96:128])
	ret, _, err := e.Call(addrOf(0xEE), ethtypes.BytesToAddress([]byte{1}), input, 100_000, uint256.Zero)
	if err != nil {
		t.Fatal(err)
	}
	want := ethtypes.PubkeyToAddress(key.Public)
	if got := ethtypes.BytesToAddress(ret[12:]); got != want {
		t.Fatalf("ecrecover = %s, want %s", got, want)
	}
}

func TestSstoreRefundOnClear(t *testing.T) {
	e, st := testEVM()
	c := addrOf(33)
	// Pre-populate slot 1 across transactions.
	slot := ethtypes.Hash(uint256.NewUint64(1).Bytes32())
	st.SetState(c, slot, uint256.NewUint64(9))
	st.Finalise()
	deployRaw(st, c, (&asm{}).push(0).push(1).op(SSTORE).op(STOP).code)
	callIt(t, e, c, nil, uint256.Zero)
	if st.GetRefund() != RefundSstoreClear {
		t.Fatalf("refund = %d, want %d", st.GetRefund(), RefundSstoreClear)
	}
}

func TestSelfdestructMovesFunds(t *testing.T) {
	e, st := testEVM()
	c, heir := addrOf(34), addrOf(35)
	st.AddBalance(c, ethtypes.Ether(2))
	code := &asm{}
	code.pushBytes(heir[:])
	code.op(SELFDESTRUCT)
	deployRaw(st, c, code.code)
	callIt(t, e, c, nil, uint256.Zero)
	if st.GetBalance(heir) != ethtypes.Ether(2) {
		t.Fatal("funds not moved")
	}
	if !st.GetBalance(c).IsZero() {
		t.Fatal("balance not cleared")
	}
	st.Finalise()
	if st.Exist(c) {
		t.Fatal("account not deleted")
	}
}

func TestGasConservationAcrossCall(t *testing.T) {
	// Sum of gas consumed by caller frame must equal initial - left.
	e, st := testEVM()
	callee, caller := addrOf(36), addrOf(37)
	deployRaw(st, callee, (&asm{}).push(1).returnTop())
	a := &asm{}
	a.push(0).push(0).push(0).push(0).push(0)
	a.pushBytes(callee[:])
	a.push(50_000).op(CALL, POP, STOP)
	deployRaw(st, caller, a.code)
	const gasIn = 300_000
	_, left, err := e.Call(addrOf(0xEE), caller, nil, gasIn, uint256.Zero)
	if err != nil {
		t.Fatal(err)
	}
	used := gasIn - left
	if used == 0 || used > 10_000 {
		t.Fatalf("suspicious gas usage %d", used)
	}
}

func TestIntrinsicGas(t *testing.T) {
	if IntrinsicGas(nil, false) != 21000 {
		t.Fatal("base intrinsic")
	}
	if IntrinsicGas(nil, true) != 53000 {
		t.Fatal("create intrinsic")
	}
	if IntrinsicGas([]byte{0, 1}, false) != 21000+4+16 {
		t.Fatal("data intrinsic")
	}
}

func TestDisassemble(t *testing.T) {
	code := (&asm{}).push(0x1234).op(ADD, JUMPDEST).code
	lines := Disassemble(code)
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "0000 PUSH2 0x1234" {
		t.Fatalf("line0 = %q", lines[0])
	}
}

func TestStateRootChangesAfterExecution(t *testing.T) {
	e, st := testEVM()
	c := addrOf(38)
	deployRaw(st, c, (&asm{}).push(7).push(7).op(SSTORE).op(STOP).code)
	before := st.Root()
	callIt(t, e, c, nil, uint256.Zero)
	if st.Root() == before {
		t.Fatal("root unchanged after sstore")
	}
}

func BenchmarkSimpleTransferCall(b *testing.B) {
	e, st := testEVM()
	st.AddBalance(addrOf(0xEE), ethtypes.Ether(1000000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Call(addrOf(0xEE), addrOf(50), nil, 21000, uint256.One); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSstoreLoop(b *testing.B) {
	e, st := testEVM()
	c := addrOf(51)
	deployRaw(st, c, (&asm{}).push(1).push(1).op(SSTORE).op(STOP).code)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero); err != nil {
			b.Fatal(err)
		}
	}
}
