package evm

import (
	"encoding/json"
	"strings"
	"testing"

	"legalchain/internal/abi"
	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

func TestCallTracerNestedCalls(t *testing.T) {
	e, st := testEVM()
	inner, outer := addrOf(0x80), addrOf(0x81)
	deployRaw(st, inner, (&asm{}).push(7).returnTop())
	a := &asm{}
	a.push(0).push(0).push(0).push(0).push(0)
	a.pushBytes(inner[:])
	a.push(100_000).op(CALL, POP, STOP)
	deployRaw(st, outer, a.code)

	tr := NewCallTracer()
	e.Tracer = tr
	callIt(t, e, outer, []byte{0xAA, 0xBB}, uint256.Zero)

	root := tr.Result()
	if root == nil {
		t.Fatal("no root frame")
	}
	if root.Type != "CALL" || root.From != addrOf(0xEE) || root.To != outer {
		t.Fatalf("root frame = %+v", root)
	}
	if len(root.Input) != 2 || root.Input[0] != 0xAA {
		t.Fatalf("root input = %x", root.Input)
	}
	if root.GasUsed == 0 || root.GasUsed > root.Gas {
		t.Fatalf("root gas accounting: gas=%d used=%d", root.Gas, root.GasUsed)
	}
	if len(root.Calls) != 1 {
		t.Fatalf("got %d child frames, want 1", len(root.Calls))
	}
	child := root.Calls[0]
	if child.Type != "CALL" || child.From != outer || child.To != inner {
		t.Fatalf("child frame = %+v", child)
	}
	if len(child.Output) != 32 || child.Output[31] != 7 {
		t.Fatalf("child output = %x", child.Output)
	}
	if got := root.Find(inner); got != child {
		t.Fatal("Find(inner) missed the nested frame")
	}
}

func TestCallTracerRevertReason(t *testing.T) {
	tr := NewCallTracer()
	tr.CaptureEnter(CALL, addrOf(1), addrOf(2), nil, 50_000, uint256.Zero)
	payload := abi.PackRevertReason("rent amount must match")
	tr.CaptureExit(payload, 1234, ErrExecutionReverted)
	root := tr.Result()
	if root.Error == "" || root.RevertReason != "rent amount must match" {
		t.Fatalf("frame = %+v", root)
	}
	if root.GasUsed != 1234 {
		t.Fatalf("gasUsed = %d", root.GasUsed)
	}
}

func TestCallTracerPlainRevertAndFault(t *testing.T) {
	e, st := testEVM()
	c := addrOf(0x82)
	deployRaw(st, c, (&asm{}).push(0).push(0).op(REVERT).code)
	tr := NewCallTracer()
	e.Tracer = tr
	if _, _, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero); err == nil {
		t.Fatal("expected revert")
	}
	root := tr.Result()
	if !strings.Contains(root.Error, "reverted") || root.RevertReason != "" {
		t.Fatalf("frame = %+v", root)
	}

	// A non-revert fault consumes the frame's gas and is recorded too.
	c2 := addrOf(0x83)
	deployRaw(st, c2, (&asm{}).push(99).op(JUMP).code)
	tr = NewCallTracer()
	e.Tracer = tr
	e.Call(addrOf(0xEE), c2, nil, 60_000, uint256.Zero)
	root = tr.Result()
	if !strings.Contains(root.Error, "invalid jump") || root.GasUsed != 60_000 {
		t.Fatalf("fault frame = %+v", root)
	}
}

func TestCallTracerCreateFrame(t *testing.T) {
	e, _ := testEVM()
	// Init code returning a 1-byte runtime (STOP).
	init := (&asm{}).push(0).push(0).op(MSTORE8).push(1).push(0).op(RETURN).code
	tr := NewCallTracer()
	e.Tracer = tr
	_, addr, _, err := e.Create(addrOf(0xEE), init, 200_000, uint256.Zero)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Result()
	if root.Type != "CREATE" || root.To != addr {
		t.Fatalf("create frame = %+v", root)
	}
	if len(root.Output) != 1 {
		t.Fatalf("create output (runtime code) = %x", root.Output)
	}
}

func TestCallTracerValueTransferAndPrecompile(t *testing.T) {
	e, st := testEVM()
	st.AddBalance(addrOf(0xEE), ethtypes.Ether(1))
	c := addrOf(0x84)
	// CALL the identity precompile (0x4) with 3 bytes of memory.
	a := &asm{}
	a.push(0).push(0).push(3).push(0).push(0)
	a.pushBytes([]byte{4})
	a.push(50_000).op(CALL, POP, STOP)
	deployRaw(st, c, a.code)
	tr := NewCallTracer()
	e.Tracer = tr
	callIt(t, e, c, nil, uint256.NewUint64(5))
	root := tr.Result()
	if root.Value == nil || root.Value.Uint64() != 5 {
		t.Fatalf("root value = %+v", root.Value)
	}
	if len(root.Calls) != 1 || root.Calls[0].To != ethtypes.BytesToAddress([]byte{4}) {
		t.Fatalf("precompile frame missing: %+v", root.Calls)
	}
}

func TestCallFrameJSONShape(t *testing.T) {
	tr := NewCallTracer()
	v := uint256.NewUint64(42)
	tr.CaptureEnter(CALL, addrOf(1), addrOf(2), []byte{0xde, 0xad}, 90_000, v)
	tr.CaptureEnter(STATICCALL, addrOf(2), addrOf(3), nil, 80_000, uint256.Zero)
	tr.CaptureExit([]byte{0x01}, 100, nil)
	tr.CaptureExit([]byte{0x02}, 5_000, nil)

	raw, err := json.Marshal(tr.Result())
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]interface{}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got["type"] != "CALL" || got["value"] != "0x2a" || got["input"] != "0xdead" {
		t.Fatalf("frame JSON = %s", raw)
	}
	if got["gas"] != "0x15f90" || got["gasUsed"] != "0x1388" {
		t.Fatalf("gas fields = %s", raw)
	}
	calls, ok := got["calls"].([]interface{})
	if !ok || len(calls) != 1 {
		t.Fatalf("calls = %s", raw)
	}
	sub := calls[0].(map[string]interface{})
	if sub["type"] != "STATICCALL" || sub["output"] != "0x01" {
		t.Fatalf("nested frame = %s", raw)
	}
	if _, present := sub["value"]; present {
		t.Fatal("zero value must be omitted")
	}
	if _, present := sub["error"]; present {
		t.Fatal("empty error must be omitted")
	}
}
