package evm

import (
	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

// Gas schedule. The constants follow the Istanbul fork; relative
// ordering (storage ≫ state reads ≫ arithmetic) is what the
// reproduction's experiments depend on.
const (
	GasZero    = 0
	GasBase    = 2
	GasVeryLow = 3
	GasLow     = 5
	GasMid     = 8
	GasHigh    = 10

	GasExp         = 10
	GasExpByte     = 50
	GasSha3        = 30
	GasSha3Word    = 6
	GasCopyWord    = 3
	GasBlockhash   = 20
	GasJumpdest    = 1
	GasBalance     = 700
	GasExtCode     = 700
	GasExtCodeHash = 700
	GasSload       = 800

	// EIP-2200 SSTORE metering.
	GasSstoreSet      = 20000 // zero -> non-zero
	GasSstoreReset    = 5000  // non-zero -> different non-zero (or to zero)
	GasSstoreNoop     = 800   // current == new
	GasSstoreDirty    = 800   // already written this tx
	RefundSstoreClear = 15000

	GasCall            = 700
	GasCallValue       = 9000
	GasCallStipend     = 2300
	GasNewAccount      = 25000
	GasCreate          = 32000
	GasCodeDepositByte = 200
	GasSelfdestruct    = 5000
	RefundSelfdestruct = 24000

	GasLog      = 375
	GasLogTopic = 375
	GasLogByte  = 8

	// Transaction-level intrinsic gas.
	GasTx                = 21000
	GasTxCreate          = 32000
	GasTxDataZeroByte    = 4
	GasTxDataNonZeroByte = 16

	// MaxCodeSize is the EIP-170 deployed-code limit.
	MaxCodeSize = 24576

	// CallCreateDepth is the maximum call/create nesting.
	CallCreateDepth = 1024
)

// memoryGas returns the total cost of having `size` bytes of memory:
// 3·w + w²/512 where w is the word count.
func memoryGas(size uint64) uint64 {
	if size == 0 {
		return 0
	}
	words := (size + 31) / 32
	return words*3 + words*words/512
}

// memoryExpansionGas returns the incremental cost of growing memory from
// its current size to cover [offset, offset+length).
func memoryExpansionGas(mem *Memory, offset, length uint64) uint64 {
	if length == 0 {
		return 0
	}
	newSize := offset + length
	if newSize <= uint64(mem.Len()) {
		return 0
	}
	return memoryGas(newSize) - memoryGas(uint64(mem.Len()))
}

// copyGas is the per-word cost of copy operations.
func copyGas(length uint64) uint64 {
	return ((length + 31) / 32) * GasCopyWord
}

// sstoreGas computes the EIP-2200 gas and refund delta for writing value
// into slot of addr. refundDelta may be negative (refund taken back).
func (e *EVM) sstoreGas(addr ethtypes.Address, slot ethtypes.Hash, value uint256.Int) (gas uint64, refundAdd uint64, refundSub uint64) {
	current := e.State.GetState(addr, slot)
	if current == value {
		return GasSstoreNoop, 0, 0
	}
	original := e.State.GetCommittedState(addr, slot)
	if original == current { // clean slot
		if original.IsZero() {
			return GasSstoreSet, 0, 0
		}
		if value.IsZero() {
			return GasSstoreReset, RefundSstoreClear, 0
		}
		return GasSstoreReset, 0, 0
	}
	// Dirty slot: charge the cheap rate and adjust refunds.
	if !original.IsZero() {
		if current.IsZero() { // recreating a deleted slot
			refundSub += RefundSstoreClear
		} else if value.IsZero() { // deleting the slot now
			refundAdd += RefundSstoreClear
		}
	}
	if original == value { // restored to original
		if original.IsZero() {
			refundAdd += GasSstoreSet - GasSstoreDirty
		} else {
			refundAdd += GasSstoreReset - GasSstoreDirty
		}
	}
	return GasSstoreDirty, refundAdd, refundSub
}

// IntrinsicGas returns the transaction-level gas charged before
// execution starts.
func IntrinsicGas(data []byte, isCreate bool) uint64 {
	gas := uint64(GasTx)
	if isCreate {
		gas += GasTxCreate
	}
	for _, b := range data {
		if b == 0 {
			gas += GasTxDataZeroByte
		} else {
			gas += GasTxDataNonZeroByte
		}
	}
	return gas
}
