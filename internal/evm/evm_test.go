package evm

import (
	"bytes"
	"errors"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/state"
	"legalchain/internal/uint256"
)

// --- tiny test assembler -------------------------------------------------

type asm struct{ code []byte }

func (a *asm) op(ops ...OpCode) *asm {
	for _, o := range ops {
		a.code = append(a.code, byte(o))
	}
	return a
}

// push emits the smallest PUSH for v.
func (a *asm) push(v uint64) *asm {
	b := uint256.NewUint64(v).Bytes()
	if len(b) == 0 {
		b = []byte{0}
	}
	a.code = append(a.code, byte(PUSH1)+byte(len(b)-1))
	a.code = append(a.code, b...)
	return a
}

func (a *asm) pushBytes(b []byte) *asm {
	if len(b) == 0 || len(b) > 32 {
		panic("bad push")
	}
	a.code = append(a.code, byte(PUSH1)+byte(len(b)-1))
	a.code = append(a.code, b...)
	return a
}

// returnTop returns the top of stack as a 32-byte value.
func (a *asm) returnTop() []byte {
	a.push(0).op(MSTORE).push(32).push(0).op(RETURN)
	return a.code
}

func testEVM() (*EVM, *state.StateDB) {
	st := state.New()
	ctx := Context{
		ChainID: 1337, BlockNumber: 7, Time: 1_600_000_000,
		GasLimit: 10_000_000, Origin: addrOf(0xEE),
	}
	return New(ctx, st), st
}

func addrOf(b byte) ethtypes.Address {
	var a ethtypes.Address
	a[0] = 0xc0 // keep clear of the precompile address range
	a[19] = b
	return a
}

// deployRaw installs code directly at an address.
func deployRaw(st *state.StateDB, a ethtypes.Address, code []byte) {
	st.SetCode(a, code)
}

func callIt(t *testing.T, e *EVM, to ethtypes.Address, input []byte, value uint256.Int) ([]byte, uint64) {
	t.Helper()
	ret, left, err := e.Call(addrOf(0xEE), to, input, 1_000_000, value)
	if err != nil {
		t.Fatalf("call failed: %v (ret=%x)", err, ret)
	}
	return ret, left
}

// --- tests ----------------------------------------------------------------

func TestArithmeticReturn(t *testing.T) {
	e, st := testEVM()
	c := addrOf(1)
	// 3 + 4 * 5 = 23 (stack order: push 5,4 mul -> 20; push 3 add -> 23)
	code := (&asm{}).push(5).push(4).op(MUL).push(3).op(ADD).returnTop()
	deployRaw(st, c, code)
	ret, _ := callIt(t, e, c, nil, uint256.Zero)
	if got := uint256.SetBytes(ret); got.Uint64() != 23 {
		t.Fatalf("ret = %s", got)
	}
}

func TestComparisonAndBitops(t *testing.T) {
	e, st := testEVM()
	c := addrOf(1)
	// (10 < 20) | (0xF0 & 0x0F) == 1 | 0 == 1
	code := (&asm{}).
		push(20).push(10).op(LT).      // 10 < 20 -> 1
		push(0x0F).push(0xF0).op(AND). // 0
		op(OR).returnTop()
	deployRaw(st, c, code)
	ret, _ := callIt(t, e, c, nil, uint256.Zero)
	if uint256.SetBytes(ret).Uint64() != 1 {
		t.Fatalf("ret = %x", ret)
	}
}

func TestStoragePersistsAcrossCalls(t *testing.T) {
	e, st := testEVM()
	c := addrOf(2)
	// store: sstore(0x42, calldataload(0)); load: return sload(0x42)
	store := (&asm{}).push(0).op(CALLDATALOAD).push(0x42).op(SSTORE).op(STOP).code
	deployRaw(st, c, store)
	arg := uint256.NewUint64(777).Bytes32()
	callIt(t, e, c, arg[:], uint256.Zero)

	load := (&asm{}).push(0x42).op(SLOAD).returnTop()
	c2 := addrOf(3)
	deployRaw(st, c2, load)
	// Same storage? No — storage is per-contract. Write into c2 and read.
	slot := ethtypes.Hash(uint256.NewUint64(0x42).Bytes32())
	if st.GetState(c, slot).Uint64() != 777 {
		t.Fatal("sstore did not persist")
	}
	if st.GetState(c2, slot).Uint64() != 0 {
		t.Fatal("storage leaked across contracts")
	}
}

func TestRevertWithPayloadRollsBack(t *testing.T) {
	e, st := testEVM()
	c := addrOf(4)
	// sstore(1, 99); mstore(0, 0xdead); revert(30, 2) -> payload 0xdead
	code := (&asm{}).
		push(99).push(1).op(SSTORE).
		push(0xdead).push(0).op(MSTORE).
		push(2).push(30).op(REVERT).code
	deployRaw(st, c, code)
	ret, left, err := e.Call(addrOf(0xEE), c, nil, 1_000_000, uint256.Zero)
	if !errors.Is(err, ErrExecutionReverted) {
		t.Fatalf("err = %v", err)
	}
	if !bytes.Equal(ret, []byte{0xde, 0xad}) {
		t.Fatalf("revert payload = %x", ret)
	}
	if left == 0 {
		t.Fatal("revert must refund remaining gas")
	}
	slot := ethtypes.Hash(uint256.NewUint64(1).Bytes32())
	if !st.GetState(c, slot).IsZero() {
		t.Fatal("state change survived revert")
	}
}

func TestInvalidOpcodeConsumesGas(t *testing.T) {
	e, st := testEVM()
	c := addrOf(5)
	deployRaw(st, c, []byte{byte(INVALID)})
	_, left, err := e.Call(addrOf(0xEE), c, nil, 50_000, uint256.Zero)
	if !errors.Is(err, ErrInvalidOpcode) {
		t.Fatalf("err = %v", err)
	}
	if left != 0 {
		t.Fatal("invalid opcode must consume all gas")
	}
}

func TestJumpValidation(t *testing.T) {
	e, st := testEVM()
	c := addrOf(6)
	// JUMP to PUSH data must fail.
	code := (&asm{}).push(2).op(JUMP).code // position 2 is inside PUSH? pc0: PUSH1 02, pc2: JUMP. dest 2 is JUMP itself (not JUMPDEST)
	deployRaw(st, c, code)
	_, _, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero)
	if !errors.Is(err, ErrInvalidJump) {
		t.Fatalf("err = %v", err)
	}
	// Valid jump over a "trap".
	good := (&asm{}).push(4).op(JUMP, INVALID, JUMPDEST).push(7).returnTop()
	c2 := addrOf(7)
	deployRaw(st, c2, good)
	ret, _ := callIt(t, e, c2, nil, uint256.Zero)
	if uint256.SetBytes(ret).Uint64() != 7 {
		t.Fatalf("ret = %x", ret)
	}
}

func TestJumpdestInsidePushIsInvalid(t *testing.T) {
	e, st := testEVM()
	c := addrOf(8)
	// PUSH2 0x5b5b embeds 0x5b bytes; jumping there must fail.
	code := append([]byte{byte(PUSH1) + 1, 0x5b, 0x5b}, (&asm{}).push(1).op(JUMP).code...)
	deployRaw(st, c, code)
	_, _, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero)
	if !errors.Is(err, ErrInvalidJump) {
		t.Fatalf("err = %v", err)
	}
}

func TestValueTransferViaCall(t *testing.T) {
	e, st := testEVM()
	sender, recipient := addrOf(0xEE), addrOf(9)
	st.AddBalance(sender, ethtypes.Ether(10))
	_, _, err := e.Call(sender, recipient, nil, 100_000, ethtypes.Ether(3))
	if err != nil {
		t.Fatal(err)
	}
	if st.GetBalance(recipient) != ethtypes.Ether(3) {
		t.Fatal("recipient not credited")
	}
	if st.GetBalance(sender) != ethtypes.Ether(7) {
		t.Fatal("sender not debited")
	}
	// Overdraft fails without state change.
	_, _, err = e.Call(sender, recipient, nil, 100_000, ethtypes.Ether(100))
	if !errors.Is(err, ErrInsufficientBalance) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallerCallvalueSelfbalance(t *testing.T) {
	e, st := testEVM()
	c := addrOf(10)
	st.AddBalance(addrOf(0xEE), ethtypes.Ether(5))
	// return caller
	deployRaw(st, c, (&asm{}).op(CALLER).returnTop())
	ret, _ := callIt(t, e, c, nil, uint256.Zero)
	if got := wordToAddress(uint256.SetBytes(ret)); got != addrOf(0xEE) {
		t.Fatalf("caller = %s", got)
	}
	// return callvalue; also verify SELFBALANCE reflects the transfer.
	c2 := addrOf(11)
	deployRaw(st, c2, (&asm{}).op(CALLVALUE).returnTop())
	ret, _ = callIt(t, e, c2, nil, uint256.NewUint64(12345))
	if uint256.SetBytes(ret).Uint64() != 12345 {
		t.Fatal("callvalue")
	}
	c3 := addrOf(12)
	deployRaw(st, c3, (&asm{}).op(SELFBALANCE).returnTop())
	ret, _ = callIt(t, e, c3, nil, uint256.NewUint64(55))
	if uint256.SetBytes(ret).Uint64() != 55 {
		t.Fatal("selfbalance")
	}
}

func TestBlockContextOpcodes(t *testing.T) {
	e, st := testEVM()
	c := addrOf(13)
	deployRaw(st, c, (&asm{}).op(TIMESTAMP).op(NUMBER).op(ADD).returnTop())
	ret, _ := callIt(t, e, c, nil, uint256.Zero)
	if uint256.SetBytes(ret).Uint64() != 1_600_000_000+7 {
		t.Fatalf("timestamp+number = %x", ret)
	}
	c2 := addrOf(14)
	deployRaw(st, c2, (&asm{}).op(CHAINID).returnTop())
	ret, _ = callIt(t, e, c2, nil, uint256.Zero)
	if uint256.SetBytes(ret).Uint64() != 1337 {
		t.Fatal("chainid")
	}
}

func TestLogsEmitted(t *testing.T) {
	const topic = 0xABCD
	const dataWord = 0xD
	e, st := testEVM()
	c := addrOf(15)
	// LOG1: mstore data word, push topic, size, offset.
	code := (&asm{}).
		push(dataWord).push(0).op(MSTORE).
		push(topic).push(32).push(0).op(OpCode(0xa1)).code
	deployRaw(st, c, code)
	callIt(t, e, c, nil, uint256.Zero)
	logs := st.Logs()
	if len(logs) != 1 {
		t.Fatalf("logs = %d", len(logs))
	}
	if logs[0].Address != c {
		t.Fatal("log address")
	}
	if logs[0].Topics[0] != ethtypes.Hash(uint256.NewUint64(topic).Bytes32()) {
		t.Fatal("topic")
	}
	if uint256.SetBytes(logs[0].Data).Uint64() != dataWord {
		t.Fatal("data")
	}
}
