package evm

import (
	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

// memLimit bounds addressable memory offsets; anything beyond this costs
// more gas than a block can hold anyway.
const memLimit = 1 << 32

// asMemParam converts a stack word to a memory offset/size. ok is false
// when the value cannot possibly be paid for.
func asMemParam(v uint256.Int) (uint64, bool) {
	if !v.IsUint64() || v.Uint64() > memLimit {
		return 0, false
	}
	return v.Uint64(), true
}

// run executes the frame to completion. It returns the output data; on
// ErrExecutionReverted the output is the revert payload.
func (e *EVM) run(f *frame) ([]byte, error) {
	ret, err := e.exec(f)
	if err != nil && err != ErrExecutionReverted && e.Tracer != nil {
		var op OpCode
		if f.pc < uint64(len(f.code)) {
			op = OpCode(f.code[f.pc])
		}
		e.Tracer.CaptureFault(e.depth, f.pc, op, err)
	}
	return ret, err
}

// exec is the interpreter loop proper.
func (e *EVM) exec(f *frame) ([]byte, error) {
	// pop2/pop3 reduce boilerplate for fixed-arity ops.
	pop := func() (uint256.Int, error) { return f.stack.pop() }
	push := func(v uint256.Int) error { return f.stack.push(v) }

	// Step accounting stays a local counter in the hot loop; it is
	// folded into the EVM-wide accumulator once per frame.
	var steps uint64
	defer func() { e.steps += steps }()
	mFrames.Inc()

	for {
		steps++
		var op OpCode
		if f.pc < uint64(len(f.code)) {
			op = OpCode(f.code[f.pc])
		} else {
			op = STOP
		}
		if e.Tracer != nil {
			e.Tracer.CaptureStep(e.depth, f.pc, op, f.gas, f.stack.Len())
		}

		switch {
		// ---- arithmetic ----
		case op == STOP:
			return nil, nil

		case op == ADD, op == SUB, op == MUL, op == DIV, op == SDIV,
			op == MOD, op == SMOD, op == LT, op == GT, op == SLT, op == SGT,
			op == EQ, op == AND, op == OR, op == XOR, op == BYTE,
			op == SHL, op == SHR, op == SAR, op == SIGNEXTEND:
			cost := uint64(GasVeryLow)
			if op == DIV || op == SDIV || op == MOD || op == SMOD || op == SIGNEXTEND {
				cost = GasLow
			}
			if !f.useGas(cost) {
				return nil, ErrOutOfGas
			}
			a, err := pop()
			if err != nil {
				return nil, err
			}
			b, err := pop()
			if err != nil {
				return nil, err
			}
			var r uint256.Int
			switch op {
			case ADD:
				r = a.Add(b)
			case SUB:
				r = a.Sub(b)
			case MUL:
				r = a.Mul(b)
			case DIV:
				r = a.Div(b)
			case SDIV:
				r = a.SDiv(b)
			case MOD:
				r = a.Mod(b)
			case SMOD:
				r = a.SMod(b)
			case LT:
				r = boolWord(a.Lt(b))
			case GT:
				r = boolWord(a.Gt(b))
			case SLT:
				r = boolWord(a.Slt(b))
			case SGT:
				r = boolWord(a.Sgt(b))
			case EQ:
				r = boolWord(a.Eq(b))
			case AND:
				r = a.And(b)
			case OR:
				r = a.Or(b)
			case XOR:
				r = a.Xor(b)
			case BYTE:
				r = b.Byte(a)
			case SHL:
				r = b.Shl(a)
			case SHR:
				r = b.Shr(a)
			case SAR:
				r = b.Sar(a)
			case SIGNEXTEND:
				r = b.SignExtend(a)
			}
			if err := push(r); err != nil {
				return nil, err
			}
			f.pc++

		case op == ADDMOD, op == MULMOD:
			if !f.useGas(GasMid) {
				return nil, ErrOutOfGas
			}
			a, err := pop()
			if err != nil {
				return nil, err
			}
			b, err := pop()
			if err != nil {
				return nil, err
			}
			m, err := pop()
			if err != nil {
				return nil, err
			}
			var r uint256.Int
			if op == ADDMOD {
				r = a.AddMod(b, m)
			} else {
				r = a.MulMod(b, m)
			}
			if err := push(r); err != nil {
				return nil, err
			}
			f.pc++

		case op == EXP:
			base, err := pop()
			if err != nil {
				return nil, err
			}
			exp, err := pop()
			if err != nil {
				return nil, err
			}
			expBytes := uint64((exp.BitLen() + 7) / 8)
			if !f.useGas(GasExp + GasExpByte*expBytes) {
				return nil, ErrOutOfGas
			}
			if err := push(base.Exp(exp)); err != nil {
				return nil, err
			}
			f.pc++

		case op == ISZERO, op == NOT:
			if !f.useGas(GasVeryLow) {
				return nil, ErrOutOfGas
			}
			a, err := pop()
			if err != nil {
				return nil, err
			}
			var r uint256.Int
			if op == ISZERO {
				r = boolWord(a.IsZero())
			} else {
				r = a.Not()
			}
			if err := push(r); err != nil {
				return nil, err
			}
			f.pc++

		case op == SHA3:
			off, err := pop()
			if err != nil {
				return nil, err
			}
			size, err := pop()
			if err != nil {
				return nil, err
			}
			o, ok1 := asMemParam(off)
			s, ok2 := asMemParam(size)
			if !ok1 || !ok2 {
				return nil, ErrOutOfGas
			}
			words := (s + 31) / 32
			if !f.useGas(GasSha3 + GasSha3Word*words + memoryExpansionGas(f.mem, o, s)) {
				return nil, ErrOutOfGas
			}
			h := ethtypes.Keccak256(f.mem.View(o, s))
			if err := push(uint256.SetBytes(h[:])); err != nil {
				return nil, err
			}
			f.pc++

		// ---- environment ----
		case op == ADDRESS:
			if err := pushEnv(f, push, uint256.SetBytes(f.contract[:])); err != nil {
				return nil, err
			}

		case op == BALANCE:
			a, err := pop()
			if err != nil {
				return nil, err
			}
			if !f.useGas(GasBalance) {
				return nil, ErrOutOfGas
			}
			addr := wordToAddress(a)
			if err := push(e.State.GetBalance(addr)); err != nil {
				return nil, err
			}
			f.pc++

		case op == SELFBALANCE:
			if !f.useGas(GasLow) {
				return nil, ErrOutOfGas
			}
			if err := push(e.State.GetBalance(f.contract)); err != nil {
				return nil, err
			}
			f.pc++

		case op == ORIGIN:
			if err := pushEnv(f, push, uint256.SetBytes(e.Origin[:])); err != nil {
				return nil, err
			}
		case op == CALLER:
			if err := pushEnv(f, push, uint256.SetBytes(f.caller[:])); err != nil {
				return nil, err
			}
		case op == CALLVALUE:
			if err := pushEnv(f, push, f.value); err != nil {
				return nil, err
			}
		case op == GASPRICE:
			if err := pushEnv(f, push, e.GasPrice); err != nil {
				return nil, err
			}
		case op == COINBASE:
			if err := pushEnv(f, push, uint256.SetBytes(e.Coinbase[:])); err != nil {
				return nil, err
			}
		case op == TIMESTAMP:
			if err := pushEnv(f, push, uint256.NewUint64(e.Time)); err != nil {
				return nil, err
			}
		case op == NUMBER:
			if err := pushEnv(f, push, uint256.NewUint64(e.BlockNumber)); err != nil {
				return nil, err
			}
		case op == DIFFICULTY:
			if err := pushEnv(f, push, uint256.Zero); err != nil {
				return nil, err
			}
		case op == GASLIMIT:
			if err := pushEnv(f, push, uint256.NewUint64(e.GasLimit)); err != nil {
				return nil, err
			}
		case op == CHAINID:
			if err := pushEnv(f, push, uint256.NewUint64(e.ChainID)); err != nil {
				return nil, err
			}

		case op == BLOCKHASH:
			if !f.useGas(GasBlockhash) {
				return nil, ErrOutOfGas
			}
			n, err := pop()
			if err != nil {
				return nil, err
			}
			var h ethtypes.Hash
			if e.GetBlockHash != nil && n.IsUint64() {
				h = e.GetBlockHash(n.Uint64())
			}
			if err := push(uint256.SetBytes(h[:])); err != nil {
				return nil, err
			}
			f.pc++

		case op == CALLDATALOAD:
			if !f.useGas(GasVeryLow) {
				return nil, ErrOutOfGas
			}
			off, err := pop()
			if err != nil {
				return nil, err
			}
			var word [32]byte
			if off.IsUint64() {
				o := off.Uint64()
				for i := uint64(0); i < 32; i++ {
					if o+i < uint64(len(f.input)) {
						word[i] = f.input[o+i]
					}
				}
			}
			if err := push(uint256.SetBytes(word[:])); err != nil {
				return nil, err
			}
			f.pc++

		case op == CALLDATASIZE:
			if err := pushEnv(f, push, uint256.NewUint64(uint64(len(f.input)))); err != nil {
				return nil, err
			}
		case op == CODESIZE:
			if err := pushEnv(f, push, uint256.NewUint64(uint64(len(f.code)))); err != nil {
				return nil, err
			}
		case op == RETURNDATASIZE:
			if err := pushEnv(f, push, uint256.NewUint64(uint64(len(f.returnData)))); err != nil {
				return nil, err
			}

		case op == CALLDATACOPY, op == CODECOPY, op == RETURNDATACOPY:
			memOff, err := pop()
			if err != nil {
				return nil, err
			}
			srcOff, err := pop()
			if err != nil {
				return nil, err
			}
			length, err := pop()
			if err != nil {
				return nil, err
			}
			mo, ok1 := asMemParam(memOff)
			l, ok2 := asMemParam(length)
			if !ok1 || !ok2 {
				return nil, ErrOutOfGas
			}
			if !f.useGas(GasVeryLow + copyGas(l) + memoryExpansionGas(f.mem, mo, l)) {
				return nil, ErrOutOfGas
			}
			var src []byte
			switch op {
			case CALLDATACOPY:
				src = f.input
			case CODECOPY:
				src = f.code
			case RETURNDATACOPY:
				// Strict bounds per EIP-211.
				so, ok := asMemParam(srcOff)
				if !ok || so+l > uint64(len(f.returnData)) {
					return nil, ErrReturnDataOutOfBounds
				}
				f.mem.Set(mo, f.returnData[so:so+l])
				f.pc++
				continue
			}
			copyZeroPadded(f.mem, mo, src, srcOff, l)
			f.pc++

		case op == EXTCODESIZE:
			a, err := pop()
			if err != nil {
				return nil, err
			}
			if !f.useGas(GasExtCode) {
				return nil, ErrOutOfGas
			}
			if err := push(uint256.NewUint64(uint64(e.State.GetCodeSize(wordToAddress(a))))); err != nil {
				return nil, err
			}
			f.pc++

		case op == EXTCODEHASH:
			a, err := pop()
			if err != nil {
				return nil, err
			}
			if !f.useGas(GasExtCodeHash) {
				return nil, ErrOutOfGas
			}
			h := e.State.GetCodeHash(wordToAddress(a))
			if err := push(uint256.SetBytes(h[:])); err != nil {
				return nil, err
			}
			f.pc++

		case op == EXTCODECOPY:
			a, err := pop()
			if err != nil {
				return nil, err
			}
			memOff, err := pop()
			if err != nil {
				return nil, err
			}
			srcOff, err := pop()
			if err != nil {
				return nil, err
			}
			length, err := pop()
			if err != nil {
				return nil, err
			}
			mo, ok1 := asMemParam(memOff)
			l, ok2 := asMemParam(length)
			if !ok1 || !ok2 {
				return nil, ErrOutOfGas
			}
			if !f.useGas(GasExtCode + copyGas(l) + memoryExpansionGas(f.mem, mo, l)) {
				return nil, ErrOutOfGas
			}
			copyZeroPadded(f.mem, mo, e.State.GetCode(wordToAddress(a)), srcOff, l)
			f.pc++

		// ---- stack / memory / storage ----
		case op == POP:
			if !f.useGas(GasBase) {
				return nil, ErrOutOfGas
			}
			if _, err := pop(); err != nil {
				return nil, err
			}
			f.pc++

		case op == MLOAD:
			off, err := pop()
			if err != nil {
				return nil, err
			}
			o, ok := asMemParam(off)
			if !ok {
				return nil, ErrOutOfGas
			}
			if !f.useGas(GasVeryLow + memoryExpansionGas(f.mem, o, 32)) {
				return nil, ErrOutOfGas
			}
			if err := push(f.mem.GetWord(o)); err != nil {
				return nil, err
			}
			f.pc++

		case op == MSTORE:
			off, err := pop()
			if err != nil {
				return nil, err
			}
			val, err := pop()
			if err != nil {
				return nil, err
			}
			o, ok := asMemParam(off)
			if !ok {
				return nil, ErrOutOfGas
			}
			if !f.useGas(GasVeryLow + memoryExpansionGas(f.mem, o, 32)) {
				return nil, ErrOutOfGas
			}
			f.mem.SetWord(o, val)
			f.pc++

		case op == MSTORE8:
			off, err := pop()
			if err != nil {
				return nil, err
			}
			val, err := pop()
			if err != nil {
				return nil, err
			}
			o, ok := asMemParam(off)
			if !ok {
				return nil, ErrOutOfGas
			}
			if !f.useGas(GasVeryLow + memoryExpansionGas(f.mem, o, 1)) {
				return nil, ErrOutOfGas
			}
			f.mem.SetByte(o, byte(val.Uint64()))
			f.pc++

		case op == SLOAD:
			if !f.useGas(GasSload) {
				return nil, ErrOutOfGas
			}
			key, err := pop()
			if err != nil {
				return nil, err
			}
			slot := ethtypes.Hash(key.Bytes32())
			if err := push(e.State.GetState(f.contract, slot)); err != nil {
				return nil, err
			}
			f.pc++

		case op == SSTORE:
			if f.static {
				return nil, ErrWriteProtection
			}
			key, err := pop()
			if err != nil {
				return nil, err
			}
			val, err := pop()
			if err != nil {
				return nil, err
			}
			slot := ethtypes.Hash(key.Bytes32())
			gas, refundAdd, refundSub := e.sstoreGas(f.contract, slot, val)
			if !f.useGas(gas) {
				return nil, ErrOutOfGas
			}
			if refundAdd > 0 {
				e.State.AddRefund(refundAdd)
			}
			if refundSub > 0 {
				e.State.SubRefund(refundSub)
			}
			e.State.SetState(f.contract, slot, val)
			f.pc++

		case op == JUMP:
			if !f.useGas(GasMid) {
				return nil, ErrOutOfGas
			}
			dst, err := pop()
			if err != nil {
				return nil, err
			}
			if !dst.IsUint64() || !f.jumpdests[dst.Uint64()] {
				return nil, ErrInvalidJump
			}
			f.pc = dst.Uint64()

		case op == JUMPI:
			if !f.useGas(GasHigh) {
				return nil, ErrOutOfGas
			}
			dst, err := pop()
			if err != nil {
				return nil, err
			}
			cond, err := pop()
			if err != nil {
				return nil, err
			}
			if cond.IsZero() {
				f.pc++
				continue
			}
			if !dst.IsUint64() || !f.jumpdests[dst.Uint64()] {
				return nil, ErrInvalidJump
			}
			f.pc = dst.Uint64()

		case op == PC:
			if err := pushEnv(f, push, uint256.NewUint64(f.pc)); err != nil {
				return nil, err
			}
		case op == MSIZE:
			if err := pushEnv(f, push, uint256.NewUint64(uint64(f.mem.Len()))); err != nil {
				return nil, err
			}
		case op == GAS:
			if !f.useGas(GasBase) {
				return nil, ErrOutOfGas
			}
			if err := push(uint256.NewUint64(f.gas)); err != nil {
				return nil, err
			}
			f.pc++

		case op == JUMPDEST:
			if !f.useGas(GasJumpdest) {
				return nil, ErrOutOfGas
			}
			f.pc++

		case op >= PUSH1 && op <= PUSH32:
			if !f.useGas(GasVeryLow) {
				return nil, ErrOutOfGas
			}
			n := uint64(op-PUSH1) + 1
			var buf [32]byte
			for i := uint64(0); i < n; i++ {
				idx := f.pc + 1 + i
				if idx < uint64(len(f.code)) {
					buf[32-n+i] = f.code[idx]
				}
			}
			if err := push(uint256.SetBytes(buf[:])); err != nil {
				return nil, err
			}
			f.pc += n + 1

		case op >= DUP1 && op <= DUP16:
			if !f.useGas(GasVeryLow) {
				return nil, ErrOutOfGas
			}
			if err := f.stack.dup(int(op-DUP1) + 1); err != nil {
				return nil, err
			}
			f.pc++

		case op >= SWAP1 && op <= SWAP16:
			if !f.useGas(GasVeryLow) {
				return nil, ErrOutOfGas
			}
			if err := f.stack.swap(int(op-SWAP1) + 1); err != nil {
				return nil, err
			}
			f.pc++

		case op >= LOG0 && op <= LOG4:
			if f.static {
				return nil, ErrWriteProtection
			}
			topicCount := int(op - LOG0)
			off, err := pop()
			if err != nil {
				return nil, err
			}
			size, err := pop()
			if err != nil {
				return nil, err
			}
			o, ok1 := asMemParam(off)
			s, ok2 := asMemParam(size)
			if !ok1 || !ok2 {
				return nil, ErrOutOfGas
			}
			topics := make([]ethtypes.Hash, topicCount)
			for i := 0; i < topicCount; i++ {
				t, err := pop()
				if err != nil {
					return nil, err
				}
				topics[i] = ethtypes.Hash(t.Bytes32())
			}
			cost := uint64(GasLog) + uint64(topicCount)*GasLogTopic + GasLogByte*s +
				memoryExpansionGas(f.mem, o, s)
			if !f.useGas(cost) {
				return nil, ErrOutOfGas
			}
			e.State.AddLog(&ethtypes.Log{
				Address:     f.contract,
				Topics:      topics,
				Data:        f.mem.GetCopy(o, s),
				BlockNumber: e.BlockNumber,
			})
			f.pc++

		// ---- calls / creation / termination ----
		case op == CREATE, op == CREATE2:
			if f.static {
				return nil, ErrWriteProtection
			}
			ret, err := e.opCreate(f, op)
			if err != nil {
				return nil, err
			}
			_ = ret
			f.pc++

		case op == CALL, op == CALLCODE, op == DELEGATECALL, op == STATICCALL:
			if err := e.opCall(f, op); err != nil {
				return nil, err
			}
			f.pc++

		case op == RETURN, op == REVERT:
			off, err := pop()
			if err != nil {
				return nil, err
			}
			size, err := pop()
			if err != nil {
				return nil, err
			}
			o, ok1 := asMemParam(off)
			s, ok2 := asMemParam(size)
			if !ok1 || !ok2 {
				return nil, ErrOutOfGas
			}
			if !f.useGas(memoryExpansionGas(f.mem, o, s)) {
				return nil, ErrOutOfGas
			}
			out := f.mem.GetCopy(o, s)
			if op == REVERT {
				return out, ErrExecutionReverted
			}
			return out, nil

		case op == SELFDESTRUCT:
			if f.static {
				return nil, ErrWriteProtection
			}
			ben, err := pop()
			if err != nil {
				return nil, err
			}
			beneficiary := wordToAddress(ben)
			cost := uint64(GasSelfdestruct)
			bal := e.State.GetBalance(f.contract)
			if !bal.IsZero() && !e.State.Exist(beneficiary) {
				cost += GasNewAccount
			}
			if !f.useGas(cost) {
				return nil, ErrOutOfGas
			}
			if !e.State.HasSelfDestructed(f.contract) {
				e.State.AddRefund(RefundSelfdestruct)
			}
			e.State.AddBalance(beneficiary, bal)
			e.State.SelfDestruct(f.contract)
			return nil, nil

		case op == INVALID:
			return nil, ErrInvalidOpcode

		default:
			return nil, ErrInvalidOpcode
		}
	}
}

// pushEnv is the shared body of the cheap environment-reading opcodes.
func pushEnv(f *frame, push func(uint256.Int) error, v uint256.Int) error {
	if !f.useGas(GasBase) {
		return ErrOutOfGas
	}
	if err := push(v); err != nil {
		return err
	}
	f.pc++
	return nil
}

func boolWord(b bool) uint256.Int {
	if b {
		return uint256.One
	}
	return uint256.Zero
}

func wordToAddress(v uint256.Int) ethtypes.Address {
	b := v.Bytes32()
	return ethtypes.BytesToAddress(b[12:])
}

// copyZeroPadded copies src[srcOff:srcOff+l] into memory at mo,
// zero-filling beyond the end of src.
func copyZeroPadded(mem *Memory, mo uint64, src []byte, srcOff uint256.Int, l uint64) {
	if l == 0 {
		return
	}
	out := make([]byte, l)
	if srcOff.IsUint64() {
		so := srcOff.Uint64()
		for i := uint64(0); i < l; i++ {
			if so+i < uint64(len(src)) {
				out[i] = src[so+i]
			}
		}
	}
	mem.Set(mo, out)
}

// opCreate implements CREATE and CREATE2 from within a frame.
func (e *EVM) opCreate(f *frame, op OpCode) ([]byte, error) {
	value, err := f.stack.pop()
	if err != nil {
		return nil, err
	}
	off, err := f.stack.pop()
	if err != nil {
		return nil, err
	}
	size, err := f.stack.pop()
	if err != nil {
		return nil, err
	}
	var salt uint256.Int
	if op == CREATE2 {
		if salt, err = f.stack.pop(); err != nil {
			return nil, err
		}
	}
	o, ok1 := asMemParam(off)
	s, ok2 := asMemParam(size)
	if !ok1 || !ok2 {
		return nil, ErrOutOfGas
	}
	cost := uint64(GasCreate) + memoryExpansionGas(f.mem, o, s)
	if op == CREATE2 {
		cost += GasSha3Word * ((s + 31) / 32)
	}
	if !f.useGas(cost) {
		return nil, ErrOutOfGas
	}
	initCode := f.mem.GetCopy(o, s)

	// All-but-one-64th rule.
	childGas := f.gas - f.gas/64
	f.gas -= childGas

	var ret []byte
	var addr ethtypes.Address
	var left uint64
	var cErr error
	if op == CREATE2 {
		ret, addr, left, cErr = e.Create2(f.contract, initCode, childGas, value, salt)
	} else {
		ret, addr, left, cErr = e.Create(f.contract, initCode, childGas, value)
	}
	f.gas += left
	if cErr == nil {
		f.returnData = nil
		return ret, f.stack.push(uint256.SetBytes(addr[:]))
	}
	// Failure pushes zero; REVERT keeps payload in returnData.
	if cErr == ErrExecutionReverted {
		f.returnData = ret
	} else {
		f.returnData = nil
	}
	return nil, f.stack.push(uint256.Zero)
}

// opCall implements the four call variants from within a frame.
func (e *EVM) opCall(f *frame, op OpCode) error {
	gasReq, err := f.stack.pop()
	if err != nil {
		return err
	}
	target, err := f.stack.pop()
	if err != nil {
		return err
	}
	var value uint256.Int
	if op == CALL || op == CALLCODE {
		if value, err = f.stack.pop(); err != nil {
			return err
		}
	}
	inOff, err := f.stack.pop()
	if err != nil {
		return err
	}
	inSize, err := f.stack.pop()
	if err != nil {
		return err
	}
	outOff, err := f.stack.pop()
	if err != nil {
		return err
	}
	outSize, err := f.stack.pop()
	if err != nil {
		return err
	}

	if op == CALL && f.static && !value.IsZero() {
		return ErrWriteProtection
	}

	io, ok1 := asMemParam(inOff)
	is, ok2 := asMemParam(inSize)
	oo, ok3 := asMemParam(outOff)
	os, ok4 := asMemParam(outSize)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return ErrOutOfGas
	}

	to := wordToAddress(target)
	cost := uint64(GasCall)
	cost += memoryExpansionGas(f.mem, io, is)
	// Memory may expand twice; compute output expansion after charging input.
	if op == CALL || op == CALLCODE {
		if !value.IsZero() {
			cost += GasCallValue
			if op == CALL && !e.State.Exist(to) {
				cost += GasNewAccount
			}
		}
	}
	if !f.useGas(cost) {
		return ErrOutOfGas
	}
	f.mem.grow(io + is)
	if outGas := memoryExpansionGas(f.mem, oo, os); outGas > 0 {
		if !f.useGas(outGas) {
			return ErrOutOfGas
		}
		f.mem.grow(oo + os)
	}

	// 63/64 rule.
	available := f.gas - f.gas/64
	childGas := available
	if gasReq.IsUint64() && gasReq.Uint64() < available {
		childGas = gasReq.Uint64()
	}
	f.gas -= childGas
	if (op == CALL || op == CALLCODE) && !value.IsZero() {
		childGas += GasCallStipend
	}

	input := f.mem.GetCopy(io, is)

	var ret []byte
	var left uint64
	var cErr error
	switch op {
	case CALL:
		ret, left, cErr = e.Call(f.contract, to, input, childGas, value)
	case CALLCODE:
		ret, left, cErr = e.callCode(f, to, input, childGas, value)
	case DELEGATECALL:
		ret, left, cErr = e.delegateCall(f, to, input, childGas)
	case STATICCALL:
		ret, left, cErr = e.StaticCall(f.contract, to, input, childGas)
	}
	f.gas += left
	f.returnData = ret

	if len(ret) > 0 {
		n := os
		if uint64(len(ret)) < n {
			n = uint64(len(ret))
		}
		f.mem.Set(oo, ret[:n])
	}
	if cErr == nil {
		return f.stack.push(uint256.One)
	}
	return f.stack.push(uint256.Zero)
}
