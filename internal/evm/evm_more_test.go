package evm

import (
	"bytes"
	"errors"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/state"
	"legalchain/internal/uint256"
)

func TestCreate2DeterministicAddress(t *testing.T) {
	e, st := testEVM()
	creator := addrOf(0xEE)
	st.AddBalance(creator, ethtypes.Ether(1))
	runtime := (&asm{}).push(7).returnTop()
	init := buildInitCode(runtime)
	salt := uint256.NewUint64(0x5a17)

	_, addr1, _, err := e.Create2(creator, init, 1_000_000, uint256.Zero, salt)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the expected address: keccak(0xff ++ creator ++ salt ++ keccak(init))[12:].
	codeHash := ethtypes.Keccak256(init)
	saltB := salt.Bytes32()
	h := ethtypes.Keccak256([]byte{0xff}, creator[:], saltB[:], codeHash[:])
	want := ethtypes.BytesToAddress(h[12:])
	if addr1 != want {
		t.Fatalf("create2 address %s, want %s", addr1, want)
	}
	// Re-deploying at the same address collides.
	if _, _, _, err := e.Create2(creator, init, 1_000_000, uint256.Zero, salt); !errors.Is(err, ErrContractAddressCollision) {
		t.Fatalf("err = %v", err)
	}
	// A different salt lands elsewhere.
	_, addr2, _, err := e.Create2(creator, init, 1_000_000, uint256.Zero, uint256.NewUint64(2))
	if err != nil || addr2 == addr1 {
		t.Fatal("salt not part of address")
	}
}

func TestCreateFromContract(t *testing.T) {
	e, st := testEVM()
	factory := addrOf(0x60)
	st.AddBalance(addrOf(0xEE), ethtypes.Ether(1))
	// Factory: deploys a trivial runtime via CREATE and returns the address.
	// init code for child: PUSH1 0; PUSH1 0; RETURN (deploys empty code)
	child := (&asm{}).push(0).push(0).op(RETURN).code
	a := &asm{}
	// mstore child init at 0
	chunk := make([]byte, 32)
	copy(chunk, child)
	a.pushBytes(chunk).push(0).op(MSTORE)
	a.push(uint64(len(child))).push(0).push(0).op(CREATE) // value=0? stack: value, offset, size -> pops value first
	deployRaw(st, factory, a.returnTop())
	ret, _ := callIt(t, e, factory, nil, uint256.Zero)
	created := wordToAddress(uint256.SetBytes(ret))
	if created.IsZero() {
		t.Fatal("CREATE from contract returned zero")
	}
	// Nonce bookkeeping: the factory's nonce advanced.
	if st.GetNonce(factory) == 0 {
		t.Fatal("factory nonce not bumped")
	}
}

func TestStackOverflowDetected(t *testing.T) {
	e, st := testEVM()
	c := addrOf(0x61)
	// Push in an infinite loop; must hit the 1024 limit (or OOG, but we
	// give plenty of gas so the stack limit fires first).
	code := (&asm{}).op(JUMPDEST).push(1).push(0).op(JUMP).code
	deployRaw(st, c, code)
	_, _, err := e.Call(addrOf(0xEE), c, nil, 10_000_000, uint256.Zero)
	if !errors.Is(err, ErrStackOverflow) && !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v", err)
	}
}

func TestStackUnderflow(t *testing.T) {
	e, st := testEVM()
	c := addrOf(0x62)
	deployRaw(st, c, []byte{byte(ADD)})
	_, left, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero)
	if !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v", err)
	}
	if left != 0 {
		t.Fatal("underflow must consume gas")
	}
}

func TestMemoryExpansionCharged(t *testing.T) {
	e, st := testEVM()
	c := addrOf(0x63)
	// MSTORE at a large offset: gas must include quadratic expansion.
	code := (&asm{}).push(1).push(100_000).op(MSTORE).op(STOP).code
	deployRaw(st, c, code)
	_, leftSmall, err := e.Call(addrOf(0xEE), c, nil, 1_000_000, uint256.Zero)
	if err != nil {
		t.Fatal(err)
	}
	usedLarge := 1_000_000 - leftSmall
	// Same write at offset 0 is much cheaper.
	c2 := addrOf(0x64)
	deployRaw(st, c2, (&asm{}).push(1).push(0).op(MSTORE).op(STOP).code)
	_, leftZero, err := e.Call(addrOf(0xEE), c2, nil, 1_000_000, uint256.Zero)
	if err != nil {
		t.Fatal(err)
	}
	usedZero := 1_000_000 - leftZero
	if usedLarge < usedZero+9000 {
		t.Fatalf("expansion not charged: large=%d zero=%d", usedLarge, usedZero)
	}
	// And an absurd offset runs out of gas instead of allocating.
	c3 := addrOf(0x65)
	deployRaw(st, c3, (&asm{}).push(1).pushBytes(bytes.Repeat([]byte{0xff}, 16)).op(MSTORE).code)
	if _, _, err := e.Call(addrOf(0xEE), c3, nil, 1_000_000, uint256.Zero); !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpGasScalesWithExponentSize(t *testing.T) {
	e, st := testEVM()
	run := func(exp []byte) uint64 {
		c := addrOf(0x66)
		st.SetCode(c, (&asm{}).pushBytes(exp).push(3).op(EXP, POP, STOP).code)
		_, left, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero)
		if err != nil {
			t.Fatal(err)
		}
		return 100_000 - left
	}
	small := run([]byte{0x02})
	big := run(bytes.Repeat([]byte{0xff}, 8))
	if big <= small {
		t.Fatalf("EXP gas flat: small=%d big=%d", small, big)
	}
	if big-small != 7*GasExpByte {
		t.Fatalf("per-byte exponent charge wrong: delta=%d", big-small)
	}
}

func TestSha3Opcode(t *testing.T) {
	e, st := testEVM()
	c := addrOf(0x67)
	// keccak256("abc") via MSTORE + SHA3(29, 3)... simpler: store "abc"
	// left-aligned at 0 and hash 3 bytes at offset 0.
	word := make([]byte, 32)
	copy(word, "abc")
	a := &asm{}
	a.pushBytes(word).push(0).op(MSTORE)
	a.push(3).push(0).op(SHA3)
	deployRaw(st, c, a.returnTop())
	ret, _ := callIt(t, e, c, nil, uint256.Zero)
	want := ethtypes.Keccak256([]byte("abc"))
	if !bytes.Equal(ret, want[:]) {
		t.Fatalf("SHA3 = %x, want %s", ret, want)
	}
}

func TestBlockhashOpcode(t *testing.T) {
	known := ethtypes.Keccak256([]byte("block 5"))
	st := testEVMState(t)
	e := New(Context{
		GasLimit: 1_000_000,
		GetBlockHash: func(n uint64) ethtypes.Hash {
			if n == 5 {
				return known
			}
			return ethtypes.Hash{}
		},
	}, st)
	c := addrOf(0x68)
	st.SetCode(c, (&asm{}).push(5).op(BLOCKHASH).returnTop())
	ret, _, err := e.Call(addrOf(0xEE), c, nil, 100_000, uint256.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ret, known[:]) {
		t.Fatalf("BLOCKHASH = %x", ret)
	}
}

func TestExtcodeOpcodes(t *testing.T) {
	e, st := testEVM()
	target, reader := addrOf(0x69), addrOf(0x6a)
	code := (&asm{}).push(1).returnTop()
	deployRaw(st, target, code)
	// EXTCODESIZE
	a := &asm{}
	a.pushBytes(target[:]).op(EXTCODESIZE)
	deployRaw(st, reader, a.returnTop())
	ret, _ := callIt(t, e, reader, nil, uint256.Zero)
	if uint256.SetBytes(ret).Uint64() != uint64(len(code)) {
		t.Fatalf("EXTCODESIZE = %x want %d", ret, len(code))
	}
	// EXTCODEHASH
	reader2 := addrOf(0x6b)
	a2 := &asm{}
	a2.pushBytes(target[:]).op(EXTCODEHASH)
	deployRaw(st, reader2, a2.returnTop())
	ret, _ = callIt(t, e, reader2, nil, uint256.Zero)
	want := ethtypes.Keccak256(code)
	if !bytes.Equal(ret, want[:]) {
		t.Fatal("EXTCODEHASH mismatch")
	}
	// EXTCODECOPY: copy target's code and return it.
	reader3 := addrOf(0x6c)
	a3 := &asm{}
	a3.push(uint64(len(code))).push(0).push(0) // len, srcOff, dst
	a3.pushBytes(target[:]).op(EXTCODECOPY)
	a3.push(uint64(len(code))).push(0).op(RETURN)
	deployRaw(st, reader3, a3.code)
	ret, _ = callIt(t, e, reader3, nil, uint256.Zero)
	if !bytes.Equal(ret, code) {
		t.Fatalf("EXTCODECOPY = %x want %x", ret, code)
	}
}

func TestCallcodeRunsInCallerContext(t *testing.T) {
	e, st := testEVM()
	lib, user := addrOf(0x6d), addrOf(0x6e)
	deployRaw(st, lib, (&asm{}).push(0x77).push(9).op(SSTORE).op(STOP).code)
	a := &asm{}
	a.push(0).push(0).push(0).push(0).push(0) // outSize outOff inSize inOff value
	a.pushBytes(lib[:])
	a.push(200_000).op(CALLCODE, POP, STOP)
	deployRaw(st, user, a.code)
	callIt(t, e, user, nil, uint256.Zero)
	slot := ethtypes.Hash(uint256.NewUint64(9).Bytes32())
	if st.GetState(user, slot).Uint64() != 0x77 {
		t.Fatal("CALLCODE must write caller storage")
	}
	if !st.GetState(lib, slot).IsZero() {
		t.Fatal("CALLCODE wrote callee storage")
	}
}

func TestPrecompileGasShortfall(t *testing.T) {
	e, _ := testEVM()
	// sha256 with 10 gas: must fail OOG, not return garbage.
	_, left, err := e.Call(addrOf(0xEE), ethtypes.BytesToAddress([]byte{2}), []byte("x"), 10, uint256.Zero)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v", err)
	}
	if left != 0 {
		t.Fatal("gas left after precompile OOG")
	}
}

func TestCallToEmptyAccountSucceeds(t *testing.T) {
	e, st := testEVM()
	st.AddBalance(addrOf(0xEE), ethtypes.Ether(1))
	ret, left, err := e.Call(addrOf(0xEE), addrOf(0x6f), []byte{1, 2, 3}, 50_000, uint256.Zero)
	if err != nil || len(ret) != 0 {
		t.Fatalf("call to EOA: %x %v", ret, err)
	}
	if left != 50_000 {
		t.Fatal("EOA call must not consume execution gas")
	}
}

// testEVMState builds just the state (for tests that need a custom ctx).
func testEVMState(t *testing.T) *state.StateDB {
	t.Helper()
	_, st := testEVM()
	return st
}
