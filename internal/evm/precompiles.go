package evm

import (
	"crypto/sha256"
	"math/big"

	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
	"legalchain/internal/secp256k1"
)

// precompile is a built-in contract at a fixed address.
type precompile struct {
	gas func(input []byte) uint64
	run func(input []byte) ([]byte, error)
}

// precompiles maps the standard addresses. ecrecover (0x1), sha256 (0x2)
// and identity (0x4) are the ones contract code commonly touches.
var precompiles = map[ethtypes.Address]precompile{
	ethtypes.BytesToAddress([]byte{1}): {
		gas: func([]byte) uint64 { return 3000 },
		run: runEcrecover,
	},
	ethtypes.BytesToAddress([]byte{2}): {
		gas: func(in []byte) uint64 { return 60 + 12*uint64((len(in)+31)/32) },
		run: func(in []byte) ([]byte, error) {
			h := sha256.Sum256(in)
			return h[:], nil
		},
	},
	ethtypes.BytesToAddress([]byte{4}): {
		gas: func(in []byte) uint64 { return 15 + 3*uint64((len(in)+31)/32) },
		run: func(in []byte) ([]byte, error) {
			return append([]byte(nil), in...), nil
		},
	},
}

func runPrecompile(p precompile, input []byte, gas uint64) ([]byte, uint64, error) {
	cost := p.gas(input)
	if gas < cost {
		return nil, 0, ErrOutOfGas
	}
	out, err := p.run(input)
	if err != nil {
		return nil, 0, err
	}
	return out, gas - cost, nil
}

// runEcrecover implements the ecrecover precompile: input is
// [hash(32) | v(32) | r(32) | s(32)], output the recovered address
// left-padded to 32 bytes; invalid signatures return empty output.
func runEcrecover(input []byte) ([]byte, error) {
	in := hexutil.RightPad(input, 128)
	hash := in[:32]
	v := new(big.Int).SetBytes(in[32:64])
	r := new(big.Int).SetBytes(in[64:96])
	s := new(big.Int).SetBytes(in[96:128])
	if !v.IsUint64() || (v.Uint64() != 27 && v.Uint64() != 28) {
		return nil, nil
	}
	sig := &secp256k1.Signature{R: r, S: s, V: byte(v.Uint64() - 27)}
	pub, err := secp256k1.Recover(hash, sig)
	if err != nil {
		return nil, nil // invalid input yields empty output, not failure
	}
	addr := ethtypes.PubkeyToAddress(pub)
	return hexutil.LeftPad(addr[:], 32), nil
}
