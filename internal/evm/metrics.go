package evm

import (
	"legalchain/internal/metrics"
)

// EVM-tier metrics: distributions of gas and interpreter steps per
// outermost call/create, observed only at depth 0 so inner frames never
// double-count and the interpreter loop itself stays untouched beyond a
// local step counter.
var (
	mGasUsed = metrics.Default.Histogram("legalchain_evm_gas_used",
		"Gas consumed per outermost EVM call or create.",
		[]float64{700, 2_500, 10_000, 25_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000})
	mSteps = metrics.Default.Histogram("legalchain_evm_steps",
		"Interpreter steps executed per outermost EVM call or create.",
		[]float64{10, 50, 100, 500, 1_000, 5_000, 10_000, 100_000, 1_000_000})
	mFrames = metrics.Default.Counter("legalchain_evm_frames_total",
		"Bytecode frames executed (all call depths).")
	mReverts = metrics.Default.Counter("legalchain_evm_reverts_total",
		"Frames that ended in REVERT (all call depths).")
)

// observeOuter records the per-transaction distributions when an
// outermost frame finishes, and resets the step accumulator.
func (e *EVM) observeOuter(gasBefore, gasAfter uint64) {
	mGasUsed.Observe(float64(gasBefore - gasAfter))
	mSteps.Observe(float64(e.steps))
	e.steps = 0
}
