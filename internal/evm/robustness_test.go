package evm

import (
	"math/rand"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

// TestRandomBytecodeNeverPanics feeds the interpreter random byte
// sequences as contract code. Every outcome is acceptable except a
// panic: malformed code must surface as a VM error (or succeed).
func TestRandomBytecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	e, st := testEVM()
	st.AddBalance(addrOf(0xEE), ethtypes.Ether(1000))
	for i := 0; i < 500; i++ {
		code := make([]byte, r.Intn(200)+1)
		r.Read(code)
		c := addrOf(0x80)
		st.SetCode(c, code)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on random code %x: %v", code, p)
				}
			}()
			input := make([]byte, r.Intn(64))
			r.Read(input)
			e.Call(addrOf(0xEE), c, input, 50_000, uint256.NewUint64(uint64(r.Intn(5))))
		}()
	}
}

// TestRandomStructuredBytecode biases generation toward valid opcodes
// (pushes with bodies, dups, calls) to penetrate deeper paths.
func TestRandomStructuredBytecode(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	interesting := []OpCode{
		ADD, MUL, SUB, DIV, SHA3, CALLDATALOAD, CALLDATACOPY, CODECOPY,
		MLOAD, MSTORE, SLOAD, SSTORE, JUMP, JUMPI, JUMPDEST, PC, GAS,
		LOG0, OpCode(0xa1), CREATE, CALL, DELEGATECALL, STATICCALL,
		RETURN, REVERT, SELFDESTRUCT, RETURNDATACOPY, EXTCODECOPY,
		DUP1, DUP16, SWAP1, SWAP16, BALANCE, EXP, ADDMOD,
	}
	e, st := testEVM()
	st.AddBalance(addrOf(0xEE), ethtypes.Ether(1000))
	for i := 0; i < 500; i++ {
		var code []byte
		for len(code) < 64 {
			switch r.Intn(3) {
			case 0: // small push
				n := r.Intn(4) + 1
				code = append(code, byte(PUSH1)+byte(n-1))
				for j := 0; j < n; j++ {
					code = append(code, byte(r.Intn(256)))
				}
			default:
				code = append(code, byte(interesting[r.Intn(len(interesting))]))
			}
		}
		c := addrOf(0x81)
		st.SetCode(c, code)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on structured code %x: %v", code, p)
				}
			}()
			e.Call(addrOf(0xEE), c, []byte{1, 2, 3, 4}, 100_000, uint256.Zero)
		}()
	}
}

// TestGasNeverExceedsProvided: whatever code runs, gasUsed <= provided
// and leftover <= provided.
func TestGasNeverExceedsProvided(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	e, st := testEVM()
	for i := 0; i < 200; i++ {
		code := make([]byte, 80)
		r.Read(code)
		c := addrOf(0x82)
		st.SetCode(c, code)
		const budget = 30_000
		_, left, _ := e.Call(addrOf(0xEE), c, nil, budget, uint256.Zero)
		if left > budget {
			t.Fatalf("gas left %d exceeds budget", left)
		}
	}
}
