package evm

import (
	"errors"

	"legalchain/internal/uint256"
)

// StackLimit is the consensus maximum operand-stack depth.
const StackLimit = 1024

// Errors surfaced by stack manipulation.
var (
	ErrStackUnderflow = errors.New("evm: stack underflow")
	ErrStackOverflow  = errors.New("evm: stack overflow")
)

// Stack is the EVM operand stack of 256-bit words.
type Stack struct {
	data []uint256.Int
}

func newStack() *Stack {
	return &Stack{data: make([]uint256.Int, 0, 16)}
}

// Len returns the current depth.
func (s *Stack) Len() int { return len(s.data) }

// push appends a value; the interpreter validates the limit beforehand,
// but push double-checks to keep the invariant local.
func (s *Stack) push(v uint256.Int) error {
	if len(s.data) >= StackLimit {
		return ErrStackOverflow
	}
	s.data = append(s.data, v)
	return nil
}

// pop removes and returns the top value.
func (s *Stack) pop() (uint256.Int, error) {
	if len(s.data) == 0 {
		return uint256.Zero, ErrStackUnderflow
	}
	v := s.data[len(s.data)-1]
	s.data = s.data[:len(s.data)-1]
	return v, nil
}

// peek returns the n-th value from the top (0 = top) without removing it.
func (s *Stack) peek(n int) (uint256.Int, error) {
	if n >= len(s.data) {
		return uint256.Zero, ErrStackUnderflow
	}
	return s.data[len(s.data)-1-n], nil
}

// dup pushes a copy of the n-th value from the top (1-based, DUP1..DUP16).
func (s *Stack) dup(n int) error {
	v, err := s.peek(n - 1)
	if err != nil {
		return err
	}
	return s.push(v)
}

// swap exchanges the top with the n-th value below it (SWAP1..SWAP16).
func (s *Stack) swap(n int) error {
	if n >= len(s.data) {
		return ErrStackUnderflow
	}
	top := len(s.data) - 1
	s.data[top], s.data[top-n] = s.data[top-n], s.data[top]
	return nil
}
