// Package evm implements the Ethereum Virtual Machine: a gas-metered
// stack machine executing contract bytecode against the journaled world
// state, with the full call/create frame semantics (CALL, DELEGATECALL,
// STATICCALL, CREATE/CREATE2), event logs and revert handling that the
// legal-contract system above it relies on.
package evm

import (
	"errors"

	"legalchain/internal/ethtypes"
	"legalchain/internal/state"
	"legalchain/internal/uint256"
)

// Execution errors. ErrExecutionReverted carries its payload via the
// returned ret bytes; all others consume the frame's remaining gas.
var (
	ErrOutOfGas                 = errors.New("evm: out of gas")
	ErrExecutionReverted        = errors.New("evm: execution reverted")
	ErrInvalidJump              = errors.New("evm: invalid jump destination")
	ErrInvalidOpcode            = errors.New("evm: invalid opcode")
	ErrWriteProtection          = errors.New("evm: write protection (static call)")
	ErrInsufficientBalance      = errors.New("evm: insufficient balance for transfer")
	ErrMaxDepth                 = errors.New("evm: max call depth exceeded")
	ErrCodeSizeExceeded         = errors.New("evm: contract code size limit exceeded")
	ErrReturnDataOutOfBounds    = errors.New("evm: return data access out of bounds")
	ErrContractAddressCollision = errors.New("evm: contract address collision")
)

// Context carries block- and transaction-level data into execution.
type Context struct {
	ChainID     uint64
	BlockNumber uint64
	Time        uint64
	Coinbase    ethtypes.Address
	GasLimit    uint64
	GasPrice    uint256.Int
	Origin      ethtypes.Address
	// GetBlockHash resolves BLOCKHASH; may be nil (returns zero hashes).
	GetBlockHash func(uint64) ethtypes.Hash
}

// EVM executes bytecode in a given context against a StateDB.
type EVM struct {
	Context
	State *state.StateDB
	// Tracer, when non-nil, observes every executed instruction
	// (debug_traceTransaction support). Leave nil for full speed.
	Tracer Tracer
	depth  int
	// steps accumulates interpreter iterations across the frames of the
	// current outermost call, for the per-transaction step histogram.
	steps uint64
}

// New returns an EVM bound to ctx and st.
func New(ctx Context, st *state.StateDB) *EVM {
	return &EVM{Context: ctx, State: st}
}

// frame is one call frame.
type frame struct {
	contract ethtypes.Address // storage & event context
	caller   ethtypes.Address
	code     []byte
	input    []byte
	value    uint256.Int
	gas      uint64
	static   bool

	stack      *Stack
	mem        *Memory
	pc         uint64
	returnData []byte
	jumpdests  map[uint64]bool
}

func (f *frame) useGas(amount uint64) bool {
	if f.gas < amount {
		f.gas = 0
		return false
	}
	f.gas -= amount
	return true
}

// analyzeJumpdests finds the valid JUMPDEST positions, skipping PUSH data.
func analyzeJumpdests(code []byte) map[uint64]bool {
	dests := make(map[uint64]bool)
	for pc := 0; pc < len(code); {
		op := OpCode(code[pc])
		if op == JUMPDEST {
			dests[uint64(pc)] = true
		}
		if op.IsPush() {
			pc += int(op-PUSH1) + 2
		} else {
			pc++
		}
	}
	return dests
}

// canTransfer checks the sender has the funds.
func (e *EVM) canTransfer(from ethtypes.Address, amount uint256.Int) bool {
	return !e.State.GetBalance(from).Lt(amount)
}

// transfer moves value between accounts.
func (e *EVM) transfer(from, to ethtypes.Address, amount uint256.Int) {
	if amount.IsZero() {
		return
	}
	e.State.SubBalance(from, amount)
	e.State.AddBalance(to, amount)
}

// frameTracer returns the installed tracer's FrameTracer extension, or
// nil. The type assertion only runs when a tracer is installed, so the
// untraced path pays a single nil check.
func (e *EVM) frameTracer() FrameTracer {
	if e.Tracer == nil {
		return nil
	}
	ft, _ := e.Tracer.(FrameTracer)
	return ft
}

// Call executes the code at `to` with the given input, transferring
// value from caller. It returns the output, the gas left, and an error
// (ErrExecutionReverted keeps the output as the revert payload).
func (e *EVM) Call(caller, to ethtypes.Address, input []byte, gas uint64, value uint256.Int) (retOut []byte, gasLeft uint64, retErr error) {
	if ft := e.frameTracer(); ft != nil {
		ft.CaptureEnter(CALL, caller, to, input, gas, value)
		defer func() { ft.CaptureExit(retOut, gas-gasLeft, retErr) }()
	}
	if e.depth > CallCreateDepth {
		return nil, gas, ErrMaxDepth
	}
	if !value.IsZero() && !e.canTransfer(caller, value) {
		return nil, gas, ErrInsufficientBalance
	}
	snapshot := e.State.Snapshot()
	e.transfer(caller, to, value)

	if p, ok := precompiles[to]; ok {
		ret, left, err := runPrecompile(p, input, gas)
		if err != nil {
			e.State.RevertToSnapshot(snapshot)
		}
		return ret, left, err
	}

	code := e.State.GetCode(to)
	if len(code) == 0 {
		return nil, gas, nil
	}
	f := &frame{
		contract: to, caller: caller, code: code, input: input,
		value: value, gas: gas,
		stack: newStack(), mem: newMemory(),
		jumpdests: analyzeJumpdests(code),
	}
	outer := e.depth == 0
	e.depth++
	ret, err := e.run(f)
	e.depth--
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if errors.Is(err, ErrExecutionReverted) {
			mReverts.Inc()
		} else {
			f.gas = 0
		}
	}
	if outer {
		e.observeOuter(gas, f.gas)
	}
	return ret, f.gas, err
}

// StaticCall executes code with state mutation disabled.
func (e *EVM) StaticCall(caller, to ethtypes.Address, input []byte, gas uint64) (retOut []byte, gasLeft uint64, retErr error) {
	if ft := e.frameTracer(); ft != nil {
		ft.CaptureEnter(STATICCALL, caller, to, input, gas, uint256.Zero)
		defer func() { ft.CaptureExit(retOut, gas-gasLeft, retErr) }()
	}
	if e.depth > CallCreateDepth {
		return nil, gas, ErrMaxDepth
	}
	snapshot := e.State.Snapshot()
	if p, ok := precompiles[to]; ok {
		ret, left, err := runPrecompile(p, input, gas)
		if err != nil {
			e.State.RevertToSnapshot(snapshot)
		}
		return ret, left, err
	}
	code := e.State.GetCode(to)
	if len(code) == 0 {
		return nil, gas, nil
	}
	f := &frame{
		contract: to, caller: caller, code: code, input: input,
		gas: gas, static: true,
		stack: newStack(), mem: newMemory(),
		jumpdests: analyzeJumpdests(code),
	}
	outer := e.depth == 0
	e.depth++
	ret, err := e.run(f)
	e.depth--
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if errors.Is(err, ErrExecutionReverted) {
			mReverts.Inc()
		} else {
			f.gas = 0
		}
	}
	if outer {
		e.observeOuter(gas, f.gas)
	}
	return ret, f.gas, err
}

// delegateCall runs to's code in the parent's storage context, keeping
// the parent's caller and value.
func (e *EVM) delegateCall(parent *frame, to ethtypes.Address, input []byte, gas uint64) (retOut []byte, gasLeft uint64, retErr error) {
	if ft := e.frameTracer(); ft != nil {
		ft.CaptureEnter(DELEGATECALL, parent.contract, to, input, gas, uint256.Zero)
		defer func() { ft.CaptureExit(retOut, gas-gasLeft, retErr) }()
	}
	if e.depth > CallCreateDepth {
		return nil, gas, ErrMaxDepth
	}
	snapshot := e.State.Snapshot()
	if p, ok := precompiles[to]; ok {
		ret, left, err := runPrecompile(p, input, gas)
		if err != nil {
			e.State.RevertToSnapshot(snapshot)
		}
		return ret, left, err
	}
	code := e.State.GetCode(to)
	if len(code) == 0 {
		return nil, gas, nil
	}
	f := &frame{
		contract: parent.contract, caller: parent.caller, code: code,
		input: input, value: parent.value, gas: gas, static: parent.static,
		stack: newStack(), mem: newMemory(),
		jumpdests: analyzeJumpdests(code),
	}
	e.depth++
	ret, err := e.run(f)
	e.depth--
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if !errors.Is(err, ErrExecutionReverted) {
			f.gas = 0
		}
	}
	return ret, f.gas, err
}

// callCode runs to's code with the parent's storage but a fresh
// caller/value (legacy CALLCODE).
func (e *EVM) callCode(parent *frame, to ethtypes.Address, input []byte, gas uint64, value uint256.Int) (retOut []byte, gasLeft uint64, retErr error) {
	if ft := e.frameTracer(); ft != nil {
		ft.CaptureEnter(CALLCODE, parent.contract, to, input, gas, value)
		defer func() { ft.CaptureExit(retOut, gas-gasLeft, retErr) }()
	}
	if e.depth > CallCreateDepth {
		return nil, gas, ErrMaxDepth
	}
	if !value.IsZero() && !e.canTransfer(parent.contract, value) {
		return nil, gas, ErrInsufficientBalance
	}
	snapshot := e.State.Snapshot()
	code := e.State.GetCode(to)
	if len(code) == 0 {
		return nil, gas, nil
	}
	f := &frame{
		contract: parent.contract, caller: parent.contract, code: code,
		input: input, value: value, gas: gas, static: parent.static,
		stack: newStack(), mem: newMemory(),
		jumpdests: analyzeJumpdests(code),
	}
	e.depth++
	ret, err := e.run(f)
	e.depth--
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if !errors.Is(err, ErrExecutionReverted) {
			f.gas = 0
		}
	}
	return ret, f.gas, err
}

// Create deploys a contract: runs the init code and installs its return
// value as the account code at the CREATE address.
func (e *EVM) Create(caller ethtypes.Address, initCode []byte, gas uint64, value uint256.Int) ([]byte, ethtypes.Address, uint64, error) {
	nonce := e.State.GetNonce(caller)
	addr := ethtypes.CreateAddress(caller, nonce)
	return e.create(CREATE, caller, initCode, gas, value, addr, true)
}

// Create2 deploys at keccak(0xff ++ caller ++ salt ++ keccak(init))[12:].
func (e *EVM) Create2(caller ethtypes.Address, initCode []byte, gas uint64, value uint256.Int, salt uint256.Int) ([]byte, ethtypes.Address, uint64, error) {
	codeHash := ethtypes.Keccak256(initCode)
	saltBytes := salt.Bytes32()
	h := ethtypes.Keccak256([]byte{0xff}, caller[:], saltBytes[:], codeHash[:])
	addr := ethtypes.BytesToAddress(h[12:])
	return e.create(CREATE2, caller, initCode, gas, value, addr, true)
}

func (e *EVM) create(typ OpCode, caller ethtypes.Address, initCode []byte, gas uint64, value uint256.Int, addr ethtypes.Address, bumpNonce bool) (retOut []byte, retAddr ethtypes.Address, gasLeft uint64, retErr error) {
	if ft := e.frameTracer(); ft != nil {
		ft.CaptureEnter(typ, caller, addr, initCode, gas, value)
		defer func() { ft.CaptureExit(retOut, gas-gasLeft, retErr) }()
	}
	if e.depth > CallCreateDepth {
		return nil, ethtypes.Address{}, gas, ErrMaxDepth
	}
	if !value.IsZero() && !e.canTransfer(caller, value) {
		return nil, ethtypes.Address{}, gas, ErrInsufficientBalance
	}
	if bumpNonce {
		e.State.SetNonce(caller, e.State.GetNonce(caller)+1)
	}
	// Address collision check.
	if e.State.GetNonce(addr) != 0 || e.State.GetCodeSize(addr) != 0 {
		return nil, ethtypes.Address{}, 0, ErrContractAddressCollision
	}
	snapshot := e.State.Snapshot()
	e.State.CreateAccount(addr)
	e.State.SetNonce(addr, 1)
	e.transfer(caller, addr, value)

	f := &frame{
		contract: addr, caller: caller, code: initCode, input: nil,
		value: value, gas: gas,
		stack: newStack(), mem: newMemory(),
		jumpdests: analyzeJumpdests(initCode),
	}
	outer := e.depth == 0
	e.depth++
	ret, err := e.run(f)
	e.depth--
	if outer {
		defer func() { e.observeOuter(gas, f.gas) }()
	}
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if errors.Is(err, ErrExecutionReverted) {
			mReverts.Inc()
		} else {
			f.gas = 0
		}
		return ret, addr, f.gas, err
	}
	// Deposit the runtime code.
	if len(ret) > MaxCodeSize {
		e.State.RevertToSnapshot(snapshot)
		return nil, addr, 0, ErrCodeSizeExceeded
	}
	depositGas := uint64(len(ret)) * GasCodeDepositByte
	if !f.useGas(depositGas) {
		e.State.RevertToSnapshot(snapshot)
		return nil, addr, 0, ErrOutOfGas
	}
	e.State.SetCode(addr, ret)
	return ret, addr, f.gas, nil
}
