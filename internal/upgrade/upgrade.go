// Package upgrade is the guarded-upgrade subsystem: it decides whether
// a candidate contract version may join an evidence line (the paper's
// Fig. 2 doubly linked version list) BEFORE the manager sets next/prev.
//
// Following "Specification is Law" (Antonino et al.), a candidate is
// admitted only after three spec checks pass:
//
//  1. ABI compatibility — every public selector of v(n) is present and
//     signature-compatible in v(n+1), so existing callers and the
//     version-walk itself keep working;
//  2. storage-layout compatibility — computed from minisol's exported
//     layouts: retained fields keep their slot and type, new fields
//     append past the predecessor's frontier, orphaned slots are never
//     reused (the FlexiContracts precondition for in-place migration);
//  3. user-declared properties — eth_call assertions executed against
//     the candidate deployed on a fork of the live head view, so the
//     checks run on real predecessor-era state without touching the
//     chain.
//
// A failing candidate produces a structured *RejectionError whose
// report the manager records in the DataStorage evidence line and which
// the RPC tier surfaces as geth code 3 with the report in error.data
// (the same shape reverts use).
package upgrade

import (
	"fmt"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

// Rule codes of the rejection taxonomy. They are stable, machine-
// readable strings: the REST and JSON-RPC tiers forward them verbatim
// in error payloads, and the evidence line stores them.
const (
	RuleSelectorRemoved       = "abi_selector_removed"    // public method of v(n) missing in v(n+1)
	RuleSignatureChanged      = "abi_signature_changed"   // same name, different inputs or outputs
	RuleMutabilityWeakened    = "abi_mutability_weakened" // view/pure became state-changing
	RuleSlotMoved             = "layout_slot_moved"       // retained field assigned a different slot
	RuleTypeChanged           = "layout_type_changed"     // retained field changed type
	RuleSlotReused            = "layout_slot_reused"      // new field lands below the predecessor's frontier
	RulePropertyFailed        = "property_failed"         // declared property check returned the wrong value
	RulePropertyUnverifiable  = "property_unverifiable"   // declared property could not be executed
	RuleCandidateUndeployable = "candidate_undeployable"  // candidate's constructor reverted on the fork
)

// Check is one failed (or noted) verification rule.
type Check struct {
	Rule    string `json:"rule"`
	Subject string `json:"subject"` // method signature, variable name, or property name
	Detail  string `json:"detail"`
}

// Property is a user-declared behavioural assertion on the candidate:
// Method is called (with Args) on the candidate deployed to a fork of
// the head view; the call must not revert, and when Want is non-empty
// the rendered return value must equal it. Renderings: uints decimal,
// addresses 0x-hex, bools "true"/"false", strings verbatim; multiple
// return values join with ",".
type Property struct {
	Name   string        `json:"name"`
	Method string        `json:"method"`
	Args   []interface{} `json:"args,omitempty"`
	Want   string        `json:"want,omitempty"`
}

// PropertyResult is the outcome of one declared property check.
type PropertyResult struct {
	Name   string `json:"name"`
	Method string `json:"method"`
	OK     bool   `json:"ok"`
	Got    string `json:"got,omitempty"`
	Want   string `json:"want,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Report is the full verification verdict for one candidate version.
// It marshals to JSON unchanged for the evidence line, the REST error
// envelope and JSON-RPC error.data.
type Report struct {
	Candidate     string           `json:"candidate"` // artifact name
	Prev          string           `json:"prev"`      // predecessor address
	ABIChecked    bool             `json:"abiChecked"`
	LayoutChecked bool             `json:"layoutChecked"` // false when the predecessor has no stored layout
	ABIDiff       *ABIDiff         `json:"abiDiff,omitempty"`
	LayoutDiff    *LayoutDiff      `json:"layoutDiff,omitempty"`
	Migration     *MigrationPlan   `json:"migration,omitempty"` // derived when the layout diff is compatible
	Properties    []PropertyResult `json:"properties,omitempty"`
	Failures      []Check          `json:"failures,omitempty"`
	Notes         []string         `json:"notes,omitempty"`
}

// OK reports whether the candidate passed every check.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

func (r *Report) fail(rule, subject, format string, args ...interface{}) {
	r.Failures = append(r.Failures, Check{Rule: rule, Subject: subject, Detail: fmt.Sprintf(format, args...)})
}

// RejectionError carries a failed verification report as an error. The
// RPC tier maps it to geth code 3 with the report as structured
// error.data; the REST tier maps it to the "upgrade_rejected" envelope
// code.
type RejectionError struct {
	Report *Report
}

// Error implements error.
func (e *RejectionError) Error() string {
	n := len(e.Report.Failures)
	if n == 0 {
		return "upgrade rejected"
	}
	first := e.Report.Failures[0]
	if n == 1 {
		return fmt.Sprintf("upgrade rejected: %s (%s): %s", first.Rule, first.Subject, first.Detail)
	}
	return fmt.Sprintf("upgrade rejected: %d checks failed, first %s (%s): %s", n, first.Rule, first.Subject, first.Detail)
}

// RPCCode implements the rpc.DataError contract: upgrade rejections
// share geth's code 3 with reverted execution, because both mean "the
// chain refused the state change for a contract-level reason".
func (e *RejectionError) RPCCode() int { return 3 }

// ErrorData implements rpc.DataError: the structured report rides in
// error.data the way revert return bytes do.
func (e *RejectionError) ErrorData() interface{} {
	return map[string]interface{}{"kind": "upgrade_rejected", "report": e.Report}
}

// renderValue renders one decoded ABI output the way the evidence line
// stores values (see core.SnapshotContract): uints decimal, addresses
// hex, bools true/false, strings verbatim.
func renderValue(v interface{}) (string, error) {
	switch x := v.(type) {
	case uint256.Int:
		return x.String(), nil
	case ethtypes.Address:
		return x.Hex(), nil
	case string:
		return x, nil
	case bool:
		if x {
			return "true", nil
		}
		return "false", nil
	default:
		return "", fmt.Errorf("unsupported property value type %T", v)
	}
}

// renderReturn joins a method's decoded outputs with commas.
func renderReturn(vals []interface{}) (string, error) {
	out := ""
	for i, v := range vals {
		s, err := renderValue(v)
		if err != nil {
			return "", err
		}
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out, nil
}
