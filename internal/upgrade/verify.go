package upgrade

import (
	"legalchain/internal/abi"
	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/minisol"
	"legalchain/internal/uint256"
)

// Spec is what the predecessor version promises: its published ABI, its
// stored storage layout (nil for versions deployed before layouts were
// published — the layout check is then skipped with a note), and any
// user-declared behavioural properties the candidate must satisfy.
type Spec struct {
	PrevAddress ethtypes.Address
	PrevABI     *abi.ABI
	PrevLayout  *minisol.Layout
	Properties  []Property
}

// Candidate is the version asking to join the evidence line.
type Candidate struct {
	Name     string
	ABI      *abi.ABI
	Layout   *minisol.Layout
	Bytecode []byte
	CtorArgs []interface{}
}

// ForkView is the slice of the chain tier the property checks need: a
// what-if fork of the live head. *chain.HeadView satisfies it.
type ForkView interface {
	Fork() *chain.Fork
}

// Verify runs the three spec checks against a candidate and returns the
// full report; callers reject the upgrade when !report.OK(). A nil view
// is tolerated only when no properties are declared — declared-but-
// unexecutable properties fail conservatively (RulePropertyUnverifiable)
// rather than waving the candidate through.
func Verify(spec Spec, cand Candidate, view ForkView, from ethtypes.Address) *Report {
	r := &Report{Candidate: cand.Name, Prev: spec.PrevAddress.Hex()}

	if spec.PrevABI != nil && cand.ABI != nil {
		r.checkABI(DiffABI(spec.PrevABI, cand.ABI))
	}

	switch {
	case spec.PrevLayout == nil:
		r.Notes = append(r.Notes, "layout check skipped: predecessor has no stored layout")
	case cand.Layout == nil:
		r.Notes = append(r.Notes, "layout check skipped: candidate artifact carries no layout")
	default:
		r.checkLayout(DiffLayout(spec.PrevLayout, cand.Layout), spec.PrevLayout)
	}

	if len(spec.Properties) > 0 {
		r.checkProperties(spec.Properties, cand, view, from)
	}
	return r
}

// checkProperties deploys the candidate on a fork of the head view and
// runs each declared property as an eth_call against it.
func (r *Report) checkProperties(props []Property, cand Candidate, view ForkView, from ethtypes.Address) {
	if view == nil {
		for _, p := range props {
			r.Properties = append(r.Properties, PropertyResult{
				Name: p.Name, Method: p.Method, OK: false, Error: "no head view available to execute the check"})
			r.fail(RulePropertyUnverifiable, p.Name, "no head view available to execute the check")
		}
		return
	}

	fork := view.Fork()
	fork.FundAccount(from, ethtypes.Ether(1_000_000_000))

	initCode := cand.Bytecode
	if len(cand.CtorArgs) > 0 {
		ctorData, err := cand.ABI.PackConstructor(cand.CtorArgs...)
		if err != nil {
			r.fail(RuleCandidateUndeployable, cand.Name, "constructor args: %v", err)
			return
		}
		initCode = append(append([]byte(nil), cand.Bytecode...), ctorData...)
	}
	addr, res := fork.Create(from, initCode, 0, uint256.Zero)
	if res.Err != nil {
		detail := res.Err.Error()
		if res.Reason != "" {
			detail += ": " + res.Reason
		}
		r.fail(RuleCandidateUndeployable, cand.Name, "constructor reverted on fork of block %d: %s", fork.BlockNumber(), detail)
		return
	}

	for _, p := range props {
		pr := PropertyResult{Name: p.Name, Method: p.Method, Want: p.Want}
		data, err := cand.ABI.Pack(p.Method, p.Args...)
		if err != nil {
			pr.Error = err.Error()
			r.Properties = append(r.Properties, pr)
			r.fail(RulePropertyUnverifiable, p.Name, "pack %s: %v", p.Method, err)
			continue
		}
		res := fork.Call(from, addr, data, 0, uint256.Zero)
		if res.Err != nil {
			pr.Error = res.Err.Error()
			if res.Reason != "" {
				pr.Error += ": " + res.Reason
			}
			r.Properties = append(r.Properties, pr)
			r.fail(RulePropertyFailed, p.Name, "%s reverted: %s", p.Method, pr.Error)
			continue
		}
		vals, err := cand.ABI.Unpack(p.Method, res.Return)
		if err != nil {
			pr.Error = err.Error()
			r.Properties = append(r.Properties, pr)
			r.fail(RulePropertyUnverifiable, p.Name, "decode %s return: %v", p.Method, err)
			continue
		}
		got, err := renderReturn(vals)
		if err != nil {
			pr.Error = err.Error()
			r.Properties = append(r.Properties, pr)
			r.fail(RulePropertyUnverifiable, p.Name, "render %s return: %v", p.Method, err)
			continue
		}
		pr.Got = got
		pr.OK = p.Want == "" || got == p.Want
		r.Properties = append(r.Properties, pr)
		if !pr.OK {
			r.fail(RulePropertyFailed, p.Name, "%s returned %q, want %q", p.Method, got, p.Want)
		}
	}
}
