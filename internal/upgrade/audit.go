package upgrade

import (
	"legalchain/internal/abi"
	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/evm"
	"legalchain/internal/minisol"
)

// Audit report types. `legalctl audit <addr>` and the REST audit
// endpoint walk an evidence line's doubly linked version list and
// render, for every adjacent pair, what actually changed between the
// versions: bytecode, public ABI surface, storage layout, and observed
// behaviour (traced execution of the shared read-only methods). The
// core tier assembles AuditReport; this package owns the pairwise
// diffing so the shapes stay next to the rules they report on.

// VersionNode describes one deployed version in chain order (root
// first).
type VersionNode struct {
	Address   string          `json:"address"`
	Index     int             `json:"index"`
	CodeSize  int             `json:"codeSize"`
	CodeHash  string          `json:"codeHash"`
	HasABI    bool            `json:"hasAbi"`
	HasLayout bool            `json:"hasLayout"`
	Layout    *minisol.Layout `json:"layout,omitempty"`
}

// BehaviourDelta compares one shared read-only method traced on both
// versions: gas burned, instruction steps, and revert outcome.
type BehaviourDelta struct {
	Method      string `json:"method"`
	OldGas      uint64 `json:"oldGas"`
	NewGas      uint64 `json:"newGas"`
	OldSteps    int    `json:"oldSteps"`
	NewSteps    int    `json:"newSteps"`
	OldReverted bool   `json:"oldReverted"`
	NewReverted bool   `json:"newReverted"`
	Changed     bool   `json:"changed"` // any of gas/steps/outcome differ
}

// PairDiff is the full delta between two adjacent versions.
type PairDiff struct {
	From            string           `json:"from"`
	To              string           `json:"to"`
	BytecodeChanged bool             `json:"bytecodeChanged"`
	CodeSizeDelta   int              `json:"codeSizeDelta"`
	ABI             *ABIDiff         `json:"abi,omitempty"`
	Layout          *LayoutDiff      `json:"layout,omitempty"`
	Behaviour       []BehaviourDelta `json:"behaviour,omitempty"`
}

// AuditReport is the rendered audit of one evidence line.
type AuditReport struct {
	Root          string        `json:"root"`
	Head          string        `json:"head"`
	ChainVerified bool          `json:"chainVerified"` // next/prev pointers mutually consistent
	Versions      []VersionNode `json:"versions"`
	Pairs         []PairDiff    `json:"pairs,omitempty"`
	Rejections    []*Report     `json:"rejections,omitempty"` // rejected candidates recorded in evidence
}

// TraceBackend is the slice of the chain tier behaviour diffing needs.
// *chain.HeadView satisfies it.
type TraceBackend interface {
	TraceCall(from ethtypes.Address, to *ethtypes.Address, data []byte, gas uint64) (*chain.CallResult, *evm.StructLogger)
}

// DiffBehaviour traces every zero-argument read-only method the two
// versions share, on both, and reports the execution deltas. Methods
// with inputs are skipped (no meaningful common argument exists), as is
// anything state-changing (tracing must not suggest the audit mutated
// the chain — it never does, but the report shouldn't invite the
// question).
func DiffBehaviour(tb TraceBackend, from ethtypes.Address, oldAddr, newAddr ethtypes.Address, oldABI, newABI *abi.ABI) []BehaviourDelta {
	if tb == nil || oldABI == nil || newABI == nil {
		return nil
	}
	var out []BehaviourDelta
	for _, name := range sortedKeys(oldABI.Methods) {
		om := oldABI.Methods[name]
		nm, ok := newABI.Methods[name]
		if !ok || len(om.Inputs) > 0 || len(nm.Inputs) > 0 || !om.ReadOnly() || !nm.ReadOnly() {
			continue
		}
		data, err := oldABI.Pack(name)
		if err != nil {
			continue
		}
		oldRes, oldTr := tb.TraceCall(from, &oldAddr, data, 0)
		newRes, newTr := tb.TraceCall(from, &newAddr, data, 0)
		d := BehaviourDelta{
			Method:      om.Signature(),
			OldGas:      oldRes.GasUsed,
			NewGas:      newRes.GasUsed,
			OldSteps:    len(oldTr.Logs),
			NewSteps:    len(newTr.Logs),
			OldReverted: oldRes.Err != nil,
			NewReverted: newRes.Err != nil,
		}
		d.Changed = d.OldGas != d.NewGas || d.OldSteps != d.NewSteps || d.OldReverted != d.NewReverted
		out = append(out, d)
	}
	return out
}
