package upgrade

import (
	"math/rand"
	"testing"

	"legalchain/internal/minisol"
)

// --- generators --------------------------------------------------------------

var fieldTypes = []struct {
	typ   string
	slots int
}{
	{"uint256", 1},
	{"address", 1},
	{"string", 1},
	{"bool", 1},
	{"mapping(address => uint256)", 1},
	{"uint256[]", 1},
	{"struct PaidRent", 2},
}

// randLayout builds a layout with Solidity's sequential slot assignment.
func randLayout(r *rand.Rand, name string) *minisol.Layout {
	n := 1 + r.Intn(8)
	l := &minisol.Layout{Contract: name}
	slot := 0
	for i := 0; i < n; i++ {
		ft := fieldTypes[r.Intn(len(fieldTypes))]
		l.Vars = append(l.Vars, minisol.LayoutVar{
			Name:   fieldName(i),
			Slot:   slot,
			Slots:  ft.slots,
			Type:   ft.typ,
			Public: r.Intn(2) == 0,
		})
		slot += ft.slots
	}
	return l
}

func fieldName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// evolveCompatible applies a random upgrade-safe evolution: drop some
// fields (keeping their slots orphaned) and append new ones past the
// frontier.
func evolveCompatible(r *rand.Rand, old *minisol.Layout) *minisol.Layout {
	out := &minisol.Layout{Contract: old.Contract + "V2"}
	for _, v := range old.Vars {
		if r.Intn(4) == 0 { // remove ~25% of fields
			continue
		}
		out.Vars = append(out.Vars, v)
	}
	slot := old.Frontier()
	for i, n := 0, r.Intn(4); i < n; i++ {
		ft := fieldTypes[r.Intn(len(fieldTypes))]
		out.Vars = append(out.Vars, minisol.LayoutVar{
			Name:  "new" + fieldName(i),
			Slot:  slot,
			Slots: ft.slots,
			Type:  ft.typ,
		})
		slot += ft.slots
	}
	return out
}

// breakLayout applies one random incompatible mutation to a copy of old.
// Returns nil when the layout has no mutable field for the chosen
// mutation (caller retries).
func breakLayout(r *rand.Rand, old *minisol.Layout) *minisol.Layout {
	out := &minisol.Layout{Contract: old.Contract + "V2"}
	out.Vars = append(out.Vars, old.Vars...)
	i := r.Intn(len(out.Vars))
	switch r.Intn(3) {
	case 0: // move a retained field
		out.Vars[i].Slot += 1 + r.Intn(3)
	case 1: // retype a retained field
		v := &out.Vars[i]
		for _, ft := range fieldTypes {
			if ft.typ != v.Type {
				v.Type = ft.typ
				v.Slots = ft.slots
				break
			}
		}
	case 2: // new field below the frontier (slot reuse)
		out.Vars = append(out.Vars, minisol.LayoutVar{
			Name: "reuser", Slot: r.Intn(old.Frontier() + 1), Slots: 1, Type: "uint256",
		})
		if out.Vars[len(out.Vars)-1].Slot >= old.Frontier() {
			return nil
		}
	}
	if EqualLayouts(old, out) {
		return nil
	}
	return out
}

// --- properties --------------------------------------------------------------

// TestLayoutDiffRoundTrip is the migration-plan round-trip property:
// for a random layout and a random compatible evolution of it, the diff
// must be compatible, and replaying the diff's migration plan onto the
// old layout must reproduce the new layout exactly.
func TestLayoutDiffRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		old := randLayout(r, "C")
		evolved := evolveCompatible(r, old)
		d := DiffLayout(old, evolved)
		if !d.Compatible {
			t.Fatalf("iter %d: compatible evolution diffed incompatible: old=%+v new=%+v diff=%+v", i, old, evolved, d)
		}
		applied := ApplyPlan(old, d, evolved.Contract)
		if !EqualLayouts(applied, evolved) {
			t.Fatalf("iter %d: round trip lost fields:\n old=%+v\n new=%+v\n got=%+v", i, old, evolved, applied)
		}
		plan := d.PlanFrom(old)
		if plan == nil || !plan.InPlace {
			t.Fatalf("iter %d: compatible diff produced no in-place plan", i)
		}
		if len(plan.Retained)+len(plan.Orphaned) != len(old.Vars) {
			t.Fatalf("iter %d: plan partitions %d retained + %d orphaned != %d old fields",
				i, len(plan.Retained), len(plan.Orphaned), len(old.Vars))
		}
	}
}

// TestLayoutDiffRejectsIncompatible: any single slot move, retype or
// slot reuse must be flagged incompatible and produce no migration plan.
func TestLayoutDiffRejectsIncompatible(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rejected := 0
	for i := 0; i < 2000; i++ {
		old := randLayout(r, "C")
		broken := breakLayout(r, old)
		if broken == nil {
			continue
		}
		d := DiffLayout(old, broken)
		if d.Compatible {
			t.Fatalf("iter %d: breaking mutation accepted:\n old=%+v\n new=%+v", i, old, broken)
		}
		if d.PlanFrom(old) != nil {
			t.Fatalf("iter %d: incompatible diff still produced a plan", i)
		}
		rep := &Report{}
		rep.checkLayout(d, old)
		if rep.OK() {
			t.Fatalf("iter %d: incompatible diff produced no failures", i)
		}
		rejected++
	}
	if rejected < 1000 {
		t.Fatalf("generator too weak: only %d broken layouts in 2000 iterations", rejected)
	}
}

// TestLayoutDiffIdentity: a layout diffed against itself is compatible
// with an empty delta and a plan retaining everything.
func TestLayoutDiffIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		l := randLayout(r, "C")
		d := DiffLayout(l, l)
		if !d.Compatible || len(d.Added) != 0 || len(d.Removed) != 0 || len(d.Changed) != 0 {
			t.Fatalf("self-diff not identity: %+v", d)
		}
		plan := d.PlanFrom(l)
		if len(plan.Retained) != len(l.Vars) || len(plan.Orphaned) != 0 {
			t.Fatalf("self-plan should retain all %d fields: %+v", len(l.Vars), plan)
		}
	}
}
