package upgrade

import (
	"sort"
	"strings"

	"legalchain/internal/abi"
	"legalchain/internal/minisol"
)

// --- ABI surface diff --------------------------------------------------------

// MethodDelta records one method present in both versions whose shape
// changed. What is "inputs", "outputs" or "mutability".
type MethodDelta struct {
	Name string `json:"name"`
	Old  string `json:"old"`
	New  string `json:"new"`
	What string `json:"what"`
}

// ABIDiff is the public-surface difference between two versions.
type ABIDiff struct {
	AddedMethods   []string      `json:"addedMethods,omitempty"`   // signatures
	RemovedMethods []string      `json:"removedMethods,omitempty"` // signatures
	ChangedMethods []MethodDelta `json:"changedMethods,omitempty"`
	AddedEvents    []string      `json:"addedEvents,omitempty"`
	RemovedEvents  []string      `json:"removedEvents,omitempty"`
}

// Empty reports whether the two surfaces are identical.
func (d *ABIDiff) Empty() bool {
	return len(d.AddedMethods) == 0 && len(d.RemovedMethods) == 0 &&
		len(d.ChangedMethods) == 0 && len(d.AddedEvents) == 0 && len(d.RemovedEvents) == 0
}

func argTypes(args []abi.Arg) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.Type.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// DiffABI computes the surface difference old → new, keyed by method
// and event name (this ABI dialect has no overloading).
func DiffABI(old, new *abi.ABI) *ABIDiff {
	d := &ABIDiff{}
	for _, name := range sortedKeys(old.Methods) {
		om := old.Methods[name]
		nm, ok := new.Methods[name]
		if !ok {
			d.RemovedMethods = append(d.RemovedMethods, om.Signature())
			continue
		}
		if argTypes(om.Inputs) != argTypes(nm.Inputs) {
			d.ChangedMethods = append(d.ChangedMethods, MethodDelta{
				Name: name, Old: om.Signature(), New: nm.Signature(), What: "inputs"})
		}
		if argTypes(om.Outputs) != argTypes(nm.Outputs) {
			d.ChangedMethods = append(d.ChangedMethods, MethodDelta{
				Name: name, Old: argTypes(om.Outputs), New: argTypes(nm.Outputs), What: "outputs"})
		}
		if om.StateMutability != nm.StateMutability {
			d.ChangedMethods = append(d.ChangedMethods, MethodDelta{
				Name: name, Old: om.StateMutability, New: nm.StateMutability, What: "mutability"})
		}
	}
	for _, name := range sortedKeys(new.Methods) {
		if _, ok := old.Methods[name]; !ok {
			d.AddedMethods = append(d.AddedMethods, new.Methods[name].Signature())
		}
	}
	for _, name := range sortedKeys(old.Events) {
		if _, ok := new.Events[name]; !ok {
			d.RemovedEvents = append(d.RemovedEvents, old.Events[name].Signature())
		}
	}
	for _, name := range sortedKeys(new.Events) {
		if _, ok := old.Events[name]; !ok {
			d.AddedEvents = append(d.AddedEvents, new.Events[name].Signature())
		}
	}
	return d
}

// checkABI folds the diff's breaking entries into report failures:
// removals and input changes break every existing caller (the selector
// disappears), output changes break decoders, and a view/pure method
// becoming state-changing silently breaks eth_call consumers.
func (r *Report) checkABI(d *ABIDiff) {
	r.ABIChecked = true
	r.ABIDiff = d
	for _, sig := range d.RemovedMethods {
		r.fail(RuleSelectorRemoved, sig, "public method of the previous version is missing in the candidate")
	}
	for _, c := range d.ChangedMethods {
		switch c.What {
		case "inputs":
			r.fail(RuleSignatureChanged, c.Name, "inputs changed %s -> %s (selector no longer matches)", c.Old, c.New)
		case "outputs":
			r.fail(RuleSignatureChanged, c.Name, "outputs changed %s -> %s", c.Old, c.New)
		case "mutability":
			if (c.Old == "view" || c.Old == "pure") && c.New != "view" && c.New != "pure" {
				r.fail(RuleMutabilityWeakened, c.Name, "mutability weakened %s -> %s", c.Old, c.New)
			} else {
				r.Notes = append(r.Notes, "method "+c.Name+" mutability changed "+c.Old+" -> "+c.New)
			}
		}
	}
}

// --- storage-layout diff -----------------------------------------------------

// FieldDelta records one retained field whose slot or type changed.
type FieldDelta struct {
	Name    string `json:"name"`
	OldSlot int    `json:"oldSlot"`
	NewSlot int    `json:"newSlot"`
	OldType string `json:"oldType"`
	NewType string `json:"newType"`
	What    string `json:"what"` // "moved" | "retyped"
}

// LayoutDiff is the storage-layout difference between two versions.
type LayoutDiff struct {
	Added      []minisol.LayoutVar `json:"added,omitempty"`
	Removed    []minisol.LayoutVar `json:"removed,omitempty"`
	Changed    []FieldDelta        `json:"changed,omitempty"`
	Compatible bool                `json:"compatible"`
}

// DiffLayout computes old → new and decides compatibility: every field
// present in both layouts must keep its slot and type; fields may be
// removed (their slots become orphaned); new fields must start at or
// past the predecessor's frontier so they can never alias live or
// orphaned data.
func DiffLayout(old, new *minisol.Layout) *LayoutDiff {
	d := &LayoutDiff{Compatible: true}
	frontier := old.Frontier()
	for _, ov := range old.Vars {
		nv, ok := new.Var(ov.Name)
		if !ok {
			d.Removed = append(d.Removed, ov)
			continue
		}
		if nv.Slot != ov.Slot {
			d.Changed = append(d.Changed, FieldDelta{Name: ov.Name, OldSlot: ov.Slot, NewSlot: nv.Slot,
				OldType: ov.Type, NewType: nv.Type, What: "moved"})
			d.Compatible = false
		}
		if nv.Type != ov.Type || nv.Slots != ov.Slots {
			d.Changed = append(d.Changed, FieldDelta{Name: ov.Name, OldSlot: ov.Slot, NewSlot: nv.Slot,
				OldType: ov.Type, NewType: nv.Type, What: "retyped"})
			d.Compatible = false
		}
	}
	for _, nv := range new.Vars {
		if _, ok := old.Var(nv.Name); ok {
			continue
		}
		d.Added = append(d.Added, nv)
		if nv.Slot < frontier {
			d.Compatible = false
		}
	}
	return d
}

// checkLayout folds an incompatible diff into report failures and, for
// a compatible one, derives the migration plan.
func (r *Report) checkLayout(d *LayoutDiff, old *minisol.Layout) {
	r.LayoutChecked = true
	r.LayoutDiff = d
	oldFrontier := old.Frontier()
	for _, c := range d.Changed {
		switch c.What {
		case "moved":
			r.fail(RuleSlotMoved, c.Name, "slot %d -> %d; readers of the retained field would see foreign data", c.OldSlot, c.NewSlot)
		case "retyped":
			r.fail(RuleTypeChanged, c.Name, "type %q -> %q at slot %d", c.OldType, c.NewType, c.OldSlot)
		}
	}
	for _, a := range d.Added {
		if a.Slot < oldFrontier {
			r.fail(RuleSlotReused, a.Name, "new field at slot %d is below the predecessor frontier %d (would alias old data)", a.Slot, oldFrontier)
		}
	}
	if d.Compatible {
		r.Migration = d.PlanFrom(old)
	}
}

// --- migration plan ----------------------------------------------------------

// MigrationPlan is the FlexiContracts-style in-place migration derived
// from a compatible layout diff: retained fields keep their slots so no
// data moves, added fields are initialised by the candidate's
// constructor, orphaned fields stay where they are (their slots are
// guaranteed unused). InPlace is false only when the plan could not be
// derived (incompatible diff), forcing the pair-by-pair re-import path.
type MigrationPlan struct {
	Retained []string            `json:"retained,omitempty"` // fields adopted in place, no gas spent
	Added    []minisol.LayoutVar `json:"added,omitempty"`    // constructor-initialised
	Orphaned []minisol.LayoutVar `json:"orphaned,omitempty"` // left in the predecessor, never reused
	InPlace  bool                `json:"inPlace"`
}

// PlanFrom derives the migration plan of a compatible diff against the
// predecessor layout it was computed from (nil when incompatible).
func (d *LayoutDiff) PlanFrom(old *minisol.Layout) *MigrationPlan {
	if !d.Compatible {
		return nil
	}
	removed := map[string]bool{}
	for _, v := range d.Removed {
		removed[v.Name] = true
	}
	var retained []string
	for _, v := range old.Vars {
		if !removed[v.Name] {
			retained = append(retained, v.Name)
		}
	}
	return &MigrationPlan{Retained: retained, Added: d.Added, Orphaned: d.Removed, InPlace: true}
}

// ApplyPlan replays a compatible diff onto the old layout: removed
// fields drop out, retained fields keep their slots, added fields
// append. The result must equal the candidate layout — the round-trip
// property `make check` fuzzes.
func ApplyPlan(old *minisol.Layout, d *LayoutDiff, newName string) *minisol.Layout {
	removed := map[string]bool{}
	for _, v := range d.Removed {
		removed[v.Name] = true
	}
	out := &minisol.Layout{Contract: newName}
	for _, v := range old.Vars {
		if !removed[v.Name] {
			out.Vars = append(out.Vars, v)
		}
	}
	out.Vars = append(out.Vars, d.Added...)
	return out
}

// EqualLayouts compares two layouts field-set-wise (order-insensitive:
// the slot assignment, not declaration order, is what storage sees).
func EqualLayouts(a, b *minisol.Layout) bool {
	if len(a.Vars) != len(b.Vars) {
		return false
	}
	av := append([]minisol.LayoutVar(nil), a.Vars...)
	bv := append([]minisol.LayoutVar(nil), b.Vars...)
	sortVars(av)
	sortVars(bv)
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

func sortVars(vs []minisol.LayoutVar) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Slot != vs[j].Slot {
			return vs[i].Slot < vs[j].Slot
		}
		return vs[i].Name < vs[j].Name
	})
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
