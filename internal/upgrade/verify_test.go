package upgrade

import (
	"encoding/json"
	"strings"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/minisol"
)

const specV1 = `
pragma solidity ^0.5.0;
contract Spec {
	uint public rent;
	address public owner;
	function pay() public payable { rent += 1; }
	function getNext() public view returns (address addr) { return owner; }
}
`

// selector removed: getNext is gone.
const specDropped = `
pragma solidity ^0.5.0;
contract Spec {
	uint public rent;
	address public owner;
	function pay() public payable { rent += 1; }
}
`

// signature changed: pay takes an argument now.
const specResigned = `
pragma solidity ^0.5.0;
contract Spec {
	uint public rent;
	address public owner;
	function pay(uint month) public payable { rent += month; }
	function getNext() public view returns (address addr) { return owner; }
}
`

// mutability weakened: getNext writes state.
const specWeakened = `
pragma solidity ^0.5.0;
contract Spec {
	uint public rent;
	address public owner;
	function pay() public payable { rent += 1; }
	function getNext() public returns (address addr) { rent += 1; return owner; }
}
`

// compatible superset: everything retained, one method added.
const specGrown = `
pragma solidity ^0.5.0;
contract Spec {
	uint public rent;
	address public owner;
	uint public fee;
	function pay() public payable { rent += 1; }
	function getNext() public view returns (address addr) { return owner; }
	function payFee() public payable { fee += 1; }
}
`

func compileFor(t *testing.T, src string) *minisol.Artifact {
	t.Helper()
	art, err := minisol.CompileContract(src, "Spec")
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func ruleOf(r *Report, rule string) *Check {
	for i := range r.Failures {
		if r.Failures[i].Rule == rule {
			return &r.Failures[i]
		}
	}
	return nil
}

func verifyPair(t *testing.T, oldSrc, newSrc string) *Report {
	t.Helper()
	old := compileFor(t, oldSrc)
	cand := compileFor(t, newSrc)
	spec := Spec{PrevABI: old.ABI, PrevLayout: old.Layout}
	c := Candidate{Name: cand.Name, ABI: cand.ABI, Layout: cand.Layout, Bytecode: cand.Bytecode}
	return Verify(spec, c, nil, ethtypes.Address{1})
}

func TestVerifyRejectsRemovedSelector(t *testing.T) {
	r := verifyPair(t, specV1, specDropped)
	if r.OK() {
		t.Fatal("candidate with removed selector admitted")
	}
	f := ruleOf(r, RuleSelectorRemoved)
	if f == nil {
		t.Fatalf("expected %s, got %+v", RuleSelectorRemoved, r.Failures)
	}
	if !strings.Contains(f.Subject, "getNext") {
		t.Fatalf("wrong subject %q", f.Subject)
	}
}

func TestVerifyRejectsChangedSignature(t *testing.T) {
	r := verifyPair(t, specV1, specResigned)
	if ruleOf(r, RuleSignatureChanged) == nil {
		t.Fatalf("expected %s, got %+v", RuleSignatureChanged, r.Failures)
	}
}

func TestVerifyRejectsWeakenedMutability(t *testing.T) {
	r := verifyPair(t, specV1, specWeakened)
	if ruleOf(r, RuleMutabilityWeakened) == nil {
		t.Fatalf("expected %s, got %+v", RuleMutabilityWeakened, r.Failures)
	}
}

func TestVerifyAdmitsCompatibleGrowth(t *testing.T) {
	r := verifyPair(t, specV1, specGrown)
	if !r.OK() {
		t.Fatalf("compatible superset rejected: %+v", r.Failures)
	}
	if r.Migration == nil || !r.Migration.InPlace {
		t.Fatalf("compatible growth derived no in-place migration plan: %+v", r.Migration)
	}
	if len(r.ABIDiff.AddedMethods) == 0 {
		t.Fatal("added method not reported in the diff")
	}
}

func TestVerifyWithoutPrevLayoutSkipsWithNote(t *testing.T) {
	old := compileFor(t, specV1)
	cand := compileFor(t, specGrown)
	spec := Spec{PrevABI: old.ABI} // no stored layout: pre-layout-era predecessor
	r := Verify(spec, Candidate{Name: cand.Name, ABI: cand.ABI, Layout: cand.Layout, Bytecode: cand.Bytecode}, nil, ethtypes.Address{1})
	if r.LayoutChecked {
		t.Fatal("layout check ran without a predecessor layout")
	}
	if len(r.Notes) == 0 {
		t.Fatal("skipped layout check left no note")
	}
	if !r.OK() {
		t.Fatalf("ABI-compatible candidate rejected: %+v", r.Failures)
	}
}

func TestVerifyDeclaredPropertiesUnverifiableWithoutView(t *testing.T) {
	old := compileFor(t, specV1)
	cand := compileFor(t, specGrown)
	spec := Spec{PrevABI: old.ABI, PrevLayout: old.Layout,
		Properties: []Property{{Name: "rent-zero", Method: "rent", Want: "0"}}}
	r := Verify(spec, Candidate{Name: cand.Name, ABI: cand.ABI, Layout: cand.Layout, Bytecode: cand.Bytecode}, nil, ethtypes.Address{1})
	if r.OK() {
		t.Fatal("declared properties must fail conservatively when unexecutable")
	}
	if ruleOf(r, RulePropertyUnverifiable) == nil {
		t.Fatalf("expected %s, got %+v", RulePropertyUnverifiable, r.Failures)
	}
}

func TestRejectionErrorShape(t *testing.T) {
	r := verifyPair(t, specV1, specDropped)
	err := &RejectionError{Report: r}
	if !strings.Contains(err.Error(), RuleSelectorRemoved) {
		t.Fatalf("error message %q does not name the rule", err.Error())
	}
	if err.RPCCode() != 3 {
		t.Fatalf("RPCCode = %d, want 3 (geth revert convention)", err.RPCCode())
	}
	data, ok := err.ErrorData().(map[string]interface{})
	if !ok || data["kind"] != "upgrade_rejected" {
		t.Fatalf("ErrorData = %#v", err.ErrorData())
	}
	// The report must round-trip through JSON for the evidence line.
	raw, jerr := json.Marshal(r)
	if jerr != nil {
		t.Fatal(jerr)
	}
	var back Report
	if json.Unmarshal(raw, &back) != nil || len(back.Failures) != len(r.Failures) {
		t.Fatalf("report did not round-trip: %s", raw)
	}
}
