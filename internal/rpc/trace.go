package rpc

import (
	"encoding/json"
	"errors"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/evm"
	"legalchain/internal/hexutil"
)

// traceConfig is the optional second parameter of debug_traceTransaction
// and debug_traceBlockByNumber, following geth's convention: omitted or
// empty selects the step-by-step structLog output; {"tracer":
// "callTracer"} selects the call-frame tree.
type traceConfig struct {
	Tracer string `json:"tracer"`
}

// factory builds a fresh tracer per replayed transaction.
func (c traceConfig) factory() evm.Tracer {
	if c.Tracer == "callTracer" {
		return evm.NewCallTracer()
	}
	return evm.NewStructLogger()
}

// traceConfigParam reads the optional tracer-config parameter.
func traceConfigParam(params []json.RawMessage, i int) (traceConfig, error) {
	var cfg traceConfig
	if i >= len(params) || string(params[i]) == "null" {
		return cfg, nil
	}
	if err := json.Unmarshal(params[i], &cfg); err != nil {
		return cfg, invalidParams("parameter %d: bad tracer config: %v", i, err)
	}
	switch cfg.Tracer {
	case "", "structLog", "callTracer":
		return cfg, nil
	default:
		return cfg, invalidParams("parameter %d: unknown tracer %q", i, cfg.Tracer)
	}
}

// mapTraceErr turns the chain's sentinel errors into typed JSON-RPC
// errors so clients can distinguish "no such tx" from a server fault.
func mapTraceErr(err error) error {
	if errors.Is(err, chain.ErrTraceNotFound) {
		return &Error{Code: codeInvalidParams, Message: err.Error()}
	}
	return err
}

// traceResultJSON renders one replayed transaction in the output shape
// its tracer implies: the geth-style frame tree for the callTracer, or
// the {gas, failed, structLogs} object for the StructLogger.
func traceResultJSON(tr *chain.TxTrace) interface{} {
	switch t := tr.Tracer.(type) {
	case *evm.CallTracer:
		return t.Result()
	case *evm.StructLogger:
		out := map[string]interface{}{
			"gas":        hexutil.EncodeUint64(tr.Receipt.GasUsed),
			"failed":     tr.Receipt.Status != ethtypes.ReceiptStatusSuccessful,
			"structLogs": structLogsJSON(t),
		}
		if tr.Receipt.RevertReason != "" {
			out["revertReason"] = tr.Receipt.RevertReason
		}
		if t.Truncated() {
			out["truncated"] = true
		}
		return out
	default:
		return nil
	}
}

// structLogsJSON renders recorded steps with geth's structLogs field
// names (pc, op, gas, depth) plus the stack size the logger keeps.
func structLogsJSON(sl *evm.StructLogger) []interface{} {
	out := make([]interface{}, len(sl.Logs))
	for i, l := range sl.Logs {
		out[i] = map[string]interface{}{
			"pc":        l.PC,
			"op":        l.Op.String(),
			"gas":       l.Gas,
			"depth":     l.Depth,
			"stackSize": l.StackSize,
		}
	}
	return out
}
