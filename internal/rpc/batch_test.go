package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"legalchain/internal/minisol"
	"legalchain/internal/web3"
)

func postRaw(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

type wireResp struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  json.RawMessage `json:"result"`
	Error   *struct {
		Code    int         `json:"code"`
		Message string      `json:"message"`
		Data    interface{} `json:"data"`
	} `json:"error"`
}

func TestBatchOfTen(t *testing.T) {
	_, _, srv := rig(t)
	var entries []string
	for i := 1; i <= 10; i++ {
		entries = append(entries, fmt.Sprintf(
			`{"jsonrpc":"2.0","id":%d,"method":"eth_chainId","params":[]}`, i))
	}
	raw := postRaw(t, srv.URL, "["+strings.Join(entries, ",")+"]")
	var out []wireResp
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("batch response not an array: %v\n%s", err, raw)
	}
	if len(out) != 10 {
		t.Fatalf("batch of 10 returned %d responses", len(out))
	}
	for i, r := range out {
		if r.Error != nil || string(r.Result) != `"0x539"` {
			t.Fatalf("entry %d: %+v", i, r)
		}
		if string(r.ID) != fmt.Sprintf("%d", i+1) {
			t.Fatalf("entry %d: id %s not echoed in order", i, r.ID)
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	_, _, srv := rig(t)

	// Empty batch is a single invalid-request error object.
	var single wireResp
	if err := json.Unmarshal(postRaw(t, srv.URL, `[]`), &single); err != nil {
		t.Fatalf("empty batch response: %v", err)
	}
	if single.Error == nil || single.Error.Code != codeInvalidRequest {
		t.Fatalf("empty batch: %+v", single.Error)
	}

	// Malformed entries fail individually, valid siblings still run.
	raw := postRaw(t, srv.URL,
		`[1, {"jsonrpc":"2.0","id":7,"method":"eth_blockNumber","params":[]}, "x"]`)
	var out []wireResp
	if err := json.Unmarshal(raw, &out); err != nil || len(out) != 3 {
		t.Fatalf("mixed batch = %s (%v)", raw, err)
	}
	if out[0].Error == nil || out[0].Error.Code != codeInvalidRequest {
		t.Fatalf("non-object entry: %+v", out[0].Error)
	}
	if out[1].Error != nil || string(out[1].Result) != `"0x0"` {
		t.Fatalf("valid entry in mixed batch: %+v", out[1])
	}
	if out[2].Error == nil || out[2].Error.Code != codeInvalidRequest {
		t.Fatalf("string entry: %+v", out[2].Error)
	}
}

// TestErrorCodes is the table test for the error redesign: specific
// spec codes instead of a catch-all -32000.
func TestErrorCodes(t *testing.T) {
	_, _, srv := rig(t)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"parse error", `{not json`, codeParse},
		{"valid JSON non-object", `42`, codeInvalidRequest},
		{"missing method", `{"jsonrpc":"2.0","id":1,"params":[]}`, codeInvalidRequest},
		{"unknown method", `{"jsonrpc":"2.0","id":1,"method":"eth_nope","params":[]}`, codeMethodNotFound},
		{"missing param", `{"jsonrpc":"2.0","id":1,"method":"eth_getBalance","params":[]}`, codeInvalidParams},
		{"bad address", `{"jsonrpc":"2.0","id":1,"method":"eth_getBalance","params":["nothex"]}`, codeInvalidParams},
		{"bad hash", `{"jsonrpc":"2.0","id":1,"method":"eth_getTransactionReceipt","params":["0x12"]}`, codeInvalidParams},
		{"bad raw tx", `{"jsonrpc":"2.0","id":1,"method":"eth_sendRawTransaction","params":["0x00"]}`, codeInvalidParams},
		{"bad block tag", `{"jsonrpc":"2.0","id":1,"method":"eth_getBlockByNumber","params":["zzz"]}`, codeInvalidParams},
		{"bad quantity", `{"jsonrpc":"2.0","id":1,"method":"evm_increaseTime","params":["xyz"]}`, codeInvalidParams},
	}
	for _, tc := range cases {
		var out wireResp
		if err := json.Unmarshal(postRaw(t, srv.URL, tc.body), &out); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if out.Error == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if out.Error.Code != tc.code {
			t.Fatalf("%s: code %d, want %d (%s)", tc.name, out.Error.Code, tc.code, out.Error.Message)
		}
	}
}

// TestRevertErrorData checks the geth convention: reverted eth_call and
// eth_estimateGas answer with code 3, the reason in the message, and
// the raw ABI-encoded Error(string) bytes in error.data.
func TestRevertErrorData(t *testing.T) {
	client, accs, srv := rig(t)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	input, _ := art.ABI.Pack("guarded")
	callObj := fmt.Sprintf(`{"from":"%s","to":"%s","data":"%s"}`,
		accs[0].Address.Hex(), bound.Address.Hex(), hexEncode(input))

	for _, method := range []string{"eth_call", "eth_estimateGas"} {
		var out wireResp
		body := fmt.Sprintf(`{"jsonrpc":"2.0","id":1,"method":"%s","params":[%s]}`, method, callObj)
		if err := json.Unmarshal(postRaw(t, srv.URL, body), &out); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if out.Error == nil || out.Error.Code != codeRevert {
			t.Fatalf("%s: %+v", method, out.Error)
		}
		if out.Error.Message != "execution reverted: nope" {
			t.Fatalf("%s message: %q", method, out.Error.Message)
		}
		data, _ := out.Error.Data.(string)
		// Error(string) selector is keccak("Error(string)")[:4] = 08c379a0.
		if !strings.HasPrefix(data, "0x08c379a0") {
			t.Fatalf("%s data: %q", method, data)
		}
	}
}
