package rpc

import (
	"fmt"
	"sync"
	"time"

	"legalchain/internal/chain"
	"legalchain/internal/hexutil"
)

// Polling filters: eth_newFilter / eth_newBlockFilter hand out an ID,
// eth_getFilterChanges returns what happened since the previous poll,
// eth_uninstallFilter removes it. This is the notification mechanism
// web3 clients fall back to over plain HTTP, where subscriptions are
// unavailable — the paper's rental DApp polls for its contract events
// this way.

// filterTimeout is how long an unpolled filter survives. Clients that
// stop polling (crashed DApps) would otherwise leak registry entries.
const filterTimeout = 5 * time.Minute

// maxFilters caps the registry. Installing past the cap evicts the
// stalest filter, so a client minting filters in a loop degrades its
// own oldest handles instead of growing server memory without bound.
const maxFilters = 4096

type filterKind int

const (
	logFilter filterKind = iota
	blockFilter
)

type filter struct {
	kind     filterKind
	query    chain.FilterQuery // logFilter only
	next     uint64            // first block number the next poll inspects
	lastUsed time.Time
}

type filterRegistry struct {
	mu      sync.Mutex
	nextID  uint64
	filters map[string]*filter
}

// reapLocked prunes every filter that outlived its TTL. Called with
// r.mu held, on every registry operation — before this ran only on
// install, so a client that created filters once and then merely kept
// polling a dead ID never triggered a sweep and the map grew without
// bound.
func (r *filterRegistry) reapLocked(now time.Time) {
	for id, old := range r.filters {
		if now.Sub(old.lastUsed) > filterTimeout {
			delete(r.filters, id)
		}
	}
}

// install registers f and returns its ID, pruning expired entries and
// enforcing the registry cap.
func (r *filterRegistry) install(f *filter) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filters == nil {
		r.filters = map[string]*filter{}
	}
	now := time.Now()
	r.reapLocked(now)
	if len(r.filters) >= maxFilters {
		// Still full after the TTL sweep: evict the stalest live filter.
		var oldestID string
		var oldest time.Time
		for id, old := range r.filters {
			if oldestID == "" || old.lastUsed.Before(oldest) {
				oldestID, oldest = id, old.lastUsed
			}
		}
		delete(r.filters, oldestID)
	}
	r.nextID++
	id := hexutil.EncodeUint64(r.nextID)
	f.lastUsed = now
	r.filters[id] = f
	rpcFiltersLive.Set(int64(len(r.filters)))
	return id
}

// get looks up id and refreshes its expiry clock. An expired entry is
// gone — polling a filter less often than filterTimeout loses it.
func (r *filterRegistry) get(id string) (*filter, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	r.reapLocked(now)
	rpcFiltersLive.Set(int64(len(r.filters)))
	f, ok := r.filters[id]
	if !ok {
		return nil, fmt.Errorf("filter not found")
	}
	f.lastUsed = now
	return f, nil
}

// uninstall removes id, reporting whether it existed. Unknown, expired
// or already-removed IDs return false — never an error — so clients
// can uninstall idempotently (eth_uninstallFilter's contract).
func (r *filterRegistry) uninstall(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reapLocked(time.Now())
	_, ok := r.filters[id]
	delete(r.filters, id)
	rpcFiltersLive.Set(int64(len(r.filters)))
	return ok
}

// newLogFilter registers a log filter. The first poll reports matches
// from the query's fromBlock (default: blocks sealed after creation).
func (s *Server) newLogFilter(q chain.FilterQuery, explicitFrom bool) string {
	next := s.bc.BlockNumber() + 1
	if explicitFrom {
		next = q.FromBlock
	}
	return s.filters.install(&filter{kind: logFilter, query: q, next: next})
}

// newBlockFilter registers a filter reporting hashes of newly sealed
// blocks.
func (s *Server) newBlockFilter() string {
	return s.filters.install(&filter{kind: blockFilter, next: s.bc.BlockNumber() + 1})
}

// filterChanges returns what happened since the last poll and advances
// the filter's cursor. Always an array, possibly empty.
func (s *Server) filterChanges(id string) (interface{}, error) {
	f, err := s.filters.get(id)
	if err != nil {
		return nil, err
	}
	// Pin one head view: the height the cursor advances to and the
	// blocks/logs served must come from the same chain snapshot, or a
	// seal racing the poll could skip (or double-report) a block.
	v := s.bc.View()
	head := v.BlockNumber()
	s.filters.mu.Lock()
	from := f.next
	if head >= from {
		f.next = head + 1
	}
	s.filters.mu.Unlock()
	if from > head {
		return []interface{}{}, nil
	}

	switch f.kind {
	case blockFilter:
		out := []interface{}{}
		for n := from; n <= head; n++ {
			if b, ok := v.BlockByNumber(n); ok {
				out = append(out, b.Hash().Hex())
			}
		}
		return out, nil
	default:
		q := f.query
		q.FromBlock = from
		to := head
		if q.ToBlock != nil && *q.ToBlock < to {
			to = *q.ToBlock
		}
		q.ToBlock = &to
		out := []interface{}{}
		for _, l := range v.FilterLogs(q) {
			out = append(out, logJSON(l))
		}
		return out, nil
	}
}

// filterLogs returns every log matching a log filter's full query,
// without moving the poll cursor — eth_getFilterLogs.
func (s *Server) filterLogs(id string) (interface{}, error) {
	f, err := s.filters.get(id)
	if err != nil {
		return nil, err
	}
	if f.kind != logFilter {
		return nil, fmt.Errorf("filter is not a log filter")
	}
	out := []interface{}{}
	for _, l := range s.bc.FilterLogs(f.query) {
		out = append(out, logJSON(l))
	}
	return out, nil
}
