package rpc

import "errors"

// The error taxonomy of the JSON-RPC tier. Every failure a handler can
// produce maps to exactly one row; handlers never invent ad-hoc codes,
// and non-errors are listed too so their contracts live next to the
// codes they deliberately avoid.
//
//	code    | meaning                    | data
//	--------+----------------------------+------------------------------------
//	-32700  | unparseable request body   | —
//	-32600  | not a valid JSON-RPC call  | —
//	-32601  | unknown method             | —
//	-32602  | malformed params           | —
//	-32000  | generic server failure     | —
//	3       | execution reverted         | 0x-hex revert return bytes
//	3       | upgrade rejected           | {"kind":"upgrade_rejected",
//	        |                            |  "report":{...}} (upgrade.Report)
//
// Code 3 is shared deliberately: a revert and an upgrade rejection both
// mean "the chain refused the state change for a contract-level
// reason", and clients that already branch on geth's revert code get
// rejection handling for free — the data payload's shape tells the two
// apart.
//
// Deliberate non-errors:
//
//   - eth_uninstallFilter answers false — never an error — for unknown,
//     expired or already-removed IDs, so clients can uninstall
//     idempotently without racing the TTL reaper (filters.go).
//   - eth_unsubscribe mirrors the same contract over WebSocket (ws.go).
//
// Errors whose code and payload are decided outside this package
// implement DataError; toRPCError forwards them verbatim instead of
// collapsing them into -32000. upgrade.RejectionError is the canonical
// implementation.

// DataError is an error that knows its JSON-RPC code and structured
// error.data payload.
type DataError interface {
	error
	RPCCode() int
	ErrorData() interface{}
}

// asDataError extracts a DataError from a wrapped chain, mirroring the
// errors.As branches of toRPCError.
func asDataError(err error) (DataError, bool) {
	var de DataError
	if errors.As(err, &de) {
		return de, true
	}
	return nil, false
}
