package rpc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/minisol"
	"legalchain/internal/wallet"
	"legalchain/internal/web3"
)

// call posts one JSON-RPC request and decodes the result into out.
func call(t *testing.T, url, method, params string, out interface{}) {
	t.Helper()
	body := `{"jsonrpc":"2.0","id":1,"method":"` + method + `","params":` + params + `}`
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope struct {
		Result json.RawMessage `json:"result"`
		Error  *rpcError       `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error != nil {
		t.Fatalf("%s: %s", method, envelope.Error.Message)
	}
	if out != nil {
		if err := json.Unmarshal(envelope.Result, out); err != nil {
			t.Fatalf("%s result: %v", method, err)
		}
	}
}

// headHash fetches the head block's hash over RPC.
func headHash(t *testing.T, url string) string {
	t.Helper()
	var blk struct {
		Hash string `json:"hash"`
	}
	call(t, url, "eth_getBlockByNumber", `["latest", false]`, &blk)
	return blk.Hash
}

func TestBlockFilterPolling(t *testing.T) {
	client, accs, srv := rig(t)

	var id string
	call(t, srv.URL, "eth_newBlockFilter", `[]`, &id)

	// Nothing sealed yet: empty (and an array, not null).
	var hashes []string
	call(t, srv.URL, "eth_getFilterChanges", `["`+id+`"]`, &hashes)
	if hashes == nil || len(hashes) != 0 {
		t.Fatalf("changes before any block: %v", hashes)
	}

	client.Transfer(web3.TxOpts{From: accs[0].Address, Value: ethtypes.Ether(1)}, accs[1].Address)
	client.Transfer(web3.TxOpts{From: accs[0].Address, Value: ethtypes.Ether(1)}, accs[1].Address)

	call(t, srv.URL, "eth_getFilterChanges", `["`+id+`"]`, &hashes)
	if len(hashes) != 2 {
		t.Fatalf("changes = %v", hashes)
	}
	if hashes[1] != headHash(t, srv.URL) {
		t.Fatal("newest change is not the head block")
	}

	// The poll consumed the backlog.
	call(t, srv.URL, "eth_getFilterChanges", `["`+id+`"]`, &hashes)
	if len(hashes) != 0 {
		t.Fatalf("changes delivered twice: %v", hashes)
	}

	var removed bool
	call(t, srv.URL, "eth_uninstallFilter", `["`+id+`"]`, &removed)
	if !removed {
		t.Fatal("uninstall reported false")
	}
	// Polling an uninstalled filter errors.
	resp, err := http.Post(srv.URL, "application/json", bytes.NewBufferString(
		`{"jsonrpc":"2.0","id":1,"method":"eth_getFilterChanges","params":["`+id+`"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope struct {
		Error *rpcError `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&envelope)
	if envelope.Error == nil {
		t.Fatal("uninstalled filter still polls")
	}
}

func TestLogFilterPolling(t *testing.T) {
	client, accs, srv := rig(t)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}

	// Filter scoped to the contract address, watching from creation on.
	var id string
	call(t, srv.URL, "eth_newFilter", `[{"address":"`+bound.Address.Hex()+`"}]`, &id)

	type logObj struct {
		Address     string   `json:"address"`
		BlockNumber string   `json:"blockNumber"`
		BlockHash   string   `json:"blockHash"`
		TxHash      string   `json:"transactionHash"`
		LogIndex    string   `json:"logIndex"`
		Topics      []string `json:"topics"`
	}
	var logs []logObj
	call(t, srv.URL, "eth_getFilterChanges", `["`+id+`"]`, &logs)
	if len(logs) != 0 {
		t.Fatalf("deploy log leaked into a just-created filter: %v", logs)
	}

	if _, err := bound.Transact(web3.TxOpts{From: accs[1].Address}, "increment"); err != nil {
		t.Fatal(err)
	}
	call(t, srv.URL, "eth_getFilterChanges", `["`+id+`"]`, &logs)
	if len(logs) != 1 {
		t.Fatalf("changes = %+v", logs)
	}
	l := logs[0]
	if l.Address != bound.Address.Hex() {
		t.Fatal("wrong address")
	}
	// The satellite regression: blockHash and blockNumber must be real.
	if l.BlockNumber == "" || l.BlockHash != headHash(t, srv.URL) {
		t.Fatalf("log lacks block position: %+v", l)
	}

	// Drained.
	call(t, srv.URL, "eth_getFilterChanges", `["`+id+`"]`, &logs)
	if len(logs) != 0 {
		t.Fatal("log delivered twice")
	}

	// eth_getFilterLogs ignores the cursor: full history each call.
	if _, err := bound.Transact(web3.TxOpts{From: accs[1].Address}, "increment"); err != nil {
		t.Fatal(err)
	}
	call(t, srv.URL, "eth_getFilterLogs", `["`+id+`"]`, &logs)
	if len(logs) != 2 {
		t.Fatalf("getFilterLogs = %d logs", len(logs))
	}

	// Explicit fromBlock replays history through getFilterChanges too.
	var histID string
	call(t, srv.URL, "eth_newFilter", `[{"fromBlock":"0x0","address":"`+bound.Address.Hex()+`"}]`, &histID)
	call(t, srv.URL, "eth_getFilterChanges", `["`+histID+`"]`, &logs)
	if len(logs) != 2 {
		t.Fatalf("historic filter = %d logs", len(logs))
	}
}

func TestGetBlockFullTransactions(t *testing.T) {
	client, accs, srv := rig(t)
	client.Transfer(web3.TxOpts{From: accs[0].Address, Value: ethtypes.Ether(1)}, accs[1].Address)

	var blk struct {
		Hash         string                   `json:"hash"`
		Transactions []map[string]interface{} `json:"transactions"`
	}
	call(t, srv.URL, "eth_getBlockByNumber", `["latest", true]`, &blk)
	if len(blk.Transactions) != 1 {
		t.Fatalf("transactions = %v", blk.Transactions)
	}
	tx := blk.Transactions[0]
	if tx["blockHash"] != blk.Hash || tx["transactionIndex"] != "0x0" {
		t.Fatalf("full tx object incomplete: %v", tx)
	}
	if tx["from"] != accs[0].Address.Hex() || tx["to"] != accs[1].Address.Hex() {
		t.Fatalf("full tx object addresses: %v", tx)
	}

	// Tags resolve: safe/finalized are the head on an instant-seal chain.
	var tagged struct {
		Hash string `json:"hash"`
	}
	call(t, srv.URL, "eth_getBlockByNumber", `["finalized", false]`, &tagged)
	if tagged.Hash != blk.Hash {
		t.Fatal("finalized tag does not resolve to head")
	}
}

// TestLogsSurviveRestart is the regression for log blockNumber/blockHash
// against a restarted persistent node: eth_getLogs must return identical
// positions before and after recovery.
func TestLogsSurviveRestart(t *testing.T) {
	accs := wallet.DevAccounts("rpc restart", 3)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(100))
	dir := t.TempDir()
	open := func() *chain.Blockchain {
		bc, err := chain.Open(g, chain.WithPersistence(chain.PersistConfig{
			DataDir: dir, SnapshotInterval: 4, NoSync: true,
		}))
		if err != nil {
			t.Fatal(err)
		}
		return bc
	}

	rigOn := func(bc *chain.Blockchain) (*web3.Client, *httptest.Server) {
		ks := wallet.NewKeystore()
		for _, a := range accs {
			ks.Import(a.Key)
		}
		srv := httptest.NewServer(NewServer(bc, ks))
		t.Cleanup(srv.Close)
		client, err := web3.NewClient(Dial(srv.URL), ks)
		if err != nil {
			t.Fatal(err)
		}
		return client, srv
	}

	bc := open()
	client, srv := rigOn(bc)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := bound.Transact(web3.TxOpts{From: accs[1].Address}, "increment"); err != nil {
			t.Fatal(err)
		}
	}

	var before []map[string]interface{}
	call(t, srv.URL, "eth_getLogs", `[{"fromBlock":"0x0"}]`, &before)
	if len(before) != 5 {
		t.Fatalf("%d logs before restart", len(before))
	}
	// Crash-style: no Close. The journal already holds every block.
	srv.Close()

	bc2 := open()
	defer bc2.Close()
	_, srv2 := rigOn(bc2)
	var after []map[string]interface{}
	call(t, srv2.URL, "eth_getLogs", `[{"fromBlock":"0x0"}]`, &after)
	if len(after) != len(before) {
		t.Fatalf("%d logs after restart, want %d", len(after), len(before))
	}
	for i := range before {
		for _, k := range []string{"blockNumber", "blockHash", "transactionHash", "transactionIndex", "logIndex", "address", "data"} {
			if before[i][k] != after[i][k] {
				t.Fatalf("log %d field %s changed across restart: %v != %v", i, k, before[i][k], after[i][k])
			}
		}
		if h, _ := before[i]["blockHash"].(string); len(h) != 66 || h == (ethtypes.Hash{}).Hex() {
			t.Fatalf("log %d blockHash malformed: %v", i, before[i]["blockHash"])
		}
	}
}

// TestUninstallFilterIdempotent covers eth_uninstallFilter's contract:
// removing an unknown, expired or already-removed ID answers false —
// never an error — so clients can uninstall without racing the reaper.
func TestUninstallFilterIdempotent(t *testing.T) {
	_, _, srv := rig(t)

	var id string
	call(t, srv.URL, "eth_newBlockFilter", `[]`, &id)

	var removed bool
	call(t, srv.URL, "eth_uninstallFilter", `["`+id+`"]`, &removed)
	if !removed {
		t.Fatal("first uninstall reported false")
	}
	// Removing it again: false result, not an error envelope.
	call(t, srv.URL, "eth_uninstallFilter", `["`+id+`"]`, &removed)
	if removed {
		t.Fatal("repeat uninstall reported true")
	}
	// Never-installed ID: same.
	call(t, srv.URL, "eth_uninstallFilter", `["0xdeadbeef"]`, &removed)
	if removed {
		t.Fatal("unknown uninstall reported true")
	}
}

// TestFilterTTLReap verifies expired filters are swept on every
// registry operation — get, uninstall and install — not only install,
// and that polling refreshes a filter's expiry clock.
func TestFilterTTLReap(t *testing.T) {
	var r filterRegistry
	stale := r.install(&filter{kind: blockFilter})
	fresh := r.install(&filter{kind: blockFilter})

	// Age the first filter past its TTL.
	r.mu.Lock()
	r.filters[stale].lastUsed = time.Now().Add(-filterTimeout - time.Minute)
	r.mu.Unlock()

	// Polling a different filter reaps the stale one.
	if _, err := r.get(fresh); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	_, alive := r.filters[stale]
	n := len(r.filters)
	r.mu.Unlock()
	if alive || n != 1 {
		t.Fatalf("stale filter survived poll of another ID (len=%d)", n)
	}
	// Uninstalling the reaped ID is the idempotent false, not an error.
	if r.uninstall(stale) {
		t.Fatal("uninstall of reaped filter returned true")
	}

	// A poll refreshes lastUsed, keeping a near-expiry filter alive.
	r.mu.Lock()
	r.filters[fresh].lastUsed = time.Now().Add(-filterTimeout + time.Second)
	r.mu.Unlock()
	if _, err := r.get(fresh); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	age := time.Since(r.filters[fresh].lastUsed)
	r.mu.Unlock()
	if age > time.Minute {
		t.Fatalf("poll did not refresh lastUsed (age %v)", age)
	}
}

// TestFilterRegistryCap verifies the registry never grows past
// maxFilters: installing at the cap evicts the stalest live entry.
func TestFilterRegistryCap(t *testing.T) {
	var r filterRegistry
	first := r.install(&filter{kind: blockFilter})
	for i := 1; i < maxFilters; i++ {
		r.install(&filter{kind: logFilter})
	}
	r.mu.Lock()
	n := len(r.filters)
	r.mu.Unlock()
	if n != maxFilters {
		t.Fatalf("registry at %d, want %d", n, maxFilters)
	}

	// One more: the oldest handle is evicted, the size holds.
	r.install(&filter{kind: blockFilter})
	r.mu.Lock()
	_, alive := r.filters[first]
	n = len(r.filters)
	r.mu.Unlock()
	if n != maxFilters {
		t.Fatalf("registry grew past cap: %d", n)
	}
	if alive {
		t.Fatal("stalest filter not evicted at cap")
	}
}
