package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
)

// rpcDo is call() without t.Fatal, safe to use from reader goroutines.
func rpcDo(url, method, params string, out interface{}) error {
	body := `{"jsonrpc":"2.0","id":1,"method":"` + method + `","params":` + params + `}`
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var envelope struct {
		Result json.RawMessage `json:"result"`
		Error  *rpcError       `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return err
	}
	if envelope.Error != nil {
		return fmt.Errorf("%s: %s", method, envelope.Error.Message)
	}
	if out != nil {
		return json.Unmarshal(envelope.Result, out)
	}
	return nil
}

// TestConcurrentReadsDuringSealsOverRPC drives the full JSON-RPC round
// trip from concurrent readers while a writer seals continuously, and
// asserts each eth_getBlockByNumber("latest") response is internally
// consistent with an eth_getBlockByHash of the same block. With the
// head view pinned per handler, "latest" resolution and the block
// lookup can no longer straddle a seal.
func TestConcurrentReadsDuringSealsOverRPC(t *testing.T) {
	_, accs, srv := rig(t)

	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for nonce := uint64(0); nonce < 15; nonce++ {
			tx := &ethtypes.Transaction{
				Nonce:    nonce,
				GasPrice: ethtypes.Gwei(1),
				Gas:      21000,
				To:       &accs[1].Address,
				Value:    ethtypes.Ether(1),
			}
			if err := tx.Sign(accs[0].Key, 1337); err != nil {
				t.Error(err)
				return
			}
			var h string
			if err := rpcDo(srv.URL, "eth_sendRawTransaction",
				`["`+hexutil.Encode(tx.Encode())+`"]`, &h); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var block struct {
					Number    string `json:"number"`
					Hash      string `json:"hash"`
					StateRoot string `json:"stateRoot"`
				}
				if err := rpcDo(srv.URL, "eth_getBlockByNumber", `["latest",false]`, &block); err != nil {
					t.Error(err)
					return
				}
				if block.Hash == "" {
					t.Error("latest block resolved to null")
					return
				}
				var byHash struct {
					Number    string `json:"number"`
					StateRoot string `json:"stateRoot"`
				}
				if err := rpcDo(srv.URL, "eth_getBlockByHash", `["`+block.Hash+`",false]`, &byHash); err != nil {
					t.Error(err)
					return
				}
				if byHash.Number != block.Number || byHash.StateRoot != block.StateRoot {
					t.Errorf("byNumber/byHash disagree: %+v vs %+v", block, byHash)
					return
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()

	// The writer's 15 transfers all sealed.
	var n string
	if err := rpcDo(srv.URL, "eth_blockNumber", `[]`, &n); err != nil {
		t.Fatal(err)
	}
	height, err := hexutil.DecodeUint64(n)
	if err != nil || height != 15 {
		t.Fatalf("final height %q (%v)", n, err)
	}
}
