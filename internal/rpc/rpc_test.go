package rpc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/minisol"
	"legalchain/internal/uint256"
	"legalchain/internal/wallet"
	"legalchain/internal/web3"
)

// rig spins up a devnet behind an httptest server and returns a web3
// client connected through the full JSON-RPC round trip.
func rig(t *testing.T) (*web3.Client, []wallet.Account, *httptest.Server) {
	t.Helper()
	accs := wallet.DevAccounts("rpc test", 3)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(100))
	bc := chain.New(g)
	ks := wallet.NewKeystore()
	for _, a := range accs {
		ks.Import(a.Key)
	}
	srv := httptest.NewServer(NewServer(bc, ks))
	t.Cleanup(srv.Close)
	client, err := web3.NewClient(Dial(srv.URL), ks)
	if err != nil {
		t.Fatal(err)
	}
	return client, accs, srv
}

func TestBasicsOverHTTP(t *testing.T) {
	client, accs, _ := rig(t)
	if client.ChainID() != 1337 {
		t.Fatalf("chain id = %d", client.ChainID())
	}
	n, err := client.Backend().BlockNumber()
	if err != nil || n != 0 {
		t.Fatalf("block number %d %v", n, err)
	}
	bal, err := client.Backend().GetBalance(accs[0].Address)
	if err != nil || bal != ethtypes.Ether(100) {
		t.Fatalf("balance %s %v", ethtypes.FormatEther(bal), err)
	}
}

func TestTransferOverHTTP(t *testing.T) {
	client, accs, _ := rig(t)
	rcpt, err := client.Transfer(web3.TxOpts{From: accs[0].Address, Value: ethtypes.Ether(7)}, accs[1].Address)
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.Succeeded() {
		t.Fatal("transfer failed")
	}
	bal, _ := client.Backend().GetBalance(accs[1].Address)
	if bal != ethtypes.Ether(107) {
		t.Fatalf("recipient balance %s", ethtypes.FormatEther(bal))
	}
}

const rpcCounterSrc = `
contract Counter {
	uint public count;
	event bumped(address indexed who, uint v);
	function increment() public { count += 1; emit bumped(msg.sender, count); }
	function guarded() public { require(false, "nope"); }
}`

func TestContractLifecycleOverHTTP(t *testing.T) {
	client, accs, _ := rig(t)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, rcpt, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.ContractAddress == nil {
		t.Fatal("no contract address")
	}
	code, _ := client.Backend().GetCode(bound.Address)
	if len(code) == 0 {
		t.Fatal("code not visible over RPC")
	}
	if _, err := bound.Transact(web3.TxOpts{From: accs[1].Address}, "increment"); err != nil {
		t.Fatal(err)
	}
	if _, err := bound.Transact(web3.TxOpts{From: accs[1].Address}, "increment"); err != nil {
		t.Fatal(err)
	}
	v, err := bound.CallUint(accs[1].Address, "count")
	if err != nil || v.Uint64() != 2 {
		t.Fatalf("count = %s, %v", v, err)
	}
	// Events over eth_getLogs.
	evs, err := bound.FilterEvents("bumped", 0)
	if err != nil || len(evs) != 2 {
		t.Fatalf("events = %d, %v", len(evs), err)
	}
	if evs[1].Args["v"].(uint256.Int).Uint64() != 2 {
		t.Fatal("event arg")
	}
	// Revert reason propagates through estimate (which runs first).
	_, err = bound.Transact(web3.TxOpts{From: accs[1].Address}, "guarded")
	if err == nil {
		t.Fatal("guarded succeeded")
	}
	var rev *web3.RevertError
	if !errorsAs(err, &rev) || rev.Reason != "nope" {
		t.Fatalf("err = %v", err)
	}
}

// errorsAs is errors.As without importing errors twice in examples.
func errorsAs(err error, target interface{}) bool {
	switch tgt := target.(type) {
	case **web3.RevertError:
		for err != nil {
			if re, ok := err.(*web3.RevertError); ok {
				*tgt = re
				return true
			}
			type unwrapper interface{ Unwrap() error }
			u, ok := err.(unwrapper)
			if !ok {
				return false
			}
			err = u.Unwrap()
		}
	}
	return false
}

func TestIncreaseTimeOverHTTP(t *testing.T) {
	client, accs, _ := rig(t)
	if err := client.Backend().AdjustTime(7200); err != nil {
		t.Fatal(err)
	}
	// Mine a block to observe the timestamp.
	if _, err := client.Transfer(web3.TxOpts{From: accs[0].Address, Value: uint256.One}, accs[1].Address); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRPCErrors(t *testing.T) {
	_, _, srv := rig(t)
	post := func(body string) map[string]interface{} {
		resp, err := http.Post(srv.URL, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]interface{}
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	// Unknown method.
	out := post(`{"jsonrpc":"2.0","id":1,"method":"eth_unknown","params":[]}`)
	if out["error"] == nil {
		t.Fatal("unknown method accepted")
	}
	// Parse error.
	out = post(`{not json`)
	if out["error"] == nil {
		t.Fatal("garbage accepted")
	}
	// Bad params.
	out = post(`{"jsonrpc":"2.0","id":1,"method":"eth_getBalance","params":["nothex"]}`)
	if out["error"] == nil {
		t.Fatal("bad address accepted")
	}
	// Batch requests.
	resp, err := http.Post(srv.URL, "application/json", bytes.NewBufferString(
		`[{"jsonrpc":"2.0","id":1,"method":"eth_chainId","params":[]},
		  {"jsonrpc":"2.0","id":2,"method":"eth_blockNumber","params":[]}]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil || len(batch) != 2 {
		t.Fatalf("batch = %v, %v", batch, err)
	}
	if batch[0]["result"] != "0x539" { // 1337
		t.Fatalf("chainId = %v", batch[0]["result"])
	}
}

func TestGetBlockOverHTTP(t *testing.T) {
	client, accs, srv := rig(t)
	client.Transfer(web3.TxOpts{From: accs[0].Address, Value: uint256.One}, accs[1].Address)
	resp, err := http.Post(srv.URL, "application/json", bytes.NewBufferString(
		`{"jsonrpc":"2.0","id":1,"method":"eth_getBlockByNumber","params":["latest", false]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Result map[string]interface{} `json:"result"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	if out.Result["number"] != "0x1" {
		t.Fatalf("block number = %v", out.Result["number"])
	}
	txs := out.Result["transactions"].([]interface{})
	if len(txs) != 1 {
		t.Fatal("tx list")
	}
}

func TestDebugTraceCallOverHTTP(t *testing.T) {
	client, accs, srv := rig(t)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	input, _ := art.ABI.Pack("increment")
	body := `{"jsonrpc":"2.0","id":1,"method":"debug_traceCall","params":[{"from":"` +
		accs[0].Address.Hex() + `","to":"` + bound.Address.Hex() + `","data":"` +
		hexEncode(input) + `"}]}`
	resp, err := http.Post(srv.URL, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Result struct {
			Gas      string         `json:"gas"`
			Failed   bool           `json:"failed"`
			Steps    int            `json:"steps"`
			OpCounts map[string]int `json:"opCounts"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Failed || out.Result.Steps == 0 {
		t.Fatalf("trace = %+v", out.Result)
	}
	if out.Result.OpCounts["SSTORE"] == 0 {
		t.Fatal("SSTORE missing from trace")
	}
}

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := []byte{'0', 'x'}
	for _, c := range b {
		out = append(out, digits[c>>4], digits[c&0xf])
	}
	return string(out)
}
