package rpc

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
	"legalchain/internal/obs"
	"legalchain/internal/ws"
)

// WebSocket transport: the same JSON-RPC dispatch as ServeHTTP plus the
// push methods polling cannot express — eth_subscribe / eth_unsubscribe
// with the newHeads, logs and newPendingTransactions channels. Events
// come from the chain's subscription hub, which never lets a slow
// socket touch the sealer: when this session falls behind, the hub
// drops events from its ring and the session recovers by walking the
// cumulative head view, emitting a gap notice only for blocks that are
// genuinely gone.
//
// Subscription IDs are hex quantities ("0x1a"), unique per server
// process, and shared between the subscribe result, every notification
// envelope and eth_unsubscribe.

// wsSubKind names the subscription channels eth_subscribe accepts.
const (
	wsKindHeads   = "newHeads"
	wsKindLogs    = "logs"
	wsKindPending = "newPendingTransactions"
)

// subNotification is the JSON-RPC notification wrapper for one
// subscription event.
type subNotification struct {
	JSONRPC string    `json:"jsonrpc"`
	Method  string    `json:"method"`
	Params  subParams `json:"params"`
}

type subParams struct {
	Subscription string      `json:"subscription"`
	Result       interface{} `json:"result"`
}

// gapNotice is delivered in place of events a subscriber was too slow
// to receive and the view could no longer replay: missed events were
// dropped, and delivery resumes at block resume. Both are hex
// quantities.
type gapNotice struct {
	Missed string `json:"missed"`
	Resume string `json:"resume"`
}

// wsSub is one eth_subscribe registration on a session.
type wsSub struct {
	id    string
	kind  string
	query chain.FilterQuery // logs only: address/topic criteria
	last  uint64            // highest block already delivered
}

// wsSession is one upgraded connection: a read loop dispatching
// JSON-RPC, plus (lazily) one goroutine per hub channel fanning events
// into notifications.
type wsSession struct {
	srv  *Server
	conn *ws.Conn
	ctx  context.Context

	mu       sync.Mutex
	subs     map[string]*wsSub
	headsSub *chain.Subscription // shared by newHeads and logs subs
	pendSub  *chain.Subscription
}

// ServeWS upgrades r to a WebSocket and serves JSON-RPC over it until
// the peer disconnects. Mount it on the dedicated -ws-addr listener or
// any mux path.
func (s *Server) ServeWS(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if obs.RequestIDFrom(ctx) == "" {
		if rid := r.Header.Get(obs.RequestIDHeader); rid != "" {
			ctx = obs.WithRequestID(ctx, rid)
		}
	}
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		return // Upgrade already wrote the HTTP error
	}
	rpcWsSessions.Inc()
	defer rpcWsSessions.Dec()
	sess := &wsSession{srv: s, conn: conn, ctx: ctx, subs: map[string]*wsSub{}}
	defer sess.teardown()
	sess.readLoop()
}

// teardown closes the connection first — unblocking any notifier stuck
// in a write to a dead peer — and only then the hub subscriptions.
func (sess *wsSession) teardown() {
	sess.conn.Close(ws.CloseGoingAway, "")
	sess.mu.Lock()
	heads, pend := sess.headsSub, sess.pendSub
	sess.headsSub, sess.pendSub = nil, nil
	sess.subs = map[string]*wsSub{}
	sess.mu.Unlock()
	if heads != nil {
		heads.Close()
	}
	if pend != nil {
		pend.Close()
	}
}

// closeWith ends the session with a close frame whose reason is the
// same error envelope HTTP responses carry, truncated to the RFC's
// 123-byte reason budget.
func (sess *wsSession) closeWith(wsCode, rpcCode int, msg string) {
	reason, _ := json.Marshal(&rpcError{
		Code:      rpcCode,
		Message:   msg,
		RequestID: obs.RequestIDFrom(sess.ctx),
	})
	if len(reason) > ws.MaxCloseReason {
		// Retry without the request ID before hard truncation.
		reason, _ = json.Marshal(&rpcError{Code: rpcCode, Message: msg})
	}
	sess.conn.Close(wsCode, string(reason))
}

// readLoop decodes frames as JSON-RPC (single request or batch) and
// writes the responses. Notifications from subscriptions interleave on
// the same connection; ws.Conn serialises the frames.
func (sess *wsSession) readLoop() {
	for {
		_, payload, err := sess.conn.ReadMessage()
		if err != nil {
			return
		}
		trimmed := strings.TrimSpace(string(payload))
		if strings.HasPrefix(trimmed, "[") {
			var raws []json.RawMessage
			if err := json.Unmarshal(payload, &raws); err != nil {
				sess.write(errorResponse(nil, codeParse, "parse error"))
				continue
			}
			if len(raws) == 0 {
				sess.write(errorResponse(nil, codeInvalidRequest, "empty batch"))
				continue
			}
			out := make([]response, len(raws))
			for i, raw := range raws {
				out[i] = sess.handleRaw(raw)
			}
			sess.write(out)
			continue
		}
		var req request
		if err := json.Unmarshal(payload, &req); err != nil {
			if json.Valid(payload) {
				sess.write(errorResponse(nil, codeInvalidRequest, "invalid request"))
			} else {
				sess.write(errorResponse(nil, codeParse, "parse error"))
			}
			continue
		}
		sess.write(sess.handleReq(&req))
	}
}

func (sess *wsSession) handleRaw(raw json.RawMessage) response {
	var req request
	if err := json.Unmarshal(raw, &req); err != nil {
		return errorResponse(nil, codeInvalidRequest, "invalid request")
	}
	return sess.handleReq(&req)
}

// handleReq routes the two session-scoped methods and defers the rest
// to the shared dispatch table.
func (sess *wsSession) handleReq(req *request) response {
	switch req.Method {
	case "eth_subscribe":
		id, err := sess.subscribe(req.Params)
		if err != nil {
			e := toRPCError(err)
			e.RequestID = obs.RequestIDFrom(sess.ctx)
			return response{JSONRPC: "2.0", ID: req.ID, Error: e}
		}
		return okResponse(req.ID, id)
	case "eth_unsubscribe":
		id, err := strParam(req.Params, 0)
		if err != nil {
			e := toRPCError(err)
			return response{JSONRPC: "2.0", ID: req.ID, Error: e}
		}
		return okResponse(req.ID, sess.unsubscribe(id))
	default:
		return sess.srv.handle(sess.ctx, req)
	}
}

func (sess *wsSession) write(v interface{}) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return sess.conn.WriteMessage(ws.OpText, buf)
}

// subscribe registers one channel and lazily starts the notifier
// goroutine feeding it.
func (sess *wsSession) subscribe(params []json.RawMessage) (string, error) {
	kind, err := strParam(params, 0)
	if err != nil {
		return "", err
	}
	sub := &wsSub{
		id:   hexutil.EncodeUint64(sess.srv.subSeq.Add(1)),
		kind: kind,
		last: sess.srv.bc.BlockNumber(),
	}
	switch kind {
	case wsKindHeads:
	case wsKindLogs:
		q, err := filterParam(params, 1, sess.srv.bc.BlockNumber())
		if err != nil {
			return "", err
		}
		// A live subscription only streams forward; range fields of the
		// criteria object are ignored, matching geth.
		q.FromBlock, q.ToBlock = 0, nil
		sub.query = q
	case wsKindPending:
	default:
		return "", invalidParams("unknown subscription type %q", kind)
	}

	sess.mu.Lock()
	sess.subs[sub.id] = sub
	var startHeads, startPending bool
	if kind == wsKindPending {
		if sess.pendSub == nil {
			sess.pendSub = sess.srv.bc.SubscribePendingTxs(0)
			startPending = true
		}
	} else {
		if sess.headsSub == nil {
			sess.headsSub = sess.srv.bc.SubscribeHeads(0)
			startHeads = true
		}
	}
	sess.mu.Unlock()
	rpcSubscriptions.With(kind).Inc()
	if startHeads {
		go sess.headsLoop(sess.headsSub)
	}
	if startPending {
		go sess.pendingLoop(sess.pendSub)
	}
	return sub.id, nil
}

// unsubscribe removes id; unknown IDs return false, mirroring
// eth_uninstallFilter.
func (sess *wsSession) unsubscribe(id string) bool {
	sess.mu.Lock()
	sub, ok := sess.subs[id]
	if ok {
		delete(sess.subs, id)
	}
	sess.mu.Unlock()
	if ok {
		rpcSubscriptions.With(sub.kind).Dec()
	}
	return ok
}

// headsLoop drains the hub and delivers newHeads and logs
// notifications. Delivery always walks blocks (sub.last, head] on the
// freshest view, so hub-ring drops cost nothing as long as the view
// still holds the blocks; only eviction turns a drop into a gap notice.
func (sess *wsSession) headsLoop(hubSub *chain.Subscription) {
	for range hubSub.Wait() {
		for {
			events, gap, alive := hubSub.Drain()
			var v *chain.HeadView
			if len(events) > 0 {
				v = events[len(events)-1].View
			} else if gap > 0 {
				// Gap-only wake (hub queue overflow shed our events):
				// recover from the freshest view directly.
				v = sess.srv.bc.View()
			}
			if v != nil && !sess.deliverBlocks(v) {
				hubSub.Close()
				return
			}
			if !alive {
				// The hub closed under us — the node is shutting down.
				sess.closeWith(ws.CloseGoingAway, codeServerError, "node shutting down")
				return
			}
			if len(events) == 0 && gap == 0 {
				break
			}
		}
	}
}

// deliverBlocks pushes every undelivered block on v to each heads/logs
// subscription, in order. Returns false when the connection is gone.
func (sess *wsSession) deliverBlocks(v *chain.HeadView) bool {
	head := v.BlockNumber()
	// Snapshot the registrations, then write without holding the lock:
	// a stalled peer must not block eth_subscribe calls forever.
	sess.mu.Lock()
	subs := make([]*wsSub, 0, len(sess.subs))
	for _, sub := range sess.subs {
		if sub.kind == wsKindHeads || sub.kind == wsKindLogs {
			subs = append(subs, sub)
		}
	}
	sess.mu.Unlock()
	for _, sub := range subs {
		if sub.last >= head {
			continue
		}
		from := sub.last + 1
		switch sub.kind {
		case wsKindHeads:
			missed := uint64(0)
			for n := from; n <= head; n++ {
				b, ok := v.BlockByNumber(n)
				if !ok {
					missed++
					continue
				}
				if !sess.notify(sub.id, headerJSON(b)) {
					return false
				}
			}
			if missed > 0 {
				if !sess.notify(sub.id, map[string]interface{}{"gap": gapNotice{
					Missed: hexutil.EncodeUint64(missed),
					Resume: hexutil.EncodeUint64(head),
				}}) {
					return false
				}
			}
		case wsKindLogs:
			q := sub.query
			q.FromBlock, q.ToBlock = from, &head
			for _, l := range v.FilterLogs(q) {
				if !sess.notify(sub.id, logJSON(l)) {
					return false
				}
			}
		}
		sub.last = head
	}
	return true
}

// pendingLoop streams admitted transaction hashes. Pending hashes have
// no replayable view behind them, so here a hub drop is a real loss and
// becomes a gap notice immediately.
func (sess *wsSession) pendingLoop(hubSub *chain.Subscription) {
	for range hubSub.Wait() {
		for {
			events, gap, alive := hubSub.Drain()
			sess.mu.Lock()
			subs := make([]*wsSub, 0, len(sess.subs))
			for _, sub := range sess.subs {
				if sub.kind == wsKindPending {
					subs = append(subs, sub)
				}
			}
			sess.mu.Unlock()
			for _, sub := range subs {
				for _, ev := range events {
					if !sess.notify(sub.id, ev.TxHash.Hex()) {
						hubSub.Close()
						return
					}
				}
				if gap > 0 {
					if !sess.notify(sub.id, map[string]interface{}{"gap": gapNotice{
						Missed: hexutil.EncodeUint64(gap),
					}}) {
						hubSub.Close()
						return
					}
				}
			}
			if !alive {
				sess.closeWith(ws.CloseGoingAway, codeServerError, "node shutting down")
				return
			}
			if len(events) == 0 && gap == 0 {
				break
			}
		}
	}
}

func (sess *wsSession) notify(id string, result interface{}) bool {
	err := sess.write(subNotification{
		JSONRPC: "2.0",
		Method:  "eth_subscription",
		Params:  subParams{Subscription: id, Result: result},
	})
	return err == nil
}

// headerJSON is the newHeads notification payload — the header fields
// of blockJSON without the transaction list.
func headerJSON(b *ethtypes.Block) map[string]interface{} {
	return map[string]interface{}{
		"number":     hexutil.EncodeUint64(b.Number()),
		"hash":       b.Hash().Hex(),
		"parentHash": b.Header.ParentHash.Hex(),
		"timestamp":  hexutil.EncodeUint64(b.Header.Time),
		"gasLimit":   hexutil.EncodeUint64(b.Header.GasLimit),
		"gasUsed":    hexutil.EncodeUint64(b.Header.GasUsed),
		"miner":      b.Header.Coinbase.Hex(),
		"stateRoot":  b.Header.StateRoot.Hex(),
	}
}
