package rpc

import (
	"legalchain/internal/metrics"
)

// Per-method JSON-RPC metrics. The method label is restricted to the
// dispatch table's known names so a client probing random method
// strings cannot inflate /metrics cardinality.
var (
	rpcInFlight = metrics.Default.Gauge("legalchain_rpc_in_flight",
		"JSON-RPC requests currently executing (batch entries counted individually).")
	rpcRequests = metrics.Default.CounterVec("legalchain_rpc_requests_total",
		"JSON-RPC requests handled, by method.", "method")
	rpcErrors = metrics.Default.CounterVec("legalchain_rpc_errors_total",
		"JSON-RPC error responses, by method and error code.", "method", "code")
	rpcSeconds = metrics.Default.HistogramVec("legalchain_rpc_request_seconds",
		"JSON-RPC request latency, by method.", nil, "method")
	rpcBatchSize = metrics.Default.Histogram("legalchain_rpc_batch_size",
		"Number of entries per JSON-RPC batch request.",
		[]float64{1, 2, 5, 10, 20, 50, 100})
	rpcWsSessions = metrics.Default.Gauge("legalchain_rpc_ws_sessions",
		"Open WebSocket JSON-RPC sessions.")
	rpcSubscriptions = metrics.Default.GaugeVec("legalchain_rpc_subscriptions",
		"Live eth_subscribe registrations, by channel kind.", "kind")
	rpcFiltersLive = metrics.Default.Gauge("legalchain_rpc_filters_live",
		"Installed polling filters (eth_newFilter / eth_newBlockFilter).")
)

// knownMethods mirrors the dispatch switch in server.go.
var knownMethods = map[string]bool{
	"web3_clientVersion":        true,
	"net_version":               true,
	"eth_chainId":               true,
	"eth_blockNumber":           true,
	"eth_gasPrice":              true,
	"eth_accounts":              true,
	"eth_getBalance":            true,
	"eth_getTransactionCount":   true,
	"eth_getCode":               true,
	"eth_getStorageAt":          true,
	"eth_sendRawTransaction":    true,
	"eth_call":                  true,
	"eth_estimateGas":           true,
	"eth_getTransactionReceipt": true,
	"eth_getTransactionByHash":  true,
	"eth_getBlockByNumber":      true,
	"eth_getBlockByHash":        true,
	"eth_getLogs":               true,
	"debug_traceCall":           true,
	"eth_newFilter":             true,
	"eth_newBlockFilter":        true,
	"eth_getFilterChanges":      true,
	"eth_getFilterLogs":         true,
	"eth_uninstallFilter":       true,
	"eth_subscribe":             true,
	"eth_unsubscribe":           true,
	"debug_traceTransaction":    true,
	"debug_traceBlockByNumber":  true,
	"evm_increaseTime":          true,
	"legal_watchStatus":         true,
}

// methodLabel maps an arbitrary client-supplied method name to a
// bounded label value.
func methodLabel(method string) string {
	if knownMethods[method] {
		return method
	}
	return "unknown"
}
