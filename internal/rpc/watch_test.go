package rpc

import (
	"net/http/httptest"
	"testing"

	"legalchain/internal/chain"
	"legalchain/internal/contracts"
	"legalchain/internal/ethtypes"
	"legalchain/internal/wallet"
	"legalchain/internal/watch"
	"legalchain/internal/web3"
)

// TestLegalWatchStatus exercises the legal_watchStatus method over the
// full JSON-RPC round trip, with and without a tower attached.
func TestLegalWatchStatus(t *testing.T) {
	accs := wallet.DevAccounts("rpc watch test", 3)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(100))
	bc := chain.New(g)
	t.Cleanup(func() { bc.Close() })
	ks := wallet.NewKeystore()
	for _, a := range accs {
		ks.Import(a.Key)
	}
	server := NewServer(bc, ks)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	c := Dial(srv.URL)

	// Without a tower the method reports server failure.
	var st watch.Status
	if err := c.Call(&st, "legal_watchStatus"); err == nil {
		t.Fatal("watchStatus without tower should error")
	}

	tower, err := watch.New(bc, watch.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tower.Close() })
	server.SetWatch(tower)

	// Seed one rental through the local chain, then read the status over
	// the HTTP wire.
	client, err := web3.NewClient(web3.NewLocalBackend(bc), ks)
	if err != nil {
		t.Fatal(err)
	}
	art := contracts.MustArtifact("BaseRental")
	rental, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode,
		ethtypes.Ether(1), ethtypes.Ether(2), uint64(6), "10115-Berlin-42")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rental.Transact(web3.TxOpts{From: accs[1].Address, Value: ethtypes.Ether(2)}, "confirmAgreement"); err != nil {
		t.Fatal(err)
	}

	if err := c.Call(&st, "legal_watchStatus"); err != nil {
		t.Fatal(err)
	}
	if st.Tracked != 1 || st.States[watch.StateSigned] != 1 || st.LagBlocks != 0 {
		t.Fatalf("status over RPC: %+v", st)
	}
	if len(st.Contracts) != 1 || st.Contracts[0].Address != rental.Address.Hex() {
		t.Fatalf("contracts: %+v", st.Contracts)
	}
	if len(st.Contracts[0].Obligations) != 1 || st.Contracts[0].Obligations[0].Kind != "rent-due" {
		t.Fatalf("obligations over RPC: %+v", st.Contracts[0].Obligations)
	}
}
