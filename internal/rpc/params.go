package rpc

import (
	"encoding/json"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
	"legalchain/internal/uint256"
)

// callObject is the {from,to,gas,gasPrice,value,data} parameter of
// eth_call and eth_estimateGas.
type callObject struct {
	From     string `json:"from"`
	To       string `json:"to"`
	Gas      string `json:"gas"`
	GasPrice string `json:"gasPrice"`
	Value    string `json:"value"`
	Data     string `json:"data"`
	Input    string `json:"input"`
}

type callMsg struct {
	from  ethtypes.Address
	to    *ethtypes.Address
	gas   uint64
	value uint256.Int
	data  []byte
}

func callParam(params []json.RawMessage, i int) (*callMsg, error) {
	if i >= len(params) {
		return nil, invalidParams("missing call object")
	}
	var obj callObject
	if err := json.Unmarshal(params[i], &obj); err != nil {
		return nil, invalidParams("bad call object: %v", err)
	}
	msg := &callMsg{}
	if obj.From != "" {
		raw, err := hexutil.Decode(obj.From)
		if err != nil || len(raw) != 20 {
			return nil, invalidParams("bad from address")
		}
		msg.from = ethtypes.BytesToAddress(raw)
	}
	if obj.To != "" {
		raw, err := hexutil.Decode(obj.To)
		if err != nil || len(raw) != 20 {
			return nil, invalidParams("bad to address")
		}
		to := ethtypes.BytesToAddress(raw)
		msg.to = &to
	}
	if obj.Gas != "" {
		g, err := hexutil.DecodeUint64(obj.Gas)
		if err != nil {
			return nil, invalidParams("bad gas")
		}
		msg.gas = g
	}
	if obj.Value != "" {
		v, err := hexutil.DecodeBig(obj.Value)
		if err != nil {
			return nil, invalidParams("bad value")
		}
		msg.value = uint256.FromBig(v)
	}
	dataHex := obj.Data
	if dataHex == "" {
		dataHex = obj.Input
	}
	if dataHex != "" {
		d, err := hexutil.Decode(dataHex)
		if err != nil {
			return nil, invalidParams("bad data")
		}
		msg.data = d
	}
	return msg, nil
}

// filterObject is the eth_getLogs parameter.
type filterObject struct {
	FromBlock string            `json:"fromBlock"`
	ToBlock   string            `json:"toBlock"`
	Address   json.RawMessage   `json:"address"`
	Topics    []json.RawMessage `json:"topics"`
}

func filterParam(params []json.RawMessage, i int, latest uint64) (chain.FilterQuery, error) {
	q := chain.FilterQuery{}
	if i >= len(params) {
		return q, nil
	}
	var obj filterObject
	if err := json.Unmarshal(params[i], &obj); err != nil {
		return q, invalidParams("bad filter object: %v", err)
	}
	var err error
	if obj.FromBlock != "" && obj.FromBlock != "latest" && obj.FromBlock != "pending" {
		if q.FromBlock, err = parseBlockTag(obj.FromBlock, latest); err != nil {
			return q, err
		}
	}
	if obj.ToBlock != "" {
		to, err := parseBlockTag(obj.ToBlock, latest)
		if err != nil {
			return q, err
		}
		q.ToBlock = &to
	}
	// address: string or array of strings.
	if len(obj.Address) > 0 {
		var one string
		if err := json.Unmarshal(obj.Address, &one); err == nil {
			a, err := parseAddr(one)
			if err != nil {
				return q, err
			}
			q.Addresses = []ethtypes.Address{a}
		} else {
			var many []string
			if err := json.Unmarshal(obj.Address, &many); err != nil {
				return q, invalidParams("bad address filter")
			}
			for _, s := range many {
				a, err := parseAddr(s)
				if err != nil {
					return q, err
				}
				q.Addresses = append(q.Addresses, a)
			}
		}
	}
	// topics: array of (null | string | array of strings).
	for _, raw := range obj.Topics {
		if string(raw) == "null" {
			q.Topics = append(q.Topics, nil)
			continue
		}
		var one string
		if err := json.Unmarshal(raw, &one); err == nil {
			h, err := parseHash(one)
			if err != nil {
				return q, err
			}
			q.Topics = append(q.Topics, []ethtypes.Hash{h})
			continue
		}
		var many []string
		if err := json.Unmarshal(raw, &many); err != nil {
			return q, invalidParams("bad topic filter")
		}
		var alts []ethtypes.Hash
		for _, s := range many {
			h, err := parseHash(s)
			if err != nil {
				return q, err
			}
			alts = append(alts, h)
		}
		q.Topics = append(q.Topics, alts)
	}
	return q, nil
}

// parseBlockTag resolves a block-number parameter: a named tag or a hex
// quantity. The devnet seals instantly, so latest/pending/safe/finalized
// all mean the head.
func parseBlockTag(s string, latest uint64) (uint64, error) {
	switch s {
	case "", "latest", "pending", "safe", "finalized":
		return latest, nil
	case "earliest":
		return 0, nil
	default:
		n, err := hexutil.DecodeUint64(s)
		if err != nil {
			return 0, invalidParams("bad block tag %q", s)
		}
		return n, nil
	}
}

// newFilterParam parses the eth_newFilter argument like filterParam but
// also reports whether fromBlock was set to a concrete height — a new
// filter without one only watches blocks sealed after its creation.
func newFilterParam(params []json.RawMessage, i int, latest uint64) (chain.FilterQuery, bool, error) {
	q, err := filterParam(params, i, latest)
	if err != nil {
		return q, false, err
	}
	explicit := false
	if i < len(params) {
		var obj struct {
			FromBlock string `json:"fromBlock"`
		}
		if json.Unmarshal(params[i], &obj) == nil {
			switch obj.FromBlock {
			case "", "latest", "pending":
			default:
				explicit = true
			}
		}
	}
	return q, explicit, nil
}

func parseAddr(s string) (ethtypes.Address, error) {
	raw, err := hexutil.Decode(s)
	if err != nil || len(raw) != 20 {
		return ethtypes.Address{}, invalidParams("bad address %q", s)
	}
	return ethtypes.BytesToAddress(raw), nil
}

func parseHash(s string) (ethtypes.Hash, error) {
	raw, err := hexutil.Decode(s)
	if err != nil || len(raw) != 32 {
		return ethtypes.Hash{}, invalidParams("bad hash %q", s)
	}
	return ethtypes.BytesToHash(raw), nil
}
