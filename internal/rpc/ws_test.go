package rpc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/minisol"
	"legalchain/internal/wallet"
	"legalchain/internal/web3"
	"legalchain/internal/ws"
)

// wsRig starts a chain, mounts ServeWS behind httptest and dials it.
func wsRig(t *testing.T) (*chain.Blockchain, []wallet.Account, *wsTestClient) {
	t.Helper()
	accs := wallet.DevAccounts("ws test", 3)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(100))
	bc := chain.New(g)
	t.Cleanup(func() { bc.Close() })
	ks := wallet.NewKeystore()
	for _, a := range accs {
		ks.Import(a.Key)
	}
	srv := NewServer(bc, ks)
	hs := httptest.NewServer(http.HandlerFunc(srv.ServeWS))
	t.Cleanup(hs.Close)
	return bc, accs, dialWS(t, hs.URL)
}

func dialWS(t *testing.T, httpURL string) *wsTestClient {
	t.Helper()
	conn, err := ws.Dial("ws"+strings.TrimPrefix(httpURL, "http"), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close(ws.CloseNormal, "") })
	return &wsTestClient{t: t, conn: conn}
}

// wsTestClient speaks JSON-RPC over one WebSocket, buffering
// eth_subscription notifications that arrive interleaved with call
// responses.
type wsTestClient struct {
	t      *testing.T
	conn   *ws.Conn
	nextID int
	notifs []wsNotif
}

type wsNotif struct {
	Subscription string
	Result       json.RawMessage
}

type wsWireMsg struct {
	ID     json.RawMessage `json:"id"`
	Result json.RawMessage `json:"result"`
	Error  *struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	Method string `json:"method"`
	Params struct {
		Subscription string          `json:"subscription"`
		Result       json.RawMessage `json:"result"`
	} `json:"params"`
}

// call issues one request and returns its result, queueing any
// notifications read along the way. Errors fail the test unless
// wantErr.
func (c *wsTestClient) call(method string, params ...interface{}) json.RawMessage {
	res, errMsg := c.rawCall(method, params...)
	if errMsg != "" {
		c.t.Fatalf("%s: %s", method, errMsg)
	}
	return res
}

func (c *wsTestClient) rawCall(method string, params ...interface{}) (json.RawMessage, string) {
	c.t.Helper()
	c.nextID++
	if params == nil {
		params = []interface{}{}
	}
	buf, err := json.Marshal(map[string]interface{}{
		"jsonrpc": "2.0", "id": c.nextID, "method": method, "params": params,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	if err := c.conn.WriteMessage(ws.OpText, buf); err != nil {
		c.t.Fatalf("write: %v", err)
	}
	want := fmt.Sprintf("%d", c.nextID)
	for {
		msg := c.readMsg(5 * time.Second)
		if msg.Method == "eth_subscription" {
			c.notifs = append(c.notifs, wsNotif{msg.Params.Subscription, msg.Params.Result})
			continue
		}
		if string(msg.ID) != want {
			c.t.Fatalf("response id %s, want %s", msg.ID, want)
		}
		if msg.Error != nil {
			return nil, msg.Error.Message
		}
		return msg.Result, ""
	}
}

func (c *wsTestClient) readMsg(timeout time.Duration) *wsWireMsg {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	_, payload, err := c.conn.ReadMessage()
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	var msg wsWireMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		c.t.Fatalf("bad frame %q: %v", payload, err)
	}
	return &msg
}

// nextNotif returns the next notification for subID, in arrival order.
func (c *wsTestClient) nextNotif(subID string, timeout time.Duration) json.RawMessage {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for i, n := range c.notifs {
			if n.Subscription == subID {
				c.notifs = append(c.notifs[:i], c.notifs[i+1:]...)
				return n.Result
			}
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("no notification for %s within %v", subID, timeout)
		}
		msg := c.readMsg(time.Until(deadline))
		if msg.Method == "eth_subscription" {
			c.notifs = append(c.notifs, wsNotif{msg.Params.Subscription, msg.Params.Result})
		}
	}
}

// noNotif asserts nothing arrives for subID within d.
func (c *wsTestClient) noNotif(subID string, d time.Duration) {
	c.t.Helper()
	for _, n := range c.notifs {
		if n.Subscription == subID {
			c.t.Fatalf("unexpected notification for %s: %s", subID, n.Result)
		}
	}
	c.conn.SetReadDeadline(time.Now().Add(d))
	_, payload, err := c.conn.ReadMessage()
	if err == nil {
		var msg wsWireMsg
		json.Unmarshal(payload, &msg)
		if msg.Method == "eth_subscription" && msg.Params.Subscription == subID {
			c.t.Fatalf("unexpected notification: %s", payload)
		}
	}
}

func TestWSRegularRPC(t *testing.T) {
	bc, accs, c := wsRig(t)
	var chainID string
	json.Unmarshal(c.call("eth_chainId"), &chainID)
	if chainID != "0x539" {
		t.Fatalf("chainId %s", chainID)
	}
	var bal string
	json.Unmarshal(c.call("eth_getBalance", accs[0].Address.Hex()), &bal)
	if bal == "" || bal == "0x0" {
		t.Fatalf("balance %q", bal)
	}
	bc.MineBlock()
	var bn string
	json.Unmarshal(c.call("eth_blockNumber"), &bn)
	if bn != "0x1" {
		t.Fatalf("blockNumber %s", bn)
	}
}

func TestWSSubscribeNewHeadsInOrder(t *testing.T) {
	bc, _, c := wsRig(t)
	var subID string
	json.Unmarshal(c.call("eth_subscribe", "newHeads"), &subID)
	if !strings.HasPrefix(subID, "0x") {
		t.Fatalf("subscription id %q is not a hex quantity", subID)
	}
	const blocks = 5
	for i := 0; i < blocks; i++ {
		bc.MineBlock()
	}
	for i := 1; i <= blocks; i++ {
		var head struct {
			Number string `json:"number"`
			Hash   string `json:"hash"`
		}
		json.Unmarshal(c.nextNotif(subID, 5*time.Second), &head)
		if want := fmt.Sprintf("0x%x", i); head.Number != want {
			t.Fatalf("head %d: number %s, want %s", i, head.Number, want)
		}
		b, _ := bc.View().BlockByNumber(uint64(i))
		if head.Hash != b.Hash().Hex() {
			t.Fatalf("head %d: hash mismatch", i)
		}
	}
}

func TestWSSubscribeLogsWithAddressFilter(t *testing.T) {
	bc, accs, c := wsRig(t)
	client, err := web3.NewClient(web3.NewLocalBackend(bc), walletFromAccounts(accs))
	if err != nil {
		t.Fatal(err)
	}
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	var subID string
	json.Unmarshal(c.call("eth_subscribe", "logs",
		map[string]interface{}{"address": bound.Address.Hex()}), &subID)

	for i := 0; i < 2; i++ {
		if _, err := bound.Transact(web3.TxOpts{From: accs[0].Address}, "increment"); err != nil {
			t.Fatal(err)
		}
	}
	// A log from another address must not match the filter.
	if _, err := client.Transfer(web3.TxOpts{From: accs[0].Address, Value: ethtypes.Ether(1)}, accs[1].Address); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i := 0; i < 2; i++ {
		var lg struct {
			Address     string `json:"address"`
			BlockNumber string `json:"blockNumber"`
		}
		json.Unmarshal(c.nextNotif(subID, 5*time.Second), &lg)
		if !strings.EqualFold(lg.Address, bound.Address.Hex()) {
			t.Fatalf("log %d from %s, want %s", i, lg.Address, bound.Address.Hex())
		}
		var n uint64
		fmt.Sscanf(lg.BlockNumber, "0x%x", &n)
		if n <= prev {
			t.Fatalf("logs out of order: %d after %d", n, prev)
		}
		prev = n
	}
	c.noNotif(subID, 300*time.Millisecond)
}

func TestWSSubscribePendingTransactions(t *testing.T) {
	bc, accs, c := wsRig(t)
	client, err := web3.NewClient(web3.NewLocalBackend(bc), walletFromAccounts(accs))
	if err != nil {
		t.Fatal(err)
	}
	var subID string
	json.Unmarshal(c.call("eth_subscribe", "newPendingTransactions"), &subID)
	rcpt, err := client.Transfer(web3.TxOpts{From: accs[0].Address, Value: ethtypes.Ether(1)}, accs[1].Address)
	if err != nil {
		t.Fatal(err)
	}
	var hash string
	json.Unmarshal(c.nextNotif(subID, 5*time.Second), &hash)
	if hash != rcpt.TxHash.Hex() {
		t.Fatalf("pending hash %s, want %s", hash, rcpt.TxHash.Hex())
	}
}

func TestWSUnsubscribe(t *testing.T) {
	bc, _, c := wsRig(t)
	var subID string
	json.Unmarshal(c.call("eth_subscribe", "newHeads"), &subID)
	var ok bool
	json.Unmarshal(c.call("eth_unsubscribe", subID), &ok)
	if !ok {
		t.Fatal("unsubscribe returned false for a live subscription")
	}
	json.Unmarshal(c.call("eth_unsubscribe", subID), &ok)
	if ok {
		t.Fatal("second unsubscribe returned true")
	}
	bc.MineBlock()
	c.noNotif(subID, 300*time.Millisecond)
}

func TestWSSubscribeUnknownKind(t *testing.T) {
	_, _, c := wsRig(t)
	if _, errMsg := c.rawCall("eth_subscribe", "syncing"); errMsg == "" {
		t.Fatal("unknown subscription kind accepted")
	}
}

// TestWSManySubscribersInOrder is the K-concurrent-subscriber
// acceptance path: every client sees every sealed head, in order.
func TestWSManySubscribersInOrder(t *testing.T) {
	accs := wallet.DevAccounts("ws fanout", 1)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(100))
	bc := chain.New(g)
	defer bc.Close()
	srv := NewServer(bc, nil)
	hs := httptest.NewServer(http.HandlerFunc(srv.ServeWS))
	defer hs.Close()

	const K, blocks = 8, 10
	clients := make([]*wsTestClient, K)
	subIDs := make([]string, K)
	for i := range clients {
		clients[i] = dialWS(t, hs.URL)
		json.Unmarshal(clients[i].call("eth_subscribe", "newHeads"), &subIDs[i])
	}
	for i := 0; i < blocks; i++ {
		bc.MineBlock()
	}
	for ci, c := range clients {
		for n := 1; n <= blocks; n++ {
			var head struct {
				Number string `json:"number"`
			}
			json.Unmarshal(c.nextNotif(subIDs[ci], 5*time.Second), &head)
			if want := fmt.Sprintf("0x%x", n); head.Number != want {
				t.Fatalf("client %d head %d: number %s, want %s", ci, n, head.Number, want)
			}
		}
	}
}

func walletFromAccounts(accs []wallet.Account) *wallet.Keystore {
	ks := wallet.NewKeystore()
	for _, a := range accs {
		ks.Import(a.Key)
	}
	return ks
}
