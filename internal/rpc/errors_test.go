package rpc

import (
	"fmt"
	"testing"

	"legalchain/internal/upgrade"
)

// wrappedData wraps a DataError one level down; toRPCError must unwrap.
type wrappedData struct{ inner error }

func (w *wrappedData) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrappedData) Unwrap() error { return w.inner }

func TestToRPCErrorMapsDataError(t *testing.T) {
	rep := &upgrade.Report{Candidate: "BadV2"}
	rep.Failures = append(rep.Failures, upgrade.Check{
		Rule: upgrade.RuleSelectorRemoved, Subject: "payRent()", Detail: "selector gone",
	})
	rej := &upgrade.RejectionError{Report: rep}

	e := toRPCError(rej)
	if e.Code != codeRevert {
		t.Fatalf("code = %d, want %d (rejections share the revert code; data disambiguates)", e.Code, codeRevert)
	}
	data, ok := e.Data.(map[string]interface{})
	if !ok || data["kind"] != "upgrade_rejected" {
		t.Fatalf("data = %#v, want upgrade_rejected envelope", e.Data)
	}
	if data["report"] != rep {
		t.Fatal("data does not carry the structured report")
	}

	// A DataError buried under fmt wrapping still maps.
	e = toRPCError(&wrappedData{inner: fmt.Errorf("modify: %w", rej)})
	if e.Code != codeRevert {
		t.Fatalf("wrapped code = %d, want %d", e.Code, codeRevert)
	}
}

func TestToRPCErrorPlainFallback(t *testing.T) {
	e := toRPCError(fmt.Errorf("boom"))
	if e.Code != codeServerError || e.Data != nil {
		t.Fatalf("plain error mapped to %+v", e)
	}
}
