package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
	"legalchain/internal/obs"
	"legalchain/internal/uint256"
	"legalchain/internal/web3"
)

// Client is a JSON-RPC client implementing web3.Backend over HTTP, so
// the contract manager can talk to a remote devnet exactly as web3.py
// talks to Ganache in the paper.
type Client struct {
	url  string
	hc   *http.Client
	next uint64
	rid  string
}

// Dial creates a client for a JSON-RPC endpoint URL.
func Dial(url string) *Client {
	return &Client{url: url, hc: &http.Client{Timeout: 30 * time.Second}}
}

// SetRequestID sets the X-Request-Id header sent with every subsequent
// call, so a client-side operation joins the server's request log,
// error envelopes and trace under one ID.
func (c *Client) SetRequestID(id string) { c.rid = id }

// SetHTTPClient replaces the transport. Load generators route calls
// through an in-process handler to simulate more users than the OS
// grants file descriptors; tests inject failing transports.
func (c *Client) SetHTTPClient(hc *http.Client) { c.hc = hc }

// Call performs one raw JSON-RPC invocation — the escape hatch for
// methods outside the web3.Backend surface (debug_traceTransaction and
// friends). Pass a *json.RawMessage as out to keep the result verbatim.
func (c *Client) Call(out interface{}, method string, params ...interface{}) error {
	return c.call(out, method, params...)
}

// call performs one JSON-RPC round trip, decoding the result into out.
func (c *Client) call(out interface{}, method string, params ...interface{}) error {
	id := atomic.AddUint64(&c.next, 1)
	reqBody, err := json.Marshal(map[string]interface{}{
		"jsonrpc": "2.0", "id": id, "method": method, "params": params,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.url, bytes.NewReader(reqBody))
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", method, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.rid != "" {
		req.Header.Set(obs.RequestIDHeader, c.rid)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", method, err)
	}
	defer resp.Body.Close()
	var wire struct {
		Result json.RawMessage `json:"result"`
		Error  *rpcError       `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return fmt.Errorf("rpc: %s: bad response: %w", method, err)
	}
	if wire.Error != nil {
		// Surface revert reasons as typed errors.
		if strings.HasPrefix(wire.Error.Message, "execution reverted") {
			reason := strings.TrimPrefix(wire.Error.Message, "execution reverted")
			reason = strings.TrimPrefix(reason, ": ")
			return &web3.RevertError{Reason: reason}
		}
		if wire.Error.RequestID != "" {
			return fmt.Errorf("rpc: %s: %s (code %d, request %s)",
				method, wire.Error.Message, wire.Error.Code, wire.Error.RequestID)
		}
		return fmt.Errorf("rpc: %s: %s (code %d)", method, wire.Error.Message, wire.Error.Code)
	}
	if out == nil || string(wire.Result) == "null" {
		return nil
	}
	return json.Unmarshal(wire.Result, out)
}

func (c *Client) hexUint(method string, params ...interface{}) (uint64, error) {
	var s string
	if err := c.call(&s, method, params...); err != nil {
		return 0, err
	}
	return hexutil.DecodeUint64(s)
}

// ChainID implements web3.Backend.
func (c *Client) ChainID() (uint64, error) { return c.hexUint("eth_chainId") }

// BlockNumber implements web3.Backend.
func (c *Client) BlockNumber() (uint64, error) { return c.hexUint("eth_blockNumber") }

// GetBalance implements web3.Backend.
func (c *Client) GetBalance(addr ethtypes.Address) (uint256.Int, error) {
	var s string
	if err := c.call(&s, "eth_getBalance", addr.Hex(), "latest"); err != nil {
		return uint256.Zero, err
	}
	v, err := hexutil.DecodeBig(s)
	if err != nil {
		return uint256.Zero, err
	}
	return uint256.FromBig(v), nil
}

// GetNonce implements web3.Backend.
func (c *Client) GetNonce(addr ethtypes.Address) (uint64, error) {
	return c.hexUint("eth_getTransactionCount", addr.Hex(), "latest")
}

// GetCode implements web3.Backend.
func (c *Client) GetCode(addr ethtypes.Address) ([]byte, error) {
	var s string
	if err := c.call(&s, "eth_getCode", addr.Hex(), "latest"); err != nil {
		return nil, err
	}
	return hexutil.Decode(s)
}

// GasPrice implements web3.Backend.
func (c *Client) GasPrice() (uint256.Int, error) {
	var s string
	if err := c.call(&s, "eth_gasPrice"); err != nil {
		return uint256.Zero, err
	}
	v, err := hexutil.DecodeBig(s)
	if err != nil {
		return uint256.Zero, err
	}
	return uint256.FromBig(v), nil
}

// SendRawTransaction implements web3.Backend.
func (c *Client) SendRawTransaction(raw []byte) (ethtypes.Hash, error) {
	var s string
	if err := c.call(&s, "eth_sendRawTransaction", hexutil.Encode(raw)); err != nil {
		return ethtypes.Hash{}, err
	}
	b, err := hexutil.Decode(s)
	if err != nil {
		return ethtypes.Hash{}, err
	}
	return ethtypes.BytesToHash(b), nil
}

// CallContract implements web3.Backend.
func (c *Client) CallContract(msg web3.CallMsg) ([]byte, error) {
	obj := map[string]interface{}{"from": msg.From.Hex(), "data": hexutil.Encode(msg.Data)}
	if msg.To != nil {
		obj["to"] = msg.To.Hex()
	}
	if !msg.Value.IsZero() {
		obj["value"] = hexutil.EncodeBig(msg.Value.ToBig())
	}
	var s string
	if err := c.call(&s, "eth_call", obj, "latest"); err != nil {
		return nil, err
	}
	return hexutil.Decode(s)
}

// EstimateGas implements web3.Backend.
func (c *Client) EstimateGas(msg web3.CallMsg) (uint64, error) {
	obj := map[string]interface{}{"from": msg.From.Hex(), "data": hexutil.Encode(msg.Data)}
	if msg.To != nil {
		obj["to"] = msg.To.Hex()
	}
	if !msg.Value.IsZero() {
		obj["value"] = hexutil.EncodeBig(msg.Value.ToBig())
	}
	return c.hexUint("eth_estimateGas", obj)
}

// receiptWire mirrors receiptJSON.
type receiptWire struct {
	TransactionHash string    `json:"transactionHash"`
	BlockNumber     string    `json:"blockNumber"`
	BlockHash       string    `json:"blockHash"`
	From            string    `json:"from"`
	To              string    `json:"to"`
	ContractAddress string    `json:"contractAddress"`
	GasUsed         string    `json:"gasUsed"`
	Status          string    `json:"status"`
	RevertReason    string    `json:"revertReason"`
	Logs            []logWire `json:"logs"`
}

type logWire struct {
	Address     string   `json:"address"`
	Topics      []string `json:"topics"`
	Data        string   `json:"data"`
	BlockNumber string   `json:"blockNumber"`
	TxHash      string   `json:"transactionHash"`
	LogIndex    string   `json:"logIndex"`
}

// TransactionReceipt implements web3.Backend.
func (c *Client) TransactionReceipt(h ethtypes.Hash) (*ethtypes.Receipt, bool, error) {
	var wire *receiptWire
	if err := c.call(&wire, "eth_getTransactionReceipt", h.Hex()); err != nil {
		return nil, false, err
	}
	if wire == nil {
		return nil, false, nil
	}
	rcpt := &ethtypes.Receipt{RevertReason: wire.RevertReason}
	var err error
	if rcpt.TxHash, err = decodeHash(wire.TransactionHash); err != nil {
		return nil, false, err
	}
	if rcpt.BlockNumber, err = hexutil.DecodeUint64(wire.BlockNumber); err != nil {
		return nil, false, err
	}
	if rcpt.BlockHash, err = decodeHash(wire.BlockHash); err != nil {
		return nil, false, err
	}
	if rcpt.GasUsed, err = hexutil.DecodeUint64(wire.GasUsed); err != nil {
		return nil, false, err
	}
	if rcpt.Status, err = hexutil.DecodeUint64(wire.Status); err != nil {
		return nil, false, err
	}
	if wire.From != "" {
		a, err := parseAddr(wire.From)
		if err != nil {
			return nil, false, err
		}
		rcpt.From = a
	}
	if wire.To != "" {
		a, err := parseAddr(wire.To)
		if err != nil {
			return nil, false, err
		}
		rcpt.To = &a
	}
	if wire.ContractAddress != "" {
		a, err := parseAddr(wire.ContractAddress)
		if err != nil {
			return nil, false, err
		}
		rcpt.ContractAddress = &a
	}
	for _, lw := range wire.Logs {
		l, err := decodeLogWire(lw)
		if err != nil {
			return nil, false, err
		}
		rcpt.Logs = append(rcpt.Logs, l)
	}
	return rcpt, true, nil
}

func decodeLogWire(lw logWire) (*ethtypes.Log, error) {
	l := &ethtypes.Log{}
	a, err := parseAddr(lw.Address)
	if err != nil {
		return nil, err
	}
	l.Address = a
	for _, ts := range lw.Topics {
		h, err := decodeHash(ts)
		if err != nil {
			return nil, err
		}
		l.Topics = append(l.Topics, h)
	}
	if l.Data, err = hexutil.Decode(lw.Data); err != nil {
		return nil, err
	}
	if lw.BlockNumber != "" {
		if l.BlockNumber, err = hexutil.DecodeUint64(lw.BlockNumber); err != nil {
			return nil, err
		}
	}
	if lw.TxHash != "" {
		if l.TxHash, err = decodeHash(lw.TxHash); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// FilterLogs implements web3.Backend.
func (c *Client) FilterLogs(q chain.FilterQuery) ([]*ethtypes.Log, error) {
	obj := map[string]interface{}{
		"fromBlock": hexutil.EncodeUint64(q.FromBlock),
	}
	if q.ToBlock != nil {
		obj["toBlock"] = hexutil.EncodeUint64(*q.ToBlock)
	}
	if len(q.Addresses) > 0 {
		addrs := make([]string, len(q.Addresses))
		for i, a := range q.Addresses {
			addrs[i] = a.Hex()
		}
		obj["address"] = addrs
	}
	if len(q.Topics) > 0 {
		topics := make([]interface{}, len(q.Topics))
		for i, alts := range q.Topics {
			if alts == nil {
				topics[i] = nil
				continue
			}
			ss := make([]string, len(alts))
			for j, h := range alts {
				ss[j] = h.Hex()
			}
			topics[i] = ss
		}
		obj["topics"] = topics
	}
	var wires []logWire
	if err := c.call(&wires, "eth_getLogs", obj); err != nil {
		return nil, err
	}
	out := make([]*ethtypes.Log, len(wires))
	for i, lw := range wires {
		l, err := decodeLogWire(lw)
		if err != nil {
			return nil, err
		}
		out[i] = l
	}
	return out, nil
}

// AdjustTime implements web3.Backend via evm_increaseTime.
func (c *Client) AdjustTime(seconds uint64) error {
	var ignored string
	return c.call(&ignored, "evm_increaseTime", seconds)
}

func decodeHash(s string) (ethtypes.Hash, error) {
	b, err := hexutil.Decode(s)
	if err != nil || len(b) != 32 {
		return ethtypes.Hash{}, fmt.Errorf("rpc: bad hash %q", s)
	}
	return ethtypes.BytesToHash(b), nil
}
