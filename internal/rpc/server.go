// Package rpc exposes the devnet over JSON-RPC 2.0 — the endpoint role
// Ganache plays in the paper's stack. The eth_* subset implemented is
// the one web3 clients need for the legal-contract flows: transaction
// submission, calls, receipts, logs, balances and code, plus the
// development extension evm_increaseTime.
package rpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
	"legalchain/internal/wallet"
)

// Server handles JSON-RPC requests for one Blockchain.
type Server struct {
	bc      *chain.Blockchain
	ks      *wallet.Keystore // for eth_accounts; may be nil
	filters filterRegistry
}

// NewServer builds a server. ks may be nil.
func NewServer(bc *chain.Blockchain, ks *wallet.Keystore) *Server {
	return &Server{bc: bc, ks: ks}
}

// request/response are the JSON-RPC 2.0 wire structures.
type request struct {
	JSONRPC string            `json:"jsonrpc"`
	ID      json.RawMessage   `json:"id"`
	Method  string            `json:"method"`
	Params  []json.RawMessage `json:"params"`
}

type response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  interface{}     `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Standard JSON-RPC error codes.
const (
	codeParse          = -32700
	codeInvalidRequest = -32600
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
	codeServerError    = -32000
)

// ServeHTTP implements http.Handler (POST with a single request or a
// batch array).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "[") {
		var reqs []request
		if err := json.Unmarshal(body, &reqs); err != nil {
			json.NewEncoder(w).Encode(errorResponse(nil, codeParse, "parse error"))
			return
		}
		out := make([]response, len(reqs))
		for i, req := range reqs {
			out[i] = s.handle(&req)
		}
		json.NewEncoder(w).Encode(out)
		return
	}
	var req request
	if err := json.Unmarshal(body, &req); err != nil {
		json.NewEncoder(w).Encode(errorResponse(nil, codeParse, "parse error"))
		return
	}
	json.NewEncoder(w).Encode(s.handle(&req))
}

func errorResponse(id json.RawMessage, code int, msg string) response {
	return response{JSONRPC: "2.0", ID: id, Error: &rpcError{Code: code, Message: msg}}
}

func okResponse(id json.RawMessage, result interface{}) response {
	return response{JSONRPC: "2.0", ID: id, Result: result}
}

// handle dispatches one request.
func (s *Server) handle(req *request) response {
	result, err := s.dispatch(req.Method, req.Params)
	if err != nil {
		code := codeServerError
		if err == errMethodNotFound {
			code = codeMethodNotFound
		}
		return errorResponse(req.ID, code, err.Error())
	}
	return okResponse(req.ID, result)
}

var errMethodNotFound = fmt.Errorf("method not found")

func (s *Server) dispatch(method string, params []json.RawMessage) (interface{}, error) {
	switch method {
	case "web3_clientVersion":
		return "legalchain/devnet/v1.0.0", nil
	case "net_version":
		return fmt.Sprintf("%d", s.bc.ChainID()), nil
	case "eth_chainId":
		return hexutil.EncodeUint64(s.bc.ChainID()), nil
	case "eth_blockNumber":
		return hexutil.EncodeUint64(s.bc.BlockNumber()), nil
	case "eth_gasPrice":
		return "0x3b9aca00", nil // 1 gwei
	case "eth_accounts":
		var out []string
		if s.ks != nil {
			for _, a := range s.ks.Accounts() {
				out = append(out, a.Hex())
			}
		}
		return out, nil

	case "eth_getBalance":
		addr, err := addrParam(params, 0)
		if err != nil {
			return nil, err
		}
		return hexutil.EncodeBig(s.bc.GetBalance(addr).ToBig()), nil

	case "eth_getTransactionCount":
		addr, err := addrParam(params, 0)
		if err != nil {
			return nil, err
		}
		return hexutil.EncodeUint64(s.bc.GetNonce(addr)), nil

	case "eth_getCode":
		addr, err := addrParam(params, 0)
		if err != nil {
			return nil, err
		}
		return hexutil.Encode(s.bc.GetCode(addr)), nil

	case "eth_getStorageAt":
		addr, err := addrParam(params, 0)
		if err != nil {
			return nil, err
		}
		slotHex, err := strParam(params, 1)
		if err != nil {
			return nil, err
		}
		raw, err := hexutil.DecodeBig(slotHex)
		if err != nil {
			return nil, err
		}
		var slot ethtypes.Hash
		raw.FillBytes(slot[:])
		v := s.bc.GetStorageAt(addr, slot).Bytes32()
		return hexutil.Encode(v[:]), nil

	case "eth_sendRawTransaction":
		rawHex, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		raw, err := hexutil.Decode(rawHex)
		if err != nil {
			return nil, err
		}
		tx, err := ethtypes.DecodeTransaction(raw)
		if err != nil {
			return nil, err
		}
		hash, err := s.bc.SendTransaction(tx)
		if err != nil {
			return nil, err
		}
		return hash.Hex(), nil

	case "eth_call":
		msg, err := callParam(params, 0)
		if err != nil {
			return nil, err
		}
		res := s.bc.Call(msg.from, msg.to, msg.data, msg.value, msg.gas)
		if res.Err != nil {
			if res.Reason != "" {
				return nil, fmt.Errorf("execution reverted: %s", res.Reason)
			}
			return nil, res.Err
		}
		return hexutil.Encode(res.Return), nil

	case "eth_estimateGas":
		msg, err := callParam(params, 0)
		if err != nil {
			return nil, err
		}
		est, err := s.bc.EstimateGas(msg.from, msg.to, msg.data, msg.value)
		if err != nil {
			return nil, err
		}
		return hexutil.EncodeUint64(est), nil

	case "eth_getTransactionReceipt":
		h, err := hashParam(params, 0)
		if err != nil {
			return nil, err
		}
		rcpt, ok := s.bc.GetReceipt(h)
		if !ok {
			return nil, nil // null result per spec
		}
		return receiptJSON(rcpt), nil

	case "eth_getTransactionByHash":
		h, err := hashParam(params, 0)
		if err != nil {
			return nil, err
		}
		tx, ok := s.bc.GetTransaction(h)
		if !ok {
			return nil, nil
		}
		return txJSON(tx, s.bc.ChainID()), nil

	case "eth_getBlockByNumber":
		tag, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		n, err := parseBlockTag(tag, s.bc.BlockNumber())
		if err != nil {
			return nil, err
		}
		b, ok := s.bc.BlockByNumber(n)
		if !ok {
			return nil, nil
		}
		return blockJSON(b, boolParam(params, 1), s.bc.ChainID()), nil

	case "eth_getBlockByHash":
		h, err := hashParam(params, 0)
		if err != nil {
			return nil, err
		}
		b, ok := s.bc.BlockByHash(h)
		if !ok {
			return nil, nil
		}
		return blockJSON(b, boolParam(params, 1), s.bc.ChainID()), nil

	case "eth_getLogs":
		q, err := filterParam(params, 0, s.bc.BlockNumber())
		if err != nil {
			return nil, err
		}
		logs := s.bc.FilterLogs(q)
		out := make([]interface{}, len(logs))
		for i, l := range logs {
			out[i] = logJSON(l)
		}
		return out, nil

	case "debug_traceCall":
		msg, err := callParam(params, 0)
		if err != nil {
			return nil, err
		}
		res, trace := s.bc.TraceCall(msg.from, msg.to, msg.data, msg.gas)
		out := map[string]interface{}{
			"gas":      hexutil.EncodeUint64(res.GasUsed),
			"failed":   res.Err != nil,
			"steps":    len(trace.Logs),
			"opCounts": trace.OpCount,
		}
		if res.Err != nil {
			out["error"] = res.Err.Error()
		}
		if len(res.Return) > 0 {
			out["returnValue"] = hexutil.Encode(res.Return)
		}
		return out, nil

	case "eth_newFilter":
		q, explicitFrom, err := newFilterParam(params, 0, s.bc.BlockNumber())
		if err != nil {
			return nil, err
		}
		return s.newLogFilter(q, explicitFrom), nil

	case "eth_newBlockFilter":
		return s.newBlockFilter(), nil

	case "eth_getFilterChanges":
		id, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		return s.filterChanges(id)

	case "eth_getFilterLogs":
		id, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		return s.filterLogs(id)

	case "eth_uninstallFilter":
		id, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		return s.filters.uninstall(id), nil

	case "evm_increaseTime":
		secs, err := uintParam(params, 0)
		if err != nil {
			return nil, err
		}
		s.bc.AdjustTime(secs)
		return hexutil.EncodeUint64(secs), nil

	default:
		return nil, errMethodNotFound
	}
}

// --- JSON shapes ----------------------------------------------------------

func receiptJSON(r *ethtypes.Receipt) map[string]interface{} {
	out := map[string]interface{}{
		"transactionHash":   r.TxHash.Hex(),
		"transactionIndex":  hexutil.EncodeUint64(uint64(r.TxIndex)),
		"blockNumber":       hexutil.EncodeUint64(r.BlockNumber),
		"blockHash":         r.BlockHash.Hex(),
		"from":              r.From.Hex(),
		"gasUsed":           hexutil.EncodeUint64(r.GasUsed),
		"cumulativeGasUsed": hexutil.EncodeUint64(r.CumulativeGasUsed),
		"status":            hexutil.EncodeUint64(r.Status),
		"logs":              []interface{}{},
	}
	if r.To != nil {
		out["to"] = r.To.Hex()
	}
	if r.ContractAddress != nil {
		out["contractAddress"] = r.ContractAddress.Hex()
	}
	if r.RevertReason != "" {
		out["revertReason"] = r.RevertReason
	}
	logs := make([]interface{}, len(r.Logs))
	for i, l := range r.Logs {
		logs[i] = logJSON(l)
	}
	out["logs"] = logs
	return out
}

func logJSON(l *ethtypes.Log) map[string]interface{} {
	topics := make([]string, len(l.Topics))
	for i, t := range l.Topics {
		topics[i] = t.Hex()
	}
	return map[string]interface{}{
		"address":          l.Address.Hex(),
		"topics":           topics,
		"data":             hexutil.Encode(l.Data),
		"blockNumber":      hexutil.EncodeUint64(l.BlockNumber),
		"blockHash":        l.BlockHash.Hex(),
		"transactionHash":  l.TxHash.Hex(),
		"transactionIndex": hexutil.EncodeUint64(uint64(l.TxIndex)),
		"logIndex":         hexutil.EncodeUint64(uint64(l.Index)),
		"removed":          false,
	}
}

func txJSON(tx *ethtypes.Transaction, chainID uint64) map[string]interface{} {
	out := map[string]interface{}{
		"hash":     tx.Hash().Hex(),
		"nonce":    hexutil.EncodeUint64(tx.Nonce),
		"gas":      hexutil.EncodeUint64(tx.Gas),
		"gasPrice": hexutil.EncodeBig(tx.GasPrice.ToBig()),
		"value":    hexutil.EncodeBig(tx.Value.ToBig()),
		"input":    hexutil.Encode(tx.Data),
	}
	if tx.To != nil {
		out["to"] = tx.To.Hex()
	}
	if from, err := tx.Sender(chainID); err == nil {
		out["from"] = from.Hex()
	}
	return out
}

func blockJSON(b *ethtypes.Block, fullTx bool, chainID uint64) map[string]interface{} {
	var txs interface{}
	if fullTx {
		objs := make([]interface{}, len(b.Transactions))
		for i, tx := range b.Transactions {
			obj := txJSON(tx, chainID)
			obj["blockHash"] = b.Hash().Hex()
			obj["blockNumber"] = hexutil.EncodeUint64(b.Number())
			obj["transactionIndex"] = hexutil.EncodeUint64(uint64(i))
			objs[i] = obj
		}
		txs = objs
	} else {
		hashes := make([]string, len(b.Transactions))
		for i, tx := range b.Transactions {
			hashes[i] = tx.Hash().Hex()
		}
		txs = hashes
	}
	return map[string]interface{}{
		"number":       hexutil.EncodeUint64(b.Number()),
		"hash":         b.Hash().Hex(),
		"parentHash":   b.Header.ParentHash.Hex(),
		"timestamp":    hexutil.EncodeUint64(b.Header.Time),
		"gasLimit":     hexutil.EncodeUint64(b.Header.GasLimit),
		"gasUsed":      hexutil.EncodeUint64(b.Header.GasUsed),
		"miner":        b.Header.Coinbase.Hex(),
		"stateRoot":    b.Header.StateRoot.Hex(),
		"transactions": txs,
	}
}

// --- param helpers ---------------------------------------------------------

func strParam(params []json.RawMessage, i int) (string, error) {
	if i >= len(params) {
		return "", fmt.Errorf("missing parameter %d", i)
	}
	var s string
	if err := json.Unmarshal(params[i], &s); err != nil {
		return "", fmt.Errorf("parameter %d: %v", i, err)
	}
	return s, nil
}

func addrParam(params []json.RawMessage, i int) (ethtypes.Address, error) {
	s, err := strParam(params, i)
	if err != nil {
		return ethtypes.Address{}, err
	}
	raw, err := hexutil.Decode(s)
	if err != nil || len(raw) != 20 {
		return ethtypes.Address{}, fmt.Errorf("parameter %d: bad address", i)
	}
	return ethtypes.BytesToAddress(raw), nil
}

func hashParam(params []json.RawMessage, i int) (ethtypes.Hash, error) {
	s, err := strParam(params, i)
	if err != nil {
		return ethtypes.Hash{}, err
	}
	raw, err := hexutil.Decode(s)
	if err != nil || len(raw) != 32 {
		return ethtypes.Hash{}, fmt.Errorf("parameter %d: bad hash", i)
	}
	return ethtypes.BytesToHash(raw), nil
}

// boolParam reads an optional boolean parameter, false when absent or
// malformed — the eth_getBlockBy* full-transactions flag.
func boolParam(params []json.RawMessage, i int) bool {
	if i >= len(params) {
		return false
	}
	var b bool
	json.Unmarshal(params[i], &b)
	return b
}

func uintParam(params []json.RawMessage, i int) (uint64, error) {
	if i >= len(params) {
		return 0, fmt.Errorf("missing parameter %d", i)
	}
	var n uint64
	if err := json.Unmarshal(params[i], &n); err == nil {
		return n, nil
	}
	s, err := strParam(params, i)
	if err != nil {
		return 0, err
	}
	return hexutil.DecodeUint64(s)
}
