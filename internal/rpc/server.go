// Package rpc exposes the devnet over JSON-RPC 2.0 — the endpoint role
// Ganache plays in the paper's stack. The eth_* subset implemented is
// the one web3 clients need for the legal-contract flows: transaction
// submission, calls, receipts, logs, balances and code, plus the
// development extension evm_increaseTime.
package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
	"legalchain/internal/obs"
	"legalchain/internal/wallet"
	"legalchain/internal/watch"
	"legalchain/internal/xtrace"
)

// Server handles JSON-RPC requests for one Blockchain.
type Server struct {
	bc      *chain.Blockchain
	ks      *wallet.Keystore // for eth_accounts; may be nil
	log     *slog.Logger
	watch   *watch.Tower // for legal_watchStatus; may be nil
	filters filterRegistry
	subSeq  atomic.Uint64 // eth_subscribe ID allocator (ws.go)
}

// NewServer builds a server. ks may be nil.
func NewServer(bc *chain.Blockchain, ks *wallet.Keystore) *Server {
	return &Server{bc: bc, ks: ks}
}

// SetLogger attaches a structured logger; every dispatched method is
// then logged with its latency, outcome and the request ID obs
// middleware put on the context.
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// SetWatch attaches the node's watchtower, enabling legal_watchStatus.
func (s *Server) SetWatch(t *watch.Tower) { s.watch = t }

// request/response are the JSON-RPC 2.0 wire structures.
type request struct {
	JSONRPC string            `json:"jsonrpc"`
	ID      json.RawMessage   `json:"id"`
	Method  string            `json:"method"`
	Params  []json.RawMessage `json:"params"`
}

type response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  interface{}     `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

type rpcError struct {
	Code    int         `json:"code"`
	Message string      `json:"message"`
	Data    interface{} `json:"data,omitempty"`
	// RequestID echoes the X-Request-Id of the HTTP request that carried
	// this call, so a failing JSON-RPC response can be joined with the
	// server's request log and its trace without headers.
	RequestID string `json:"requestId,omitempty"`
}

// Standard JSON-RPC error codes, plus geth's convention of code 3 for
// reverted execution (revert return bytes ride in error.data).
const (
	codeParse          = -32700
	codeInvalidRequest = -32600
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
	codeServerError    = -32000
	codeRevert         = 3
)

// Error is a JSON-RPC error carrying an explicit spec code and optional
// data payload. Handlers return it (directly or wrapped) when a failure
// should not collapse into the generic -32000 server error.
type Error struct {
	Code    int
	Message string
	Data    interface{}
}

// Error implements error.
func (e *Error) Error() string { return e.Message }

// invalidParams builds a -32602 error.
func invalidParams(format string, args ...interface{}) error {
	return &Error{Code: codeInvalidParams, Message: fmt.Sprintf(format, args...)}
}

// ServeHTTP implements http.Handler (POST with a single request or a
// batch array).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// A standalone JSON-RPC listener (devnet) has no obs middleware in
	// front of it: adopt the caller's X-Request-Id here so error
	// envelopes, logs and traces still join under one ID.
	if obs.RequestIDFrom(r.Context()) == "" {
		if rid := r.Header.Get(obs.RequestIDHeader); rid != "" {
			r = r.WithContext(obs.WithRequestID(r.Context(), rid))
		}
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "[") {
		// Batch: decode the envelope first so one malformed entry
		// produces a per-entry error instead of failing the whole array.
		var raws []json.RawMessage
		if err := json.Unmarshal(body, &raws); err != nil {
			json.NewEncoder(w).Encode(errorResponse(nil, codeParse, "parse error"))
			return
		}
		if len(raws) == 0 {
			json.NewEncoder(w).Encode(errorResponse(nil, codeInvalidRequest, "empty batch"))
			return
		}
		rpcBatchSize.Observe(float64(len(raws)))
		out := make([]response, len(raws))
		for i, raw := range raws {
			out[i] = s.handleRaw(r.Context(), raw)
		}
		json.NewEncoder(w).Encode(out)
		return
	}
	var req request
	if err := json.Unmarshal(body, &req); err != nil {
		if json.Valid(body) {
			json.NewEncoder(w).Encode(errorResponse(nil, codeInvalidRequest, "invalid request"))
		} else {
			json.NewEncoder(w).Encode(errorResponse(nil, codeParse, "parse error"))
		}
		return
	}
	json.NewEncoder(w).Encode(s.handle(r.Context(), &req))
}

// handleRaw decodes one batch entry into a request; entries that are
// not request objects get their own invalid-request response per spec.
func (s *Server) handleRaw(ctx context.Context, raw json.RawMessage) response {
	var req request
	if err := json.Unmarshal(raw, &req); err != nil {
		return errorResponse(nil, codeInvalidRequest, "invalid request")
	}
	return s.handle(ctx, &req)
}

func errorResponse(id json.RawMessage, code int, msg string) response {
	return response{JSONRPC: "2.0", ID: id, Error: &rpcError{Code: code, Message: msg}}
}

func okResponse(id json.RawMessage, result interface{}) response {
	return response{JSONRPC: "2.0", ID: id, Result: result}
}

// handle dispatches one request, recording per-method metrics, a span
// (each batch element gets its own child of the HTTP root span) and an
// optional structured log line.
func (s *Server) handle(ctx context.Context, req *request) response {
	if req.Method == "" {
		return errorResponse(req.ID, codeInvalidRequest, "invalid request: missing method")
	}
	label := methodLabel(req.Method)
	t0 := time.Now()
	rpcInFlight.Inc()
	// Child of the HTTP root span when one exists (rentald's in-process
	// path); otherwise this method span is itself the trace root, keyed
	// by the request ID when the caller sent one.
	var span *xtrace.Span
	if xtrace.FromContext(ctx) != nil {
		ctx, span = xtrace.Start(ctx, "rpc", req.Method)
	} else {
		ctx, span = xtrace.StartRoot(ctx, "rpc", req.Method, obs.RequestIDFrom(ctx))
	}
	result, err := s.dispatch(ctx, req.Method, req.Params)
	span.SetError(err)
	span.End()
	rpcInFlight.Dec()
	rpcSeconds.With(label).ObserveSince(t0)
	rpcRequests.With(label).Inc()

	resp := okResponse(req.ID, result)
	if err != nil {
		e := toRPCError(err)
		e.RequestID = obs.RequestIDFrom(ctx)
		rpcErrors.With(label, strconv.Itoa(e.Code)).Inc()
		resp = response{JSONRPC: "2.0", ID: req.ID, Error: e}
	}
	if s.log != nil {
		attrs := []slog.Attr{
			slog.String("method", req.Method),
			slog.Duration("duration", time.Since(t0)),
		}
		if id := obs.RequestIDFrom(ctx); id != "" {
			attrs = append(attrs, slog.String("id", id))
		}
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
		}
		s.log.LogAttrs(ctx, slog.LevelDebug, "rpc_request", attrs...)
	}
	return resp
}

// toRPCError maps a dispatch error onto the wire shape: typed *Error
// values keep their code and data, reverts become geth's code 3 with
// the raw return bytes in data, unknown methods -32601, and only the
// remainder falls back to the generic -32000 server error.
func toRPCError(err error) *rpcError {
	var re *chain.RevertError
	if errors.As(err, &re) {
		return &rpcError{Code: codeRevert, Message: re.Error(), Data: hexutil.Encode(re.Ret)}
	}
	var te *Error
	if errors.As(err, &te) {
		return &rpcError{Code: te.Code, Message: te.Message, Data: te.Data}
	}
	if de, ok := asDataError(err); ok {
		return &rpcError{Code: de.RPCCode(), Message: de.Error(), Data: de.ErrorData()}
	}
	if errors.Is(err, errMethodNotFound) {
		return &rpcError{Code: codeMethodNotFound, Message: err.Error()}
	}
	return &rpcError{Code: codeServerError, Message: err.Error()}
}

var errMethodNotFound = fmt.Errorf("method not found")

func (s *Server) dispatch(ctx context.Context, method string, params []json.RawMessage) (interface{}, error) {
	switch method {
	case "web3_clientVersion":
		return "legalchain/devnet/v1.0.0", nil
	case "net_version":
		return fmt.Sprintf("%d", s.bc.ChainID()), nil
	case "eth_chainId":
		return hexutil.EncodeUint64(s.bc.ChainID()), nil
	case "eth_blockNumber":
		return hexutil.EncodeUint64(s.bc.BlockNumber()), nil
	case "eth_gasPrice":
		return "0x3b9aca00", nil // 1 gwei
	case "eth_accounts":
		var out []string
		if s.ks != nil {
			for _, a := range s.ks.Accounts() {
				out = append(out, a.Hex())
			}
		}
		return out, nil

	case "eth_getBalance":
		addr, err := addrParam(params, 0)
		if err != nil {
			return nil, err
		}
		return hexutil.EncodeBig(s.bc.GetBalance(addr).ToBig()), nil

	case "eth_getTransactionCount":
		addr, err := addrParam(params, 0)
		if err != nil {
			return nil, err
		}
		return hexutil.EncodeUint64(s.bc.GetNonce(addr)), nil

	case "eth_getCode":
		addr, err := addrParam(params, 0)
		if err != nil {
			return nil, err
		}
		return hexutil.Encode(s.bc.GetCode(addr)), nil

	case "eth_getStorageAt":
		addr, err := addrParam(params, 0)
		if err != nil {
			return nil, err
		}
		slotHex, err := strParam(params, 1)
		if err != nil {
			return nil, err
		}
		raw, err := hexutil.DecodeBig(slotHex)
		if err != nil {
			return nil, invalidParams("parameter 1: bad storage slot")
		}
		var slot ethtypes.Hash
		raw.FillBytes(slot[:])
		v := s.bc.GetStorageAt(addr, slot).Bytes32()
		return hexutil.Encode(v[:]), nil

	case "eth_sendRawTransaction":
		rawHex, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		raw, err := hexutil.Decode(rawHex)
		if err != nil {
			return nil, invalidParams("parameter 0: bad hex")
		}
		tx, err := ethtypes.DecodeTransaction(raw)
		if err != nil {
			return nil, invalidParams("bad transaction: %v", err)
		}
		hash, err := s.bc.SendTransactionCtx(ctx, tx)
		if err != nil {
			return nil, err
		}
		return hash.Hex(), nil

	case "eth_call":
		msg, err := callParam(params, 0)
		if err != nil {
			return nil, err
		}
		res := s.bc.CallCtx(ctx, msg.from, msg.to, msg.data, msg.value, msg.gas)
		if res.Err != nil {
			if re := res.Revert(); re != nil {
				return nil, re
			}
			return nil, res.Err
		}
		return hexutil.Encode(res.Return), nil

	case "eth_estimateGas":
		msg, err := callParam(params, 0)
		if err != nil {
			return nil, err
		}
		est, err := s.bc.EstimateGas(msg.from, msg.to, msg.data, msg.value)
		if err != nil {
			return nil, err
		}
		return hexutil.EncodeUint64(est), nil

	case "eth_getTransactionReceipt":
		h, err := hashParam(params, 0)
		if err != nil {
			return nil, err
		}
		rcpt, ok := s.bc.GetReceipt(h)
		if !ok {
			return nil, nil // null result per spec
		}
		return receiptJSON(rcpt), nil

	case "eth_getTransactionByHash":
		h, err := hashParam(params, 0)
		if err != nil {
			return nil, err
		}
		tx, ok := s.bc.GetTransaction(h)
		if !ok {
			return nil, nil
		}
		return txJSON(tx, s.bc.ChainID()), nil

	case "eth_getBlockByNumber":
		tag, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		// Pin one view so tag resolution ("latest" → height) and the
		// lookup can't straddle a concurrent seal.
		v := s.bc.View()
		n, err := parseBlockTag(tag, v.BlockNumber())
		if err != nil {
			return nil, err
		}
		b, ok := v.BlockByNumber(n)
		if !ok {
			return nil, nil
		}
		return blockJSON(b, boolParam(params, 1), s.bc.ChainID()), nil

	case "eth_getBlockByHash":
		h, err := hashParam(params, 0)
		if err != nil {
			return nil, err
		}
		b, ok := s.bc.BlockByHash(h)
		if !ok {
			return nil, nil
		}
		return blockJSON(b, boolParam(params, 1), s.bc.ChainID()), nil

	case "eth_getLogs":
		// One view for both the default-block resolution and the scan.
		v := s.bc.View()
		q, err := filterParam(params, 0, v.BlockNumber())
		if err != nil {
			return nil, err
		}
		logs := v.FilterLogs(q)
		out := make([]interface{}, len(logs))
		for i, l := range logs {
			out[i] = logJSON(l)
		}
		return out, nil

	case "debug_traceCall":
		msg, err := callParam(params, 0)
		if err != nil {
			return nil, err
		}
		res, trace := s.bc.TraceCall(msg.from, msg.to, msg.data, msg.gas)
		out := map[string]interface{}{
			"gas":        hexutil.EncodeUint64(res.GasUsed),
			"failed":     res.Err != nil,
			"steps":      len(trace.Logs),
			"opCounts":   trace.OpCount,
			"structLogs": structLogsJSON(trace),
		}
		if trace.Truncated() {
			out["truncated"] = true
		}
		if trace.Fault != nil {
			out["fault"] = trace.Fault.Error()
		}
		if res.Err != nil {
			out["error"] = res.Err.Error()
		}
		if res.Reason != "" {
			out["revertReason"] = res.Reason
		}
		if len(res.Return) > 0 {
			out["returnValue"] = hexutil.Encode(res.Return)
		}
		return out, nil

	case "legal_watchStatus":
		// The node's watchtower view: per-contract lifecycle states,
		// outstanding obligations, and alert-rule status. Folds to the
		// current head first, so the answer is read-your-writes.
		if s.watch == nil {
			return nil, fmt.Errorf("watchtower not enabled on this node")
		}
		s.watch.Sync()
		return s.watch.Status(), nil

	case "debug_traceTransaction":
		h, err := hashParam(params, 0)
		if err != nil {
			return nil, err
		}
		cfg, err := traceConfigParam(params, 1)
		if err != nil {
			return nil, err
		}
		tr, err := s.bc.TraceTransaction(ctx, h, cfg.factory)
		if err != nil {
			return nil, mapTraceErr(err)
		}
		return traceResultJSON(tr), nil

	case "debug_traceBlockByNumber":
		tag, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		cfg, err := traceConfigParam(params, 1)
		if err != nil {
			return nil, err
		}
		v := s.bc.View()
		n, err := parseBlockTag(tag, v.BlockNumber())
		if err != nil {
			return nil, err
		}
		traces, err := s.bc.TraceBlockByNumber(ctx, n, cfg.factory)
		if err != nil {
			return nil, mapTraceErr(err)
		}
		out := make([]interface{}, len(traces))
		for i, tr := range traces {
			out[i] = map[string]interface{}{
				"txHash": tr.TxHash.Hex(),
				"result": traceResultJSON(tr),
			}
		}
		return out, nil

	case "eth_newFilter":
		q, explicitFrom, err := newFilterParam(params, 0, s.bc.BlockNumber())
		if err != nil {
			return nil, err
		}
		return s.newLogFilter(q, explicitFrom), nil

	case "eth_newBlockFilter":
		return s.newBlockFilter(), nil

	case "eth_getFilterChanges":
		id, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		return s.filterChanges(id)

	case "eth_getFilterLogs":
		id, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		return s.filterLogs(id)

	case "eth_uninstallFilter":
		id, err := strParam(params, 0)
		if err != nil {
			return nil, err
		}
		return s.filters.uninstall(id), nil

	case "evm_increaseTime":
		secs, err := uintParam(params, 0)
		if err != nil {
			return nil, err
		}
		s.bc.AdjustTime(secs)
		return hexutil.EncodeUint64(secs), nil

	default:
		return nil, errMethodNotFound
	}
}

// --- JSON shapes ----------------------------------------------------------

func receiptJSON(r *ethtypes.Receipt) map[string]interface{} {
	out := map[string]interface{}{
		"transactionHash":   r.TxHash.Hex(),
		"transactionIndex":  hexutil.EncodeUint64(uint64(r.TxIndex)),
		"blockNumber":       hexutil.EncodeUint64(r.BlockNumber),
		"blockHash":         r.BlockHash.Hex(),
		"from":              r.From.Hex(),
		"gasUsed":           hexutil.EncodeUint64(r.GasUsed),
		"cumulativeGasUsed": hexutil.EncodeUint64(r.CumulativeGasUsed),
		"status":            hexutil.EncodeUint64(r.Status),
		"logs":              []interface{}{},
	}
	if r.To != nil {
		out["to"] = r.To.Hex()
	}
	if r.ContractAddress != nil {
		out["contractAddress"] = r.ContractAddress.Hex()
	}
	if r.RevertReason != "" {
		out["revertReason"] = r.RevertReason
	}
	logs := make([]interface{}, len(r.Logs))
	for i, l := range r.Logs {
		logs[i] = logJSON(l)
	}
	out["logs"] = logs
	return out
}

func logJSON(l *ethtypes.Log) map[string]interface{} {
	topics := make([]string, len(l.Topics))
	for i, t := range l.Topics {
		topics[i] = t.Hex()
	}
	return map[string]interface{}{
		"address":          l.Address.Hex(),
		"topics":           topics,
		"data":             hexutil.Encode(l.Data),
		"blockNumber":      hexutil.EncodeUint64(l.BlockNumber),
		"blockHash":        l.BlockHash.Hex(),
		"transactionHash":  l.TxHash.Hex(),
		"transactionIndex": hexutil.EncodeUint64(uint64(l.TxIndex)),
		"logIndex":         hexutil.EncodeUint64(uint64(l.Index)),
		"removed":          false,
	}
}

func txJSON(tx *ethtypes.Transaction, chainID uint64) map[string]interface{} {
	out := map[string]interface{}{
		"hash":     tx.Hash().Hex(),
		"nonce":    hexutil.EncodeUint64(tx.Nonce),
		"gas":      hexutil.EncodeUint64(tx.Gas),
		"gasPrice": hexutil.EncodeBig(tx.GasPrice.ToBig()),
		"value":    hexutil.EncodeBig(tx.Value.ToBig()),
		"input":    hexutil.Encode(tx.Data),
	}
	if tx.To != nil {
		out["to"] = tx.To.Hex()
	}
	if from, err := tx.Sender(chainID); err == nil {
		out["from"] = from.Hex()
	}
	return out
}

func blockJSON(b *ethtypes.Block, fullTx bool, chainID uint64) map[string]interface{} {
	var txs interface{}
	if fullTx {
		objs := make([]interface{}, len(b.Transactions))
		for i, tx := range b.Transactions {
			obj := txJSON(tx, chainID)
			obj["blockHash"] = b.Hash().Hex()
			obj["blockNumber"] = hexutil.EncodeUint64(b.Number())
			obj["transactionIndex"] = hexutil.EncodeUint64(uint64(i))
			objs[i] = obj
		}
		txs = objs
	} else {
		hashes := make([]string, len(b.Transactions))
		for i, tx := range b.Transactions {
			hashes[i] = tx.Hash().Hex()
		}
		txs = hashes
	}
	return map[string]interface{}{
		"number":       hexutil.EncodeUint64(b.Number()),
		"hash":         b.Hash().Hex(),
		"parentHash":   b.Header.ParentHash.Hex(),
		"timestamp":    hexutil.EncodeUint64(b.Header.Time),
		"gasLimit":     hexutil.EncodeUint64(b.Header.GasLimit),
		"gasUsed":      hexutil.EncodeUint64(b.Header.GasUsed),
		"miner":        b.Header.Coinbase.Hex(),
		"stateRoot":    b.Header.StateRoot.Hex(),
		"transactions": txs,
	}
}

// --- param helpers ---------------------------------------------------------

func strParam(params []json.RawMessage, i int) (string, error) {
	if i >= len(params) {
		return "", invalidParams("missing parameter %d", i)
	}
	var s string
	if err := json.Unmarshal(params[i], &s); err != nil {
		return "", invalidParams("parameter %d: %v", i, err)
	}
	return s, nil
}

func addrParam(params []json.RawMessage, i int) (ethtypes.Address, error) {
	s, err := strParam(params, i)
	if err != nil {
		return ethtypes.Address{}, err
	}
	raw, err := hexutil.Decode(s)
	if err != nil || len(raw) != 20 {
		return ethtypes.Address{}, invalidParams("parameter %d: bad address", i)
	}
	return ethtypes.BytesToAddress(raw), nil
}

func hashParam(params []json.RawMessage, i int) (ethtypes.Hash, error) {
	s, err := strParam(params, i)
	if err != nil {
		return ethtypes.Hash{}, err
	}
	raw, err := hexutil.Decode(s)
	if err != nil || len(raw) != 32 {
		return ethtypes.Hash{}, invalidParams("parameter %d: bad hash", i)
	}
	return ethtypes.BytesToHash(raw), nil
}

// boolParam reads an optional boolean parameter, false when absent or
// malformed — the eth_getBlockBy* full-transactions flag.
func boolParam(params []json.RawMessage, i int) bool {
	if i >= len(params) {
		return false
	}
	var b bool
	json.Unmarshal(params[i], &b)
	return b
}

func uintParam(params []json.RawMessage, i int) (uint64, error) {
	if i >= len(params) {
		return 0, invalidParams("missing parameter %d", i)
	}
	var n uint64
	if err := json.Unmarshal(params[i], &n); err == nil {
		return n, nil
	}
	s, err := strParam(params, i)
	if err != nil {
		return 0, err
	}
	v, err := hexutil.DecodeUint64(s)
	if err != nil {
		return 0, invalidParams("parameter %d: bad quantity", i)
	}
	return v, nil
}
