package rpc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"legalchain/internal/abi"
	"legalchain/internal/minisol"
	"legalchain/internal/obs"
	"legalchain/internal/web3"
)

// rpcCall posts one JSON-RPC request and decodes the wire envelope.
func rpcCall(t *testing.T, url, body string) (json.RawMessage, *rpcError) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Result json.RawMessage `json:"result"`
		Error  *rpcError       `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Result, out.Error
}

// structLogResult is the geth-style step-list output shape.
type structLogResult struct {
	Gas        string `json:"gas"`
	Failed     bool   `json:"failed"`
	Truncated  bool   `json:"truncated"`
	Fault      string `json:"fault"`
	Error      string `json:"error"`
	Reason     string `json:"revertReason"`
	StructLogs []struct {
		PC        *uint64 `json:"pc"`
		Op        string  `json:"op"`
		Gas       *uint64 `json:"gas"`
		Depth     *int    `json:"depth"`
		StackSize *int    `json:"stackSize"`
	} `json:"structLogs"`
}

// TestDebugTraceCallStructLogShape pins the wire field names of the
// step list: pc, op, gas, depth (geth's names) plus stackSize.
func TestDebugTraceCallStructLogShape(t *testing.T) {
	client, accs, srv := rig(t)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	input, _ := art.ABI.Pack("increment")
	raw, rpcErr := rpcCall(t, srv.URL,
		`{"jsonrpc":"2.0","id":1,"method":"debug_traceCall","params":[{"from":"`+
			accs[0].Address.Hex()+`","to":"`+bound.Address.Hex()+`","data":"`+hexEncode(input)+`"}]}`)
	if rpcErr != nil {
		t.Fatalf("error: %+v", rpcErr)
	}
	var res structLogResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Failed || len(res.StructLogs) == 0 {
		t.Fatalf("result = %+v", res)
	}
	first := res.StructLogs[0]
	if first.PC == nil || first.Gas == nil || first.Depth == nil || first.StackSize == nil || first.Op == "" {
		t.Fatalf("structLogs[0] missing fields: %+v", first)
	}
	sawSSTORE := false
	for _, l := range res.StructLogs {
		if l.Op == "SSTORE" {
			sawSSTORE = true
		}
	}
	if !sawSSTORE {
		t.Fatal("no SSTORE step in increment trace")
	}
}

// TestDebugTraceCallTruncation runs an infinite loop with enough gas to
// exceed DefaultMaxSteps: the logger stops recording but the call keeps
// executing, and the reply says so.
func TestDebugTraceCallTruncation(t *testing.T) {
	client, accs, srv := rig(t)
	// Runtime 5b600056 = JUMPDEST; PUSH1 0; JUMP — loops forever.
	// Init: PUSH4 <runtime>; PUSH1 0; MSTORE; PUSH1 4; PUSH1 28; RETURN.
	init := []byte{0x63, 0x5b, 0x60, 0x00, 0x56, 0x60, 0x00, 0x52, 0x60, 0x04, 0x60, 0x1c, 0xf3}
	loop, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address, GasLimit: 100_000}, &abi.ABI{}, init)
	if err != nil {
		t.Fatal(err)
	}
	// Each iteration is 3 steps / ~12 gas: 2M gas drives well past the
	// 100k recorded-step cap before running out.
	raw, rpcErr := rpcCall(t, srv.URL,
		`{"jsonrpc":"2.0","id":1,"method":"debug_traceCall","params":[{"from":"`+
			accs[0].Address.Hex()+`","to":"`+loop.Address.Hex()+`","gas":"0x1e8480"}]}`)
	if rpcErr != nil {
		t.Fatalf("error: %+v", rpcErr)
	}
	var res structLogResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatalf("truncated not set (steps=%d)", len(res.StructLogs))
	}
	if !res.Failed || res.Fault == "" {
		t.Fatalf("out-of-gas loop: failed=%v fault=%q", res.Failed, res.Fault)
	}
	if len(res.StructLogs) != 100_000 {
		t.Fatalf("recorded %d steps, want the 100000 cap", len(res.StructLogs))
	}
}

// TestDebugTraceCallFault: a require(false) revert surfaces with
// failed=true and the decoded reason; reverts are deliberate exits, so
// the fault field (hard aborts like out-of-gas) stays empty.
func TestDebugTraceCallFault(t *testing.T) {
	client, accs, srv := rig(t)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	input, _ := art.ABI.Pack("guarded")
	raw, rpcErr := rpcCall(t, srv.URL,
		`{"jsonrpc":"2.0","id":1,"method":"debug_traceCall","params":[{"from":"`+
			accs[0].Address.Hex()+`","to":"`+bound.Address.Hex()+`","data":"`+hexEncode(input)+`"}]}`)
	if rpcErr != nil {
		t.Fatalf("error: %+v", rpcErr)
	}
	var res structLogResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Reason != "nope" || !strings.Contains(res.Error, "reverted") {
		t.Fatalf("revert not captured: failed=%v error=%q reason=%q", res.Failed, res.Error, res.Reason)
	}
	if res.Fault != "" {
		t.Fatalf("revert misreported as hard fault: %q", res.Fault)
	}
}

// TestDebugTraceTransactionOverHTTP replays a mined transaction in both
// output modes and checks replay fidelity against the stored receipt.
func TestDebugTraceTransactionOverHTTP(t *testing.T) {
	client, accs, srv := rig(t)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	rcpt, err := bound.Transact(web3.TxOpts{From: accs[0].Address}, "increment")
	if err != nil {
		t.Fatal(err)
	}

	// Default tracer: the structLog object, gas matching the receipt.
	raw, rpcErr := rpcCall(t, srv.URL,
		`{"jsonrpc":"2.0","id":1,"method":"debug_traceTransaction","params":["`+rcpt.TxHash.Hex()+`"]}`)
	if rpcErr != nil {
		t.Fatalf("error: %+v", rpcErr)
	}
	var res structLogResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Failed || len(res.StructLogs) == 0 {
		t.Fatalf("replay = %+v", res)
	}

	// callTracer: the frame tree rooted at the counter contract.
	raw, rpcErr = rpcCall(t, srv.URL,
		`{"jsonrpc":"2.0","id":2,"method":"debug_traceTransaction","params":["`+
			rcpt.TxHash.Hex()+`", {"tracer":"callTracer"}]}`)
	if rpcErr != nil {
		t.Fatalf("callTracer error: %+v", rpcErr)
	}
	var frame struct {
		Type    string `json:"type"`
		From    string `json:"from"`
		To      string `json:"to"`
		GasUsed string `json:"gasUsed"`
	}
	if err := json.Unmarshal(raw, &frame); err != nil {
		t.Fatal(err)
	}
	if frame.Type != "CALL" || !strings.EqualFold(frame.To, bound.Address.Hex()) ||
		!strings.EqualFold(frame.From, accs[0].Address.Hex()) {
		t.Fatalf("frame = %+v", frame)
	}

	// Unknown hash: invalid-params error, not a server fault.
	_, rpcErr = rpcCall(t, srv.URL,
		`{"jsonrpc":"2.0","id":3,"method":"debug_traceTransaction","params":["0x`+
			strings.Repeat("ab", 32)+`"]}`)
	if rpcErr == nil || rpcErr.Code != codeInvalidParams {
		t.Fatalf("unknown hash: %+v", rpcErr)
	}

	// Unknown tracer name: rejected up front.
	_, rpcErr = rpcCall(t, srv.URL,
		`{"jsonrpc":"2.0","id":4,"method":"debug_traceTransaction","params":["`+
			rcpt.TxHash.Hex()+`", {"tracer":"evilTracer"}]}`)
	if rpcErr == nil || rpcErr.Code != codeInvalidParams {
		t.Fatalf("unknown tracer: %+v", rpcErr)
	}
}

// TestDebugTraceBlockByNumber traces every transaction of a block.
func TestDebugTraceBlockByNumber(t *testing.T) {
	client, accs, srv := rig(t)
	art, err := minisol.CompileContract(rpcCounterSrc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	rcpt, err := bound.Transact(web3.TxOpts{From: accs[0].Address}, "increment")
	if err != nil {
		t.Fatal(err)
	}
	raw, rpcErr := rpcCall(t, srv.URL,
		`{"jsonrpc":"2.0","id":1,"method":"debug_traceBlockByNumber","params":["0x2", {"tracer":"callTracer"}]}`)
	if rpcErr != nil {
		t.Fatalf("error: %+v", rpcErr)
	}
	var list []struct {
		TxHash string          `json:"txHash"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || !strings.EqualFold(list[0].TxHash, rcpt.TxHash.Hex()) {
		t.Fatalf("list = %+v", list)
	}
	if len(list[0].Result) == 0 || string(list[0].Result) == "null" {
		t.Fatal("empty per-tx result")
	}
}

// TestRPCErrorRequestID: JSON-RPC error replies echo the propagated
// X-Request-Id so failures join the server log and trace.
func TestRPCErrorRequestID(t *testing.T) {
	_, _, srv := rig(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL, bytes.NewBufferString(
		`{"jsonrpc":"2.0","id":1,"method":"debug_traceTransaction","params":["0x`+
			strings.Repeat("cd", 32)+`"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "rpc-rid-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Error *rpcError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == nil || out.Error.RequestID != "rpc-rid-7" {
		t.Fatalf("error = %+v", out.Error)
	}
}
