package hexutil

import (
	"bytes"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		dec, err := Decode(Encode(b))
		return err == nil && bytes.Equal(dec, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Encode(nil) != "0x" {
		t.Fatal("Encode(nil)")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]error{
		"":     ErrEmpty,
		"1234": ErrMissingPrefix,
		"0x1":  ErrOddLength,
		"0xzz": ErrSyntax,
	}
	for in, want := range cases {
		if _, err := Decode(in); !errors.Is(err, want) {
			t.Errorf("Decode(%q) = %v, want %v", in, err, want)
		}
	}
	// 0X prefix accepted.
	if b, err := Decode("0Xff"); err != nil || b[0] != 0xff {
		t.Error("uppercase prefix rejected")
	}
}

func TestMustDecodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustDecode("garbage")
}

func TestUint64Quantities(t *testing.T) {
	f := func(v uint64) bool {
		got, err := DecodeUint64(EncodeUint64(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if EncodeUint64(0) != "0x0" {
		t.Fatal("zero quantity")
	}
	// Leading zeros rejected per the JSON-RPC spec.
	if _, err := DecodeUint64("0x01"); !errors.Is(err, ErrLeadingZero) {
		t.Fatal("leading zero accepted")
	}
	if _, err := DecodeUint64("0x"); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty quantity accepted")
	}
	if _, err := DecodeUint64("0x10000000000000000"); !errors.Is(err, ErrRange) {
		t.Fatal("overflow accepted")
	}
}

func TestBigQuantities(t *testing.T) {
	v, _ := new(big.Int).SetString("123456789012345678901234567890", 10)
	got, err := DecodeBig(EncodeBig(v))
	if err != nil || got.Cmp(v) != 0 {
		t.Fatalf("big round trip: %v %v", got, err)
	}
	if EncodeBig(nil) != "0x0" {
		t.Fatal("nil big")
	}
	if EncodeBig(big.NewInt(-255)) != "-0xff" {
		t.Fatal("negative big")
	}
}

func TestPadding(t *testing.T) {
	if got := LeftPad([]byte{1, 2}, 4); !bytes.Equal(got, []byte{0, 0, 1, 2}) {
		t.Fatalf("LeftPad = %v", got)
	}
	if got := LeftPad([]byte{1, 2, 3, 4, 5}, 4); !bytes.Equal(got, []byte{2, 3, 4, 5}) {
		t.Fatalf("LeftPad truncate = %v", got)
	}
	if got := RightPad([]byte{1, 2}, 4); !bytes.Equal(got, []byte{1, 2, 0, 0}) {
		t.Fatalf("RightPad = %v", got)
	}
	// Original not aliased.
	src := []byte{9}
	out := LeftPad(src, 2)
	out[1] = 7
	if src[0] != 9 {
		t.Fatal("LeftPad aliases input")
	}
}

func TestTrimLeftZeroes(t *testing.T) {
	if got := TrimLeftZeroes([]byte{0, 0, 5, 0}); !bytes.Equal(got, []byte{5, 0}) {
		t.Fatalf("got %v", got)
	}
	if got := TrimLeftZeroes([]byte{0, 0}); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestIsHex(t *testing.T) {
	if !IsHex("deadBEEF") || IsHex("abc") || IsHex("zz") {
		t.Fatal("IsHex")
	}
}
