// Package hexutil implements 0x-prefixed hexadecimal encoding used
// throughout the Ethereum wire formats (JSON-RPC quantities and
// unformatted data).
//
// Quantities ("0x41", "0x0") are encoded without leading zero digits;
// unformatted data ("0x0f00") is encoded as two hex digits per byte.
// These are the conventions of the Ethereum JSON-RPC specification.
package hexutil

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"strings"
)

// Errors returned by the decoding functions.
var (
	ErrEmpty         = errors.New("hexutil: empty input")
	ErrMissingPrefix = errors.New("hexutil: missing 0x prefix")
	ErrOddLength     = errors.New("hexutil: odd length hex string")
	ErrLeadingZero   = errors.New("hexutil: quantity has leading zero digits")
	ErrSyntax        = errors.New("hexutil: invalid hex digit")
	ErrRange         = errors.New("hexutil: value out of range")
)

// Encode returns the 0x-prefixed hex encoding of b. Encode(nil) == "0x".
func Encode(b []byte) string {
	return "0x" + hex.EncodeToString(b)
}

// Decode parses a 0x-prefixed hex string into bytes.
func Decode(s string) ([]byte, error) {
	if s == "" {
		return nil, ErrEmpty
	}
	if !has0xPrefix(s) {
		return nil, ErrMissingPrefix
	}
	body := s[2:]
	if len(body)%2 != 0 {
		return nil, ErrOddLength
	}
	b, err := hex.DecodeString(body)
	if err != nil {
		return nil, ErrSyntax
	}
	return b, nil
}

// MustDecode is Decode but panics on malformed input. Use only for
// compile-time constants.
func MustDecode(s string) []byte {
	b, err := Decode(s)
	if err != nil {
		panic(fmt.Sprintf("hexutil: MustDecode(%q): %v", s, err))
	}
	return b
}

// EncodeUint64 encodes v as a hex quantity ("0x0" for zero).
func EncodeUint64(v uint64) string {
	return "0x" + strconv.FormatUint(v, 16)
}

// DecodeUint64 parses a hex quantity into a uint64.
func DecodeUint64(s string) (uint64, error) {
	raw, err := quantityBody(s)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(raw, 16, 64)
	if err != nil {
		if errors.Is(err, strconv.ErrRange) {
			return 0, ErrRange
		}
		return 0, ErrSyntax
	}
	return v, nil
}

// EncodeBig encodes v as a hex quantity. Negative values are rejected by
// DecodeBig, but EncodeBig tolerates them with a sign for debugging.
func EncodeBig(v *big.Int) string {
	if v == nil {
		return "0x0"
	}
	if v.Sign() < 0 {
		return "-0x" + new(big.Int).Neg(v).Text(16)
	}
	return "0x" + v.Text(16)
}

// DecodeBig parses a hex quantity into a big integer.
func DecodeBig(s string) (*big.Int, error) {
	raw, err := quantityBody(s)
	if err != nil {
		return nil, err
	}
	v, ok := new(big.Int).SetString(raw, 16)
	if !ok {
		return nil, ErrSyntax
	}
	return v, nil
}

func quantityBody(s string) (string, error) {
	if s == "" {
		return "", ErrEmpty
	}
	if !has0xPrefix(s) {
		return "", ErrMissingPrefix
	}
	body := s[2:]
	if body == "" {
		return "", ErrEmpty
	}
	if len(body) > 1 && body[0] == '0' {
		return "", ErrLeadingZero
	}
	return body, nil
}

func has0xPrefix(s string) bool {
	return len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')
}

// TrimLeftZeroes returns b without leading zero bytes. The result aliases b.
func TrimLeftZeroes(b []byte) []byte {
	i := 0
	for i < len(b) && b[i] == 0 {
		i++
	}
	return b[i:]
}

// LeftPad returns b left-padded with zeroes to length n. If b is longer
// than n the rightmost n bytes are returned (a copy in either case).
func LeftPad(b []byte, n int) []byte {
	out := make([]byte, n)
	if len(b) > n {
		b = b[len(b)-n:]
	}
	copy(out[n-len(b):], b)
	return out
}

// RightPad returns b right-padded with zeroes to length n.
func RightPad(b []byte, n int) []byte {
	out := make([]byte, n)
	copy(out, b)
	return out
}

// IsHex reports whether s (without prefix) consists only of hex digits
// and has even length.
func IsHex(s string) bool {
	if len(s)%2 != 0 {
		return false
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdefABCDEF", c) {
			return false
		}
	}
	return true
}
