// Package contracts holds the minisol sources of the legal smart
// contracts from the paper's case study — the DataStorage contract
// (Fig. 3), the BaseRental versioned contract (Fig. 5), the upgraded
// RentalAgreementV2 (Fig. 6) — plus an escrow agreement used by the
// examples and a hand-assembled delegatecall proxy that serves as the
// "mature OSS upgradeable-contract" baseline in the experiments.
package contracts

import (
	"fmt"
	"sync"

	"legalchain/internal/minisol"
)

// DataStorageSource is the data/logic-separation contract of Fig. 3,
// extended with owner access control and on-chain key enumeration so a
// new contract version can discover and import every key of its
// predecessor without off-chain records. It also keeps an on-chain
// payment ledger: an authorized notary contract (see notary.go) records
// every rent payment it relays, so the evidence of payment lives in the
// data tier and survives contract upgrades.
const DataStorageSource = `
pragma solidity ^0.5.0;

contract DataStorage {
	address public owner;
	mapping (address => mapping(string => string)) public keyValuePairs;
	mapping (address => mapping(string => bool)) public hasKey;
	mapping (address => uint) public keyCount;
	mapping (address => mapping(uint => string)) public keyAt;

	/* Payment ledger, written only by authorized notary contracts. */
	mapping (address => bool) public authorized;
	mapping (address => uint) public paymentCount;
	mapping (address => mapping(uint => uint)) public paymentAmount;

	/* In-place migration (FlexiContracts-style): a new version adopts its
	   predecessor's namespace through one pointer write instead of
	   re-importing every pair. Appended after the original declarations so
	   existing storage layouts are undisturbed. */
	mapping (address => address) public aliasOf;

	event valueSet(address indexed contractAddr, string key, string value);
	event paymentRecorded(address indexed contractAddr, uint index, uint amount);
	event namespaceAdopted(address indexed newAddr, address indexed oldAddr);

	constructor() public {
		owner = msg.sender;
	}

	function setValue(address contractAddr, string memory key, string memory value) public {
		require(msg.sender == owner, "only the manager may write");
		if (!hasKey[contractAddr][key]) {
			hasKey[contractAddr][key] = true;
			keyAt[contractAddr][keyCount[contractAddr]] = key;
			keyCount[contractAddr] += 1;
		}
		keyValuePairs[contractAddr][key] = value;
		emit valueSet(contractAddr, key, value);
	}

	function getValue(address contractAddr, string memory key) public view returns (string memory) {
		return keyValuePairs[contractAddr][key];
	}

	/* One-transaction data migration: every key of oldAddr becomes
	   visible under newAddr (the manager resolves the alias chain when
	   reading; writes to newAddr stay in its own namespace and shadow the
	   adopted values). Replaces the N-transaction setValue re-import. */
	function adoptNamespace(address newAddr, address oldAddr) public {
		require(msg.sender == owner, "only the manager may link namespaces");
		require(newAddr != oldAddr, "namespace cannot adopt itself");
		aliasOf[newAddr] = oldAddr;
		emit namespaceAdopted(newAddr, oldAddr);
	}

	function authorize(address notary) public {
		require(msg.sender == owner, "only the manager authorizes");
		authorized[notary] = true;
	}

	function recordPayment(address contractAddr, uint amount) public {
		require(authorized[msg.sender], "caller is not an authorized notary");
		paymentAmount[contractAddr][paymentCount[contractAddr]] = amount;
		paymentCount[contractAddr] += 1;
		emit paymentRecorded(contractAddr, paymentCount[contractAddr], amount);
	}
}
`

// VersionedSourcePrelude is shared by every legal contract: the
// doubly-linked-list node of Fig. 2. Each deployed version stores the
// addresses of its neighbours; the contract manager sets the pointers
// when a new version is deployed.
const baseRentalSource = `
pragma solidity ^0.5.0;

contract BaseRental {
	/* This declares a new complex type which will hold the paid rents */
	struct PaidRent {
		uint Monthid; /* The paid rent id */
		uint value;   /* The amount of rent that is paid */
	}
	PaidRent[] public paidrents;

	uint public createdTimestamp;
	uint public rent;
	uint public deposit;
	/* Combination of zip code and house number */
	string public house;
	address payable public landlord;
	address payable public tenant;
	uint public contractTime; /* months */
	uint public monthCounter;

	enum State {Created, Started, Terminated}
	State public state;

	/* Address of the next contract linked */
	address public next;
	/* Address of the previous contract linked */
	address public previous;
	/* Payment notary allowed to relay the tenant's rent (see notary.go);
	   appended after the original declarations so existing storage
	   layouts are undisturbed. */
	address public paymentProxy;

	constructor(uint _rent, uint _deposit, uint _contractTime, string memory _house) public payable {
		rent = _rent;
		deposit = _deposit;
		contractTime = _contractTime;
		house = _house;
		landlord = msg.sender;
		createdTimestamp = block.timestamp;
		state = State.Created;
	}

	/* Events for DApps to listen to */
	event agreementConfirmed(address indexed tenant);
	event paidRent(address indexed tenant, uint month, uint amount);
	event contractTerminated(address indexed by, uint refunded);
	event versionLinked(address indexed neighbour, uint direction);

	/* Confirm the lease agreement as tenant, paying the deposit. */
	function confirmAgreement() public payable {
		require(state == State.Created, "agreement is not open");
		require(msg.sender != landlord, "landlord cannot be the tenant");
		require(msg.value == deposit, "deposit must match the agreement");
		tenant = msg.sender;
		state = State.Started;
		emit agreementConfirmed(msg.sender);
	}

	function payRent() public payable {
		require(state == State.Started, "contract is not active");
		require(msg.sender == tenant || msg.sender == paymentProxy, "only the tenant pays rent");
		require(msg.value == rent, "rent amount must match");
		monthCounter += 1;
		paidrents.push(PaidRent(monthCounter, msg.value));
		landlord.transfer(msg.value);
		emit paidRent(tenant, monthCounter, msg.value);
	}

	/* Let the landlord designate the payment notary that relays rent on
	   the tenant's behalf while recording evidence in the data tier. */
	function setPaymentProxy(address _proxy) public {
		require(msg.sender == landlord, "only the landlord sets the proxy");
		paymentProxy = _proxy;
	}

	/* Terminate: after the agreed period the tenant recovers the full
	   deposit; leaving early costs half the deposit as the penalty. */
	function terminateContract() public {
		require(state == State.Started, "contract is not active");
		require(msg.sender == landlord || msg.sender == tenant, "not a party");
		uint refund = deposit;
		if (msg.sender == tenant && monthCounter < contractTime) {
			refund = deposit / 2;
			landlord.transfer(deposit - refund);
		}
		state = State.Terminated;
		tenant.transfer(refund);
		emit contractTerminated(msg.sender, refund);
	}

	function getNext() public view returns (address addr) { return next; }
	function getPrev() public view returns (address addr) { return previous; }
	function setNext(address _next) public {
		require(msg.sender == landlord, "only the landlord links versions");
		next = _next;
		emit versionLinked(_next, 1);
	}
	function setPrev(address _previous) public {
		require(msg.sender == landlord, "only the landlord links versions");
		previous = _previous;
		emit versionLinked(_previous, 0);
	}
}
`

// rentalV2Source is the modified agreement of Fig. 6: a maintenance fee
// clause is added, rent is discounted, and early termination uses an
// explicit fine instead of half the deposit.
const rentalV2Source = baseRentalSource + `
contract RentalAgreementV2 is BaseRental {
	uint public maintenanceFee;
	uint public discount;
	uint public fine;
	uint public maintenancePaid;

	event paidMaintenance(address indexed tenant, uint amount);

	constructor(uint _rent, uint _deposit, uint _contractTime, string memory _house,
			uint _maintenanceFee, uint _discount, uint _fine) public payable {
		rent = _rent;
		deposit = _deposit;
		contractTime = _contractTime;
		house = _house;
		maintenanceFee = _maintenanceFee;
		discount = _discount;
		fine = _fine;
		landlord = msg.sender;
		createdTimestamp = block.timestamp;
		state = State.Created;
	}

	/* Updated pay-rent logic: the discount clause applies. */
	function payRent() public payable {
		require(state == State.Started, "contract is not active");
		require(msg.sender == tenant || msg.sender == paymentProxy, "only the tenant pays rent");
		require(msg.value == rent - discount, "discounted rent must match");
		monthCounter += 1;
		paidrents.push(PaidRent(monthCounter, msg.value));
		landlord.transfer(msg.value);
		emit paidRent(tenant, monthCounter, msg.value);
	}

	/* A new function to do something advanced: the maintenance clause. */
	function payMaintenanceFee() public payable {
		require(state == State.Started, "contract is not active");
		require(msg.sender == tenant, "only the tenant pays maintenance");
		require(msg.value == maintenanceFee, "maintenance fee must match");
		maintenancePaid += msg.value;
		landlord.transfer(msg.value);
		emit paidMaintenance(msg.sender, msg.value);
	}

	/* Updated termination logic: explicit fine clause. */
	function terminateContract() public {
		require(state == State.Started, "contract is not active");
		require(msg.sender == landlord || msg.sender == tenant, "not a party");
		uint refund = deposit;
		if (msg.sender == tenant && monthCounter < contractTime) {
			require(deposit >= fine, "fine exceeds deposit");
			refund = deposit - fine;
			landlord.transfer(fine);
		}
		state = State.Terminated;
		tenant.transfer(refund);
		emit contractTerminated(msg.sender, refund);
	}
}
`

// escrowSource is a second legal-agreement domain (freelance milestone
// escrow) showing the paper's roadmap generalizes beyond rentals. It
// reuses the same version-node pointers.
const escrowSource = `
pragma solidity ^0.5.0;

contract FreelanceEscrow {
	address payable public client;
	address payable public freelancer;
	uint public milestoneAmount;
	uint public milestonesTotal;
	uint public milestonesPaid;
	string public scope;

	enum State {Created, Funded, Completed, Cancelled}
	State public state;

	address public next;
	address public previous;

	event funded(address indexed client, uint amount);
	event milestoneApproved(uint indexed index, uint amount);
	event cancelled(address indexed by, uint refunded);

	constructor(address payable _freelancer, uint _milestoneAmount, uint _milestones, string memory _scope) public {
		client = msg.sender;
		freelancer = _freelancer;
		milestoneAmount = _milestoneAmount;
		milestonesTotal = _milestones;
		scope = _scope;
		state = State.Created;
	}

	function fund() public payable {
		require(msg.sender == client, "only the client funds");
		require(state == State.Created, "already funded");
		require(msg.value == milestoneAmount * milestonesTotal, "full escrow required");
		state = State.Funded;
		emit funded(msg.sender, msg.value);
	}

	function approveMilestone() public {
		require(msg.sender == client, "only the client approves");
		require(state == State.Funded, "escrow not active");
		milestonesPaid += 1;
		freelancer.transfer(milestoneAmount);
		emit milestoneApproved(milestonesPaid, milestoneAmount);
		if (milestonesPaid == milestonesTotal) {
			state = State.Completed;
		}
	}

	function cancel() public {
		require(msg.sender == client || msg.sender == freelancer, "not a party");
		require(state == State.Funded, "escrow not active");
		uint remaining = milestoneAmount * (milestonesTotal - milestonesPaid);
		state = State.Cancelled;
		client.transfer(remaining);
		emit cancelled(msg.sender, remaining);
	}

	function getNext() public view returns (address addr) { return next; }
	function getPrev() public view returns (address addr) { return previous; }
	function setNext(address _next) public { require(msg.sender == client, "only the client links"); next = _next; }
	function setPrev(address _previous) public { require(msg.sender == client, "only the client links"); previous = _previous; }
}
`

var (
	compileOnce sync.Once
	compiled    map[string]*minisol.Artifact
	compileErr  error
)

func compileAll() {
	compiled = map[string]*minisol.Artifact{}
	for _, src := range []string{DataStorageSource, rentalV2Source, escrowSource} {
		arts, err := minisol.Compile(src)
		if err != nil {
			compileErr = fmt.Errorf("contracts: %w", err)
			return
		}
		for _, a := range arts {
			compiled[a.Name] = a
		}
	}
}

// Artifact returns a compiled built-in contract by name: "DataStorage",
// "BaseRental", "RentalAgreementV2" or "FreelanceEscrow".
func Artifact(name string) (*minisol.Artifact, error) {
	compileOnce.Do(compileAll)
	if compileErr != nil {
		return nil, compileErr
	}
	a, ok := compiled[name]
	if !ok {
		return nil, fmt.Errorf("contracts: unknown contract %q", name)
	}
	return a, nil
}

// MustArtifact is Artifact for known-good names.
func MustArtifact(name string) *minisol.Artifact {
	a, err := Artifact(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Sources returns the raw minisol sources keyed by contract name, for
// tooling (legalctl, the upload UI).
func Sources() map[string]string {
	return map[string]string{
		"DataStorage":       DataStorageSource,
		"BaseRental":        baseRentalSource,
		"RentalAgreementV2": rentalV2Source,
		"FreelanceEscrow":   escrowSource,
	}
}
