package contracts

import (
	"context"
	"strings"
	"testing"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/evm"
	"legalchain/internal/wallet"
	"legalchain/internal/web3"
)

// notaryRig deploys DataStorage (owned by accs[0], the manager), a
// BaseRental (landlord accs[1], tenant accs[2]) and a notary wired to
// both: authorized on the DataStorage and set as the rental's payment
// proxy.
func notaryRig(t *testing.T) (bc *chain.Blockchain, client *web3.Client, accs []wallet.Account, ds, rental, notary *web3.BoundContract) {
	t.Helper()
	accs = wallet.DevAccounts("notary test", 4)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(1000))
	bc = chain.New(g)
	ks := wallet.NewKeystore()
	for _, a := range accs {
		ks.Import(a.Key)
	}
	client, err := web3.NewClient(web3.NewLocalBackend(bc), ks)
	if err != nil {
		t.Fatal(err)
	}
	manager, landlord, tenant := accs[0], accs[1], accs[2]

	dsArt := MustArtifact("DataStorage")
	ds, _, err = client.Deploy(web3.TxOpts{From: manager.Address}, dsArt.ABI, dsArt.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	rArt := MustArtifact("BaseRental")
	rental, _, err = client.Deploy(web3.TxOpts{From: landlord.Address}, rArt.ABI, rArt.Bytecode,
		ethtypes.Ether(1), ethtypes.Ether(2), uint64(12), "10115-Berlin-42")
	if err != nil {
		t.Fatal(err)
	}
	notary, _, err = client.Deploy(web3.TxOpts{From: manager.Address, GasLimit: 500_000},
		NotaryABI(), PackNotaryDeploy(ds.Address))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Transact(web3.TxOpts{From: manager.Address}, "authorize", notary.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := rental.Transact(web3.TxOpts{From: landlord.Address}, "setPaymentProxy", notary.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(2)}, "confirmAgreement"); err != nil {
		t.Fatal(err)
	}
	return bc, client, accs, ds, rental, notary
}

// TestNotaryPayAndRecord drives a rent payment through the notary and
// checks both sides of the evidence loop: the rental's own history and
// the DataStorage payment ledger, written in the same transaction.
func TestNotaryPayAndRecord(t *testing.T) {
	_, client, accs, ds, rental, notary := notaryRig(t)
	landlord, tenant := accs[1], accs[2]

	before, _ := client.Backend().GetBalance(landlord.Address)
	rcpt, err := notary.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1), GasLimit: 500_000},
		"payAndRecord", rental.Address)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := client.Backend().GetBalance(landlord.Address)
	if after.Sub(before) != ethtypes.Ether(1) {
		t.Fatalf("landlord received %s", ethtypes.FormatEther(after.Sub(before)))
	}

	// Rental-side history.
	n, _ := rental.CallUint(tenant.Address, "monthCounter")
	if n.Uint64() != 1 {
		t.Fatalf("monthCounter = %s", n)
	}
	// The paidRent event names the tenant, not the notary.
	events, err := rental.FilterEvents("paidRent", 0)
	if err != nil || len(events) != 1 {
		t.Fatalf("paidRent events = %v, %v", events, err)
	}
	if got := events[0].Args["tenant"].(ethtypes.Address); got != tenant.Address {
		t.Fatalf("paidRent tenant = %s", got.Hex())
	}

	// Data-tier ledger.
	cnt, _ := ds.CallUint(tenant.Address, "paymentCount", rental.Address)
	if cnt.Uint64() != 1 {
		t.Fatalf("paymentCount = %s", cnt)
	}
	amt, _ := ds.CallUint(tenant.Address, "paymentAmount", rental.Address, uint64(0))
	if amt != ethtypes.Ether(1) {
		t.Fatalf("paymentAmount = %s", ethtypes.FormatEther(amt))
	}
	recorded, err := ds.FilterEvents("paymentRecorded", 0)
	if err != nil || len(recorded) != 1 {
		t.Fatalf("paymentRecorded events = %v, %v", recorded, err)
	}

	// Both log entries live in the one payment transaction.
	if len(rcpt.Logs) != 2 {
		t.Fatalf("payment tx carries %d logs, want 2", len(rcpt.Logs))
	}

	// The direct tenant path still works alongside the proxy.
	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1)}, "payRent"); err != nil {
		t.Fatal(err)
	}
}

// TestNotaryBubblesRevert checks that a nested payRent failure
// surfaces its original reason through the notary.
func TestNotaryBubblesRevert(t *testing.T) {
	bc, _, accs, _, rental, notary := notaryRig(t)
	tenant := accs[2]

	// Wrong amount: payRent reverts inside the notary.
	_, err := notary.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(3), GasLimit: 500_000},
		"payAndRecord", rental.Address)
	if err == nil {
		t.Fatal("wrong rent accepted")
	}
	if !strings.Contains(err.Error(), "rent amount must match") {
		t.Fatalf("revert reason lost: %v", err)
	}
	// Nothing was recorded anywhere.
	if n, _ := rental.CallUint(tenant.Address, "monthCounter"); n.Uint64() != 0 {
		t.Fatal("failed payment counted")
	}
	_ = bc
}

// TestNotaryRequiresAuthorization checks both access-control edges: an
// unauthorized notary cannot write the ledger, and the rental rejects a
// notary that was never set as its payment proxy.
func TestNotaryRequiresAuthorization(t *testing.T) {
	_, client, accs, ds, rental, _ := notaryRig(t)
	manager, tenant := accs[0], accs[2]

	// A rogue notary bound to the same DataStorage but never authorized:
	// recordPayment reverts, and the revert aborts the whole payment.
	rogue, _, err := client.Deploy(web3.TxOpts{From: manager.Address, GasLimit: 500_000},
		NotaryABI(), PackNotaryDeploy(ds.Address))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rogue.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1), GasLimit: 500_000},
		"payAndRecord", rental.Address)
	if err == nil {
		t.Fatal("unauthorized notary recorded a payment")
	}
	if n, _ := rental.CallUint(tenant.Address, "monthCounter"); n.Uint64() != 0 {
		t.Fatal("aborted payment still counted")
	}
	if cnt, _ := ds.CallUint(tenant.Address, "paymentCount", rental.Address); cnt.Uint64() != 0 {
		t.Fatal("unauthorized record persisted")
	}
}

// TestNotaryPaymentCallTracer replays the historical payment with the
// callTracer attached and checks the nested frame tree: notary -> rental
// (payRent, carrying the value) and notary -> DataStorage
// (recordPayment) inside one transaction.
func TestNotaryPaymentCallTracer(t *testing.T) {
	bc, _, accs, ds, rental, notary := notaryRig(t)
	tenant := accs[2]

	rcpt, err := notary.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1), GasLimit: 500_000},
		"payAndRecord", rental.Address)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := bc.TraceTransaction(context.Background(), rcpt.TxHash, func() evm.Tracer { return evm.NewCallTracer() })
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Tracer.(*evm.CallTracer).Result()
	if root == nil || root.To != notary.Address || root.From != tenant.Address {
		t.Fatalf("root frame = %+v", root)
	}
	payFrame := root.Find(rental.Address)
	if payFrame == nil {
		t.Fatal("payRent frame missing from trace")
	}
	if payFrame.Value == nil || *payFrame.Value != ethtypes.Ether(1) {
		t.Fatalf("payRent frame value = %+v", payFrame.Value)
	}
	recordFrame := root.Find(ds.Address)
	if recordFrame == nil {
		t.Fatal("recordPayment frame missing from trace")
	}
	if recordFrame.Value != nil {
		t.Fatal("recordPayment carries no value")
	}
	// recordPayment(address,uint256) calldata: selector + 2 words.
	if len(recordFrame.Input) != 68 {
		t.Fatalf("recordPayment input = %d bytes", len(recordFrame.Input))
	}
	// The rental's landlord.transfer shows up as a value-bearing subcall
	// of the payRent frame.
	if len(payFrame.Calls) == 0 {
		t.Fatal("landlord transfer frame missing")
	}
}
