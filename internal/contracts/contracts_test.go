package contracts

import (
	"fmt"
	"testing"

	"legalchain/internal/abi"
	"legalchain/internal/minisol"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
	"legalchain/internal/wallet"
	"legalchain/internal/web3"
)

func rig(t *testing.T) (*web3.Client, []wallet.Account) {
	t.Helper()
	accs := wallet.DevAccounts("contracts test", 4)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(1000))
	bc := chain.New(g)
	ks := wallet.NewKeystore()
	for _, a := range accs {
		ks.Import(a.Key)
	}
	client, err := web3.NewClient(web3.NewLocalBackend(bc), ks)
	if err != nil {
		t.Fatal(err)
	}
	return client, accs
}

func TestAllBuiltinsCompile(t *testing.T) {
	for _, name := range []string{"DataStorage", "BaseRental", "RentalAgreementV2", "FreelanceEscrow"} {
		art, err := Artifact(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(art.Bytecode) == 0 || len(art.Runtime) == 0 {
			t.Fatalf("%s: empty code", name)
		}
		if len(art.ABIJSON) == 0 {
			t.Fatalf("%s: no ABI", name)
		}
	}
	if _, err := Artifact("Nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Sources()) != 4 {
		t.Fatal("sources map")
	}
}

func TestBaseRentalFullLifecycle(t *testing.T) {
	client, accs := rig(t)
	landlord, tenant := accs[0], accs[1]
	art := MustArtifact("BaseRental")

	rental, _, err := client.Deploy(
		web3.TxOpts{From: landlord.Address},
		art.ABI, art.Bytecode,
		ethtypes.Ether(1), ethtypes.Ether(2), uint64(12), "10115-Berlin-42",
	)
	if err != nil {
		t.Fatal(err)
	}
	// Landlord cannot be the tenant.
	if _, err := rental.Transact(web3.TxOpts{From: landlord.Address, Value: ethtypes.Ether(2)}, "confirmAgreement"); err == nil {
		t.Fatal("landlord confirmed own agreement")
	}
	// Wrong deposit rejected.
	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1)}, "confirmAgreement"); err == nil {
		t.Fatal("wrong deposit accepted")
	}
	// Proper confirmation.
	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(2)}, "confirmAgreement"); err != nil {
		t.Fatal(err)
	}
	st, _ := rental.CallUint(tenant.Address, "state")
	if st.Uint64() != 1 { // Started
		t.Fatalf("state = %s", st)
	}
	// Rent flows to the landlord.
	before, _ := client.Backend().GetBalance(landlord.Address)
	for month := 1; month <= 3; month++ {
		if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1)}, "payRent"); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := client.Backend().GetBalance(landlord.Address)
	if after.Sub(before) != ethtypes.Ether(3) {
		t.Fatalf("landlord received %s", ethtypes.FormatEther(after.Sub(before)))
	}
	// Rent history recorded on chain.
	n, _ := rental.CallUint(tenant.Address, "monthCounter")
	if n.Uint64() != 3 {
		t.Fatal("monthCounter")
	}
	out, err := rental.Call(tenant.Address, "paidrents", uint64(1))
	if err != nil || out[0].(uint256.Int).Uint64() != 2 || out[1].(uint256.Int).Uint64() != ethtypes.Ether(1).Uint64() {
		t.Fatalf("paidrents(1) = %v, %v", out, err)
	}
	// Non-party cannot terminate.
	if _, err := rental.Transact(web3.TxOpts{From: accs[2].Address}, "terminateContract"); err == nil {
		t.Fatal("stranger terminated")
	}
	// Early tenant termination: half deposit back, half to landlord.
	tenantBefore, _ := client.Backend().GetBalance(tenant.Address)
	llBefore, _ := client.Backend().GetBalance(landlord.Address)
	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address}, "terminateContract"); err != nil {
		t.Fatal(err)
	}
	tenantAfter, _ := client.Backend().GetBalance(tenant.Address)
	llAfter, _ := client.Backend().GetBalance(landlord.Address)
	if llAfter.Sub(llBefore) != ethtypes.Ether(1) {
		t.Fatalf("landlord penalty share = %s", ethtypes.FormatEther(llAfter.Sub(llBefore)))
	}
	// Tenant got 1 ether back minus gas.
	gotBack := tenantAfter.Sub(tenantBefore)
	if gotBack.Gt(ethtypes.Ether(1)) || gotBack.Lt(ethtypes.Ether(1).Sub(ethtypes.Gwei(10_000_000))) {
		t.Fatalf("tenant refund = %s", ethtypes.FormatEther(gotBack))
	}
	st, _ = rental.CallUint(tenant.Address, "state")
	if st.Uint64() != 2 { // Terminated
		t.Fatal("not terminated")
	}
	// No further rent.
	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1)}, "payRent"); err == nil {
		t.Fatal("rent accepted after termination")
	}
}

func TestRentalV2ClausesDiffer(t *testing.T) {
	client, accs := rig(t)
	landlord, tenant := accs[0], accs[1]
	art := MustArtifact("RentalAgreementV2")
	// rent 2, deposit 4, 12 months, maintenance 1, discount 0.5e, fine 1
	half := uint256.FromBig(ethtypes.Ether(1).ToBig())
	half = half.Div(uint256.NewUint64(2))
	v2, _, err := client.Deploy(web3.TxOpts{From: landlord.Address}, art.ABI, art.Bytecode,
		ethtypes.Ether(2), ethtypes.Ether(4), uint64(12), "10115-Berlin-42",
		ethtypes.Ether(1), half, ethtypes.Ether(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(4)}, "confirmAgreement"); err != nil {
		t.Fatal(err)
	}
	// Old rent amount now fails (discount applies).
	if _, err := v2.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(2)}, "payRent"); err == nil {
		t.Fatal("undiscounted rent accepted")
	}
	discounted := ethtypes.Ether(2).Sub(half)
	if _, err := v2.Transact(web3.TxOpts{From: tenant.Address, Value: discounted}, "payRent"); err != nil {
		t.Fatal(err)
	}
	// The new clause exists and works.
	if _, err := v2.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1)}, "payMaintenanceFee"); err != nil {
		t.Fatal(err)
	}
	paid, _ := v2.CallUint(tenant.Address, "maintenancePaid")
	if paid != ethtypes.Ether(1) {
		t.Fatal("maintenance not recorded")
	}
	// Early termination uses the explicit fine (1 ether of the 4 deposit).
	llBefore, _ := client.Backend().GetBalance(landlord.Address)
	if _, err := v2.Transact(web3.TxOpts{From: tenant.Address}, "terminateContract"); err != nil {
		t.Fatal(err)
	}
	llAfter, _ := client.Backend().GetBalance(landlord.Address)
	if llAfter.Sub(llBefore) != ethtypes.Ether(1) {
		t.Fatalf("fine paid = %s", ethtypes.FormatEther(llAfter.Sub(llBefore)))
	}
}

func TestVersionPointers(t *testing.T) {
	client, accs := rig(t)
	landlord := accs[0]
	art := MustArtifact("BaseRental")
	v1, _, err := client.Deploy(web3.TxOpts{From: landlord.Address}, art.ABI, art.Bytecode,
		ethtypes.Ether(1), ethtypes.Ether(1), uint64(6), "house-1")
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := client.Deploy(web3.TxOpts{From: landlord.Address}, art.ABI, art.Bytecode,
		ethtypes.Ether(2), ethtypes.Ether(1), uint64(6), "house-1")
	if err != nil {
		t.Fatal(err)
	}
	// Only the landlord may link.
	if _, err := v1.Transact(web3.TxOpts{From: accs[1].Address}, "setNext", v2.Address); err == nil {
		t.Fatal("stranger linked versions")
	}
	if _, err := v1.Transact(web3.TxOpts{From: landlord.Address}, "setNext", v2.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Transact(web3.TxOpts{From: landlord.Address}, "setPrev", v1.Address); err != nil {
		t.Fatal(err)
	}
	next, err := v1.CallAddress(landlord.Address, "getNext")
	if err != nil || next != v2.Address {
		t.Fatalf("getNext = %s, %v", next, err)
	}
	prev, err := v2.CallAddress(landlord.Address, "getPrev")
	if err != nil || prev != v1.Address {
		t.Fatalf("getPrev = %s, %v", prev, err)
	}
}

func TestDataStorageContract(t *testing.T) {
	client, accs := rig(t)
	manager := accs[0]
	art := MustArtifact("DataStorage")
	ds, _, err := client.Deploy(web3.TxOpts{From: manager.Address}, art.ABI, art.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	target := ethtypes.HexToAddress("0x00000000000000000000000000000000000000f1")
	for k, v := range map[string]string{"rent": "1500", "house": "22B Baker Street"} {
		if _, err := ds.Transact(web3.TxOpts{From: manager.Address}, "setValue", target, k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite does not duplicate the key.
	if _, err := ds.Transact(web3.TxOpts{From: manager.Address}, "setValue", target, "rent", "1600"); err != nil {
		t.Fatal(err)
	}
	got, err := ds.CallString(manager.Address, "getValue", target, "rent")
	if err != nil || got != "1600" {
		t.Fatalf("getValue = %q, %v", got, err)
	}
	n, _ := ds.CallUint(manager.Address, "keyCount", target)
	if n.Uint64() != 2 {
		t.Fatalf("keyCount = %s", n)
	}
	// Key enumeration.
	keys := map[string]bool{}
	for i := uint64(0); i < 2; i++ {
		k, err := ds.CallString(manager.Address, "keyAt", target, i)
		if err != nil {
			t.Fatal(err)
		}
		keys[k] = true
	}
	if !keys["rent"] || !keys["house"] {
		t.Fatalf("keys = %v", keys)
	}
	// Access control.
	if _, err := ds.Transact(web3.TxOpts{From: accs[1].Address}, "setValue", target, "x", "y"); err == nil {
		t.Fatal("non-owner wrote")
	}
}

func TestEscrowLifecycle(t *testing.T) {
	client, accs := rig(t)
	clientAcc, freelancer := accs[0], accs[1]
	art := MustArtifact("FreelanceEscrow")
	esc, _, err := client.Deploy(web3.TxOpts{From: clientAcc.Address}, art.ABI, art.Bytecode,
		freelancer.Address, ethtypes.Ether(2), uint64(3), "design the landing page")
	if err != nil {
		t.Fatal(err)
	}
	// Underfunding fails.
	if _, err := esc.Transact(web3.TxOpts{From: clientAcc.Address, Value: ethtypes.Ether(5)}, "fund"); err == nil {
		t.Fatal("partial funding accepted")
	}
	if _, err := esc.Transact(web3.TxOpts{From: clientAcc.Address, Value: ethtypes.Ether(6)}, "fund"); err != nil {
		t.Fatal(err)
	}
	before, _ := client.Backend().GetBalance(freelancer.Address)
	esc.Transact(web3.TxOpts{From: clientAcc.Address}, "approveMilestone")
	esc.Transact(web3.TxOpts{From: clientAcc.Address}, "approveMilestone")
	after, _ := client.Backend().GetBalance(freelancer.Address)
	if after.Sub(before) != ethtypes.Ether(4) {
		t.Fatal("milestones not paid")
	}
	// Cancel refunds the remainder.
	cBefore, _ := client.Backend().GetBalance(clientAcc.Address)
	if _, err := esc.Transact(web3.TxOpts{From: freelancer.Address}, "cancel"); err != nil {
		t.Fatal(err)
	}
	cAfter, _ := client.Backend().GetBalance(clientAcc.Address)
	if cAfter.Sub(cBefore) != ethtypes.Ether(2) {
		t.Fatalf("refund = %s", ethtypes.FormatEther(cAfter.Sub(cBefore)))
	}
}

func TestProxyDelegatesAndUpgrades(t *testing.T) {
	client, accs := rig(t)
	admin := accs[0]
	// Two counter implementations with different behaviour.
	implAt := func(delta int) (*web3.BoundContract, *minisol.Artifact) {
		src := fmt.Sprintf(`
		contract Impl {
			uint public count;
			function increment() public { count += %d; }
		}`, delta)
		art, err := minisol.CompileContract(src, "Impl")
		if err != nil {
			t.Fatal(err)
		}
		bound, _, err := client.Deploy(web3.TxOpts{From: admin.Address}, art.ABI, art.Bytecode)
		if err != nil {
			t.Fatal(err)
		}
		return bound, art
	}
	impl1Bound, counterArt := implAt(1)
	impl2Bound, _ := implAt(100)
	impl1, impl2 := impl1Bound.Address, impl2Bound.Address

	// Deploy the proxy pointing at impl1 via its raw creation payload.
	emptyABI := &abi.ABI{Methods: map[string]abi.Method{}, Events: map[string]abi.Event{}}
	proxyBound, proxyRcpt, err := client.Deploy(
		web3.TxOpts{From: admin.Address, GasLimit: 500_000}, emptyABI, PackProxyDeploy(impl1))
	if err != nil {
		t.Fatal(err)
	}
	proxyAddr := proxyBound.Address
	_ = proxyRcpt
	proxied := client.Bind(proxyAddr, counterArt.ABI)
	if _, err := proxied.Transact(web3.TxOpts{From: accs[1].Address, GasLimit: 500_000}, "increment"); err != nil {
		t.Fatal(err)
	}
	v, err := proxied.CallUint(accs[1].Address, "count")
	if err != nil || v.Uint64() != 1 {
		t.Fatalf("count via proxy = %s, %v", v, err)
	}
	// Upgrade to impl2; storage (count) is preserved, logic changes.
	mgmt := client.Bind(proxyAddr, ProxyABI())
	if _, err := mgmt.Transact(web3.TxOpts{From: admin.Address, GasLimit: 100_000}, "upgradeTo", impl2); err != nil {
		t.Fatal(err)
	}
	if _, err := proxied.Transact(web3.TxOpts{From: accs[1].Address, GasLimit: 500_000}, "increment"); err != nil {
		t.Fatal(err)
	}
	v, _ = proxied.CallUint(accs[1].Address, "count")
	if v.Uint64() != 101 {
		t.Fatalf("count after upgrade = %s", v)
	}
	// Non-admin upgradeTo falls through to the implementation and reverts.
	if _, err := mgmt.Transact(web3.TxOpts{From: accs[1].Address, GasLimit: 100_000}, "upgradeTo", impl1); err == nil {
		t.Fatal("non-admin upgraded")
	}
	v, _ = proxied.CallUint(accs[1].Address, "count")
	if v.Uint64() != 101 {
		t.Fatal("unauthorized upgrade took effect")
	}
}
