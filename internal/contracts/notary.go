package contracts

import (
	"legalchain/internal/abi"
	"legalchain/internal/ethtypes"
	"legalchain/internal/evm"
)

// The payment notary closes the paper's evidence loop: the tenant pays
// rent through it, and in the same transaction it forwards the rent to
// the rental agreement (payRent) and writes a payment record into the
// DataStorage ledger (recordPayment). minisol can only express external
// calls as `.transfer` — no calldata — so, like the proxy, the notary is
// assembled by hand.
//
// Runtime interface:
//
//	payAndRecord(address rental) payable
//
// Storage slot 0 holds the DataStorage address, set by the constructor.
// Any failure in either nested call bubbles its revert payload up, so a
// wrong rent amount still surfaces as "rent amount must match".

// PayAndRecordSelector is the 4-byte selector of payAndRecord(address).
var PayAndRecordSelector = func() [4]byte {
	h := ethtypes.Keccak256([]byte("payAndRecord(address)"))
	var s [4]byte
	copy(s[:], h[:4])
	return s
}()

// notarySelectors resolves the nested-call selectors from the compiled
// artifacts' ABIs, so the notary can never drift from what the rental
// and DataStorage dispatch on.
func notarySelectors() (payRent, recordPayment [4]byte) {
	payRent = MustArtifact("BaseRental").ABI.Methods["payRent"].ID()
	recordPayment = MustArtifact("DataStorage").ABI.Methods["recordPayment"].ID()
	return
}

// storeSelector positions a 4-byte selector at the top of a 32-byte
// word (selector << 224) and stores it at memory offset 0.
func storeSelector(b *bb, sel [4]byte) {
	b.push(sel[:]).pushByte(0xE0).op(evm.SHL).pushByte(0).op(evm.MSTORE)
}

// bubbleRevert emits: if top-of-stack (call success) is zero, copy the
// returndata and revert with it. Falls through on success.
func bubbleRevert(b *bb, okLabel string) {
	b.pushLabel(okLabel).op(evm.JUMPI)
	b.op(evm.RETURNDATASIZE).pushByte(0).pushByte(0).op(evm.RETURNDATACOPY)
	b.op(evm.RETURNDATASIZE).pushByte(0).op(evm.REVERT)
	b.label(okLabel)
}

// NotaryRuntime returns the notary's runtime bytecode.
func NotaryRuntime() []byte {
	payRentSel, recordSel := notarySelectors()
	b := newBB()

	// Dispatch: anything but payAndRecord(address) reverts.
	b.pushByte(0).op(evm.CALLDATALOAD).pushByte(0xE0).op(evm.SHR)
	b.push(PayAndRecordSelector[:]).op(evm.EQ)
	b.pushLabel("pay").op(evm.JUMPI)
	b.pushByte(0).pushByte(0).op(evm.REVERT)

	b.label("pay")
	// rental.payRent{value: callvalue}():
	//   mstore(0, payRentSel << 224)
	//   call(gas, rental, callvalue, 0, 4, 0, 0)
	storeSelector(b, payRentSel)
	b.pushByte(0).pushByte(0)          // outSize, outOffset
	b.pushByte(4).pushByte(0)          // inSize, inOffset
	b.op(evm.CALLVALUE)                // value
	b.pushByte(4).op(evm.CALLDATALOAD) // rental address
	b.op(evm.GAS, evm.CALL)
	bubbleRevert(b, "paid")

	// dataStorage.recordPayment(rental, callvalue):
	//   mstore(0, recordSel << 224); mstore(4, rental); mstore(36, callvalue)
	//   call(gas, sload(0), 0, 0, 68, 0, 0)
	storeSelector(b, recordSel)
	b.pushByte(4).op(evm.CALLDATALOAD).pushByte(4).op(evm.MSTORE)
	b.op(evm.CALLVALUE).pushByte(36).op(evm.MSTORE)
	b.pushByte(0).pushByte(0)   // outSize, outOffset
	b.pushByte(68).pushByte(0)  // inSize, inOffset
	b.pushByte(0)               // value
	b.pushByte(0).op(evm.SLOAD) // DataStorage address
	b.op(evm.GAS, evm.CALL)
	bubbleRevert(b, "recorded")
	b.op(evm.STOP)

	return b.assemble()
}

// NotaryInitCode returns deployment code for the notary. Append the
// 32-byte left-padded DataStorage address as the constructor argument.
func NotaryInitCode() []byte {
	runtime := NotaryRuntime()
	b := newBB()
	// codecopy(0, codesize-32, 32); sstore(0, mload(0))
	b.pushByte(32)
	b.pushByte(32).op(evm.CODESIZE, evm.SUB)
	b.pushByte(0).op(evm.CODECOPY)
	b.pushByte(0).op(evm.MLOAD)
	b.pushByte(0).op(evm.SSTORE)
	// return runtime
	b.push(u16(len(runtime)))
	b.pushLabel("runtime")
	b.pushByte(0).op(evm.CODECOPY)
	b.push(u16(len(runtime)))
	b.pushByte(0).op(evm.RETURN)
	b.labels["runtime"] = len(b.code) // data label, no JUMPDEST
	b.code = append(b.code, runtime...)
	return b.assemble()
}

// PackNotaryDeploy builds the full creation payload for a notary bound
// to the DataStorage at ds.
func PackNotaryDeploy(ds ethtypes.Address) []byte {
	arg := make([]byte, 32)
	copy(arg[12:], ds[:])
	return append(NotaryInitCode(), arg...)
}

// NotaryABI is the notary's call interface.
func NotaryABI() *abi.ABI {
	return &abi.ABI{
		Methods: map[string]abi.Method{
			"payAndRecord": {
				Name:            "payAndRecord",
				Inputs:          []abi.Arg{{Name: "rental", Type: abi.AddressType}},
				StateMutability: "payable",
			},
		},
		Events: map[string]abi.Event{},
	}
}
