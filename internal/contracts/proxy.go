package contracts

import (
	"legalchain/internal/abi"
	"legalchain/internal/ethtypes"
	"legalchain/internal/evm"
)

// The proxy is the upgrade-pattern baseline the experiments compare the
// paper's linked-list versioning against: an EIP-1967-style transparent
// proxy whose fallback DELEGATECALLs into an implementation address held
// in a fixed storage slot, with an admin-only upgradeTo(address).
//
// minisol has no inline assembly or fallback functions, so the proxy is
// assembled by hand here — mirroring how such proxies are written in
// Yul/assembly in production OpenZeppelin code.

// EIP-1967 storage slots.
var (
	// ProxyImplSlot = keccak256("eip1967.proxy.implementation") - 1.
	ProxyImplSlot = ethtypes.HexToHash("0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc")
	// ProxyAdminSlot = keccak256("eip1967.proxy.admin") - 1.
	ProxyAdminSlot = ethtypes.HexToHash("0xb53127684a568b3173ae13b9f8a6016e243e63b6e8ee1178d6a717850b5d6103")
)

// UpgradeToSelector is the 4-byte selector of upgradeTo(address).
var UpgradeToSelector = func() [4]byte {
	h := ethtypes.Keccak256([]byte("upgradeTo(address)"))
	var s [4]byte
	copy(s[:], h[:4])
	return s
}()

// bb is a minimal bytecode builder with two-byte label patching.
type bb struct {
	code   []byte
	labels map[string]int
	refs   map[int]string
}

func newBB() *bb { return &bb{labels: map[string]int{}, refs: map[int]string{}} }

func (b *bb) op(ops ...evm.OpCode) *bb {
	for _, o := range ops {
		b.code = append(b.code, byte(o))
	}
	return b
}

func (b *bb) push(data []byte) *bb {
	b.code = append(b.code, byte(evm.PUSH1)+byte(len(data)-1))
	b.code = append(b.code, data...)
	return b
}

func (b *bb) pushByte(v byte) *bb { return b.push([]byte{v}) }

func (b *bb) pushLabel(name string) *bb {
	b.code = append(b.code, byte(evm.PUSH2))
	b.refs[len(b.code)] = name
	b.code = append(b.code, 0, 0)
	return b
}

func (b *bb) label(name string) *bb {
	b.labels[name] = len(b.code)
	return b.op(evm.JUMPDEST)
}

func (b *bb) assemble() []byte {
	for pos, name := range b.refs {
		target := b.labels[name]
		b.code[pos] = byte(target >> 8)
		b.code[pos+1] = byte(target)
	}
	return b.code
}

// ProxyRuntime returns the proxy's runtime bytecode.
func ProxyRuntime() []byte {
	b := newBB()
	// if selector == upgradeTo && caller == admin -> upgrade
	b.pushByte(0).op(evm.CALLDATALOAD).pushByte(0xE0).op(evm.SHR)
	b.push(UpgradeToSelector[:]).op(evm.EQ)
	b.op(evm.CALLER).push(ProxyAdminSlot[:]).op(evm.SLOAD).op(evm.EQ)
	b.op(evm.AND)
	b.pushLabel("upgrade").op(evm.JUMPI)

	// fallback: delegate everything to the implementation
	b.op(evm.CALLDATASIZE).pushByte(0).pushByte(0).op(evm.CALLDATACOPY)
	b.pushByte(0).pushByte(0).op(evm.CALLDATASIZE).pushByte(0)
	b.push(ProxyImplSlot[:]).op(evm.SLOAD)
	b.op(evm.GAS, evm.DELEGATECALL)
	b.op(evm.RETURNDATASIZE).pushByte(0).pushByte(0).op(evm.RETURNDATACOPY)
	b.pushLabel("ok").op(evm.JUMPI)
	b.op(evm.RETURNDATASIZE).pushByte(0).op(evm.REVERT)
	b.label("ok")
	b.op(evm.RETURNDATASIZE).pushByte(0).op(evm.RETURN)

	// upgrade: sstore(IMPL, calldataload(4)); stop
	b.label("upgrade")
	b.pushByte(4).op(evm.CALLDATALOAD)
	b.push(ProxyImplSlot[:]).op(evm.SSTORE)
	b.op(evm.STOP)
	return b.assemble()
}

// ProxyInitCode returns deployment code for the proxy. Append the
// 32-byte left-padded implementation address as the constructor
// argument.
func ProxyInitCode() []byte {
	runtime := ProxyRuntime()
	b := newBB()
	// sstore(ADMIN, caller)
	b.op(evm.CALLER).push(ProxyAdminSlot[:]).op(evm.SSTORE)
	// codecopy(0, codesize-32, 32); sstore(IMPL, mload(0))
	b.pushByte(32)
	b.pushByte(32).op(evm.CODESIZE, evm.SUB)
	b.pushByte(0).op(evm.CODECOPY)
	b.pushByte(0).op(evm.MLOAD)
	b.push(ProxyImplSlot[:]).op(evm.SSTORE)
	// return runtime
	b.push(u16(len(runtime)))
	b.pushLabel("runtime")
	b.pushByte(0).op(evm.CODECOPY)
	b.push(u16(len(runtime)))
	b.pushByte(0).op(evm.RETURN)
	b.labels["runtime"] = len(b.code) // data label, no JUMPDEST
	b.code = append(b.code, runtime...)
	return b.assemble()
}

func u16(n int) []byte { return []byte{byte(n >> 8), byte(n)} }

// ProxyABI is the management interface of the proxy itself.
func ProxyABI() *abi.ABI {
	return &abi.ABI{
		Methods: map[string]abi.Method{
			"upgradeTo": {
				Name:            "upgradeTo",
				Inputs:          []abi.Arg{{Name: "impl", Type: abi.AddressType}},
				StateMutability: "nonpayable",
			},
		},
		Events: map[string]abi.Event{},
	}
}

// PackProxyDeploy builds the full creation payload for a proxy pointing
// at impl.
func PackProxyDeploy(impl ethtypes.Address) []byte {
	arg := make([]byte, 32)
	copy(arg[12:], impl[:])
	return append(ProxyInitCode(), arg...)
}
