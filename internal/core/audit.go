package core

import (
	"fmt"

	"legalchain/internal/ethtypes"
	"legalchain/internal/upgrade"
	"legalchain/internal/web3"
)

// AuditChain walks the version chain containing addr and renders the
// full audit report: per-version code and artifacts, per-pair bytecode,
// ABI-surface, storage-layout and behaviour diffs, and any upgrade
// rejections recorded in the evidence line. Reads only — the audit
// never transacts.
func (m *Manager) AuditChain(from, addr ethtypes.Address) (*upgrade.AuditReport, error) {
	chain, err := m.WalkChain(addr)
	if err != nil {
		return nil, err
	}
	report := &upgrade.AuditReport{
		Root:          chain[0].Address.Hex(),
		Head:          chain[len(chain)-1].Address.Hex(),
		ChainVerified: VerifyChain(chain) == nil,
	}

	var tb upgrade.TraceBackend
	if hv, ok := m.Client.Backend().(web3.HeadViewer); ok {
		tb = hv.HeadView()
	}

	for i, node := range chain {
		code, err := m.Client.Backend().GetCode(node.Address)
		if err != nil {
			return nil, fmt.Errorf("core: reading code of %s: %w", node.Address, err)
		}
		vn := upgrade.VersionNode{
			Address:  node.Address.Hex(),
			Index:    i,
			CodeSize: len(code),
			CodeHash: ethtypes.Keccak256(code).Hex(),
		}
		if _, err := m.ResolveABI(node.Address); err == nil {
			vn.HasABI = true
		}
		if layout, err := m.ResolveLayout(node.Address); err == nil && layout != nil {
			vn.HasLayout = true
			vn.Layout = layout
		}
		report.Versions = append(report.Versions, vn)

		if rej, err := m.Rejections(from, node.Address); err == nil && len(rej) > 0 {
			report.Rejections = append(report.Rejections, rej...)
		}
	}

	for i := 0; i+1 < len(chain); i++ {
		oldAddr, newAddr := chain[i].Address, chain[i+1].Address
		pair := upgrade.PairDiff{From: oldAddr.Hex(), To: newAddr.Hex()}

		oldCode, _ := m.Client.Backend().GetCode(oldAddr)
		newCode, _ := m.Client.Backend().GetCode(newAddr)
		pair.BytecodeChanged = string(oldCode) != string(newCode)
		pair.CodeSizeDelta = len(newCode) - len(oldCode)

		oldABI, errOld := m.ResolveABI(oldAddr)
		newABI, errNew := m.ResolveABI(newAddr)
		if errOld == nil && errNew == nil {
			pair.ABI = upgrade.DiffABI(oldABI, newABI)
			pair.Behaviour = upgrade.DiffBehaviour(tb, from, oldAddr, newAddr, oldABI, newABI)
		}

		oldLayout, _ := m.ResolveLayout(oldAddr)
		newLayout, _ := m.ResolveLayout(newAddr)
		if oldLayout != nil && newLayout != nil {
			pair.Layout = upgrade.DiffLayout(oldLayout, newLayout)
		}

		report.Pairs = append(report.Pairs, pair)
	}
	return report, nil
}
