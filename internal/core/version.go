package core

import (
	"fmt"

	"legalchain/internal/ethtypes"
)

// VersionInfo is one node of the on-chain version chain, resolved during
// a walk.
type VersionInfo struct {
	Address ethtypes.Address
	Prev    ethtypes.Address // zero when head
	Next    ethtypes.Address // zero when tail
	// Registry enrichment (may be empty if the row is unknown locally).
	Version int
	State   string
	Name    string
}

// maxChainLength bounds walks so a (maliciously) cyclic chain terminates.
const maxChainLength = 4096

// pointers reads the next/prev pointers of one version through its
// published ABI.
func (m *Manager) pointers(addr ethtypes.Address) (prev, next ethtypes.Address, err error) {
	bound, err := m.BindVersion(addr)
	if err != nil {
		return prev, next, err
	}
	if _, ok := bound.ABI.Methods["getPrev"]; !ok {
		return prev, next, fmt.Errorf("%w: %s", ErrNotVersioned, addr)
	}
	if prev, err = bound.CallAddress(addr, "getPrev"); err != nil {
		return prev, next, err
	}
	if next, err = bound.CallAddress(addr, "getNext"); err != nil {
		return prev, next, err
	}
	return prev, next, nil
}

// WalkChain traverses the doubly linked version list from any member:
// backwards to the first version, then forwards to the last, resolving
// each hop's ABI from the content store. The returned slice is ordered
// v1..vN — the paper's evidence line of modifications.
func (m *Manager) WalkChain(start ethtypes.Address) ([]VersionInfo, error) {
	// Find the head.
	head := start
	seen := map[ethtypes.Address]bool{start: true}
	for i := 0; ; i++ {
		if i > maxChainLength {
			return nil, fmt.Errorf("%w: prev chain exceeds %d", ErrChainCorrupted, maxChainLength)
		}
		prev, _, err := m.pointers(head)
		if err != nil {
			return nil, err
		}
		if prev.IsZero() {
			break
		}
		if seen[prev] {
			return nil, fmt.Errorf("%w: cycle at %s", ErrChainCorrupted, prev)
		}
		seen[prev] = true
		head = prev
	}
	// Walk forward collecting nodes.
	var out []VersionInfo
	cur := head
	fwd := map[ethtypes.Address]bool{}
	for i := 0; ; i++ {
		if i > maxChainLength {
			return nil, fmt.Errorf("%w: next chain exceeds %d", ErrChainCorrupted, maxChainLength)
		}
		if fwd[cur] {
			return nil, fmt.Errorf("%w: cycle at %s", ErrChainCorrupted, cur)
		}
		fwd[cur] = true
		prev, next, err := m.pointers(cur)
		if err != nil {
			return nil, err
		}
		info := VersionInfo{Address: cur, Prev: prev, Next: next}
		if row, err := m.GetRow(cur); err == nil {
			info.Version = row.Version
			info.State = row.State
			info.Name = row.Name
		}
		out = append(out, info)
		if next.IsZero() {
			break
		}
		cur = next
	}
	return out, nil
}

// VerifyChain checks the doubly-linked-list invariants of a walked
// chain: interior nodes satisfy next(prev(v)) == v and prev(next(v)) ==
// v, exactly one head and one tail exist, and versions are strictly
// increasing where known.
func VerifyChain(chain []VersionInfo) error {
	if len(chain) == 0 {
		return fmt.Errorf("core: empty chain")
	}
	if !chain[0].Prev.IsZero() {
		return fmt.Errorf("%w: head has a previous pointer", ErrChainCorrupted)
	}
	if !chain[len(chain)-1].Next.IsZero() {
		return fmt.Errorf("%w: tail has a next pointer", ErrChainCorrupted)
	}
	for i := 0; i < len(chain)-1; i++ {
		if chain[i].Next != chain[i+1].Address {
			return fmt.Errorf("%w: %s.next != %s", ErrChainCorrupted, chain[i].Address, chain[i+1].Address)
		}
		if chain[i+1].Prev != chain[i].Address {
			return fmt.Errorf("%w: %s.prev != %s", ErrChainCorrupted, chain[i+1].Address, chain[i].Address)
		}
		if chain[i].Version != 0 && chain[i+1].Version != 0 && chain[i+1].Version <= chain[i].Version {
			return fmt.Errorf("%w: non-increasing versions at %s", ErrChainCorrupted, chain[i+1].Address)
		}
	}
	return nil
}

// Head returns the first (oldest) version reachable from start.
func (m *Manager) Head(start ethtypes.Address) (ethtypes.Address, error) {
	chain, err := m.WalkChain(start)
	if err != nil {
		return ethtypes.Address{}, err
	}
	return chain[0].Address, nil
}

// Latest returns the newest version reachable from start.
func (m *Manager) Latest(start ethtypes.Address) (ethtypes.Address, error) {
	chain, err := m.WalkChain(start)
	if err != nil {
		return ethtypes.Address{}, err
	}
	return chain[len(chain)-1].Address, nil
}
