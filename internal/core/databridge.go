package core

import (
	"fmt"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
	"legalchain/internal/web3"
)

// The data bridge realises the paper's data/logic separation (Fig. 3):
// contract state worth carrying across versions lives as key/value
// strings in the shared DataStorage contract, namespaced by contract
// address. A new logic version imports its predecessor's data by
// reading under the old address (or having the manager copy it to the
// new namespace).

// SetValue writes one key/value pair under the contract's namespace.
func (m *Manager) SetValue(from, contractAddr ethtypes.Address, key, value string) (uint64, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return 0, err
	}
	rcpt, err := ds.Transact(web3.TxOpts{From: from}, "setValue", contractAddr, key, value)
	if err != nil {
		return 0, fmt.Errorf("core: setValue(%s): %w", key, err)
	}
	return rcpt.GasUsed, nil
}

// GetValue reads one key from the contract's namespace.
func (m *Manager) GetValue(from, contractAddr ethtypes.Address, key string) (string, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return "", err
	}
	return ds.CallString(from, "getValue", contractAddr, key)
}

// LoadSnapshot reads the whole key/value namespace of a contract using
// the on-chain key enumeration.
func (m *Manager) LoadSnapshot(from, contractAddr ethtypes.Address) (map[string]string, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return nil, err
	}
	count, err := ds.CallUint(from, "keyCount", contractAddr)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, count.Uint64())
	for i := uint64(0); i < count.Uint64(); i++ {
		key, err := ds.CallString(from, "keyAt", contractAddr, i)
		if err != nil {
			return nil, err
		}
		val, err := ds.CallString(from, "getValue", contractAddr, key)
		if err != nil {
			return nil, err
		}
		out[key] = val
	}
	return out, nil
}

// MigrateData copies every key/value pair from the old contract's
// namespace to the new one, returning the pair count and gas spent.
func (m *Manager) MigrateData(from, oldAddr, newAddr ethtypes.Address) (int, uint64, error) {
	snapshot, err := m.LoadSnapshot(from, oldAddr)
	if err != nil {
		return 0, 0, err
	}
	var gas uint64
	for key, val := range snapshot {
		g, err := m.SetValue(from, newAddr, key, val)
		if err != nil {
			return 0, gas, err
		}
		gas += g
	}
	return len(snapshot), gas, nil
}

// SnapshotContract reads the named public getters of a live contract
// version and writes their values into DataStorage under its address, so
// the data survives the version's retirement. Word values are rendered
// decimal, addresses as hex, strings verbatim.
func (m *Manager) SnapshotContract(from ethtypes.Address, bound *web3.BoundContract, keys []string) (uint64, error) {
	var gas uint64
	for _, key := range keys {
		method, ok := bound.ABI.Methods[key]
		if !ok {
			return gas, fmt.Errorf("core: contract has no getter %q", key)
		}
		if len(method.Inputs) != 0 {
			return gas, fmt.Errorf("core: getter %q takes arguments; snapshot only plain values", key)
		}
		out, err := bound.Call(from, key)
		if err != nil {
			return gas, fmt.Errorf("core: reading %q: %w", key, err)
		}
		if len(out) != 1 {
			return gas, fmt.Errorf("core: getter %q returned %d values", key, len(out))
		}
		rendered, err := renderValue(out[0])
		if err != nil {
			return gas, fmt.Errorf("core: %q: %w", key, err)
		}
		g, err := m.SetValue(from, bound.Address, key, rendered)
		if err != nil {
			return gas, err
		}
		gas += g
	}
	return gas, nil
}

func renderValue(v interface{}) (string, error) {
	switch x := v.(type) {
	case uint256.Int:
		return x.String(), nil
	case ethtypes.Address:
		return x.Hex(), nil
	case string:
		return x, nil
	case bool:
		if x {
			return "true", nil
		}
		return "false", nil
	default:
		return "", fmt.Errorf("unsupported snapshot value type %T", v)
	}
}
