package core

import (
	"fmt"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
	"legalchain/internal/web3"
)

// The data bridge realises the paper's data/logic separation (Fig. 3):
// contract state worth carrying across versions lives as key/value
// strings in the shared DataStorage contract, namespaced by contract
// address. A new logic version imports its predecessor's data either
// in place — one adoptNamespace transaction makes the predecessor's
// namespace visible under the new address (the FlexiContracts model) —
// or by having the manager copy every pair to the new namespace (the
// legacy path, ~96k gas per pair, kept for benchmarks and forced
// copies). Reads resolve the alias chain off chain: a version's own
// keys shadow adopted ones.

// SetValue writes one key/value pair under the contract's namespace.
func (m *Manager) SetValue(from, contractAddr ethtypes.Address, key, value string) (uint64, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return 0, err
	}
	rcpt, err := ds.Transact(web3.TxOpts{From: from}, "setValue", contractAddr, key, value)
	if err != nil {
		return 0, fmt.Errorf("core: setValue(%s): %w", key, err)
	}
	return rcpt.GasUsed, nil
}

// aliasChain resolves the namespace-adoption chain starting at addr:
// addr first, then each adopted ancestor, bounded like the version walk
// so a (maliciously) cyclic alias chain terminates.
func (m *Manager) aliasChain(from, addr ethtypes.Address) ([]ethtypes.Address, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return nil, err
	}
	chain := []ethtypes.Address{addr}
	seen := map[ethtypes.Address]bool{addr: true}
	cur := addr
	for len(chain) <= maxChainLength {
		next, err := ds.CallAddress(from, "aliasOf", cur)
		if err != nil {
			return nil, fmt.Errorf("core: resolving alias of %s: %w", cur, err)
		}
		if next.IsZero() || seen[next] {
			return chain, nil
		}
		chain = append(chain, next)
		seen[next] = true
		cur = next
	}
	return nil, fmt.Errorf("core: alias chain from %s exceeds %d", addr, maxChainLength)
}

// GetValue reads one key from the contract's namespace, falling back
// through adopted predecessor namespaces: the version's own value wins,
// an ancestor's value surfaces when the version never overrode the key.
func (m *Manager) GetValue(from, contractAddr ethtypes.Address, key string) (string, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return "", err
	}
	chain, err := m.aliasChain(from, contractAddr)
	if err != nil {
		return "", err
	}
	for _, addr := range chain {
		has, err := ds.CallBool(from, "hasKey", addr, key)
		if err != nil {
			return "", err
		}
		if has {
			return ds.CallString(from, "getValue", addr, key)
		}
	}
	return "", nil
}

// LoadSnapshot reads the whole key/value namespace of a contract using
// the on-chain key enumeration, merged across adopted predecessor
// namespaces (deepest ancestor first, so the version's own keys win).
func (m *Manager) LoadSnapshot(from, contractAddr ethtypes.Address) (map[string]string, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return nil, err
	}
	chain, err := m.aliasChain(from, contractAddr)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for i := len(chain) - 1; i >= 0; i-- {
		addr := chain[i]
		count, err := ds.CallUint(from, "keyCount", addr)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < count.Uint64(); j++ {
			key, err := ds.CallString(from, "keyAt", addr, j)
			if err != nil {
				return nil, err
			}
			val, err := ds.CallString(from, "getValue", addr, key)
			if err != nil {
				return nil, err
			}
			out[key] = val
		}
	}
	return out, nil
}

// AdoptNamespace performs the in-place data migration: one transaction
// makes oldAddr's whole namespace readable under newAddr, instead of
// re-importing N pairs at ~96k gas each. Returns the gas spent (constant
// in the pair count).
func (m *Manager) AdoptNamespace(from, newAddr, oldAddr ethtypes.Address) (uint64, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return 0, err
	}
	rcpt, err := ds.Transact(web3.TxOpts{From: from}, "adoptNamespace", newAddr, oldAddr)
	if err != nil {
		return 0, fmt.Errorf("core: adoptNamespace(%s <- %s): %w", newAddr, oldAddr, err)
	}
	return rcpt.GasUsed, nil
}

// MigrateData copies every key/value pair from the old contract's
// namespace to the new one, returning the pair count and gas spent.
func (m *Manager) MigrateData(from, oldAddr, newAddr ethtypes.Address) (int, uint64, error) {
	snapshot, err := m.LoadSnapshot(from, oldAddr)
	if err != nil {
		return 0, 0, err
	}
	var gas uint64
	for key, val := range snapshot {
		g, err := m.SetValue(from, newAddr, key, val)
		if err != nil {
			return 0, gas, err
		}
		gas += g
	}
	return len(snapshot), gas, nil
}

// SnapshotContract reads the named public getters of a live contract
// version and writes their values into DataStorage under its address, so
// the data survives the version's retirement. Word values are rendered
// decimal, addresses as hex, strings verbatim.
func (m *Manager) SnapshotContract(from ethtypes.Address, bound *web3.BoundContract, keys []string) (uint64, error) {
	var gas uint64
	for _, key := range keys {
		method, ok := bound.ABI.Methods[key]
		if !ok {
			return gas, fmt.Errorf("core: contract has no getter %q", key)
		}
		if len(method.Inputs) != 0 {
			return gas, fmt.Errorf("core: getter %q takes arguments; snapshot only plain values", key)
		}
		out, err := bound.Call(from, key)
		if err != nil {
			return gas, fmt.Errorf("core: reading %q: %w", key, err)
		}
		if len(out) != 1 {
			return gas, fmt.Errorf("core: getter %q returned %d values", key, len(out))
		}
		rendered, err := renderValue(out[0])
		if err != nil {
			return gas, fmt.Errorf("core: %q: %w", key, err)
		}
		g, err := m.SetValue(from, bound.Address, key, rendered)
		if err != nil {
			return gas, err
		}
		gas += g
	}
	return gas, nil
}

func renderValue(v interface{}) (string, error) {
	switch x := v.(type) {
	case uint256.Int:
		return x.String(), nil
	case ethtypes.Address:
		return x.Hex(), nil
	case string:
		return x, nil
	case bool:
		if x {
			return "true", nil
		}
		return "false", nil
	default:
		return "", fmt.Errorf("unsupported snapshot value type %T", v)
	}
}
