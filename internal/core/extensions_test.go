package core

import (
	"errors"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

func TestSealAndVerifyHistory(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[1].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)
	svcConfirmAndPay(t, svc, tenant, v1.Contract.Address, 3)

	digest, err := svc.SealHistory(landlord, v1.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if digest.IsZero() {
		t.Fatal("zero digest")
	}
	// Verification passes against the untouched history.
	if err := svc.VerifyHistory(tenant, v1.Contract.Address); err != nil {
		t.Fatal(err)
	}
	// Simulate tampering with the sealed commitment (the data contract
	// owner could try this): verification must fail afterwards.
	if _, err := m.SetValue(landlord, v1.Contract.Address, HistoryCommitmentKey,
		ethtypes.Keccak256([]byte("forged")).Hex()); err != nil {
		t.Fatal(err)
	}
	if err := svc.VerifyHistory(tenant, v1.Contract.Address); !errors.Is(err, ErrHistoryTampered) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyHistoryNoCommitment(t *testing.T) {
	m, accs := rig(t)
	svc := NewRentalService(m)
	v1 := deployRental(t, m, accs[0].Address)
	if err := svc.VerifyHistory(accs[0].Address, v1.Contract.Address); !errors.Is(err, ErrNoCommitment) {
		t.Fatalf("err = %v", err)
	}
}

func TestHistoryDigestSensitivity(t *testing.T) {
	addr := ethtypes.HexToAddress("0x00000000000000000000000000000000000000aa")
	recs := []PaymentRecord{{Month: 1, Amount: uint256.NewUint64(100)}, {Month: 2, Amount: uint256.NewUint64(100)}}
	base := historyDigest(addr, recs)
	// Amount change detected.
	changed := []PaymentRecord{{Month: 1, Amount: uint256.NewUint64(100)}, {Month: 2, Amount: uint256.NewUint64(101)}}
	if historyDigest(addr, changed) == base {
		t.Fatal("amount change not detected")
	}
	// Reordering detected.
	reordered := []PaymentRecord{recs[1], recs[0]}
	if historyDigest(addr, reordered) == base {
		t.Fatal("reorder not detected")
	}
	// Truncation detected.
	if historyDigest(addr, recs[:1]) == base {
		t.Fatal("truncation not detected")
	}
	// Address binding.
	other := ethtypes.HexToAddress("0x00000000000000000000000000000000000000bb")
	if historyDigest(other, recs) == base {
		t.Fatal("commitment not bound to the contract address")
	}
}

func TestSignedConsentFlow(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[1].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)
	svcConfirmAndPay(t, svc, tenant, v1.Contract.Address, 2)

	ks := m.Client.Keystore()
	// Happy path: the real tenant signs.
	dep, err := svc.ModifyWithConsent(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	}, func(newAddr ethtypes.Address) ([]byte, error) {
		return SignConsent(ks, tenant, v1.Contract.Address, newAddr)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The old version's history was sealed as part of the flow.
	if err := svc.VerifyHistory(tenant, v1.Contract.Address); err != nil {
		t.Fatal(err)
	}

	// Adversarial path: a stranger signs the consent — rejected, and the
	// new deployment is marked rejected. The tenant first confirms v2 so
	// it records them on chain.
	if err := svc.ConfirmModification(tenant, dep.Contract.Address); err != nil {
		t.Fatal(err)
	}
	v3, err := svc.ModifyWithConsent(landlord, dep.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(2), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	}, func(newAddr ethtypes.Address) ([]byte, error) {
		return SignConsent(ks, accs[2].Address, dep.Contract.Address, newAddr)
	})
	if !errors.Is(err, ErrBadConsent) {
		t.Fatalf("stranger consent: %v", err)
	}
	if v3 != nil {
		t.Fatal("deployment returned despite bad consent")
	}
}

func TestConsentBoundToAddressPair(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[1].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)
	svcConfirmAndPay(t, svc, tenant, v1.Contract.Address, 1)
	v2, err := svc.Modify(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ks := m.Client.Keystore()
	good, err := SignConsent(ks, tenant, v1.Contract.Address, v2.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.VerifyConsent(landlord, v1.Contract.Address, v2.Contract.Address, good); err != nil {
		t.Fatal(err)
	}
	// The same signature must not authorize a DIFFERENT new address
	// (replay protection across modifications).
	other := ethtypes.HexToAddress("0x00000000000000000000000000000000000000ee")
	if err := svc.VerifyConsent(landlord, v1.Contract.Address, other, good); !errors.Is(err, ErrBadConsent) {
		t.Fatalf("replayed consent accepted: %v", err)
	}
	// Garbage signature rejected.
	if err := svc.VerifyConsent(landlord, v1.Contract.Address, v2.Contract.Address, []byte{1, 2, 3}); !errors.Is(err, ErrBadConsent) {
		t.Fatal("garbage consent accepted")
	}
}
