package core

import (
	"errors"
	"strings"
	"testing"

	"legalchain/internal/chain"
	"legalchain/internal/contracts"
	"legalchain/internal/docstore"
	"legalchain/internal/ethtypes"
	"legalchain/internal/ipfs"
	"legalchain/internal/uint256"
	"legalchain/internal/wallet"
	"legalchain/internal/web3"
)

// rig assembles the full four-tier stack in process.
func rig(t *testing.T) (*Manager, []wallet.Account) {
	t.Helper()
	accs := wallet.DevAccounts("core test", 4)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(1000))
	bc := chain.New(g)
	ks := wallet.NewKeystore()
	for _, a := range accs {
		ks.Import(a.Key)
	}
	client, err := web3.NewClient(web3.NewLocalBackend(bc), ks)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return NewManager(client, ipfs.NewNode(ipfs.NewMemStore()), store), accs
}

func deployRental(t *testing.T, m *Manager, landlord ethtypes.Address) *Deployment {
	t.Helper()
	svc := NewRentalService(m)
	dep, err := svc.DeployRental(landlord, RentalTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", LegalDoc: []byte("%PDF-1.4 rental agreement v1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestDeployVersionPublishesEverything(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	dep := deployRental(t, m, landlord)

	// Row recorded.
	row, err := m.GetRow(dep.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if row.Version != 1 || row.State != StateActive || row.Landlord != landlord.Hex() {
		t.Fatalf("row = %+v", row)
	}
	// ABI resolvable from the address alone.
	resolved, err := m.ResolveABI(dep.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resolved.Methods["payRent"]; !ok {
		t.Fatal("resolved ABI lacks payRent")
	}
	// Legal document retrievable and intact.
	doc, err := m.LegalDocument(dep.Contract.Address)
	if err != nil || !strings.Contains(string(doc), "rental agreement v1") {
		t.Fatalf("document: %q %v", doc, err)
	}
	// Binding from scratch works.
	bound, err := m.BindVersion(dep.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	rent, err := bound.CallUint(landlord, "rent")
	if err != nil || rent != ethtypes.Ether(1) {
		t.Fatalf("rent = %s, %v", rent, err)
	}
}

func TestResolveABIMissing(t *testing.T) {
	m, _ := rig(t)
	_, err := m.ResolveABI(ethtypes.HexToAddress("0x00000000000000000000000000000000000000ff"))
	if !errors.Is(err, ErrNoABI) {
		t.Fatalf("err = %v", err)
	}
}

func TestModifyBuildsEvidenceLine(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[1].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)
	if err := svc.Confirm(tenant, v1.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PayRent(tenant, v1.Contract.Address); err != nil {
		t.Fatal(err)
	}

	v2, err := svc.Modify(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
		LegalDoc: []byte("%PDF-1.4 rental agreement v2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	v3, err := svc.Modify(landlord, v2.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(2), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Walk from the middle: the full chain comes back in order.
	chainInfo, err := m.WalkChain(v2.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if len(chainInfo) != 3 {
		t.Fatalf("chain length = %d", len(chainInfo))
	}
	if chainInfo[0].Address != v1.Contract.Address ||
		chainInfo[1].Address != v2.Contract.Address ||
		chainInfo[2].Address != v3.Contract.Address {
		t.Fatal("chain order wrong")
	}
	if err := VerifyChain(chainInfo); err != nil {
		t.Fatal(err)
	}
	// Versions increase, states updated.
	if chainInfo[0].Version != 1 || chainInfo[1].Version != 2 || chainInfo[2].Version != 3 {
		t.Fatalf("versions = %d %d %d", chainInfo[0].Version, chainInfo[1].Version, chainInfo[2].Version)
	}
	if chainInfo[0].State != StateSuperseded || chainInfo[1].State != StateSuperseded || chainInfo[2].State != StateActive {
		t.Fatalf("states = %s %s %s", chainInfo[0].State, chainInfo[1].State, chainInfo[2].State)
	}
	// Head/Latest helpers.
	head, _ := m.Head(v3.Contract.Address)
	latest, _ := m.Latest(v1.Contract.Address)
	if head != v1.Contract.Address || latest != v3.Contract.Address {
		t.Fatal("head/latest")
	}
}

func TestDataMigrationAcrossVersions(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[1].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)
	svcConfirmAndPay(t, svc, tenant, v1.Contract.Address, 3)

	v2, err := svc.Modify(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot of v1 was migrated into v2's namespace.
	snap, err := m.LoadSnapshot(landlord, v2.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if snap["rent"] != ethtypes.Ether(1).String() {
		t.Fatalf("migrated rent = %q", snap["rent"])
	}
	if snap["monthCounter"] != "3" {
		t.Fatalf("migrated monthCounter = %q", snap["monthCounter"])
	}
	if snap["tenant"] != tenant.Hex() {
		t.Fatalf("migrated tenant = %q", snap["tenant"])
	}
	if snap["house"] != "10115-Berlin-42" {
		t.Fatalf("migrated house = %q", snap["house"])
	}
	// The old namespace still holds the originals (immutability of the
	// evidence line).
	old, err := m.LoadSnapshot(landlord, v1.Contract.Address)
	if err != nil || old["monthCounter"] != "3" {
		t.Fatal("old namespace lost")
	}
}

func svcConfirmAndPay(t *testing.T, svc *RentalService, tenant, addr ethtypes.Address, months int) {
	t.Helper()
	if err := svc.Confirm(tenant, addr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < months; i++ {
		if _, err := svc.PayRent(tenant, addr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfirmModificationTerminatesOld(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[1].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)
	svcConfirmAndPay(t, svc, tenant, v1.Contract.Address, 2)

	v2, err := svc.Modify(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(1), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ConfirmModification(tenant, v2.Contract.Address); err != nil {
		t.Fatal(err)
	}
	// Old version is terminated on chain; new one is started.
	oldBound, _ := m.BindVersion(v1.Contract.Address)
	st, _ := oldBound.CallUint(tenant, "state")
	if st.Uint64() != 2 {
		t.Fatal("old version not terminated")
	}
	newBound, _ := m.BindVersion(v2.Contract.Address)
	st, _ = newBound.CallUint(tenant, "state")
	if st.Uint64() != 1 {
		t.Fatal("new version not started")
	}
	// New clause callable through the service.
	if _, err := svc.PayMaintenance(tenant, v2.Contract.Address); err != nil {
		t.Fatal(err)
	}
	// Cross-version rent history.
	if _, err := svc.PayRent(tenant, v2.Contract.Address); err != nil {
		t.Fatal(err)
	}
	hist, err := svc.RentHistory(tenant, v1.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 { // 2 on v1, 1 on v2
		t.Fatalf("history = %d records", len(hist))
	}
	if hist[0].Version != 1 || hist[2].Version != 2 {
		t.Fatalf("history versions: %+v", hist)
	}
}

func TestRejectModification(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[1].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)
	svcConfirmAndPay(t, svc, tenant, v1.Contract.Address, 1)
	v2, err := svc.Modify(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(3), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RejectModification(tenant, v2.Contract.Address); err != nil {
		t.Fatal(err)
	}
	// Paper: rejection terminates the previous contract.
	oldBound, _ := m.BindVersion(v1.Contract.Address)
	st, _ := oldBound.CallUint(tenant, "state")
	if st.Uint64() != 2 {
		t.Fatal("previous contract not terminated on rejection")
	}
	row, _ := m.GetRow(v2.Contract.Address)
	if row.State != StateRejected {
		t.Fatalf("new row state = %s", row.State)
	}
	// The rejected version never starts.
	newBound, _ := m.BindVersion(v2.Contract.Address)
	st, _ = newBound.CallUint(tenant, "state")
	if st.Uint64() != 0 {
		t.Fatal("rejected version started")
	}
}

func TestVerifyChainDetectsCorruption(t *testing.T) {
	a1 := ethtypes.HexToAddress("0x0000000000000000000000000000000000000001")
	a2 := ethtypes.HexToAddress("0x0000000000000000000000000000000000000002")
	good := []VersionInfo{
		{Address: a1, Next: a2, Version: 1},
		{Address: a2, Prev: a1, Version: 2},
	}
	if err := VerifyChain(good); err != nil {
		t.Fatal(err)
	}
	bad := []VersionInfo{
		{Address: a1, Next: a2, Version: 1},
		{Address: a2, Prev: a1, Version: 1}, // non-increasing
	}
	if err := VerifyChain(bad); err == nil {
		t.Fatal("non-increasing versions accepted")
	}
	broken := []VersionInfo{
		{Address: a1, Next: a1, Version: 1}, // next points elsewhere
		{Address: a2, Prev: a1, Version: 2},
	}
	if err := VerifyChain(broken); err == nil {
		t.Fatal("broken forward pointer accepted")
	}
	if err := VerifyChain(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestWalkChainRequiresVersionPointers(t *testing.T) {
	m, accs := rig(t)
	// DataStorage has no getNext/getPrev.
	ds, err := m.EnsureDataStorage(accs[0].Address)
	if err != nil {
		t.Fatal(err)
	}
	art := contracts.MustArtifact("DataStorage")
	if _, err := m.PublishABI(ds.Address, art.ABIJSON); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WalkChain(ds.Address); !errors.Is(err, ErrNotVersioned) {
		t.Fatalf("err = %v", err)
	}
}

func TestRowsListing(t *testing.T) {
	m, accs := rig(t)
	deployRental(t, m, accs[0].Address)
	deployRental(t, m, accs[1].Address)
	rows := m.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

// TestWalkChainDetectsCycle builds a malicious pointer cycle directly
// through the contracts and checks the walker refuses it instead of
// spinning.
func TestWalkChainDetectsCycle(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	a := deployRental(t, m, landlord)
	b := deployRental(t, m, landlord)
	// a.next = b, b.next = a, and prev pointers forming the same loop.
	if _, err := a.Contract.Transact(web3.TxOpts{From: landlord}, "setNext", b.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Contract.Transact(web3.TxOpts{From: landlord}, "setNext", a.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Contract.Transact(web3.TxOpts{From: landlord}, "setPrev", b.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Contract.Transact(web3.TxOpts{From: landlord}, "setPrev", a.Contract.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WalkChain(a.Contract.Address); !errors.Is(err, ErrChainCorrupted) {
		t.Fatalf("cycle walk: %v", err)
	}
}

// TestSnapshotContractRejectsBadKeys covers the error paths of the
// snapshot helper.
func TestSnapshotContractRejectsBadKeys(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	dep := deployRental(t, m, landlord)
	// Unknown getter.
	if _, err := m.SnapshotContract(landlord, dep.Contract, []string{"nosuch"}); err == nil {
		t.Fatal("unknown getter accepted")
	}
	// Getter with arguments (paidrents takes an index).
	if _, err := m.SnapshotContract(landlord, dep.Contract, []string{"paidrents"}); err == nil {
		t.Fatal("parameterised getter accepted")
	}
}

// TestNotaryRoutedPayRent exercises the evidence loop through the
// manager: once a notary exists, freshly deployed versions get their
// paymentProxy wired automatically, PayRent routes through the notary,
// and the DataStorage ledger records the payment in the same tx.
func TestNotaryRoutedPayRent(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[2].Address
	svc := NewRentalService(m)

	notary, err := m.EnsureNotary(landlord)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := m.EnsureNotary(landlord); again.Address != notary.Address {
		t.Fatal("EnsureNotary is not idempotent")
	}

	dep := deployRental(t, m, landlord)
	if err := svc.Confirm(tenant, dep.Contract.Address); err != nil {
		t.Fatal(err)
	}

	// DeployVersion wired the proxy on chain.
	proxy, err := dep.Contract.CallAddress(tenant, "paymentProxy")
	if err != nil {
		t.Fatal(err)
	}
	if proxy != notary.Address {
		t.Fatalf("paymentProxy = %s, want the notary %s", proxy.Hex(), notary.Address.Hex())
	}

	rcpt, err := svc.PayRent(tenant, dep.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	// The payment went through the notary, not straight to the rental.
	if rcpt.To == nil || *rcpt.To != notary.Address {
		t.Fatalf("payment tx to = %v, want the notary", rcpt.To)
	}

	// Evidence in the data tier, keyed by the rental version.
	ds := m.Client.Bind(m.DataStorageAddress(), contracts.MustArtifact("DataStorage").ABI)
	cnt, err := ds.CallUint(tenant, "paymentCount", dep.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Uint64() != 1 {
		t.Fatalf("paymentCount = %s", cnt)
	}
	amt, _ := ds.CallUint(tenant, "paymentAmount", dep.Contract.Address, uint64(0))
	if amt != ethtypes.Ether(1) {
		t.Fatalf("paymentAmount = %s", ethtypes.FormatEther(amt))
	}

	// And the rental's own history still advanced, naming the tenant.
	if n, _ := dep.Contract.CallUint(tenant, "monthCounter"); n.Uint64() != 1 {
		t.Fatalf("monthCounter = %s", n)
	}

	// The upgraded version inherits the wiring through ModifyContract.
	dep2, err := svc.Modify(landlord, dep.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.NewUint64(100), Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy2, err := dep2.Contract.CallAddress(tenant, "paymentProxy")
	if err != nil {
		t.Fatal(err)
	}
	if proxy2 != notary.Address {
		t.Fatalf("v2 paymentProxy = %s", proxy2.Hex())
	}
}
