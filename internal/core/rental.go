package core

import (
	"context"
	"fmt"

	"legalchain/internal/contracts"
	"legalchain/internal/ethtypes"
	"legalchain/internal/minisol"
	"legalchain/internal/uint256"
	"legalchain/internal/upgrade"
	"legalchain/internal/web3"
)

// RentalService drives the rental-agreement lifecycle of Fig. 4 on top
// of the generic manager: upload/deploy by the landlord, confirmation
// with deposit by the tenant, monthly rent, unilateral modification with
// tenant confirm-or-reject, and termination with deposit settlement.
type RentalService struct {
	M *Manager
}

// NewRentalService wraps a manager.
func NewRentalService(m *Manager) *RentalService { return &RentalService{M: m} }

// RentalTerms are the business parameters of the agreement.
type RentalTerms struct {
	Rent     uint256.Int
	Deposit  uint256.Int
	Months   uint64
	House    string
	LegalDoc []byte // the human-readable agreement (PDF bytes)
}

// DeployRental deploys version 1 of a rental agreement for the landlord.
func (s *RentalService) DeployRental(landlord ethtypes.Address, terms RentalTerms) (*Deployment, error) {
	art, err := contracts.Artifact("BaseRental")
	if err != nil {
		return nil, err
	}
	return s.M.DeployVersion(landlord, art, terms.LegalDoc,
		terms.Rent, terms.Deposit, terms.Months, terms.House)
}

// Confirm lets the tenant accept the agreement, paying the deposit the
// contract demands (read from the chain, not from user input).
func (s *RentalService) Confirm(tenant, contractAddr ethtypes.Address) error {
	bound, err := s.M.BindVersion(contractAddr)
	if err != nil {
		return err
	}
	deposit, err := bound.CallUint(tenant, "deposit")
	if err != nil {
		return fmt.Errorf("core: reading deposit: %w", err)
	}
	if _, err := bound.Transact(web3.TxOpts{From: tenant, Value: deposit}, "confirmAgreement"); err != nil {
		return err
	}
	return s.M.UpdateRow(contractAddr, func(r *ContractRow) { r.Tenant = tenant.Hex() })
}

// RentDue computes the amount payRent expects: the rent, minus the
// discount clause when the version has one.
func (s *RentalService) RentDue(from, contractAddr ethtypes.Address) (uint256.Int, error) {
	bound, err := s.M.BindVersion(contractAddr)
	if err != nil {
		return uint256.Zero, err
	}
	rent, err := bound.CallUint(from, "rent")
	if err != nil {
		return uint256.Zero, err
	}
	if _, ok := bound.ABI.Methods["discount"]; ok {
		discount, err := bound.CallUint(from, "discount")
		if err != nil {
			return uint256.Zero, err
		}
		rent = rent.Sub(discount)
	}
	return rent, nil
}

// PayRent pays one month of rent from the tenant.
func (s *RentalService) PayRent(tenant, contractAddr ethtypes.Address) (*ethtypes.Receipt, error) {
	return s.PayRentCtx(context.Background(), tenant, contractAddr)
}

// PayRentCtx is PayRent with span propagation. When the version has a
// payment notary configured on chain (paymentProxy non-zero), the rent
// is routed through it so the same transaction records evidence in the
// DataStorage ledger; versions without a notary are paid directly.
func (s *RentalService) PayRentCtx(ctx context.Context, tenant, contractAddr ethtypes.Address) (*ethtypes.Receipt, error) {
	due, err := s.RentDue(tenant, contractAddr)
	if err != nil {
		return nil, err
	}
	bound, err := s.M.BindVersion(contractAddr)
	if err != nil {
		return nil, err
	}
	if proxy := s.paymentProxy(tenant, bound); proxy != (ethtypes.Address{}) {
		notary := s.M.Client.Bind(proxy, contracts.NotaryABI())
		return notary.TransactCtx(ctx, web3.TxOpts{From: tenant, Value: due}, "payAndRecord", contractAddr)
	}
	return bound.TransactCtx(ctx, web3.TxOpts{From: tenant, Value: due}, "payRent")
}

// paymentProxy reads the version's configured notary address; zero when
// the version predates the notary mechanism or has none set.
func (s *RentalService) paymentProxy(from ethtypes.Address, bound *web3.BoundContract) ethtypes.Address {
	if _, ok := bound.ABI.Methods["paymentProxy"]; !ok {
		return ethtypes.Address{}
	}
	addr, err := bound.CallAddress(from, "paymentProxy")
	if err != nil {
		return ethtypes.Address{}
	}
	return addr
}

// PayMaintenance pays the maintenance fee clause of upgraded versions.
func (s *RentalService) PayMaintenance(tenant, contractAddr ethtypes.Address) (*ethtypes.Receipt, error) {
	bound, err := s.M.BindVersion(contractAddr)
	if err != nil {
		return nil, err
	}
	if _, ok := bound.ABI.Methods["payMaintenanceFee"]; !ok {
		return nil, fmt.Errorf("core: version %s has no maintenance clause", contractAddr)
	}
	fee, err := bound.CallUint(tenant, "maintenanceFee")
	if err != nil {
		return nil, err
	}
	return bound.Transact(web3.TxOpts{From: tenant, Value: fee}, "payMaintenanceFee")
}

// Terminate ends the agreement (either party; the contract settles the
// deposit and any early-exit penalty) and updates the registry row.
func (s *RentalService) Terminate(party, contractAddr ethtypes.Address) error {
	bound, err := s.M.BindVersion(contractAddr)
	if err != nil {
		return err
	}
	if _, err := bound.Transact(web3.TxOpts{From: party}, "terminateContract"); err != nil {
		return err
	}
	return s.M.UpdateRow(contractAddr, func(r *ContractRow) { r.State = StateTerminated })
}

// ModifiedTerms are the parameters of an upgraded agreement (Fig. 6).
type ModifiedTerms struct {
	Rent           uint256.Int
	Deposit        uint256.Int
	Months         uint64
	House          string
	MaintenanceFee uint256.Int
	Discount       uint256.Int
	Fine           uint256.Int
	LegalDoc       []byte
}

// rentalSnapshotKeys are the fields preserved across rental versions via
// the DataStorage contract.
var rentalSnapshotKeys = []string{"rent", "deposit", "house", "monthCounter", "tenant", "landlord"}

// Modify deploys RentalAgreementV2 as the next version of prevAddr,
// linking it on chain and carrying the old data through DataStorage. The
// tenant still has to confirm (or reject) the new version.
func (s *RentalService) Modify(landlord, prevAddr ethtypes.Address, terms ModifiedTerms) (*Deployment, error) {
	art, err := contracts.Artifact("RentalAgreementV2")
	if err != nil {
		return nil, err
	}
	return s.ModifyWithArtifact(landlord, prevAddr, art, terms)
}

// rentalProperties are the behavioural assertions every rental
// candidate must satisfy on a fork of the head before it may join the
// version chain: the deployed terms match what the landlord declared,
// and the candidate arrives unlinked (its next pointer is zero, so the
// manager — not the constructor — controls the evidence line).
func rentalProperties(terms ModifiedTerms) []upgrade.Property {
	zero := ethtypes.Address{}
	return []upgrade.Property{
		{Name: "rent-matches-terms", Method: "rent", Want: terms.Rent.String()},
		{Name: "deposit-matches-terms", Method: "deposit", Want: terms.Deposit.String()},
		{Name: "starts-unlinked", Method: "getNext", Want: zero.Hex()},
	}
}

// ModifyWithArtifact is Modify with a caller-supplied contract artifact
// (the "upload a new contract" path of Fig. 9). The artifact's
// constructor must accept the V2 argument list.
func (s *RentalService) ModifyWithArtifact(landlord, prevAddr ethtypes.Address, art *minisol.Artifact, terms ModifiedTerms) (*Deployment, error) {
	return s.M.ModifyContract(landlord, prevAddr, art, ModifyOptions{
		MigrateData:  true,
		SnapshotKeys: rentalSnapshotKeys,
		Properties:   rentalProperties(terms),
		LegalDoc:     terms.LegalDoc,
	}, terms.Rent, terms.Deposit, terms.Months, terms.House,
		terms.MaintenanceFee, terms.Discount, terms.Fine)
}

// ConfirmModification lets the tenant accept the new version (paying its
// deposit). The old version is terminated by the tenant, recovering the
// old deposit per its clauses.
func (s *RentalService) ConfirmModification(tenant, newAddr ethtypes.Address) error {
	row, err := s.M.GetRow(newAddr)
	if err != nil {
		return err
	}
	if row.Prev != "" {
		prevAddr := ethtypes.HexToAddress(row.Prev)
		prevRow, err := s.M.GetRow(prevAddr)
		if err == nil && prevRow.State != StateTerminated {
			bound, err := s.M.BindVersion(prevAddr)
			if err != nil {
				return err
			}
			// Terminate the old version if it had started; a never-
			// confirmed old version has no deposit to settle.
			st, err := bound.CallUint(tenant, "state")
			if err != nil {
				return err
			}
			if st.Uint64() == 1 { // Started
				if _, err := bound.Transact(web3.TxOpts{From: tenant}, "terminateContract"); err != nil {
					return fmt.Errorf("core: terminating superseded version: %w", err)
				}
			}
			s.M.UpdateRow(prevAddr, func(r *ContractRow) { r.State = StateTerminated })
		}
	}
	return s.Confirm(tenant, newAddr)
}

// RejectModification implements the paper's rejection branch: "if the
// tenant rejects the contract the previous contract is terminated". The
// new version is marked rejected and never starts.
func (s *RentalService) RejectModification(tenant, newAddr ethtypes.Address) error {
	row, err := s.M.GetRow(newAddr)
	if err != nil {
		return err
	}
	if row.Prev == "" {
		return fmt.Errorf("core: %s is not a modification", newAddr)
	}
	prevAddr := ethtypes.HexToAddress(row.Prev)
	bound, err := s.M.BindVersion(prevAddr)
	if err != nil {
		return err
	}
	st, err := bound.CallUint(tenant, "state")
	if err != nil {
		return err
	}
	if st.Uint64() == 1 {
		if _, err := bound.Transact(web3.TxOpts{From: tenant}, "terminateContract"); err != nil {
			return err
		}
	}
	if err := s.M.UpdateRow(prevAddr, func(r *ContractRow) { r.State = StateTerminated }); err != nil {
		return err
	}
	return s.M.UpdateRow(newAddr, func(r *ContractRow) { r.State = StateRejected })
}

// PaymentRecord is one entry of the on-chain rent history.
type PaymentRecord struct {
	Version int
	Month   uint64
	Amount  uint256.Int
	// TxHash is the transaction that paid this month, joined from the
	// version's paidRent event log. Zero when the version emits no
	// usable event — the payment is still real, just not traceable.
	TxHash ethtypes.Hash
}

// RentHistory aggregates the paidrents arrays across every version of
// the chain containing addr — the cross-version transaction history the
// paper's dashboard shows.
func (s *RentalService) RentHistory(viewer, addr ethtypes.Address) ([]PaymentRecord, error) {
	chain, err := s.M.WalkChain(addr)
	if err != nil {
		return nil, err
	}
	var out []PaymentRecord
	for _, node := range chain {
		bound, err := s.M.BindVersion(node.Address)
		if err != nil {
			return nil, err
		}
		count, err := bound.CallUint(viewer, "monthCounter")
		if err != nil {
			continue // not a rental-shaped version
		}
		// Join the stored array against the paidRent logs so each record
		// carries the hash of the transaction that paid it — the handle
		// debug_traceTransaction replays.
		txByMonth := map[uint64]ethtypes.Hash{}
		if _, ok := bound.ABI.Events["paidRent"]; ok {
			if evs, err := bound.FilterEvents("paidRent", 0); err == nil {
				for _, e := range evs {
					if m, ok := e.Args["month"].(uint256.Int); ok && e.Raw != nil {
						txByMonth[m.Uint64()] = e.Raw.TxHash
					}
				}
			}
		}
		for i := uint64(0); i < count.Uint64(); i++ {
			vals, err := bound.Call(viewer, "paidrents", i)
			if err != nil {
				return nil, err
			}
			month := vals[0].(uint256.Int).Uint64()
			out = append(out, PaymentRecord{
				Version: node.Version,
				Month:   month,
				Amount:  vals[1].(uint256.Int),
				TxHash:  txByMonth[month],
			})
		}
	}
	return out, nil
}
