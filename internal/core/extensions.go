package core

// Extensions implementing the paper's future-work directions
// (Section V): (1) "more sophisticated techniques for implementing the
// versioning where the already executed part of the contract will not
// be able to change" — realised as history commitments: at modification
// time the manager seals a keccak commitment over the predecessor's
// executed payments into the shared data contract, so any later tamper
// with the claimed history is detectable; and (2) "introducing trust to
// the system" — realised as signed consent: the tenant produces an
// ECDSA signature over the modification (old address, new address) that
// anyone can verify against the tenant address recorded on chain.

import (
	"errors"
	"fmt"

	"legalchain/internal/ethtypes"
	"legalchain/internal/secp256k1"
	"legalchain/internal/uint256"
	"legalchain/internal/wallet"
)

// HistoryCommitmentKey is the DataStorage key holding the sealed
// payment-history commitment of a version.
const HistoryCommitmentKey = "__history_commitment"

// Errors of the extension layer.
var (
	ErrHistoryTampered = errors.New("core: executed history does not match its sealed commitment")
	ErrNoCommitment    = errors.New("core: version has no sealed history commitment")
	ErrBadConsent      = errors.New("core: consent signature does not verify against the tenant")
)

// historyDigest hashes the executed payment records of one version into
// a single commitment: keccak(addr || month_i || amount_i ...).
func historyDigest(addr ethtypes.Address, records []PaymentRecord) ethtypes.Hash {
	buf := make([]byte, 0, 20+len(records)*64)
	buf = append(buf, addr[:]...)
	for _, rec := range records {
		month := uint256.NewUint64(rec.Month).Bytes32()
		buf = append(buf, month[:]...)
		amt := rec.Amount.Bytes32()
		buf = append(buf, amt[:]...)
	}
	return ethtypes.Keccak256(buf)
}

// readHistory reads the executed payments of exactly one version.
func (s *RentalService) readHistory(viewer, addr ethtypes.Address) ([]PaymentRecord, error) {
	bound, err := s.M.BindVersion(addr)
	if err != nil {
		return nil, err
	}
	count, err := bound.CallUint(viewer, "monthCounter")
	if err != nil {
		return nil, fmt.Errorf("core: version %s has no payment history: %w", addr, err)
	}
	var out []PaymentRecord
	for i := uint64(0); i < count.Uint64(); i++ {
		vals, err := bound.Call(viewer, "paidrents", i)
		if err != nil {
			return nil, err
		}
		out = append(out, PaymentRecord{
			Month:  vals[0].(uint256.Int).Uint64(),
			Amount: vals[1].(uint256.Int),
		})
	}
	return out, nil
}

// SealHistory computes the commitment over a version's executed
// payments and stores it in the data contract under the version's
// namespace. Called by the manager when the version is superseded, it
// freezes the executed part of the contract.
func (s *RentalService) SealHistory(from, addr ethtypes.Address) (ethtypes.Hash, error) {
	records, err := s.readHistory(from, addr)
	if err != nil {
		return ethtypes.Hash{}, err
	}
	digest := historyDigest(addr, records)
	if _, err := s.M.SetValue(from, addr, HistoryCommitmentKey, digest.Hex()); err != nil {
		return ethtypes.Hash{}, err
	}
	return digest, nil
}

// VerifyHistory re-reads the version's executed payments and checks
// them against the sealed commitment.
func (s *RentalService) VerifyHistory(viewer, addr ethtypes.Address) error {
	sealed, err := s.M.GetValue(viewer, addr, HistoryCommitmentKey)
	if err != nil {
		return err
	}
	if sealed == "" {
		return ErrNoCommitment
	}
	records, err := s.readHistory(viewer, addr)
	if err != nil {
		return err
	}
	if historyDigest(addr, records).Hex() != sealed {
		return ErrHistoryTampered
	}
	return nil
}

// consentDigest is the message a tenant signs to approve a
// modification: keccak("legalchain-consent" || old || new).
func consentDigest(oldAddr, newAddr ethtypes.Address) ethtypes.Hash {
	return ethtypes.Keccak256([]byte("legalchain-consent"), oldAddr[:], newAddr[:])
}

// SignConsent produces the tenant's off-chain approval of a
// modification, signed with their wallet key.
func SignConsent(ks *wallet.Keystore, tenant, oldAddr, newAddr ethtypes.Address) ([]byte, error) {
	digest := consentDigest(oldAddr, newAddr)
	sig, err := ks.SignDigest(tenant, digest[:])
	if err != nil {
		return nil, err
	}
	return sig.Serialize(), nil
}

// VerifyConsent checks a consent signature against the tenant address
// the OLD version records on chain — so the approval is bound to the
// party the immutable contract itself names.
func (s *RentalService) VerifyConsent(viewer, oldAddr, newAddr ethtypes.Address, consent []byte) error {
	bound, err := s.M.BindVersion(oldAddr)
	if err != nil {
		return err
	}
	tenant, err := bound.CallAddress(viewer, "tenant")
	if err != nil {
		return err
	}
	if tenant.IsZero() {
		return fmt.Errorf("core: old version has no tenant to consent")
	}
	sig, err := secp256k1.ParseSignature(consent)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadConsent, err)
	}
	digest := consentDigest(oldAddr, newAddr)
	pub, err := secp256k1.Recover(digest[:], sig)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadConsent, err)
	}
	if ethtypes.PubkeyToAddress(pub) != tenant {
		return ErrBadConsent
	}
	return nil
}

// ModifyWithConsent is Modify plus the trust extension: the tenant's
// signed approval is verified before anything is deployed, then the
// predecessor's executed history is sealed.
func (s *RentalService) ModifyWithConsent(landlord, prevAddr ethtypes.Address, terms ModifiedTerms, consentFor func(newAddr ethtypes.Address) ([]byte, error)) (*Deployment, error) {
	// Seal the executed part of the old contract first (future work #1).
	if _, err := s.SealHistory(landlord, prevAddr); err != nil {
		return nil, err
	}
	dep, err := s.Modify(landlord, prevAddr, terms)
	if err != nil {
		return nil, err
	}
	consent, err := consentFor(dep.Contract.Address)
	if err != nil {
		return nil, err
	}
	if err := s.VerifyConsent(landlord, prevAddr, dep.Contract.Address, consent); err != nil {
		// The deployment exists but is not consented: mark it rejected.
		s.M.UpdateRow(dep.Contract.Address, func(r *ContractRow) { r.State = StateRejected })
		return nil, err
	}
	return dep, nil
}
