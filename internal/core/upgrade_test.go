package core

import (
	"errors"
	"strings"
	"testing"

	"legalchain/internal/contracts"
	"legalchain/internal/ethtypes"
	"legalchain/internal/minisol"
	"legalchain/internal/uint256"
	"legalchain/internal/upgrade"
)

// degradedSrc drops most of BaseRental's public surface — the upgrade
// guard must refuse to link it as a successor.
const degradedSrc = `
pragma solidity ^0.5.0;

contract Degraded {
	uint public rent;
	address public next;
	address public previous;

	constructor(uint _rent) public payable { rent = _rent; }

	function setNext(address _next) public { next = _next; }
	function setPrev(address _previous) public { previous = _previous; }
	function getPrev() public view returns (address addr) { return previous; }
}
`

func v2Args() []interface{} {
	return []interface{}{ethtypes.Ether(1), ethtypes.Ether(2), uint256.NewUint64(12),
		"10115-Berlin-42", ethtypes.Ether(1), uint256.Zero, ethtypes.Ether(1)}
}

// expectRejection runs ModifyContract expecting the guard to refuse, and
// returns the structured report.
func expectRejection(t *testing.T, m *Manager, landlord, prevAddr ethtypes.Address,
	art *minisol.Artifact, opts ModifyOptions, args ...interface{}) *upgrade.Report {
	t.Helper()
	_, err := m.ModifyContract(landlord, prevAddr, art, opts, args...)
	if err == nil {
		t.Fatal("incompatible candidate was admitted")
	}
	var rej *upgrade.RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *upgrade.RejectionError", err)
	}
	return rej.Report
}

// requireUnlinked asserts the guard refused BEFORE touching the chain:
// the predecessor's next pointer is still zero and its row still active.
func requireUnlinked(t *testing.T, m *Manager, viewer, prevAddr ethtypes.Address) {
	t.Helper()
	bound, err := m.BindVersion(prevAddr)
	if err != nil {
		t.Fatal(err)
	}
	next, err := bound.CallAddress(viewer, "getNext")
	if err != nil {
		t.Fatal(err)
	}
	if !next.IsZero() {
		t.Fatalf("rejected candidate was still linked: next = %s", next)
	}
	row, err := m.GetRow(prevAddr)
	if err != nil {
		t.Fatal(err)
	}
	if row.State != StateActive {
		t.Fatalf("predecessor row state = %q after rejection", row.State)
	}
}

func TestModifyRejectsRemovedSelector(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	v1 := deployRental(t, m, landlord)

	art, err := minisol.CompileContract(degradedSrc, "Degraded")
	if err != nil {
		t.Fatal(err)
	}
	report := expectRejection(t, m, landlord, v1.Contract.Address, art, ModifyOptions{}, ethtypes.Ether(1))

	found := false
	for _, f := range report.Failures {
		if f.Rule == upgrade.RuleSelectorRemoved && strings.Contains(f.Subject, "payRent") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s failure for payRent in %+v", upgrade.RuleSelectorRemoved, report.Failures)
	}
	requireUnlinked(t, m, landlord, v1.Contract.Address)

	// The rejection is part of the evidence line, recoverable later.
	rejs, err := m.Rejections(landlord, v1.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 || rejs[0].Candidate != "Degraded" {
		t.Fatalf("recorded rejections = %+v", rejs)
	}
}

func TestModifyRejectsReassignedSlot(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	v1 := deployRental(t, m, landlord)

	// Same ABI surface, tampered layout: two retained fields swap slots.
	orig := contracts.MustArtifact("RentalAgreementV2")
	art := *orig
	layout := *orig.Layout
	layout.Vars = append([]minisol.LayoutVar(nil), orig.Layout.Vars...)
	layout.Vars[1].Slot, layout.Vars[2].Slot = layout.Vars[2].Slot, layout.Vars[1].Slot
	art.Layout = &layout

	report := expectRejection(t, m, landlord, v1.Contract.Address, &art, ModifyOptions{}, v2Args()...)
	found := false
	for _, f := range report.Failures {
		if f.Rule == upgrade.RuleSlotMoved {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s failure in %+v", upgrade.RuleSlotMoved, report.Failures)
	}
	requireUnlinked(t, m, landlord, v1.Contract.Address)
}

func TestModifyRejectsFailingProperty(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	v1 := deployRental(t, m, landlord)

	art := contracts.MustArtifact("RentalAgreementV2")
	opts := ModifyOptions{Properties: []upgrade.Property{
		{Name: "rent-is-two-ether", Method: "rent", Want: ethtypes.Ether(2).String()},
	}}
	report := expectRejection(t, m, landlord, v1.Contract.Address, art, opts, v2Args()...)

	found := false
	for _, f := range report.Failures {
		if f.Rule == upgrade.RulePropertyFailed {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s failure in %+v", upgrade.RulePropertyFailed, report.Failures)
	}
	if len(report.Properties) != 1 || report.Properties[0].OK ||
		report.Properties[0].Got != ethtypes.Ether(1).String() {
		t.Fatalf("property results = %+v", report.Properties)
	}
	requireUnlinked(t, m, landlord, v1.Contract.Address)
}

func TestModifyAdmitsCompatibleWithProperties(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)

	// The rental service declares matching properties by default; the
	// modification must sail through and record nothing.
	v2, err := svc.Modify(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rejs, _ := m.Rejections(landlord, v1.Contract.Address); len(rejs) != 0 {
		t.Fatalf("clean modification recorded rejections: %+v", rejs)
	}
	// The new version's layout is published for the next round.
	layout, err := m.ResolveLayout(v2.Contract.Address)
	if err != nil || layout == nil {
		t.Fatalf("layout not published: %v", err)
	}
	if _, ok := layout.Var("maintenanceFee"); !ok {
		t.Fatalf("published layout lacks maintenanceFee: %+v", layout)
	}
}

func TestInPlaceMigrationAdoptsNamespace(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)

	// Seed extra pairs beyond the snapshot keys.
	for _, kv := range [][2]string{{"clause.pets", "allowed"}, {"clause.parking", "spot 7"}} {
		if _, err := m.SetValue(landlord, v1.Contract.Address, kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	v2, err := svc.Modify(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The whole namespace is visible under v2 without per-pair copies.
	snap, err := m.LoadSnapshot(landlord, v2.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if snap["clause.pets"] != "allowed" || snap["house"] != "10115-Berlin-42" {
		t.Fatalf("adopted snapshot = %+v", snap)
	}
	if v, err := m.GetValue(landlord, v2.Contract.Address, "clause.parking"); err != nil || v != "spot 7" {
		t.Fatalf("GetValue through alias = %q, %v", v, err)
	}

	// Writes under v2 shadow the adopted value without touching v1's.
	if _, err := m.SetValue(landlord, v2.Contract.Address, "clause.pets", "forbidden"); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.GetValue(landlord, v2.Contract.Address, "clause.pets"); v != "forbidden" {
		t.Fatalf("override = %q", v)
	}
	if v, _ := m.GetValue(landlord, v1.Contract.Address, "clause.pets"); v != "allowed" {
		t.Fatalf("predecessor namespace mutated: %q", v)
	}
}

// TestAdoptionBeatsCopyOnGas pins the FlexiContracts claim the in-place
// path exists for: adoption cost is constant while the per-pair
// re-import grows with the pair count.
func TestAdoptionBeatsCopyOnGas(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	v1 := deployRental(t, m, landlord)

	for i := 0; i < 6; i++ {
		key := "k" + string(rune('0'+i))
		if _, err := m.SetValue(landlord, v1.Contract.Address, key, "value-"+key); err != nil {
			t.Fatal(err)
		}
	}
	copyDst := ethtypes.HexToAddress("0x00000000000000000000000000000000000000a1")
	adoptDst := ethtypes.HexToAddress("0x00000000000000000000000000000000000000a2")
	_, copyGas, err := m.MigrateData(landlord, v1.Contract.Address, copyDst)
	if err != nil {
		t.Fatal(err)
	}
	adoptGas, err := m.AdoptNamespace(landlord, adoptDst, v1.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("migration gas for %d pairs: copy=%d adopt=%d", 6, copyGas, adoptGas)
	if adoptGas*2 >= copyGas {
		t.Fatalf("adoption gas %d not clearly below copy gas %d for 6 pairs", adoptGas, copyGas)
	}
}

func TestAuditChainReportsDiffs(t *testing.T) {
	m, accs := rig(t)
	landlord, tenant := accs[0].Address, accs[1].Address
	svc := NewRentalService(m)
	v1 := deployRental(t, m, landlord)
	if err := svc.Confirm(tenant, v1.Contract.Address); err != nil {
		t.Fatal(err)
	}
	v2, err := svc.Modify(landlord, v1.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	v3, err := svc.Modify(landlord, v2.Contract.Address, ModifiedTerms{
		Rent: ethtypes.Ether(2), Deposit: ethtypes.Ether(2), Months: 12,
		House: "10115-Berlin-42", MaintenanceFee: ethtypes.Ether(1),
		Discount: uint256.Zero, Fine: ethtypes.Ether(1),
	})
	if err != nil {
		t.Fatal(err)
	}

	report, err := m.AuditChain(landlord, v3.Contract.Address)
	if err != nil {
		t.Fatal(err)
	}
	if !report.ChainVerified || len(report.Versions) != 3 || len(report.Pairs) != 2 {
		t.Fatalf("report shape: verified=%v versions=%d pairs=%d",
			report.ChainVerified, len(report.Versions), len(report.Pairs))
	}
	for _, v := range report.Versions {
		if !v.HasABI || !v.HasLayout || v.CodeSize == 0 || v.CodeHash == "" {
			t.Fatalf("version node incomplete: %+v", v)
		}
	}
	p01 := report.Pairs[0]
	if !p01.BytecodeChanged || p01.CodeSizeDelta <= 0 {
		t.Fatalf("v1->v2 bytecode diff: %+v", p01)
	}
	if p01.ABI == nil || len(p01.ABI.AddedMethods) == 0 {
		t.Fatalf("v1->v2 ABI diff missing the maintenance surface: %+v", p01.ABI)
	}
	if p01.Layout == nil || !p01.Layout.Compatible || len(p01.Layout.Added) == 0 {
		t.Fatalf("v1->v2 layout diff: %+v", p01.Layout)
	}
	if len(p01.Behaviour) == 0 {
		t.Fatal("v1->v2 behaviour diff empty: no shared zero-arg views traced")
	}
	p12 := report.Pairs[1]
	if p12.BytecodeChanged || (p12.ABI != nil && !p12.ABI.Empty()) {
		t.Fatalf("v2->v3 share code+ABI but diff says otherwise: %+v", p12)
	}
}

// TestSkipVerifyEscapeHatch: the unguarded path still works for callers
// that explicitly opt out (benchmarks of the legacy flow).
func TestSkipVerifyEscapeHatch(t *testing.T) {
	m, accs := rig(t)
	landlord := accs[0].Address
	v1 := deployRental(t, m, landlord)

	art, err := minisol.CompileContract(degradedSrc, "Degraded")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ModifyContract(landlord, v1.Contract.Address, art,
		ModifyOptions{SkipVerify: true}, ethtypes.Ether(1)); err != nil {
		t.Fatalf("SkipVerify path failed: %v", err)
	}
}
