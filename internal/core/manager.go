// Package core implements the paper's contribution: the contract
// manager of the business tier. It orchestrates
//
//   - deployment of legal smart contracts to the blockchain tier,
//   - the versioning mechanism of Fig. 2 — every modification deploys a
//     new contract and links it into an on-chain doubly linked list whose
//     traversal is the tamper-evident "evidence line" of changes,
//   - ABI resolution through the content-addressed store (the paper
//     stores each version's ABI in IPFS keyed by contract address, so an
//     address recovered from a next/prev pointer suffices to rebuild a
//     full binding),
//   - data/logic separation through the DataStorage contract of Fig. 3,
//     migrating the predecessor's key/value state to each new version,
//   - the off-chain contract registry rows of the data tier.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"legalchain/internal/abi"
	"legalchain/internal/contracts"
	"legalchain/internal/docstore"
	"legalchain/internal/ethtypes"
	"legalchain/internal/ipfs"
	"legalchain/internal/minisol"
	"legalchain/internal/upgrade"
	"legalchain/internal/web3"
)

// Errors returned by the manager.
var (
	ErrNoABI          = errors.New("core: no ABI published for address")
	ErrNotVersioned   = errors.New("core: contract lacks version pointers")
	ErrChainCorrupted = errors.New("core: version chain pointers are inconsistent")
)

// Row states in the contracts table (the paper's active / inactive /
// terminated states, with "rejected" for a modification the tenant
// refused).
const (
	StateActive     = "active"
	StateSuperseded = "inactive"
	StateTerminated = "terminated"
	StateRejected   = "rejected"
)

// Table names in the docstore.
const (
	TableContracts = "contracts"
	TableDocuments = "documents"
	TableArtifacts = "artifacts"
)

// ContractRow is the off-chain registry row for one deployed version —
// the paper's Contract(landlord, tenant, version, state, abi) table.
type ContractRow struct {
	Address     string `json:"address"`
	Name        string `json:"name"`
	Landlord    string `json:"landlord"`
	Tenant      string `json:"tenant,omitempty"`
	Version     int    `json:"version"`
	State       string `json:"state"`
	ABICID      string `json:"abiCid"`
	DocumentCID string `json:"documentCid,omitempty"`
	Prev        string `json:"prev,omitempty"`
	Next        string `json:"next,omitempty"`
}

// Manager is the contract manager.
type Manager struct {
	Client *web3.Client
	IPFS   *ipfs.Node
	Store  *docstore.Store

	mu          sync.Mutex
	dataStorage *web3.BoundContract
	notary      *web3.BoundContract
	abiCache    map[ethtypes.Address]*abi.ABI
}

// NewManager wires the three tiers together.
func NewManager(client *web3.Client, node *ipfs.Node, store *docstore.Store) *Manager {
	return &Manager{
		Client:   client,
		IPFS:     node,
		Store:    store,
		abiCache: map[ethtypes.Address]*abi.ABI{},
	}
}

// EnsureDataStorage deploys the shared DataStorage contract on first use
// (owner = from) and returns its binding.
func (m *Manager) EnsureDataStorage(from ethtypes.Address) (*web3.BoundContract, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dataStorage != nil {
		return m.dataStorage, nil
	}
	art, err := contracts.Artifact("DataStorage")
	if err != nil {
		return nil, err
	}
	bound, _, err := m.Client.Deploy(web3.TxOpts{From: from}, art.ABI, art.Bytecode)
	if err != nil {
		return nil, fmt.Errorf("core: deploying DataStorage: %w", err)
	}
	m.dataStorage = bound
	return bound, nil
}

// AttachDataStorage binds to an existing DataStorage deployment.
func (m *Manager) AttachDataStorage(addr ethtypes.Address) error {
	art, err := contracts.Artifact("DataStorage")
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.dataStorage = m.Client.Bind(addr, art.ABI)
	m.mu.Unlock()
	return nil
}

// DataStorageAddress returns the shared data contract address (zero if
// not deployed yet).
func (m *Manager) DataStorageAddress() ethtypes.Address {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dataStorage == nil {
		return ethtypes.Address{}
	}
	return m.dataStorage.Address
}

// EnsureNotary deploys the payment notary on first use (bound to the
// shared DataStorage, which it deploys too if needed) and authorizes it
// on the ledger, so rent relayed through it leaves evidence in the data
// tier. from must be the DataStorage owner.
func (m *Manager) EnsureNotary(from ethtypes.Address) (*web3.BoundContract, error) {
	ds, err := m.EnsureDataStorage(from)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.notary != nil {
		return m.notary, nil
	}
	bound, _, err := m.Client.Deploy(web3.TxOpts{From: from, GasLimit: 500_000},
		contracts.NotaryABI(), contracts.PackNotaryDeploy(ds.Address))
	if err != nil {
		return nil, fmt.Errorf("core: deploying payment notary: %w", err)
	}
	if _, err := ds.Transact(web3.TxOpts{From: from}, "authorize", bound.Address); err != nil {
		return nil, fmt.Errorf("core: authorizing notary: %w", err)
	}
	m.notary = bound
	return bound, nil
}

// NotaryAddress returns the payment notary address (zero if not
// deployed yet).
func (m *Manager) NotaryAddress() ethtypes.Address {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.notary == nil {
		return ethtypes.Address{}
	}
	return m.notary.Address
}

// wireNotary points a freshly deployed version at the payment notary
// when both sides support it: the version exposes setPaymentProxy and a
// notary has been deployed. Versions without the method (escrow, user
// uploads) are skipped silently.
func (m *Manager) wireNotary(from ethtypes.Address, bound *web3.BoundContract) (uint64, error) {
	if _, ok := bound.ABI.Methods["setPaymentProxy"]; !ok {
		return 0, nil
	}
	notary := m.NotaryAddress()
	if notary == (ethtypes.Address{}) {
		return 0, nil
	}
	rcpt, err := bound.Transact(web3.TxOpts{From: from}, "setPaymentProxy", notary)
	if err != nil {
		return 0, fmt.Errorf("core: wiring payment notary: %w", err)
	}
	return rcpt.GasUsed, nil
}

// PublishABI pins the ABI JSON in the content store and publishes
// address → CID in the name index.
func (m *Manager) PublishABI(addr ethtypes.Address, abiJSON []byte) (ipfs.CID, error) {
	cid, err := m.IPFS.AddDocument(addr.Hex(), abiJSON)
	if err != nil {
		return "", fmt.Errorf("core: publishing ABI: %w", err)
	}
	return cid, nil
}

// PublishLayout pins a version's storage layout next to its ABI, keyed
// "layout:<address>", so the upgrade guard and the auditor can recover
// it from an address alone the way ResolveABI recovers the interface.
func (m *Manager) PublishLayout(addr ethtypes.Address, layout *minisol.Layout) (ipfs.CID, error) {
	if layout == nil {
		return "", nil
	}
	cid, err := m.IPFS.AddDocument("layout:"+addr.Hex(), layout.JSON())
	if err != nil {
		return "", fmt.Errorf("core: publishing layout: %w", err)
	}
	return cid, nil
}

// ResolveLayout fetches a version's stored storage layout. Versions
// deployed before layouts were published resolve to (nil, nil); the
// guard then skips the layout check with a note instead of failing.
func (m *Manager) ResolveLayout(addr ethtypes.Address) (*minisol.Layout, error) {
	raw, err := m.IPFS.GetByName("layout:" + addr.Hex())
	if err != nil {
		return nil, nil
	}
	return minisol.ParseLayout(raw)
}

// ResolveABI fetches and parses the ABI of a deployed version from the
// content store, given only its address — the IPFS lookup of Fig. 2.
func (m *Manager) ResolveABI(addr ethtypes.Address) (*abi.ABI, error) {
	m.mu.Lock()
	if cached, ok := m.abiCache[addr]; ok {
		m.mu.Unlock()
		return cached, nil
	}
	m.mu.Unlock()
	raw, err := m.IPFS.GetByName(addr.Hex())
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrNoABI, addr, err)
	}
	parsed, err := abi.ParseJSON(raw)
	if err != nil {
		return nil, fmt.Errorf("core: stored ABI for %s is invalid: %w", addr, err)
	}
	m.mu.Lock()
	m.abiCache[addr] = parsed
	m.mu.Unlock()
	return parsed, nil
}

// BindVersion reconstructs a full contract binding from an address
// alone, via the published ABI.
func (m *Manager) BindVersion(addr ethtypes.Address) (*web3.BoundContract, error) {
	parsed, err := m.ResolveABI(addr)
	if err != nil {
		return nil, err
	}
	return m.Client.Bind(addr, parsed), nil
}

// Deployment describes one deployed legal-contract version.
type Deployment struct {
	Contract *web3.BoundContract
	Row      ContractRow
	GasUsed  uint64
}

// DeployVersion deploys a contract as version 1 of a new chain: the code
// goes to the blockchain tier, the ABI to IPFS, the legal document (if
// any) to IPFS plus the documents table, and the registry row to the
// contracts table.
func (m *Manager) DeployVersion(from ethtypes.Address, art *minisol.Artifact, legalDoc []byte, args ...interface{}) (*Deployment, error) {
	bound, rcpt, err := m.Client.Deploy(web3.TxOpts{From: from}, art.ABI, art.Bytecode, args...)
	if err != nil {
		return nil, fmt.Errorf("core: deploy %s: %w", art.Name, err)
	}
	gas := rcpt.GasUsed
	if wireGas, err := m.wireNotary(from, bound); err != nil {
		return nil, err
	} else {
		gas += wireGas
	}
	cid, err := m.PublishABI(bound.Address, art.ABIJSON)
	if err != nil {
		return nil, err
	}
	if _, err := m.PublishLayout(bound.Address, art.Layout); err != nil {
		return nil, err
	}
	row := ContractRow{
		Address:  bound.Address.Hex(),
		Name:     art.Name,
		Landlord: from.Hex(),
		Version:  1,
		State:    StateActive,
		ABICID:   string(cid),
	}
	if len(legalDoc) > 0 {
		docCID, err := m.IPFS.Blobs.Add(legalDoc)
		if err != nil {
			return nil, fmt.Errorf("core: storing legal document: %w", err)
		}
		row.DocumentCID = string(docCID)
		if err := m.Store.Put(TableDocuments, row.Address, string(docCID)); err != nil {
			return nil, err
		}
	}
	if err := m.putRow(row); err != nil {
		return nil, err
	}
	return &Deployment{Contract: bound, Row: row, GasUsed: gas}, nil
}

// ModifyOptions tune ModifyContract.
type ModifyOptions struct {
	// MigrateData carries the predecessor's DataStorage key/value pairs
	// over to the new version: by default in place, through one
	// adoptNamespace transaction; see CopyMigration.
	MigrateData bool
	// CopyMigration forces the legacy pair-by-pair setValue re-import
	// (~96k gas per pair) instead of the in-place namespace adoption.
	CopyMigration bool
	// SnapshotKeys, when non-empty, are read from the old contract via
	// its getters and written into DataStorage before migration, so the
	// new version can import them (the paper's data/logic separation).
	SnapshotKeys []string
	// Properties are user-declared behavioural assertions the candidate
	// must satisfy when deployed on a fork of the live head, checked by
	// the upgrade guard before the versions are linked.
	Properties []upgrade.Property
	// SkipVerify bypasses the upgrade guard entirely (tests and
	// benchmarks of the unguarded path only).
	SkipVerify bool
	// LegalDoc is the updated legal document (PDF) for the new version.
	LegalDoc []byte
}

// VerifyUpgrade runs the guarded-upgrade checks for a candidate
// artifact against a deployed predecessor without touching the chain:
// ABI surface, storage layout (when the predecessor published one), and
// the declared properties executed on a fork of the live head. The
// returned report says whether ModifyContract would admit the
// candidate.
func (m *Manager) VerifyUpgrade(from, prevAddr ethtypes.Address, art *minisol.Artifact, props []upgrade.Property, args ...interface{}) (*upgrade.Report, error) {
	prevABI, err := m.ResolveABI(prevAddr)
	if err != nil {
		return nil, err
	}
	prevLayout, err := m.ResolveLayout(prevAddr)
	if err != nil {
		return nil, err
	}
	var view upgrade.ForkView
	if hv, ok := m.Client.Backend().(web3.HeadViewer); ok {
		view = hv.HeadView()
	}
	spec := upgrade.Spec{PrevAddress: prevAddr, PrevABI: prevABI, PrevLayout: prevLayout, Properties: props}
	cand := upgrade.Candidate{Name: art.Name, ABI: art.ABI, Layout: art.Layout, Bytecode: art.Bytecode, CtorArgs: args}
	return upgrade.Verify(spec, cand, view, from), nil
}

// Evidence keys under which upgrade rejections are recorded in the
// predecessor's DataStorage namespace.
const (
	rejectionCountKey  = "upgrade.rejections"
	rejectionKeyPrefix = "upgrade.rejected."
)

// recordRejection appends the failed verification report to the
// predecessor's evidence line in DataStorage, so the refusal itself is
// part of the tamper-evident modification history.
func (m *Manager) recordRejection(from, prevAddr ethtypes.Address, report *upgrade.Report) error {
	n := 0
	if s, err := m.GetValue(from, prevAddr, rejectionCountKey); err == nil && s != "" {
		n, _ = strconv.Atoi(s)
	}
	raw, err := json.Marshal(report)
	if err != nil {
		return fmt.Errorf("core: encoding rejection report: %w", err)
	}
	if _, err := m.SetValue(from, prevAddr, rejectionKeyPrefix+strconv.Itoa(n), string(raw)); err != nil {
		return err
	}
	_, err = m.SetValue(from, prevAddr, rejectionCountKey, strconv.Itoa(n+1))
	return err
}

// Rejections returns the upgrade-rejection reports recorded in a
// version's evidence line, oldest first.
func (m *Manager) Rejections(from, addr ethtypes.Address) ([]*upgrade.Report, error) {
	s, err := m.GetValue(from, addr, rejectionCountKey)
	if err != nil || s == "" {
		return nil, err
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return nil, fmt.Errorf("core: bad rejection count %q for %s", s, addr)
	}
	out := make([]*upgrade.Report, 0, n)
	for i := 0; i < n; i++ {
		raw, err := m.GetValue(from, addr, rejectionKeyPrefix+strconv.Itoa(i))
		if err != nil {
			return nil, err
		}
		var r upgrade.Report
		if json.Unmarshal([]byte(raw), &r) != nil {
			continue
		}
		out = append(out, &r)
	}
	return out, nil
}

// ModifyContract implements the modification flow of Figs. 2 and 11,
// guarded: the candidate is verified against the predecessor's spec
// (ABI surface, storage layout, declared properties on a fork of the
// head) BEFORE anything is deployed or linked. A failing candidate is
// recorded in the predecessor's evidence line and rejected with a
// structured *upgrade.RejectionError. An admitted candidate is
// deployed, linked into the doubly linked list on chain, its ABI and
// layout published, data optionally snapshotted and migrated (in place
// by default), and the registry rows updated (the old version becomes
// inactive).
func (m *Manager) ModifyContract(from ethtypes.Address, prevAddr ethtypes.Address, art *minisol.Artifact, opts ModifyOptions, args ...interface{}) (*Deployment, error) {
	prev, err := m.BindVersion(prevAddr)
	if err != nil {
		return nil, err
	}
	prevRow, err := m.GetRow(prevAddr)
	if err != nil {
		return nil, err
	}

	// The upgrade guard: verify the candidate before any state changes.
	if !opts.SkipVerify {
		report, err := m.VerifyUpgrade(from, prevAddr, art, opts.Properties, args...)
		if err != nil {
			return nil, err
		}
		if !report.OK() {
			if rerr := m.recordRejection(from, prevAddr, report); rerr != nil {
				return nil, fmt.Errorf("core: recording upgrade rejection: %w", rerr)
			}
			return nil, &upgrade.RejectionError{Report: report}
		}
	}

	// Optional: snapshot selected fields of the old version into the
	// shared data contract under the old address.
	if len(opts.SnapshotKeys) > 0 {
		if _, err := m.SnapshotContract(from, prev, opts.SnapshotKeys); err != nil {
			return nil, err
		}
	}

	// Deploy the new version.
	bound, rcpt, err := m.Client.Deploy(web3.TxOpts{From: from}, art.ABI, art.Bytecode, args...)
	if err != nil {
		return nil, fmt.Errorf("core: deploy new version: %w", err)
	}
	gas := rcpt.GasUsed

	// Link the versions on chain (Fig. 2): the contract manager sets the
	// next and previous pointers whenever a new version is deployed.
	if r, err := prev.Transact(web3.TxOpts{From: from}, "setNext", bound.Address); err != nil {
		return nil, fmt.Errorf("core: linking prev.next: %w", err)
	} else {
		gas += r.GasUsed
	}
	if r, err := bound.Transact(web3.TxOpts{From: from}, "setPrev", prevAddr); err != nil {
		return nil, fmt.Errorf("core: linking next.prev: %w", err)
	} else {
		gas += r.GasUsed
	}
	if wireGas, err := m.wireNotary(from, bound); err != nil {
		return nil, err
	} else {
		gas += wireGas
	}

	cid, err := m.PublishABI(bound.Address, art.ABIJSON)
	if err != nil {
		return nil, err
	}
	if _, err := m.PublishLayout(bound.Address, art.Layout); err != nil {
		return nil, err
	}

	// Migrate data under the new address: one namespace-adoption
	// transaction by default, the pair-by-pair re-import when forced.
	if opts.MigrateData {
		if opts.CopyMigration {
			_, mgGas, err := m.MigrateData(from, prevAddr, bound.Address)
			if err != nil {
				return nil, err
			}
			gas += mgGas
		} else {
			mgGas, err := m.AdoptNamespace(from, bound.Address, prevAddr)
			if err != nil {
				return nil, err
			}
			gas += mgGas
		}
	}

	// Registry rows: old becomes inactive, new becomes the active head.
	prevRow.State = StateSuperseded
	prevRow.Next = bound.Address.Hex()
	if err := m.putRow(prevRow); err != nil {
		return nil, err
	}
	row := ContractRow{
		Address:  bound.Address.Hex(),
		Name:     art.Name,
		Landlord: from.Hex(),
		Tenant:   prevRow.Tenant,
		Version:  prevRow.Version + 1,
		State:    StateActive,
		ABICID:   string(cid),
		Prev:     prevAddr.Hex(),
	}
	if len(opts.LegalDoc) > 0 {
		docCID, err := m.IPFS.Blobs.Add(opts.LegalDoc)
		if err != nil {
			return nil, err
		}
		row.DocumentCID = string(docCID)
		m.Store.Put(TableDocuments, row.Address, string(docCID))
	}
	if err := m.putRow(row); err != nil {
		return nil, err
	}
	return &Deployment{Contract: bound, Row: row, GasUsed: gas}, nil
}

// --- registry rows ----------------------------------------------------------

func (m *Manager) putRow(row ContractRow) error {
	return m.Store.Put(TableContracts, strings.ToLower(row.Address), row)
}

// GetRow fetches the registry row of a version.
func (m *Manager) GetRow(addr ethtypes.Address) (ContractRow, error) {
	var row ContractRow
	err := m.Store.Get(TableContracts, strings.ToLower(addr.Hex()), &row)
	return row, err
}

// UpdateRow mutates a registry row through fn.
func (m *Manager) UpdateRow(addr ethtypes.Address, fn func(*ContractRow)) error {
	row, err := m.GetRow(addr)
	if err != nil {
		return err
	}
	fn(&row)
	return m.putRow(row)
}

// Rows lists all registry rows.
func (m *Manager) Rows() []ContractRow {
	var out []ContractRow
	m.Store.Scan(TableContracts, func(key string, raw json.RawMessage) bool {
		var row ContractRow
		if json.Unmarshal(raw, &row) == nil {
			out = append(out, row)
		}
		return true
	})
	return out
}

// LegalDocument fetches the stored legal document of a version from the
// content store.
func (m *Manager) LegalDocument(addr ethtypes.Address) ([]byte, error) {
	row, err := m.GetRow(addr)
	if err != nil {
		return nil, err
	}
	if row.DocumentCID == "" {
		return nil, fmt.Errorf("core: no document for %s", addr)
	}
	return m.IPFS.Blobs.Get(ipfs.CID(row.DocumentCID))
}
