package app

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"legalchain/internal/core"
	"legalchain/internal/ethtypes"
	"legalchain/internal/obs"
	"legalchain/internal/uint256"
	"legalchain/internal/upgrade"
	"legalchain/internal/web3"
)

// Versioned REST API for the contract manager, coexisting with the HTML
// UI and the legacy /api/ endpoints. All endpoints require the session
// cookie and speak a uniform error envelope:
//
//	{"error":{"code":"bad_request","message":"..."}}
//
// Routes:
//
//	GET  /api/v1/me                        session user + balance
//	GET  /api/v1/contracts                 dashboard rows for the user
//	POST /api/v1/contracts                 deploy a rental agreement
//	GET  /api/v1/contracts/{addr}          row + live state + version chain + payments
//	GET  /api/v1/contracts/{addr}/audit    full chain audit (code/ABI/layout/behaviour diffs)
//	POST /api/v1/contracts/{addr}/actions  lifecycle action (confirm, pay, ...)

// Machine-readable error codes of the v1 envelope.
const (
	v1Unauthorized    = "unauthorized"
	v1NotFound        = "not_found"
	v1BadRequest      = "bad_request"
	v1NotAllowed      = "method_not_allowed"
	v1Internal        = "internal"
	v1UpgradeRejected = "upgrade_rejected"
)

// writeV1Error emits the uniform v1 error envelope. The request ID the
// obs middleware assigned rides along, so a failing API response can be
// joined with the server log line and the trace it produced:
//
//	{"error":{"code":"bad_request","message":"...","requestId":"..."}}
func writeV1Error(w http.ResponseWriter, r *http.Request, status int, code, message string) {
	writeV1ErrorData(w, r, status, code, message, nil)
}

// writeV1ErrorData is writeV1Error with a structured data payload — the
// upgrade-rejection envelope carries the full verification report:
//
//	{"error":{"code":"upgrade_rejected","message":"...","data":{"report":{...}}}}
func writeV1ErrorData(w http.ResponseWriter, r *http.Request, status int, code, message string, data interface{}) {
	e := map[string]interface{}{"code": code, "message": message}
	if r != nil {
		if rid := obs.RequestIDFrom(r.Context()); rid != "" {
			e["requestId"] = rid
		}
	}
	if data != nil {
		e["data"] = data
	}
	writeJSON(w, status, map[string]interface{}{"error": e})
}

func (a *App) apiV1Routes(handle func(pattern string, h http.HandlerFunc)) {
	handle("/api/v1/me", a.withUser(a.v1Me))
	handle("/api/v1/contracts", a.withUser(a.v1Contracts))
	handle("/api/v1/contracts/", a.withUser(a.v1Contract))
	handle("/api/v1/heads", a.withUser(a.v1Heads))
	handle("/api/v1/alerts", a.withUser(a.v1Alerts))
}

// v1Head describes the chain head a response was served from, so API
// consumers can correlate reads across endpoints. Populated when the
// backend can pin an immutable head view (in-process chains).
func (a *App) v1Head() map[string]interface{} {
	hv, ok := a.Manager.Client.Backend().(web3.HeadViewer)
	if !ok {
		return nil
	}
	v := hv.HeadView()
	return map[string]interface{}{
		"number":    v.BlockNumber(),
		"hash":      v.Head().Hash().Hex(),
		"stateRoot": v.StateRoot().Hex(),
	}
}

func (a *App) v1Me(w http.ResponseWriter, r *http.Request, u *User) {
	if r.Method != http.MethodGet {
		writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "GET only")
		return
	}
	out := map[string]interface{}{
		"name":    u.Name,
		"email":   u.Email,
		"address": u.Address,
	}
	// Prefer a pinned head view so the balance and the reported head
	// describe the same chain snapshot; fall back to the plain backend
	// read for HTTP backends.
	var bal uint256.Int
	if hv, ok := a.Manager.Client.Backend().(web3.HeadViewer); ok {
		v := hv.HeadView()
		bal = v.GetBalance(u.Addr())
		out["head"] = map[string]interface{}{
			"number":    v.BlockNumber(),
			"hash":      v.Head().Hash().Hex(),
			"stateRoot": v.StateRoot().Hex(),
		}
	} else {
		bal, _ = a.Manager.Client.Backend().GetBalance(u.Addr())
	}
	out["balanceWei"] = bal.String()
	out["balanceEth"] = ethtypes.FormatEther(bal)
	writeJSON(w, http.StatusOK, out)
}

// v1Terms is the JSON shape of rental terms for deploys and modifies.
// Ether amounts are decimal strings ("1.5"), matching the HTML forms.
type v1Terms struct {
	RentEth        string `json:"rentEth"`
	DepositEth     string `json:"depositEth"`
	Months         uint64 `json:"months"`
	House          string `json:"house"`
	MaintenanceEth string `json:"maintenanceEth"`
	DiscountEth    string `json:"discountEth"`
	FineEth        string `json:"fineEth"`
	Document       string `json:"document"`
}

func (a *App) v1Contracts(w http.ResponseWriter, r *http.Request, u *User) {
	switch r.Method {
	case http.MethodGet:
		limit, cursor, perr := pageParams(r)
		if perr != nil {
			writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, perr.Error())
			return
		}
		since, perr := sinceParam(r)
		if perr != nil {
			writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, perr.Error())
			return
		}
		rows, err := a.Dashboard(u)
		if err != nil {
			writeV1Error(w, r, http.StatusInternalServerError, v1Internal, err.Error())
			return
		}
		rows, err = a.filterRowsSince(rows, since)
		if err != nil {
			writeV1Error(w, r, http.StatusInternalServerError, v1Internal, err.Error())
			return
		}
		page, next := pageContracts(rows, limit, cursor)
		out := map[string]interface{}{"contracts": page}
		if next != "" {
			out["nextCursor"] = next
		}
		writeJSON(w, http.StatusOK, out)

	case http.MethodPost:
		var body struct {
			Artifact string `json:"artifact"`
			v1Terms
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, "bad JSON body: "+err.Error())
			return
		}
		terms := core.RentalTerms{
			Rent:    weiOf(body.RentEth),
			Deposit: weiOf(body.DepositEth),
			Months:  body.Months,
			House:   body.House,
		}
		if body.Document != "" {
			terms.LegalDoc = []byte(body.Document)
		}
		var dep *core.Deployment
		var err error
		if body.Artifact != "" && !strings.EqualFold(body.Artifact, "BaseRental") {
			art, aerr := a.GetArtifact(body.Artifact)
			if aerr != nil {
				writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, aerr.Error())
				return
			}
			dep, err = a.Manager.DeployVersion(u.Addr(), art, terms.LegalDoc,
				terms.Rent, terms.Deposit, terms.Months, terms.House)
		} else {
			dep, err = a.Rental.DeployRental(u.Addr(), terms)
		}
		if err != nil {
			writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, map[string]interface{}{
			"address": dep.Row.Address,
			"gasUsed": dep.GasUsed,
			"row":     dep.Row,
		})

	default:
		writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "GET or POST only")
	}
}

// v1Contract routes /api/v1/contracts/{addr}[/actions].
func (a *App) v1Contract(w http.ResponseWriter, r *http.Request, u *User) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/contracts/")
	parts := strings.SplitN(rest, "/", 2)
	addrHex := parts[0]
	if !strings.HasPrefix(addrHex, "0x") || len(addrHex) != 42 {
		writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, "bad contract address")
		return
	}
	addr := ethtypes.HexToAddress(addrHex)
	sub := ""
	if len(parts) == 2 {
		sub = parts[1]
	}
	switch sub {
	case "":
		if r.Method != http.MethodGet {
			writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "GET only")
			return
		}
		a.v1ContractDetail(w, r, u, addr)
	case "actions":
		if r.Method != http.MethodPost {
			writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "POST only")
			return
		}
		a.v1ContractAction(w, r, u, addr)
	case "events":
		a.v1ContractEvents(w, r, u, addr)
	case "payments":
		if r.Method != http.MethodGet {
			writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "GET only")
			return
		}
		a.v1ContractPayments(w, r, u, addr)
	case "audit":
		if r.Method != http.MethodGet {
			writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "GET only")
			return
		}
		a.v1ContractAudit(w, r, u, addr)
	case "timeline":
		if r.Method != http.MethodGet {
			writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "GET only")
			return
		}
		a.v1ContractTimeline(w, r, u, addr)
	default:
		writeV1Error(w, r, http.StatusNotFound, v1NotFound, "unknown endpoint "+sub)
	}
}

// v1ContractDetail is the one-stop read: registry row, live chain
// state, the walked version chain with its verification verdict, and
// the cross-version payment history.
func (a *App) v1ContractDetail(w http.ResponseWriter, r *http.Request, u *User, addr ethtypes.Address) {
	row, err := a.Manager.GetRow(addr)
	if err != nil {
		writeV1Error(w, r, http.StatusNotFound, v1NotFound, err.Error())
		return
	}
	out := map[string]interface{}{"row": row}
	if head := a.v1Head(); head != nil {
		out["head"] = head
	}

	viewer := u.Addr()
	if bound, err := a.Manager.BindVersion(addr); err == nil {
		live := map[string]string{}
		for _, getter := range []string{"rent", "deposit", "state", "monthCounter"} {
			if v, err := bound.CallUint(viewer, getter); err == nil {
				live[getter] = v.String()
			}
		}
		if house, err := bound.CallString(viewer, "house"); err == nil {
			live["house"] = house
		}
		out["live"] = live
	}

	if line, err := a.Manager.WalkChain(addr); err == nil {
		type nodeJSON struct {
			Address string `json:"address"`
			Version int    `json:"version"`
			State   string `json:"state"`
			Prev    string `json:"prev,omitempty"`
			Next    string `json:"next,omitempty"`
		}
		nodes := make([]nodeJSON, len(line))
		for i, n := range line {
			nodes[i] = nodeJSON{Address: n.Address.Hex(), Version: n.Version, State: n.State}
			if !n.Prev.IsZero() {
				nodes[i].Prev = n.Prev.Hex()
			}
			if !n.Next.IsZero() {
				nodes[i].Next = n.Next.Hex()
			}
		}
		out["versions"] = nodes
		out["verified"] = core.VerifyChain(line) == nil
	}

	if rej, err := a.Manager.Rejections(viewer, addr); err == nil && len(rej) > 0 {
		out["rejections"] = rej
	}

	if hist, err := a.Rental.RentHistory(viewer, addr); err == nil {
		type payJSON struct {
			Version int    `json:"version"`
			Month   uint64 `json:"month"`
			Amount  string `json:"amountWei"`
			TxHash  string `json:"txHash,omitempty"`
			// Trace is a ready-to-send JSON-RPC invocation that replays
			// this payment with the callTracer attached.
			Trace interface{} `json:"trace,omitempty"`
		}
		pays := make([]payJSON, len(hist))
		for i, p := range hist {
			pays[i] = payJSON{Version: p.Version, Month: p.Month, Amount: p.Amount.String()}
			if !p.TxHash.IsZero() {
				pays[i].TxHash = p.TxHash.Hex()
				pays[i].Trace = map[string]interface{}{
					"method": "debug_traceTransaction",
					"params": []interface{}{p.TxHash.Hex(), map[string]string{"tracer": "callTracer"}},
				}
			}
		}
		out["payments"] = pays
	}
	writeJSON(w, http.StatusOK, out)
}

// v1ContractAudit renders the full chain audit of the version line
// containing addr: per-version code and artifacts, pairwise bytecode /
// ABI / layout / behaviour diffs, and any recorded upgrade rejections.
func (a *App) v1ContractAudit(w http.ResponseWriter, r *http.Request, u *User, addr ethtypes.Address) {
	if _, err := a.Manager.GetRow(addr); err != nil {
		writeV1Error(w, r, http.StatusNotFound, v1NotFound, err.Error())
		return
	}
	report, err := a.Manager.AuditChain(u.Addr(), addr)
	if err != nil {
		writeV1Error(w, r, http.StatusInternalServerError, v1Internal, err.Error())
		return
	}
	out := map[string]interface{}{"audit": report}
	if head := a.v1Head(); head != nil {
		out["head"] = head
	}
	writeJSON(w, http.StatusOK, out)
}

// v1ContractAction executes one lifecycle step. The action names match
// the HTML form routes; "modify" deploys a new linked version and
// returns its row.
func (a *App) v1ContractAction(w http.ResponseWriter, r *http.Request, u *User, addr ethtypes.Address) {
	if _, err := a.Manager.GetRow(addr); err != nil {
		writeV1Error(w, r, http.StatusNotFound, v1NotFound, err.Error())
		return
	}
	var body struct {
		Action string   `json:"action"`
		Terms  *v1Terms `json:"terms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, "bad JSON body: "+err.Error())
		return
	}
	result := map[string]interface{}{"action": body.Action, "status": "ok"}
	var err error
	switch body.Action {
	case "confirm":
		err = a.Rental.Confirm(u.Addr(), addr)
	case "pay":
		var rcpt *ethtypes.Receipt
		rcpt, err = a.Rental.PayRentCtx(r.Context(), u.Addr(), addr)
		if err == nil {
			result["txHash"] = rcpt.TxHash.Hex()
		}
	case "maintenance":
		_, err = a.Rental.PayMaintenance(u.Addr(), addr)
	case "terminate":
		err = a.Rental.Terminate(u.Addr(), addr)
	case "confirm-modification":
		err = a.Rental.ConfirmModification(u.Addr(), addr)
	case "reject-modification":
		err = a.Rental.RejectModification(u.Addr(), addr)
	case "modify":
		if body.Terms == nil {
			writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, "modify requires terms")
			return
		}
		terms := core.ModifiedTerms{
			Rent:           weiOf(body.Terms.RentEth),
			Deposit:        weiOf(body.Terms.DepositEth),
			Months:         body.Terms.Months,
			House:          body.Terms.House,
			MaintenanceFee: weiOf(body.Terms.MaintenanceEth),
			Discount:       weiOf(body.Terms.DiscountEth),
			Fine:           weiOf(body.Terms.FineEth),
		}
		if body.Terms.Document != "" {
			terms.LegalDoc = []byte(body.Terms.Document)
		}
		var dep *core.Deployment
		dep, err = a.Rental.Modify(u.Addr(), addr, terms)
		if err == nil {
			result["newVersion"] = dep.Row
		}
	case "":
		writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, "missing action")
		return
	default:
		writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, fmt.Sprintf("unknown action %q", body.Action))
		return
	}
	if err != nil {
		var rej *upgrade.RejectionError
		if errors.As(err, &rej) {
			writeV1ErrorData(w, r, http.StatusUnprocessableEntity, v1UpgradeRejected,
				rej.Error(), map[string]interface{}{"report": rej.Report})
			return
		}
		writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, result)
}
