package app

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"legalchain/internal/core"
	"legalchain/internal/ethtypes"
	"legalchain/internal/minisol"
	"legalchain/internal/upgrade"
)

// shrunkSrc drops BaseRental's public surface; the guard must reject it.
const shrunkSrc = `
pragma solidity ^0.5.0;

contract Shrunk {
	uint public rent;
	address public next;
	address public previous;

	constructor(uint _rent) public payable { rent = _rent; }

	function setNext(address _next) public { next = _next; }
	function setPrev(address _previous) public { previous = _previous; }
}
`

// TestV1RejectionsSurfaced: a refused modification leaves a structured
// report that the contract detail exposes, and the audit endpoint walks
// the chain over plain HTTP.
func TestV1RejectionsSurfaced(t *testing.T) {
	landlord, a, addr := apiRig(t)
	contract := ethtypes.HexToAddress(addr)
	row, err := a.Manager.GetRow(contract)
	if err != nil {
		t.Fatal(err)
	}
	owner := ethtypes.HexToAddress(row.Landlord)

	art, err := minisol.CompileContract(shrunkSrc, "Shrunk")
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Manager.ModifyContract(owner, contract, art, core.ModifyOptions{}, ethtypes.Ether(1))
	var rej *upgrade.RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want rejection", err)
	}

	var detail struct {
		Rejections []struct {
			Candidate string `json:"candidate"`
			Failures  []struct {
				Rule string `json:"rule"`
			} `json:"failures"`
		} `json:"rejections"`
	}
	if code := getJSON(t, landlord, "/api/v1/contracts/"+addr, &detail); code != 200 {
		t.Fatalf("detail: code %d", code)
	}
	if len(detail.Rejections) != 1 || detail.Rejections[0].Candidate != "Shrunk" {
		t.Fatalf("rejections = %+v", detail.Rejections)
	}
	if len(detail.Rejections[0].Failures) == 0 {
		t.Fatal("rejection carries no failure rules")
	}

	var audit struct {
		Audit struct {
			ChainVerified bool                     `json:"chainVerified"`
			Versions      []map[string]interface{} `json:"versions"`
			Rejections    []map[string]interface{} `json:"rejections"`
		} `json:"audit"`
	}
	if code := getJSON(t, landlord, "/api/v1/contracts/"+addr+"/audit", &audit); code != 200 {
		t.Fatalf("audit: code %d", code)
	}
	if !audit.Audit.ChainVerified || len(audit.Audit.Versions) != 1 {
		t.Fatalf("audit = %+v", audit.Audit)
	}
	if len(audit.Audit.Rejections) != 1 {
		t.Fatalf("audit rejections = %+v", audit.Audit.Rejections)
	}
}

// TestV1UpgradeRejectedEnvelope pins the 422 wire shape the action
// handler produces for a *upgrade.RejectionError.
func TestV1UpgradeRejectedEnvelope(t *testing.T) {
	rep := &upgrade.Report{Candidate: "BadV2"}
	rep.Failures = append(rep.Failures, upgrade.Check{
		Rule: upgrade.RuleSelectorRemoved, Subject: "payRent()",
	})
	rej := &upgrade.RejectionError{Report: rep}

	rec := httptest.NewRecorder()
	writeV1ErrorData(rec, nil, 422, v1UpgradeRejected, rej.Error(),
		map[string]interface{}{"report": rej.Report})

	if rec.Code != 422 {
		t.Fatalf("status = %d", rec.Code)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Data    struct {
				Report struct {
					Candidate string `json:"candidate"`
				} `json:"report"`
			} `json:"data"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("bad envelope: %v (%s)", err, rec.Body.Bytes())
	}
	if env.Error.Code != "upgrade_rejected" || env.Error.Data.Report.Candidate != "BadV2" {
		t.Fatalf("envelope = %+v", env)
	}
}
