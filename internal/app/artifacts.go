package app

import (
	"fmt"
	"sort"
	"strings"

	"legalchain/internal/abi"
	"legalchain/internal/core"
	"legalchain/internal/hexutil"
	"legalchain/internal/minisol"
)

// ArtifactRow is an uploaded (or compiled) contract artifact, the
// object of the paper's upload screen (Fig. 9): a name, the deployment
// bytecode and the ABI document.
type ArtifactRow struct {
	Name     string `json:"name"`
	ABIJSON  string `json:"abi"`
	Bytecode string `json:"bytecode"` // 0x-hex deployment code
	Source   string `json:"source,omitempty"`
	Owner    string `json:"owner"`
}

// UploadArtifact stores a pre-built artifact (bytecode + ABI), as in
// Fig. 9 where the landlord uploads the two files.
func (a *App) UploadArtifact(owner *User, name, abiJSON, bytecodeHex string) (*ArtifactRow, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return nil, fmt.Errorf("app: artifact name required")
	}
	if _, err := abi.ParseJSON([]byte(abiJSON)); err != nil {
		return nil, fmt.Errorf("app: invalid ABI: %w", err)
	}
	if _, err := hexutil.Decode(bytecodeHex); err != nil {
		return nil, fmt.Errorf("app: invalid bytecode hex: %w", err)
	}
	row := &ArtifactRow{Name: name, ABIJSON: abiJSON, Bytecode: bytecodeHex, Owner: owner.Name}
	if err := a.Manager.Store.Put(core.TableArtifacts, strings.ToLower(name), row); err != nil {
		return nil, err
	}
	return row, nil
}

// CompileArtifact compiles minisol source in the browser flow and stores
// the result under the contract's name.
func (a *App) CompileArtifact(owner *User, source, contractName string) (*ArtifactRow, error) {
	art, err := minisol.CompileContract(source, contractName)
	if err != nil {
		return nil, err
	}
	row := &ArtifactRow{
		Name:     art.Name,
		ABIJSON:  string(art.ABIJSON),
		Bytecode: hexutil.Encode(art.Bytecode),
		Source:   source,
		Owner:    owner.Name,
	}
	if err := a.Manager.Store.Put(core.TableArtifacts, strings.ToLower(art.Name), row); err != nil {
		return nil, err
	}
	return row, nil
}

// GetArtifact loads an uploaded artifact and reconstitutes a deployable
// minisol.Artifact from it.
func (a *App) GetArtifact(name string) (*minisol.Artifact, error) {
	var row ArtifactRow
	if err := a.Manager.Store.Get(core.TableArtifacts, strings.ToLower(name), &row); err != nil {
		return nil, err
	}
	parsed, err := abi.ParseJSON([]byte(row.ABIJSON))
	if err != nil {
		return nil, err
	}
	code, err := hexutil.Decode(row.Bytecode)
	if err != nil {
		return nil, err
	}
	return &minisol.Artifact{
		Name:     row.Name,
		ABI:      parsed,
		ABIJSON:  []byte(row.ABIJSON),
		Bytecode: code,
	}, nil
}

// Artifacts lists uploaded artifact names, sorted.
func (a *App) Artifacts() []string {
	keys := a.Manager.Store.Keys(core.TableArtifacts)
	sort.Strings(keys)
	return keys
}
