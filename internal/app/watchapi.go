package app

import (
	"net/http"
	"strconv"

	"legalchain/internal/ethtypes"
)

// Watchtower read endpoints: the REST face of internal/watch.
//
//	GET /api/v1/contracts/{addr}/timeline   the contract's lifecycle story
//	GET /api/v1/alerts[?since=<seq>]        alert history + rule states
//
// Both fold the tower to the current head before answering, so a client
// that just transacted reads its own write. When the node runs without
// a watchtower the endpoints answer 404 with the usual error envelope.

// v1ContractTimeline serves the folded lifecycle of one contract:
// every event the watchtower recorded for it — creation, signing,
// payments, modification linking, termination — plus the alerts that
// implicated it, oldest first, with its current state and outstanding
// obligations.
func (a *App) v1ContractTimeline(w http.ResponseWriter, r *http.Request, u *User, addr ethtypes.Address) {
	if a.Watch == nil {
		writeV1Error(w, r, http.StatusNotFound, v1NotFound, "watchtower not enabled on this node")
		return
	}
	a.Watch.Sync()
	events := a.Watch.Timeline(addr)
	out := map[string]interface{}{
		"address": addr.Hex(),
		"events":  events,
		"count":   len(events),
	}
	st := a.Watch.Status()
	for _, c := range st.Contracts {
		if c.Address == addr.Hex() {
			c := c
			out["contract"] = &c
			break
		}
	}
	if head := a.v1Head(); head != nil {
		out["head"] = head
	}
	writeJSON(w, http.StatusOK, out)
}

// v1Alerts serves the alert history and the live rule states.
// ?since=<seq> narrows to alerts after that sequence number — the
// polling analogue of the event:alert SSE frames.
func (a *App) v1Alerts(w http.ResponseWriter, r *http.Request, u *User) {
	if r.Method != http.MethodGet {
		writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "GET only")
		return
	}
	if a.Watch == nil {
		writeV1Error(w, r, http.StatusNotFound, v1NotFound, "watchtower not enabled on this node")
		return
	}
	a.Watch.Sync()
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, "bad since parameter")
			return
		}
		since = n
	}
	alerts := a.Watch.AlertsSince(since)
	st := a.Watch.Status()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"alerts": alerts,
		"count":  len(alerts),
		"firing": st.AlertsFiring,
		"total":  st.AlertsTotal,
		"rules":  st.Rules,
	})
}
