package app

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"legalchain/internal/obs"
)

// apiRig registers a landlord+tenant, deploys and modifies a rental
// through the service layer, and returns an authenticated browser.
func apiRig(t *testing.T) (*browser, *App, string) {
	t.Helper()
	a := rig(t)
	// Mirror production wiring: rentald serves the app behind
	// obs.LogRequests, which assigns request IDs and opens root spans.
	srv := httptest.NewServer(obs.LogRequests(nil, a.Handler()))
	t.Cleanup(srv.Close)
	landlord := newBrowser(t, srv)
	landlord.register("api_landlord", "pw")
	resp, body := landlord.post("/deploy", url.Values{
		"artifact": {"BaseRental"}, "rent": {"1"}, "deposit": {"2"},
		"months": {"12"}, "house": {"api-house"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: %d %s", resp.StatusCode, body)
	}
	_, dash := landlord.get("/dashboard")
	addr := extractAddr(t, dash)
	return landlord, a, addr
}

func getJSON(t *testing.T, b *browser, path string, out interface{}) int {
	t.Helper()
	resp, err := b.c.Get(b.url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad JSON from %s: %v (%s)", path, err, data)
		}
	}
	return resp.StatusCode
}

func TestAPIMe(t *testing.T) {
	b, _, _ := apiRig(t)
	var me map[string]interface{}
	if code := getJSON(t, b, "/api/me", &me); code != 200 {
		t.Fatalf("code %d", code)
	}
	if me["name"] != "api_landlord" {
		t.Fatalf("me = %v", me)
	}
	if me["balanceEth"] == "" || me["address"] == "" {
		t.Fatal("missing fields")
	}
}

func TestAPIContracts(t *testing.T) {
	b, _, addr := apiRig(t)
	var rows []map[string]interface{}
	if code := getJSON(t, b, "/api/contracts", &rows); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(rows) != 1 || rows[0]["Address"] != addr {
		t.Fatalf("rows = %v", rows)
	}
	// Detail endpoint with live chain data.
	var detail map[string]interface{}
	if code := getJSON(t, b, "/api/contracts/"+addr, &detail); code != 200 {
		t.Fatalf("code %d", code)
	}
	live := detail["live"].(map[string]interface{})
	if live["house"] != "api-house" {
		t.Fatalf("live = %v", live)
	}
	if live["rent"] != "1000000000000000000" {
		t.Fatalf("rent = %v", live["rent"])
	}
}

func TestAPIChainAndHistory(t *testing.T) {
	b, a, addr := apiRig(t)
	// Build a second version through the service layer.
	u, err := a.SessionUser(sessionTokenOf(t, b))
	if err != nil {
		t.Fatal(err)
	}
	_, body := b.post("/contract/"+addr+"/modify", url.Values{
		"rent": {"1"}, "deposit": {"2"}, "months": {"12"},
		"house": {"api-house"}, "maintenance": {"0.1"}, "discount": {"0"}, "fine": {"1"},
	})
	_ = body
	_ = u
	var chainResp struct {
		Chain    []map[string]interface{} `json:"chain"`
		Verified bool                     `json:"verified"`
	}
	if code := getJSON(t, b, "/api/contracts/"+addr+"/chain", &chainResp); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(chainResp.Chain) != 2 || !chainResp.Verified {
		t.Fatalf("chain = %+v", chainResp)
	}
	var hist []map[string]interface{}
	if code := getJSON(t, b, "/api/contracts/"+addr+"/history", &hist); code != 200 {
		t.Fatal("history endpoint")
	}
	// Unknown endpoint 404s.
	if code := getJSON(t, b, "/api/contracts/"+addr+"/nope", nil); code != 404 {
		t.Fatal("unknown endpoint accepted")
	}
	// Bad address 400s.
	if code := getJSON(t, b, "/api/contracts/short", nil); code != 400 {
		t.Fatal("bad address accepted")
	}
}

func TestAPIRequiresAuth(t *testing.T) {
	a := rig(t)
	// Mirror production wiring: rentald serves the app behind
	// obs.LogRequests, which assigns request IDs and opens root spans.
	srv := httptest.NewServer(obs.LogRequests(nil, a.Handler()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/me")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated API: %d", resp.StatusCode)
	}
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	if out["error"] == "" {
		t.Fatal("no JSON error body")
	}
}

// sessionTokenOf extracts the session cookie value from the browser jar.
func sessionTokenOf(t *testing.T, b *browser) string {
	t.Helper()
	u, _ := url.Parse(b.url)
	for _, c := range b.c.Jar.Cookies(u) {
		if c.Name == "legalchain_session" {
			return c.Value
		}
	}
	t.Fatal("no session cookie")
	return ""
}
