package app

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
)

// deployRental posts one BaseRental deploy from the browser's user.
func deployRental(t *testing.T, b *browser, house string) {
	t.Helper()
	resp, body := b.post("/deploy", url.Values{
		"artifact": {"BaseRental"},
		"rent":     {"1"}, "deposit": {"2"}, "months": {"12"},
		"house":    {house},
		"document": {"%PDF-1.4 agreement for " + house},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy %s: %d %s", house, resp.StatusCode, body)
	}
}

type contractsPage struct {
	Contracts []struct {
		Address string `json:"address"`
	} `json:"contracts"`
	NextCursor string `json:"nextCursor"`
}

func getContracts(t *testing.T, b *browser, query string) contractsPage {
	t.Helper()
	resp, body := b.get("/api/v1/contracts" + query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET contracts%s: %d %s", query, resp.StatusCode, body)
	}
	var page contractsPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	return page
}

func TestContractsPagination(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	b := newBrowser(t, srv)
	b.register("paging_landlord", "pw")

	for _, house := range []string{"A-1", "B-2", "C-3"} {
		deployRental(t, b, house)
	}

	// No limit, no cursor: the pre-pagination full listing.
	full := getContracts(t, b, "")
	if len(full.Contracts) != 3 || full.NextCursor != "" {
		t.Fatalf("full listing: %d rows, cursor %q", len(full.Contracts), full.NextCursor)
	}

	// Cursor walk covers every row exactly once, two per page.
	seen := map[string]bool{}
	page := getContracts(t, b, "?limit=2")
	if len(page.Contracts) != 2 || page.NextCursor == "" {
		t.Fatalf("page 1: %d rows, cursor %q", len(page.Contracts), page.NextCursor)
	}
	for page.NextCursor != "" || len(page.Contracts) > 0 {
		for _, c := range page.Contracts {
			if seen[strings.ToLower(c.Address)] {
				t.Fatalf("address %s served twice", c.Address)
			}
			seen[strings.ToLower(c.Address)] = true
		}
		if page.NextCursor == "" {
			break
		}
		page = getContracts(t, b, "?limit=2&cursor="+page.NextCursor)
	}
	if len(seen) != 3 {
		t.Fatalf("cursor walk covered %d of 3 rows", len(seen))
	}

	// Bad limit is a 400 envelope.
	resp, body := b.get("/api/v1/contracts?limit=zero")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, `"bad_request"`) {
		t.Fatalf("bad limit: %d %s", resp.StatusCode, body)
	}
}

func TestContractsSinceFilter(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	landlord := newBrowser(t, srv)
	landlord.register("since_landlord", "pw1")
	tenant := newBrowser(t, srv)
	tenant.register("since_tenant", "pw2")

	deployRental(t, landlord, "D-4")
	deployRental(t, landlord, "E-5")

	_, dash := tenant.get("/dashboard")
	addr := extractAddr(t, dash)
	cut := appChain(t, a).View().BlockNumber() + 1

	// Nothing has logged past the cut yet.
	if page := getContracts(t, landlord, "?since="+uitoa(cut)); len(page.Contracts) != 0 {
		t.Fatalf("since=%d before activity: %d rows", cut, len(page.Contracts))
	}

	// Confirming one contract logs on-chain; only it passes the filter.
	if resp, body := tenant.post("/contract/"+addr+"/confirm", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("confirm: %d %s", resp.StatusCode, body)
	}
	page := getContracts(t, landlord, "?since="+uitoa(cut))
	if len(page.Contracts) != 1 || !strings.EqualFold(page.Contracts[0].Address, addr) {
		t.Fatalf("since filter: %+v, want only %s", page.Contracts, addr)
	}

	// Hex heights accepted too.
	if got := getContracts(t, landlord, "?since=0x1"); len(got.Contracts) == 0 {
		t.Fatal("hex since rejected everything")
	}
	// Malformed since is a 400 envelope.
	resp, body := landlord.get("/api/v1/contracts?since=banana")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, `"bad_request"`) {
		t.Fatalf("bad since: %d %s", resp.StatusCode, body)
	}
}

type paymentsPage struct {
	Payments []struct {
		Month       uint64 `json:"month"`
		BlockNumber uint64 `json:"blockNumber"`
	} `json:"payments"`
	Total      int    `json:"total"`
	NextCursor string `json:"nextCursor"`
}

func getPayments(t *testing.T, b *browser, addr, query string) paymentsPage {
	t.Helper()
	resp, body := b.get("/api/v1/contracts/" + addr + "/payments" + query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET payments%s: %d %s", query, resp.StatusCode, body)
	}
	var page paymentsPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	return page
}

func TestPaymentsPagination(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	landlord := newBrowser(t, srv)
	landlord.register("pay_landlord", "pw1")
	tenant := newBrowser(t, srv)
	tenant.register("pay_tenant", "pw2")

	deployRental(t, landlord, "F-6")
	_, dash := tenant.get("/dashboard")
	addr := extractAddr(t, dash)
	if resp, body := tenant.post("/contract/"+addr+"/confirm", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("confirm: %d %s", resp.StatusCode, body)
	}
	for i := 0; i < 2; i++ {
		if resp, body := tenant.post("/contract/"+addr+"/pay", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("pay %d: %d %s", i, resp.StatusCode, body)
		}
	}

	full := getPayments(t, tenant, addr, "")
	if full.Total < 2 || len(full.Payments) != full.Total || full.NextCursor != "" {
		t.Fatalf("full history: total=%d rows=%d cursor=%q", full.Total, len(full.Payments), full.NextCursor)
	}

	// Page with limit=1 and walk the offset cursor to the end.
	collected := 0
	query := "?limit=1"
	for {
		page := getPayments(t, tenant, addr, query)
		collected += len(page.Payments)
		if page.NextCursor == "" {
			break
		}
		if len(page.Payments) != 1 {
			t.Fatalf("page size %d with limit=1", len(page.Payments))
		}
		query = "?limit=1&cursor=" + page.NextCursor
	}
	if collected != full.Total {
		t.Fatalf("cursor walk got %d of %d payments", collected, full.Total)
	}

	// since above the head filters everything out.
	head := appChain(t, a).View().BlockNumber()
	if page := getPayments(t, tenant, addr, "?since="+uitoa(head+1)); page.Total != 0 {
		t.Fatalf("since past head: total=%d", page.Total)
	}
	// since at the last pay block keeps at least one traceable payment.
	kept := getPayments(t, tenant, addr, "?since=1")
	if kept.Total == 0 {
		t.Fatal("since=1 dropped every payment")
	}
	for _, p := range kept.Payments {
		if p.BlockNumber == 0 {
			t.Fatalf("untraceable payment passed since filter: %+v", p)
		}
	}

	// Bad cursor is a 400 envelope; unknown contract a 404.
	resp, body := tenant.get("/api/v1/contracts/" + addr + "/payments?cursor=minusone&limit=1")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, `"bad_request"`) {
		t.Fatalf("bad cursor: %d %s", resp.StatusCode, body)
	}
	resp, body = tenant.get("/api/v1/contracts/0x0000000000000000000000000000000000000002/payments")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, `"not_found"`) {
		t.Fatalf("unknown contract: %d %s", resp.StatusCode, body)
	}
}

func uitoa(n uint64) string { return strconv.FormatUint(n, 10) }
