package app

import (
	"errors"
	"fmt"
	"html/template"
	"math/big"
	"net/http"
	"strings"

	"legalchain/internal/core"
	"legalchain/internal/ethtypes"
	"legalchain/internal/obs"
	"legalchain/internal/uint256"
)

// Handler builds the HTTP mux of the web application. Every route is
// wrapped in obs.InstrumentHandler with its mux pattern as the metric
// label, so cardinality stays bounded no matter what paths clients hit.
func (a *App) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, obs.InstrumentHandler(pattern, h))
	}
	handle("/", a.handleIndex)
	handle("/register", a.handleRegister)
	handle("/login", a.handleLogin)
	handle("/logout", a.handleLogout)
	handle("/dashboard", a.withUser(a.handleDashboard))
	handle("/upload", a.withUser(a.handleUpload))
	handle("/deploy", a.withUser(a.handleDeploy))
	handle("/contract/", a.withUser(a.handleContract))
	handle("/doc/", a.withUser(a.handleDocument))
	a.apiRoutes(handle)
	a.apiV1Routes(handle)
	return mux
}

const sessionCookie = "legalchain_session"

// withUser resolves the session and injects the user. HTML routes
// redirect to the login page; /api/v1/ routes answer 401 with the v1
// error envelope, legacy /api/ routes keep their flat 401 JSON.
func (a *App) withUser(fn func(http.ResponseWriter, *http.Request, *User)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		deny := func() {
			if strings.HasPrefix(r.URL.Path, "/api/v1/") {
				writeV1Error(w, r, http.StatusUnauthorized, v1Unauthorized, "not logged in")
				return
			}
			if strings.HasPrefix(r.URL.Path, "/api/") {
				writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "not logged in"})
				return
			}
			http.Redirect(w, r, "/login", http.StatusSeeOther)
		}
		c, err := r.Cookie(sessionCookie)
		if err != nil {
			deny()
			return
		}
		u, err := a.SessionUser(c.Value)
		if err != nil {
			deny()
			return
		}
		fn(w, r, u)
	}
}

func (a *App) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	http.Redirect(w, r, "/dashboard", http.StatusSeeOther)
}

func (a *App) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		_, err := a.Register(r.FormValue("name"), r.FormValue("email"), r.FormValue("password"))
		if err != nil {
			a.renderError(w, http.StatusBadRequest, err)
			return
		}
		http.Redirect(w, r, "/login", http.StatusSeeOther)
		return
	}
	a.render(w, registerTmpl, nil)
}

func (a *App) handleLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		token, err := a.Login(r.FormValue("name"), r.FormValue("password"))
		if err != nil {
			a.renderError(w, http.StatusUnauthorized, err)
			return
		}
		http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: token, Path: "/", HttpOnly: true})
		http.Redirect(w, r, "/dashboard", http.StatusSeeOther)
		return
	}
	a.render(w, loginTmpl, nil)
}

func (a *App) handleLogout(w http.ResponseWriter, r *http.Request) {
	if c, err := r.Cookie(sessionCookie); err == nil {
		a.Logout(c.Value)
	}
	http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: "", Path: "/", MaxAge: -1})
	http.Redirect(w, r, "/login", http.StatusSeeOther)
}

func (a *App) handleDashboard(w http.ResponseWriter, r *http.Request, u *User) {
	rows, err := a.Dashboard(u)
	if err != nil {
		a.renderError(w, http.StatusInternalServerError, err)
		return
	}
	bal, _ := a.Manager.Client.Backend().GetBalance(u.Addr())
	a.render(w, dashboardTmpl, map[string]interface{}{
		"User":       u,
		"BalanceEth": ethtypes.FormatEther(bal),
		"Rows":       rows,
		"Artifacts":  a.Artifacts(),
	})
}

// handleUpload implements Fig. 9: upload an artifact as ABI + bytecode,
// or paste minisol source to compile server-side.
func (a *App) handleUpload(w http.ResponseWriter, r *http.Request, u *User) {
	if r.Method == http.MethodPost {
		var err error
		if src := r.FormValue("source"); strings.TrimSpace(src) != "" {
			_, err = a.CompileArtifact(u, src, r.FormValue("contract"))
		} else {
			_, err = a.UploadArtifact(u, r.FormValue("name"), r.FormValue("abi"), r.FormValue("bytecode"))
		}
		if err != nil {
			a.renderError(w, http.StatusBadRequest, err)
			return
		}
		http.Redirect(w, r, "/dashboard", http.StatusSeeOther)
		return
	}
	a.render(w, uploadTmpl, map[string]interface{}{"User": u})
}

// handleDeploy implements Fig. 10: deploy an uploaded artifact (or the
// built-in BaseRental) with rental terms.
func (a *App) handleDeploy(w http.ResponseWriter, r *http.Request, u *User) {
	if r.Method == http.MethodPost {
		terms := core.RentalTerms{
			Rent:    weiOf(r.FormValue("rent")),
			Deposit: weiOf(r.FormValue("deposit")),
			Months:  uintOf(r.FormValue("months")),
			House:   r.FormValue("house"),
		}
		if pdf := r.FormValue("document"); pdf != "" {
			terms.LegalDoc = []byte(pdf)
		}
		var err error
		if name := r.FormValue("artifact"); name != "" && !strings.EqualFold(name, "BaseRental") {
			art, aerr := a.GetArtifact(name)
			if aerr != nil {
				a.renderError(w, http.StatusBadRequest, aerr)
				return
			}
			_, err = a.Manager.DeployVersion(u.Addr(), art, terms.LegalDoc,
				terms.Rent, terms.Deposit, terms.Months, terms.House)
		} else {
			_, err = a.Rental.DeployRental(u.Addr(), terms)
		}
		if err != nil {
			a.renderError(w, http.StatusBadRequest, err)
			return
		}
		http.Redirect(w, r, "/dashboard", http.StatusSeeOther)
		return
	}
	a.render(w, deployTmpl, map[string]interface{}{"User": u, "Artifacts": a.Artifacts()})
}

// handleContract routes /contract/{addr}[/action] — the detail page with
// the confirm / pay / maintenance / terminate / modify actions.
func (a *App) handleContract(w http.ResponseWriter, r *http.Request, u *User) {
	rest := strings.TrimPrefix(r.URL.Path, "/contract/")
	parts := strings.SplitN(rest, "/", 2)
	addrHex := parts[0]
	if !strings.HasPrefix(addrHex, "0x") || len(addrHex) != 42 {
		http.NotFound(w, r)
		return
	}
	addr := ethtypes.HexToAddress(addrHex)
	action := ""
	if len(parts) == 2 {
		action = parts[1]
	}
	if r.Method == http.MethodPost {
		if err := a.doContractAction(u, addr, action, r); err != nil {
			a.renderError(w, http.StatusBadRequest, err)
			return
		}
		http.Redirect(w, r, "/contract/"+addrHex, http.StatusSeeOther)
		return
	}
	a.renderContract(w, u, addr)
}

func (a *App) doContractAction(u *User, addr ethtypes.Address, action string, r *http.Request) error {
	switch action {
	case "confirm":
		return a.Rental.Confirm(u.Addr(), addr)
	case "pay":
		_, err := a.Rental.PayRentCtx(r.Context(), u.Addr(), addr)
		return err
	case "maintenance":
		_, err := a.Rental.PayMaintenance(u.Addr(), addr)
		return err
	case "terminate":
		return a.Rental.Terminate(u.Addr(), addr)
	case "modify":
		terms := core.ModifiedTerms{
			Rent:           weiOf(r.FormValue("rent")),
			Deposit:        weiOf(r.FormValue("deposit")),
			Months:         uintOf(r.FormValue("months")),
			House:          r.FormValue("house"),
			MaintenanceFee: weiOf(r.FormValue("maintenance")),
			Discount:       weiOf(r.FormValue("discount")),
			Fine:           weiOf(r.FormValue("fine")),
		}
		if pdf := r.FormValue("document"); pdf != "" {
			terms.LegalDoc = []byte(pdf)
		}
		_, err := a.Rental.Modify(u.Addr(), addr, terms)
		return err
	case "confirm-modification":
		return a.Rental.ConfirmModification(u.Addr(), addr)
	case "reject-modification":
		return a.Rental.RejectModification(u.Addr(), addr)
	default:
		return fmt.Errorf("app: unknown action %q", action)
	}
}

// ContractView is the detail-page model.
type ContractView struct {
	User                 *User
	Row                  core.ContractRow
	StateNum             uint64
	House                string
	RentEth              string
	DueEth               string
	Months               uint64
	Paid                 []core.PaymentRecord
	Versions             []core.VersionInfo
	HasDoc               bool
	HasMaint             bool
	IsLandlord, IsTenant bool
}

func (a *App) renderContract(w http.ResponseWriter, u *User, addr ethtypes.Address) {
	row, err := a.Manager.GetRow(addr)
	if err != nil {
		a.renderError(w, http.StatusNotFound, err)
		return
	}
	view := ContractView{User: u, Row: row,
		IsLandlord: strings.EqualFold(row.Landlord, u.Address),
		IsTenant:   strings.EqualFold(row.Tenant, u.Address),
		HasDoc:     row.DocumentCID != "",
	}
	viewer := u.Addr()
	if bound, err := a.Manager.BindVersion(addr); err == nil {
		if st, err := bound.CallUint(viewer, "state"); err == nil {
			view.StateNum = st.Uint64()
		}
		if house, err := bound.CallString(viewer, "house"); err == nil {
			view.House = house
		}
		if rent, err := bound.CallUint(viewer, "rent"); err == nil {
			view.RentEth = ethtypes.FormatEther(rent)
		}
		if months, err := bound.CallUint(viewer, "contractTime"); err == nil {
			view.Months = months.Uint64()
		}
		_, view.HasMaint = bound.ABI.Methods["payMaintenanceFee"]
	}
	if due, err := a.Rental.RentDue(viewer, addr); err == nil {
		view.DueEth = ethtypes.FormatEther(due)
	}
	if hist, err := a.Rental.RentHistory(viewer, addr); err == nil {
		view.Paid = hist
	}
	if versions, err := a.Manager.WalkChain(addr); err == nil {
		view.Versions = versions
	}
	a.render(w, contractTmpl, view)
}

// handleDocument serves the stored legal document (Fig. 4's "contract
// linked to a pdf").
func (a *App) handleDocument(w http.ResponseWriter, r *http.Request, u *User) {
	addrHex := strings.TrimPrefix(r.URL.Path, "/doc/")
	doc, err := a.Manager.LegalDocument(ethtypes.HexToAddress(addrHex))
	if err != nil {
		a.renderError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/pdf")
	w.Write(doc)
}

// --- helpers ----------------------------------------------------------------

// weiOf parses a decimal ether amount ("1.5") into wei.
func weiOf(s string) uint256.Int {
	s = strings.TrimSpace(s)
	if s == "" {
		return uint256.Zero
	}
	whole, frac := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		whole, frac = s[:i], s[i+1:]
	}
	if len(frac) > 18 {
		frac = frac[:18]
	}
	frac += strings.Repeat("0", 18-len(frac))
	w, ok1 := new(big.Int).SetString(whole, 10)
	f, ok2 := new(big.Int).SetString(frac, 10)
	if !ok1 || !ok2 {
		return uint256.Zero
	}
	w.Mul(w, new(big.Int).Exp(big.NewInt(10), big.NewInt(18), nil))
	return uint256.FromBig(w.Add(w, f))
}

func uintOf(s string) uint64 {
	var n uint64
	fmt.Sscanf(strings.TrimSpace(s), "%d", &n)
	return n
}

func (a *App) render(w http.ResponseWriter, t *template.Template, data interface{}) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := t.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (a *App) renderError(w http.ResponseWriter, code int, err error) {
	if errors.Is(err, ErrNoSession) {
		code = http.StatusUnauthorized
	}
	w.WriteHeader(code)
	errTmpl.Execute(w, map[string]interface{}{"Error": err.Error()})
}

// --- templates ---------------------------------------------------------------

var baseCSS = `<style>
body{font-family:sans-serif;max-width:60em;margin:2em auto;color:#222}
table{border-collapse:collapse;width:100%} td,th{border:1px solid #ccc;padding:.4em .6em;text-align:left}
form.inline{display:inline} input,textarea,select{margin:.2em 0}
.badge{padding:.1em .5em;border-radius:.4em;background:#eef}
</style>`

var (
	errTmpl = template.Must(template.New("err").Parse(baseCSS +
		`<h1>Error</h1><p>{{.Error}}</p><p><a href="/dashboard">back</a></p>`))

	loginTmpl = template.Must(template.New("login").Parse(baseCSS + `
<h1>Evolving Rental Agreement Manager</h1>
<h2>Login</h2>
<form method="post" action="/login">
 <label>Username <input name="name"></label><br>
 <label>Password <input type="password" name="password"></label><br>
 <button type="submit">LOGIN</button>
</form>
<p>No account? <a href="/register">Register</a></p>`))

	registerTmpl = template.Must(template.New("register").Parse(baseCSS + `
<h1>Register</h1>
<form method="post" action="/register">
 <label>Username <input name="name"></label><br>
 <label>Email <input name="email"></label><br>
 <label>Password <input type="password" name="password"></label><br>
 <button type="submit">REGISTER</button>
</form>`))

	dashboardTmpl = template.Must(template.New("dash").Parse(baseCSS + `
<h1>Dashboard</h1>
<p>FOR USER — <b>{{.User.Name}}</b> · BALANCE — {{.BalanceEth}} ETH · account {{.User.Address}}
 · <a href="/logout">logout</a></p>
<p><a href="/upload">UPLOAD A NEW CONTRACT</a> · <a href="/deploy">DEPLOY</a></p>
<table>
<tr><th>Contract</th><th>House</th><th>Version</th><th>State</th><th>Role</th><th>Action</th></tr>
{{range .Rows}}
<tr>
 <td><a href="/contract/{{.Address}}">{{.Name}}</a></td>
 <td>{{.House}}</td><td>v{{.Version}}</td><td>{{.State}}</td><td>{{.Role}}</td>
 <td><span class="badge">{{.Action}}</span></td>
</tr>
{{end}}
</table>
<h2>Available contracts to deploy</h2>
<ul>{{range .Artifacts}}<li>{{.}}</li>{{end}}<li>baserental (built-in)</li></ul>`))

	uploadTmpl = template.Must(template.New("upload").Parse(baseCSS + `
<h1>Upload a new contract</h1>
<h2>From compiled artifact (bytecode + ABI)</h2>
<form method="post" action="/upload">
 <label>Name <input name="name"></label><br>
 <label>Bytecode (0x-hex)<br><textarea name="bytecode" rows="4" cols="80"></textarea></label><br>
 <label>ABI (JSON)<br><textarea name="abi" rows="4" cols="80"></textarea></label><br>
 <button type="submit">UPLOAD</button>
</form>
<h2>Or from source</h2>
<form method="post" action="/upload">
 <label>Contract name <input name="contract"></label><br>
 <label>Source<br><textarea name="source" rows="12" cols="80"></textarea></label><br>
 <button type="submit">COMPILE &amp; UPLOAD</button>
</form>
<p><a href="/dashboard">back</a></p>`))

	deployTmpl = template.Must(template.New("deploy").Parse(baseCSS + `
<h1>Deploy a rental agreement</h1>
<form method="post" action="/deploy">
 <label>Artifact <select name="artifact"><option value="BaseRental">BaseRental (built-in)</option>
 {{range .Artifacts}}<option>{{.}}</option>{{end}}</select></label><br>
 <label>Rent (ETH/month) <input name="rent" value="1"></label><br>
 <label>Deposit (ETH) <input name="deposit" value="2"></label><br>
 <label>Months <input name="months" value="12"></label><br>
 <label>House (zip + number) <input name="house"></label><br>
 <label>Legal document (text/PDF bytes)<br><textarea name="document" rows="6" cols="80"></textarea></label><br>
 <button type="submit">DEPLOY</button>
</form>
<p><a href="/dashboard">back</a></p>`))

	contractTmpl = template.Must(template.New("contract").Parse(baseCSS + `
<h1>{{.Row.Name}} <small>v{{.Row.Version}} — {{.Row.State}}</small></h1>
<p>Address {{.Row.Address}} · house <b>{{.House}}</b> · rent {{.RentEth}} ETH
 {{if .DueEth}}(due {{.DueEth}} ETH){{end}} · {{.Months}} months</p>
{{if .HasDoc}}<p><a href="/doc/{{.Row.Address}}">View legal document (PDF)</a></p>{{end}}

{{if eq .StateNum 0}}{{if not .IsLandlord}}
<form class="inline" method="post" action="/contract/{{.Row.Address}}/confirm"><button>CONFIRM AGREEMENT (pays deposit)</button></form>
{{if .Row.Prev}}<form class="inline" method="post" action="/contract/{{.Row.Address}}/reject-modification"><button>REJECT MODIFICATION</button></form>
<form class="inline" method="post" action="/contract/{{.Row.Address}}/confirm-modification"><button>CONFIRM MODIFICATION</button></form>{{end}}
{{end}}{{end}}

{{if eq .StateNum 1}}
{{if .IsTenant}}
<form class="inline" method="post" action="/contract/{{.Row.Address}}/pay"><button>PAY RENT</button></form>
{{if .HasMaint}}<form class="inline" method="post" action="/contract/{{.Row.Address}}/maintenance"><button>PAY MAINTENANCE</button></form>{{end}}
{{end}}
{{if or .IsTenant .IsLandlord}}
<form class="inline" method="post" action="/contract/{{.Row.Address}}/terminate"><button>TERMINATE CONTRACT</button></form>
{{end}}
{{if .IsLandlord}}
<h2>Modify contract (deploys a new linked version)</h2>
<form method="post" action="/contract/{{.Row.Address}}/modify">
 <label>Rent (ETH) <input name="rent" value="1"></label>
 <label>Deposit (ETH) <input name="deposit" value="2"></label>
 <label>Months <input name="months" value="12"></label><br>
 <label>House <input name="house" value="{{.House}}"></label><br>
 <label>Maintenance fee (ETH) <input name="maintenance" value="0.1"></label>
 <label>Discount (ETH) <input name="discount" value="0"></label>
 <label>Early-exit fine (ETH) <input name="fine" value="1"></label><br>
 <label>Updated legal document<br><textarea name="document" rows="4" cols="80"></textarea></label><br>
 <button type="submit">MODIFY CONTRACT</button>
</form>
{{end}}
{{end}}

<h2>Version chain (evidence line)</h2>
<ol>
{{range .Versions}}<li><a href="/contract/{{.Address.Hex}}">{{.Address.Hex}}</a> — v{{.Version}} {{.State}}</li>{{end}}
</ol>

<h2>Rent payments (all versions)</h2>
<table><tr><th>Version</th><th>Month</th><th>Amount (wei)</th></tr>
{{range .Paid}}<tr><td>v{{.Version}}</td><td>{{.Month}}</td><td>{{.Amount}}</td></tr>{{end}}
</table>
<p><a href="/dashboard">back to dashboard</a></p>`))
)
