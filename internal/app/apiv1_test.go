package app

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"

	"legalchain/internal/xtrace"
)

// postJSON sends a JSON body through the browser's cookie-carrying
// client and decodes the JSON reply.
func postJSON(t *testing.T, b *browser, path string, payload, out interface{}) int {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := b.c.Post(b.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad JSON from %s: %v (%s)", path, err, data)
		}
	}
	return resp.StatusCode
}

// v1Envelope is the uniform error shape of /api/v1/.
type v1Envelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func TestV1MeAndList(t *testing.T) {
	b, _, addr := apiRig(t)
	var me map[string]interface{}
	if code := getJSON(t, b, "/api/v1/me", &me); code != 200 {
		t.Fatalf("me: code %d", code)
	}
	if me["name"] != "api_landlord" || me["balanceWei"] == "" {
		t.Fatalf("me = %v", me)
	}
	// In-process backends pin a head view: the response names the chain
	// snapshot the balance was read from.
	head, ok := me["head"].(map[string]interface{})
	if !ok {
		t.Fatalf("me has no head object: %v", me)
	}
	if head["hash"] == "" || head["stateRoot"] == "" {
		t.Fatalf("head = %v", head)
	}
	if _, ok := head["number"].(float64); !ok {
		t.Fatalf("head.number = %v", head["number"])
	}
	var list struct {
		Contracts []map[string]interface{} `json:"contracts"`
	}
	if code := getJSON(t, b, "/api/v1/contracts", &list); code != 200 {
		t.Fatalf("list: code %d", code)
	}
	if len(list.Contracts) != 1 || list.Contracts[0]["Address"] != addr {
		t.Fatalf("contracts = %v", list.Contracts)
	}
}

func TestV1DeployAndDetail(t *testing.T) {
	b, _, _ := apiRig(t)
	var dep struct {
		Address string                 `json:"address"`
		GasUsed float64                `json:"gasUsed"`
		Row     map[string]interface{} `json:"row"`
	}
	code := postJSON(t, b, "/api/v1/contracts", map[string]interface{}{
		"artifact": "BaseRental", "rentEth": "2", "depositEth": "4",
		"months": 6, "house": "v1-house", "document": "v1 legal text",
	}, &dep)
	if code != http.StatusCreated {
		t.Fatalf("deploy: code %d (%+v)", code, dep)
	}
	if len(dep.Address) != 42 || dep.GasUsed == 0 {
		t.Fatalf("deploy = %+v", dep)
	}

	var detail struct {
		Row      map[string]interface{} `json:"row"`
		Head     map[string]interface{} `json:"head"`
		Live     map[string]string      `json:"live"`
		Versions []map[string]interface{}
		Verified bool `json:"verified"`
	}
	if code := getJSON(t, b, "/api/v1/contracts/"+dep.Address, &detail); code != 200 {
		t.Fatalf("detail: code %d", code)
	}
	if detail.Head["hash"] == "" || detail.Head["stateRoot"] == "" {
		t.Fatalf("detail head = %v", detail.Head)
	}
	if detail.Live["house"] != "v1-house" {
		t.Fatalf("live = %v", detail.Live)
	}
	if detail.Live["rent"] != "2000000000000000000" {
		t.Fatalf("rent = %v", detail.Live["rent"])
	}
	if !detail.Verified {
		t.Fatal("fresh single-version chain should verify")
	}
}

func TestV1Actions(t *testing.T) {
	landlord, _, addr := apiRig(t)
	jar, _ := cookiejar.New(nil)
	tenant := &browser{t: t, c: &http.Client{Jar: jar}, url: landlord.url}
	tenant.register("v1_tenant", "pw")

	var ok map[string]interface{}
	if code := postJSON(t, tenant, "/api/v1/contracts/"+addr+"/actions",
		map[string]interface{}{"action": "confirm"}, &ok); code != 200 {
		t.Fatalf("confirm: code %d (%v)", code, ok)
	}
	if code := postJSON(t, tenant, "/api/v1/contracts/"+addr+"/actions",
		map[string]interface{}{"action": "pay"}, &ok); code != 200 {
		t.Fatalf("pay: code %d (%v)", code, ok)
	}

	// Landlord proposes a modification; the reply carries the new row.
	var mod struct {
		NewVersion map[string]interface{} `json:"newVersion"`
	}
	code := postJSON(t, landlord, "/api/v1/contracts/"+addr+"/actions", map[string]interface{}{
		"action": "modify",
		"terms": map[string]interface{}{
			"rentEth": "1.5", "depositEth": "2", "months": 12, "house": "api-house",
			"maintenanceEth": "0.1", "discountEth": "0", "fineEth": "1",
		},
	}, &mod)
	if code != 200 || mod.NewVersion["address"] == nil {
		t.Fatalf("modify: code %d (%+v)", code, mod)
	}

	var detail struct {
		Versions []map[string]interface{} `json:"versions"`
		Verified bool                     `json:"verified"`
	}
	if code := getJSON(t, landlord, "/api/v1/contracts/"+addr, &detail); code != 200 {
		t.Fatalf("detail: code %d", code)
	}
	if len(detail.Versions) != 2 || !detail.Verified {
		t.Fatalf("versions = %+v verified=%v", detail.Versions, detail.Verified)
	}

	// Payments made on v1 survive into the aggregated history.
	var paid struct {
		Payments []map[string]interface{} `json:"payments"`
	}
	if code := getJSON(t, tenant, "/api/v1/contracts/"+addr, &paid); code != 200 {
		t.Fatal("tenant detail")
	}
	if len(paid.Payments) != 1 {
		t.Fatalf("payments = %+v", paid.Payments)
	}
}

func TestV1ErrorEnvelope(t *testing.T) {
	b, _, addr := apiRig(t)

	// Unauthenticated requests get the envelope with code "unauthorized".
	srv := httptest.NewServer(rig(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/me")
	if err != nil {
		t.Fatal(err)
	}
	var env v1Envelope
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != 401 || env.Error.Code != "unauthorized" {
		t.Fatalf("unauthenticated: %d %+v", resp.StatusCode, env)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   interface{}
		status int
		code   string
	}{
		{"bad address", "GET", "/api/v1/contracts/short", nil, 400, "bad_request"},
		{"unknown contract", "GET", "/api/v1/contracts/0x0000000000000000000000000000000000000abc", nil, 404, "not_found"},
		{"unknown subresource", "GET", "/api/v1/contracts/" + addr + "/nope", nil, 404, "not_found"},
		{"method not allowed", "DELETE", "/api/v1/me", nil, 405, "method_not_allowed"},
		{"unknown action", "POST", "/api/v1/contracts/" + addr + "/actions",
			map[string]interface{}{"action": "explode"}, 400, "bad_request"},
		{"missing action", "POST", "/api/v1/contracts/" + addr + "/actions",
			map[string]interface{}{}, 400, "bad_request"},
		{"modify without terms", "POST", "/api/v1/contracts/" + addr + "/actions",
			map[string]interface{}{"action": "modify"}, 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != nil {
				raw, _ := json.Marshal(tc.body)
				body = bytes.NewReader(raw)
			}
			req, err := http.NewRequest(tc.method, b.url+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := b.c.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var env v1Envelope
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatalf("non-envelope body: %s", data)
			}
			if resp.StatusCode != tc.status || env.Error.Code != tc.code {
				t.Fatalf("got %d %q, want %d %q (%s)",
					resp.StatusCode, env.Error.Code, tc.status, tc.code, data)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestV1PayTraceHierarchy is the cross-tier acceptance test: a traced
// POST /api/v1/contracts/{addr}/actions pay produces one trace, keyed
// by the caller's X-Request-Id, whose spans walk every tier of the
// stack — http (obs middleware) → rpc (web3 client) → chain
// (SendTransaction) → evm (call frames) → blockdb (segment append).
func TestV1PayTraceHierarchy(t *testing.T) {
	xtrace.SetEnabled(true)
	xtrace.SetSampleEvery(1)
	xtrace.Reset()
	t.Cleanup(func() { xtrace.SetEnabled(false); xtrace.Reset() })

	landlord, _, addr := apiRig(t)
	jar, _ := cookiejar.New(nil)
	tenant := &browser{t: t, c: &http.Client{Jar: jar}, url: landlord.url}
	tenant.register("trace_tenant", "pw")
	var ok map[string]interface{}
	if code := postJSON(t, tenant, "/api/v1/contracts/"+addr+"/actions",
		map[string]interface{}{"action": "confirm"}, &ok); code != 200 {
		t.Fatalf("confirm: code %d (%v)", code, ok)
	}

	const rid = "trace-hierarchy-test"
	body, _ := json.Marshal(map[string]interface{}{"action": "pay"})
	req, err := http.NewRequest(http.MethodPost,
		tenant.url+"/api/v1/contracts/"+addr+"/actions", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := tenant.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var payOut map[string]interface{}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pay: code %d (%s)", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &payOut); err != nil {
		t.Fatal(err)
	}
	// The action result carries the transaction hash for tracing.
	txh, _ := payOut["txHash"].(string)
	if len(txh) != 66 {
		t.Fatalf("pay result txHash = %q", payOut["txHash"])
	}

	// The obs middleware reused the request ID as the trace ID, so the
	// caller can look its own trace up.
	td := xtrace.Lookup(rid)
	if td == nil {
		t.Fatalf("no trace recorded under %q", rid)
	}
	tiers := map[string]bool{}
	for _, sp := range td.Spans {
		tiers[sp.Tier] = true
	}
	for _, want := range []string{"http", "rpc", "chain", "evm", "blockdb"} {
		if !tiers[want] {
			t.Fatalf("trace %s missing tier %q (have %v)", rid, want, tiers)
		}
	}
	if got := td.Root(); !strings.HasPrefix(got, "http:POST ") {
		t.Fatalf("root = %q", got)
	}

	// The payment surfaces in the detail JSON with its hash and a
	// ready-made debug_traceTransaction invocation.
	var detail struct {
		Payments []struct {
			TxHash string                 `json:"txHash"`
			Trace  map[string]interface{} `json:"trace"`
		} `json:"payments"`
	}
	if code := getJSON(t, tenant, "/api/v1/contracts/"+addr, &detail); code != 200 {
		t.Fatal("detail")
	}
	if len(detail.Payments) != 1 || detail.Payments[0].TxHash != txh {
		t.Fatalf("payments = %+v (want txHash %s)", detail.Payments, txh)
	}
	if m, _ := detail.Payments[0].Trace["method"].(string); m != "debug_traceTransaction" {
		t.Fatalf("trace hint = %+v", detail.Payments[0].Trace)
	}
}

// TestV1ErrorRequestID: error envelopes echo the request ID assigned
// (or propagated) by the obs middleware.
func TestV1ErrorRequestID(t *testing.T) {
	b, _, _ := apiRig(t)
	req, err := http.NewRequest(http.MethodGet, b.url+"/api/v1/contracts/short", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "envelope-rid-1")
	resp, err := b.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Error struct {
			Code      string `json:"code"`
			RequestID string `json:"requestId"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 || env.Error.Code != "bad_request" {
		t.Fatalf("status %d env %+v", resp.StatusCode, env)
	}
	if env.Error.RequestID != "envelope-rid-1" {
		t.Fatalf("requestId = %q", env.Error.RequestID)
	}
}
