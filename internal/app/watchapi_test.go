package app

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"legalchain/internal/core"
	"legalchain/internal/ethtypes"
	"legalchain/internal/watch"
)

// meAddr resolves the browser's chain address through /api/v1/me.
func meAddr(t *testing.T, b *browser) ethtypes.Address {
	t.Helper()
	resp, body := b.get("/api/v1/me")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("me: %d %s", resp.StatusCode, body)
	}
	var me struct {
		Address string `json:"address"`
	}
	if err := json.Unmarshal([]byte(body), &me); err != nil {
		t.Fatal(err)
	}
	return ethtypes.HexToAddress(me.Address)
}

// watchRig attaches a watchtower to the standard app rig.
func watchRig(t *testing.T, rules string, rentPeriod uint64) (*App, *watch.Tower) {
	t.Helper()
	a := rig(t)
	var parsed []watch.Rule
	if rules != "" {
		var err error
		parsed, err = watch.ParseRules(rules)
		if err != nil {
			t.Fatal(err)
		}
	}
	tw, err := watch.New(appChain(t, a), watch.Config{RentPeriod: rentPeriod, Rules: parsed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tw.Close() })
	a.Watch = tw
	return a, tw
}

func TestV1Timeline(t *testing.T) {
	a, _ := watchRig(t, "", 0)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	b := newBrowser(t, srv)
	b.register("landlady", "pw")
	b2 := newBrowser(t, srv)
	b2.register("tenant", "pw")

	landlady, tenant := meAddr(t, b), meAddr(t, b2)

	dep, err := a.Rental.DeployRental(landlady, core.RentalTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12, House: "Berlin-42",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := dep.Row.Address
	if err := a.Rental.Confirm(tenant, ethtypes.HexToAddress(addr)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rental.PayRent(tenant, ethtypes.HexToAddress(addr)); err != nil {
		t.Fatal(err)
	}

	resp, body := b.get("/api/v1/contracts/" + addr + "/timeline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Address  string                `json:"address"`
		Count    int                   `json:"count"`
		Events   []watch.Event         `json:"events"`
		Contract *watch.ContractStatus `json:"contract"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 3 || len(out.Events) != 3 {
		t.Fatalf("timeline count %d: %s", out.Count, body)
	}
	for i, want := range []string{"created", "signed", "payment"} {
		if out.Events[i].Type != want {
			t.Fatalf("event %d = %q, want %q", i, out.Events[i].Type, want)
		}
	}
	if out.Contract == nil || out.Contract.State != watch.StateActive || out.Contract.MonthsPaid != 1 {
		t.Fatalf("contract summary: %+v", out.Contract)
	}

	// Unknown sub-routes keep 404ing.
	resp, _ = b.get("/api/v1/contracts/" + addr + "/nonsense")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("nonsense route: %d", resp.StatusCode)
	}
}

func TestV1TimelineWithoutTower(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	b := newBrowser(t, srv)
	b.register("nobody", "pw")
	resp, body := b.get("/api/v1/contracts/0x0000000000000000000000000000000000000001/timeline")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no tower: %d %s", resp.StatusCode, body)
	}
	resp, _ = b.get("/api/v1/alerts")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no tower alerts: %d", resp.StatusCode)
	}
}

// TestV1AlertsAndSSE drives the acceptance scenario through the HTTP
// surface: a missed rent payment fires `overdue > 0 for 2 blocks`
// exactly once, and the firing shows up in /api/v1/alerts, in the
// contract's timeline, and as an event:alert frame on the head stream.
func TestV1AlertsAndSSE(t *testing.T) {
	a, tw := watchRig(t, "missed-rent: overdue > 0 for 2 blocks", 2)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	b := newBrowser(t, srv)
	b.register("landlady", "pw")
	b2 := newBrowser(t, srv)
	b2.register("tenant", "pw")
	landlady, tenant := meAddr(t, b), meAddr(t, b2)
	bc := appChain(t, a)

	dep, err := a.Rental.DeployRental(landlady, core.RentalTerms{
		Rent: ethtypes.Ether(1), Deposit: ethtypes.Ether(2), Months: 12, House: "Berlin-42",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := ethtypes.HexToAddress(dep.Row.Address)
	if err := a.Rental.Confirm(tenant, addr); err != nil {
		t.Fatal(err)
	}

	stream := openStream(t, b, "/api/v1/heads", nil)
	stream.next(5 * time.Second) // initial head frame

	// The tenant goes silent; empty seals advance the chain past the
	// rent deadline and hold the overdue condition for two blocks.
	sawAlert := false
	var alertData string
	for i := 0; i < 5 && !sawAlert; i++ {
		bc.MineBlock()
		for {
			f := stream.next(5 * time.Second)
			if f.event == "alert" {
				sawAlert = true
				alertData = f.data
				break
			}
			if f.event == "head" {
				break
			}
		}
	}
	if !sawAlert {
		t.Fatal("no event:alert frame on the head stream")
	}
	var al watch.Alert
	if err := json.Unmarshal([]byte(alertData), &al); err != nil {
		t.Fatal(err)
	}
	if al.Rule != "missed-rent" || al.Value < 1 {
		t.Fatalf("alert frame: %s", alertData)
	}

	// Exactly one firing, visible via the REST alert feed...
	resp, body := b.get("/api/v1/alerts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alerts: %d %s", resp.StatusCode, body)
	}
	var feed struct {
		Alerts []watch.Alert `json:"alerts"`
		Firing int           `json:"firing"`
		Total  uint64        `json:"total"`
	}
	if err := json.Unmarshal([]byte(body), &feed); err != nil {
		t.Fatal(err)
	}
	if len(feed.Alerts) != 1 || feed.Total != 1 || feed.Firing != 1 {
		t.Fatalf("alert feed: %s", body)
	}
	// ... filterable by sequence ...
	resp, body = b.get("/api/v1/alerts?since=" + jsonUint(feed.Alerts[0].Seq))
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &feed); err != nil {
		t.Fatal(err)
	}
	if len(feed.Alerts) != 0 {
		t.Fatalf("since filter returned %s", body)
	}
	// ... and on the contract's own timeline.
	sawTimelineAlert := false
	for _, ev := range tw.Timeline(addr) {
		if ev.Type == "alert" && ev.Rule == "missed-rent" {
			sawTimelineAlert = true
		}
	}
	if !sawTimelineAlert {
		t.Fatal("alert missing from contract timeline")
	}

	// More silent blocks must not re-fire.
	for i := 0; i < 3; i++ {
		bc.MineBlock()
	}
	tw.Sync()
	if st := tw.Status(); st.AlertsTotal != 1 {
		t.Fatalf("re-fired: %d total", st.AlertsTotal)
	}
}

func jsonUint(n uint64) string {
	b, _ := json.Marshal(n)
	return string(b)
}
