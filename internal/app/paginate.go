package app

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
)

// Cursor pagination for the v1 list endpoints.
//
//	GET /api/v1/contracts?limit=50&cursor=0xabc...&since=120
//	GET /api/v1/contracts/{addr}/payments?limit=20&cursor=40&since=120
//
// Responses carry "nextCursor" while more rows remain; pass it back
// verbatim to fetch the next page. Cursors are opaque to clients: for
// contracts it is the last returned address (rows are served in
// address order, so inserts between pages never shift the window), for
// payments the offset into the append-only history. `since=<block>`
// (decimal or 0x-hex) keeps only entries with on-chain activity at or
// after that block. Requests without limit/cursor return everything,
// unchanged from before pagination existed.

// maxPageLimit bounds one page; a cursor without an explicit limit
// pages by defaultPageLimit.
const (
	maxPageLimit     = 500
	defaultPageLimit = 100
)

// pageParams parses ?limit= and ?cursor=. limit == 0 with an empty
// cursor means "no pagination requested".
func pageParams(r *http.Request) (limit int, cursor string, err error) {
	q := r.URL.Query()
	cursor = q.Get("cursor")
	if s := q.Get("limit"); s != "" {
		limit, err = strconv.Atoi(s)
		if err != nil || limit < 1 {
			return 0, "", fmt.Errorf("bad limit %q", s)
		}
		if limit > maxPageLimit {
			limit = maxPageLimit
		}
	} else if cursor != "" {
		limit = defaultPageLimit
	}
	return limit, cursor, nil
}

// sinceParam parses ?since=. Zero means no filter.
func sinceParam(r *http.Request) (uint64, error) {
	s := r.URL.Query().Get("since")
	if s == "" {
		return 0, nil
	}
	n, err := parseBlockParam(s)
	if err != nil {
		return 0, fmt.Errorf("bad since %q", s)
	}
	return n, nil
}

// filterRowsSince keeps the dashboard rows whose contract logged
// anything at or after block since — one FilterLogs scan over every
// row address, resolved against a single head view.
func (a *App) filterRowsSince(rows []DashboardRow, since uint64) ([]DashboardRow, error) {
	if since == 0 || len(rows) == 0 {
		return rows, nil
	}
	addrs := make([]ethtypes.Address, len(rows))
	for i, row := range rows {
		addrs[i] = ethtypes.HexToAddress(row.Address)
	}
	logs, err := a.Manager.Client.Backend().FilterLogs(chain.FilterQuery{
		FromBlock: since,
		Addresses: addrs,
	})
	if err != nil {
		return nil, err
	}
	active := make(map[string]bool, len(logs))
	for _, l := range logs {
		active[strings.ToLower(l.Address.Hex())] = true
	}
	kept := make([]DashboardRow, 0, len(rows))
	for _, row := range rows {
		if active[strings.ToLower(row.Address)] {
			kept = append(kept, row)
		}
	}
	return kept, nil
}

// pageContracts orders rows by address and applies cursor pagination.
// Returns the page and the nextCursor ("" when the listing is done).
func pageContracts(rows []DashboardRow, limit int, cursor string) ([]DashboardRow, string) {
	sort.Slice(rows, func(i, j int) bool {
		return strings.ToLower(rows[i].Address) < strings.ToLower(rows[j].Address)
	})
	if cursor != "" {
		c := strings.ToLower(cursor)
		i := sort.Search(len(rows), func(i int) bool {
			return strings.ToLower(rows[i].Address) > c
		})
		rows = rows[i:]
	}
	if limit == 0 || len(rows) <= limit {
		return rows, ""
	}
	page := rows[:limit]
	return page, page[len(page)-1].Address
}

// v1ContractPayments is the paginated cross-version payment list:
// GET /api/v1/contracts/{addr}/payments.
func (a *App) v1ContractPayments(w http.ResponseWriter, r *http.Request, u *User, addr ethtypes.Address) {
	if _, err := a.Manager.GetRow(addr); err != nil {
		writeV1Error(w, r, http.StatusNotFound, v1NotFound, err.Error())
		return
	}
	limit, cursor, err := pageParams(r)
	if err != nil {
		writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, err.Error())
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, err.Error())
		return
	}
	hist, err := a.Rental.RentHistory(u.Addr(), addr)
	if err != nil {
		writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, err.Error())
		return
	}

	type payJSON struct {
		Version     int    `json:"version"`
		Month       uint64 `json:"month"`
		Amount      string `json:"amountWei"`
		TxHash      string `json:"txHash,omitempty"`
		BlockNumber uint64 `json:"blockNumber,omitempty"`
	}
	pays := make([]payJSON, 0, len(hist))
	for _, p := range hist {
		pj := payJSON{Version: p.Version, Month: p.Month, Amount: p.Amount.String()}
		if !p.TxHash.IsZero() {
			pj.TxHash = p.TxHash.Hex()
			if rcpt, ok, _ := a.Manager.Client.Backend().TransactionReceipt(p.TxHash); ok {
				pj.BlockNumber = rcpt.BlockNumber
			}
		}
		// since filters on the mined height; untraceable payments (no
		// tx hash) carry no height and are filtered out.
		if since > 0 && pj.BlockNumber < since {
			continue
		}
		pays = append(pays, pj)
	}

	// Cursor = offset into the (append-only) filtered history.
	start := 0
	if cursor != "" {
		start, err = strconv.Atoi(cursor)
		if err != nil || start < 0 {
			writeV1Error(w, r, http.StatusBadRequest, v1BadRequest, fmt.Sprintf("bad cursor %q", cursor))
			return
		}
		if start > len(pays) {
			start = len(pays)
		}
	}
	page := pays[start:]
	next := ""
	if limit > 0 && len(page) > limit {
		page = page[:limit]
		next = strconv.Itoa(start + limit)
	}
	out := map[string]interface{}{"payments": page, "total": len(pays)}
	if next != "" {
		out["nextCursor"] = next
	}
	if head := a.v1Head(); head != nil {
		out["head"] = head
	}
	writeJSON(w, http.StatusOK, out)
}
