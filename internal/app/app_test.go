package app

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"legalchain/internal/chain"
	"legalchain/internal/core"
	"legalchain/internal/docstore"
	"legalchain/internal/ethtypes"
	"legalchain/internal/ipfs"
	"legalchain/internal/wallet"
	"legalchain/internal/web3"
)

// rig builds the full stack with a faucet and returns the app.
func rig(t *testing.T) *App {
	t.Helper()
	faucet := wallet.DevAccounts("app faucet", 1)[0]
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc([]wallet.Account{faucet}, ethtypes.Ether(1_000_000))
	// Persistence on: the cross-tier trace test expects blockdb spans,
	// which only a durable chain produces.
	bc, err := chain.Open(g, chain.WithPersistence(chain.PersistConfig{
		DataDir: t.TempDir(), NoSync: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	ks := wallet.NewKeystore()
	ks.Import(faucet.Key)
	client, err := web3.NewClient(web3.NewLocalBackend(bc), ks)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := docstore.Open("")
	t.Cleanup(func() { store.Close() })
	m := core.NewManager(client, ipfs.NewNode(ipfs.NewMemStore()), store)
	a := New(m)
	a.Faucet = faucet.Address
	return a
}

func TestRegisterLoginSessions(t *testing.T) {
	a := rig(t)
	u, err := a.Register("Eleana_Kafeza", "ek@example.com", "secret")
	if err != nil {
		t.Fatal(err)
	}
	// User funded by the faucet.
	bal, _ := a.Manager.Client.Backend().GetBalance(u.Addr())
	if bal != ethtypes.Ether(100) {
		t.Fatalf("balance = %s", ethtypes.FormatEther(bal))
	}
	// Duplicate rejected.
	if _, err := a.Register("eleana_kafeza", "", "x"); err != ErrUserExists {
		t.Fatalf("dup: %v", err)
	}
	// Wrong password rejected.
	if _, err := a.Login("eleana_kafeza", "wrong"); err != ErrBadCredentials {
		t.Fatal("wrong password accepted")
	}
	token, err := a.Login("Eleana_Kafeza", "secret")
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.SessionUser(token)
	if err != nil || got.Name != "eleana_kafeza" {
		t.Fatal("session resolution")
	}
	a.Logout(token)
	if _, err := a.SessionUser(token); err != ErrNoSession {
		t.Fatal("logout ineffective")
	}
}

// browser is a cookie-keeping test client.
type browser struct {
	t   *testing.T
	c   *http.Client
	url string
}

func newBrowser(t *testing.T, srv *httptest.Server) *browser {
	jar, _ := cookiejar.New(nil)
	return &browser{t: t, c: &http.Client{Jar: jar}, url: srv.URL}
}

func (b *browser) post(path string, form url.Values) (*http.Response, string) {
	b.t.Helper()
	resp, err := b.c.PostForm(b.url+path, form)
	if err != nil {
		b.t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func (b *browser) get(path string) (*http.Response, string) {
	b.t.Helper()
	resp, err := b.c.Get(b.url + path)
	if err != nil {
		b.t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func (b *browser) register(name, pass string) {
	b.t.Helper()
	resp, body := b.post("/register", url.Values{"name": {name}, "email": {name + "@x.io"}, "password": {pass}})
	if resp.StatusCode != http.StatusOK {
		b.t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	resp, body = b.post("/login", url.Values{"name": {name}, "password": {pass}})
	if resp.StatusCode != http.StatusOK {
		b.t.Fatalf("login: %d %s", resp.StatusCode, body)
	}
}

// TestFullWebLifecycle drives the UI flows of Figs. 7–11 end to end:
// register, deploy (landlord), dashboard, confirm + pay rent (tenant),
// modify (landlord), confirm modification, terminate.
func TestFullWebLifecycle(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	landlord := newBrowser(t, srv)
	landlord.register("junaid_ali", "pw1")
	tenant := newBrowser(t, srv)
	tenant.register("eleana_kafeza", "pw2")

	// Landlord deploys with a legal document (Fig. 10).
	resp, body := landlord.post("/deploy", url.Values{
		"artifact": {"BaseRental"},
		"rent":     {"1"}, "deposit": {"2"}, "months": {"12"},
		"house":    {"10115-Berlin-42"},
		"document": {"%PDF-1.4 the rental agreement in English"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: %d %s", resp.StatusCode, body)
	}

	// Dashboard shows the contract for both users (Fig. 7).
	_, dash := landlord.get("/dashboard")
	if !strings.Contains(dash, "BaseRental") || !strings.Contains(dash, "AWAITING TENANT") {
		t.Fatalf("landlord dashboard:\n%s", dash)
	}
	_, dash = tenant.get("/dashboard")
	if !strings.Contains(dash, "CONFIRM AGREEMENT") {
		t.Fatalf("tenant dashboard missing confirm action:\n%s", dash)
	}
	addr := extractAddr(t, dash)

	// Contract page shows the document link.
	_, page := tenant.get("/contract/" + addr)
	if !strings.Contains(page, "/doc/"+addr) {
		t.Fatal("document link missing")
	}
	_, doc := tenant.get("/doc/" + addr)
	if !strings.Contains(doc, "rental agreement in English") {
		t.Fatal("document body wrong")
	}

	// Tenant confirms (pays deposit) and pays rent twice.
	if resp, body := tenant.post("/contract/"+addr+"/confirm", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("confirm: %d %s", resp.StatusCode, body)
	}
	for i := 0; i < 2; i++ {
		if resp, body := tenant.post("/contract/"+addr+"/pay", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("pay: %d %s", resp.StatusCode, body)
		}
	}
	_, page = tenant.get("/contract/" + addr)
	if !strings.Contains(page, "<td>2</td>") { // month 2 row
		t.Fatalf("payment history missing:\n%s", page)
	}

	// Landlord modifies (Fig. 11) — new linked version.
	resp, body = landlord.post("/contract/"+addr+"/modify", url.Values{
		"rent": {"1"}, "deposit": {"2"}, "months": {"12"},
		"house":       {"10115-Berlin-42"},
		"maintenance": {"0.5"}, "discount": {"0"}, "fine": {"1"},
		"document": {"%PDF-1.4 updated agreement with maintenance clause"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("modify: %d %s", resp.StatusCode, body)
	}
	// The old page now shows a two-version evidence line.
	_, page = landlord.get("/contract/" + addr)
	if strings.Count(page, "— v") < 2 {
		t.Fatalf("version chain not shown:\n%s", page)
	}
	newAddr := lastAddr(t, page)
	if strings.EqualFold(newAddr, addr) {
		t.Fatal("no new version found")
	}

	// Tenant confirms the modification: old version terminates, new starts.
	if resp, body := tenant.post("/contract/"+newAddr+"/confirm-modification", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("confirm-modification: %d %s", resp.StatusCode, body)
	}
	_, page = tenant.get("/contract/" + newAddr)
	if !strings.Contains(page, "PAY MAINTENANCE") {
		t.Fatalf("maintenance action missing on v2:\n%s", page)
	}
	if resp, _ := tenant.post("/contract/"+newAddr+"/maintenance", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("maintenance payment failed")
	}
	// Cross-version history on the new page shows old payments too.
	if !strings.Contains(page, "v1") {
		t.Fatalf("history lost v1 rows:\n%s", page)
	}

	// Terminate from the tenant side.
	if resp, _ := tenant.post("/contract/"+newAddr+"/terminate", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("terminate failed")
	}
	_, dash = tenant.get("/dashboard")
	if !strings.Contains(dash, "terminated") {
		t.Fatalf("termination not reflected:\n%s", dash)
	}
}

func TestUploadArtifactFlow(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	b := newBrowser(t, srv)
	b.register("uploader", "pw")

	// Compile-from-source path.
	src := `contract Tiny { uint public x; function set(uint v) public { x = v; } }`
	resp, body := b.post("/upload", url.Values{"source": {src}, "contract": {"Tiny"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	_, dash := b.get("/dashboard")
	if !strings.Contains(dash, "tiny") {
		t.Fatalf("artifact not listed:\n%s", dash)
	}
	// Raw bytecode + ABI path (Fig. 9): re-upload Tiny's artifact bytes.
	art, err := a.GetArtifact("tiny")
	if err != nil {
		t.Fatal(err)
	}
	resp, body = b.post("/upload", url.Values{
		"name":     {"tiny2"},
		"abi":      {string(art.ABIJSON)},
		"bytecode": {"0x" + hexOf(art.Bytecode)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw upload: %d %s", resp.StatusCode, body)
	}
	if _, err := a.GetArtifact("tiny2"); err != nil {
		t.Fatal(err)
	}
	// Garbage rejected.
	resp, _ = b.post("/upload", url.Values{"name": {"bad"}, "abi": {"not json"}, "bytecode": {"0x00"}})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("invalid ABI accepted")
	}
}

func TestAuthRequired(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	c := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := c.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("unauthenticated dashboard: %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/login" {
		t.Fatalf("redirect to %q", loc)
	}
}

func TestWeiOfParsing(t *testing.T) {
	cases := map[string]string{
		"1":    ethtypes.Ether(1).String(),
		"0.5":  "500000000000000000",
		"2.25": "2250000000000000000",
		"":     "0",
		"abc":  "0",
	}
	for in, want := range cases {
		if got := weiOf(in).String(); got != want {
			t.Errorf("weiOf(%q) = %s, want %s", in, got, want)
		}
	}
}

// --- helpers ---------------------------------------------------------------

func extractAddr(t *testing.T, html string) string {
	t.Helper()
	i := strings.Index(html, "/contract/0x")
	if i < 0 {
		t.Fatalf("no contract link in:\n%s", html)
	}
	return html[i+len("/contract/") : i+len("/contract/")+42]
}

func lastAddr(t *testing.T, html string) string {
	t.Helper()
	i := strings.LastIndex(html, "/contract/0x")
	if i < 0 {
		t.Fatal("no contract link")
	}
	return html[i+len("/contract/") : i+len("/contract/")+42]
}

func hexOf(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, c := range b {
		out = append(out, digits[c>>4], digits[c&0xf])
	}
	return string(out)
}
