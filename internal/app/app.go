// Package app is the presentation tier of the paper's architecture
// (Fig. 1): a server-rendered web application with the user-specific
// dashboard (Fig. 7), contract upload (Fig. 9), deployment (Fig. 10),
// confirm/pay-rent actions, and the terminate-or-modify flow (Fig. 11).
// It plays the Django role of Table I on top of the contract manager.
package app

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"

	"legalchain/internal/core"
	"legalchain/internal/ethtypes"
	"legalchain/internal/watch"
	"legalchain/internal/web3"
)

// Errors surfaced by the user layer.
var (
	ErrBadCredentials = errors.New("app: invalid username or password")
	ErrUserExists     = errors.New("app: user already exists")
	ErrNoSession      = errors.New("app: not logged in")
)

// TableUsers is the docstore table of user rows (the paper's
// User(name, email, password, public key) table).
const TableUsers = "users"

// User is one registered person.
type User struct {
	Name         string `json:"name"`
	Email        string `json:"email"`
	PasswordHash string `json:"passwordHash"` // hex(sha256(salt || password))
	Salt         string `json:"salt"`
	Address      string `json:"address"` // funded chain account (public key role)
}

// Addr parses the user's chain address.
func (u *User) Addr() ethtypes.Address { return ethtypes.HexToAddress(u.Address) }

// App wires the manager to users and sessions.
type App struct {
	Manager *core.Manager
	Rental  *core.RentalService

	// Watch is the optional contract watchtower. When set, the API
	// serves per-contract timelines and alert feeds, and head streams
	// carry event:alert frames.
	Watch *watch.Tower

	// Faucet funds new users so they can transact on the devnet.
	Faucet ethtypes.Address

	mu       sync.Mutex
	sessions map[string]string // token -> username
}

// New builds the application layer.
func New(m *core.Manager) *App {
	return &App{
		Manager:  m,
		Rental:   core.NewRentalService(m),
		sessions: map[string]string{},
	}
}

// hashPassword derives the stored hash.
func hashPassword(salt, password string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

func randomToken() string {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable for session security.
		panic(fmt.Sprintf("app: rand: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Register creates a user, generates a chain account for them, and (if a
// faucet is configured) funds it.
func (a *App) Register(name, email, password string) (*User, error) {
	name = strings.TrimSpace(strings.ToLower(name))
	if name == "" || password == "" {
		return nil, fmt.Errorf("app: name and password are required")
	}
	if a.Manager.Store.Has(TableUsers, name) {
		return nil, ErrUserExists
	}
	acc, err := a.Manager.Client.Keystore().NewAccount()
	if err != nil {
		return nil, err
	}
	salt := randomToken()
	u := &User{
		Name:         name,
		Email:        email,
		Salt:         salt,
		PasswordHash: hashPassword(salt, password),
		Address:      acc.Address.Hex(),
	}
	if err := a.Manager.Store.Put(TableUsers, name, u); err != nil {
		return nil, err
	}
	if !a.Faucet.IsZero() {
		// Fund the user with 100 ether from the faucet.
		opts := web3.TxOpts{From: a.Faucet, Value: ethtypes.Ether(100)}
		if _, err := a.Manager.Client.Transfer(opts, acc.Address); err != nil {
			return nil, fmt.Errorf("app: funding new user: %w", err)
		}
	}
	return u, nil
}

// Login verifies credentials and opens a session.
func (a *App) Login(name, password string) (token string, err error) {
	name = strings.TrimSpace(strings.ToLower(name))
	var u User
	if err := a.Manager.Store.Get(TableUsers, name, &u); err != nil {
		return "", ErrBadCredentials
	}
	if hashPassword(u.Salt, password) != u.PasswordHash {
		return "", ErrBadCredentials
	}
	token = randomToken()
	a.mu.Lock()
	a.sessions[token] = name
	a.mu.Unlock()
	return token, nil
}

// Logout closes a session.
func (a *App) Logout(token string) {
	a.mu.Lock()
	delete(a.sessions, token)
	a.mu.Unlock()
}

// SessionUser resolves a session token to its user.
func (a *App) SessionUser(token string) (*User, error) {
	a.mu.Lock()
	name, ok := a.sessions[token]
	a.mu.Unlock()
	if !ok {
		return nil, ErrNoSession
	}
	var u User
	if err := a.Manager.Store.Get(TableUsers, name, &u); err != nil {
		return nil, ErrNoSession
	}
	return &u, nil
}

// DashboardRow is one contract entry on the user dashboard (Fig. 7),
// annotated with the action the user can take next.
type DashboardRow struct {
	Address string
	Name    string
	Version int
	State   string
	Role    string // "landlord" | "tenant" | "open"
	Action  string // suggested next action
	House   string
	RentWei string
}

// Dashboard builds the user's view: contracts they deployed, contracts
// they are the tenant of, and open agreements they could join.
func (a *App) Dashboard(u *User) ([]DashboardRow, error) {
	var out []DashboardRow
	viewer := u.Addr()
	for _, row := range a.Manager.Rows() {
		dr := DashboardRow{
			Address: row.Address, Name: row.Name,
			Version: row.Version, State: row.State,
		}
		switch {
		case strings.EqualFold(row.Landlord, u.Address):
			dr.Role = "landlord"
		case strings.EqualFold(row.Tenant, u.Address):
			dr.Role = "tenant"
		default:
			dr.Role = "open"
		}
		dr.Action = suggestAction(row, dr.Role)
		// Enrich with live chain data where the ABI allows.
		if bound, err := a.Manager.BindVersion(ethtypes.HexToAddress(row.Address)); err == nil {
			if house, err := bound.CallString(viewer, "house"); err == nil {
				dr.House = house
			}
			if rent, err := bound.CallUint(viewer, "rent"); err == nil {
				dr.RentWei = rent.String()
			}
		}
		out = append(out, dr)
	}
	return out, nil
}

// suggestAction mirrors the paper's dashboard buttons: the available
// action depends on the contract's state and the viewer's role.
func suggestAction(row core.ContractRow, role string) string {
	switch row.State {
	case core.StateActive:
		switch {
		case role == "open" && row.Tenant == "":
			return "CONFIRM AGREEMENT"
		case role == "tenant":
			return "PAY RENT"
		case role == "landlord" && row.Tenant != "":
			return "TERMINATE OR MODIFY"
		case role == "landlord":
			return "AWAITING TENANT"
		}
	case core.StateSuperseded:
		return "VIEW HISTORY"
	case core.StateTerminated:
		return "TERMINATED"
	case core.StateRejected:
		return "REJECTED"
	}
	return "VIEW"
}

// sessionCount is exposed for tests.
func (a *App) sessionCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.sessions)
}

// cleanupSessions removes all sessions (used on shutdown).
func (a *App) cleanupSessions() {
	a.mu.Lock()
	a.sessions = map[string]string{}
	a.mu.Unlock()
}
