package app

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"legalchain/internal/chain"
	"legalchain/internal/web3"
)

// sseFrame is one parsed text/event-stream frame.
type sseFrame struct {
	event string
	id    string
	data  string
}

// sseReader parses frames off a live stream in a goroutine so tests
// can wait with a timeout.
type sseReader struct {
	t      *testing.T
	resp   *http.Response
	frames chan sseFrame
}

// openStream issues a streaming GET with the browser's session cookie
// and asserts the event-stream handshake.
func openStream(t *testing.T, b *browser, path string, hdr map[string]string) *sseReader {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, b.url+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := b.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("stream %s: content-type %q", path, ct)
	}
	r := &sseReader{t: t, resp: resp, frames: make(chan sseFrame, 64)}
	go r.run()
	t.Cleanup(r.close)
	return r
}

func (r *sseReader) close() { r.resp.Body.Close() }

// run parses frames until the body closes. Comments (heartbeats) are
// skipped.
func (r *sseReader) run() {
	defer close(r.frames)
	sc := bufio.NewScanner(r.resp.Body)
	var f sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if f.event != "" || f.data != "" {
				r.frames <- f
			}
			f = sseFrame{}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "event: "):
			f.event = line[len("event: "):]
		case strings.HasPrefix(line, "id: "):
			f.id = line[len("id: "):]
		case strings.HasPrefix(line, "data: "):
			f.data = line[len("data: "):]
		}
	}
}

// next waits for the next frame.
func (r *sseReader) next(timeout time.Duration) sseFrame {
	r.t.Helper()
	select {
	case f, ok := <-r.frames:
		if !ok {
			r.t.Fatal("stream closed while waiting for frame")
		}
		return f
	case <-time.After(timeout):
		r.t.Fatal("timed out waiting for SSE frame")
	}
	return sseFrame{}
}

// none asserts no frame arrives within d.
func (r *sseReader) none(d time.Duration) {
	r.t.Helper()
	select {
	case f, ok := <-r.frames:
		if ok {
			r.t.Fatalf("unexpected frame %q %s", f.event, f.data)
		}
	case <-time.After(d):
	}
}

// appChain digs the in-process chain out of the app for direct seals.
func appChain(t *testing.T, a *App) *chain.Blockchain {
	t.Helper()
	lb, ok := a.Manager.Client.Backend().(*web3.LocalBackend)
	if !ok {
		t.Fatal("test rig is not a local backend")
	}
	return lb.BC
}

func TestSSEHeadsStream(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	b := newBrowser(t, srv)
	b.register("watcher", "pw")
	bc := appChain(t, a)

	stream := openStream(t, b, "/api/v1/heads", nil)

	// A fresh stream replays the current head immediately.
	first := stream.next(5 * time.Second)
	if first.event != "head" {
		t.Fatalf("first frame: %q", first.event)
	}
	var head struct {
		Number uint64 `json:"number"`
		Hash   string `json:"hash"`
	}
	if err := json.Unmarshal([]byte(first.data), &head); err != nil {
		t.Fatal(err)
	}
	if head.Number != bc.View().BlockNumber() {
		t.Fatalf("first head = %d, chain head = %d", head.Number, bc.View().BlockNumber())
	}
	if first.id != strconv.FormatUint(head.Number, 10) {
		t.Fatalf("id %q for block %d", first.id, head.Number)
	}

	// Every subsequent seal arrives, in order, with linked hashes.
	prev := head.Number
	for i := 0; i < 3; i++ {
		bc.MineBlock()
		f := stream.next(5 * time.Second)
		if f.event != "head" {
			t.Fatalf("frame %d: event %q", i, f.event)
		}
		if err := json.Unmarshal([]byte(f.data), &head); err != nil {
			t.Fatal(err)
		}
		if head.Number != prev+1 {
			t.Fatalf("out of order: got block %d after %d", head.Number, prev)
		}
		prev = head.Number
	}
}

func TestSSEHeadsResume(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	b := newBrowser(t, srv)
	b.register("resumer", "pw")
	bc := appChain(t, a)
	for i := 0; i < 3; i++ {
		bc.MineBlock()
	}
	headNow := bc.View().BlockNumber()

	// ?since replays everything after the given height.
	stream := openStream(t, b, "/api/v1/heads?since=0", nil)
	for n := uint64(1); n <= headNow; n++ {
		f := stream.next(5 * time.Second)
		if f.event != "head" || f.id != strconv.FormatUint(n, 10) {
			t.Fatalf("resume: want head %d, got %q id %q", n, f.event, f.id)
		}
	}

	// Last-Event-ID does the same (browser auto-reconnect path).
	stream2 := openStream(t, b, "/api/v1/heads", map[string]string{
		"Last-Event-ID": strconv.FormatUint(headNow-1, 10),
	})
	f := stream2.next(5 * time.Second)
	if f.id != strconv.FormatUint(headNow, 10) {
		t.Fatalf("Last-Event-ID resume: got id %q, want %d", f.id, headNow)
	}
}

func TestSSEContractEventsStream(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)

	landlord := newBrowser(t, srv)
	landlord.register("lessor", "pw1")
	tenant := newBrowser(t, srv)
	tenant.register("lessee", "pw2")

	if resp, body := landlord.post("/deploy", url.Values{
		"artifact": {"BaseRental"},
		"rent":     {"1"}, "deposit": {"2"}, "months": {"12"},
		"house":    {"10115-Berlin-42"},
		"document": {"%PDF-1.4 agreement"},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: %d %s", resp.StatusCode, body)
	}
	_, dash := tenant.get("/dashboard")
	addr := extractAddr(t, dash)

	// Live stream opened before the tenant acts: only future logs.
	stream := openStream(t, tenant, "/api/v1/contracts/"+addr+"/events", nil)

	if resp, body := tenant.post("/contract/"+addr+"/confirm", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("confirm: %d %s", resp.StatusCode, body)
	}
	if resp, body := tenant.post("/contract/"+addr+"/pay", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pay: %d %s", resp.StatusCode, body)
	}

	sawDecoded := false
	for i := 0; i < 2; i++ {
		f := stream.next(5 * time.Second)
		if f.event != "log" {
			t.Fatalf("frame %d: event %q data %s", i, f.event, f.data)
		}
		var log struct {
			Address     string            `json:"address"`
			BlockNumber uint64            `json:"blockNumber"`
			LogIndex    uint64            `json:"logIndex"`
			Event       string            `json:"event"`
			Args        map[string]string `json:"args"`
		}
		if err := json.Unmarshal([]byte(f.data), &log); err != nil {
			t.Fatal(err)
		}
		if !strings.EqualFold(log.Address, addr) {
			t.Fatalf("log from %s, want %s", log.Address, addr)
		}
		if want := fmt.Sprintf("%d:%d", log.BlockNumber, log.LogIndex); f.id != want {
			t.Fatalf("id %q, want %q", f.id, want)
		}
		if log.Event != "" {
			sawDecoded = true
		}
	}
	if !sawDecoded {
		t.Fatal("no frame carried a decoded event name")
	}

	// Resuming from genesis replays the history (at-least-once).
	replay := openStream(t, tenant, "/api/v1/contracts/"+addr+"/events?since=0", nil)
	if f := replay.next(5 * time.Second); f.event != "log" {
		t.Fatalf("replay frame: %q", f.event)
	}

	// Unknown contract is a 404 envelope before any stream starts.
	resp, body := tenant.get("/api/v1/contracts/0x0000000000000000000000000000000000000001/events")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, `"not_found"`) {
		t.Fatalf("unknown contract: %d %s", resp.StatusCode, body)
	}
}

func TestSSEUnauthorizedEnvelope(t *testing.T) {
	a := rig(t)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/api/v1/heads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error.Code != "unauthorized" {
		t.Fatalf("code %q", out.Error.Code)
	}
}
