package app

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"legalchain/internal/chain"
	"legalchain/internal/ethtypes"
	"legalchain/internal/hexutil"
	"legalchain/internal/obs"
	"legalchain/internal/web3"
	"legalchain/internal/xtrace"
)

// Server-Sent Events streams: the presentation tier's push channel.
// Where the JSON-RPC endpoint offers eth_subscribe over WebSocket, the
// REST API offers the same head and contract-event feeds as
// text/event-stream — consumable from a browser EventSource or
// `curl -N` with no protocol implementation at all.
//
//	GET /api/v1/heads                        event: head, one per sealed block
//	GET /api/v1/contracts/{addr}/events      event: log, one per contract log
//
// Frames carry an `id:` (the block number, or "block:logIndex" for
// logs), so a dropped connection resumes from the Last-Event-ID header
// the browser replays automatically; `?since=<block>` forces an
// explicit starting height. Resume replays whole blocks: a log stream
// resumed mid-block delivers that block's earlier logs again
// (at-least-once, never a hole).
//
// Errors inside an established stream use the same envelope as v1 JSON
// responses, as an `event: error` frame; heads a subscriber was too
// slow to receive and the chain has evicted arrive as `event: gap`.
// Every stream is fed from the chain's subscription hub, so a stalled
// consumer never delays the sealer.

// sseHeartbeat is how often an idle stream emits a comment frame so
// intermediaries don't reap the connection.
const sseHeartbeat = 15 * time.Second

// sseStream wraps one established event-stream response.
type sseStream struct {
	w http.ResponseWriter
	f *http.ResponseController
	r *http.Request
}

// startSSE negotiates the stream or replies with a v1 error envelope.
// The ResponseController reaches Flush through instrumentation
// wrappers (obs.StatusWriter unwraps).
func startSSE(w http.ResponseWriter, r *http.Request) *sseStream {
	if r.Method != http.MethodGet {
		writeV1Error(w, r, http.StatusMethodNotAllowed, v1NotAllowed, "GET only")
		return nil
	}
	f := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // common reverse proxies: do not buffer
	w.WriteHeader(http.StatusOK)
	if err := f.Flush(); err != nil {
		return nil // writer cannot stream; headers already gone
	}
	return &sseStream{w: w, f: f, r: r}
}

// send writes one event frame. data must already be JSON (writeJSON's
// encoder is not reused: SSE data lines cannot contain raw newlines).
func (s *sseStream) send(event, id string, data []byte) error {
	if _, err := fmt.Fprintf(s.w, "event: %s\n", event); err != nil {
		return err
	}
	if id != "" {
		if _, err := fmt.Fprintf(s.w, "id: %s\n", id); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(s.w, "data: %s\n\n", data); err != nil {
		return err
	}
	return s.f.Flush()
}

// comment writes a heartbeat comment frame.
func (s *sseStream) comment() error {
	if _, err := fmt.Fprint(s.w, ": heartbeat\n\n"); err != nil {
		return err
	}
	return s.f.Flush()
}

// sendError emits the v1 error envelope as an error event — the same
// {code,message,requestId} taxonomy JSON responses use.
func (s *sseStream) sendError(code, message string) {
	e := map[string]string{"code": code, "message": message}
	if rid := obs.RequestIDFrom(s.r.Context()); rid != "" {
		e["requestId"] = rid
	}
	buf, _ := json.Marshal(map[string]interface{}{"error": e})
	s.send("error", "", buf)
}

// sendGap reports heads dropped beyond recovery: missed blocks are
// gone, the stream resumes at block resume.
func (s *sseStream) sendGap(missed, resume uint64) error {
	buf, _ := json.Marshal(map[string]uint64{"missed": missed, "resume": resume})
	return s.send("gap", "", buf)
}

// sseSince resolves the resume height: ?since=<block> (decimal or hex)
// wins over the Last-Event-ID header ("<block>" or "<block>:<idx>").
// Returns (height, true) when the client asked to resume.
func sseSince(r *http.Request) (uint64, bool) {
	if s := r.URL.Query().Get("since"); s != "" {
		if n, err := parseBlockParam(s); err == nil {
			return n, true
		}
	}
	if s := r.Header.Get("Last-Event-ID"); s != "" {
		if block, _, found := strings.Cut(s, ":"); found {
			s = block
		}
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			return n, true
		}
	}
	return 0, false
}

// parseBlockParam accepts a decimal or 0x-hex block number.
func parseBlockParam(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return hexutil.DecodeUint64(s)
	}
	return strconv.ParseUint(s, 10, 64)
}

// sseBackend asserts the push-capable backend pair. HTTP backends
// cannot stream; the caller reports that in-band.
func (a *App) sseBackend() (web3.HeadViewer, web3.HeadSubscriber, bool) {
	hv, ok1 := a.Manager.Client.Backend().(web3.HeadViewer)
	hs, ok2 := a.Manager.Client.Backend().(web3.HeadSubscriber)
	return hv, hs, ok1 && ok2
}

// v1Heads streams every sealed head: GET /api/v1/heads.
func (a *App) v1Heads(w http.ResponseWriter, r *http.Request, u *User) {
	stream := startSSE(w, r)
	if stream == nil {
		return
	}
	hv, hs, ok := a.sseBackend()
	if !ok {
		stream.sendError(v1Internal, "backend cannot stream (remote JSON-RPC; use eth_subscribe over WebSocket)")
		return
	}
	_, sp := xtrace.StartRoot(r.Context(), "web", "sseHeads", obs.RequestIDFrom(r.Context()))
	defer sp.End()
	sub := hs.SubscribeHeads(0)
	defer sub.Close()

	v := hv.HeadView()
	last, resumed := sseSince(r)
	if !resumed {
		// Fresh stream: deliver the current head immediately so the
		// consumer renders without waiting for the next seal.
		if v.BlockNumber() > 0 {
			last = v.BlockNumber() - 1
		}
	}
	// Alert frames ride the head stream. A fresh stream starts at the
	// current alert high-water mark (history is served by /api/v1/alerts,
	// not replayed into every new stream).
	var alertSeq uint64
	if a.Watch != nil {
		for _, al := range a.Watch.Alerts() {
			if al.Seq > alertSeq {
				alertSeq = al.Seq
			}
		}
	}
	var err error
	if last, err = a.sseDeliverHeads(stream, v, last); err != nil {
		return
	}
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if stream.comment() != nil {
				return
			}
		case <-sub.Wait():
			for {
				events, gap, alive := sub.Drain()
				v = nil
				if len(events) > 0 {
					v = events[len(events)-1].View
				} else if gap > 0 {
					v = hv.HeadView()
				}
				if v != nil {
					if last, err = a.sseDeliverHeads(stream, v, last); err != nil {
						return
					}
					if alertSeq, err = a.sseDeliverAlerts(stream, v, alertSeq); err != nil {
						return
					}
				}
				if !alive {
					stream.sendError(v1Internal, "node shutting down")
					return
				}
				if len(events) == 0 && gap == 0 {
					break
				}
			}
		}
	}
}

// sseDeliverAlerts folds the watchtower to v's head and emits one
// event:alert frame per rule firing past since. Alert frames carry no
// id: Last-Event-ID keeps tracking block numbers, and a resumed stream
// re-reads missed alerts from /api/v1/alerts.
func (a *App) sseDeliverAlerts(s *sseStream, v *chain.HeadView, since uint64) (uint64, error) {
	if a.Watch == nil {
		return since, nil
	}
	a.Watch.SyncView(v)
	for _, al := range a.Watch.AlertsSince(since) {
		buf, err := json.Marshal(al)
		if err != nil {
			return since, err
		}
		if err := s.send("alert", "", buf); err != nil {
			return since, err
		}
		since = al.Seq
	}
	return since, nil
}

// sseDeliverHeads walks (last, head] on v, emitting one head frame per
// block and a gap frame for evicted ones. Returns the new high-water
// mark.
func (a *App) sseDeliverHeads(s *sseStream, v *chain.HeadView, last uint64) (uint64, error) {
	head := v.BlockNumber()
	missed := uint64(0)
	for n := last + 1; n <= head; n++ {
		b, ok := v.BlockByNumber(n)
		if !ok {
			missed++
			continue
		}
		buf, err := json.Marshal(map[string]interface{}{
			"number":     b.Number(),
			"hash":       b.Hash().Hex(),
			"parentHash": b.Header.ParentHash.Hex(),
			"stateRoot":  b.Header.StateRoot.Hex(),
			"timestamp":  b.Header.Time,
			"gasUsed":    b.Header.GasUsed,
			"txCount":    len(b.Transactions),
		})
		if err != nil {
			return last, err
		}
		if err := s.send("head", strconv.FormatUint(n, 10), buf); err != nil {
			return last, err
		}
	}
	if missed > 0 {
		if err := s.sendGap(missed, head); err != nil {
			return last, err
		}
	}
	if head > last {
		last = head
	}
	return last, nil
}

// v1ContractEvents streams a contract's logs:
// GET /api/v1/contracts/{addr}/events. Logs are emitted raw (address,
// topics, data) plus a decoded form when the registry knows the ABI.
func (a *App) v1ContractEvents(w http.ResponseWriter, r *http.Request, u *User, addr ethtypes.Address) {
	if _, err := a.Manager.GetRow(addr); err != nil {
		writeV1Error(w, r, http.StatusNotFound, v1NotFound, err.Error())
		return
	}
	stream := startSSE(w, r)
	if stream == nil {
		return
	}
	hv, hs, ok := a.sseBackend()
	if !ok {
		stream.sendError(v1Internal, "backend cannot stream (remote JSON-RPC; use eth_subscribe over WebSocket)")
		return
	}
	_, sp := xtrace.StartRoot(r.Context(), "web", "sseContractEvents", obs.RequestIDFrom(r.Context()))
	defer sp.End()
	// Best-effort decoder: the bound version's ABI names the events.
	var dec *web3.BoundContract
	if bound, err := a.Manager.BindVersion(addr); err == nil {
		dec = bound
	}
	sub := hs.SubscribeHeads(0)
	defer sub.Close()

	v := hv.HeadView()
	last, resumed := sseSince(r)
	if !resumed {
		last = v.BlockNumber() // live stream: only future logs
	}
	var err error
	if last, err = a.sseDeliverLogs(stream, v, addr, dec, last); err != nil {
		return
	}
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if stream.comment() != nil {
				return
			}
		case <-sub.Wait():
			for {
				events, gap, alive := sub.Drain()
				v = nil
				if len(events) > 0 {
					v = events[len(events)-1].View
				} else if gap > 0 {
					v = hv.HeadView()
				}
				if v != nil {
					if last, err = a.sseDeliverLogs(stream, v, addr, dec, last); err != nil {
						return
					}
				}
				if !alive {
					stream.sendError(v1Internal, "node shutting down")
					return
				}
				if len(events) == 0 && gap == 0 {
					break
				}
			}
		}
	}
}

// sseDeliverLogs emits every log of addr in blocks (last, head].
func (a *App) sseDeliverLogs(s *sseStream, v *chain.HeadView, addr ethtypes.Address, dec *web3.BoundContract, last uint64) (uint64, error) {
	head := v.BlockNumber()
	if head <= last {
		return last, nil
	}
	q := chain.FilterQuery{
		FromBlock: last + 1,
		ToBlock:   &head,
		Addresses: []ethtypes.Address{addr},
	}
	for _, l := range v.FilterLogs(q) {
		topics := make([]string, len(l.Topics))
		for i, t := range l.Topics {
			topics[i] = t.Hex()
		}
		out := map[string]interface{}{
			"address":     l.Address.Hex(),
			"topics":      topics,
			"data":        hexutil.Encode(l.Data),
			"blockNumber": l.BlockNumber,
			"txHash":      l.TxHash.Hex(),
			"logIndex":    l.Index,
		}
		if dec != nil {
			if d, err := dec.ABI.DecodeLog(l); err == nil {
				args := map[string]string{}
				for k, val := range d.Args {
					args[k] = fmt.Sprintf("%v", val)
				}
				out["event"] = d.Name
				out["args"] = args
			}
		}
		buf, err := json.Marshal(out)
		if err != nil {
			return last, err
		}
		id := fmt.Sprintf("%d:%d", l.BlockNumber, l.Index)
		if err := s.send("log", id, buf); err != nil {
			return last, err
		}
	}
	return head, nil
}
