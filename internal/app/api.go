package app

import (
	"encoding/json"
	"net/http"
	"strings"

	"legalchain/internal/core"
	"legalchain/internal/ethtypes"
)

// JSON API for programmatic consumers (the presentation tier beyond the
// HTML dashboard). All endpoints require the session cookie:
//
//	GET /api/contracts                 registry rows
//	GET /api/contracts/{addr}          one row + live chain state
//	GET /api/contracts/{addr}/chain    the walked evidence line
//	GET /api/contracts/{addr}/history  cross-version rent payments
//	GET /api/me                        the session user + balance

// APIHandler returns the /api/ mux (mounted by Handler).
func (a *App) apiRoutes(handle func(pattern string, h http.HandlerFunc)) {
	handle("/api/me", a.withUser(a.apiMe))
	handle("/api/contracts", a.withUser(a.apiContracts))
	handle("/api/contracts/", a.withUser(a.apiContract))
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (a *App) apiMe(w http.ResponseWriter, r *http.Request, u *User) {
	bal, _ := a.Manager.Client.Backend().GetBalance(u.Addr())
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"name":       u.Name,
		"email":      u.Email,
		"address":    u.Address,
		"balanceWei": bal.String(),
		"balanceEth": ethtypes.FormatEther(bal),
	})
}

func (a *App) apiContracts(w http.ResponseWriter, r *http.Request, u *User) {
	rows, err := a.Dashboard(u)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rows)
}

func (a *App) apiContract(w http.ResponseWriter, r *http.Request, u *User) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/contracts/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts[0]) != 42 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad address"})
		return
	}
	addr := ethtypes.HexToAddress(parts[0])
	sub := ""
	if len(parts) == 2 {
		sub = parts[1]
	}
	switch sub {
	case "":
		row, err := a.Manager.GetRow(addr)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		out := map[string]interface{}{"row": row}
		if bound, err := a.Manager.BindVersion(addr); err == nil {
			live := map[string]string{}
			for _, getter := range []string{"rent", "deposit", "state", "monthCounter"} {
				if v, err := bound.CallUint(u.Addr(), getter); err == nil {
					live[getter] = v.String()
				}
			}
			if house, err := bound.CallString(u.Addr(), "house"); err == nil {
				live["house"] = house
			}
			out["live"] = live
		}
		writeJSON(w, http.StatusOK, out)

	case "chain":
		line, err := a.Manager.WalkChain(addr)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		type nodeJSON struct {
			Address string `json:"address"`
			Version int    `json:"version"`
			State   string `json:"state"`
			Prev    string `json:"prev,omitempty"`
			Next    string `json:"next,omitempty"`
		}
		out := make([]nodeJSON, len(line))
		for i, n := range line {
			out[i] = nodeJSON{Address: n.Address.Hex(), Version: n.Version, State: n.State}
			if !n.Prev.IsZero() {
				out[i].Prev = n.Prev.Hex()
			}
			if !n.Next.IsZero() {
				out[i].Next = n.Next.Hex()
			}
		}
		verified := core.VerifyChain(line) == nil
		writeJSON(w, http.StatusOK, map[string]interface{}{"chain": out, "verified": verified})

	case "history":
		hist, err := a.Rental.RentHistory(u.Addr(), addr)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		type payJSON struct {
			Version int    `json:"version"`
			Month   uint64 `json:"month"`
			Amount  string `json:"amountWei"`
		}
		out := make([]payJSON, len(hist))
		for i, p := range hist {
			out[i] = payJSON{Version: p.Version, Month: p.Month, Amount: p.Amount.String()}
		}
		writeJSON(w, http.StatusOK, out)

	default:
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown endpoint"})
	}
}
