package trie

// Lazy (disk-backed) tries. A trie may contain hashNode references in
// place of fully materialised subtrees; a Resolver loads the RLP
// encoding of such a node on demand. Combined with path-copying
// mutation this keeps resident memory proportional to the *touched*
// part of the trie: a Put materialises only the nodes along its path,
// untouched siblings stay as 32-byte hash references, and Unload
// collapses a fully hashed trie back to a single reference.
//
// Resolution failures on the read/iteration/proof paths surface as
// *MissingNodeError; the mutation paths (Put/Delete) panic with the
// same typed value since their signatures predate lazy tries and a
// missing node there means the backing store is corrupt.

import (
	"errors"
	"fmt"

	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
)

// hashNode is a reference to a node that is not resident: the keccak
// hash of its RLP encoding. Only nodes whose encoding is >= 32 bytes
// are ever hash-referenced (smaller nodes are inlined into their
// parent), so decoding a resolved node can never yield a dangling
// sub-32-byte reference.
type hashNode ethtypes.Hash

// Resolver loads the RLP encoding of a trie node by the keccak hash of
// that encoding. Implementations must be safe for concurrent use.
type Resolver interface {
	ResolveNode(h ethtypes.Hash) ([]byte, error)
}

// errNoResolver is the cause recorded when a hash reference is hit on
// a trie that has no resolver attached.
var errNoResolver = errors.New("no resolver attached")

// MissingNodeError reports that a hash-referenced trie node could not
// be resolved (absent from the backing store, failed its content-hash
// check, or failed to decode). It indicates a corrupt or incomplete
// node store, never a merely-absent key.
type MissingNodeError struct {
	Hash ethtypes.Hash
	Err  error
}

func (e *MissingNodeError) Error() string {
	return fmt.Sprintf("trie: missing node %s: %v", e.Hash, e.Err)
}

func (e *MissingNodeError) Unwrap() error { return e.Err }

// NewFromRoot returns a lazy trie rooted at root; nodes are resolved
// through r on demand. A zero or EmptyRoot hash yields an empty trie.
// Len is unknown for lazy tries and reports -1.
func NewFromRoot(root ethtypes.Hash, r Resolver) *Trie {
	t := &Trie{resolver: r, size: -1}
	if root != (ethtypes.Hash{}) && root != EmptyRoot {
		t.root = hashNode(root)
	}
	return t
}

// NewSecureFromRoot is NewFromRoot for a keccak-keyed Secure trie.
func NewSecureFromRoot(root ethtypes.Hash, r Resolver) *Secure {
	return &Secure{t: NewFromRoot(root, r)}
}

// resolve expands a hashNode through the trie's resolver, verifying
// the content hash of what comes back. Non-reference nodes pass
// through unchanged.
func (t *Trie) resolve(n node) (node, error) {
	hn, ok := n.(hashNode)
	if !ok {
		return n, nil
	}
	h := ethtypes.Hash(hn)
	if t.resolver == nil {
		return nil, &MissingNodeError{Hash: h, Err: errNoResolver}
	}
	enc, err := t.resolver.ResolveNode(h)
	if err != nil {
		return nil, &MissingNodeError{Hash: h, Err: err}
	}
	if got := ethtypes.Keccak256(enc); got != h {
		return nil, &MissingNodeError{Hash: h, Err: fmt.Errorf("content hash mismatch (got %s)", got)}
	}
	dec, err := decodeNode(enc)
	if err != nil {
		return nil, &MissingNodeError{Hash: h, Err: err}
	}
	return dec, nil
}

// mustResolve is resolve for the mutation paths, which have no error
// returns: a failure is a corrupt store and panics with the typed
// *MissingNodeError.
func (t *Trie) mustResolve(n node) node {
	out, err := t.resolve(n)
	if err != nil {
		panic(err)
	}
	return out
}

// decodeNode parses an RLP node encoding into the in-memory node
// model, keeping sub-32-byte children inline and larger children as
// hashNode references. All returned byte slices are freshly allocated
// (the input buffer may be shared, e.g. by a node cache).
func decodeNode(enc []byte) (node, error) {
	item, err := rlp.Decode(enc)
	if err != nil {
		return nil, err
	}
	return nodeFromItem(item)
}

func nodeFromItem(item *rlp.Item) (node, error) {
	if item.Kind() != rlp.KindList {
		return nil, errors.New("trie: node encoding is not a list")
	}
	switch item.Len() {
	case 2:
		nibbles, err := compactToNibbles(item.At(0).Str())
		if err != nil {
			return nil, err
		}
		child := item.At(1)
		if len(nibbles) > 0 && nibbles[len(nibbles)-1] == terminator {
			if child.Kind() != rlp.KindString {
				return nil, errors.New("trie: leaf value is a list")
			}
			return &shortNode{Key: nibbles, Val: valueNode(append([]byte(nil), child.Str()...))}, nil
		}
		c, err := childFromItem(child)
		if err != nil {
			return nil, err
		}
		if c == nil {
			return nil, errors.New("trie: extension with empty child")
		}
		return &shortNode{Key: nibbles, Val: c}, nil
	case 17:
		fn := &fullNode{}
		for i := 0; i < 16; i++ {
			c, err := childFromItem(item.At(i))
			if err != nil {
				return nil, err
			}
			fn.Children[i] = c
		}
		v := item.At(16)
		if v.Kind() != rlp.KindString {
			return nil, errors.New("trie: branch value is a list")
		}
		if s := v.Str(); len(s) > 0 {
			fn.Children[16] = valueNode(append([]byte(nil), s...))
		}
		return fn, nil
	default:
		return nil, fmt.Errorf("trie: node encoding has %d items", item.Len())
	}
}

func childFromItem(c *rlp.Item) (node, error) {
	if c.Kind() == rlp.KindList {
		return nodeFromItem(c)
	}
	s := c.Str()
	switch len(s) {
	case 0:
		return nil, nil
	case 32:
		var h hashNode
		copy(h[:], s)
		return h, nil
	default:
		return nil, errors.New("trie: bad child reference length")
	}
}

// Unload collapses the trie to a single hash reference, releasing
// every resident node. The trie must have a resolver (or stay
// read-only) to be useful afterwards; callers persist all fresh nodes
// (HashCollect) before unloading. Len reports -1 after an Unload.
func (t *Trie) Unload() {
	if t.root == nil {
		return
	}
	if _, ok := t.root.(hashNode); ok {
		return
	}
	h := t.Hash(nil)
	t.size = -1
	if h == EmptyRoot {
		t.root = nil
		return
	}
	t.root = hashNode(h)
}

// Iterator walks the trie in lexicographic key order, resolving lazy
// subtrees on demand. Unlike Walk it surfaces resolution failures via
// Err instead of panicking:
//
//	it := t.NewIterator()
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
//	if err := it.Err(); err != nil { ... }
type Iterator struct {
	t     *Trie
	stack []iterFrame
	key   []byte
	value []byte
	err   error
}

// iterFrame is one pending position in the traversal. For fullNodes,
// next tracks the child sequence: 0 visits the branch value (slot 16,
// shortest key first), 1..16 visit children 0..15.
type iterFrame struct {
	n    node
	path []byte
	next int
}

// NewIterator returns an iterator positioned before the first key.
func (t *Trie) NewIterator() *Iterator {
	it := &Iterator{t: t}
	if t.root != nil {
		it.stack = append(it.stack, iterFrame{n: t.root})
	}
	return it
}

// Next advances to the next key/value pair, returning false at the end
// of the trie or on a resolution error (check Err).
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		switch cur := top.n.(type) {
		case nil:
			it.stack = it.stack[:len(it.stack)-1]
		case hashNode:
			dec, err := it.t.resolve(cur)
			if err != nil {
				it.err = err
				return false
			}
			top.n = dec
		case valueNode:
			it.key = nibblesToKey(top.path)
			it.value = cur
			it.stack = it.stack[:len(it.stack)-1]
			return true
		case *shortNode:
			// Replace the frame in place: a short node contributes no
			// further branches once descended.
			path := append(append([]byte(nil), top.path...), cur.Key...)
			*top = iterFrame{n: cur.Val, path: path}
		case *fullNode:
			if top.next == 0 {
				top.next = 1
				if v, ok := cur.Children[16].(valueNode); ok {
					it.key = nibblesToKey(top.path)
					it.value = v
					return true
				}
			}
			advanced := false
			for top.next <= 16 {
				idx := top.next - 1
				top.next++
				if cur.Children[idx] == nil {
					continue
				}
				path := append(append([]byte(nil), top.path...), byte(idx))
				it.stack = append(it.stack, iterFrame{n: cur.Children[idx], path: path})
				advanced = true
				break
			}
			if !advanced {
				// Note: top may be stale after append; recompute.
				it.stack = it.stack[:len(it.stack)-1]
			}
		default:
			it.err = fmt.Errorf("trie: unknown node %T during iteration", top.n)
			return false
		}
	}
	return false
}

// WalkNodeGraph visits every hash-referenced node reachable from root,
// resolving through r, calling visit with each node's hash and RLP
// encoding and leaf (when non-nil) with each leaf value. Inline
// (sub-32-byte) nodes are traversed but not visited — they live inside
// their parent's encoding and have no identity of their own. Used by
// node stores to mark the live set during compaction.
func WalkNodeGraph(root ethtypes.Hash, r Resolver, visit func(h ethtypes.Hash, enc []byte) error, leaf func(value []byte) error) error {
	if root == (ethtypes.Hash{}) || root == EmptyRoot {
		return nil
	}
	if r == nil {
		return &MissingNodeError{Hash: root, Err: errNoResolver}
	}
	enc, err := r.ResolveNode(root)
	if err != nil {
		return &MissingNodeError{Hash: root, Err: err}
	}
	if got := ethtypes.Keccak256(enc); got != root {
		return &MissingNodeError{Hash: root, Err: fmt.Errorf("content hash mismatch (got %s)", got)}
	}
	if visit != nil {
		if err := visit(root, enc); err != nil {
			return err
		}
	}
	dec, err := decodeNode(enc)
	if err != nil {
		return &MissingNodeError{Hash: root, Err: err}
	}
	return walkDecoded(dec, r, visit, leaf)
}

func walkDecoded(n node, r Resolver, visit func(h ethtypes.Hash, enc []byte) error, leaf func(value []byte) error) error {
	switch cur := n.(type) {
	case nil:
		return nil
	case valueNode:
		if leaf != nil {
			return leaf(cur)
		}
		return nil
	case hashNode:
		return WalkNodeGraph(ethtypes.Hash(cur), r, visit, leaf)
	case *shortNode:
		return walkDecoded(cur.Val, r, visit, leaf)
	case *fullNode:
		for i := 0; i < 17; i++ {
			if cur.Children[i] == nil {
				continue
			}
			if err := walkDecoded(cur.Children[i], r, visit, leaf); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("trie: unknown node %T in graph walk", n)
	}
}

// Key returns the current key. Valid until the next call to Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value. Valid until the next call to Next.
func (it *Iterator) Value() []byte { return it.value }

// Err returns the resolution error that terminated iteration, if any.
func (it *Iterator) Err() error { return it.err }
