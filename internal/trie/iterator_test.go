package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestWalkOrderAndCompleteness(t *testing.T) {
	tr := New()
	model := map[string]string{}
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%03d", r.Intn(500))
		v := fmt.Sprintf("val-%d", i)
		tr.Put([]byte(k), []byte(v))
		model[k] = v
	}
	var got []Entry
	tr.Walk(func(k, v []byte) bool {
		got = append(got, Entry{append([]byte(nil), k...), append([]byte(nil), v...)})
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("walk yielded %d, model has %d", len(got), len(model))
	}
	// Lexicographic order.
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
			t.Fatalf("out of order at %d: %q >= %q", i, got[i-1].Key, got[i].Key)
		}
	}
	// Values correct.
	for _, e := range got {
		if model[string(e.Key)] != string(e.Value) {
			t.Fatalf("wrong value for %q", e.Key)
		}
	}
}

func TestWalkPrefixKeys(t *testing.T) {
	tr := New()
	keys := []string{"a", "ab", "abc", "b", ""}
	for _, k := range keys {
		tr.Put([]byte(k), []byte("v"+k))
	}
	entries := tr.Entries()
	var got []string
	for _, e := range entries {
		got = append(got, string(e.Key))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("%02d", i)), []byte("x"))
	}
	n := 0
	tr.Walk(func(k, v []byte) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("visited %d", n)
	}
}

func TestWalkEmptyTrie(t *testing.T) {
	tr := New()
	tr.Walk(func(k, v []byte) bool {
		t.Fatal("empty trie yielded an entry")
		return false
	})
}
