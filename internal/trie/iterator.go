package trie

// Iteration over trie contents in key order. Because keys are stored as
// nibble paths, in-order traversal yields lexicographic byte order —
// which is what state dumps and range queries need.

// Entry is one key/value pair yielded by iteration.
type Entry struct {
	Key   []byte
	Value []byte
}

// Walk visits every key/value pair in lexicographic key order. fn
// returning false stops the walk early. On a lazy trie, subtrees are
// resolved on demand and a resolution failure panics with
// *MissingNodeError; use NewIterator directly to receive it as an
// error instead.
func (t *Trie) Walk(fn func(key, value []byte) bool) {
	it := t.NewIterator()
	for it.Next() {
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
	if err := it.Err(); err != nil {
		panic(err)
	}
}

// nibblesToKey reverses keyNibbles (dropping the terminator).
func nibblesToKey(nibbles []byte) []byte {
	if len(nibbles) > 0 && nibbles[len(nibbles)-1] == terminator {
		nibbles = nibbles[:len(nibbles)-1]
	}
	out := make([]byte, len(nibbles)/2)
	for i := 0; i+1 < len(nibbles); i += 2 {
		out[i/2] = nibbles[i]<<4 | nibbles[i+1]
	}
	return out
}

// Entries returns all pairs in key order.
func (t *Trie) Entries() []Entry {
	var out []Entry
	t.Walk(func(k, v []byte) bool {
		out = append(out, Entry{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
		return true
	})
	return out
}
