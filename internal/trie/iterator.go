package trie

// Iteration over trie contents in key order. Because keys are stored as
// nibble paths, in-order traversal yields lexicographic byte order —
// which is what state dumps and range queries need.

// Entry is one key/value pair yielded by iteration.
type Entry struct {
	Key   []byte
	Value []byte
}

// Walk visits every key/value pair in lexicographic key order. fn
// returning false stops the walk early.
func (t *Trie) Walk(fn func(key, value []byte) bool) {
	walkNode(t.root, nil, fn)
}

// walkNode traverses in order, accumulating the nibble path.
func walkNode(n node, path []byte, fn func(key, value []byte) bool) bool {
	switch cur := n.(type) {
	case nil:
		return true
	case valueNode:
		return fn(nibblesToKey(path), cur)
	case *shortNode:
		return walkNode(cur.Val, append(path, cur.Key...), fn)
	case *fullNode:
		// Value terminating at this branch comes first (shorter key).
		if cur.Children[16] != nil {
			if v, ok := cur.Children[16].(valueNode); ok {
				if !fn(nibblesToKey(path), v) {
					return false
				}
			}
		}
		for i := 0; i < 16; i++ {
			if cur.Children[i] == nil {
				continue
			}
			if !walkNode(cur.Children[i], append(path, byte(i)), fn) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// nibblesToKey reverses keyNibbles (dropping the terminator).
func nibblesToKey(nibbles []byte) []byte {
	if len(nibbles) > 0 && nibbles[len(nibbles)-1] == terminator {
		nibbles = nibbles[:len(nibbles)-1]
	}
	out := make([]byte, len(nibbles)/2)
	for i := 0; i+1 < len(nibbles); i += 2 {
		out[i/2] = nibbles[i]<<4 | nibbles[i+1]
	}
	return out
}

// Entries returns all pairs in key order.
func (t *Trie) Entries() []Entry {
	var out []Entry
	t.Walk(func(k, v []byte) bool {
		out = append(out, Entry{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
		return true
	})
	return out
}
