package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"legalchain/internal/ethtypes"
)

func TestEmptyRoot(t *testing.T) {
	tr := New()
	if got := tr.Hash(nil); got != EmptyRoot {
		t.Fatalf("empty root = %s, want %s", got, EmptyRoot)
	}
	if got := ethtypes.Keccak256([]byte{0x80}); got != EmptyRoot {
		t.Fatalf("EmptyRoot constant inconsistent with keccak(rlp(\"\"))")
	}
}

// The canonical "dog" vector from the ethereum/tests trie suite.
func TestKnownRootDogVector(t *testing.T) {
	tr := New()
	for k, v := range map[string]string{
		"do":    "verb",
		"dog":   "puppy",
		"doge":  "coin",
		"horse": "stallion",
	} {
		tr.Put([]byte(k), []byte(v))
	}
	want := ethtypes.HexToHash("0x5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84")
	if got := tr.Hash(nil); got != want {
		t.Fatalf("dog vector root = %s, want %s", got, want)
	}
}

// Root is insertion-order independent.
func TestRootOrderIndependence(t *testing.T) {
	keys := []string{"do", "dog", "doge", "horse", "", "a", "ab", "abc", "abd", "b"}
	perm := rand.New(rand.NewSource(3)).Perm(len(keys))
	t1, t2 := New(), New()
	for _, k := range keys {
		t1.Put([]byte(k), []byte("v:"+k))
	}
	for _, i := range perm {
		t2.Put([]byte(keys[i]), []byte("v:"+keys[i]))
	}
	if t1.Hash(nil) != t2.Hash(nil) {
		t.Fatal("root depends on insertion order")
	}
}

func TestGetPutDelete(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("empty trie returned a value")
	}
	tr.Put([]byte("key"), []byte("one"))
	if v, ok := tr.Get([]byte("key")); !ok || string(v) != "one" {
		t.Fatal("get after put")
	}
	tr.Put([]byte("key"), []byte("two"))
	if v, _ := tr.Get([]byte("key")); string(v) != "two" {
		t.Fatal("update failed")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after update", tr.Len())
	}
	if !tr.Delete([]byte("key")) {
		t.Fatal("delete reported absent")
	}
	if tr.Delete([]byte("key")) {
		t.Fatal("double delete reported present")
	}
	if tr.Hash(nil) != EmptyRoot {
		t.Fatal("trie not empty after deleting only key")
	}
}

// Keys that are prefixes of one another exercise the terminator logic.
func TestPrefixKeys(t *testing.T) {
	tr := New()
	tr.Put([]byte("a"), []byte("1"))
	tr.Put([]byte("ab"), []byte("2"))
	tr.Put([]byte("abc"), []byte("3"))
	for k, want := range map[string]string{"a": "1", "ab": "2", "abc": "3"} {
		if v, ok := tr.Get([]byte(k)); !ok || string(v) != want {
			t.Fatalf("Get(%q) = %q, %v", k, v, ok)
		}
	}
	// Delete the middle key; neighbours survive.
	tr.Delete([]byte("ab"))
	if _, ok := tr.Get([]byte("ab")); ok {
		t.Fatal("deleted key still present")
	}
	if v, _ := tr.Get([]byte("a")); string(v) != "1" {
		t.Fatal("sibling destroyed")
	}
	if v, _ := tr.Get([]byte("abc")); string(v) != "3" {
		t.Fatal("descendant destroyed")
	}
}

// Property: the trie behaves exactly like a map over random workloads,
// and equal maps give equal roots.
func TestMapEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tr := New()
	model := map[string]string{}
	keyPool := make([]string, 50)
	for i := range keyPool {
		keyPool[i] = fmt.Sprintf("k%02d-%x", i, r.Intn(256))
	}
	for step := 0; step < 5000; step++ {
		k := keyPool[r.Intn(len(keyPool))]
		switch r.Intn(3) {
		case 0, 1: // put
			v := fmt.Sprintf("v%d", r.Intn(1000))
			tr.Put([]byte(k), []byte(v))
			model[k] = v
		case 2: // delete
			_, inModel := model[k]
			if tr.Delete([]byte(k)) != inModel {
				t.Fatalf("delete disagreement for %q", k)
			}
			delete(model, k)
		}
		if tr.Len() != len(model) {
			t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
		}
	}
	for k, v := range model {
		got, ok := tr.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("final Get(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
	// Rebuild from the model: roots must match.
	rebuilt := New()
	for k, v := range model {
		rebuilt.Put([]byte(k), []byte(v))
	}
	if rebuilt.Hash(nil) != tr.Hash(nil) {
		t.Fatal("root differs from rebuilt trie")
	}
}

func TestDeleteEverythingRestoresEmptyRoot(t *testing.T) {
	tr := New()
	var keys []string
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		keys = append(keys, k)
		tr.Put([]byte(k), bytes.Repeat([]byte{byte(i)}, i%40+1))
	}
	for _, k := range keys {
		if !tr.Delete([]byte(k)) {
			t.Fatalf("delete %q failed", k)
		}
	}
	if tr.Hash(nil) != EmptyRoot {
		t.Fatal("root not empty after deleting all keys")
	}
}

func TestHexPrefixRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{terminator},
		{1, 2, 3},
		{1, 2, 3, terminator},
		{0xf},
		{0xf, terminator},
		{0, 0, 0, 0},
	}
	for _, nibbles := range cases {
		enc := hexPrefix(append([]byte(nil), nibbles...))
		back, err := compactToNibbles(enc)
		if err != nil {
			t.Fatalf("decode(%x): %v", enc, err)
		}
		if !bytes.Equal(back, nibbles) {
			t.Fatalf("hexPrefix round trip: %v -> %x -> %v", nibbles, enc, back)
		}
	}
}

func TestProveAndVerify(t *testing.T) {
	tr := New()
	entries := map[string]string{}
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("account-%03d", i)
		v := fmt.Sprintf("balance=%d wei and some padding to cross 32 bytes", i*7)
		entries[k] = v
		tr.Put([]byte(k), []byte(v))
	}
	for k, v := range entries {
		root, proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatalf("Prove(%q): %v", k, err)
		}
		got, ok, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("VerifyProof(%q): %v", k, err)
		}
		if !ok || string(got) != v {
			t.Fatalf("VerifyProof(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
}

func TestProofOfAbsence(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("present-%d", i)), []byte("x"))
	}
	root, proof, err := tr.Prove([]byte("absent-key"))
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := VerifyProof(root, []byte("absent-key"), proof)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("absence proof claimed presence")
	}
}

func TestProofRejectsTampering(t *testing.T) {
	tr := New()
	for i := 0; i < 64; i++ {
		tr.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{byte(i)}, 40))
	}
	root, proof, err := tr.Prove([]byte("k7"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte of a proof node: either an error or a failed lookup,
	// never a successful wrong value.
	if len(proof) == 0 {
		t.Fatal("empty proof")
	}
	tampered := make([][]byte, len(proof))
	for i := range proof {
		tampered[i] = append([]byte(nil), proof[i]...)
	}
	tampered[len(tampered)-1][5] ^= 0xff
	v, ok, err := VerifyProof(root, []byte("k7"), tampered)
	if err == nil && ok && string(v) == string(bytes.Repeat([]byte{7}, 40)) {
		t.Fatal("tampered proof verified to the original value")
	}
	// Wrong root must fail.
	badRoot := ethtypes.Keccak256([]byte("not the root"))
	if _, ok, err := VerifyProof(badRoot, []byte("k7"), proof); err == nil && ok {
		t.Fatal("proof verified against wrong root")
	}
}

func TestSecureTrie(t *testing.T) {
	s := NewSecure()
	s.Put([]byte("landlord"), []byte("0xabc"))
	s.Put([]byte("tenant"), []byte("0xdef"))
	if v, ok := s.Get([]byte("landlord")); !ok || string(v) != "0xabc" {
		t.Fatal("secure get")
	}
	if s.Len() != 2 {
		t.Fatal("secure len")
	}
	root, proof, err := s.Prove([]byte("tenant"))
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := VerifySecureProof(root, []byte("tenant"), proof)
	if err != nil || !ok || string(v) != "0xdef" {
		t.Fatalf("secure proof: %q %v %v", v, ok, err)
	}
	if !s.Delete([]byte("tenant")) {
		t.Fatal("secure delete")
	}
	if _, ok := s.Get([]byte("tenant")); ok {
		t.Fatal("secure delete left value")
	}
}

func TestEmptyValueDistinctFromAbsent(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), nil)
	if v, ok := tr.Get([]byte("k")); !ok || len(v) != 0 {
		t.Fatal("empty value not stored")
	}
	if tr.Len() != 1 {
		t.Fatal("len")
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		tr.Put(key, key)
	}
}

func BenchmarkHash1k(b *testing.B) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte{byte(i)}, 32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Hash(nil)
	}
}

// The memoised fast hasher (store == nil) must produce exactly the same
// root as the proof-recording encoder, across a churn of inserts,
// overwrites and deletes of varied value sizes.
func TestFastHashMatchesStoreHash(t *testing.T) {
	tr := New()
	check := func() {
		t.Helper()
		fast := tr.Hash(nil)
		slow := tr.Hash(NodeStore{})
		if fast != slow {
			t.Fatalf("fast hash %s != store hash %s", fast, slow)
		}
	}
	check() // empty
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%d", i%64))
		val := bytes.Repeat([]byte{byte(i)}, i%70) // spans inline and hashed nodes
		switch i % 5 {
		case 4:
			tr.Delete(key)
		default:
			tr.Put(key, val)
		}
		check()
	}
}

// A snapshot must keep hashing to the root it was taken at while the
// parent diverges, and vice versa.
func TestSnapshotIndependence(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte{byte(i)}, 40))
	}
	rootBefore := tr.Hash(nil)
	snap := tr.Snapshot()

	tr.Put([]byte("key-7"), []byte("mutated"))
	tr.Delete([]byte("key-11"))
	if got := snap.Hash(nil); got != rootBefore {
		t.Fatalf("snapshot root drifted: %s != %s", got, rootBefore)
	}
	if tr.Hash(nil) == rootBefore {
		t.Fatal("parent root did not change")
	}

	snap.Put([]byte("key-99"), []byte("snap-only"))
	if _, ok := tr.Get([]byte("key-99")); ok {
		t.Fatal("snapshot write leaked into parent")
	}
	if snap.Len() != 51 {
		t.Fatalf("snapshot len = %d", snap.Len())
	}
}
