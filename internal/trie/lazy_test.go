package trie

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"legalchain/internal/ethtypes"
)

// mapResolver backs a lazy trie with an in-memory node map — the
// minimal Resolver, with knobs for simulating a corrupt store.
type mapResolver map[ethtypes.Hash][]byte

var errNodeGone = errors.New("node not in store")

func (m mapResolver) ResolveNode(h ethtypes.Hash) ([]byte, error) {
	enc, ok := m[h]
	if !ok {
		return nil, errNodeGone
	}
	return enc, nil
}

// buildLazyFixture hashes a populated trie into a node store and
// returns a fresh lazy trie over it plus the expected key set. Every
// key maps to "v:<key>".
func buildLazyFixture(t *testing.T, keys []string) (*Trie, mapResolver, ethtypes.Hash) {
	t.Helper()
	src := New()
	for _, k := range keys {
		src.Put([]byte(k), []byte("v:"+k))
	}
	store := mapResolver{}
	root := src.HashCollect(func(h ethtypes.Hash, enc []byte) {
		store[h] = append([]byte(nil), enc...)
	})
	return NewFromRoot(root, store), store, root
}

var lazyKeys = []string{
	"do", "dog", "doge", "dogs", "doom", "horse", "house",
	"a", "ab", "abc", "abd", "b", "key-0", "key-1", "key-42",
}

func TestLazyIteratorResolvesUnloadedNodes(t *testing.T) {
	lazy, _, _ := buildLazyFixture(t, lazyKeys)

	want := append([]string(nil), lazyKeys...)
	sort.Strings(want)

	it := lazy.NewIterator()
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
		if want := "v:" + string(it.Key()); string(it.Value()) != want {
			t.Fatalf("key %q: value %q, want %q", it.Key(), it.Value(), want)
		}
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iteration over intact store failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d = %q, want %q (order broken)", i, got[i], want[i])
		}
	}
}

func TestLazyIteratorAfterPartialMutation(t *testing.T) {
	// Mutating a lazy trie materialises only the touched path; the
	// iterator must still see old (still-unloaded) and new entries.
	lazy, _, _ := buildLazyFixture(t, lazyKeys)
	lazy.Put([]byte("zebra"), []byte("v:zebra"))
	lazy.Delete([]byte("doom"))

	seen := map[string]bool{}
	it := lazy.NewIterator()
	for it.Next() {
		seen[string(it.Key())] = true
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if !seen["zebra"] || seen["doom"] {
		t.Fatalf("mutations not reflected: %v", seen)
	}
	if !seen["horse"] || !seen["key-42"] {
		t.Fatal("untouched lazy subtrees lost")
	}
}

func TestLazyIteratorMissingNodeTypedError(t *testing.T) {
	lazy, store, root := buildLazyFixture(t, lazyKeys)

	// Drop a non-root node so iteration starts fine and fails mid-walk.
	for h := range store {
		if h != root {
			delete(store, h)
			break
		}
	}
	it := lazy.NewIterator()
	for it.Next() {
	}
	var miss *MissingNodeError
	if err := it.Err(); !errors.As(err, &miss) {
		t.Fatalf("iterator over corrupt store: err = %v, want *MissingNodeError", err)
	}
	if miss.Hash == (ethtypes.Hash{}) {
		t.Fatal("MissingNodeError carries no hash")
	}
	// The error latches: further Next calls stay false with the same error.
	if it.Next() {
		t.Fatal("Next advanced past a resolution error")
	}
	if !errors.As(it.Err(), &miss) {
		t.Fatal("error not sticky")
	}
}

func TestLazyIteratorCorruptEncodingTypedError(t *testing.T) {
	lazy, store, root := buildLazyFixture(t, lazyKeys)

	// Flip a byte: content-hash verification must reject the node with
	// a typed error, not decode garbage.
	for h, enc := range store {
		if h == root {
			continue
		}
		bad := append([]byte(nil), enc...)
		bad[len(bad)/2] ^= 0x01
		store[h] = bad
		break
	}
	it := lazy.NewIterator()
	for it.Next() {
	}
	var miss *MissingNodeError
	if err := it.Err(); !errors.As(err, &miss) {
		t.Fatalf("tampered node: err = %v, want *MissingNodeError", err)
	}
}

func TestLazyProveVerifyRoundTrip(t *testing.T) {
	lazy, _, root := buildLazyFixture(t, lazyKeys)

	for _, k := range lazyKeys {
		gotRoot, proof, err := lazy.Prove([]byte(k))
		if err != nil {
			t.Fatalf("Prove(%q) over lazy trie: %v", k, err)
		}
		if gotRoot != root {
			t.Fatalf("Prove(%q) root %s, want %s", k, gotRoot, root)
		}
		val, ok, err := VerifyProof(root, []byte(k), proof)
		if err != nil || !ok {
			t.Fatalf("VerifyProof(%q): ok=%v err=%v", k, ok, err)
		}
		if want := "v:" + k; string(val) != want {
			t.Fatalf("proof value %q, want %q", val, want)
		}
	}
	// Proof of absence still works through unloaded subtrees.
	_, proof, err := lazy.Prove([]byte("doing"))
	if err != nil {
		t.Fatalf("absence proof: %v", err)
	}
	if _, ok, err := VerifyProof(root, []byte("doing"), proof); ok || err != nil {
		t.Fatalf("absence proof verified as present: ok=%v err=%v", ok, err)
	}
}

func TestLazyProveMissingNodeTypedError(t *testing.T) {
	lazy, store, root := buildLazyFixture(t, lazyKeys)
	for h := range store {
		if h != root {
			delete(store, h)
		}
	}
	var miss *MissingNodeError
	failed := false
	for _, k := range lazyKeys {
		if _, _, err := lazy.Prove([]byte(k)); err != nil {
			if !errors.As(err, &miss) {
				t.Fatalf("Prove(%q): err = %v, want *MissingNodeError", k, err)
			}
			failed = true
		}
	}
	if !failed {
		t.Fatal("no proof touched the gutted store")
	}
}

func TestLazyTryGetMissingNodeTypedError(t *testing.T) {
	lazy, store, root := buildLazyFixture(t, lazyKeys)
	for h := range store {
		if h != root {
			delete(store, h)
		}
	}
	failed := false
	for _, k := range lazyKeys {
		_, _, err := lazy.TryGet([]byte(k))
		if err == nil {
			continue
		}
		var miss *MissingNodeError
		if !errors.As(err, &miss) {
			t.Fatalf("TryGet(%q): err = %v, want *MissingNodeError", k, err)
		}
		if !errors.Is(err, errNodeGone) {
			t.Fatalf("TryGet(%q) lost the cause: %v", k, err)
		}
		failed = true
	}
	if !failed {
		t.Fatal("no read touched the gutted store")
	}
}

func TestLazyNoResolverTypedError(t *testing.T) {
	// A lazy root with no resolver must fail typed, not panic or
	// misreport absence.
	_, _, root := buildLazyFixture(t, lazyKeys)
	orphan := NewFromRoot(root, nil)
	_, _, err := orphan.TryGet([]byte("dog"))
	var miss *MissingNodeError
	if !errors.As(err, &miss) {
		t.Fatalf("resolver-less TryGet: err = %v, want *MissingNodeError", err)
	}
	it := orphan.NewIterator()
	if it.Next() {
		t.Fatal("resolver-less iteration yielded a key")
	}
	if !errors.As(it.Err(), &miss) {
		t.Fatalf("resolver-less iterator: err = %v, want *MissingNodeError", it.Err())
	}
}

func TestLazyMutationPanicsTyped(t *testing.T) {
	// Put/Delete have no error returns; on a corrupt store they must
	// panic with the typed *MissingNodeError (so chain-level recovery
	// can classify it), never with a decode panic or nil deref.
	lazy, store, root := buildLazyFixture(t, lazyKeys)
	for h := range store {
		if h != root {
			delete(store, h)
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Put over gutted store did not panic")
		}
		err, ok := r.(error)
		var miss *MissingNodeError
		if !ok || !errors.As(err, &miss) {
			t.Fatalf("panic value %v (%T), want *MissingNodeError", r, r)
		}
	}()
	lazy.Put([]byte("dog"), []byte("other"))
}

func TestLazyUnloadRoundTrip(t *testing.T) {
	// Build in memory with a resolver attached, persist, Unload, and
	// keep using the same trie object: reads fault nodes back in and
	// the root is unchanged.
	store := mapResolver{}
	tr := New()
	tr.SetResolver(store)
	var keys []string
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("account-%02d", i)
		keys = append(keys, k)
		tr.Put([]byte(k), []byte("v:"+k))
	}
	root := tr.HashCollect(func(h ethtypes.Hash, enc []byte) {
		store[h] = append([]byte(nil), enc...)
	})
	tr.Unload()
	if tr.Len() != -1 {
		t.Fatalf("Len after Unload = %d, want -1", tr.Len())
	}
	if got := tr.Hash(nil); got != root {
		t.Fatalf("root after Unload = %s, want %s", got, root)
	}
	for _, k := range keys {
		v, ok := tr.Get([]byte(k))
		if !ok || !bytes.Equal(v, []byte("v:"+k)) {
			t.Fatalf("Get(%q) after Unload = %q, %v", k, v, ok)
		}
	}
	// Mutate the unloaded trie (exercises mustResolve through the
	// resolver), then verify against a from-scratch oracle.
	tr.Put([]byte("account-99"), []byte("v:account-99"))
	tr.Delete([]byte("account-00"))
	oracle := New()
	for _, k := range keys[1:] {
		oracle.Put([]byte(k), []byte("v:"+k))
	}
	oracle.Put([]byte("account-99"), []byte("v:account-99"))
	if got, want := tr.Hash(nil), oracle.Hash(nil); got != want {
		t.Fatalf("mutated unloaded trie root %s, oracle %s", got, want)
	}
}
