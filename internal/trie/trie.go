// Package trie implements the Merkle Patricia Trie, Ethereum's
// authenticated key/value structure used for the state, storage and
// receipt commitments.
//
// The implementation follows the yellow-paper node model: short nodes
// (leaf/extension with hex-prefix-encoded key fragments), full nodes
// (17-ary branches) and value nodes, with sub-32-byte nodes inlined into
// their parent and larger nodes referenced by Keccak-256 hash. Keys are
// expanded to nibbles with a terminator nibble (16) so that keys may be
// prefixes of one another.
//
// Trie keeps all nodes in memory (a devnet fits comfortably); Hash
// additionally records every hash-referenced node in an optional node
// store so Merkle proofs can be produced and verified.
package trie

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"

	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
)

// EmptyRoot is the root hash of an empty trie,
// keccak256(rlp("")) — a well-known constant.
var EmptyRoot = ethtypes.HexToHash("0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421")

// node is one of: nil, *shortNode, *fullNode, valueNode.
type node interface{}

type (
	// shortNode is a leaf (Val is valueNode, Key ends with the
	// terminator nibble) or an extension (Val is a further node).
	shortNode struct {
		Key   []byte // nibbles
		Val   node
		cache atomic.Pointer[encCache] // memoised encoding, see hasher.go
	}
	// fullNode is a 17-way branch; slot 16 holds a value terminating
	// exactly at this node.
	fullNode struct {
		Children [17]node
		cache    atomic.Pointer[encCache]
	}
	valueNode []byte
)

const terminator = 16

// Trie is a mutable Merkle Patricia Trie. It is fully in-memory when
// built with New; tries built with NewFromRoot resolve hash-referenced
// subtrees lazily through their Resolver (see lazy.go).
type Trie struct {
	root     node
	size     int
	resolver Resolver
}

// New returns an empty trie.
func New() *Trie { return &Trie{} }

// Len returns the number of keys stored, or -1 when unknown (lazy
// tries never enumerate cold subtrees just to count them).
func (t *Trie) Len() int { return t.size }

// keyNibbles converts a byte key to its nibble expansion plus terminator.
func keyNibbles(key []byte) []byte {
	n := make([]byte, 0, len(key)*2+1)
	for _, b := range key {
		n = append(n, b>>4, b&0x0f)
	}
	return append(n, terminator)
}

func prefixLen(a, b []byte) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

// Get returns the value for key and whether it exists. On a lazy trie
// a resolution failure panics with *MissingNodeError; use TryGet to
// receive it as an error instead.
func (t *Trie) Get(key []byte) ([]byte, bool) {
	v, ok, err := t.TryGet(key)
	if err != nil {
		panic(err)
	}
	return v, ok
}

// TryGet returns the value for key and whether it exists, surfacing
// lazy-resolution failures as *MissingNodeError.
func (t *Trie) TryGet(key []byte) ([]byte, bool, error) {
	n := t.root
	k := keyNibbles(key)
	for {
		switch cur := n.(type) {
		case nil:
			return nil, false, nil
		case valueNode:
			if len(k) == 0 {
				return cur, true, nil
			}
			return nil, false, nil
		case *shortNode:
			if len(k) < len(cur.Key) || !bytes.Equal(cur.Key, k[:len(cur.Key)]) {
				return nil, false, nil
			}
			k = k[len(cur.Key):]
			n = cur.Val
		case *fullNode:
			if len(k) == 0 {
				return nil, false, nil
			}
			n = cur.Children[k[0]]
			k = k[1:]
		case hashNode:
			dec, err := t.resolve(cur)
			if err != nil {
				return nil, false, err
			}
			n = dec
		default:
			panic(fmt.Sprintf("trie: unknown node %T", n))
		}
	}
}

// Put inserts or updates key with value. Empty values are legal and
// distinct from absence (use Delete to remove).
func (t *Trie) Put(key, value []byte) {
	if t.size >= 0 {
		if _, exists := t.Get(key); !exists {
			t.size++
		}
	}
	v := valueNode(append([]byte(nil), value...))
	t.root = t.insert(t.root, keyNibbles(key), v)
}

func (t *Trie) insert(n node, key []byte, value node) node {
	if len(key) == 0 {
		return value
	}
	switch cur := n.(type) {
	case nil:
		return &shortNode{Key: key, Val: value}
	case hashNode:
		return t.insert(t.mustResolve(cur), key, value)
	case *shortNode:
		match := prefixLen(key, cur.Key)
		if match == len(cur.Key) {
			return &shortNode{Key: cur.Key, Val: t.insert(cur.Val, key[match:], value)}
		}
		// Paths diverge inside cur.Key: split into a branch.
		branch := &fullNode{}
		branch.Children[cur.Key[match]] = shortOrVal(cur.Key[match+1:], cur.Val)
		branch.Children[key[match]] = shortOrVal(key[match+1:], value)
		if match == 0 {
			return branch
		}
		return &shortNode{Key: key[:match], Val: branch}
	case *fullNode:
		// Path-copy: a fresh node (with an empty encoding cache) so that
		// prior snapshots sharing cur stay valid.
		out := &fullNode{Children: cur.Children}
		out.Children[key[0]] = t.insert(cur.Children[key[0]], key[1:], value)
		return out
	case valueNode:
		// Existing value terminates here but the new key continues —
		// impossible with terminator nibbles (terminator can't extend).
		panic("trie: insert past value node")
	default:
		panic(fmt.Sprintf("trie: unknown node %T", n))
	}
}

func shortOrVal(key []byte, val node) node {
	if len(key) == 0 {
		return val
	}
	return &shortNode{Key: key, Val: val}
}

// Delete removes key; it reports whether the key was present.
func (t *Trie) Delete(key []byte) bool {
	newRoot, deleted := t.del(t.root, keyNibbles(key))
	if deleted {
		t.root = newRoot
		if t.size > 0 {
			t.size--
		}
	}
	return deleted
}

func (t *Trie) del(n node, key []byte) (node, bool) {
	switch cur := n.(type) {
	case nil:
		return nil, false
	case hashNode:
		return t.del(t.mustResolve(cur), key)
	case valueNode:
		if len(key) == 0 {
			return nil, true
		}
		return n, false
	case *shortNode:
		match := prefixLen(key, cur.Key)
		if match < len(cur.Key) {
			return n, false
		}
		child, ok := t.del(cur.Val, key[match:])
		if !ok {
			return n, false
		}
		switch c := child.(type) {
		case nil:
			return nil, true
		case *shortNode:
			// Merge consecutive short nodes.
			merged := append(append([]byte(nil), cur.Key...), c.Key...)
			return &shortNode{Key: merged, Val: c.Val}, true
		default:
			return &shortNode{Key: cur.Key, Val: child}, true
		}
	case *fullNode:
		if len(key) == 0 {
			return n, false
		}
		child, ok := t.del(cur.Children[key[0]], key[1:])
		if !ok {
			return n, false
		}
		out := &fullNode{Children: cur.Children}
		out.Children[key[0]] = child

		// If only one child remains, collapse the branch.
		pos := -1
		count := 0
		for i, ch := range out.Children {
			if ch != nil {
				count++
				pos = i
			}
		}
		if count > 1 {
			return out, true
		}
		if pos == terminator {
			return &shortNode{Key: []byte{terminator}, Val: out.Children[terminator]}, true
		}
		// The surviving sibling may be an unresolved reference; its
		// shape decides how the branch collapses (short-node keys must
		// merge), so it has to be materialised here.
		survivor := out.Children[pos]
		if hn, isHash := survivor.(hashNode); isHash {
			survivor = t.mustResolve(hn)
		}
		if sn, isShort := survivor.(*shortNode); isShort {
			merged := append([]byte{byte(pos)}, sn.Key...)
			return &shortNode{Key: merged, Val: sn.Val}, true
		}
		return &shortNode{Key: []byte{byte(pos)}, Val: survivor}, true
	default:
		panic(fmt.Sprintf("trie: unknown node %T", n))
	}
}

// hexPrefix encodes nibbles (possibly ending in the terminator) into the
// yellow-paper compact encoding.
func hexPrefix(nibbles []byte) []byte {
	leaf := false
	if len(nibbles) > 0 && nibbles[len(nibbles)-1] == terminator {
		leaf = true
		nibbles = nibbles[:len(nibbles)-1]
	}
	var flag byte
	if leaf {
		flag = 2
	}
	out := make([]byte, 0, len(nibbles)/2+1)
	if len(nibbles)%2 == 1 {
		out = append(out, (flag+1)<<4|nibbles[0])
		nibbles = nibbles[1:]
	} else {
		out = append(out, flag<<4)
	}
	for i := 0; i < len(nibbles); i += 2 {
		out = append(out, nibbles[i]<<4|nibbles[i+1])
	}
	return out
}

// compactToNibbles reverses hexPrefix.
func compactToNibbles(compact []byte) ([]byte, error) {
	if len(compact) == 0 {
		return nil, errors.New("trie: empty compact key")
	}
	flag := compact[0] >> 4
	if flag > 3 {
		return nil, errors.New("trie: bad hex-prefix flag")
	}
	var nibbles []byte
	if flag&1 == 1 { // odd
		nibbles = append(nibbles, compact[0]&0x0f)
	}
	for _, b := range compact[1:] {
		nibbles = append(nibbles, b>>4, b&0x0f)
	}
	if flag&2 == 2 { // leaf
		nibbles = append(nibbles, terminator)
	}
	return nibbles, nil
}

// NodeStore records hash-referenced node encodings, enough to serve and
// verify Merkle proofs.
type NodeStore map[ethtypes.Hash][]byte

// Hash computes the Merkle root. If store is non-nil, every node that is
// referenced by hash (including the root) is recorded in it.
//
// With store == nil the computation is incremental: every node memoises
// its encoding/hash, and because mutations path-copy (never edit nodes
// in place) a re-hash after k updates touches only the O(k·depth) fresh
// nodes — unchanged subtrees are served from their caches.
func (t *Trie) Hash(store NodeStore) ethtypes.Hash {
	if t.root == nil {
		return EmptyRoot
	}
	if hn, ok := t.root.(hashNode); ok {
		// Fully unloaded trie: the root hash is the reference itself.
		return ethtypes.Hash(hn)
	}
	if store == nil {
		return fastHash(t.root)
	}
	enc := rlp.Encode(encodeNode(t.root, store))
	h := ethtypes.Keccak256(enc)
	if store != nil {
		store[h] = enc
	}
	return h
}

// Snapshot returns an O(1) logical copy of the trie. Nodes are immutable
// once linked in (Put/Delete path-copy), so the snapshot and the parent
// can both be read, mutated and hashed independently — including from
// different goroutines (the encoding caches are updated atomically).
func (t *Trie) Snapshot() *Trie { return &Trie{root: t.root, size: t.size, resolver: t.resolver} }

// SetResolver attaches r for lazy hash-reference resolution, making the
// trie safe to Unload: a fully in-memory trie whose nodes are also
// persisted elsewhere becomes collapsible to its root hash.
func (t *Trie) SetResolver(r Resolver) { t.resolver = r }

// encodeNode renders a node as its RLP item, replacing large children by
// hash references.
func encodeNode(n node, store NodeStore) *rlp.Item {
	switch cur := n.(type) {
	case nil:
		return rlp.Bytes(nil)
	case hashNode:
		panic("trie: encodeNode on an unresolved reference")
	case valueNode:
		return rlp.Bytes(cur)
	case *shortNode:
		return rlp.List(rlp.Bytes(hexPrefix(cur.Key)), refItem(cur.Val, store))
	case *fullNode:
		items := make([]*rlp.Item, 17)
		for i := 0; i < 16; i++ {
			items[i] = refItem(cur.Children[i], store)
		}
		if v, ok := cur.Children[16].(valueNode); ok {
			items[16] = rlp.Bytes(v)
		} else {
			items[16] = rlp.Bytes(nil)
		}
		return rlp.List(items...)
	default:
		panic(fmt.Sprintf("trie: unknown node %T", n))
	}
}

// refItem returns the reference form of a child: the node itself when
// its encoding is under 32 bytes, otherwise its keccak hash.
func refItem(n node, store NodeStore) *rlp.Item {
	if n == nil {
		return rlp.Bytes(nil)
	}
	if v, ok := n.(valueNode); ok {
		return rlp.Bytes(v)
	}
	if h, ok := n.(hashNode); ok {
		// Unresolved subtree: the reference is already the hash. Its
		// nodes are not recorded in store — proof walks fall back to
		// the trie's resolver (see Prove).
		return rlp.Bytes(h[:])
	}
	item := encodeNode(n, store)
	enc := rlp.Encode(item)
	if len(enc) < 32 {
		return item
	}
	h := ethtypes.Keccak256(enc)
	if store != nil {
		store[h] = enc
	}
	return rlp.Bytes(h[:])
}

// Prove returns the ordered list of RLP node encodings from the root to
// the node proving key (inclusive), suitable for VerifyProof. The trie
// is hashed as a side effect. On a lazy trie, nodes of unloaded
// subtrees are fetched through the resolver; a node that cannot be
// fetched yields a *MissingNodeError.
func (t *Trie) Prove(key []byte) (ethtypes.Hash, [][]byte, error) {
	store := NodeStore{}
	root := t.Hash(store)
	// Walk like VerifyProof does, collecting the stored encodings.
	var proof [][]byte
	h := root
	k := keyNibbles(key)
	for {
		enc, ok := store[h]
		if !ok && t.resolver != nil {
			loaded, err := t.resolver.ResolveNode(h)
			if err != nil {
				return root, nil, &MissingNodeError{Hash: h, Err: err}
			}
			if got := ethtypes.Keccak256(loaded); got != h {
				return root, nil, &MissingNodeError{Hash: h, Err: fmt.Errorf("content hash mismatch (got %s)", got)}
			}
			enc, ok = loaded, true
		}
		if !ok {
			return root, nil, &MissingNodeError{Hash: h, Err: errNoResolver}
		}
		proof = append(proof, enc)
		item, err := rlp.Decode(enc)
		if err != nil {
			return root, nil, err
		}
		next, rest, err := stepProof(item, k)
		if err != nil {
			return root, nil, err
		}
		if next == nil { // terminated (found or proven absent)
			return root, proof, nil
		}
		if nh, ok := next.(proofHashRef); ok {
			h = ethtypes.Hash(nh)
			k = rest
			continue
		}
		// Inline node: keep stepping within the same proof element.
		item = next.(*rlp.Item)
		k = rest
		for {
			next, rest, err = stepProof(item, k)
			if err != nil {
				return root, nil, err
			}
			if next == nil {
				return root, proof, nil
			}
			if nh, ok := next.(proofHashRef); ok {
				h = ethtypes.Hash(nh)
				k = rest
				break
			}
			item = next.(*rlp.Item)
			k = rest
		}
	}
}

// proofHashRef marks a 32-byte hash reference during proof walking.
type proofHashRef ethtypes.Hash

// stepProof advances one node: given a decoded node item and remaining
// nibbles, it returns the next reference (hash or inline item) and the
// remaining key, or (nil, nil) when the walk terminates at this node.
func stepProof(item *rlp.Item, k []byte) (interface{}, []byte, error) {
	if item.Kind() != rlp.KindList {
		return nil, nil, errors.New("trie: proof node is not a list")
	}
	switch item.Len() {
	case 2: // short node
		nibbles, err := compactToNibbles(item.At(0).Str())
		if err != nil {
			return nil, nil, err
		}
		if len(k) < len(nibbles) || !bytes.Equal(nibbles, k[:len(nibbles)]) {
			return nil, nil, nil // diverged: key absent
		}
		rest := k[len(nibbles):]
		child := item.At(1)
		if len(rest) == 0 {
			return nil, nil, nil // leaf value (or proven absence)
		}
		return childRef(child, rest)
	case 17: // full node
		if len(k) == 0 {
			return nil, nil, errors.New("trie: key exhausted at branch")
		}
		if k[0] == terminator {
			return nil, nil, nil // value slot
		}
		return childRef(item.At(int(k[0])), k[1:])
	default:
		return nil, nil, fmt.Errorf("trie: proof node has %d items", item.Len())
	}
}

func childRef(child *rlp.Item, rest []byte) (interface{}, []byte, error) {
	if child.Kind() == rlp.KindList {
		return child, rest, nil // inline node
	}
	s := child.Str()
	switch len(s) {
	case 0:
		return nil, nil, nil // empty slot: absent
	case 32:
		var h proofHashRef
		copy(h[:], s)
		return h, rest, nil
	default:
		return nil, nil, errors.New("trie: bad child reference length")
	}
}

// VerifyProof checks a Merkle proof against root and returns the proven
// value (nil with ok=false meaning proven absence). An error indicates a
// malformed or non-matching proof.
func VerifyProof(root ethtypes.Hash, key []byte, proof [][]byte) (value []byte, ok bool, err error) {
	nodes := map[ethtypes.Hash][]byte{}
	for _, enc := range proof {
		nodes[ethtypes.Keccak256(enc)] = enc
	}
	k := keyNibbles(key)
	want := root
	for {
		enc, found := nodes[want]
		if !found {
			return nil, false, fmt.Errorf("trie: proof missing node %s", want)
		}
		item, err := rlp.Decode(enc)
		if err != nil {
			return nil, false, err
		}
		val, next, rest, err := walkProofNode(item, k)
		if err != nil {
			return nil, false, err
		}
		if next == nil {
			return val, val != nil, nil
		}
		if nh, isHash := next.(proofHashRef); isHash {
			want = ethtypes.Hash(nh)
			k = rest
			continue
		}
		// Inline node: walk within the current element.
		item = next.(*rlp.Item)
		k = rest
		for {
			val, next, rest, err = walkProofNode(item, k)
			if err != nil {
				return nil, false, err
			}
			if next == nil {
				return val, val != nil, nil
			}
			if nh, isHash := next.(proofHashRef); isHash {
				want = ethtypes.Hash(nh)
				k = rest
				break
			}
			item = next.(*rlp.Item)
			k = rest
		}
	}
}

// walkProofNode resolves one node for verification, returning either a
// terminal value, or the next reference with remaining key.
func walkProofNode(item *rlp.Item, k []byte) (value []byte, next interface{}, rest []byte, err error) {
	if item.Kind() != rlp.KindList {
		return nil, nil, nil, errors.New("trie: proof node is not a list")
	}
	switch item.Len() {
	case 2:
		nibbles, err := compactToNibbles(item.At(0).Str())
		if err != nil {
			return nil, nil, nil, err
		}
		if len(k) < len(nibbles) || !bytes.Equal(nibbles, k[:len(nibbles)]) {
			return nil, nil, nil, nil // proven absent
		}
		restK := k[len(nibbles):]
		child := item.At(1)
		if len(restK) == 0 {
			if len(nibbles) == 0 || nibbles[len(nibbles)-1] == terminator {
				if child.Kind() != rlp.KindString {
					return nil, nil, nil, errors.New("trie: leaf value is a list")
				}
				return child.Str(), nil, nil, nil
			}
			return nil, nil, nil, nil
		}
		ref, rest2, err := childRef(child, restK)
		if err != nil {
			return nil, nil, nil, err
		}
		return nil, ref, rest2, nil
	case 17:
		if len(k) == 0 {
			return nil, nil, nil, errors.New("trie: key exhausted at branch")
		}
		if k[0] == terminator {
			v := item.At(16)
			if v.Kind() != rlp.KindString {
				return nil, nil, nil, errors.New("trie: branch value is a list")
			}
			if v.Len() == 0 {
				return nil, nil, nil, nil // absent
			}
			return v.Str(), nil, nil, nil
		}
		ref, rest2, err := childRef(item.At(int(k[0])), k[1:])
		if err != nil {
			return nil, nil, nil, err
		}
		return nil, ref, rest2, nil
	default:
		return nil, nil, nil, fmt.Errorf("trie: proof node has %d items", item.Len())
	}
}

// Secure wraps a Trie so that all keys are hashed with Keccak-256 before
// use, bounding path depth and preventing key-grinding attacks — the
// construction used by the Ethereum state trie.
type Secure struct {
	t *Trie
}

// NewSecure returns an empty secure trie.
func NewSecure() *Secure { return &Secure{t: New()} }

// Get returns the value for key.
func (s *Secure) Get(key []byte) ([]byte, bool) {
	h := ethtypes.Keccak256(key)
	return s.t.Get(h[:])
}

// Put inserts or updates key.
func (s *Secure) Put(key, value []byte) {
	h := ethtypes.Keccak256(key)
	s.t.Put(h[:], value)
}

// Delete removes key.
func (s *Secure) Delete(key []byte) bool {
	h := ethtypes.Keccak256(key)
	return s.t.Delete(h[:])
}

// Hash computes the root, recording nodes in store when non-nil.
func (s *Secure) Hash(store NodeStore) ethtypes.Hash { return s.t.Hash(store) }

// HashCollect computes the root, emitting freshly hashed nodes to
// sink (see Trie.HashCollect).
func (s *Secure) HashCollect(sink func(h ethtypes.Hash, enc []byte)) ethtypes.Hash {
	return s.t.HashCollect(sink)
}

// Unload collapses the trie to its root hash (see Trie.Unload).
func (s *Secure) Unload() { s.t.Unload() }

// SetResolver attaches r for lazy resolution (see Trie.SetResolver).
func (s *Secure) SetResolver(r Resolver) { s.t.SetResolver(r) }

// TryGet is Get with lazy-resolution failures surfaced as an error.
func (s *Secure) TryGet(key []byte) ([]byte, bool, error) {
	h := ethtypes.Keccak256(key)
	return s.t.TryGet(h[:])
}

// NewIterator iterates the underlying trie; keys yielded are the
// keccak-hashed forms of the inserted keys.
func (s *Secure) NewIterator() *Iterator { return s.t.NewIterator() }

// Snapshot returns an O(1) logical copy (see Trie.Snapshot).
func (s *Secure) Snapshot() *Secure { return &Secure{t: s.t.Snapshot()} }

// Len returns the number of keys stored.
func (s *Secure) Len() int { return s.t.Len() }

// Prove produces a proof for the hashed key.
func (s *Secure) Prove(key []byte) (ethtypes.Hash, [][]byte, error) {
	h := ethtypes.Keccak256(key)
	return s.t.Prove(h[:])
}

// VerifySecureProof verifies a proof produced by Secure.Prove.
func VerifySecureProof(root ethtypes.Hash, key []byte, proof [][]byte) ([]byte, bool, error) {
	h := ethtypes.Keccak256(key)
	return VerifyProof(root, h[:], proof)
}
