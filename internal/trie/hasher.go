// Incremental trie hashing.
//
// Every shortNode/fullNode memoises the *reference form* of its RLP
// encoding — the bytes a parent embeds for it: the encoding itself when
// it is under 32 bytes, otherwise rlp(keccak(encoding)). Because Put and
// Delete path-copy (hasher caches start empty on every fresh node and
// nodes already linked into a trie are never mutated), a memoised entry
// can never go stale: re-hashing after k updates recomputes only the
// O(k·depth) nodes along the changed paths and serves every untouched
// subtree from its cache. The byte output is identical to the
// rlp.Encode(encodeNode(...)) path used when a NodeStore is requested.
//
// Caches are published through atomic pointers so snapshots sharing
// structure with a live trie can be hashed concurrently: racing writers
// compute identical values, and last-write-wins is harmless.
package trie

import (
	"sync"

	"legalchain/internal/ethtypes"
)

// encCache is the memoised hashing result of one immutable node.
type encCache struct {
	ref    []byte        // reference form: full encoding if <32 bytes, else rlp(hash)
	hash   ethtypes.Hash // keccak256 of the full encoding; valid when hashed
	hashed bool
}

// encBufPool recycles the payload-assembly scratch buffers so steady-state
// hashing does not allocate per node beyond the retained cache entry.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// fastHash returns the root hash of n using the memoised encoder.
func fastHash(n node) ethtypes.Hash {
	if v, ok := n.(valueNode); ok {
		// A bare value at the root cannot arise from keyed inserts
		// (keys always carry the terminator nibble) but is handled for
		// completeness.
		return ethtypes.Keccak256(appendRLPString(nil, v))
	}
	c := cachedRef(n)
	if c.hashed {
		return c.hash
	}
	// Root encoding under 32 bytes: the root is still referenced by
	// hash, so hash its (inline) encoding.
	return ethtypes.Keccak256(c.ref)
}

// hashRefCache builds the (trivial) cache entry for an unresolved
// reference: the hash is known by construction, the reference form is
// rlp(hash). hashNodes only ever stand in for >=32-byte encodings, so
// the hash reference form is always correct.
func hashRefCache(h hashNode) *encCache {
	ref := make([]byte, 33)
	ref[0] = 0x80 + 32
	copy(ref[1:], h[:])
	return &encCache{ref: ref, hash: ethtypes.Hash(h), hashed: true}
}

// cachedRef returns the memoised reference of a shortNode or fullNode,
// computing and publishing it on first use.
func cachedRef(n node) *encCache {
	switch cur := n.(type) {
	case hashNode:
		return hashRefCache(cur)
	case *shortNode:
		if c := cur.cache.Load(); c != nil {
			return c
		}
		c := buildCache(func(payload []byte) []byte {
			payload = appendRLPString(payload, hexPrefix(cur.Key))
			return appendChildRef(payload, cur.Val)
		})
		cur.cache.Store(c)
		return c
	case *fullNode:
		if c := cur.cache.Load(); c != nil {
			return c
		}
		c := buildCache(func(payload []byte) []byte {
			for i := 0; i < 16; i++ {
				payload = appendChildRef(payload, cur.Children[i])
			}
			if v, ok := cur.Children[16].(valueNode); ok {
				payload = appendRLPString(payload, v)
			} else {
				payload = appendRLPString(payload, nil)
			}
			return payload
		})
		cur.cache.Store(c)
		return c
	default:
		panic("trie: cachedRef on non-cacheable node")
	}
}

// buildCache assembles a node's list payload with fill, wraps it in the
// list header and produces the cache entry.
func buildCache(fill func([]byte) []byte) *encCache {
	bufp := encBufPool.Get().(*[]byte)
	payload := fill((*bufp)[:0])

	var header [9]byte
	hn := putListHeader(header[:], len(payload))

	c := &encCache{}
	if hn+len(payload) < 32 {
		c.ref = make([]byte, 0, hn+len(payload))
		c.ref = append(c.ref, header[:hn]...)
		c.ref = append(c.ref, payload...)
	} else {
		c.hash = ethtypes.Keccak256(header[:hn], payload)
		ref := make([]byte, 33)
		ref[0] = 0x80 + 32
		copy(ref[1:], c.hash[:])
		c.ref = ref
		c.hashed = true
	}

	*bufp = payload[:0]
	encBufPool.Put(bufp)
	return c
}

// appendChildRef appends the reference form of a child node: value nodes
// are embedded as strings (mirroring refItem), cacheable nodes via their
// memoised reference.
func appendChildRef(dst []byte, n node) []byte {
	switch cur := n.(type) {
	case nil:
		return append(dst, 0x80)
	case valueNode:
		return appendRLPString(dst, cur)
	default:
		return append(dst, cachedRef(n).ref...)
	}
}

// appendRLPString appends the canonical RLP encoding of byte string s,
// byte-identical to rlp.Encode(rlp.Bytes(s)).
func appendRLPString(dst, s []byte) []byte {
	if len(s) == 1 && s[0] <= 0x7f {
		return append(dst, s[0])
	}
	if len(s) <= 55 {
		dst = append(dst, 0x80+byte(len(s)))
		return append(dst, s...)
	}
	var lenBytes [8]byte
	i := 8
	for v := uint64(len(s)); v > 0; v >>= 8 {
		i--
		lenBytes[i] = byte(v)
	}
	dst = append(dst, 0xb7+byte(8-i))
	dst = append(dst, lenBytes[i:]...)
	return append(dst, s...)
}

// putListHeader writes the RLP list header for a payload of n bytes into
// dst and returns the header length.
func putListHeader(dst []byte, n int) int {
	if n <= 55 {
		dst[0] = 0xc0 + byte(n)
		return 1
	}
	var lenBytes [8]byte
	i := 8
	for v := uint64(n); v > 0; v >>= 8 {
		i--
		lenBytes[i] = byte(v)
	}
	dst[0] = 0xf7 + byte(8-i)
	copy(dst[1:], lenBytes[i:])
	return 1 + (8 - i)
}

// HashCollect computes the root like Hash(nil) while emitting every
// *freshly hashed* node — a node whose encoding is >= 32 bytes and
// whose cache was empty when visited — to sink as (hash, encoding).
// Because mutations path-copy and caches persist, repeated
// HashCollect calls after k updates emit only the O(k·depth) new
// nodes: exactly the set a disk store needs to persist to keep the
// trie resolvable from its root. Already-cached nodes are assumed
// persisted by the HashCollect (or store load) that cached them, so a
// disk-backed trie must be hashed exclusively through HashCollect.
//
// The encoding passed to sink is freshly allocated and never reused.
// A sub-32-byte root is also emitted (it is still referenced by hash
// at the top level); this may re-emit on every call, which stores
// treat as an idempotent overwrite.
func (t *Trie) HashCollect(sink func(h ethtypes.Hash, enc []byte)) ethtypes.Hash {
	if t.root == nil {
		return EmptyRoot
	}
	if hn, ok := t.root.(hashNode); ok {
		return ethtypes.Hash(hn)
	}
	if v, ok := t.root.(valueNode); ok {
		enc := appendRLPString(nil, v)
		h := ethtypes.Keccak256(enc)
		sink(h, enc)
		return h
	}
	c := cachedRefCollect(t.root, sink)
	if c.hashed {
		return c.hash
	}
	enc := append([]byte(nil), c.ref...)
	h := ethtypes.Keccak256(enc)
	sink(h, enc)
	return h
}

// cachedRefCollect is cachedRef with fresh-node emission.
func cachedRefCollect(n node, sink func(ethtypes.Hash, []byte)) *encCache {
	switch cur := n.(type) {
	case hashNode:
		return hashRefCache(cur)
	case *shortNode:
		if c := cur.cache.Load(); c != nil {
			return c
		}
		c, enc := buildCacheCollect(func(payload []byte) []byte {
			payload = appendRLPString(payload, hexPrefix(cur.Key))
			return appendChildRefCollect(payload, cur.Val, sink)
		})
		if c.hashed {
			sink(c.hash, enc)
		}
		cur.cache.Store(c)
		return c
	case *fullNode:
		if c := cur.cache.Load(); c != nil {
			return c
		}
		c, enc := buildCacheCollect(func(payload []byte) []byte {
			for i := 0; i < 16; i++ {
				payload = appendChildRefCollect(payload, cur.Children[i], sink)
			}
			if v, ok := cur.Children[16].(valueNode); ok {
				payload = appendRLPString(payload, v)
			} else {
				payload = appendRLPString(payload, nil)
			}
			return payload
		})
		if c.hashed {
			sink(c.hash, enc)
		}
		cur.cache.Store(c)
		return c
	default:
		panic("trie: cachedRefCollect on non-cacheable node")
	}
}

// buildCacheCollect is buildCache, additionally returning the full
// encoding (header+payload, freshly allocated) when the node is
// hash-referenced, so the caller can persist it.
func buildCacheCollect(fill func([]byte) []byte) (*encCache, []byte) {
	bufp := encBufPool.Get().(*[]byte)
	payload := fill((*bufp)[:0])

	var header [9]byte
	hn := putListHeader(header[:], len(payload))

	c := &encCache{}
	var full []byte
	if hn+len(payload) < 32 {
		c.ref = make([]byte, 0, hn+len(payload))
		c.ref = append(c.ref, header[:hn]...)
		c.ref = append(c.ref, payload...)
	} else {
		full = make([]byte, 0, hn+len(payload))
		full = append(full, header[:hn]...)
		full = append(full, payload...)
		c.hash = ethtypes.Keccak256(full)
		ref := make([]byte, 33)
		ref[0] = 0x80 + 32
		copy(ref[1:], c.hash[:])
		c.ref = ref
		c.hashed = true
	}

	*bufp = payload[:0]
	encBufPool.Put(bufp)
	return c, full
}

// appendChildRefCollect mirrors appendChildRef through the collecting
// path.
func appendChildRefCollect(dst []byte, n node, sink func(ethtypes.Hash, []byte)) []byte {
	switch cur := n.(type) {
	case nil:
		return append(dst, 0x80)
	case valueNode:
		return appendRLPString(dst, cur)
	default:
		return append(dst, cachedRefCollect(n, sink).ref...)
	}
}
