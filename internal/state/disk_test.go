package state

import (
	"math/rand"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/statestore"
	"legalchain/internal/trie"
	"legalchain/internal/uint256"
)

// openTestStore opens a statestore in dir with a small cache so
// eviction paths get exercised.
func openTestStore(t *testing.T, dir string) *statestore.Store {
	t.Helper()
	st, err := statestore.Open(dir, statestore.Options{CacheBytes: 1 << 16, NoSync: true})
	if err != nil {
		t.Fatalf("open statestore: %v", err)
	}
	return st
}

// commitPending flushes the disk state's pending batch to the store
// under a generation anchor.
func commitPending(t *testing.T, s *StateDB, st *statestore.Store, gen uint64, root ethtypes.Hash) {
	t.Helper()
	if err := st.Commit(s.TakePending(), statestore.Anchor{Gen: gen, Number: gen, Root: root}); err != nil {
		t.Fatalf("commit gen %d: %v", gen, err)
	}
}

// testAddr derives a deterministic address from an index.
func testAddr(i int) ethtypes.Address {
	var a ethtypes.Address
	a[0] = byte(i >> 8)
	a[1] = byte(i)
	a[19] = 0xd1
	return a
}

func testSlot(i int) ethtypes.Hash {
	var h ethtypes.Hash
	h[0] = byte(i >> 8)
	h[31] = byte(i)
	return h
}

// applyRandomBlock runs one block's worth of random mutations against
// both states identically, including snapshot/revert churn.
func applyRandomBlock(rng *rand.Rand, mem, disk *StateDB, nAccounts, nSlots int) {
	ops := 20 + rng.Intn(40)
	states := [2]*StateDB{mem, disk}
	for i := 0; i < ops; i++ {
		addr := testAddr(rng.Intn(nAccounts))
		switch op := rng.Intn(10); op {
		case 0, 1:
			amt := uint256.NewUint64(uint64(rng.Intn(1000) + 1))
			for _, s := range states {
				s.AddBalance(addr, amt)
			}
		case 2:
			for _, s := range states {
				if bal := s.GetBalance(addr); !bal.IsZero() {
					s.SubBalance(addr, uint256.NewUint64(1))
				}
			}
		case 3:
			n := uint64(rng.Intn(50))
			for _, s := range states {
				s.SetNonce(addr, n)
			}
		case 4:
			code := make([]byte, rng.Intn(64)+1)
			rng.Read(code)
			for _, s := range states {
				s.SetCode(addr, code)
			}
		case 5, 6, 7:
			slot := testSlot(rng.Intn(nSlots))
			var val uint256.Int
			if rng.Intn(3) > 0 { // 1-in-3 writes a zero (deletion)
				val = uint256.NewUint64(uint64(rng.Intn(1 << 30)))
			}
			for _, s := range states {
				s.SetState(addr, slot, val)
			}
		case 8:
			// Snapshot, mutate, maybe revert — identically on both.
			revert := rng.Intn(2) == 0
			slot := testSlot(rng.Intn(nSlots))
			val := uint256.NewUint64(uint64(rng.Intn(1 << 20)))
			for _, s := range states {
				id := s.Snapshot()
				s.SetState(addr, slot, val)
				s.AddBalance(addr, uint256.NewUint64(7))
				if revert {
					s.RevertToSnapshot(id)
				}
			}
		case 9:
			if rng.Intn(4) == 0 {
				for _, s := range states {
					s.SelfDestruct(addr)
				}
			}
		}
		if rng.Intn(8) == 0 {
			for _, s := range states {
				s.Finalise()
			}
		}
	}
	for _, s := range states {
		s.Finalise()
	}
}

// TestDiskStateDifferentialRoots drives an in-memory and a disk-backed
// state through the same random workload and requires byte-identical
// roots at every block boundary — across commits, cold-account
// eviction, and a full store reopen.
func TestDiskStateDifferentialRoots(t *testing.T) {
	const nAccounts, nSlots, blocks = 40, 24, 60
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	st := openTestStore(t, dir)
	defer func() { st.Close() }()

	mem := New()
	disk := NewWithDisk(st, ethtypes.Hash{})

	var root ethtypes.Hash
	for b := 1; b <= blocks; b++ {
		applyRandomBlock(rng, mem, disk, nAccounts, nSlots)

		memRoot := mem.Root()
		diskRoot := disk.Root()
		if memRoot != diskRoot {
			t.Fatalf("block %d: root mismatch mem=%s disk=%s", b, memRoot, diskRoot)
		}
		root = diskRoot
		commitPending(t, disk, st, uint64(b), root)

		switch b % 5 {
		case 0:
			// Evict everything clean and verify reads fault back in.
			disk.EvictCold(0)
			for i := 0; i < nAccounts; i += 7 {
				addr := testAddr(i)
				if got, want := disk.GetBalance(addr), mem.GetBalance(addr); got != want {
					t.Fatalf("block %d post-evict: balance %s: got %v want %v", b, addr, got, want)
				}
				if got, want := disk.GetNonce(addr), mem.GetNonce(addr); got != want {
					t.Fatalf("block %d post-evict: nonce %s: got %d want %d", b, addr, got, want)
				}
				if got, want := string(disk.GetCode(addr)), string(mem.GetCode(addr)); got != want {
					t.Fatalf("block %d post-evict: code %s mismatch", b, addr)
				}
				for j := 0; j < nSlots; j += 5 {
					slot := testSlot(j)
					if got, want := disk.GetState(addr, slot), mem.GetState(addr, slot); got != want {
						t.Fatalf("block %d post-evict: slot %s/%s: got %v want %v", b, addr, slot, got, want)
					}
				}
			}
		case 3:
			// Full reopen: a crash-equivalent restart must resume with
			// the same root and identical semantics.
			if err := st.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			st = openTestStore(t, dir)
			a, ok := st.Anchor()
			if !ok {
				t.Fatalf("block %d: reopened store has no anchor", b)
			}
			if a.Root != root {
				t.Fatalf("block %d: reopened anchor root %s, want %s", b, a.Root, root)
			}
			disk = NewWithDisk(st, a.Root)
			if got := disk.Root(); got != root {
				t.Fatalf("block %d: reopened state root %s, want %s", b, got, root)
			}
			disk.TakePending() // drop the empty batch from the check Root
		}
	}

	// The differential oracle at the end: rebuild-from-scratch root of
	// the in-memory world must match the disk-backed incremental root.
	if got, want := disk.Root(), mem.RebuildRoot(); got != want {
		t.Fatalf("final root %s, oracle %s", got, want)
	}
	if got, want := disk.TotalBalance(), mem.TotalBalance(); got != want {
		t.Fatalf("total balance: disk %v mem %v", got, want)
	}
	if got, want := len(disk.Accounts()), len(mem.Accounts()); got != want {
		t.Fatalf("account count: disk %d mem %d", got, want)
	}
}

// TestDiskStateFrozenViewsAndOverlay exercises the lock-free read path:
// a frozen disk-backed state serves reads transiently (no caching) and
// overlays over it execute speculatively with read-through.
func TestDiskStateFrozenViewsAndOverlay(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	defer st.Close()

	s := NewWithDisk(st, ethtypes.Hash{})
	addr, other := testAddr(1), testAddr(2)
	s.AddBalance(addr, uint256.NewUint64(1000))
	s.SetNonce(addr, 5)
	s.SetCode(addr, []byte{0xde, 0xad})
	s.SetState(addr, testSlot(1), uint256.NewUint64(42))
	s.AddBalance(other, uint256.NewUint64(7))
	s.Finalise()
	root := s.Root()
	commitPending(t, s, st, 1, root)
	s.EvictCold(0)
	if n := s.ResidentAccounts(); n != 0 {
		t.Fatalf("resident after EvictCold(0): %d", n)
	}

	s.Freeze()
	// Frozen reads fault through disk without repopulating the object map.
	if got := s.GetBalance(addr); got != uint256.NewUint64(1000) {
		t.Fatalf("frozen balance: %v", got)
	}
	if got := s.GetState(addr, testSlot(1)); got != uint256.NewUint64(42) {
		t.Fatalf("frozen slot: %v", got)
	}
	if got := s.GetCode(addr); len(got) != 2 || got[0] != 0xde {
		t.Fatalf("frozen code: %x", got)
	}
	if n := s.ResidentAccounts(); n != 0 {
		t.Fatalf("frozen reads cached objects: %d resident", n)
	}

	// Overlay over the frozen base: speculative writes see disk values.
	ov := s.Overlay()
	if got := ov.GetBalance(addr); got != uint256.NewUint64(1000) {
		t.Fatalf("overlay balance: %v", got)
	}
	ov.SetState(addr, testSlot(1), uint256.NewUint64(43))
	if got := ov.GetCommittedState(addr, testSlot(1)); got != uint256.NewUint64(42) {
		t.Fatalf("overlay committed state: %v", got)
	}
	if got := ov.GetState(addr, testSlot(2)); !got.IsZero() {
		t.Fatalf("overlay absent slot: %v", got)
	}
	// The frozen base is untouched.
	if got := s.GetState(addr, testSlot(1)); got != uint256.NewUint64(42) {
		t.Fatalf("base slot mutated by overlay: %v", got)
	}
}

// TestDiskStateDeletionNoResurrection: an account deleted in a block
// must stay dead for reads even before and after the batch commit, and
// across recreation/revert churn.
func TestDiskStateDeletionNoResurrection(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	defer st.Close()

	s := NewWithDisk(st, ethtypes.Hash{})
	addr := testAddr(9)
	s.AddBalance(addr, uint256.NewUint64(50))
	s.SetCode(addr, []byte{1})
	s.SetState(addr, testSlot(0), uint256.NewUint64(9))
	s.Finalise()
	commitPending(t, s, st, 1, s.Root())
	s.EvictCold(0)

	// Self-destruct; before the batch is committed the store still
	// holds the record — reads must not resurrect it.
	s.SelfDestruct(addr)
	s.Finalise()
	if s.Exist(addr) {
		t.Fatal("deleted account still exists pre-commit")
	}
	if got := s.GetBalance(addr); !got.IsZero() {
		t.Fatalf("deleted account balance resurrected: %v", got)
	}

	// Recreation then revert: the deletion marker must be restored.
	id := s.Snapshot()
	s.AddBalance(addr, uint256.NewUint64(3))
	if !s.Exist(addr) {
		t.Fatal("recreated account missing")
	}
	s.RevertToSnapshot(id)
	if s.Exist(addr) {
		t.Fatal("reverted recreation resurrected the disk record")
	}

	root := s.Root()
	commitPending(t, s, st, 2, root)
	if s.Exist(addr) {
		t.Fatal("deleted account exists post-commit")
	}
	if _, err := st.Account(addr); err == nil {
		t.Fatal("store still has the deleted account record")
	}

	// Lazy trie agrees: the account fell out of the world trie.
	tr := trie.NewSecureFromRoot(root, st)
	if _, ok, err := tr.TryGet(addr[:]); err != nil || ok {
		t.Fatalf("world trie still proves the account: ok=%v err=%v", ok, err)
	}
}
