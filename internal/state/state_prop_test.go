package state

import (
	"math/rand"
	"sync"
	"testing"

	"legalchain/internal/trie"
	"legalchain/internal/uint256"
)

// applyRandomOp performs one random state operation, possibly a
// snapshot/revert pair, mirroring what EVM execution does to the state.
func applyRandomOp(rng *rand.Rand, s *StateDB, snaps *[]int) {
	a := addr(byte(1 + rng.Intn(12)))
	switch rng.Intn(10) {
	case 0:
		s.AddBalance(a, uint256.NewUint64(uint64(rng.Intn(1000))))
	case 1:
		if !s.GetBalance(a).IsZero() {
			s.SubBalance(a, uint256.NewUint64(1))
		} else {
			s.AddBalance(a, uint256.NewUint64(1))
		}
	case 2:
		s.SetNonce(a, uint64(rng.Intn(50)))
	case 3:
		s.SetCode(a, []byte{byte(rng.Intn(256)), byte(rng.Intn(256))})
	case 4, 5, 6:
		// Storage writes dominate, including zero-writes (deletes).
		v := uint64(0)
		if rng.Intn(4) != 0 {
			v = rng.Uint64()
		}
		s.SetState(a, slot(byte(rng.Intn(20))), uint256.NewUint64(v))
	case 7:
		if s.Exist(a) && rng.Intn(4) == 0 {
			s.SelfDestruct(a)
		}
	case 8:
		*snaps = append(*snaps, s.Snapshot())
	case 9:
		if len(*snaps) > 0 {
			i := rng.Intn(len(*snaps))
			s.RevertToSnapshot((*snaps)[i])
			*snaps = (*snaps)[:i]
		}
	}
}

// TestIncrementalRootMatchesRebuildOracle drives a long random sequence
// of state operations, snapshots, reverts, commits (Root) and finalises,
// and asserts after every commit point that the incremental pipeline
// agrees with a from-scratch rebuild of fresh tries.
func TestIncrementalRootMatchesRebuildOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var snaps []int
		for step := 0; step < 400; step++ {
			applyRandomOp(rng, s, &snaps)
			if step%7 == 0 {
				if got, want := s.Root(), s.RebuildRoot(); got != want {
					t.Fatalf("seed %d step %d: incremental root %s != oracle %s", seed, step, got, want)
				}
			}
			if step%53 == 0 {
				s.Finalise()
				snaps = snaps[:0]
				if got, want := s.Root(), s.RebuildRoot(); got != want {
					t.Fatalf("seed %d step %d: post-finalise root %s != oracle %s", seed, step, got, want)
				}
			}
		}
		// Final commit must also agree.
		if got, want := s.Root(), s.RebuildRoot(); got != want {
			t.Fatalf("seed %d final: incremental root %s != oracle %s", seed, got, want)
		}
	}
}

// TestCopyRootMatchesOracle interleaves random ops on a state and its
// copy-on-write Copy and checks both stay consistent with the oracle —
// shared maps and snapshotted tries must never leak writes across.
func TestCopyRootMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New()
	var snaps []int
	for i := 0; i < 120; i++ {
		applyRandomOp(rng, s, &snaps)
	}
	s.Root() // warm the tries so the copy shares populated structure

	cp := s.Copy()
	var cpSnaps []int
	for i := 0; i < 120; i++ {
		applyRandomOp(rng, s, &snaps)
		applyRandomOp(rng, cp, &cpSnaps)
	}
	if got, want := s.Root(), s.RebuildRoot(); got != want {
		t.Fatalf("parent root %s != oracle %s", got, want)
	}
	if got, want := cp.Root(), cp.RebuildRoot(); got != want {
		t.Fatalf("copy root %s != oracle %s", got, want)
	}
}

// TestConcurrentCopiesRace exercises the eth_call pattern: several
// goroutines each take a Copy and execute speculative writes on it while
// the parent keeps committing writes of its own. Run with -race this
// pins down the copy-on-write synchronisation story.
func TestConcurrentCopiesRace(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		a := addr(byte(i + 1))
		s.AddBalance(a, uint256.NewUint64(1000))
		for j := 0; j < 5; j++ {
			s.SetState(a, slot(byte(j)), uint256.NewUint64(uint64(i*10+j+1)))
		}
	}
	s.Root()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		cp := s.Copy()
		wg.Add(1)
		go func(cp *StateDB, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var snaps []int
			for i := 0; i < 200; i++ {
				applyRandomOp(rng, cp, &snaps)
			}
			if got, want := cp.Root(), cp.RebuildRoot(); got != want {
				t.Errorf("copy root %s != oracle %s", got, want)
			}
		}(cp, int64(g))
	}
	// Parent mutates concurrently; its copies must stay isolated.
	rng := rand.New(rand.NewSource(99))
	var snaps []int
	for i := 0; i < 200; i++ {
		applyRandomOp(rng, s, &snaps)
		if i%50 == 0 {
			s.Root()
		}
	}
	wg.Wait()
	if got, want := s.Root(), s.RebuildRoot(); got != want {
		t.Fatalf("parent root %s != oracle %s", got, want)
	}
}

// TestRevertAfterRootResyncsTries reproduces the stale-root hazard:
// Root() clears the dirty set, so a revert crossing that commit must
// re-mark everything it restores or the next Root() serves stale tries.
func TestRevertAfterRootResyncsTries(t *testing.T) {
	s := New()
	a := addr(1)
	s.AddBalance(a, uint256.NewUint64(10))
	s.SetState(a, slot(1), uint256.NewUint64(111))
	want := s.Root()

	snap := s.Snapshot()
	s.SetState(a, slot(1), uint256.NewUint64(222))
	s.SetState(a, slot(2), uint256.NewUint64(333))
	s.AddBalance(a, uint256.NewUint64(5))
	s.Root() // commit point between the forward ops and the revert
	s.RevertToSnapshot(snap)

	if got := s.Root(); got != want {
		t.Fatalf("root after revert-across-commit = %s, want %s", got, want)
	}
	if got, want := s.Root(), s.RebuildRoot(); got != want {
		t.Fatalf("incremental root %s != oracle %s", got, want)
	}
}

// TestAccountRecreationAfterSelfDestruct pins the reset-marker path: an
// account deleted at Finalise and later recreated must rebuild its
// storage trie from scratch, not resurrect stale slots.
func TestAccountRecreationAfterSelfDestruct(t *testing.T) {
	s := New()
	a := addr(7)
	s.AddBalance(a, uint256.NewUint64(1))
	s.SetState(a, slot(1), uint256.NewUint64(11))
	s.SetState(a, slot(2), uint256.NewUint64(22))
	s.Root()

	s.SelfDestruct(a)
	s.Finalise()
	if got, want := s.Root(), s.RebuildRoot(); got != want {
		t.Fatalf("post-destruct root %s != oracle %s", got, want)
	}

	// Recreate with different storage; old slots must not reappear.
	s.AddBalance(a, uint256.NewUint64(2))
	s.SetState(a, slot(3), uint256.NewUint64(33))
	if got, want := s.Root(), s.RebuildRoot(); got != want {
		t.Fatalf("post-recreate root %s != oracle %s", got, want)
	}
	if got := s.StorageRoot(a); got == trie.EmptyRoot {
		t.Fatal("recreated storage root is empty")
	}
	if !s.GetState(a, slot(1)).IsZero() {
		t.Fatal("stale slot resurrected after recreation")
	}
}

// --- Finalise precedence regression tests (intended semantics pinned) ---

// TestFinaliseSelfDestructWithStorage: self-destruct wins over the
// empty-account sweep — a destructed contract is removed even though it
// still holds storage.
func TestFinaliseSelfDestructWithStorage(t *testing.T) {
	s := New()
	a := addr(3)
	s.SetCode(a, []byte{0x00})
	s.SetState(a, slot(1), uint256.NewUint64(5))
	s.SelfDestruct(a)
	s.Finalise()
	if s.Exist(a) {
		t.Fatal("self-destructed account with storage survived Finalise")
	}
	if got, want := s.Root(), s.RebuildRoot(); got != want {
		t.Fatalf("root %s != oracle %s", got, want)
	}
}

// TestFinaliseSelfDestructRefunded: funds sent to an account after its
// self-destruct in the same transaction are burned — the account is
// still deleted even though it is no longer "empty".
func TestFinaliseSelfDestructRefunded(t *testing.T) {
	s := New()
	a := addr(4)
	s.SetCode(a, []byte{0x00})
	s.SelfDestruct(a)
	s.AddBalance(a, uint256.NewUint64(1234)) // re-funded post-destruct
	s.Finalise()
	if s.Exist(a) {
		t.Fatal("re-funded self-destructed account survived Finalise")
	}
	if !s.TotalBalance().IsZero() {
		t.Fatal("burned balance still counted")
	}
}

// TestFinaliseEmptyAccountWithStorageKept: an EIP-161-empty account that
// still has storage is NOT swept (the sweep requires no storage left).
func TestFinaliseEmptyAccountWithStorageKept(t *testing.T) {
	s := New()
	a := addr(5)
	s.SetState(a, slot(1), uint256.NewUint64(9))
	s.Finalise()
	if !s.Exist(a) {
		t.Fatal("empty account with storage was swept")
	}
	if got := s.GetState(a, slot(1)).Uint64(); got != 9 {
		t.Fatalf("storage lost: slot = %d", got)
	}
	if got, want := s.Root(), s.RebuildRoot(); got != want {
		t.Fatalf("root %s != oracle %s", got, want)
	}
}
