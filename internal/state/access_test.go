package state

import (
	"bytes"
	"testing"

	"legalchain/internal/uint256"
)

// base builds a small world with funded accounts, a contract and a
// populated storage slot — the substrate for overlay and diff tests.
func accessBase() *StateDB {
	s := New()
	s.AddBalance(addr(1), uint256.NewUint64(1000))
	s.SetNonce(addr(1), 5)
	s.AddBalance(addr(2), uint256.NewUint64(2000))
	s.SetCode(addr(3), []byte{0x60, 0x00})
	s.SetState(addr(3), slot(1), uint256.NewUint64(42))
	s.Finalise()
	return s
}

func TestOverlayCopyOnRead(t *testing.T) {
	s := accessBase()
	ov := s.Overlay()
	// Reads come through from the base.
	if ov.GetBalance(addr(1)).Uint64() != 1000 {
		t.Fatal("overlay read missed base balance")
	}
	if ov.GetState(addr(3), slot(1)).Uint64() != 42 {
		t.Fatal("overlay read missed base storage")
	}
	// Writes stay in the overlay.
	ov.AddBalance(addr(1), uint256.NewUint64(500))
	ov.SetState(addr(3), slot(1), uint256.NewUint64(7))
	ov.SetNonce(addr(1), 6)
	ov.SetCode(addr(4), []byte{0x01})
	if s.GetBalance(addr(1)).Uint64() != 1000 {
		t.Fatal("overlay write leaked into base balance")
	}
	if s.GetState(addr(3), slot(1)).Uint64() != 42 {
		t.Fatal("overlay write leaked into base storage")
	}
	if s.GetNonce(addr(1)) != 5 {
		t.Fatal("overlay write leaked into base nonce")
	}
	if s.Exist(addr(4)) {
		t.Fatal("overlay creation leaked into base")
	}
	// Untouched accounts are never materialised in the overlay.
	if _, ok := ov.objects[addr(2)]; ok {
		t.Fatal("overlay materialised an untouched account")
	}
}

func TestOverlayJournalRevert(t *testing.T) {
	s := accessBase()
	ov := s.Overlay()
	snap := ov.Snapshot()
	ov.AddBalance(addr(1), uint256.NewUint64(500))
	ov.SetState(addr(3), slot(1), uint256.NewUint64(7))
	ov.RevertToSnapshot(snap)
	if ov.GetBalance(addr(1)).Uint64() != 1000 {
		t.Fatal("overlay revert lost base balance")
	}
	if ov.GetState(addr(3), slot(1)).Uint64() != 42 {
		t.Fatal("overlay revert lost base storage value")
	}
}

func TestOverlayRootPanics(t *testing.T) {
	s := accessBase()
	ov := s.Overlay()
	defer func() {
		if recover() == nil {
			t.Fatal("Root on an overlay did not panic")
		}
	}()
	ov.Root()
}

func TestRecorderCapturesReadsAndWrites(t *testing.T) {
	s := accessBase()
	ov := s.Overlay()
	rec := NewAccessRecorder()
	ov.SetRecorder(rec)

	ov.GetBalance(addr(1))
	ov.GetNonce(addr(1))
	ov.GetState(addr(3), slot(1))
	ov.AddBalance(addr(2), uint256.NewUint64(1))
	ov.SetState(addr(3), slot(2), uint256.NewUint64(9))

	wantReads := []AccessKey{
		{Addr: addr(1), Kind: AccessBalance},
		{Addr: addr(1), Kind: AccessNonce},
		{Addr: addr(3), Kind: AccessStorage, Slot: slot(1)},
		// AddBalance is a read-modify-write.
		{Addr: addr(2), Kind: AccessBalance},
	}
	for _, k := range wantReads {
		if _, ok := rec.Reads[k]; !ok {
			t.Fatalf("read %+v not recorded (reads: %v)", k, rec.Reads)
		}
	}
	wantWrites := []AccessKey{
		{Addr: addr(2), Kind: AccessBalance},
		{Addr: addr(3), Kind: AccessStorage, Slot: slot(2)},
	}
	for _, k := range wantWrites {
		if _, ok := rec.Writes[k]; !ok {
			t.Fatalf("write %+v not recorded (writes: %v)", k, rec.Writes)
		}
	}
	// Pure reads must not pollute the write set.
	if _, ok := rec.Writes[AccessKey{Addr: addr(1), Kind: AccessBalance}]; ok {
		t.Fatal("read recorded as write")
	}
}

// TestRecorderSurvivesRevert pins the conservative-recording contract:
// a journal revert must not un-record reads or writes — the recorded
// sets describe everything the execution might have observed.
func TestRecorderSurvivesRevert(t *testing.T) {
	s := accessBase()
	ov := s.Overlay()
	rec := NewAccessRecorder()
	ov.SetRecorder(rec)

	snap := ov.Snapshot()
	ov.SetState(addr(3), slot(2), uint256.NewUint64(9))
	ov.AddBalance(addr(2), uint256.NewUint64(1))
	ov.RevertToSnapshot(snap)

	if _, ok := rec.Writes[AccessKey{Addr: addr(3), Kind: AccessStorage, Slot: slot(2)}]; !ok {
		t.Fatal("revert un-recorded a storage write")
	}
	if _, ok := rec.Writes[AccessKey{Addr: addr(2), Kind: AccessBalance}]; !ok {
		t.Fatal("revert un-recorded a balance write")
	}
	// A read over the transaction's own write is still a read: a revert
	// can re-expose the base value.
	ov.SetState(addr(3), slot(1), uint256.NewUint64(1))
	ov.GetState(addr(3), slot(1))
	if _, ok := rec.Reads[AccessKey{Addr: addr(3), Kind: AccessStorage, Slot: slot(1)}]; !ok {
		t.Fatal("read over own write not recorded")
	}
}

// TestExtractApplyDiffRoundTrip mutates an overlay the way a
// transaction would, extracts the diff and replays it onto a copy of
// the base; the result must match mutating the base directly.
func TestExtractApplyDiffRoundTrip(t *testing.T) {
	mutate := func(s *StateDB) {
		s.SubBalance(addr(1), uint256.NewUint64(100))
		s.SetNonce(addr(1), 6)
		s.AddBalance(addr(2), uint256.NewUint64(100))
		s.SetState(addr(3), slot(1), uint256.Zero) // slot deletion
		s.SetState(addr(3), slot(2), uint256.NewUint64(9))
		s.SetCode(addr(4), []byte{0xfe})
		s.AddBalance(addr(4), uint256.NewUint64(3))
		s.Finalise()
	}

	// Reference: serial mutation of the base.
	ref := accessBase()
	mutate(ref)

	// Speculative: record on an overlay, extract, apply to a twin base.
	base := accessBase()
	ov := base.Overlay()
	rec := NewAccessRecorder()
	ov.SetRecorder(rec)
	mutate(ov)
	ov.SetRecorder(nil)
	diff := ov.ExtractDiff(rec.Writes)

	base.ApplyDiff(diff)
	base.Finalise()

	if got, want := base.Root(), ref.Root(); got != want {
		t.Fatalf("diff replay root %x, want %x", got, want)
	}
	if !bytes.Equal(base.EncodeSnapshot(), ref.EncodeSnapshot()) {
		t.Fatal("diff replay snapshot diverged from serial mutation")
	}
}

// TestExtractDiffSelfDestruct covers the written-then-gone path: the
// destructed account collapses into a deletion that ApplyDiff performs
// last.
func TestExtractDiffSelfDestruct(t *testing.T) {
	mutate := func(s *StateDB) {
		s.AddBalance(addr(2), s.GetBalance(addr(3)))
		s.SelfDestruct(addr(3))
		s.Finalise()
	}
	ref := accessBase()
	ref.AddBalance(addr(3), uint256.NewUint64(50)) // give the victim a balance
	ref.Finalise()

	base := accessBase()
	base.AddBalance(addr(3), uint256.NewUint64(50))
	base.Finalise()

	mutate(ref)

	ov := base.Overlay()
	rec := NewAccessRecorder()
	ov.SetRecorder(rec)
	mutate(ov)
	ov.SetRecorder(nil)
	diff := ov.ExtractDiff(rec.Writes)
	if _, ok := diff.Deleted[addr(3)]; !ok {
		t.Fatalf("self-destructed account not in Deleted: %+v", diff)
	}
	base.ApplyDiff(diff)
	base.Finalise()

	if base.Exist(addr(3)) {
		t.Fatal("destructed account survived diff replay")
	}
	if got, want := base.Root(), ref.Root(); got != want {
		t.Fatalf("diff replay root %x, want %x", got, want)
	}
}

// TestResetDirtAdoptTries exercises the pipelined-seal trie handoff:
// dirt accumulated after ResetDirt stays pending until the handed-off
// copy is rooted and its tries adopted, after which the live root picks
// up both revisions incrementally.
func TestResetDirtAdoptTries(t *testing.T) {
	live := accessBase()
	live.Root() // sync tries

	// Block N executes on the live state.
	live.AddBalance(addr(1), uint256.NewUint64(111))
	live.SetState(addr(3), slot(2), uint256.NewUint64(5))
	live.Finalise()

	// Seal: hand the dirt to a copy, keep executing on the live state.
	cp := live.Copy()
	live.ResetDirt()
	live.AddBalance(addr(2), uint256.NewUint64(222)) // block N+1
	live.Finalise()

	rootN := cp.Root()
	live.AdoptTries(cp)

	// Reference: the same two blocks applied serially.
	ref := accessBase()
	ref.AddBalance(addr(1), uint256.NewUint64(111))
	ref.SetState(addr(3), slot(2), uint256.NewUint64(5))
	ref.Finalise()
	if got := ref.Root(); got != rootN {
		t.Fatalf("handed-off root %x, want %x", rootN, got)
	}
	ref.AddBalance(addr(2), uint256.NewUint64(222))
	ref.Finalise()
	if got, want := live.Root(), ref.Root(); got != want {
		t.Fatalf("post-adopt root %x, want %x", got, want)
	}
}
