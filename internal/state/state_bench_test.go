package state

import (
	"fmt"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

// benchAddr spreads addresses over two bytes so sweeps can exceed 255
// accounts.
func benchAddr(i int) ethtypes.Address {
	var a ethtypes.Address
	a[18] = byte(i >> 8)
	a[19] = byte(i)
	return a
}

// populateState builds a committed world of n contract accounts with
// slotsPer storage slots each.
func populateState(n, slotsPer int) *StateDB {
	s := New()
	for i := 0; i < n; i++ {
		a := benchAddr(i)
		s.AddBalance(a, uint256.NewUint64(uint64(1000+i)))
		s.SetNonce(a, 1)
		for j := 0; j < slotsPer; j++ {
			s.SetState(a, slot(byte(j)), uint256.NewUint64(uint64(i*100+j+1)))
		}
	}
	s.Root()
	return s
}

// dirtySome touches dirty out of n accounts (one slot write each),
// modelling a block that modifies a small fraction of the world state.
func dirtySome(s *StateDB, n, dirty, round int) {
	stride := n / dirty
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n && i/stride < dirty; i += stride {
		s.SetState(benchAddr(i), slot(0), uint256.NewUint64(uint64(round*7+i+1)))
	}
}

// BenchmarkStateRoot_Incremental measures the production pipeline: dirty
// tracking + persistent tries + parallel storage hashing. Sweeps account
// count and dirty ratio.
func BenchmarkStateRoot_Incremental(b *testing.B) {
	for _, n := range []int{100, 1000} {
		for _, pct := range []int{1, 10, 100} {
			dirty := n * pct / 100
			if dirty == 0 {
				dirty = 1
			}
			b.Run(fmt.Sprintf("accounts=%d/dirty=%d%%", n, pct), func(b *testing.B) {
				s := populateState(n, 8)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dirtySome(s, n, dirty, i)
					s.Root()
				}
			})
		}
	}
}

// BenchmarkStateRoot_Rebuild is the same workload through the
// from-scratch oracle — the cost every Root() paid before the
// incremental pipeline.
func BenchmarkStateRoot_Rebuild(b *testing.B) {
	for _, n := range []int{100, 1000} {
		for _, pct := range []int{1, 10, 100} {
			dirty := n * pct / 100
			if dirty == 0 {
				dirty = 1
			}
			b.Run(fmt.Sprintf("accounts=%d/dirty=%d%%", n, pct), func(b *testing.B) {
				s := populateState(n, 8)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dirtySome(s, n, dirty, i)
					if s.RebuildRoot() == (ethtypes.Hash{}) {
						b.Fatal("zero root")
					}
				}
			})
		}
	}
}

// BenchmarkCopy_COW measures taking a speculative state copy of a
// populated world — the per-eth_call setup cost that copy-on-write
// turned from O(world) deep copies into O(accounts) header clones.
func BenchmarkCopy_COW(b *testing.B) {
	s := populateState(1000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := s.Copy()
		_ = cp
	}
}
