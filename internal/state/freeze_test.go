package state

import (
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s on frozen state did not panic", what)
		}
	}()
	fn()
}

func TestFreezeBlocksMutators(t *testing.T) {
	s := New()
	a := addr(1)
	s.AddBalance(a, uint256.NewUint64(100))
	s.SetState(a, slot(1), uint256.NewUint64(7))
	s.Finalise()
	s.Freeze()
	if !s.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}

	// Reads keep working.
	if s.GetBalance(a).Uint64() != 100 {
		t.Fatal("frozen read lost the balance")
	}
	if s.GetState(a, slot(1)).Uint64() != 7 {
		t.Fatal("frozen read lost the slot")
	}
	s.Root() // cached, must not panic

	// Every mutator panics.
	mustPanic(t, "AddBalance", func() { s.AddBalance(a, uint256.One) })
	mustPanic(t, "SubBalance", func() { s.SubBalance(a, uint256.One) })
	mustPanic(t, "SetNonce", func() { s.SetNonce(a, 1) })
	mustPanic(t, "SetCode", func() { s.SetCode(a, []byte{1}) })
	mustPanic(t, "SetState", func() { s.SetState(a, slot(1), uint256.One) })
	mustPanic(t, "CreateAccount", func() { s.CreateAccount(addr(2)) })
	mustPanic(t, "SelfDestruct", func() { s.SelfDestruct(a) })
	mustPanic(t, "AddRefund", func() { s.AddRefund(1) })
	mustPanic(t, "AddLog", func() { s.AddLog(&ethtypes.Log{}) })
	mustPanic(t, "TakeLogs", func() { s.TakeLogs() })
	mustPanic(t, "Finalise", func() { s.Finalise() })
}

func TestFreezeRequiresFinalise(t *testing.T) {
	s := New()
	s.AddBalance(addr(1), uint256.One) // journaled, not finalised
	mustPanic(t, "Freeze with pending journal", func() { s.Freeze() })
}

// TestFrozenCopyIsMutable: Copy() of a frozen state yields a fresh
// mutable COW state (the eth_call path), and mutating it never leaks
// back into the frozen original.
func TestFrozenCopyIsMutable(t *testing.T) {
	s := New()
	a := addr(1)
	s.AddBalance(a, uint256.NewUint64(100))
	s.SetState(a, slot(1), uint256.NewUint64(7))
	s.Finalise()
	s.Freeze()
	root := s.Root()

	c := s.Copy()
	if c.Frozen() {
		t.Fatal("copy of frozen state is frozen")
	}
	c.AddBalance(a, uint256.NewUint64(50))
	c.SetState(a, slot(1), uint256.NewUint64(9))
	c.Finalise()

	if s.GetBalance(a).Uint64() != 100 {
		t.Fatal("copy mutation leaked into frozen balance")
	}
	if s.GetState(a, slot(1)).Uint64() != 7 {
		t.Fatal("copy mutation leaked into frozen storage")
	}
	if s.Root() != root {
		t.Fatal("frozen root changed")
	}
	if c.GetBalance(a).Uint64() != 150 || c.Root() == root {
		t.Fatal("copy did not take the mutation")
	}
}

func TestFrozenSnapshotEncodes(t *testing.T) {
	s := New()
	s.AddBalance(addr(1), uint256.NewUint64(42))
	s.Finalise()
	s.Freeze()
	dec, err := DecodeSnapshot(s.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Root() != s.Root() {
		t.Fatal("snapshot round-trip of frozen state changed root")
	}
}
