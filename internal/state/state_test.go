package state

import (
	"math/rand"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/trie"
	"legalchain/internal/uint256"
)

func addr(b byte) ethtypes.Address {
	var a ethtypes.Address
	a[19] = b
	return a
}

func slot(b byte) ethtypes.Hash {
	var h ethtypes.Hash
	h[31] = b
	return h
}

func TestBalanceOps(t *testing.T) {
	s := New()
	a := addr(1)
	if !s.GetBalance(a).IsZero() {
		t.Fatal("fresh account has balance")
	}
	s.AddBalance(a, uint256.NewUint64(100))
	s.SubBalance(a, uint256.NewUint64(40))
	if got := s.GetBalance(a).Uint64(); got != 60 {
		t.Fatalf("balance = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	s.SubBalance(a, uint256.NewUint64(61))
}

func TestSnapshotRevertRestoresEverything(t *testing.T) {
	s := New()
	a, b := addr(1), addr(2)
	s.AddBalance(a, uint256.NewUint64(1000))
	s.SetNonce(a, 5)
	s.SetState(a, slot(1), uint256.NewUint64(11))
	s.SetCode(b, []byte{0x60, 0x00})
	s.AddLog(&ethtypes.Log{Address: a})

	rootBefore := s.Root()
	balBefore := s.GetBalance(a)
	snap := s.Snapshot()

	// Mutate everything.
	s.AddBalance(a, uint256.NewUint64(77))
	s.SubBalance(a, uint256.NewUint64(10))
	s.SetNonce(a, 6)
	s.SetState(a, slot(1), uint256.NewUint64(22))
	s.SetState(a, slot(2), uint256.NewUint64(33))
	s.SetCode(b, []byte{0x61})
	s.AddBalance(addr(3), uint256.NewUint64(5)) // creates account
	s.AddLog(&ethtypes.Log{Address: b})
	s.AddRefund(100)
	s.SelfDestruct(b)

	s.RevertToSnapshot(snap)

	if got := s.GetBalance(a); got != balBefore {
		t.Fatalf("balance not restored: %s", got)
	}
	if s.GetNonce(a) != 5 {
		t.Fatal("nonce not restored")
	}
	if s.GetState(a, slot(1)).Uint64() != 11 {
		t.Fatal("slot 1 not restored")
	}
	if !s.GetState(a, slot(2)).IsZero() {
		t.Fatal("slot 2 not removed")
	}
	if string(s.GetCode(b)) != string([]byte{0x60, 0x00}) {
		t.Fatal("code not restored")
	}
	if s.Exist(addr(3)) {
		t.Fatal("created account survived revert")
	}
	if len(s.Logs()) != 1 {
		t.Fatalf("logs not rolled back: %d", len(s.Logs()))
	}
	if s.GetRefund() != 0 {
		t.Fatal("refund not rolled back")
	}
	if s.HasSelfDestructed(b) {
		t.Fatal("selfdestruct not rolled back")
	}
	if s.Root() != rootBefore {
		t.Fatal("root changed across snapshot/revert")
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := New()
	a := addr(9)
	s.AddBalance(a, uint256.NewUint64(1))
	s1 := s.Snapshot()
	s.AddBalance(a, uint256.NewUint64(10))
	s2 := s.Snapshot()
	s.AddBalance(a, uint256.NewUint64(100))
	s.RevertToSnapshot(s2)
	if s.GetBalance(a).Uint64() != 11 {
		t.Fatalf("after inner revert: %d", s.GetBalance(a).Uint64())
	}
	s.RevertToSnapshot(s1)
	if s.GetBalance(a).Uint64() != 1 {
		t.Fatalf("after outer revert: %d", s.GetBalance(a).Uint64())
	}
}

func TestCommittedState(t *testing.T) {
	s := New()
	a := addr(4)
	s.SetState(a, slot(1), uint256.NewUint64(7))
	s.Finalise() // commit: origin now 7

	s.SetState(a, slot(1), uint256.NewUint64(8))
	s.SetState(a, slot(1), uint256.NewUint64(9))
	if s.GetCommittedState(a, slot(1)).Uint64() != 7 {
		t.Fatal("committed state must be the pre-tx value")
	}
	if s.GetState(a, slot(1)).Uint64() != 9 {
		t.Fatal("live state must be the latest value")
	}
	s.Finalise()
	if s.GetCommittedState(a, slot(1)).Uint64() != 9 {
		t.Fatal("Finalise must roll origin forward")
	}
}

func TestSelfDestructFinalise(t *testing.T) {
	s := New()
	c := addr(7)
	s.SetCode(c, []byte{1, 2, 3})
	s.AddBalance(c, uint256.NewUint64(500))
	s.SetState(c, slot(1), uint256.NewUint64(1))
	s.SelfDestruct(c)
	if !s.GetBalance(c).IsZero() {
		t.Fatal("selfdestruct must zero balance")
	}
	s.Finalise()
	if s.Exist(c) {
		t.Fatal("selfdestructed account must be deleted at finalise")
	}
}

func TestEmptyAccountsExcludedFromRoot(t *testing.T) {
	s := New()
	root0 := s.Root()
	if root0 != trie.EmptyRoot {
		t.Fatalf("empty state root = %s", root0)
	}
	// Touch an account without giving it anything.
	s.CreateAccount(addr(5))
	if s.Root() != root0 {
		t.Fatal("empty account changed the root")
	}
	s.AddBalance(addr(5), uint256.NewUint64(1))
	if s.Root() == root0 {
		t.Fatal("funded account did not change the root")
	}
}

func TestRootDeterministic(t *testing.T) {
	build := func(order []int) ethtypes.Hash {
		s := New()
		for _, i := range order {
			a := addr(byte(i))
			s.AddBalance(a, uint256.NewUint64(uint64(i)*13))
			s.SetNonce(a, uint64(i))
			s.SetState(a, slot(byte(i)), uint256.NewUint64(uint64(i)))
		}
		return s.Root()
	}
	r1 := build([]int{1, 2, 3, 4, 5})
	r2 := build([]int{5, 3, 1, 4, 2})
	if r1 != r2 {
		t.Fatal("root depends on mutation order")
	}
}

func TestStorageRootCaching(t *testing.T) {
	s := New()
	a := addr(8)
	s.SetState(a, slot(1), uint256.NewUint64(1))
	r1 := s.StorageRoot(a)
	if s.StorageRoot(a) != r1 {
		t.Fatal("cached root differs")
	}
	s.SetState(a, slot(2), uint256.NewUint64(2))
	if s.StorageRoot(a) == r1 {
		t.Fatal("cache not invalidated by write")
	}
}

func TestZeroWriteDeletesSlot(t *testing.T) {
	s := New()
	a := addr(6)
	s.SetState(a, slot(1), uint256.NewUint64(5))
	s.SetState(a, slot(1), uint256.Zero)
	if len(s.StorageSlots(a)) != 0 {
		t.Fatal("zero write must delete the slot")
	}
	if s.StorageRoot(a) != trie.EmptyRoot {
		t.Fatal("zeroed storage must have the empty root")
	}
}

func TestCopyIsolation(t *testing.T) {
	s := New()
	a := addr(1)
	s.AddBalance(a, uint256.NewUint64(10))
	s.SetState(a, slot(1), uint256.NewUint64(1))
	cp := s.Copy()
	cp.AddBalance(a, uint256.NewUint64(90))
	cp.SetState(a, slot(1), uint256.NewUint64(2))
	if s.GetBalance(a).Uint64() != 10 {
		t.Fatal("copy mutated original balance")
	}
	if s.GetState(a, slot(1)).Uint64() != 1 {
		t.Fatal("copy mutated original storage")
	}
	if s.Root() == cp.Root() {
		t.Fatal("diverged states share a root")
	}
}

// Property: value transfers conserve total balance.
func TestTransferConservation(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		s.AddBalance(addr(byte(i)), uint256.NewUint64(1000))
	}
	total := s.TotalBalance()
	for step := 0; step < 1000; step++ {
		from, to := addr(byte(r.Intn(10))), addr(byte(r.Intn(10)))
		amt := uint256.NewUint64(uint64(r.Intn(50)))
		if s.GetBalance(from).Lt(amt) {
			continue
		}
		s.SubBalance(from, amt)
		s.AddBalance(to, amt)
	}
	if s.TotalBalance() != total {
		t.Fatalf("conservation violated: %s -> %s", total, s.TotalBalance())
	}
}

// Property: a random interleaving of ops followed by revert-to-zero
// restores the genesis root.
func TestFullRevertRestoresGenesis(t *testing.T) {
	s := New()
	s.AddBalance(addr(1), uint256.NewUint64(1_000_000))
	s.Finalise()
	genesis := s.Root()
	snap := s.Snapshot()
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 500; i++ {
		a := addr(byte(r.Intn(20)))
		switch r.Intn(4) {
		case 0:
			s.AddBalance(a, uint256.NewUint64(uint64(r.Intn(100))))
		case 1:
			s.SetNonce(a, uint64(r.Intn(100)))
		case 2:
			s.SetState(a, slot(byte(r.Intn(8))), uint256.NewUint64(uint64(r.Intn(100))))
		case 3:
			s.SetCode(a, []byte{byte(r.Intn(256))})
		}
	}
	s.RevertToSnapshot(snap)
	if s.Root() != genesis {
		t.Fatal("root not restored after full revert")
	}
}

func TestAccountsSorted(t *testing.T) {
	s := New()
	for _, b := range []byte{9, 3, 7, 1} {
		s.AddBalance(addr(b), uint256.One)
	}
	got := s.Accounts()
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Hex() >= got[i].Hex() {
			t.Fatal("accounts not sorted")
		}
	}
}

func TestRefundCounter(t *testing.T) {
	s := New()
	s.AddRefund(100)
	s.SubRefund(30)
	if s.GetRefund() != 70 {
		t.Fatal("refund arithmetic")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative refund did not panic")
		}
	}()
	s.SubRefund(1000)
}

func BenchmarkSetState(b *testing.B) {
	s := New()
	a := addr(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SetState(a, slot(byte(i%256)), uint256.NewUint64(uint64(i)))
	}
}

func BenchmarkRoot100Accounts(b *testing.B) {
	s := New()
	for i := 0; i < 100; i++ {
		a := addr(byte(i))
		s.AddBalance(a, uint256.NewUint64(uint64(i+1)))
		s.SetState(a, slot(1), uint256.NewUint64(uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Root()
	}
}

func TestDump(t *testing.T) {
	s := New()
	s.AddBalance(addr(1), uint256.NewUint64(500))
	s.SetNonce(addr(1), 3)
	s.SetCode(addr(2), []byte{1, 2, 3})
	s.SetState(addr(2), slot(7), uint256.NewUint64(9))
	dump := s.Dump()
	if len(dump) != 2 {
		t.Fatalf("dump = %d accounts", len(dump))
	}
	if dump[0].Balance != "500" || dump[0].Nonce != 3 {
		t.Fatalf("account 1: %+v", dump[0])
	}
	if dump[1].CodeSize != 3 || len(dump[1].Storage) != 1 {
		t.Fatalf("account 2: %+v", dump[1])
	}
}
