package state

import (
	"errors"
	"fmt"

	"legalchain/internal/ethtypes"
	"legalchain/internal/statestore"
	"legalchain/internal/trie"
	"legalchain/internal/uint256"
)

// Disk-backed state. A StateDB constructed with NewWithDisk keeps only
// the touched part of the world resident: the account trie is a lazy
// trie rooted at the committed world root (nodes fault in through the
// store's cache), accounts materialise on first access as *partial*
// objects carrying their flat record (nonce, balance, code hash,
// committed storage root) but not their storage, and storage slots are
// read through individually. Every Root() computation streams its
// fresh trie nodes and flat-record changes into a pending
// statestore.Batch that the chain commits per block, so the store and
// the in-memory state never diverge by more than one uncommitted
// batch.
//
// Partial-object invariants:
//
//   - o.storage holds the resident subset of the account's slots,
//     *including zero values*: a resident zero is a tombstone shadowing
//     whatever the disk may hold, which is what keeps deleted slots
//     deleted. (Fully in-memory objects never store zeros.)
//   - o.storageRoot is the account's committed storage root — the lazy
//     trie's anchor and the fallback when no fresher root is cached.
//   - SetState materialises the committed value before the first write
//     to a slot so journaling, origin tracking and diff extraction see
//     the true previous value.
//   - reads on a *frozen* disk state never cache: they return transient
//     objects so published head views stay immutable and lock-free.
//     The store's LRU absorbs the re-reads.
//
// Known divergence (accepted, documented): an account with storage but
// no code, nonce or balance — impossible through the EVM, storage
// implies code — is swept from a fully in-memory state the moment its
// resident slots hit zero, while a disk-backed state keeps the account
// object resident until its *recomputed* storage root is empty. The
// world roots still agree; only Exist() on that synthetic account can
// differ between modes within a block.

// DiskStore is what the state layer needs from a disk-backed store.
// *statestore.Store implements it; the indirection keeps tests free to
// fake it.
type DiskStore interface {
	trie.Resolver
	Account(addr ethtypes.Address) (*statestore.AccountRecord, error)
	Slot(addr ethtypes.Address, slot ethtypes.Hash) ([]byte, error)
	Code(h ethtypes.Hash) ([]byte, error)
	ForEachAccount(fn func(addr ethtypes.Address, rec *statestore.AccountRecord) bool) error
}

// NewWithDisk returns a state anchored at the committed world root,
// reading through disk. A zero root yields an empty state (fresh
// store).
func NewWithDisk(disk DiskStore, root ethtypes.Hash) *StateDB {
	s := New()
	s.disk = disk
	if root == (ethtypes.Hash{}) {
		root = trie.EmptyRoot
	}
	s.accountTrie = trie.NewSecureFromRoot(root, disk)
	s.worldRoot = root
	s.rootValid = true
	return s
}

// DiskBacked reports whether the state reads through a disk store.
func (s *StateDB) DiskBacked() bool { return s.disk != nil }

// diskStore returns the store this state (or its overlay base) reads
// through.
func (s *StateDB) diskStore() DiskStore {
	if s.disk != nil {
		return s.disk
	}
	if s.base != nil {
		return s.base.disk
	}
	return nil
}

// loadDiskObject materialises addr's flat record as a partial object,
// or nil when the account does not exist. Code stays unloaded (lazy).
// Disk read failures panic: the store verified itself at open, so a
// failure here is I/O-level corruption the node cannot reason past —
// the same contract as trie.mustResolve.
func loadDiskObject(d DiskStore, addr ethtypes.Address) *stateObject {
	rec, err := d.Account(addr)
	if err != nil {
		if errors.Is(err, statestore.ErrNotFound) {
			return nil
		}
		panic(fmt.Errorf("state: disk account %s: %w", addr, err))
	}
	o := newStateObject()
	o.nonce = rec.Nonce
	o.balance = uint256.SetBytes(rec.Balance)
	o.codeHash = rec.CodeHash
	o.storageRoot = rec.StorageRoot
	o.partial = true
	return o
}

// diskSlot reads one committed slot value through the store.
func (s *StateDB) diskSlot(addr ethtypes.Address, slot ethtypes.Hash) uint256.Int {
	d := s.diskStore()
	if d == nil {
		return uint256.Zero
	}
	val, err := d.Slot(addr, slot)
	if err != nil {
		if errors.Is(err, statestore.ErrNotFound) {
			return uint256.Zero
		}
		panic(fmt.Errorf("state: disk slot %s/%s: %w", addr, slot, err))
	}
	return uint256.SetBytes(val)
}

// codeOf returns o's code, faulting it in from disk for partial
// objects. Memoisation is skipped on frozen states (lock-free readers
// may share o) — the store's LRU absorbs repeats.
func (s *StateDB) codeOf(o *stateObject) []byte {
	if o.code != nil || o.codeHash == EmptyCodeHash || !o.partial {
		return o.code
	}
	d := s.diskStore()
	if d == nil {
		return nil
	}
	code, err := d.Code(o.codeHash)
	if err != nil {
		panic(fmt.Errorf("state: disk code %s: %w", o.codeHash, err))
	}
	if !s.frozen {
		o.code = code
	}
	return code
}

// materialiseSlot makes a slot resident with its committed value
// before the first write, so journal undo and origin tracking restore
// the true previous value (not a spurious zero). Caller has already
// called ensureOwned.
func (s *StateDB) materialiseSlot(o *stateObject, addr ethtypes.Address, slot ethtypes.Hash) {
	if !o.partial {
		return
	}
	if _, resident := o.storage[slot]; resident {
		return
	}
	o.storage[slot] = s.diskSlot(addr, slot)
}

// newStorageTrie builds an empty storage trie for a full rebuild. In
// disk mode the store is attached as its resolver: the trie's nodes
// are persisted by the pending batch at the next Root, so EvictCold
// may later Unload it and inserts must be able to resolve collapsed
// subtrees back in.
func (s *StateDB) newStorageTrie() *trie.Secure {
	tr := trie.NewSecure()
	if d := s.diskStore(); d != nil {
		tr.SetResolver(d)
	}
	return tr
}

// hasNonZeroResident reports whether any resident slot is non-zero
// (tombstones don't count).
func (o *stateObject) hasNonZeroResident() bool {
	for _, v := range o.storage {
		if !v.IsZero() {
			return true
		}
	}
	return false
}

// deletable is the EIP-161 sweep criterion at Finalise time. For
// partial objects the committed storage must be provably empty — see
// the divergence note in the package comment.
func (o *stateObject) deletable() bool {
	if o.selfdestructed {
		return true
	}
	if !o.empty() {
		return false
	}
	if o.partial {
		return o.storageRoot == trie.EmptyRoot && !o.hasNonZeroResident()
	}
	return len(o.storage) == 0
}

// pendingBatch lazily creates the batch accumulating this state's
// uncommitted changes.
func (s *StateDB) pendingBatch() *statestore.Batch {
	if s.pending == nil {
		s.pending = &statestore.Batch{}
	}
	return s.pending
}

// stageClear stages a full storage wipe: earlier staged slot writes
// for addr are purged so the wipe (applied first at commit) cannot be
// shadowed by them, while writes staged after re-land on top.
func (s *StateDB) stageClear(addr ethtypes.Address) {
	p := s.pendingBatch()
	p.Clear(addr)
	delete(p.Slots, addr)
}

// TakePending hands off the accumulated batch (nil when clean). The
// chain layer commits it to the store together with the block's
// anchor; Root() must have been called so the batch covers the full
// block.
func (s *StateDB) TakePending() *statestore.Batch {
	b := s.pending
	s.pending = nil
	return b
}

// EvictCold drops clean resident accounts (and their materialised
// storage tries) down to keepResident, then unloads the tries so
// everything evicted reads back through the store's cache. Only safe
// between transactions with the pending batch committed; accounts with
// uncommitted dirt are skipped, so eviction composes with pipelined
// sealing (the live state may be mid-block for *other* accounts).
// Returns the number of accounts evicted.
func (s *StateDB) EvictCold(keepResident int) int {
	if s.disk == nil || s.frozen || len(s.journal) > 0 {
		return 0
	}
	if s.pending != nil && !s.pending.Empty() {
		return 0
	}
	// Prune deleted-since-commit markers the store now agrees with
	// (the record is gone, so a read-through cannot resurrect it).
	for addr := range s.deleted {
		if _, err := s.disk.Account(addr); errors.Is(err, statestore.ErrNotFound) {
			delete(s.deleted, addr)
		}
	}
	if len(s.objects) <= keepResident {
		return 0
	}
	evicted := 0
	for addr := range s.objects {
		if len(s.objects) <= keepResident {
			break
		}
		if _, dirty := s.dirties[addr]; dirty {
			continue
		}
		delete(s.objects, addr)
		delete(s.storageTries, addr)
		delete(s.rootCache, addr)
		evicted++
	}
	if evicted > 0 {
		// The tries are fully hashed (every Root/StorageRoot in disk
		// mode hashes through HashCollect before the batch commits), so
		// Unload is a pure release: resident nodes collapse to hash
		// references that re-resolve through the store.
		s.accountTrie.Unload()
		for _, tr := range s.storageTries {
			tr.Unload()
		}
	}
	return evicted
}

// ResidentAccounts returns how many account objects are resident.
func (s *StateDB) ResidentAccounts() int { return len(s.objects) }
