// Package state implements the journaled world state of the chain: the
// account model (nonce, balance, code, storage) with snapshot/revert
// semantics required by the EVM's nested call frames, plus Merkle root
// computation over the account and storage tries.
//
// Root computation is incremental: the StateDB keeps a persistent
// account trie and per-account storage tries that are *updated* from
// dirty-tracked accounts and slots on each Root() call, rather than
// rebuilt from scratch. Storage tries of distinct dirty accounts are
// independent, so their roots are recomputed in parallel on a bounded
// worker pool. RebuildRoot keeps the original from-scratch computation
// as a test oracle.
package state

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
	"legalchain/internal/statestore"
	"legalchain/internal/trie"
	"legalchain/internal/uint256"
)

// EmptyCodeHash is keccak256 of empty code — the code hash of every
// externally-owned account.
var EmptyCodeHash = ethtypes.Keccak256(nil)

// stateObject is the in-memory representation of one account.
type stateObject struct {
	nonce    uint64
	balance  uint256.Int
	code     []byte
	codeHash ethtypes.Hash

	// storage holds the live storage values. origin holds the value each
	// slot had when the current transaction began, used for SSTORE gas
	// metering and refunds.
	storage map[ethtypes.Hash]uint256.Int
	origin  map[ethtypes.Hash]uint256.Int

	// partial marks a disk-backed object: storage holds only the
	// resident subset of the account's slots (including zero-valued
	// tombstones), the rest reads through the store; storageRoot is the
	// committed storage root anchoring the account's lazy trie. See
	// disk.go for the invariants.
	partial     bool
	storageRoot ethtypes.Hash

	selfdestructed bool

	// shared marks storage/origin as copy-on-write shared with at least
	// one Copy() of this state. Writers must call ensureOwned first.
	// Atomic because concurrent eth_call snapshots may mark the same
	// object shared while holding only a read lock on the chain.
	shared atomic.Bool
}

func newStateObject() *stateObject {
	return &stateObject{
		codeHash: EmptyCodeHash,
		storage:  make(map[ethtypes.Hash]uint256.Int),
		origin:   make(map[ethtypes.Hash]uint256.Int),
	}
}

// ensureOwned un-shares the object's maps before a write: if a Copy()
// still references them, the writer clones and mutates its private clone,
// leaving the shared snapshot untouched.
func (o *stateObject) ensureOwned() {
	if !o.shared.Load() {
		return
	}
	st := make(map[ethtypes.Hash]uint256.Int, len(o.storage))
	for k, v := range o.storage {
		st[k] = v
	}
	og := make(map[ethtypes.Hash]uint256.Int, len(o.origin))
	for k, v := range o.origin {
		og[k] = v
	}
	o.storage, o.origin = st, og
	o.shared.Store(false)
}

// cloneShared duplicates an account header for a copy-on-write view
// (Copy and Overlay), marking both sides' maps shared so the first
// writer on either side clones via ensureOwned. Code slices are shared
// outright: SetCode replaces, never mutates.
func cloneShared(o *stateObject) *stateObject {
	o.shared.Store(true)
	no := &stateObject{
		nonce:          o.nonce,
		balance:        o.balance,
		code:           o.code,
		codeHash:       o.codeHash,
		storage:        o.storage,
		origin:         o.origin,
		partial:        o.partial,
		storageRoot:    o.storageRoot,
		selfdestructed: o.selfdestructed,
	}
	no.shared.Store(true)
	return no
}

// empty reports whether the account is empty per EIP-161
// (nonce == 0, balance == 0, no code). Code presence is judged by the
// hash: partial objects may hold real code on disk without it being
// resident.
func (o *stateObject) empty() bool {
	return o.nonce == 0 && o.balance.IsZero() && o.codeHash == EmptyCodeHash
}

// dirtyEntry records what changed for one account since the tries were
// last synced. Presence of an entry means the account-trie leaf is stale;
// slots lists the storage slots whose trie values need refreshing; reset
// means the whole storage trie must be rebuilt (the account was deleted,
// so per-slot tracking is no longer sufficient).
type dirtyEntry struct {
	reset bool
	slots map[ethtypes.Hash]struct{}
}

// StateDB is the mutable world state with journaling.
type StateDB struct {
	objects map[ethtypes.Address]*stateObject
	journal []func()
	refund  uint64
	logs    []*ethtypes.Log

	// frozen marks the state immutable (see Freeze). A frozen StateDB is
	// safe for lock-free concurrent reads and Copy; every mutator panics.
	frozen bool

	// Incremental commit pipeline: persistent tries, synced from the
	// dirty set on Root()/StorageRoot().
	accountTrie  *trie.Secure
	storageTries map[ethtypes.Address]*trie.Secure
	// rootCache holds each account's storage root as of its last sync.
	rootCache map[ethtypes.Address]ethtypes.Hash
	dirties   map[ethtypes.Address]*dirtyEntry
	worldRoot ethtypes.Hash
	rootValid bool

	// disk, when non-nil, makes this state disk-backed: accounts and
	// slots absent from objects read through the store, and Root()
	// streams changes into pending for the chain to commit. See disk.go.
	disk    DiskStore
	pending *statestore.Batch

	// deleted marks accounts removed since the last store commit, so a
	// read cannot resurrect them from not-yet-updated disk records.
	// Markers are cleared on explicit recreation and pruned (against
	// the store) during EvictCold; a stale marker for a truly absent
	// account is harmless. Only populated in disk mode.
	deleted map[ethtypes.Address]struct{}

	// base, when non-nil, makes this state an Overlay: getObject
	// materialises copy-on-write clones of base accounts on first touch
	// instead of requiring an up-front whole-world Copy. See access.go.
	base *StateDB

	// rec, when non-nil, records every read and write for optimistic
	// concurrency validation. See access.go.
	rec *AccessRecorder
}

// New returns an empty world state.
func New() *StateDB {
	return &StateDB{
		objects:      make(map[ethtypes.Address]*stateObject),
		accountTrie:  trie.NewSecure(),
		storageTries: make(map[ethtypes.Address]*trie.Secure),
		rootCache:    make(map[ethtypes.Address]ethtypes.Hash),
		dirties:      make(map[ethtypes.Address]*dirtyEntry),
	}
}

// Freeze marks the state immutable, establishing the invariants the
// chain's published head views rely on: the journal must be empty (the
// sealing paths Finalise before freezing), the world root is computed
// eagerly so frozen Root() is a cached read, and from here on every
// mutator panics. Reads and Copy remain legal — Copy returns a fresh
// mutable state layered copy-on-write over the frozen one, which is how
// eth_call executes speculatively against a frozen view.
func (s *StateDB) Freeze() {
	if len(s.journal) > 0 {
		panic("state: Freeze with pending journal (Finalise first)")
	}
	s.Root()
	s.frozen = true
}

// Frozen reports whether the state has been frozen.
func (s *StateDB) Frozen() bool { return s.frozen }

// mustMutable guards every mutator against writes to a frozen state.
func (s *StateDB) mustMutable(op string) {
	if s.frozen {
		panic("state: " + op + " on frozen state")
	}
}

func (s *StateDB) getObject(addr ethtypes.Address) *stateObject {
	if o := s.objects[addr]; o != nil {
		return o
	}
	if s.base != nil {
		// Overlay copy-on-read: materialise a private clone of the base
		// account. Cloning even for pure reads keeps every caller that
		// mutates the returned object (SelfDestruct, SetState after a
		// getObject hit) isolated from the base. No journal entry: the
		// clone is indistinguishable from having copied up front.
		if bo := s.base.objects[addr]; bo != nil {
			no := cloneShared(bo)
			s.objects[addr] = no
			return no
		}
		if s.base.disk != nil && !s.isDeleted(addr) && !s.base.isDeleted(addr) {
			if o := loadDiskObject(s.base.disk, addr); o != nil {
				s.objects[addr] = o
				return o
			}
		}
		return nil
	}
	if s.disk != nil && !s.isDeleted(addr) {
		o := loadDiskObject(s.disk, addr)
		if o == nil {
			return nil
		}
		if s.frozen {
			// Frozen states are read lock-free by many goroutines:
			// never cache, hand out a transient object. The store's
			// LRU absorbs the repeats.
			return o
		}
		s.objects[addr] = o
		return o
	}
	return nil
}

func (s *StateDB) isDeleted(addr ethtypes.Address) bool {
	_, ok := s.deleted[addr]
	return ok
}

func (s *StateDB) markDeleted(addr ethtypes.Address) {
	if s.deleted == nil {
		s.deleted = make(map[ethtypes.Address]struct{})
	}
	s.deleted[addr] = struct{}{}
}

func (s *StateDB) getOrNewObject(addr ethtypes.Address) *stateObject {
	if o := s.getObject(addr); o != nil {
		return o
	}
	s.recWrite(AccessExist, addr)
	o := newStateObject()
	s.objects[addr] = o
	// Recreation clears the deleted-since-commit marker; the journal
	// restores it so a reverted recreation cannot resurrect the old
	// disk record through a later read.
	wasDeleted := s.isDeleted(addr)
	if wasDeleted {
		delete(s.deleted, addr)
	}
	s.journal = append(s.journal, func() {
		delete(s.objects, addr)
		if wasDeleted {
			s.markDeleted(addr)
		}
		// The account (and any storage it accumulated) must fall out of
		// the tries on the next sync.
		s.markReset(addr)
	})
	return o
}

// touch marks the account's trie leaf stale.
func (s *StateDB) touch(addr ethtypes.Address) {
	s.markAccount(addr)
}

func (s *StateDB) markAccount(addr ethtypes.Address) *dirtyEntry {
	e := s.dirties[addr]
	if e == nil {
		e = &dirtyEntry{}
		s.dirties[addr] = e
	}
	s.rootValid = false
	return e
}

func (s *StateDB) markSlot(addr ethtypes.Address, slot ethtypes.Hash) {
	e := s.markAccount(addr)
	if e.reset {
		return // the whole storage trie is pending a rebuild anyway
	}
	if e.slots == nil {
		e.slots = make(map[ethtypes.Hash]struct{})
	}
	e.slots[slot] = struct{}{}
}

func (s *StateDB) markReset(addr ethtypes.Address) {
	e := s.markAccount(addr)
	e.reset = true
	e.slots = nil
}

// Exist reports whether the account exists in state.
func (s *StateDB) Exist(addr ethtypes.Address) bool {
	s.recRead(AccessExist, addr)
	return s.getObject(addr) != nil
}

// Empty reports whether the account is absent or empty (EIP-161).
func (s *StateDB) Empty(addr ethtypes.Address) bool {
	s.recRead(AccessExist, addr)
	s.recRead(AccessBalance, addr)
	s.recRead(AccessNonce, addr)
	s.recRead(AccessCode, addr)
	o := s.getObject(addr)
	return o == nil || o.empty()
}

// CreateAccount explicitly creates an account (used for contract
// deployment targets).
func (s *StateDB) CreateAccount(addr ethtypes.Address) {
	s.mustMutable("CreateAccount")
	s.getOrNewObject(addr)
	s.touch(addr)
}

// GetBalance returns the account balance (zero for absent accounts).
func (s *StateDB) GetBalance(addr ethtypes.Address) uint256.Int {
	s.recRead(AccessBalance, addr)
	if o := s.getObject(addr); o != nil {
		return o.balance
	}
	return uint256.Zero
}

// AddBalance credits addr by amount.
func (s *StateDB) AddBalance(addr ethtypes.Address, amount uint256.Int) {
	s.mustMutable("AddBalance")
	// The result depends on the prior balance, so this is a read too.
	s.recRead(AccessBalance, addr)
	s.recWrite(AccessBalance, addr)
	o := s.getOrNewObject(addr)
	prev := o.balance
	s.journal = append(s.journal, func() {
		o.balance = prev
		s.markAccount(addr)
	})
	o.balance = o.balance.Add(amount)
	s.touch(addr)
}

// SubBalance debits addr by amount. The caller must have checked funds;
// it panics on underflow to surface accounting bugs loudly.
func (s *StateDB) SubBalance(addr ethtypes.Address, amount uint256.Int) {
	s.mustMutable("SubBalance")
	s.recRead(AccessBalance, addr)
	s.recWrite(AccessBalance, addr)
	o := s.getOrNewObject(addr)
	next, under := o.balance.SubUnderflow(amount)
	if under {
		panic(fmt.Sprintf("state: balance underflow for %s", addr))
	}
	prev := o.balance
	s.journal = append(s.journal, func() {
		o.balance = prev
		s.markAccount(addr)
	})
	o.balance = next
	s.touch(addr)
}

// GetNonce returns the account nonce.
func (s *StateDB) GetNonce(addr ethtypes.Address) uint64 {
	s.recRead(AccessNonce, addr)
	if o := s.getObject(addr); o != nil {
		return o.nonce
	}
	return 0
}

// SetNonce sets the account nonce.
func (s *StateDB) SetNonce(addr ethtypes.Address, nonce uint64) {
	s.mustMutable("SetNonce")
	s.recWrite(AccessNonce, addr)
	o := s.getOrNewObject(addr)
	prev := o.nonce
	s.journal = append(s.journal, func() {
		o.nonce = prev
		s.markAccount(addr)
	})
	o.nonce = nonce
	s.touch(addr)
}

// GetCode returns the contract code at addr.
func (s *StateDB) GetCode(addr ethtypes.Address) []byte {
	s.recRead(AccessCode, addr)
	if o := s.getObject(addr); o != nil {
		return s.codeOf(o)
	}
	return nil
}

// GetCodeSize returns len(code) without copying.
func (s *StateDB) GetCodeSize(addr ethtypes.Address) int {
	return len(s.GetCode(addr))
}

// GetCodeHash returns keccak(code), the zero hash for absent accounts.
func (s *StateDB) GetCodeHash(addr ethtypes.Address) ethtypes.Hash {
	// Distinguishes absent (zero hash) from existing code-less accounts
	// (empty-code hash), so existence is part of the observed value.
	s.recRead(AccessCode, addr)
	s.recRead(AccessExist, addr)
	if o := s.getObject(addr); o != nil {
		return o.codeHash
	}
	return ethtypes.Hash{}
}

// SetCode installs contract code at addr.
func (s *StateDB) SetCode(addr ethtypes.Address, code []byte) {
	s.mustMutable("SetCode")
	s.recWrite(AccessCode, addr)
	o := s.getOrNewObject(addr)
	prevCode, prevHash := o.code, o.codeHash
	s.journal = append(s.journal, func() {
		o.code, o.codeHash = prevCode, prevHash
		s.markAccount(addr)
	})
	o.code = append([]byte(nil), code...)
	o.codeHash = ethtypes.Keccak256(code)
	s.touch(addr)
}

// GetState reads a storage slot.
func (s *StateDB) GetState(addr ethtypes.Address, slot ethtypes.Hash) uint256.Int {
	s.recReadSlot(addr, slot)
	if o := s.getObject(addr); o != nil {
		if v, ok := o.storage[slot]; ok || !o.partial {
			return v
		}
		return s.diskSlot(addr, slot)
	}
	return uint256.Zero
}

// GetCommittedState reads the value the slot had at the start of the
// current transaction (for SSTORE gas metering).
func (s *StateDB) GetCommittedState(addr ethtypes.Address, slot ethtypes.Hash) uint256.Int {
	s.recReadSlot(addr, slot)
	o := s.getObject(addr)
	if o == nil {
		return uint256.Zero
	}
	if v, ok := o.origin[slot]; ok {
		return v
	}
	if v, ok := o.storage[slot]; ok || !o.partial {
		return v
	}
	return s.diskSlot(addr, slot)
}

// SetState writes a storage slot.
func (s *StateDB) SetState(addr ethtypes.Address, slot ethtypes.Hash, value uint256.Int) {
	s.mustMutable("SetState")
	s.recWriteSlot(addr, slot)
	o := s.getOrNewObject(addr)
	o.ensureOwned()
	// Partial objects fault the committed value in before the first
	// write, so origin tracking, journal undo and diff extraction all
	// see the true previous value rather than a spurious zero.
	s.materialiseSlot(o, addr, slot)
	if _, tracked := o.origin[slot]; !tracked {
		o.origin[slot] = o.storage[slot]
	}
	prev, existed := o.storage[slot]
	s.journal = append(s.journal, func() {
		o.ensureOwned()
		if existed {
			o.storage[slot] = prev
		} else {
			delete(o.storage, slot)
		}
		s.markSlot(addr, slot)
	})
	if value.IsZero() && !o.partial {
		delete(o.storage, slot)
	} else {
		// Partial objects keep resident zeros: the tombstone shadows
		// whatever the disk still holds for this slot.
		o.storage[slot] = value
	}
	s.markSlot(addr, slot)
}

// SelfDestruct marks the contract for deletion at transaction finalize
// and zeroes its balance (the caller moves funds first).
func (s *StateDB) SelfDestruct(addr ethtypes.Address) {
	s.mustMutable("SelfDestruct")
	// Whether anything happens depends on existence; the effect zeroes
	// the balance now and deletes the account at Finalise.
	s.recRead(AccessExist, addr)
	s.recWrite(AccessBalance, addr)
	s.recWrite(AccessExist, addr)
	o := s.getObject(addr)
	if o == nil {
		return
	}
	prevFlag, prevBal := o.selfdestructed, o.balance
	s.journal = append(s.journal, func() {
		o.selfdestructed, o.balance = prevFlag, prevBal
		s.markAccount(addr)
	})
	o.selfdestructed = true
	o.balance = uint256.Zero
	s.touch(addr)
}

// HasSelfDestructed reports the destruct flag.
func (s *StateDB) HasSelfDestructed(addr ethtypes.Address) bool {
	s.recRead(AccessExist, addr)
	o := s.getObject(addr)
	return o != nil && o.selfdestructed
}

// AddRefund accumulates the SSTORE refund counter.
func (s *StateDB) AddRefund(gas uint64) {
	s.mustMutable("AddRefund")
	prev := s.refund
	s.journal = append(s.journal, func() { s.refund = prev })
	s.refund += gas
}

// SubRefund decreases the refund counter (EIP-2200 net metering).
func (s *StateDB) SubRefund(gas uint64) {
	s.mustMutable("SubRefund")
	prev := s.refund
	s.journal = append(s.journal, func() { s.refund = prev })
	if gas > s.refund {
		panic("state: refund counter below zero")
	}
	s.refund -= gas
}

// GetRefund returns the refund counter.
func (s *StateDB) GetRefund() uint64 { return s.refund }

// AddLog appends an event log emitted by the current execution.
func (s *StateDB) AddLog(log *ethtypes.Log) {
	s.mustMutable("AddLog")
	s.journal = append(s.journal, func() { s.logs = s.logs[:len(s.logs)-1] })
	s.logs = append(s.logs, log)
}

// Logs returns logs emitted since the last TakeLogs.
func (s *StateDB) Logs() []*ethtypes.Log { return s.logs }

// TakeLogs returns and clears the accumulated logs (end of transaction).
func (s *StateDB) TakeLogs() []*ethtypes.Log {
	s.mustMutable("TakeLogs")
	out := s.logs
	s.logs = nil
	return out
}

// Snapshot returns an identifier for the current state revision.
func (s *StateDB) Snapshot() int { return len(s.journal) }

// RevertToSnapshot undoes every change made after the snapshot was taken.
// Each undo re-marks what it restores, so the tries re-sync the reverted
// values on the next Root() — no wholesale cache invalidation needed.
func (s *StateDB) RevertToSnapshot(id int) {
	s.mustMutable("RevertToSnapshot")
	if id < 0 || id > len(s.journal) {
		panic(fmt.Sprintf("state: invalid snapshot id %d (journal %d)", id, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= id; i-- {
		s.journal[i]()
	}
	s.journal = s.journal[:id]
}

// Finalise ends a transaction: deletes self-destructed and empty-touched
// accounts, clears per-tx origin tracking, resets refund and journal.
//
// Self-destruct always wins: a self-destructed account is removed even
// if it still holds storage or was re-funded after the destruct within
// the same transaction (the ether is burned, matching mainnet pre-Cancun
// semantics). The EIP-161 empty-account sweep applies only to accounts
// that also have no storage left.
func (s *StateDB) Finalise() {
	s.mustMutable("Finalise")
	diskBacked := s.diskStore() != nil
	for addr, o := range s.objects {
		if o.deletable() {
			s.recWrite(AccessExist, addr)
			delete(s.objects, addr)
			s.markReset(addr)
			if diskBacked {
				s.markDeleted(addr)
			}
			continue
		}
		if len(o.origin) > 0 {
			// Replacing the map (rather than clearing it) keeps any
			// copy-on-write sharer's view intact.
			o.origin = make(map[ethtypes.Hash]uint256.Int)
		}
	}
	s.journal = nil
	s.refund = 0
}

// applyStorageDirt brings tr up to date for the given object: either a
// full rebuild from every live slot, or a per-slot refresh of just the
// given ones. Zero values delete — partial objects keep resident zero
// tombstones that must fall out of the trie, and in-memory objects
// never store zeros, so the paths coincide.
func applyStorageDirt(tr *trie.Secure, o *stateObject, slots []ethtypes.Hash, full bool) {
	if full {
		for slot, val := range o.storage {
			if val.IsZero() {
				continue
			}
			tr.Put(slot[:], rlp.Encode(rlp.Bytes(val.Bytes())))
		}
		return
	}
	for _, slot := range slots {
		if val, ok := o.storage[slot]; ok && !val.IsZero() {
			tr.Put(slot[:], rlp.Encode(rlp.Bytes(val.Bytes())))
		} else {
			tr.Delete(slot[:])
		}
	}
}

// residentSlots lists every resident slot key of o (the sync list for
// a partial object's freshly anchored lazy trie).
func residentSlots(o *stateObject) []ethtypes.Hash {
	out := make([]ethtypes.Hash, 0, len(o.storage))
	for slot := range o.storage {
		out = append(out, slot)
	}
	return out
}

// StorageRoot computes the Merkle root of one account's storage trie,
// syncing any pending dirty slots for that account first.
func (s *StateDB) StorageRoot(addr ethtypes.Address) ethtypes.Hash {
	if s.disk != nil {
		// Disk mode: every hash computation must route through
		// HashCollect so fresh nodes land in the pending batch — a
		// plain Hash here would cache them as already-emitted and they
		// would never reach the store. Delegate to the full sync.
		s.Root()
		if h, ok := s.rootCache[addr]; ok {
			return h
		}
		if o := s.getObject(addr); o != nil && o.partial {
			return o.storageRoot
		}
		return trie.EmptyRoot
	}
	o := s.getObject(addr)
	e := s.dirties[addr]
	if o == nil || (!o.partial && len(o.storage) == 0) {
		if e != nil {
			delete(s.storageTries, addr)
			delete(s.rootCache, addr)
			e.reset, e.slots = false, nil // account leaf stays marked
		}
		return trie.EmptyRoot
	}
	if e != nil && (e.reset || len(e.slots) > 0) {
		tr := s.storageTries[addr]
		full := false
		var slots []ethtypes.Hash
		switch {
		case e.reset || (tr == nil && !o.partial):
			tr = s.newStorageTrie()
			full = true
		case tr == nil:
			// Partial object without a materialised trie: anchor a lazy
			// trie at the committed root and sync every resident slot
			// (an overlay trie is never collected, so Hash is fine).
			tr = trie.NewSecureFromRoot(o.storageRoot, s.diskStore())
			slots = residentSlots(o)
		default:
			slots = make([]ethtypes.Hash, 0, len(e.slots))
			for slot := range e.slots {
				slots = append(slots, slot)
			}
		}
		applyStorageDirt(tr, o, slots, full)
		s.storageTries[addr] = tr
		s.rootCache[addr] = tr.Hash(nil)
		e.reset, e.slots = false, nil
	}
	if h, ok := s.rootCache[addr]; ok {
		return h
	}
	// Cold path: storage present but never synced (e.g. a Copy taken
	// before any root computation). Full rebuild — or, for a partial
	// object, resident slots over the committed anchor.
	var tr *trie.Secure
	if o.partial {
		tr = trie.NewSecureFromRoot(o.storageRoot, s.diskStore())
		applyStorageDirt(tr, o, residentSlots(o), false)
	} else {
		tr = s.newStorageTrie()
		applyStorageDirt(tr, o, nil, true)
	}
	s.storageTries[addr] = tr
	h := tr.Hash(nil)
	s.rootCache[addr] = h
	return h
}

// storageJob is one dirty account's storage-trie sync, runnable in
// parallel with other accounts' jobs (their tries share no nodes).
type storageJob struct {
	addr  ethtypes.Address
	obj   *stateObject
	tr    *trie.Secure
	slots []ethtypes.Hash
	full  bool
	drop  bool // storage gone (or account deleted): drop the trie
	root  ethtypes.Hash

	// Disk mode: collect routes hashing through HashCollect so fresh
	// trie nodes accumulate in nodes for the pending batch; dirt is the
	// slot list whose flat records must be (re)staged — distinct from
	// slots, which for a freshly anchored partial trie also carries
	// clean resident slots that need syncing but not re-staging.
	collect bool
	nodes   []statestore.NodeBlob
	dirt    []ethtypes.Hash
}

// maxStorageHashWorkers bounds the worker pool for parallel storage-root
// computation; beyond this, keccak throughput saturates memory bandwidth.
const maxStorageHashWorkers = 8

// minParallelJobs is the fan-out threshold below which goroutine setup
// costs more than it saves.
const minParallelJobs = 3

func (j *storageJob) run() {
	if j.drop || j.tr == nil {
		return
	}
	applyStorageDirt(j.tr, j.obj, j.slots, j.full)
	if j.collect {
		j.root = j.tr.HashCollect(func(h ethtypes.Hash, enc []byte) {
			j.nodes = append(j.nodes, statestore.NodeBlob{Hash: h, Enc: append([]byte(nil), enc...)})
		})
		return
	}
	j.root = j.tr.Hash(nil)
}

// Root computes the world-state Merkle root over all accounts by syncing
// the persistent tries against the dirty set: storage roots for dirty
// accounts in parallel, then their account-trie leaves, then one
// incremental hash of the account trie.
func (s *StateDB) Root() ethtypes.Hash {
	if s.base != nil {
		panic("state: Root on overlay (cannot see untouched base accounts)")
	}
	if s.rootValid {
		return s.worldRoot
	}

	jobs := make([]storageJob, 0, len(s.dirties))
	hashWork := 0
	for addr, e := range s.dirties {
		o := s.objects[addr]
		j := storageJob{addr: addr, obj: o, collect: s.disk != nil}
		switch {
		case o == nil || (!o.partial && len(o.storage) == 0):
			j.drop = true
		case e.reset:
			j.tr = s.newStorageTrie()
			j.full = true
			hashWork++
		case len(e.slots) > 0:
			dirt := make([]ethtypes.Hash, 0, len(e.slots))
			for slot := range e.slots {
				dirt = append(dirt, slot)
			}
			tr := s.storageTries[addr]
			switch {
			case tr == nil && o.partial:
				// Anchor a lazy trie at the committed root; sync every
				// resident slot (clean residents are no-op rewrites),
				// but only the dirty ones need re-staging to disk.
				tr = trie.NewSecureFromRoot(o.storageRoot, s.disk)
				j.slots = residentSlots(o)
			case tr == nil:
				tr = s.newStorageTrie()
				j.full = true
			default:
				j.slots = dirt
			}
			j.dirt = dirt
			j.tr = tr
			hashWork++
		default:
			// Meta-only change: the storage root is already current.
		}
		jobs = append(jobs, j)
	}

	// Phase 1: storage roots, fanned out when there is enough work.
	workers := runtime.GOMAXPROCS(0)
	if workers > maxStorageHashWorkers {
		workers = maxStorageHashWorkers
	}
	if hashWork >= minParallelJobs && workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					jobs[i].run()
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range jobs {
			jobs[i].run()
		}
	}

	// Phase 2: merge results and refresh account-trie leaves (serial:
	// the account trie and the pending batch are shared).
	var p *statestore.Batch
	if s.disk != nil {
		p = s.pendingBatch()
	}
	for i := range jobs {
		j := &jobs[i]
		switch {
		case j.drop:
			delete(s.storageTries, j.addr)
			delete(s.rootCache, j.addr)
			if p != nil {
				// Storage is gone (account deleted, or every slot
				// cleared): wipe the flat slot records too, or a later
				// read-through would resurrect stale values.
				s.stageClear(j.addr)
			}
		case j.tr != nil:
			s.storageTries[j.addr] = j.tr
			s.rootCache[j.addr] = j.root
			if p != nil {
				for _, nb := range j.nodes {
					p.PutNode(nb.Hash, nb.Enc)
				}
				if j.full {
					// Fresh trie from scratch: the flat records must
					// match exactly, so wipe and re-dump.
					s.stageClear(j.addr)
					for slot, val := range j.obj.storage {
						if !val.IsZero() {
							p.PutSlot(j.addr, slot, val.Bytes())
						}
					}
				} else {
					for _, slot := range j.dirt {
						if val, ok := j.obj.storage[slot]; ok && !val.IsZero() {
							p.PutSlot(j.addr, slot, val.Bytes())
						} else {
							p.PutSlot(j.addr, slot, nil)
						}
					}
				}
			}
		}
		o := j.obj
		storageRoot, ok := s.rootCache[j.addr]
		if !ok {
			if o != nil && o.partial {
				storageRoot = o.storageRoot
			} else {
				storageRoot = trie.EmptyRoot
			}
		}
		if o == nil || (o.empty() && storageRoot == trie.EmptyRoot) {
			s.accountTrie.Delete(j.addr[:])
			if p != nil {
				p.PutAccount(j.addr, nil)
			}
			continue
		}
		enc := rlp.Encode(rlp.List(
			rlp.Uint(o.nonce),
			rlp.BigInt(o.balance.ToBig()),
			rlp.Bytes(storageRoot[:]),
			rlp.Bytes(o.codeHash[:]),
		))
		s.accountTrie.Put(j.addr[:], enc)
		if p != nil {
			p.PutAccount(j.addr, &statestore.AccountRecord{
				Nonce:       o.nonce,
				Balance:     o.balance.Bytes(),
				StorageRoot: storageRoot,
				CodeHash:    o.codeHash,
			})
			if o.code != nil && o.codeHash != EmptyCodeHash {
				// Deduplicated against already-stored codes at commit.
				p.PutCode(o.codeHash, o.code)
			}
		}
	}

	s.dirties = make(map[ethtypes.Address]*dirtyEntry)
	if p != nil {
		s.worldRoot = s.accountTrie.HashCollect(func(h ethtypes.Hash, enc []byte) {
			p.PutNode(h, append([]byte(nil), enc...))
		})
	} else {
		s.worldRoot = s.accountTrie.Hash(nil)
	}
	s.rootValid = true
	return s.worldRoot
}

// RebuildRoot recomputes the world root from scratch — fresh tries, no
// caches. It is the oracle the incremental pipeline is property-tested
// against and is intentionally kept on the original (pre-incremental)
// code path.
func (s *StateDB) RebuildRoot() ethtypes.Hash {
	at := trie.NewSecure()
	for addr, o := range s.objects {
		if o.empty() && len(o.storage) == 0 {
			continue
		}
		st := trie.NewSecure()
		for slot, val := range o.storage {
			st.Put(slot[:], rlp.Encode(rlp.Bytes(val.Bytes())))
		}
		storageRoot := st.Hash(nil)
		enc := rlp.Encode(rlp.List(
			rlp.Uint(o.nonce),
			rlp.BigInt(o.balance.ToBig()),
			rlp.Bytes(storageRoot[:]),
			rlp.Bytes(o.codeHash[:]),
		))
		at.Put(addr[:], enc)
	}
	return at.Hash(nil)
}

// Accounts returns the addresses present in state, sorted, for
// inspection tools and tests. In disk mode this merges the store's
// account set with the resident objects (resident wins; accounts
// deleted since the last commit are excluded).
func (s *StateDB) Accounts() []ethtypes.Address {
	out := make([]ethtypes.Address, 0, len(s.objects))
	for a := range s.objects {
		out = append(out, a)
	}
	if s.disk != nil {
		s.disk.ForEachAccount(func(addr ethtypes.Address, _ *statestore.AccountRecord) bool {
			if _, resident := s.objects[addr]; !resident && !s.isDeleted(addr) {
				out = append(out, addr)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < ethtypes.AddressLength; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// StorageSlots returns the non-zero slots of one account, for tooling.
func (s *StateDB) StorageSlots(addr ethtypes.Address) map[ethtypes.Hash]uint256.Int {
	o := s.getObject(addr)
	if o == nil {
		return nil
	}
	out := make(map[ethtypes.Hash]uint256.Int, len(o.storage))
	for k, v := range o.storage {
		out[k] = v
	}
	return out
}

// Copy returns an isolated copy of the state (journal not carried over)
// for speculative execution such as eth_call and gas estimation.
//
// The copy is copy-on-write over the shared committed state: account
// headers are duplicated (cheap scalars), while storage maps and the
// persistent tries are shared until either side writes. Trie sharing is
// safe because trie mutation path-copies; map sharing is mediated by the
// per-object shared flag.
func (s *StateDB) Copy() *StateDB {
	cp := &StateDB{
		objects:      make(map[ethtypes.Address]*stateObject, len(s.objects)),
		accountTrie:  s.accountTrie.Snapshot(),
		storageTries: make(map[ethtypes.Address]*trie.Secure, len(s.storageTries)),
		rootCache:    make(map[ethtypes.Address]ethtypes.Hash, len(s.rootCache)),
		dirties:      make(map[ethtypes.Address]*dirtyEntry, len(s.dirties)),
		worldRoot:    s.worldRoot,
		rootValid:    s.rootValid,
		// The disk handle is shared; the pending batch is not — it
		// belongs to whichever state Root()s the dirt (the sealing
		// pipeline always roots on the copy).
		disk: s.disk,
	}
	if len(s.deleted) > 0 {
		cp.deleted = make(map[ethtypes.Address]struct{}, len(s.deleted))
		for addr := range s.deleted {
			cp.deleted[addr] = struct{}{}
		}
	}
	for addr, o := range s.objects {
		cp.objects[addr] = cloneShared(o)
	}
	for addr, tr := range s.storageTries {
		cp.storageTries[addr] = tr.Snapshot()
	}
	for addr, h := range s.rootCache {
		cp.rootCache[addr] = h
	}
	for addr, e := range s.dirties {
		ne := &dirtyEntry{reset: e.reset}
		if len(e.slots) > 0 {
			ne.slots = make(map[ethtypes.Hash]struct{}, len(e.slots))
			for slot := range e.slots {
				ne.slots[slot] = struct{}{}
			}
		}
		cp.dirties[addr] = ne
	}
	return cp
}

// TotalBalance sums all account balances — a conservation-law hook for
// property tests. In disk mode, non-resident accounts are summed from
// their committed records (resident objects override; uncommitted
// changes are always resident, so the sum is exact).
func (s *StateDB) TotalBalance() uint256.Int {
	total := uint256.Zero
	if s.disk != nil {
		s.disk.ForEachAccount(func(addr ethtypes.Address, rec *statestore.AccountRecord) bool {
			if _, resident := s.objects[addr]; !resident && !s.isDeleted(addr) {
				total = total.Add(uint256.SetBytes(rec.Balance))
			}
			return true
		})
	}
	for _, o := range s.objects {
		total = total.Add(o.balance)
	}
	return total
}

// AccountDump is a JSON-friendly rendering of one account, for
// inspection tooling.
type AccountDump struct {
	Address  string            `json:"address"`
	Nonce    uint64            `json:"nonce"`
	Balance  string            `json:"balance"`
	CodeSize int               `json:"codeSize,omitempty"`
	Storage  map[string]string `json:"storage,omitempty"`
}

// Dump renders the whole world state (sorted by address) for debugging
// and the inspection CLI. Not for consensus use.
func (s *StateDB) Dump() []AccountDump {
	addrs := s.Accounts()
	out := make([]AccountDump, 0, len(addrs))
	for _, addr := range addrs {
		o := s.objects[addr]
		if o == nil && s.disk != nil {
			// Non-resident disk account: render the flat record. Slot
			// keys are keccak-hashed in the storage trie and the dump
			// is resident-oriented, so storage is omitted here.
			o = loadDiskObject(s.disk, addr)
		}
		if o == nil || (o.empty() && len(o.storage) == 0 &&
			(o.storageRoot == (ethtypes.Hash{}) || o.storageRoot == trie.EmptyRoot)) {
			continue
		}
		d := AccountDump{
			Address:  addr.Hex(),
			Nonce:    o.nonce,
			Balance:  o.balance.String(),
			CodeSize: len(s.codeOf(o)),
		}
		if len(o.storage) > 0 {
			d.Storage = make(map[string]string, len(o.storage))
			for k, v := range o.storage {
				if v.IsZero() {
					continue // partial-object tombstone
				}
				d.Storage[k.Hex()] = v.Hex()
			}
		}
		out = append(out, d)
	}
	return out
}
