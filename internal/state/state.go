// Package state implements the journaled world state of the chain: the
// account model (nonce, balance, code, storage) with snapshot/revert
// semantics required by the EVM's nested call frames, plus Merkle root
// computation over the account and storage tries.
package state

import (
	"fmt"
	"sort"

	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
	"legalchain/internal/trie"
	"legalchain/internal/uint256"
)

// EmptyCodeHash is keccak256 of empty code — the code hash of every
// externally-owned account.
var EmptyCodeHash = ethtypes.Keccak256(nil)

// stateObject is the in-memory representation of one account.
type stateObject struct {
	nonce    uint64
	balance  uint256.Int
	code     []byte
	codeHash ethtypes.Hash

	// storage holds the live storage values. origin holds the value each
	// slot had when the current transaction began, used for SSTORE gas
	// metering and refunds.
	storage map[ethtypes.Hash]uint256.Int
	origin  map[ethtypes.Hash]uint256.Int

	selfdestructed bool
}

func newStateObject() *stateObject {
	return &stateObject{
		codeHash: EmptyCodeHash,
		storage:  make(map[ethtypes.Hash]uint256.Int),
		origin:   make(map[ethtypes.Hash]uint256.Int),
	}
}

// empty reports whether the account is empty per EIP-161
// (nonce == 0, balance == 0, no code).
func (o *stateObject) empty() bool {
	return o.nonce == 0 && o.balance.IsZero() && len(o.code) == 0
}

// StateDB is the mutable world state with journaling.
type StateDB struct {
	objects map[ethtypes.Address]*stateObject
	journal []func()
	refund  uint64
	logs    []*ethtypes.Log

	// storage-root cache, invalidated on writes per account
	rootCache map[ethtypes.Address]ethtypes.Hash
}

// New returns an empty world state.
func New() *StateDB {
	return &StateDB{
		objects:   make(map[ethtypes.Address]*stateObject),
		rootCache: make(map[ethtypes.Address]ethtypes.Hash),
	}
}

func (s *StateDB) getObject(addr ethtypes.Address) *stateObject {
	return s.objects[addr]
}

func (s *StateDB) getOrNewObject(addr ethtypes.Address) *stateObject {
	if o := s.objects[addr]; o != nil {
		return o
	}
	o := newStateObject()
	s.objects[addr] = o
	s.journal = append(s.journal, func() { delete(s.objects, addr) })
	return o
}

func (s *StateDB) touch(addr ethtypes.Address) {
	delete(s.rootCache, addr)
}

// Exist reports whether the account exists in state.
func (s *StateDB) Exist(addr ethtypes.Address) bool {
	return s.getObject(addr) != nil
}

// Empty reports whether the account is absent or empty (EIP-161).
func (s *StateDB) Empty(addr ethtypes.Address) bool {
	o := s.getObject(addr)
	return o == nil || o.empty()
}

// CreateAccount explicitly creates an account (used for contract
// deployment targets).
func (s *StateDB) CreateAccount(addr ethtypes.Address) {
	s.getOrNewObject(addr)
	s.touch(addr)
}

// GetBalance returns the account balance (zero for absent accounts).
func (s *StateDB) GetBalance(addr ethtypes.Address) uint256.Int {
	if o := s.getObject(addr); o != nil {
		return o.balance
	}
	return uint256.Zero
}

// AddBalance credits addr by amount.
func (s *StateDB) AddBalance(addr ethtypes.Address, amount uint256.Int) {
	o := s.getOrNewObject(addr)
	prev := o.balance
	s.journal = append(s.journal, func() { o.balance = prev })
	o.balance = o.balance.Add(amount)
	s.touch(addr)
}

// SubBalance debits addr by amount. The caller must have checked funds;
// it panics on underflow to surface accounting bugs loudly.
func (s *StateDB) SubBalance(addr ethtypes.Address, amount uint256.Int) {
	o := s.getOrNewObject(addr)
	next, under := o.balance.SubUnderflow(amount)
	if under {
		panic(fmt.Sprintf("state: balance underflow for %s", addr))
	}
	prev := o.balance
	s.journal = append(s.journal, func() { o.balance = prev })
	o.balance = next
	s.touch(addr)
}

// GetNonce returns the account nonce.
func (s *StateDB) GetNonce(addr ethtypes.Address) uint64 {
	if o := s.getObject(addr); o != nil {
		return o.nonce
	}
	return 0
}

// SetNonce sets the account nonce.
func (s *StateDB) SetNonce(addr ethtypes.Address, nonce uint64) {
	o := s.getOrNewObject(addr)
	prev := o.nonce
	s.journal = append(s.journal, func() { o.nonce = prev })
	o.nonce = nonce
	s.touch(addr)
}

// GetCode returns the contract code at addr.
func (s *StateDB) GetCode(addr ethtypes.Address) []byte {
	if o := s.getObject(addr); o != nil {
		return o.code
	}
	return nil
}

// GetCodeSize returns len(code) without copying.
func (s *StateDB) GetCodeSize(addr ethtypes.Address) int {
	return len(s.GetCode(addr))
}

// GetCodeHash returns keccak(code), the zero hash for absent accounts.
func (s *StateDB) GetCodeHash(addr ethtypes.Address) ethtypes.Hash {
	if o := s.getObject(addr); o != nil {
		return o.codeHash
	}
	return ethtypes.Hash{}
}

// SetCode installs contract code at addr.
func (s *StateDB) SetCode(addr ethtypes.Address, code []byte) {
	o := s.getOrNewObject(addr)
	prevCode, prevHash := o.code, o.codeHash
	s.journal = append(s.journal, func() { o.code, o.codeHash = prevCode, prevHash })
	o.code = append([]byte(nil), code...)
	o.codeHash = ethtypes.Keccak256(code)
	s.touch(addr)
}

// GetState reads a storage slot.
func (s *StateDB) GetState(addr ethtypes.Address, slot ethtypes.Hash) uint256.Int {
	if o := s.getObject(addr); o != nil {
		return o.storage[slot]
	}
	return uint256.Zero
}

// GetCommittedState reads the value the slot had at the start of the
// current transaction (for SSTORE gas metering).
func (s *StateDB) GetCommittedState(addr ethtypes.Address, slot ethtypes.Hash) uint256.Int {
	o := s.getObject(addr)
	if o == nil {
		return uint256.Zero
	}
	if v, ok := o.origin[slot]; ok {
		return v
	}
	return o.storage[slot]
}

// SetState writes a storage slot.
func (s *StateDB) SetState(addr ethtypes.Address, slot ethtypes.Hash, value uint256.Int) {
	o := s.getOrNewObject(addr)
	if _, tracked := o.origin[slot]; !tracked {
		o.origin[slot] = o.storage[slot]
	}
	prev, existed := o.storage[slot]
	s.journal = append(s.journal, func() {
		if existed {
			o.storage[slot] = prev
		} else {
			delete(o.storage, slot)
		}
	})
	if value.IsZero() {
		delete(o.storage, slot)
	} else {
		o.storage[slot] = value
	}
	s.touch(addr)
}

// SelfDestruct marks the contract for deletion at transaction finalize
// and zeroes its balance (the caller moves funds first).
func (s *StateDB) SelfDestruct(addr ethtypes.Address) {
	o := s.getObject(addr)
	if o == nil {
		return
	}
	prevFlag, prevBal := o.selfdestructed, o.balance
	s.journal = append(s.journal, func() { o.selfdestructed, o.balance = prevFlag, prevBal })
	o.selfdestructed = true
	o.balance = uint256.Zero
	s.touch(addr)
}

// HasSelfDestructed reports the destruct flag.
func (s *StateDB) HasSelfDestructed(addr ethtypes.Address) bool {
	o := s.getObject(addr)
	return o != nil && o.selfdestructed
}

// AddRefund accumulates the SSTORE refund counter.
func (s *StateDB) AddRefund(gas uint64) {
	prev := s.refund
	s.journal = append(s.journal, func() { s.refund = prev })
	s.refund += gas
}

// SubRefund decreases the refund counter (EIP-2200 net metering).
func (s *StateDB) SubRefund(gas uint64) {
	prev := s.refund
	s.journal = append(s.journal, func() { s.refund = prev })
	if gas > s.refund {
		panic("state: refund counter below zero")
	}
	s.refund -= gas
}

// GetRefund returns the refund counter.
func (s *StateDB) GetRefund() uint64 { return s.refund }

// AddLog appends an event log emitted by the current execution.
func (s *StateDB) AddLog(log *ethtypes.Log) {
	s.journal = append(s.journal, func() { s.logs = s.logs[:len(s.logs)-1] })
	s.logs = append(s.logs, log)
}

// Logs returns logs emitted since the last TakeLogs.
func (s *StateDB) Logs() []*ethtypes.Log { return s.logs }

// TakeLogs returns and clears the accumulated logs (end of transaction).
func (s *StateDB) TakeLogs() []*ethtypes.Log {
	out := s.logs
	s.logs = nil
	return out
}

// Snapshot returns an identifier for the current state revision.
func (s *StateDB) Snapshot() int { return len(s.journal) }

// RevertToSnapshot undoes every change made after the snapshot was taken.
func (s *StateDB) RevertToSnapshot(id int) {
	if id < 0 || id > len(s.journal) {
		panic(fmt.Sprintf("state: invalid snapshot id %d (journal %d)", id, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= id; i-- {
		s.journal[i]()
	}
	s.journal = s.journal[:id]
	// Conservatively drop root caches; reverted writes already touched.
	s.rootCache = make(map[ethtypes.Address]ethtypes.Hash)
}

// Finalise ends a transaction: deletes self-destructed and empty-touched
// accounts, clears per-tx origin tracking, resets refund and journal.
func (s *StateDB) Finalise() {
	for addr, o := range s.objects {
		if o.selfdestructed || o.empty() && len(o.storage) == 0 {
			delete(s.objects, addr)
			delete(s.rootCache, addr)
			continue
		}
		o.origin = make(map[ethtypes.Hash]uint256.Int)
	}
	s.journal = nil
	s.refund = 0
}

// StorageRoot computes the Merkle root of one account's storage trie.
func (s *StateDB) StorageRoot(addr ethtypes.Address) ethtypes.Hash {
	if h, ok := s.rootCache[addr]; ok {
		return h
	}
	o := s.getObject(addr)
	if o == nil || len(o.storage) == 0 {
		return trie.EmptyRoot
	}
	st := trie.NewSecure()
	for slot, val := range o.storage {
		st.Put(slot[:], rlp.Encode(rlp.Bytes(val.Bytes())))
	}
	root := st.Hash(nil)
	s.rootCache[addr] = root
	return root
}

// Root computes the world-state Merkle root over all accounts.
func (s *StateDB) Root() ethtypes.Hash {
	at := trie.NewSecure()
	for addr, o := range s.objects {
		if o.empty() && len(o.storage) == 0 {
			continue
		}
		storageRoot := s.StorageRoot(addr)
		enc := rlp.Encode(rlp.List(
			rlp.Uint(o.nonce),
			rlp.BigInt(o.balance.ToBig()),
			rlp.Bytes(storageRoot[:]),
			rlp.Bytes(o.codeHash[:]),
		))
		at.Put(addr[:], enc)
	}
	return at.Hash(nil)
}

// Accounts returns the addresses present in state, sorted, for
// inspection tools and tests.
func (s *StateDB) Accounts() []ethtypes.Address {
	out := make([]ethtypes.Address, 0, len(s.objects))
	for a := range s.objects {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < ethtypes.AddressLength; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// StorageSlots returns the non-zero slots of one account, for tooling.
func (s *StateDB) StorageSlots(addr ethtypes.Address) map[ethtypes.Hash]uint256.Int {
	o := s.getObject(addr)
	if o == nil {
		return nil
	}
	out := make(map[ethtypes.Hash]uint256.Int, len(o.storage))
	for k, v := range o.storage {
		out[k] = v
	}
	return out
}

// Copy returns a deep copy of the state (journal not carried over) for
// speculative execution such as eth_call and gas estimation.
func (s *StateDB) Copy() *StateDB {
	cp := New()
	for addr, o := range s.objects {
		no := newStateObject()
		no.nonce = o.nonce
		no.balance = o.balance
		no.code = append([]byte(nil), o.code...)
		no.codeHash = o.codeHash
		for k, v := range o.storage {
			no.storage[k] = v
		}
		no.selfdestructed = o.selfdestructed
		cp.objects[addr] = no
	}
	return cp
}

// TotalBalance sums all account balances — a conservation-law hook for
// property tests.
func (s *StateDB) TotalBalance() uint256.Int {
	total := uint256.Zero
	for _, o := range s.objects {
		total = total.Add(o.balance)
	}
	return total
}

// AccountDump is a JSON-friendly rendering of one account, for
// inspection tooling.
type AccountDump struct {
	Address  string            `json:"address"`
	Nonce    uint64            `json:"nonce"`
	Balance  string            `json:"balance"`
	CodeSize int               `json:"codeSize,omitempty"`
	Storage  map[string]string `json:"storage,omitempty"`
}

// Dump renders the whole world state (sorted by address) for debugging
// and the inspection CLI. Not for consensus use.
func (s *StateDB) Dump() []AccountDump {
	addrs := s.Accounts()
	out := make([]AccountDump, 0, len(addrs))
	for _, addr := range addrs {
		o := s.objects[addr]
		if o == nil || (o.empty() && len(o.storage) == 0) {
			continue
		}
		d := AccountDump{
			Address:  addr.Hex(),
			Nonce:    o.nonce,
			Balance:  o.balance.String(),
			CodeSize: len(o.code),
		}
		if len(o.storage) > 0 {
			d.Storage = make(map[string]string, len(o.storage))
			for k, v := range o.storage {
				d.Storage[k.Hex()] = v.Hex()
			}
		}
		out = append(out, d)
	}
	return out
}
