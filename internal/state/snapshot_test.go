package state

import (
	"bytes"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/uint256"
)

func buildSampleState() *StateDB {
	st := New()
	a := ethtypes.HexToAddress("0x1111111111111111111111111111111111111111")
	b := ethtypes.HexToAddress("0x2222222222222222222222222222222222222222")
	c := ethtypes.HexToAddress("0x3333333333333333333333333333333333333333")
	st.AddBalance(a, ethtypes.Ether(7))
	st.SetNonce(a, 3)
	st.AddBalance(b, uint256.NewUint64(12345))
	st.SetCode(c, []byte{0x60, 0x00, 0x60, 0x00, 0xf3})
	for i := byte(1); i <= 5; i++ {
		st.SetState(c, ethtypes.BytesToHash([]byte{i}), uint256.NewUint64(uint64(i)*100))
	}
	st.Finalise()
	return st
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := buildSampleState()
	wantRoot := st.Root()

	blob := st.EncodeSnapshot()
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root() != wantRoot {
		t.Fatalf("decoded root %s, want %s", got.Root(), wantRoot)
	}
	// Decoded state must behave, not just hash, the same.
	c := ethtypes.HexToAddress("0x3333333333333333333333333333333333333333")
	if got.GetState(c, ethtypes.BytesToHash([]byte{3})) != uint256.NewUint64(300) {
		t.Fatal("storage slot lost")
	}
	if got.GetNonce(ethtypes.HexToAddress("0x1111111111111111111111111111111111111111")) != 3 {
		t.Fatal("nonce lost")
	}
	if len(got.GetCode(c)) != 5 {
		t.Fatal("code lost")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	a := buildSampleState().EncodeSnapshot()
	b := buildSampleState().EncodeSnapshot()
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot encoding is not canonical")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot([]byte{0xde, 0xad}); err == nil {
		t.Fatal("garbage accepted")
	}
	// Flip a byte inside a valid snapshot: either RLP decoding or
	// validation must fail, never a panic.
	blob := buildSampleState().EncodeSnapshot()
	for i := 0; i < len(blob); i += 7 {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x01
		st, err := DecodeSnapshot(mut)
		if err == nil && st == nil {
			t.Fatal("nil state without error")
		}
	}
}
