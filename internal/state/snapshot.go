package state

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
	"legalchain/internal/uint256"
)

// State snapshot codec: a deterministic RLP capture of every live
// account (nonce, balance, code, storage) used by the chain's durable
// persistence layer to bound crash-recovery replay. The encoding is
// canonical — accounts sorted by address, slots sorted by key — so the
// same world state always produces identical bytes, which lets tests
// compare snapshots directly.
//
// Layout: [version, [[addr, nonce, balance, code, [[slot, value]...]]...]]

// snapshotVersion guards the on-disk layout; bump when the account
// encoding changes.
const snapshotVersion = 1

// EncodeSnapshot serialises the committed world state. It must be
// called on finalised state (no pending journal); the chain takes
// snapshots only at block boundaries where that holds.
func (s *StateDB) EncodeSnapshot() []byte {
	addrs := s.Accounts()
	accItems := make([]*rlp.Item, 0, len(addrs))
	for _, addr := range addrs {
		o := s.objects[addr]
		if o == nil || (o.empty() && len(o.storage) == 0) {
			continue
		}
		slots := make([]ethtypes.Hash, 0, len(o.storage))
		for slot := range o.storage {
			slots = append(slots, slot)
		}
		sort.Slice(slots, func(i, j int) bool {
			return bytes.Compare(slots[i][:], slots[j][:]) < 0
		})
		slotItems := make([]*rlp.Item, len(slots))
		for i, slot := range slots {
			val := o.storage[slot]
			slotItems[i] = rlp.List(rlp.Bytes(slot[:]), rlp.Bytes(val.Bytes()))
		}
		accItems = append(accItems, rlp.List(
			rlp.Bytes(addr[:]),
			rlp.Uint(o.nonce),
			rlp.BigInt(o.balance.ToBig()),
			rlp.Bytes(o.code),
			rlp.List(slotItems...),
		))
	}
	return rlp.Encode(rlp.List(
		rlp.Uint(snapshotVersion),
		rlp.List(accItems...),
	))
}

// DecodeSnapshot rebuilds a StateDB from an EncodeSnapshot payload. The
// returned state is finalised (empty journal) and ready to execute the
// next block; Root() recomputes from scratch, so callers can verify it
// against a stored header before trusting the snapshot.
func DecodeSnapshot(data []byte) (*StateDB, error) {
	it, err := rlp.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("state: snapshot: %w", err)
	}
	if it.Kind() != rlp.KindList || it.Len() != 2 {
		return nil, errors.New("state: snapshot must be a 2-item list")
	}
	ver, err := it.At(0).AsUint64()
	if err != nil {
		return nil, fmt.Errorf("state: snapshot version: %w", err)
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("state: unsupported snapshot version %d", ver)
	}
	accs := it.At(1)
	if accs.Kind() != rlp.KindList {
		return nil, errors.New("state: snapshot accounts must be a list")
	}
	st := New()
	for i := 0; i < accs.Len(); i++ {
		acc := accs.At(i)
		if acc.Kind() != rlp.KindList || acc.Len() != 5 {
			return nil, errors.New("state: snapshot account must be a 5-item list")
		}
		if acc.At(0).Kind() != rlp.KindString || acc.At(0).Len() != ethtypes.AddressLength {
			return nil, errors.New("state: snapshot account address must be 20 bytes")
		}
		addr := ethtypes.BytesToAddress(acc.At(0).Str())
		nonce, err := acc.At(1).AsUint64()
		if err != nil {
			return nil, fmt.Errorf("state: snapshot nonce: %w", err)
		}
		bal, err := acc.At(2).AsBigInt()
		if err != nil {
			return nil, fmt.Errorf("state: snapshot balance: %w", err)
		}
		if acc.At(3).Kind() != rlp.KindString {
			return nil, errors.New("state: snapshot code must be a string item")
		}
		code := acc.At(3).Str()
		slots := acc.At(4)
		if slots.Kind() != rlp.KindList {
			return nil, errors.New("state: snapshot storage must be a list")
		}
		if nonce != 0 {
			st.SetNonce(addr, nonce)
		}
		if bal.Sign() != 0 {
			st.AddBalance(addr, uint256.FromBig(bal))
		}
		if len(code) > 0 {
			st.SetCode(addr, code)
		}
		for j := 0; j < slots.Len(); j++ {
			kv := slots.At(j)
			if kv.Kind() != rlp.KindList || kv.Len() != 2 {
				return nil, errors.New("state: snapshot slot must be a 2-item list")
			}
			if kv.At(0).Kind() != rlp.KindString || kv.At(0).Len() != ethtypes.HashLength {
				return nil, errors.New("state: snapshot slot key must be 32 bytes")
			}
			slot := ethtypes.BytesToHash(kv.At(0).Str())
			valBig, err := kv.At(1).AsBigInt()
			if err != nil {
				return nil, fmt.Errorf("state: snapshot slot value: %w", err)
			}
			val := uint256.FromBig(valBig)
			if val.IsZero() {
				return nil, errors.New("state: snapshot stores a zero slot")
			}
			st.SetState(addr, slot, val)
		}
	}
	st.Finalise()
	return st, nil
}
