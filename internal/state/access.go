package state

import (
	"legalchain/internal/ethtypes"
	"legalchain/internal/trie"
	"legalchain/internal/uint256"
)

// Optimistic-concurrency support: the chain's parallel block executor
// runs every transaction of a batch speculatively against the pre-block
// state, then commits them in order if their recorded read sets are
// untouched by earlier commits. Three pieces live here:
//
//   - AccessRecorder: per-execution read/write-set recording, hooked
//     into every StateDB getter and mutator (see state.go).
//   - Overlay: an O(1) copy-on-read view over a base StateDB, so a
//     speculative execution touches only the accounts it uses instead
//     of cloning the whole world up front (Copy is O(accounts)).
//   - Diff: the write set of one execution materialised as final
//     values, extractable from the overlay and applicable to the
//     canonical state in commit order.
//
// The recorder is deliberately conservative: reads are recorded even
// when they hit the transaction's own earlier write (a nested-call
// revert can expose the base value again), and journal undos never
// un-record. False conflicts only cost a re-execution; missed
// conflicts would cost correctness.

// AccessKind distinguishes which facet of an account an access touched.
type AccessKind uint8

const (
	// AccessExist is account existence (Exist/Empty checks, creation,
	// self-destruct and empty-account sweeps).
	AccessExist AccessKind = iota
	// AccessBalance is the account balance.
	AccessBalance
	// AccessNonce is the account nonce.
	AccessNonce
	// AccessCode is the contract code (and code hash/size).
	AccessCode
	// AccessStorage is one storage slot, identified by AccessKey.Slot.
	AccessStorage
)

// AccessKey identifies one read- or written location in the world state.
type AccessKey struct {
	Addr ethtypes.Address
	Kind AccessKind
	Slot ethtypes.Hash // meaningful only for AccessStorage
}

// BalanceKey is the access key for addr's balance — exported so the
// executor can mark the coinbase fee credit as a blind write.
func BalanceKey(addr ethtypes.Address) AccessKey {
	return AccessKey{Addr: addr, Kind: AccessBalance}
}

// AccessRecorder accumulates the read and write sets of one execution.
type AccessRecorder struct {
	Reads  map[AccessKey]struct{}
	Writes map[AccessKey]struct{}
}

// NewAccessRecorder returns an empty recorder.
func NewAccessRecorder() *AccessRecorder {
	return &AccessRecorder{
		Reads:  make(map[AccessKey]struct{}),
		Writes: make(map[AccessKey]struct{}),
	}
}

// SetRecorder attaches (or, with nil, detaches) an access recorder.
// While attached, every getter records into Reads and every mutator
// into Writes. Recording is not carried over by Copy or Overlay.
func (s *StateDB) SetRecorder(r *AccessRecorder) { s.rec = r }

func (s *StateDB) recRead(kind AccessKind, addr ethtypes.Address) {
	if s.rec != nil {
		s.rec.Reads[AccessKey{Addr: addr, Kind: kind}] = struct{}{}
	}
}

func (s *StateDB) recReadSlot(addr ethtypes.Address, slot ethtypes.Hash) {
	if s.rec != nil {
		s.rec.Reads[AccessKey{Addr: addr, Kind: AccessStorage, Slot: slot}] = struct{}{}
	}
}

func (s *StateDB) recWrite(kind AccessKind, addr ethtypes.Address) {
	if s.rec != nil {
		s.rec.Writes[AccessKey{Addr: addr, Kind: kind}] = struct{}{}
	}
}

func (s *StateDB) recWriteSlot(addr ethtypes.Address, slot ethtypes.Hash) {
	if s.rec != nil {
		s.rec.Writes[AccessKey{Addr: addr, Kind: AccessStorage, Slot: slot}] = struct{}{}
	}
}

// Overlay returns an O(1) copy-on-read view over s for speculative
// execution: account objects are cloned lazily on first touch (maps
// shared copy-on-write exactly as in Copy), so the cost of an overlay
// is proportional to the accounts the execution actually visits, not
// to the size of the world state.
//
// The overlay supports the full execution surface (getters, mutators,
// journal/revert, Finalise) but not root computation, snapshot encoding
// or whole-state walks — it cannot enumerate untouched base accounts.
// It is meant for a single transaction: after its Finalise sweeps an
// account, a later read would re-materialise the base object. The base
// must not be mutated while the overlay is live; concurrent overlays
// over one quiescent base are safe (materialisation only performs
// atomic shared-flag stores on base objects).
func (s *StateDB) Overlay() *StateDB {
	return &StateDB{
		objects: make(map[ethtypes.Address]*stateObject),
		base:    s,
		dirties: make(map[ethtypes.Address]*dirtyEntry),
	}
}

// Diff is the write set of one execution materialised as final values,
// ready to be replayed onto the canonical state. Zero storage values
// mean slot deletion; Deleted lists accounts removed by self-destruct
// or the empty-account sweep.
type Diff struct {
	Balances map[ethtypes.Address]uint256.Int
	Nonces   map[ethtypes.Address]uint64
	Codes    map[ethtypes.Address]codePatch
	Storage  map[ethtypes.Address]map[ethtypes.Hash]uint256.Int
	Deleted  map[ethtypes.Address]struct{}
}

type codePatch struct {
	code []byte
	hash ethtypes.Hash
}

// ExtractDiff materialises the final value of every written location
// from s (the post-execution overlay). Write keys whose account no
// longer exists collapse into a deletion; stale keys from reverted
// writes simply re-record the base value, which is harmless.
func (s *StateDB) ExtractDiff(writes map[AccessKey]struct{}) *Diff {
	d := &Diff{
		Balances: make(map[ethtypes.Address]uint256.Int),
		Nonces:   make(map[ethtypes.Address]uint64),
		Codes:    make(map[ethtypes.Address]codePatch),
		Storage:  make(map[ethtypes.Address]map[ethtypes.Hash]uint256.Int),
		Deleted:  make(map[ethtypes.Address]struct{}),
	}
	for k := range writes {
		o := s.objects[k.Addr]
		if o == nil {
			// Written, then gone: deleted by self-destruct or swept as
			// empty (or the key is stale on a never-created account —
			// deleting an absent account is a no-op downstream).
			d.Deleted[k.Addr] = struct{}{}
			continue
		}
		switch k.Kind {
		case AccessBalance:
			d.Balances[k.Addr] = o.balance
		case AccessNonce:
			d.Nonces[k.Addr] = o.nonce
		case AccessCode:
			d.Codes[k.Addr] = codePatch{code: o.code, hash: o.codeHash}
		case AccessStorage:
			m := d.Storage[k.Addr]
			if m == nil {
				m = make(map[ethtypes.Hash]uint256.Int)
				d.Storage[k.Addr] = m
			}
			m[k.Slot] = o.storage[k.Slot]
		case AccessExist:
			// Creation carries no value of its own; the field writes
			// that gave the account substance repopulate it.
		}
	}
	return d
}

// ApplyDiff replays a committed transaction's write set onto s with
// full dirty tracking, so the incremental root pipeline picks the
// changes up. Value writes are applied first and deletions last (a
// self-destructed account has both balance writes and a deletion).
// ApplyDiff does not journal: diffs are commits, never reverted.
func (s *StateDB) ApplyDiff(d *Diff) {
	s.mustMutable("ApplyDiff")
	grab := func(addr ethtypes.Address) *stateObject {
		// getObject first: on a disk-backed state the account may be
		// cold — a fresh empty object would shadow its committed
		// nonce, code hash and storage root.
		o := s.getObject(addr)
		if o == nil {
			o = newStateObject()
			s.objects[addr] = o
			delete(s.deleted, addr) // diffs are commits: recreation is final
		}
		return o
	}
	for addr, slots := range d.Storage {
		if _, gone := d.Deleted[addr]; gone {
			continue
		}
		o := grab(addr)
		o.ensureOwned()
		for slot, v := range slots {
			if v.IsZero() && !o.partial {
				delete(o.storage, slot)
			} else {
				// Partial objects keep resident zero tombstones.
				o.storage[slot] = v
			}
			s.markSlot(addr, slot)
		}
	}
	for addr, b := range d.Balances {
		if _, gone := d.Deleted[addr]; gone {
			continue
		}
		o := grab(addr)
		o.balance = b
		s.markAccount(addr)
	}
	for addr, n := range d.Nonces {
		if _, gone := d.Deleted[addr]; gone {
			continue
		}
		o := grab(addr)
		o.nonce = n
		s.markAccount(addr)
	}
	for addr, c := range d.Codes {
		if _, gone := d.Deleted[addr]; gone {
			continue
		}
		o := grab(addr)
		o.code, o.codeHash = c.code, c.hash
		s.markAccount(addr)
	}
	diskBacked := s.diskStore() != nil
	for addr := range d.Deleted {
		delete(s.objects, addr)
		s.markReset(addr)
		if diskBacked {
			s.markDeleted(addr)
		}
	}
}

// ResetDirt hands the current dirty set off (the caller took a Copy
// that cloned it) and starts a fresh one. Until AdoptTries installs
// tries synced through that dirt, s.Root() must not be called — the
// pipelined seal path guarantees this by always rooting on the
// handed-off copy.
func (s *StateDB) ResetDirt() {
	s.dirties = make(map[ethtypes.Address]*dirtyEntry)
	s.rootValid = false
}

// AdoptTries installs src's freshly synced tries as s's incremental
// base. src must be a rooted Copy of an earlier revision of s whose
// dirt was handed off via ResetDirt; dirt accumulated on s since then
// stays pending against the adopted tries.
func (s *StateDB) AdoptTries(src *StateDB) {
	s.accountTrie = src.accountTrie.Snapshot()
	s.storageTries = make(map[ethtypes.Address]*trie.Secure, len(src.storageTries))
	for addr, tr := range src.storageTries {
		s.storageTries[addr] = tr.Snapshot()
	}
	s.rootCache = make(map[ethtypes.Address]ethtypes.Hash, len(src.rootCache))
	for addr, h := range src.rootCache {
		s.rootCache[addr] = h
	}
	s.worldRoot = src.worldRoot
	s.rootValid = len(s.dirties) == 0
}
