package state

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/statestore"
	"legalchain/internal/uint256"
)

// The bounded-memory soak: grow the world to SOAK_ACCOUNTS accounts
// through per-block commit/evict cycles against the disk store and
// assert the process RSS stays under SOAK_RSS_MB. Skipped unless
// SOAK=1 — it is a capacity test, not a correctness test, and runs for
// minutes at the 1M-account setting.
//
//	SOAK=1 SOAK_ACCOUNTS=100000 SOAK_RSS_MB=512 go test -run TestSoakDiskStateRSS -timeout 60m ./internal/state/
//
// SOAK_CSV=path additionally writes one sample line per report
// interval (block, accounts, rss_kb, heap_kb, resident, disk_mb) for
// the EXPERIMENTS.md plots and the CI artifact.
//
// SOAK_BASELINE=1 runs the identical workload on the all-in-RAM
// StateDB instead (no store, no eviction, no ceiling assert) — the
// linear-growth curve the disk store exists to beat.

func soakEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			panic(fmt.Sprintf("%s=%q: want a positive integer", name, v))
		}
		return n
	}
	return def
}

// rssKB reads the process resident set size from /proc (Linux). On
// other platforms it returns 0 and the ceiling assert is skipped —
// the heap numbers still land in the CSV.
func rssKB() int {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) >= 2 {
			kb, _ := strconv.Atoi(f[1])
			return kb
		}
	}
	return 0
}

func soakAddr(i uint64) ethtypes.Address {
	var a ethtypes.Address
	binary.BigEndian.PutUint64(a[12:], i)
	a[0] = 0x50 // keep clear of the test fixtures' address space
	return a
}

func TestSoakDiskStateRSS(t *testing.T) {
	if os.Getenv("SOAK") == "" {
		t.Skip("set SOAK=1 to run the bounded-memory soak")
	}
	var (
		nAccounts = soakEnvInt("SOAK_ACCOUNTS", 100_000)
		rssCeilMB = soakEnvInt("SOAK_RSS_MB", 512)
		perBlock  = soakEnvInt("SOAK_PER_BLOCK", 1000)
		keep      = soakEnvInt("SOAK_KEEP", 4096)
		cacheMB   = soakEnvInt("SOAK_CACHE_MB", 32)
		csvPath   = os.Getenv("SOAK_CSV")
	)

	baseline := os.Getenv("SOAK_BASELINE") != ""
	// Run the way a memory-bounded node deploys: give the runtime a
	// soft memory limit under the RSS ceiling so GC churn high-water
	// (transient trie nodes, batch encodes) can't balloon the process
	// past it. The assert below is still on the OS-reported RSS. The
	// baseline mode measures unbounded growth, so no limit there.
	if !baseline {
		old := debug.SetMemoryLimit(int64(rssCeilMB) << 20 * 3 / 4)
		defer debug.SetMemoryLimit(old)
	}

	var csv *bufio.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		csv = bufio.NewWriter(f)
		defer csv.Flush()
		fmt.Fprintf(csv, "block,accounts,rss_kb,heap_kb,resident_accounts,disk_mb\n")
	}

	var store *statestore.Store
	var s *StateDB
	if baseline {
		s = New()
	} else {
		var err error
		store, err = statestore.Open(t.TempDir(), statestore.Options{
			CacheBytes: int64(cacheMB) << 20,
			NoSync:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		s = NewWithDisk(store, ethtypes.Hash{})
	}
	diskMB := func() int64 {
		if store == nil {
			return 0
		}
		return store.DiskBytes() >> 20
	}

	report := max(nAccounts/perBlock/50, 1) // ~50 samples over the run
	peakKB, gen := 0, uint64(0)
	sample := func(block int, created uint64) {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		kb := rssKB()
		if kb > peakKB {
			peakKB = kb
		}
		if csv != nil {
			fmt.Fprintf(csv, "%d,%d,%d,%d,%d,%d\n", block, created, kb,
				ms.HeapAlloc>>10, s.ResidentAccounts(), diskMB())
		}
		t.Logf("block %d: %d accounts, rss %d MB, heap %d MB, %d resident, disk %d MB",
			block, created, kb>>10, ms.HeapAlloc>>20, s.ResidentAccounts(), diskMB())
	}

	created, block := uint64(0), 0
	for created < uint64(nAccounts) {
		// A block's worth of fresh accounts, plus rewrites of a small
		// hot set so eviction always has both clean and dirty residents.
		for i := 0; i < perBlock && created < uint64(nAccounts); i++ {
			addr := soakAddr(created)
			s.AddBalance(addr, uint256.NewUint64(created+1))
			s.SetNonce(addr, 1)
			if created%64 == 0 { // sparse contract storage
				s.SetState(addr, ethtypes.Hash{31: 1}, uint256.NewUint64(created))
			}
			created++
		}
		for h := uint64(0); h < 8 && h < created; h++ {
			s.AddBalance(soakAddr(h), uint256.NewUint64(1))
		}
		s.Finalise()
		root := s.Root()
		if !baseline {
			if err := store.Commit(s.TakePending(), statestore.Anchor{Gen: gen, Number: gen, Root: root}); err != nil {
				t.Fatal(err)
			}
			gen++
			s.EvictCold(keep)
			if _, err := store.MaybeCompact(); err != nil {
				t.Fatal(err)
			}
		}
		if block%report == 0 {
			sample(block, created)
		}
		block++
	}
	sample(block, created)

	if baseline {
		t.Logf("baseline (all-in-RAM): peak RSS %d MB over %d accounts — no ceiling asserted", peakKB>>10, created)
		return
	}
	if got := s.ResidentAccounts(); got > keep {
		t.Fatalf("resident accounts %d exceed the eviction ceiling %d", got, keep)
	}
	if n := store.AccountCount(); n != int(created) {
		t.Fatalf("store holds %d accounts, want %d", n, created)
	}
	if peakKB == 0 {
		t.Log("no /proc RSS on this platform; ceiling assert skipped")
		return
	}
	t.Logf("peak RSS %d MB over %d accounts / %d blocks (ceiling %d MB)",
		peakKB>>10, created, block, rssCeilMB)
	if peakKB > rssCeilMB<<10 {
		t.Fatalf("peak RSS %d MB exceeds the %d MB ceiling", peakKB>>10, rssCeilMB)
	}
}
