// Package ethtypes defines the fundamental Ethereum data types shared by
// every layer of the stack: addresses, hashes, transactions, receipts,
// logs and blocks, together with their canonical RLP encodings and
// signing rules (EIP-155 replay protection).
package ethtypes

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"math/big"
	"sync"

	"legalchain/internal/hexutil"
	"legalchain/internal/keccak"
	"legalchain/internal/rlp"
	"legalchain/internal/secp256k1"
	"legalchain/internal/uint256"
)

// HashLength and AddressLength are the byte sizes of the core identifiers.
const (
	HashLength    = 32
	AddressLength = 20
)

// Hash is a 32-byte Keccak-256 digest.
type Hash [HashLength]byte

// BytesToHash left-pads b into a Hash.
func BytesToHash(b []byte) Hash {
	var h Hash
	copy(h[:], hexutil.LeftPad(b, HashLength))
	return h
}

// HexToHash parses a 0x-prefixed hash, left-padding short input.
func HexToHash(s string) Hash { return BytesToHash(hexutil.MustDecode(s)) }

// Hex returns the 0x-prefixed hex form.
func (h Hash) Hex() string { return hexutil.Encode(h[:]) }

// String implements fmt.Stringer.
func (h Hash) String() string { return h.Hex() }

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// MarshalJSON/UnmarshalJSON use the 0x-hex form.
func (h Hash) MarshalJSON() ([]byte, error) { return json.Marshal(h.Hex()) }

func (h *Hash) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	raw, err := hexutil.Decode(s)
	if err != nil {
		return err
	}
	if len(raw) != HashLength {
		return fmt.Errorf("ethtypes: hash must be %d bytes, got %d", HashLength, len(raw))
	}
	copy(h[:], raw)
	return nil
}

// Address is a 20-byte account identifier.
type Address [AddressLength]byte

// BytesToAddress left-pads b into an Address.
func BytesToAddress(b []byte) Address {
	var a Address
	copy(a[:], hexutil.LeftPad(b, AddressLength))
	return a
}

// HexToAddress parses a 0x-prefixed address.
func HexToAddress(s string) Address { return BytesToAddress(hexutil.MustDecode(s)) }

// Hex returns the 0x-prefixed lowercase hex form.
func (a Address) Hex() string { return hexutil.Encode(a[:]) }

// String implements fmt.Stringer.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool { return a == Address{} }

// MarshalJSON/UnmarshalJSON use the 0x-hex form.
func (a Address) MarshalJSON() ([]byte, error) { return json.Marshal(a.Hex()) }

func (a *Address) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	raw, err := hexutil.Decode(s)
	if err != nil {
		return err
	}
	if len(raw) != AddressLength {
		return fmt.Errorf("ethtypes: address must be %d bytes, got %d", AddressLength, len(raw))
	}
	copy(a[:], raw)
	return nil
}

// keccakPool recycles Keccak-256 sponge states: hashing dominates the
// trie/state commit pipeline, and a fresh sponge per call costs an
// allocation plus buffer growth on every node hashed.
var keccakPool = sync.Pool{New: func() any { return keccak.New256() }}

// Keccak256 hashes data with Keccak-256.
func Keccak256(data ...[]byte) Hash {
	if len(data) == 1 {
		// One-shot fast path: absorbs straight from the input, no
		// sponge buffering at all.
		return Hash(keccak.Sum256(data[0]))
	}
	h := keccakPool.Get().(hash.Hash)
	h.Reset()
	for _, d := range data {
		h.Write(d)
	}
	var out Hash
	h.Sum(out[:0])
	keccakPool.Put(h)
	return out
}

// PubkeyToAddress derives the Ethereum address of an secp256k1 public
// key: the low 20 bytes of keccak256(X||Y).
func PubkeyToAddress(p secp256k1.Point) Address {
	raw := secp256k1.SerializePublic(p)
	h := Keccak256(raw[1:]) // drop the 0x04 prefix
	return BytesToAddress(h[12:])
}

// CreateAddress computes the address of a contract deployed by sender
// with the given account nonce: keccak256(rlp([sender, nonce]))[12:].
func CreateAddress(sender Address, nonce uint64) Address {
	enc := rlp.Encode(rlp.List(rlp.Bytes(sender[:]), rlp.Uint(nonce)))
	h := Keccak256(enc)
	return BytesToAddress(h[12:])
}

// Transaction is a legacy (type-0) Ethereum transaction with EIP-155
// replay protection.
type Transaction struct {
	Nonce    uint64
	GasPrice uint256.Int
	Gas      uint64
	To       *Address // nil means contract creation
	Value    uint256.Int
	Data     []byte

	// Signature values. V encodes the recovery id and chain id
	// (v = recid + 35 + 2*chainID).
	V, R, S *big.Int
}

// SigHash returns the EIP-155 signing digest for the given chain id.
func (tx *Transaction) SigHash(chainID uint64) Hash {
	return Keccak256(rlp.Encode(rlp.List(
		rlp.Uint(tx.Nonce),
		rlp.BigInt(tx.GasPrice.ToBig()),
		rlp.Uint(tx.Gas),
		toItem(tx.To),
		rlp.BigInt(tx.Value.ToBig()),
		rlp.Bytes(tx.Data),
		rlp.Uint(chainID),
		rlp.Uint(0),
		rlp.Uint(0),
	)))
}

// Hash returns the transaction hash (over the signed encoding).
func (tx *Transaction) Hash() Hash {
	return Keccak256(tx.Encode())
}

// Encode returns the canonical RLP encoding of the signed transaction.
func (tx *Transaction) Encode() []byte {
	return rlp.Encode(rlp.List(
		rlp.Uint(tx.Nonce),
		rlp.BigInt(tx.GasPrice.ToBig()),
		rlp.Uint(tx.Gas),
		toItem(tx.To),
		rlp.BigInt(tx.Value.ToBig()),
		rlp.Bytes(tx.Data),
		rlp.BigInt(tx.V),
		rlp.BigInt(tx.R),
		rlp.BigInt(tx.S),
	))
}

func toItem(to *Address) *rlp.Item {
	if to == nil {
		return rlp.Bytes(nil)
	}
	return rlp.Bytes(to[:])
}

// DecodeTransaction parses a signed RLP transaction.
func DecodeTransaction(data []byte) (*Transaction, error) {
	it, err := rlp.Decode(data)
	if err != nil {
		return nil, err
	}
	if it.Kind() != rlp.KindList || it.Len() != 9 {
		return nil, errors.New("ethtypes: transaction must be a 9-item list")
	}
	tx := &Transaction{}
	if tx.Nonce, err = it.At(0).AsUint64(); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}
	gp, err := it.At(1).AsBigInt()
	if err != nil {
		return nil, fmt.Errorf("gasPrice: %w", err)
	}
	tx.GasPrice = uint256.FromBig(gp)
	if tx.Gas, err = it.At(2).AsUint64(); err != nil {
		return nil, fmt.Errorf("gas: %w", err)
	}
	toRaw := it.At(3).Str()
	switch len(toRaw) {
	case 0:
	case AddressLength:
		a := BytesToAddress(toRaw)
		tx.To = &a
	default:
		return nil, errors.New("ethtypes: bad 'to' length")
	}
	val, err := it.At(4).AsBigInt()
	if err != nil {
		return nil, fmt.Errorf("value: %w", err)
	}
	tx.Value = uint256.FromBig(val)
	tx.Data = append([]byte(nil), it.At(5).Str()...)
	if tx.V, err = it.At(6).AsBigInt(); err != nil {
		return nil, fmt.Errorf("v: %w", err)
	}
	if tx.R, err = it.At(7).AsBigInt(); err != nil {
		return nil, fmt.Errorf("r: %w", err)
	}
	if tx.S, err = it.At(8).AsBigInt(); err != nil {
		return nil, fmt.Errorf("s: %w", err)
	}
	return tx, nil
}

// Sign attaches an EIP-155 signature from key to the transaction.
func (tx *Transaction) Sign(key *secp256k1.PrivateKey, chainID uint64) error {
	digest := tx.SigHash(chainID)
	sig, err := key.Sign(digest[:])
	if err != nil {
		return err
	}
	tx.R = sig.R
	tx.S = sig.S
	tx.V = new(big.Int).SetUint64(uint64(sig.V) + 35 + 2*chainID)
	return nil
}

// Sender recovers the transaction's sender address, verifying the
// EIP-155 chain id in the process.
func (tx *Transaction) Sender(chainID uint64) (Address, error) {
	if tx.V == nil || tx.R == nil || tx.S == nil {
		return Address{}, errors.New("ethtypes: transaction is unsigned")
	}
	v := tx.V.Uint64()
	base := 35 + 2*chainID
	if v != base && v != base+1 {
		return Address{}, fmt.Errorf("ethtypes: wrong chain id in v=%d (want chain %d)", v, chainID)
	}
	sig := &secp256k1.Signature{R: tx.R, S: tx.S, V: byte(v - base)}
	digest := tx.SigHash(chainID)
	pub, err := secp256k1.Recover(digest[:], sig)
	if err != nil {
		return Address{}, err
	}
	return PubkeyToAddress(pub), nil
}

// IsCreate reports whether the transaction deploys a contract.
func (tx *Transaction) IsCreate() bool { return tx.To == nil }

// Log is an EVM event record.
type Log struct {
	Address Address `json:"address"`
	Topics  []Hash  `json:"topics"`
	Data    []byte  `json:"data"`

	// Execution context, filled by the chain when the log is mined.
	BlockNumber uint64 `json:"blockNumber"`
	BlockHash   Hash   `json:"blockHash"`
	TxHash      Hash   `json:"transactionHash"`
	TxIndex     uint   `json:"transactionIndex"`
	Index       uint   `json:"logIndex"`
}

// Receipt status codes.
const (
	ReceiptStatusFailed     = uint64(0)
	ReceiptStatusSuccessful = uint64(1)
)

// Receipt records the outcome of a mined transaction.
type Receipt struct {
	TxHash            Hash
	TxIndex           uint
	BlockNumber       uint64
	BlockHash         Hash
	From              Address
	To                *Address
	ContractAddress   *Address // set for creations
	GasUsed           uint64
	CumulativeGasUsed uint64
	Status            uint64
	Logs              []*Log
	RevertReason      string // devnet nicety: decoded Error(string), if any
}

// Succeeded reports whether the transaction executed without reverting.
func (r *Receipt) Succeeded() bool { return r.Status == ReceiptStatusSuccessful }

// EncodeRLP returns the consensus encoding of the receipt:
// [status, cumulativeGasUsed, [[address, [topics...], data]...]].
// (No bloom filter — the devnet serves log queries from its index.)
func (r *Receipt) EncodeRLP() []byte {
	logItems := make([]*rlp.Item, len(r.Logs))
	for i, l := range r.Logs {
		topics := make([]*rlp.Item, len(l.Topics))
		for j := range l.Topics {
			topics[j] = rlp.Bytes(l.Topics[j][:])
		}
		logItems[i] = rlp.List(
			rlp.Bytes(l.Address[:]),
			rlp.List(topics...),
			rlp.Bytes(l.Data),
		)
	}
	return rlp.Encode(rlp.List(
		rlp.Uint(r.Status),
		rlp.Uint(r.CumulativeGasUsed),
		rlp.List(logItems...),
	))
}

// Header is a block header. Consensus fields not needed by an
// instant-seal devnet (difficulty, mixhash, nonce) are omitted.
type Header struct {
	ParentHash  Hash
	Number      uint64
	Time        uint64
	GasLimit    uint64
	GasUsed     uint64
	Coinbase    Address
	StateRoot   Hash
	TxRoot      Hash
	ReceiptRoot Hash
}

// Hash returns the keccak of the RLP-encoded header.
func (h *Header) Hash() Hash {
	return Keccak256(rlp.Encode(rlp.List(
		rlp.Bytes(h.ParentHash[:]),
		rlp.Uint(h.Number),
		rlp.Uint(h.Time),
		rlp.Uint(h.GasLimit),
		rlp.Uint(h.GasUsed),
		rlp.Bytes(h.Coinbase[:]),
		rlp.Bytes(h.StateRoot[:]),
		rlp.Bytes(h.TxRoot[:]),
		rlp.Bytes(h.ReceiptRoot[:]),
	)))
}

// Block is a sealed block with its transactions.
type Block struct {
	Header       *Header
	Transactions []*Transaction
}

// Hash returns the block hash (the header hash).
func (b *Block) Hash() Hash { return b.Header.Hash() }

// Number returns the block height.
func (b *Block) Number() uint64 { return b.Header.Number }

// TxRootOf computes the transaction root as the keccak over the ordered
// concatenation of transaction hashes. (A devnet does not need the full
// derivation through a trie; the commitment is still order-sensitive and
// collision-resistant.)
func TxRootOf(txs []*Transaction) Hash {
	var buf bytes.Buffer
	for _, tx := range txs {
		h := tx.Hash()
		buf.Write(h[:])
	}
	return Keccak256(buf.Bytes())
}

// Wei conversion helpers. One ether is 10^18 wei.
var (
	weiPerEther = new(big.Int).Exp(big.NewInt(10), big.NewInt(18), nil)
	weiPerGwei  = big.NewInt(1_000_000_000)
)

// Ether returns n ether in wei.
func Ether(n int64) uint256.Int {
	return uint256.FromBig(new(big.Int).Mul(big.NewInt(n), weiPerEther))
}

// Gwei returns n gwei in wei.
func Gwei(n int64) uint256.Int {
	return uint256.FromBig(new(big.Int).Mul(big.NewInt(n), weiPerGwei))
}

// FormatEther renders a wei amount as a decimal ether string with up to
// 6 fractional digits, for dashboards and logs.
func FormatEther(wei uint256.Int) string {
	b := wei.ToBig()
	whole := new(big.Int).Div(b, weiPerEther)
	rem := new(big.Int).Mod(b, weiPerEther)
	// Keep six decimals.
	micro := new(big.Int).Div(rem, big.NewInt(1_000_000_000_000))
	if micro.Sign() == 0 {
		return whole.String()
	}
	s := fmt.Sprintf("%s.%06d", whole, micro)
	// Trim trailing zeros.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	return s
}
