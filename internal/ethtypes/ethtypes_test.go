package ethtypes

import (
	"encoding/json"
	"math/big"
	"testing"

	"legalchain/internal/secp256k1"
	"legalchain/internal/uint256"
)

func TestAddressHexRoundTrip(t *testing.T) {
	a := HexToAddress("0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed")
	if a.Hex() != "0x5aaeb6053f3e94c9b9a09f33669435e7ef1beaed" {
		t.Fatalf("Hex() = %s", a.Hex())
	}
	raw, _ := json.Marshal(a)
	var back Address
	if err := json.Unmarshal(raw, &back); err != nil || back != a {
		t.Fatal("JSON round trip failed")
	}
	if err := json.Unmarshal([]byte(`"0x1234"`), &back); err == nil {
		t.Fatal("short address accepted")
	}
}

func TestHashJSON(t *testing.T) {
	h := Keccak256([]byte("x"))
	raw, _ := json.Marshal(h)
	var back Hash
	if err := json.Unmarshal(raw, &back); err != nil || back != h {
		t.Fatal("hash JSON round trip failed")
	}
}

// The canonical address of private key 1 is a published constant; this
// pins PubkeyToAddress end to end (curve + keccak + truncation).
func TestPubkeyToAddressKnown(t *testing.T) {
	key := secp256k1.PrivateKeyFromScalar(big.NewInt(1))
	addr := PubkeyToAddress(key.Public)
	want := "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf"
	if addr.Hex() != want {
		t.Fatalf("address of key 1 = %s, want %s", addr.Hex(), want)
	}
	// Key 2 as a second pin.
	key2 := secp256k1.PrivateKeyFromScalar(big.NewInt(2))
	want2 := "0x2b5ad5c4795c026514f8317c7a215e218dccd6cf"
	if got := PubkeyToAddress(key2.Public).Hex(); got != want2 {
		t.Fatalf("address of key 2 = %s, want %s", got, want2)
	}
}

// CreateAddress pins against the published example: sender 0x00..00 with
// nonce 0 and a couple of locally-derived consistency checks.
func TestCreateAddressDeterministic(t *testing.T) {
	a := HexToAddress("0x970e8128ab834e8eac17ab8e3812f010678cf791")
	c0 := CreateAddress(a, 0)
	c1 := CreateAddress(a, 1)
	if c0 == c1 {
		t.Fatal("different nonces must give different contract addresses")
	}
	if CreateAddress(a, 0) != c0 {
		t.Fatal("CreateAddress must be deterministic")
	}
}

func TestTransactionSignSenderRoundTrip(t *testing.T) {
	key := secp256k1.PrivateKeyFromScalar(big.NewInt(0xbeef))
	from := PubkeyToAddress(key.Public)
	to := HexToAddress("0x00000000000000000000000000000000000000aa")
	tx := &Transaction{
		Nonce:    3,
		GasPrice: Gwei(1),
		Gas:      21000,
		To:       &to,
		Value:    Ether(2),
		Data:     []byte{0xca, 0xfe},
	}
	const chainID = 1337
	if err := tx.Sign(key, chainID); err != nil {
		t.Fatal(err)
	}
	got, err := tx.Sender(chainID)
	if err != nil {
		t.Fatal(err)
	}
	if got != from {
		t.Fatalf("sender = %s, want %s", got, from)
	}
	// Wrong chain id must be rejected (replay protection).
	if _, err := tx.Sender(1); err == nil {
		t.Fatal("cross-chain replay accepted")
	}
}

func TestTransactionEncodeDecode(t *testing.T) {
	key := secp256k1.PrivateKeyFromScalar(big.NewInt(77))
	to := HexToAddress("0x1111111111111111111111111111111111111111")
	tx := &Transaction{Nonce: 9, GasPrice: Gwei(2), Gas: 100000, To: &to, Value: uint256.NewUint64(5), Data: []byte("hello")}
	if err := tx.Sign(key, 1337); err != nil {
		t.Fatal(err)
	}
	enc := tx.Encode()
	back, err := DecodeTransaction(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != tx.Hash() {
		t.Fatal("hash changed across encode/decode")
	}
	if back.Nonce != 9 || *back.To != to || string(back.Data) != "hello" {
		t.Fatal("fields corrupted")
	}
	s1, _ := tx.Sender(1337)
	s2, err := back.Sender(1337)
	if err != nil || s1 != s2 {
		t.Fatal("sender not preserved")
	}
}

func TestContractCreationTx(t *testing.T) {
	key := secp256k1.PrivateKeyFromScalar(big.NewInt(55))
	tx := &Transaction{Nonce: 0, GasPrice: Gwei(1), Gas: 1_000_000, To: nil, Data: []byte{0x60, 0x00}}
	if !tx.IsCreate() {
		t.Fatal("nil To must be a creation")
	}
	if err := tx.Sign(key, 1337); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTransaction(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.To != nil {
		t.Fatal("creation lost across round trip")
	}
}

func TestUnsignedSenderFails(t *testing.T) {
	tx := &Transaction{Nonce: 0, Gas: 21000}
	if _, err := tx.Sender(1337); err == nil {
		t.Fatal("unsigned transaction produced a sender")
	}
}

func TestSigHashDependsOnEveryField(t *testing.T) {
	to := HexToAddress("0x2222222222222222222222222222222222222222")
	base := Transaction{Nonce: 1, GasPrice: Gwei(1), Gas: 21000, To: &to, Value: Ether(1), Data: []byte{1}}
	h := base.SigHash(1337)
	mutations := []func(*Transaction){
		func(tx *Transaction) { tx.Nonce++ },
		func(tx *Transaction) { tx.GasPrice = Gwei(3) },
		func(tx *Transaction) { tx.Gas++ },
		func(tx *Transaction) { tx.To = nil },
		func(tx *Transaction) { tx.Value = Ether(2) },
		func(tx *Transaction) { tx.Data = []byte{2} },
	}
	for i, mut := range mutations {
		cp := base
		mut(&cp)
		if cp.SigHash(1337) == h {
			t.Errorf("mutation %d did not change sig hash", i)
		}
	}
	if base.SigHash(1) == h {
		t.Error("chain id not part of sig hash")
	}
}

func TestHeaderHashStable(t *testing.T) {
	h := &Header{Number: 5, Time: 100, GasLimit: 8_000_000, GasUsed: 21000}
	h1 := h.Hash()
	h.GasUsed = 21001
	if h.Hash() == h1 {
		t.Fatal("header hash ignores GasUsed")
	}
}

func TestTxRootOrderSensitive(t *testing.T) {
	k := secp256k1.PrivateKeyFromScalar(big.NewInt(5))
	t1 := &Transaction{Nonce: 0, Gas: 21000}
	t2 := &Transaction{Nonce: 1, Gas: 21000}
	t1.Sign(k, 1)
	t2.Sign(k, 1)
	if TxRootOf([]*Transaction{t1, t2}) == TxRootOf([]*Transaction{t2, t1}) {
		t.Fatal("tx root is order-insensitive")
	}
}

func TestEtherFormatting(t *testing.T) {
	if FormatEther(Ether(5)) != "5" {
		t.Fatalf("FormatEther(5 eth) = %s", FormatEther(Ether(5)))
	}
	half := uint256.FromBig(new(big.Int).Div(Ether(1).ToBig(), big.NewInt(2)))
	if FormatEther(half) != "0.5" {
		t.Fatalf("FormatEther(0.5 eth) = %s", FormatEther(half))
	}
	if FormatEther(uint256.Zero) != "0" {
		t.Fatal("FormatEther(0)")
	}
	if Gwei(1).ToBig().Cmp(big.NewInt(1_000_000_000)) != 0 {
		t.Fatal("Gwei")
	}
}
