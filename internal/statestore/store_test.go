package statestore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/trie"
)

func addr(b byte) ethtypes.Address {
	var a ethtypes.Address
	a[0] = b
	return a
}

func h32(b byte) ethtypes.Hash {
	var h ethtypes.Hash
	h[0] = b
	return h
}

func testAnchor(gen uint64) Anchor {
	return Anchor{Gen: gen, Number: gen, BlockHash: h32(byte(gen)), Root: h32(byte(gen + 100))}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	a1 := addr(1)
	rec := &AccountRecord{Nonce: 7, Balance: []byte{0x01, 0x02}, StorageRoot: trie.EmptyRoot, CodeHash: h32(9)}
	code := []byte("contract code")
	nodeEnc := []byte("not really rlp but indexed by hash")
	nodeHash := ethtypes.Keccak256(nodeEnc)

	b := &Batch{}
	b.PutAccount(a1, rec)
	b.PutSlot(a1, h32(2), []byte{0xaa})
	b.PutCode(h32(9), code)
	b.PutNode(nodeHash, nodeEnc)
	if err := s.Commit(b, testAnchor(1)); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	check := func(s *Store, stage string) {
		got, err := s.Account(a1)
		if err != nil {
			t.Fatalf("%s: Account: %v", stage, err)
		}
		if got.Nonce != 7 || string(got.Balance) != "\x01\x02" || got.CodeHash != h32(9) {
			t.Fatalf("%s: account mismatch: %+v", stage, got)
		}
		val, err := s.Slot(a1, h32(2))
		if err != nil || string(val) != "\xaa" {
			t.Fatalf("%s: Slot: %v %x", stage, err, val)
		}
		c, err := s.Code(h32(9))
		if err != nil || string(c) != string(code) {
			t.Fatalf("%s: Code: %v", stage, err)
		}
		n, err := s.ResolveNode(nodeHash)
		if err != nil || string(n) != string(nodeEnc) {
			t.Fatalf("%s: ResolveNode: %v", stage, err)
		}
		if _, err := s.Account(addr(99)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: want ErrNotFound, got %v", stage, err)
		}
		a, ok := s.Anchor()
		if !ok || a.Gen != 1 || a.Root != h32(101) {
			t.Fatalf("%s: anchor %+v ok=%v", stage, a, ok)
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	check(s2, "reopened")
}

func TestTombstonesAndClear(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()

	a1 := addr(1)
	b := &Batch{}
	b.PutAccount(a1, &AccountRecord{Nonce: 1, StorageRoot: trie.EmptyRoot, CodeHash: trie.EmptyRoot})
	b.PutSlot(a1, h32(2), []byte{0xaa})
	b.PutSlot(a1, h32(3), []byte{0xbb})
	if err := s.Commit(b, testAnchor(1)); err != nil {
		t.Fatal(err)
	}

	// Delete the account, wipe its storage.
	b2 := &Batch{}
	b2.PutAccount(a1, nil)
	b2.Clear(a1)
	if err := s.Commit(b2, testAnchor(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Account(a1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted account: %v", err)
	}
	for _, slot := range []ethtypes.Hash{h32(2), h32(3)} {
		if _, err := s.Slot(a1, slot); !errors.Is(err, ErrNotFound) {
			t.Fatalf("cleared slot %s: %v", slot, err)
		}
	}

	// Reopen: tombstones must survive restart.
	s.Close()
	s2 := mustOpen(t, dir)
	defer s2.Close()
	if _, err := s2.Account(a1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted account after reopen: %v", err)
	}
	if _, err := s2.Slot(a1, h32(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cleared slot after reopen: %v", err)
	}
}

// A torn tail (crash mid-commit) must roll back to the previous
// anchor, not serve half a batch.
func TestTornTailRollsBackToAnchor(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	b := &Batch{}
	b.PutAccount(addr(1), &AccountRecord{Nonce: 1, StorageRoot: trie.EmptyRoot, CodeHash: trie.EmptyRoot})
	if err := s.Commit(b, testAnchor(1)); err != nil {
		t.Fatal(err)
	}
	b2 := &Batch{}
	b2.PutAccount(addr(2), &AccountRecord{Nonce: 2, StorageRoot: trie.EmptyRoot, CodeHash: trie.EmptyRoot})
	if err := s.Commit(b2, testAnchor(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the tail: chop bytes off the segment so the gen-2 anchor is
	// damaged.
	seg := segPath(dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	a, ok := s2.Anchor()
	if !ok || a.Gen != 1 {
		t.Fatalf("anchor after torn tail: %+v ok=%v", a, ok)
	}
	if _, err := s2.Account(addr(1)); err != nil {
		t.Fatalf("gen-1 account lost: %v", err)
	}
	if _, err := s2.Account(addr(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn gen-2 account should be rolled back, got %v", err)
	}
}

// A store with no intact anchor at all resets to empty.
func TestNoAnchorResetsFresh(t *testing.T) {
	dir := t.TempDir()
	// Fabricate a segment with garbage.
	if err := os.WriteFile(filepath.Join(dir, "kv-0000000000.seg"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	defer s.Close()
	if _, ok := s.Anchor(); ok {
		t.Fatal("expected no anchor")
	}
	if s.AccountCount() != 0 {
		t.Fatal("expected empty store")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b := &Batch{}
		b.PutAccount(addr(byte(i)), &AccountRecord{Nonce: uint64(i), StorageRoot: trie.EmptyRoot, CodeHash: trie.EmptyRoot})
		if err := s.Commit(b, testAnchor(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments (%v)", len(segs), err)
	}
	s.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	for i := 0; i < 20; i++ {
		rec, err := s2.Account(addr(byte(i)))
		if err != nil || rec.Nonce != uint64(i) {
			t.Fatalf("account %d after rotation+reopen: %v", i, err)
		}
	}
}

func TestCacheStatsAndEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CacheBytes: 16 * 200}) // tiny budget
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	b := &Batch{}
	for i := 0; i < 64; i++ {
		b.PutAccount(addr(byte(i)), &AccountRecord{Nonce: uint64(i), StorageRoot: trie.EmptyRoot, CodeHash: trie.EmptyRoot})
	}
	if err := s.Commit(b, testAnchor(1)); err != nil {
		t.Fatal(err)
	}
	// Commit populated the cache and the tiny budget forced evictions;
	// read everything twice to generate misses then hits.
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			if _, err := s.Account(addr(byte(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, misses, evictions := s.CacheStats()
	if misses == 0 || evictions == 0 {
		t.Fatalf("expected misses and evictions with tiny cache: hits=%d misses=%d evictions=%d", hits, misses, evictions)
	}
}

func TestForEachAccountAndDiskBytes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	b := &Batch{}
	for i := 1; i <= 5; i++ {
		b.PutAccount(addr(byte(i)), &AccountRecord{Nonce: uint64(i), StorageRoot: trie.EmptyRoot, CodeHash: trie.EmptyRoot})
	}
	if err := s.Commit(b, testAnchor(1)); err != nil {
		t.Fatal(err)
	}
	var n int
	var total uint64
	if err := s.ForEachAccount(func(a ethtypes.Address, rec *AccountRecord) bool {
		n++
		total += rec.Nonce
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 || total != 15 {
		t.Fatalf("ForEachAccount visited %d, nonce sum %d", n, total)
	}
	if s.DiskBytes() <= 0 {
		t.Fatal("DiskBytes should be positive")
	}
}

// Compaction via a real trie: build a secure trie whose nodes are
// committed through the store, overwrite values across several
// generations, compact, and verify the final generation still reads
// back while the store shrank.
func TestCompactPreservesAnchoredState(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()

	tr := trie.NewSecure()
	var root ethtypes.Hash
	for gen := uint64(1); gen <= 5; gen++ {
		b := &Batch{}
		for i := 0; i < 32; i++ {
			a := addr(byte(i))
			rec := &AccountRecord{Nonce: gen * 100, Balance: []byte{byte(gen), byte(i)}, StorageRoot: trie.EmptyRoot, CodeHash: trie.EmptyRoot}
			enc := rec.Encode()
			tr.Put(a[:], enc)
			b.PutAccount(a, rec)
		}
		root = tr.HashCollect(func(h ethtypes.Hash, enc []byte) {
			b.PutNode(h, append([]byte(nil), enc...))
		})
		if err := s.Commit(b, Anchor{Gen: gen, Number: gen, BlockHash: h32(byte(gen)), Root: root}); err != nil {
			t.Fatal(err)
		}
	}

	before := s.DiskBytes()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.DiskBytes()
	if after >= before {
		t.Fatalf("compaction did not shrink the store: %d -> %d", before, after)
	}

	// The anchored trie must be fully readable from the compacted store.
	lazy := trie.NewSecureFromRoot(root, s)
	for i := 0; i < 32; i++ {
		a := addr(byte(i))
		enc, ok, err := lazy.TryGet(a[:])
		if err != nil || !ok {
			t.Fatalf("TryGet after compact: ok=%v err=%v", ok, err)
		}
		rec, err := DecodeAccountRecord(enc)
		if err != nil || rec.Nonce != 500 {
			t.Fatalf("account %d after compact: %+v err=%v", i, rec, err)
		}
	}
	// Flat records survive too.
	for i := 0; i < 32; i++ {
		rec, err := s.Account(addr(byte(i)))
		if err != nil || rec.Nonce != 500 {
			t.Fatalf("flat account %d after compact: %v", i, err)
		}
	}

	// And the compacted store must reopen cleanly.
	s.Close()
	s2 := mustOpen(t, dir)
	defer s2.Close()
	if rec, err := s2.Account(addr(3)); err != nil || rec.Nonce != 500 {
		t.Fatalf("after compact+reopen: %v", err)
	}
	lazy2 := trie.NewSecureFromRoot(root, s2)
	a := addr(3)
	if _, ok, err := lazy2.TryGet(a[:]); err != nil || !ok {
		t.Fatalf("lazy read after compact+reopen: ok=%v err=%v", ok, err)
	}
}
