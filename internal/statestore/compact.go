package statestore

import (
	"errors"
	"fmt"
	"os"

	"legalchain/internal/blockdb"
	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
	"legalchain/internal/trie"
)

// Compaction reclaims space from the append-only segments: superseded
// flat records and trie nodes no longer reachable from the anchored
// state root accumulate until the live set is re-appended as fresh
// segments and the old ones are deleted.
//
// Crash safety mirrors the commit protocol. The compacted dump ends
// with the anchor record; a crash before it leaves the new segments
// anchor-less (load deletes them, the old segments still carry the
// previous anchor), a crash after it but before the old segments are
// removed replays old-then-new, which converges to the same index.

const (
	// compactMinBytes is the floor below which MaybeCompact never
	// triggers — tiny stores aren't worth rewriting.
	compactMinBytes = 32 << 20
	// compactWasteFactor triggers compaction when the on-disk size
	// exceeds this multiple of the live set.
	compactWasteFactor = 2
)

// lockedResolver resolves trie nodes against the index with s.mu
// already held (compaction runs entirely under the store lock).
type lockedResolver struct{ s *Store }

func (r lockedResolver) ResolveNode(h ethtypes.Hash) ([]byte, error) {
	l, ok := r.s.nodes[h]
	if !ok {
		return nil, ErrNotFound
	}
	return r.s.recordValueLocked(l, 2)
}

// MaybeCompact runs Compact when the store has accumulated enough
// garbage to be worth rewriting. Returns whether it compacted.
func (s *Store) MaybeCompact() (bool, error) {
	s.mu.Lock()
	total, live := s.totalBytes, s.liveBytes
	anchored := s.hasAnchor
	s.mu.Unlock()
	if !anchored || total < compactMinBytes || total < compactWasteFactor*live {
		return false, nil
	}
	return true, s.Compact()
}

// Compact rewrites the store down to its live set: every indexed flat
// record, the codes and trie nodes reachable from the anchored root,
// and a closing anchor. Commits are blocked for the duration.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasAnchor {
		return nil
	}
	if s.w == nil {
		return errors.New("statestore: closed")
	}

	// Mark phase: walk the account trie from the anchored root; each
	// account leaf contributes its code and its storage trie.
	liveNodes := make(map[ethtypes.Hash]struct{})
	liveCodes := make(map[ethtypes.Hash]struct{})
	var storageRoots []ethtypes.Hash
	res := lockedResolver{s}
	err := trie.WalkNodeGraph(s.anchor.Root, res,
		func(h ethtypes.Hash, enc []byte) error {
			liveNodes[h] = struct{}{}
			return nil
		},
		func(value []byte) error {
			rec, err := DecodeAccountRecord(value)
			if err != nil {
				return fmt.Errorf("statestore: compact: bad account leaf: %w", err)
			}
			if _, ok := s.codes[rec.CodeHash]; ok {
				liveCodes[rec.CodeHash] = struct{}{}
			}
			storageRoots = append(storageRoots, rec.StorageRoot)
			return nil
		})
	if err != nil {
		return fmt.Errorf("statestore: compact mark: %w", err)
	}
	for _, root := range storageRoots {
		if err := trie.WalkNodeGraph(root, res, func(h ethtypes.Hash, enc []byte) error {
			liveNodes[h] = struct{}{}
			return nil
		}, nil); err != nil {
			return fmt.Errorf("statestore: compact mark storage: %w", err)
		}
	}

	// Sweep phase: dump the live set into fresh segments numbered past
	// the current tail.
	d := &dumper{s: s, next: s.segs[len(s.segs)-1] + 1}
	newAccounts := make(map[ethtypes.Address]loc, len(s.accounts))
	for addr, l := range s.accounts {
		enc, err := s.recordValueLocked(l, 2)
		if err != nil {
			d.abort()
			return err
		}
		nl, err := d.append(rlp.Encode(rlp.List(rlp.Uint(kindAccount), rlp.Bytes(addr[:]), rlp.Bytes(enc))))
		if err != nil {
			d.abort()
			return err
		}
		newAccounts[addr] = nl
	}
	newSlots := make(map[slotKey]loc, len(s.slots))
	for k, l := range s.slots {
		val, err := s.recordValueLocked(l, 3)
		if err != nil {
			d.abort()
			return err
		}
		nl, err := d.append(rlp.Encode(rlp.List(rlp.Uint(kindSlot), rlp.Bytes(k.addr[:]), rlp.Bytes(k.slot[:]), rlp.Bytes(val))))
		if err != nil {
			d.abort()
			return err
		}
		newSlots[k] = nl
	}
	newCodes := make(map[ethtypes.Hash]loc, len(liveCodes))
	for h := range liveCodes {
		code, err := s.recordValueLocked(s.codes[h], 2)
		if err != nil {
			d.abort()
			return err
		}
		nl, err := d.append(rlp.Encode(rlp.List(rlp.Uint(kindCode), rlp.Bytes(h[:]), rlp.Bytes(code))))
		if err != nil {
			d.abort()
			return err
		}
		newCodes[h] = nl
	}
	newNodes := make(map[ethtypes.Hash]loc, len(liveNodes))
	for h := range liveNodes {
		enc, err := s.recordValueLocked(s.nodes[h], 2)
		if err != nil {
			d.abort()
			return err
		}
		nl, err := d.append(rlp.Encode(rlp.List(rlp.Uint(kindNode), rlp.Bytes(h[:]), rlp.Bytes(enc))))
		if err != nil {
			d.abort()
			return err
		}
		newNodes[h] = nl
	}
	a := s.anchor
	if _, err := d.append(rlp.Encode(rlp.List(
		rlp.Uint(kindAnchor), rlp.Uint(a.Gen), rlp.Uint(a.Number),
		rlp.Bytes(a.BlockHash[:]), rlp.Bytes(a.Root[:]),
	))); err != nil {
		d.abort()
		return err
	}
	if err := d.finish(s.opts.NoSync); err != nil {
		d.abort()
		return err
	}

	// Swap: retire the old segments, adopt the new index.
	oldSegs := s.segs
	for _, r := range s.readers {
		r.Close()
	}
	s.readers = make(map[uint32]*os.File)
	s.w.Close()
	for _, seg := range oldSegs {
		os.Remove(segPath(s.dir, seg))
	}
	s.segs = d.segs
	s.w = d.w
	s.wsize = d.wsize
	for _, f := range d.files[:len(d.files)-1] {
		// Earlier dump segments become read handles.
		s.readers[d.segOf[f]] = f
	}
	s.accounts = newAccounts
	s.slots = newSlots
	s.codes = newCodes
	s.nodes = newNodes
	s.totalBytes = d.total
	s.liveBytes = d.total
	mDiskBytes.Set(s.totalBytes)
	return nil
}

// dumper appends frames across rotating fresh segments.
type dumper struct {
	s     *Store
	next  uint32
	segs  []uint32
	files []*os.File
	segOf map[*os.File]uint32
	w     *os.File
	wsize int64
	total int64
}

func (d *dumper) append(payload []byte) (loc, error) {
	if d.w == nil || d.wsize >= d.s.opts.SegmentSize {
		f, err := os.OpenFile(segPath(d.s.dir, d.next), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
		if err != nil {
			return loc{}, fmt.Errorf("statestore: compact: %w", err)
		}
		if d.segOf == nil {
			d.segOf = make(map[*os.File]uint32)
		}
		d.segs = append(d.segs, d.next)
		d.files = append(d.files, f)
		d.segOf[f] = d.next
		d.next++
		d.w = f
		d.wsize = 0
	}
	frame := blockdb.AppendFrame(nil, payload)
	if _, err := d.w.WriteAt(frame, d.wsize); err != nil {
		return loc{}, fmt.Errorf("statestore: compact write: %w", err)
	}
	l := loc{seg: d.segs[len(d.segs)-1], off: d.wsize + frameHeader, n: uint32(len(payload))}
	d.wsize += int64(len(frame))
	d.total += int64(len(frame))
	return l, nil
}

func (d *dumper) finish(noSync bool) error {
	if noSync {
		return nil
	}
	for _, f := range d.files {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("statestore: compact sync: %w", err)
		}
	}
	return nil
}

// abort closes and removes the partial dump, leaving the store on its
// original segments.
func (d *dumper) abort() {
	for _, f := range d.files {
		seg := d.segOf[f]
		f.Close()
		os.Remove(segPath(d.s.dir, seg))
	}
	d.files = nil
}
