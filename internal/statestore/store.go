// Package statestore is a disk-backed store for world state: flat
// account and storage-slot records for O(1) reads, contract code, and
// hash-keyed trie nodes for lazy (on-demand) trie resolution. It
// bounds resident memory — the chain keeps only hot accounts and trie
// nodes in RAM, faulting the rest in through a byte-budgeted LRU —
// while preserving the incremental-root and lock-free-read invariants
// of the in-memory state.
//
// Layout: append-only segments of CRC32-C framed records (the exact
// frame format of the block journal, via blockdb.AppendFrame), so the
// store inherits the journal's torn-write and bit-rot detection. Each
// Commit appends one batch of records followed by an anchor record
// naming the committed (generation, block, state root); the anchor is
// the atomic commit marker. Recovery truncates everything after the
// last anchor, so a crash mid-commit rolls back to the previous
// anchored state — mirroring the block journal's verified-prefix
// guarantee.
//
// The full record index (key → segment/offset) lives in memory; the
// values live on disk. For 1M accounts that is tens of MB of index
// against hundreds of MB of state — the bounded-memory target is the
// values, which dominate.
package statestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"legalchain/internal/blockdb"
	"legalchain/internal/ethtypes"
	"legalchain/internal/rlp"
)

// Record kinds, the first element of every framed payload.
const (
	kindAccount = 1 // (kind, addr, enc)       enc = "" deletes the account
	kindSlot    = 2 // (kind, addr, slot, val) val = "" deletes the slot
	kindCode    = 3 // (kind, codeHash, code)
	kindNode    = 4 // (kind, nodeHash, enc)   trie node, keyed by keccak(enc)
	kindClear   = 5 // (kind, addr)            drops every slot of addr
	kindAnchor  = 6 // (kind, gen, number, blockHash, root) commit marker
)

const (
	segPrefix = "kv-"
	segSuffix = ".seg"
	// defaultSegmentSize rotates segments at 64 MiB, keeping compaction
	// and truncation units manageable.
	defaultSegmentSize = 64 << 20
	// defaultCacheBytes is the read-cache budget when Options leaves it
	// zero: 32 MiB, small enough for constrained soak targets.
	defaultCacheBytes = 32 << 20
)

// ErrNotFound is returned when a key has no record in the store. It is
// a definitive answer — the in-memory index is complete — so callers
// can treat it as "the account/slot/node does not exist on disk".
var ErrNotFound = errors.New("statestore: not found")

// Anchor names a committed state generation: the monotonically
// increasing commit counter, the block it belongs to and the world
// root it produced. Recovery rolls the store back to the newest intact
// anchor and the chain layer verifies it against the block journal.
type Anchor struct {
	Gen       uint64
	Number    uint64
	BlockHash ethtypes.Hash
	Root      ethtypes.Hash
}

// AccountRecord is the flat per-account record. Its encoding is the
// account-trie leaf encoding — rlp(nonce, balance, storageRoot,
// codeHash) — so the flat record, the trie leaf and the snapshot
// wire format all agree byte-for-byte.
type AccountRecord struct {
	Nonce       uint64
	Balance     []byte // minimal big-endian, as uint256 Bytes()
	StorageRoot ethtypes.Hash
	CodeHash    ethtypes.Hash
}

// Encode renders the record as the canonical account-trie leaf value.
func (a *AccountRecord) Encode() []byte {
	return rlp.Encode(rlp.List(
		rlp.Uint(a.Nonce),
		rlp.Bytes(a.Balance),
		rlp.Bytes(a.StorageRoot[:]),
		rlp.Bytes(a.CodeHash[:]),
	))
}

// DecodeAccountRecord parses a canonical account leaf encoding.
func DecodeAccountRecord(enc []byte) (*AccountRecord, error) {
	it, err := rlp.Decode(enc)
	if err != nil {
		return nil, err
	}
	if it.Kind() != rlp.KindList || it.Len() != 4 {
		return nil, errors.New("statestore: account record must be a 4-item list")
	}
	a := &AccountRecord{}
	if a.Nonce, err = it.At(0).AsUint64(); err != nil {
		return nil, err
	}
	a.Balance = append([]byte(nil), it.At(1).Str()...)
	if a.StorageRoot, err = asHash(it.At(2)); err != nil {
		return nil, err
	}
	if a.CodeHash, err = asHash(it.At(3)); err != nil {
		return nil, err
	}
	return a, nil
}

func asHash(it *rlp.Item) (ethtypes.Hash, error) {
	var h ethtypes.Hash
	if it.Kind() != rlp.KindString || len(it.Str()) != len(h) {
		return h, errors.New("statestore: expected 32-byte hash")
	}
	copy(h[:], it.Str())
	return h, nil
}

// Batch accumulates one commit's worth of state changes. The zero
// value is ready to use; fields are lazily allocated by the adders.
type Batch struct {
	Accounts map[ethtypes.Address]*AccountRecord // nil record = delete
	Slots    map[ethtypes.Address]map[ethtypes.Hash][]byte
	Clears   []ethtypes.Address // full storage wipes, applied first
	Codes    map[ethtypes.Hash][]byte
	Nodes    []NodeBlob
}

// NodeBlob is one freshly hashed trie node: Hash = keccak(Enc).
type NodeBlob struct {
	Hash ethtypes.Hash
	Enc  []byte
}

// PutAccount stages an account record (nil deletes).
func (b *Batch) PutAccount(addr ethtypes.Address, a *AccountRecord) {
	if b.Accounts == nil {
		b.Accounts = make(map[ethtypes.Address]*AccountRecord)
	}
	b.Accounts[addr] = a
}

// PutSlot stages one storage slot; empty val deletes it.
func (b *Batch) PutSlot(addr ethtypes.Address, slot ethtypes.Hash, val []byte) {
	if b.Slots == nil {
		b.Slots = make(map[ethtypes.Address]map[ethtypes.Hash][]byte)
	}
	m := b.Slots[addr]
	if m == nil {
		m = make(map[ethtypes.Hash][]byte)
		b.Slots[addr] = m
	}
	m[slot] = val
}

// PutCode stages contract code keyed by its hash.
func (b *Batch) PutCode(h ethtypes.Hash, code []byte) {
	if b.Codes == nil {
		b.Codes = make(map[ethtypes.Hash][]byte)
	}
	b.Codes[h] = code
}

// PutNode stages a trie node.
func (b *Batch) PutNode(h ethtypes.Hash, enc []byte) {
	b.Nodes = append(b.Nodes, NodeBlob{Hash: h, Enc: enc})
}

// Clear stages a full storage wipe for addr, applied before the
// batch's slot writes.
func (b *Batch) Clear(addr ethtypes.Address) {
	b.Clears = append(b.Clears, addr)
}

// Empty reports whether the batch stages nothing.
func (b *Batch) Empty() bool {
	return b == nil || (len(b.Accounts) == 0 && len(b.Slots) == 0 &&
		len(b.Clears) == 0 && len(b.Codes) == 0 && len(b.Nodes) == 0)
}

// Options configures Open.
type Options struct {
	// SegmentSize overrides segment rotation (0 = 64 MiB).
	SegmentSize int64
	// CacheBytes is the read-cache budget (0 = 32 MiB).
	CacheBytes int64
	// NoSync skips the per-commit fsync. Tests and benchmarks only.
	NoSync bool
}

// loc addresses a record payload on disk: segment number, payload
// byte offset within the segment, payload length.
type loc struct {
	seg uint32
	off int64
	n   uint32
}

type slotKey struct {
	addr ethtypes.Address
	slot ethtypes.Hash
}

// Store is the disk-backed state store. All methods are safe for
// concurrent use; reads take the mutex only to resolve the index and
// then pread without it.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	segs    []uint32            // segment numbers, ascending
	readers map[uint32]*os.File // lazily opened read handles
	w       *os.File            // write handle for segs[len-1]
	wsize   int64               // current size of the write segment

	accounts map[ethtypes.Address]loc
	slots    map[slotKey]loc
	codes    map[ethtypes.Hash]loc
	nodes    map[ethtypes.Hash]loc

	anchor    Anchor
	hasAnchor bool

	totalBytes int64 // bytes across all segments
	liveBytes  int64 // frame bytes still referenced by the index

	cache *lruCache
}

func segPath(dir string, n uint32) string {
	return filepath.Join(dir, fmt.Sprintf("%s%010d%s", segPrefix, n, segSuffix))
}

// Open opens (creating if needed) the store in dir, rebuilding the
// in-memory index from the segments and rolling back any un-anchored
// tail left by a crash mid-commit.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = defaultCacheBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		readers:  make(map[uint32]*os.File),
		accounts: make(map[ethtypes.Address]loc),
		slots:    make(map[slotKey]loc),
		codes:    make(map[ethtypes.Hash]loc),
		nodes:    make(map[ethtypes.Hash]loc),
		cache:    newLRUCache(opts.CacheBytes),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	if err := s.openWriter(); err != nil {
		return nil, err
	}
	mDiskBytes.Set(s.totalBytes)
	return s, nil
}

func listSegments(dir string) ([]uint32, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint32
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var n uint32
		if _, err := fmt.Sscanf(name, segPrefix+"%010d"+segSuffix, &n); err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// load scans the segments twice: pass one finds the newest intact
// anchor (scanning stops at the first damaged frame — nothing after
// damage is trusted), pass two rebuilds the index from the prefix up
// to that anchor. Segments past the anchor are deleted and the anchor
// segment is truncated to the anchor's end, so the on-disk store and
// the index agree exactly.
func (s *Store) load() error {
	segs, err := listSegments(s.dir)
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	if len(segs) == 0 {
		return nil
	}

	// Pass 1: locate the last anchor.
	type anchorPos struct {
		segIdx int
		end    int64
	}
	var last *anchorPos
	damaged := false
	for i, seg := range segs {
		if damaged {
			break
		}
		data, err := os.ReadFile(segPath(s.dir, seg))
		if err != nil {
			return fmt.Errorf("statestore: %w", err)
		}
		var off int64
		valid, scanErr := blockdb.ScanFrames(data, func(payload []byte) error {
			off += blockdb.FrameSize(len(payload))
			if len(payload) > 0 {
				if it, err := rlp.Decode(payload); err == nil && it.Kind() == rlp.KindList && it.Len() > 0 {
					if k, err := it.At(0).AsUint64(); err == nil && k == kindAnchor {
						last = &anchorPos{segIdx: i, end: off}
					}
				}
			}
			return nil
		})
		if scanErr != nil || valid != int64(len(data)) {
			damaged = true
		}
	}

	if last == nil {
		// No intact anchor anywhere: the store never completed a commit
		// (or lost its prefix). Start fresh; the chain layer rebuilds
		// from the genesis and the block journal.
		for _, seg := range segs {
			os.Remove(segPath(s.dir, seg))
		}
		return nil
	}

	// Roll back past the anchor: drop whole later segments, truncate
	// the anchor segment.
	for _, seg := range segs[last.segIdx+1:] {
		os.Remove(segPath(s.dir, seg))
	}
	segs = segs[:last.segIdx+1]
	if err := os.Truncate(segPath(s.dir, segs[last.segIdx]), last.end); err != nil {
		return fmt.Errorf("statestore: truncate: %w", err)
	}

	// Pass 2: rebuild the index from the intact prefix.
	for _, seg := range segs {
		data, err := os.ReadFile(segPath(s.dir, seg))
		if err != nil {
			return fmt.Errorf("statestore: %w", err)
		}
		var off int64
		_, scanErr := blockdb.ScanFrames(data, func(payload []byte) error {
			payloadOff := off + frameHeader
			off += blockdb.FrameSize(len(payload))
			return s.applyRecord(seg, payloadOff, payload)
		})
		if scanErr != nil {
			return fmt.Errorf("statestore: segment %d: %w", seg, scanErr)
		}
		s.totalBytes += int64(len(data))
	}
	s.segs = segs
	return nil
}

// frameHeader is the size of the blockdb frame header preceding each
// payload (length + CRC).
var frameHeader = blockdb.FrameSize(0)

// applyRecord indexes one scanned record during load.
func (s *Store) applyRecord(seg uint32, off int64, payload []byte) error {
	it, err := rlp.Decode(payload)
	if err != nil {
		return err
	}
	if it.Kind() != rlp.KindList || it.Len() < 1 {
		return errors.New("statestore: record must be a list")
	}
	kind, err := it.At(0).AsUint64()
	if err != nil {
		return err
	}
	l := loc{seg: seg, off: off, n: uint32(len(payload))}
	switch kind {
	case kindAccount:
		addr, err := asAddress(it.At(1))
		if err != nil {
			return err
		}
		if it.Len() < 3 || len(it.At(2).Str()) == 0 {
			s.dropAccount(addr)
		} else {
			setLocMap(s, s.accounts, addr, l)
		}
	case kindSlot:
		addr, err := asAddress(it.At(1))
		if err != nil {
			return err
		}
		slot, err := asHash(it.At(2))
		if err != nil {
			return err
		}
		k := slotKey{addr: addr, slot: slot}
		if it.Len() < 4 || len(it.At(3).Str()) == 0 {
			if old, ok := s.slots[k]; ok {
				s.liveBytes -= blockdb.FrameSize(int(old.n))
				delete(s.slots, k)
			}
		} else {
			setLocMap(s, s.slots, k, l)
		}
	case kindCode:
		h, err := asHash(it.At(1))
		if err != nil {
			return err
		}
		setLocMap(s, s.codes, h, l)
	case kindNode:
		h, err := asHash(it.At(1))
		if err != nil {
			return err
		}
		setLocMap(s, s.nodes, h, l)
	case kindClear:
		addr, err := asAddress(it.At(1))
		if err != nil {
			return err
		}
		s.clearSlots(addr)
	case kindAnchor:
		if it.Len() != 5 {
			return errors.New("statestore: malformed anchor")
		}
		var a Anchor
		if a.Gen, err = it.At(1).AsUint64(); err != nil {
			return err
		}
		if a.Number, err = it.At(2).AsUint64(); err != nil {
			return err
		}
		if a.BlockHash, err = asHash(it.At(3)); err != nil {
			return err
		}
		if a.Root, err = asHash(it.At(4)); err != nil {
			return err
		}
		s.anchor = a
		s.hasAnchor = true
	default:
		return fmt.Errorf("statestore: unknown record kind %d", kind)
	}
	return nil
}

func asAddress(it *rlp.Item) (ethtypes.Address, error) {
	var a ethtypes.Address
	if it == nil || it.Kind() != rlp.KindString || len(it.Str()) != len(a) {
		return a, errors.New("statestore: expected 20-byte address")
	}
	copy(a[:], it.Str())
	return a, nil
}

// setLoc updates an index map entry, maintaining liveBytes.
func setLocMap[K comparable](s *Store, m map[K]loc, k K, l loc) {
	if old, ok := m[k]; ok {
		s.liveBytes -= blockdb.FrameSize(int(old.n))
	}
	m[k] = l
	s.liveBytes += blockdb.FrameSize(int(l.n))
}

func (s *Store) dropAccount(addr ethtypes.Address) {
	if old, ok := s.accounts[addr]; ok {
		s.liveBytes -= blockdb.FrameSize(int(old.n))
		delete(s.accounts, addr)
	}
}

func (s *Store) clearSlots(addr ethtypes.Address) {
	for k, l := range s.slots {
		if k.addr == addr {
			s.liveBytes -= blockdb.FrameSize(int(l.n))
			delete(s.slots, k)
		}
	}
}

// openWriter opens (or creates) the newest segment for appending.
func (s *Store) openWriter() error {
	if len(s.segs) == 0 {
		s.segs = []uint32{0}
		f, err := os.OpenFile(segPath(s.dir, 0), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("statestore: %w", err)
		}
		s.w = f
		s.wsize = 0
		return nil
	}
	seg := s.segs[len(s.segs)-1]
	f, err := os.OpenFile(segPath(s.dir, seg), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("statestore: %w", err)
	}
	s.w = f
	s.wsize = st.Size()
	return nil
}

// rotateLocked closes the current write segment and starts the next.
func (s *Store) rotateLocked() error {
	seg := s.segs[len(s.segs)-1]
	// The old write handle becomes a read handle; don't close it.
	s.readers[seg] = s.w
	next := seg + 1
	f, err := os.OpenFile(segPath(s.dir, next), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	s.segs = append(s.segs, next)
	s.w = f
	s.wsize = 0
	return nil
}

// Anchor returns the newest committed anchor, if any.
func (s *Store) Anchor() (Anchor, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.anchor, s.hasAnchor
}

// Commit durably applies one batch and advances the anchor to a: all
// records are framed and appended, the anchor record lands last, and
// a single fsync makes the commit atomic (recovery rolls back to the
// previous anchor if the tail is torn). The in-memory index and the
// read cache are updated only after the write succeeds.
func (s *Store) Commit(b *Batch, a Anchor) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return errors.New("statestore: closed")
	}
	if s.wsize >= s.opts.SegmentSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	seg := s.segs[len(s.segs)-1]

	// Build the commit buffer, remembering each record's payload loc.
	type staged struct {
		apply func(l loc)
		cache func(l loc)
		n     int
	}
	var buf []byte
	var stages []staged
	add := func(payload []byte, apply, cache func(l loc)) {
		buf = blockdb.AppendFrame(buf, payload)
		stages = append(stages, staged{apply: apply, cache: cache, n: len(payload)})
	}
	if b != nil {
		for _, addr := range b.Clears {
			addr := addr
			add(rlp.Encode(rlp.List(rlp.Uint(kindClear), rlp.Bytes(addr[:]))),
				func(loc) { s.clearSlots(addr); s.cache.dropSlots(addr) }, nil)
		}
		for addr, rec := range b.Accounts {
			addr, rec := addr, rec
			var enc []byte
			if rec != nil {
				enc = rec.Encode()
			}
			add(rlp.Encode(rlp.List(rlp.Uint(kindAccount), rlp.Bytes(addr[:]), rlp.Bytes(enc))),
				func(l loc) {
					if rec == nil {
						s.dropAccount(addr)
					} else {
						setLocMap(s, s.accounts, addr, l)
					}
				},
				func(loc) {
					if rec == nil {
						s.cache.remove(accountKey(addr))
					} else {
						s.cache.put(accountKey(addr), enc)
					}
				})
		}
		for addr, slots := range b.Slots {
			for slot, val := range slots {
				addr, slot, val := addr, slot, val
				add(rlp.Encode(rlp.List(rlp.Uint(kindSlot), rlp.Bytes(addr[:]), rlp.Bytes(slot[:]), rlp.Bytes(val))),
					func(l loc) {
						k := slotKey{addr: addr, slot: slot}
						if len(val) == 0 {
							if old, ok := s.slots[k]; ok {
								s.liveBytes -= blockdb.FrameSize(int(old.n))
								delete(s.slots, k)
							}
						} else {
							setLocMap(s, s.slots, k, l)
						}
					},
					func(loc) {
						if len(val) == 0 {
							s.cache.remove(storageKey(addr, slot))
						} else {
							s.cache.put(storageKey(addr, slot), val)
						}
					})
			}
		}
		for h, code := range b.Codes {
			h, code := h, code
			if _, dup := s.codes[h]; dup {
				continue // code is content-addressed; first write wins
			}
			add(rlp.Encode(rlp.List(rlp.Uint(kindCode), rlp.Bytes(h[:]), rlp.Bytes(code))),
				func(l loc) { setLocMap(s, s.codes, h, l) },
				func(loc) { s.cache.put(codeKey(h), code) })
		}
		for _, nb := range b.Nodes {
			nb := nb
			if _, dup := s.nodes[nb.Hash]; dup {
				continue // nodes are content-addressed too
			}
			add(rlp.Encode(rlp.List(rlp.Uint(kindNode), rlp.Bytes(nb.Hash[:]), rlp.Bytes(nb.Enc))),
				func(l loc) { setLocMap(s, s.nodes, nb.Hash, l) },
				func(loc) { s.cache.put(nodeKey(nb.Hash), nb.Enc) })
		}
	}
	add(rlp.Encode(rlp.List(
		rlp.Uint(kindAnchor), rlp.Uint(a.Gen), rlp.Uint(a.Number),
		rlp.Bytes(a.BlockHash[:]), rlp.Bytes(a.Root[:]),
	)), nil, nil)

	if _, err := s.w.WriteAt(buf, s.wsize); err != nil {
		return fmt.Errorf("statestore: commit write: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.w.Sync(); err != nil {
			return fmt.Errorf("statestore: commit sync: %w", err)
		}
	}

	// Index and cache updates, now that the bytes are durable.
	off := s.wsize
	for _, st := range stages {
		payloadOff := off + frameHeader
		if st.apply != nil {
			st.apply(loc{seg: seg, off: payloadOff, n: uint32(st.n)})
		}
		if st.cache != nil {
			st.cache(loc{})
		}
		off += blockdb.FrameSize(st.n)
	}
	s.wsize += int64(len(buf))
	s.totalBytes += int64(len(buf))
	s.anchor = a
	s.hasAnchor = true
	mDiskBytes.Set(s.totalBytes)
	return nil
}

// fileForLocked returns a read handle for l's segment. Caller holds
// s.mu; the returned handle stays valid after the lock is released
// (handles are only closed by Close, Reset and Compact, which never
// race a read of the same generation's index).
func (s *Store) fileForLocked(l loc) (*os.File, error) {
	if len(s.segs) > 0 && l.seg == s.segs[len(s.segs)-1] {
		return s.w, nil
	}
	if r, ok := s.readers[l.seg]; ok {
		return r, nil
	}
	r, err := os.Open(segPath(s.dir, l.seg))
	if err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	s.readers[l.seg] = r
	return r, nil
}

// readLoc preads one record payload.
func (s *Store) readLoc(l loc) ([]byte, error) {
	s.mu.Lock()
	f, err := s.fileForLocked(l)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return preadPayload(f, l)
}

func preadPayload(f *os.File, l loc) ([]byte, error) {
	buf := make([]byte, l.n)
	if _, err := f.ReadAt(buf, l.off); err != nil {
		return nil, fmt.Errorf("statestore: read: %w", err)
	}
	return buf, nil
}

// recordValue preads a record payload and returns the value item at
// index vi (records store their value as the last list element).
func (s *Store) recordValue(l loc, vi int) ([]byte, error) {
	payload, err := s.readLoc(l)
	if err != nil {
		return nil, err
	}
	return extractValue(payload, vi)
}

// recordValueLocked is recordValue with s.mu already held (compaction).
func (s *Store) recordValueLocked(l loc, vi int) ([]byte, error) {
	f, err := s.fileForLocked(l)
	if err != nil {
		return nil, err
	}
	payload, err := preadPayload(f, l)
	if err != nil {
		return nil, err
	}
	return extractValue(payload, vi)
}

func extractValue(payload []byte, vi int) ([]byte, error) {
	it, err := rlp.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("statestore: corrupt record: %w", err)
	}
	if it.Kind() != rlp.KindList || it.Len() <= vi {
		return nil, errors.New("statestore: corrupt record shape")
	}
	return append([]byte(nil), it.At(vi).Str()...), nil
}

// Account returns the flat record for addr, or ErrNotFound.
func (s *Store) Account(addr ethtypes.Address) (*AccountRecord, error) {
	key := accountKey(addr)
	if v, ok := s.cache.get(key); ok {
		return DecodeAccountRecord(v)
	}
	s.mu.Lock()
	l, ok := s.accounts[addr]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	enc, err := s.recordValue(l, 2)
	if err != nil {
		return nil, err
	}
	s.cache.put(key, enc)
	return DecodeAccountRecord(enc)
}

// Slot returns the committed value bytes (minimal big-endian) for one
// storage slot, or ErrNotFound for an absent (zero) slot.
func (s *Store) Slot(addr ethtypes.Address, slot ethtypes.Hash) ([]byte, error) {
	key := storageKey(addr, slot)
	if v, ok := s.cache.get(key); ok {
		return v, nil
	}
	s.mu.Lock()
	l, ok := s.slots[slotKey{addr: addr, slot: slot}]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	val, err := s.recordValue(l, 3)
	if err != nil {
		return nil, err
	}
	s.cache.put(key, val)
	return val, nil
}

// Code returns contract code by hash, or ErrNotFound.
func (s *Store) Code(h ethtypes.Hash) ([]byte, error) {
	key := codeKey(h)
	if v, ok := s.cache.get(key); ok {
		return v, nil
	}
	s.mu.Lock()
	l, ok := s.codes[h]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	code, err := s.recordValue(l, 2)
	if err != nil {
		return nil, err
	}
	s.cache.put(key, code)
	return code, nil
}

// ResolveNode returns the RLP encoding of the trie node with the given
// hash, or ErrNotFound. This is the trie.Resolver implementation that
// lazy tries fault through.
func (s *Store) ResolveNode(h ethtypes.Hash) ([]byte, error) {
	key := nodeKey(h)
	if v, ok := s.cache.get(key); ok {
		return v, nil
	}
	s.mu.Lock()
	l, ok := s.nodes[h]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	enc, err := s.recordValue(l, 2)
	if err != nil {
		return nil, err
	}
	s.cache.put(key, enc)
	return enc, nil
}

// HasAccount reports index membership without a disk read.
func (s *Store) HasAccount(addr ethtypes.Address) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.accounts[addr]
	return ok
}

// ForEachAccount calls fn for every account in the store (index
// order, unspecified). fn returning false stops the walk. Each call
// costs a disk read for cold accounts; this is for dumps, audits and
// supply sums, not hot paths.
func (s *Store) ForEachAccount(fn func(addr ethtypes.Address, rec *AccountRecord) bool) error {
	s.mu.Lock()
	addrs := make([]ethtypes.Address, 0, len(s.accounts))
	for a := range s.accounts {
		addrs = append(addrs, a)
	}
	s.mu.Unlock()
	for _, addr := range addrs {
		rec, err := s.Account(addr)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // deleted since the index walk started
			}
			return err
		}
		if !fn(addr, rec) {
			return nil
		}
	}
	return nil
}

// AccountCount returns the number of accounts in the index.
func (s *Store) AccountCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.accounts)
}

// DiskBytes returns the total on-disk size of the store's segments.
func (s *Store) DiskBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalBytes
}

// CacheStats returns (hits, misses, evictions) for observability and
// tests.
func (s *Store) CacheStats() (hits, misses, evictions uint64) {
	return s.cache.stats()
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Reset discards everything: segments, index, cache, anchor. Used
// when recovery determines the anchored state is unusable (e.g. the
// block journal lost the anchor's block) and the chain must rebuild
// from the genesis.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.readers {
		r.Close()
	}
	s.readers = make(map[uint32]*os.File)
	if s.w != nil {
		s.w.Close()
		s.w = nil
	}
	for _, seg := range s.segs {
		os.Remove(segPath(s.dir, seg))
	}
	s.segs = nil
	s.accounts = make(map[ethtypes.Address]loc)
	s.slots = make(map[slotKey]loc)
	s.codes = make(map[ethtypes.Hash]loc)
	s.nodes = make(map[ethtypes.Hash]loc)
	s.anchor = Anchor{}
	s.hasAnchor = false
	s.totalBytes = 0
	s.liveBytes = 0
	s.cache.reset()
	mDiskBytes.Set(0)
	return s.openWriter()
}

// Close syncs and closes every handle. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, r := range s.readers {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.readers = make(map[uint32]*os.File)
	if s.w != nil {
		if !s.opts.NoSync {
			if err := s.w.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := s.w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.w = nil
	}
	return firstErr
}
