package statestore

import (
	"container/list"
	"sync"

	"legalchain/internal/ethtypes"
)

// Sharded, byte-budgeted LRU over record values. Keys are strings with
// a one-byte kind prefix ('a' account, 's' slot, 'c' code, 'n' node)
// so one budget covers all record kinds; sharding by a key byte keeps
// the hot ResolveNode path from serialising every reader on one lock.

const cacheShards = 16

func accountKey(addr ethtypes.Address) string { return "a" + string(addr[:]) }
func codeKey(h ethtypes.Hash) string          { return "c" + string(h[:]) }
func nodeKey(h ethtypes.Hash) string          { return "n" + string(h[:]) }
func storageKey(addr ethtypes.Address, slot ethtypes.Hash) string {
	b := make([]byte, 1, 1+len(addr)+len(slot))
	b[0] = 's'
	b = append(b, addr[:]...)
	b = append(b, slot[:]...)
	return string(b)
}

type cacheEntry struct {
	key string
	val []byte
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recent
	items map[string]*list.Element
	bytes int64
}

type lruCache struct {
	shards [cacheShards]cacheShard
	// budget per shard; total budget / cacheShards.
	shardBudget int64

	statsMu   sync.Mutex
	hits      uint64
	misses    uint64
	evictions uint64
}

func newLRUCache(budget int64) *lruCache {
	c := &lruCache{shardBudget: budget / cacheShards}
	if c.shardBudget < 1 {
		c.shardBudget = 1
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

// shardOf picks a shard from the first content byte after the kind
// prefix — addresses and hashes are uniformly distributed already.
func (c *lruCache) shardOf(key string) *cacheShard {
	var b byte
	if len(key) > 1 {
		b = key[1]
	}
	return &c.shards[b%cacheShards]
}

// entrySize approximates an entry's memory footprint: key + value
// plus fixed overhead for the element, map slot and entry struct.
func entrySize(key string, val []byte) int64 {
	return int64(len(key)+len(val)) + 96
}

func (c *lruCache) get(key string) ([]byte, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		mCacheMisses.Inc()
		c.count(&c.misses)
		return nil, false
	}
	sh.ll.MoveToFront(el)
	val := el.Value.(*cacheEntry).val
	sh.mu.Unlock()
	mCacheHits.Inc()
	c.count(&c.hits)
	return val, true
}

// put inserts or refreshes an entry, evicting cold entries until the
// shard fits its budget. The value is stored by reference — callers
// must not mutate it after (the store only ever passes freshly read
// or freshly encoded buffers).
func (c *lruCache) put(key string, val []byte) {
	sh := c.shardOf(key)
	sz := entrySize(key, val)
	if sz > c.shardBudget {
		return // single oversized value would evict the whole shard
	}
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*cacheEntry)
		sh.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		sh.ll.MoveToFront(el)
	} else {
		el := sh.ll.PushFront(&cacheEntry{key: key, val: val})
		sh.items[key] = el
		sh.bytes += sz
		if key[0] == 'n' {
			residentNodes.Add(1)
		}
	}
	evicted := 0
	for sh.bytes > c.shardBudget {
		oldest := sh.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*cacheEntry)
		sh.ll.Remove(oldest)
		delete(sh.items, e.key)
		sh.bytes -= entrySize(e.key, e.val)
		if e.key[0] == 'n' {
			residentNodes.Add(-1)
		}
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		mCacheEvictions.Add(uint64(evicted))
		c.countN(&c.evictions, uint64(evicted))
	}
}

func (c *lruCache) remove(key string) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*cacheEntry)
		sh.ll.Remove(el)
		delete(sh.items, key)
		sh.bytes -= entrySize(e.key, e.val)
		if key[0] == 'n' {
			residentNodes.Add(-1)
		}
	}
	sh.mu.Unlock()
}

// dropSlots removes every cached slot of addr (storage wipe). Walks
// all shards — wipes are rare (selfdestruct, account deletion).
func (c *lruCache) dropSlots(addr ethtypes.Address) {
	prefix := "s" + string(addr[:])
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*cacheEntry)
			if len(e.key) > len(prefix) && e.key[:len(prefix)] == prefix {
				sh.ll.Remove(el)
				delete(sh.items, e.key)
				sh.bytes -= entrySize(e.key, e.val)
			}
			el = next
		}
		sh.mu.Unlock()
	}
}

func (c *lruCache) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.ll.Front(); el != nil; el = el.Next() {
			if e := el.Value.(*cacheEntry); e.key[0] == 'n' {
				residentNodes.Add(-1)
			}
		}
		sh.ll = list.New()
		sh.items = make(map[string]*list.Element)
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

func (c *lruCache) count(field *uint64) {
	c.statsMu.Lock()
	*field++
	c.statsMu.Unlock()
}

func (c *lruCache) countN(field *uint64, n uint64) {
	c.statsMu.Lock()
	*field += n
	c.statsMu.Unlock()
}

func (c *lruCache) stats() (hits, misses, evictions uint64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.hits, c.misses, c.evictions
}
