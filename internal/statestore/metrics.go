package statestore

import (
	"sync/atomic"

	"legalchain/internal/metrics"
)

// Observability for the disk-backed state store: cache effectiveness
// (hits/misses/evictions tell you whether -state-cache is sized
// right), on-disk footprint and how many trie nodes are resident in
// the cache at any moment.
var (
	mCacheHits = metrics.Default.Counter("legalchain_statestore_cache_hits_total",
		"Read-cache hits across account, slot, code and trie-node lookups.")
	mCacheMisses = metrics.Default.Counter("legalchain_statestore_cache_misses_total",
		"Read-cache misses that went to disk (or found nothing).")
	mCacheEvictions = metrics.Default.Counter("legalchain_statestore_cache_evictions_total",
		"Entries evicted from the read cache to stay inside the byte budget.")
	mDiskBytes = metrics.Default.Gauge("legalchain_statestore_disk_bytes",
		"Total bytes across the state store's on-disk segments.")

	residentNodes atomic.Int64
)

func init() {
	metrics.Default.GaugeFunc("legalchain_statestore_resident_nodes",
		"Trie nodes currently resident in the read cache.",
		func() float64 { return float64(residentNodes.Load()) })
}
