package watch

import "legalchain/internal/metrics"

// The watchtower's metric surface: domain-level health, not transport
// plumbing. Where the rest of the registry answers "is the machine
// fine?", these answer "are the contracts fine?" — how many agreements
// sit in each lifecycle state, how many duties are past due, how late
// tenants pay, and whether any declared alert rule is firing.
//
// Registered in metrics.Default like every tier, so one scrape carries
// the full story. Gauges are recomputed after each folded block by the
// (single) live tower; counters are cumulative across the process.
var (
	mContracts = metrics.Default.GaugeVec("legalchain_watch_contracts",
		"Tracked contracts by lifecycle state.", "state")
	mOverdue = metrics.Default.Gauge("legalchain_watch_obligations_overdue",
		"Derived obligations past their due block.")
	mPaymentLag = metrics.Default.Histogram("legalchain_watch_payment_lag_seconds",
		"Seconds between a rent obligation's due block and its payment (0 = on time).",
		[]float64{0, 1, 2, 5, 10, 30, 60, 300, 900, 3600, 86400})
	mEvents = metrics.Default.CounterVec("legalchain_watch_events_total",
		"Lifecycle events folded, by contract template and event type.", "template", "event")
	mAlertsFiring = metrics.Default.Gauge("legalchain_watch_alerts_firing",
		"Alert rules currently in the firing state.")
	mAlertsTotal = metrics.Default.Counter("legalchain_watch_alerts_fired_total",
		"Alert rule firings (transitions into the firing state).")
	mFoldLag = metrics.Default.Gauge("legalchain_watch_fold_lag_blocks",
		"Blocks sealed but not yet folded by the watchtower.")
	mBlocksFolded = metrics.Default.Counter("legalchain_watch_blocks_folded_total",
		"Blocks folded into the watchtower state machines.")
	mLogBytes = metrics.Default.Gauge("legalchain_watch_log_bytes",
		"Size of the durable watch event log in bytes.")
)
