package watch

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"legalchain/internal/ethtypes"
	"legalchain/internal/web3"
)

// TestReplayConvergence is the restart property: for fuzzed lifecycle
// schedules, a tower that is stopped mid-stream and reopened over its
// event log must converge to the same per-contract states, the same
// event sequence and the same durable log as a tower that watched the
// whole run uninterrupted.
func TestReplayConvergence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run("", func(t *testing.T) { replayRun(t, seed) })
	}
}

// fuzzContract mirrors what the schedule has done to one deployment so
// the generator only picks valid next moves.
type fuzzContract struct {
	bound      *web3.BoundContract
	confirmed  bool
	terminated bool
	linked     bool
	paid       uint64
	months     uint64
}

func replayRun(t *testing.T, seed int64) {
	bc, client, accs := rig(t, 4)
	landlord, tenant, other := accs[0], accs[1], accs[2]
	rng := rand.New(rand.NewSource(seed))

	rules, err := ParseRules("missed: overdue > 0 for 3 blocks")
	if err != nil {
		t.Fatal(err)
	}
	cfg := func(dir string) Config {
		return Config{Dir: dir, RentPeriod: 2, ModifyGrace: 2, Rules: rules}
	}
	dirA, dirB := t.TempDir(), t.TempDir()

	// Tower B watches live and is killed mid-stream.
	b1, err := New(bc, cfg(dirB))
	if err != nil {
		t.Fatal(err)
	}

	var live []*fuzzContract
	step := func() {
		// Pick a valid move: deploy, or act on a random live contract,
		// or an unrelated transfer (advances blocks — lets rent go
		// overdue and alert rules count).
		roll := rng.Intn(10)
		var c *fuzzContract
		if len(live) > 0 {
			c = live[rng.Intn(len(live))]
		}
		switch {
		case roll < 2 || c == nil:
			months := uint64(2 + rng.Intn(4))
			live = append(live, &fuzzContract{bound: deployRental(t, client, landlord, months), months: months})
		case roll < 4:
			if _, err := client.Transfer(web3.TxOpts{From: other.Address, Value: ethtypes.Ether(1)}, landlord.Address); err != nil {
				t.Fatal(err)
			}
		case !c.confirmed && !c.terminated:
			if _, err := c.bound.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(2)}, "confirmAgreement"); err != nil {
				t.Fatal(err)
			}
			c.confirmed = true
		case c.terminated:
			// Nothing left for this contract; burn the turn on a transfer.
			if _, err := client.Transfer(web3.TxOpts{From: other.Address, Value: ethtypes.Ether(1)}, landlord.Address); err != nil {
				t.Fatal(err)
			}
		case roll < 7 && c.paid < c.months:
			if _, err := c.bound.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1)}, "payRent"); err != nil {
				t.Fatal(err)
			}
			c.paid++
		case roll < 9 && !c.linked:
			succ := deployRental(t, client, landlord, c.months)
			live = append(live, &fuzzContract{bound: succ, months: c.months})
			if _, err := c.bound.Transact(web3.TxOpts{From: landlord.Address}, "setNext", succ.Address); err != nil {
				t.Fatal(err)
			}
			if _, err := succ.Transact(web3.TxOpts{From: landlord.Address}, "setPrev", c.bound.Address); err != nil {
				t.Fatal(err)
			}
			c.linked = true
		default:
			if _, err := c.bound.Transact(web3.TxOpts{From: tenant.Address}, "terminateContract"); err != nil {
				t.Fatal(err)
			}
			c.terminated = true
		}
	}

	total := 30 + rng.Intn(20)
	cut := 5 + rng.Intn(total-10) // restart somewhere strictly mid-stream
	for i := 0; i < cut; i++ {
		step()
	}
	b1.Sync() // fold everything sealed so far, then die
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	for i := cut; i < total; i++ {
		step()
	}

	// B reopens over its log and catches up; A watches the whole chain
	// in one uninterrupted pass.
	b2, err := New(bc, cfg(dirB))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	b2.Sync()
	a, err := New(bc, cfg(dirA))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Sync()

	stA, stB := a.Status(), b2.Status()
	if !reflect.DeepEqual(stA, stB) {
		t.Fatalf("seed %d: status diverged\nuninterrupted: %+v\nrestarted:     %+v", seed, stA, stB)
	}
	evA, evB := a.Events(0), b2.Events(0)
	if !reflect.DeepEqual(evA, evB) {
		if len(evA) != len(evB) {
			t.Fatalf("seed %d: %d events uninterrupted vs %d restarted", seed, len(evA), len(evB))
		}
		for i := range evA {
			if !reflect.DeepEqual(evA[i], evB[i]) {
				t.Fatalf("seed %d: event %d diverged\nuninterrupted: %+v\nrestarted:     %+v", seed, i, evA[i], evB[i])
			}
		}
	}
	// The durable logs must be byte-identical: same records, same seqs,
	// same rule-state snapshots in every anchor.
	rawA, err := os.ReadFile(filepath.Join(dirA, eventLogName))
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(filepath.Join(dirB, eventLogName))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rawA, rawB) {
		t.Fatalf("seed %d: durable logs diverged (%d vs %d bytes)", seed, len(rawA), len(rawB))
	}
	// And both agree with the chain: every tracked contract's on-chain
	// state matches the folded machine.
	for _, cs := range stA.Contracts {
		addr, _ := parseAddr(cs.Address)
		bound := client.Bind(addr, loadRentalABI())
		onchain, err := bound.CallUint(accs[3].Address, "state")
		if err != nil {
			t.Fatal(err)
		}
		switch cs.State {
		case StateDrafted:
			if onchain.Uint64() != 0 {
				t.Fatalf("%s folded drafted, chain says %d", cs.Address, onchain.Uint64())
			}
		case StateSigned, StateActive, StateModifiedPending:
			if onchain.Uint64() != 1 {
				t.Fatalf("%s folded %s, chain says %d", cs.Address, cs.State, onchain.Uint64())
			}
		case StateTerminated:
			if onchain.Uint64() != 2 {
				t.Fatalf("%s folded terminated, chain says %d", cs.Address, onchain.Uint64())
			}
		}
	}
}
