package watch

import "fmt"

// Obligation derivation: the watchtower's domain layer. A lifecycle
// state machine says where a contract *is*; an obligation says what
// must happen *next* and by when. Deadlines are measured in blocks —
// the only clock every node agrees on — with the rent period and the
// modification grace window configurable per tower.
//
// Three obligation kinds cover the rental lifecycle of the paper:
//
//	rent-due              an active lease owes its next month of rent
//	confirm-modification  a linked successor awaits the tenant's word
//	settle-termination    the term is served; the deposit must settle
//
// An obligation is overdue once the folded head is past its due block.
// The set is re-derived after every folded block (it is a pure function
// of contract state + head), so it can never drift from the machine.

// Obligation is one outstanding duty derived from a contract's state.
type Obligation struct {
	Contract  string `json:"contract"`
	Kind      string `json:"kind"` // rent-due | confirm-modification | settle-termination
	DueBlock  uint64 `json:"dueBlock"`
	Overdue   bool   `json:"overdue"`
	OverdueBy uint64 `json:"overdueBy,omitempty"` // blocks past due
	Detail    string `json:"detail,omitempty"`
}

// obligationsOf derives the outstanding obligations of one contract at
// folded head block `head`.
func (t *Tower) obligationsOf(cs *contractState, head uint64) []Obligation {
	var out []Obligation
	add := func(kind string, due uint64, detail string) {
		o := Obligation{Contract: cs.Addr.Hex(), Kind: kind, DueBlock: due, Detail: detail}
		if head > due {
			o.Overdue = true
			o.OverdueBy = head - due
		}
		out = append(out, o)
	}
	switch cs.State {
	case StateActive, StateSigned:
		// The rent clock starts when the agreement is signed and resets
		// on every payment. Serving the full term converts the duty into
		// the deposit settlement of terminateContract.
		if cs.Months > 0 && cs.MonthsPaid >= cs.Months {
			add("settle-termination", cs.LastPayBlock+t.cfg.RentPeriod,
				fmt.Sprintf("term served (%d/%d months): deposit of %s wei refundable on termination",
					cs.MonthsPaid, cs.Months, cs.DepositWei))
		} else if cs.State == StateActive || cs.MonthsPaid > 0 || cs.SignedBlock > 0 {
			add("rent-due", cs.LastPayBlock+t.cfg.RentPeriod,
				fmt.Sprintf("month %d of %d: %s wei", cs.MonthsPaid+1, cs.Months, cs.RentWei))
		}
	case StateModifiedPending:
		add("confirm-modification", cs.ModifiedBlock+t.cfg.ModifyGrace,
			fmt.Sprintf("successor linked at block %d awaits tenant confirmation", cs.ModifiedBlock))
	}
	return out
}
