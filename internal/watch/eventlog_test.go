package watch

import (
	"os"
	"path/filepath"
	"testing"

	"legalchain/internal/blockdb"
)

func TestEventLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := openEventLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []*Event{
		{Seq: 1, Block: 1, Type: "created", Contract: "0xabc", Template: "BaseRental", RentWei: "100"},
		{Seq: 2, Block: 2, Type: "signed", Contract: "0xabc"},
		{Seq: 3, Block: 2, Type: "anchor", RuleState: map[string]RuleState{"r": {Consecutive: 2, Firing: true}}},
	}
	for _, ev := range want {
		if err := l.append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	var got []*Event
	l2, err := openEventLog(dir, func(ev *Event) {
		cp := *ev
		got = append(got, &cp)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Type != want[i].Type || got[i].Contract != want[i].Contract {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if got[2].RuleState["r"].Consecutive != 2 || !got[2].RuleState["r"].Firing {
		t.Fatalf("rule state lost: %+v", got[2].RuleState)
	}
}

// TestEventLogTornTail verifies the truncate-to-valid recovery: a
// half-written frame at the tail is discarded and appends continue
// cleanly after it.
func TestEventLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := openEventLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := l.append(&Event{Seq: i, Block: i, Type: "created"}); err != nil {
			t.Fatal(err)
		}
	}
	intact := l.size()
	if err := l.append(&Event{Seq: 4, Block: 4, Type: "signed"}); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last frame in half.
	path := filepath.Join(dir, eventLogName)
	full, _ := os.ReadFile(path)
	if err := os.WriteFile(path, full[:intact+3], 0o644); err != nil {
		t.Fatal(err)
	}

	var seqs []uint64
	l2, err := openEventLog(dir, func(ev *Event) { seqs = append(seqs, ev.Seq) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("replayed %v, want the 3 intact records", seqs)
	}
	if l2.size() != intact {
		t.Fatalf("size %d after truncation, want %d", l2.size(), intact)
	}
	// Appends after recovery extend the repaired log.
	if err := l2.append(&Event{Seq: 4, Block: 4, Type: "terminated"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.close(); err != nil {
		t.Fatal(err)
	}
	seqs = nil
	l3, err := openEventLog(dir, func(ev *Event) { seqs = append(seqs, ev.Seq) })
	if err != nil {
		t.Fatal(err)
	}
	defer l3.close()
	if len(seqs) != 4 || seqs[3] != 4 {
		t.Fatalf("after repair+append: %v", seqs)
	}
}

// A CRC-intact frame with garbage JSON stops replay there, like a torn
// tail: everything before it survives, everything after is dropped.
func TestEventLogBadJSON(t *testing.T) {
	dir := t.TempDir()
	l, err := openEventLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.append(&Event{Seq: 1, Type: "created"}); err != nil {
		t.Fatal(err)
	}
	good := l.size()
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	// Append a validly framed record that is not JSON.
	path := filepath.Join(dir, eventLogName)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write(blockdb.AppendFrame(nil, []byte("not json")))
	f.Close()

	count := 0
	l2, err := openEventLog(dir, func(*Event) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	if count != 1 || l2.size() != good {
		t.Fatalf("count=%d size=%d want 1/%d", count, l2.size(), good)
	}
}

func TestEventLogNil(t *testing.T) {
	var l *eventLog
	if err := l.append(&Event{}); err != nil {
		t.Fatal(err)
	}
	if err := l.sync(); err != nil {
		t.Fatal(err)
	}
	if l.size() != 0 {
		t.Fatal("size")
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	if l2, err := openEventLog("", nil); l2 != nil || err != nil {
		t.Fatal("empty dir should yield a nil log")
	}
}
