package watch

import (
	"fmt"
	"strconv"
	"strings"
)

// Alert rules: threshold conditions over the watchtower's derived
// signals, with an optional for-duration measured in blocks. A rule is
// declared in one line of a small config:
//
//	overdue > 0 for 2 blocks
//	stale-rentals: modified_pending >= 3
//	# comments and blank lines are ignored
//
// The optional "name:" prefix labels the rule; unnamed rules use the
// normalised expression as their name. A rule fires exactly once when
// its condition has held for the declared number of consecutive folded
// blocks, stays "firing" (without re-firing) while the condition holds,
// and resolves — rearming it — the first block the condition is false.
//
// Signals a rule can reference, all recomputed after every folded
// block:
//
//	overdue           obligations past their due block
//	tracked           tracked contracts (any state)
//	drafted, signed, active, modified_pending, terminated
//	                  contracts currently in that lifecycle state
//	fold_lag          blocks sealed but not yet folded
//	alerts_firing     rules currently firing (meta-signal)

// Rule is one parsed alert rule.
type Rule struct {
	Name      string  `json:"name"`
	Signal    string  `json:"signal"`
	Op        string  `json:"op"` // > >= < <= == !=
	Threshold float64 `json:"threshold"`
	ForBlocks uint64  `json:"forBlocks"` // consecutive blocks; 0 and 1 mean "immediately"
}

// Expr renders the rule back into its config-line form.
func (r Rule) Expr() string {
	s := fmt.Sprintf("%s %s %s", r.Signal, r.Op, strconv.FormatFloat(r.Threshold, 'g', -1, 64))
	if r.ForBlocks > 1 {
		s += fmt.Sprintf(" for %d blocks", r.ForBlocks)
	}
	return s
}

// validSignals names every signal the engine can evaluate.
var validSignals = map[string]bool{
	"overdue": true, "tracked": true, "fold_lag": true, "alerts_firing": true,
	"drafted": true, "signed": true, "active": true, "modified_pending": true,
	"terminated": true,
}

// ParseRule parses one rule line: [name:] signal op threshold [for N blocks].
func ParseRule(line string) (Rule, error) {
	var r Rule
	expr := strings.TrimSpace(line)
	if i := strings.Index(expr, ":"); i >= 0 {
		r.Name = strings.TrimSpace(expr[:i])
		expr = strings.TrimSpace(expr[i+1:])
	}
	fields := strings.Fields(expr)
	if len(fields) != 3 && len(fields) != 6 {
		return r, fmt.Errorf("watch: bad rule %q: want \"signal op value [for N blocks]\"", line)
	}
	r.Signal = fields[0]
	if !validSignals[r.Signal] {
		return r, fmt.Errorf("watch: bad rule %q: unknown signal %q", line, r.Signal)
	}
	switch fields[1] {
	case ">", ">=", "<", "<=", "==", "!=":
		r.Op = fields[1]
	default:
		return r, fmt.Errorf("watch: bad rule %q: unknown operator %q", line, fields[1])
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return r, fmt.Errorf("watch: bad rule %q: bad threshold %q", line, fields[2])
	}
	r.Threshold = v
	if len(fields) == 6 {
		if fields[3] != "for" || (fields[5] != "blocks" && fields[5] != "block") {
			return r, fmt.Errorf("watch: bad rule %q: want \"for N blocks\"", line)
		}
		n, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil || n == 0 {
			return r, fmt.Errorf("watch: bad rule %q: bad duration %q", line, fields[4])
		}
		r.ForBlocks = n
	}
	if r.Name == "" {
		r.Name = r.Signal + r.Op + fields[2]
	}
	return r, nil
}

// ParseRules parses a rule config: one rule per line, # comments and
// blank lines skipped.
func ParseRules(text string) ([]Rule, error) {
	var out []Rule
	seen := map[string]bool{}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("line %d: duplicate rule name %q", i+1, r.Name)
		}
		seen[r.Name] = true
		out = append(out, r)
	}
	return out, nil
}

// RuleState is the engine's per-rule counter, snapshotted into every
// anchor record so a restarted tower resumes for-duration counting
// exactly where it stopped (the replay-convergence invariant).
type RuleState struct {
	Consecutive uint64 `json:"consecutive"` // blocks the condition has held
	Firing      bool   `json:"firing"`
}

// ruleEngine evaluates the configured rules once per folded block.
type ruleEngine struct {
	rules []Rule
	state map[string]*RuleState
}

func newRuleEngine(rules []Rule) *ruleEngine {
	e := &ruleEngine{rules: rules, state: map[string]*RuleState{}}
	for _, r := range rules {
		e.state[r.Name] = &RuleState{}
	}
	return e
}

// restore overwrites the engine counters from an anchor snapshot.
func (e *ruleEngine) restore(snap map[string]RuleState) {
	for name, st := range snap {
		if s, ok := e.state[name]; ok {
			*s = st
		}
	}
}

// snapshot copies the counters for the next anchor record.
func (e *ruleEngine) snapshot() map[string]RuleState {
	if len(e.rules) == 0 {
		return nil
	}
	out := make(map[string]RuleState, len(e.state))
	for name, st := range e.state {
		out[name] = *st
	}
	return out
}

// firing counts the rules currently in the firing state.
func (e *ruleEngine) firing() int {
	n := 0
	for _, st := range e.state {
		if st.Firing {
			n++
		}
	}
	return n
}

// compare applies the rule operator.
func (r Rule) compare(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Threshold
	case ">=":
		return v >= r.Threshold
	case "<":
		return v < r.Threshold
	case "<=":
		return v <= r.Threshold
	case "==":
		return v == r.Threshold
	default: // "!="
		return v != r.Threshold
	}
}

// eval advances every rule one block and returns the rules that
// transitioned to firing this block, paired with the signal value that
// tripped them.
func (e *ruleEngine) eval(signals map[string]float64) []firedRule {
	var fired []firedRule
	for _, r := range e.rules {
		st := e.state[r.Name]
		if r.compare(signals[r.Signal]) {
			st.Consecutive++
			need := r.ForBlocks
			if need == 0 {
				need = 1
			}
			if !st.Firing && st.Consecutive >= need {
				st.Firing = true
				fired = append(fired, firedRule{rule: r, value: signals[r.Signal]})
			}
		} else {
			st.Consecutive = 0
			st.Firing = false
		}
	}
	return fired
}

type firedRule struct {
	rule  Rule
	value float64
}
