package watch

import (
	"testing"

	"legalchain/internal/chain"
	"legalchain/internal/contracts"
	"legalchain/internal/ethtypes"
	"legalchain/internal/wallet"
	"legalchain/internal/web3"
)

// rig builds a dev chain with funded accounts and a web3 client over
// it. The blockchain itself is the tower's Source.
func rig(t *testing.T, n int) (*chain.Blockchain, *web3.Client, []wallet.Account) {
	t.Helper()
	accs := wallet.DevAccounts("watch test", n)
	g := chain.DefaultGenesis()
	g.Alloc = wallet.DevAlloc(accs, ethtypes.Ether(1000))
	bc := chain.New(g)
	t.Cleanup(func() { bc.Close() })
	ks := wallet.NewKeystore()
	for _, a := range accs {
		ks.Import(a.Key)
	}
	client, err := web3.NewClient(web3.NewLocalBackend(bc), ks)
	if err != nil {
		t.Fatal(err)
	}
	return bc, client, accs
}

func deployRental(t *testing.T, client *web3.Client, landlord wallet.Account, months uint64) *web3.BoundContract {
	t.Helper()
	art := contracts.MustArtifact("BaseRental")
	c, _, err := client.Deploy(web3.TxOpts{From: landlord.Address}, art.ABI, art.Bytecode,
		ethtypes.Ether(1), ethtypes.Ether(2), months, "10115-Berlin-42")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTowerLifecycle drives one rental through every lifecycle state
// and checks the tower's view after each step.
func TestTowerLifecycle(t *testing.T) {
	bc, client, accs := rig(t, 3)
	landlord, tenant := accs[0], accs[1]

	tower, err := New(bc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tower.Close()

	rental := deployRental(t, client, landlord, 12)
	tower.Sync()
	st := tower.Status()
	if st.Tracked != 1 || st.States[StateDrafted] != 1 {
		t.Fatalf("after deploy: %+v", st)
	}
	cs := st.Contracts[0]
	if cs.Template != "BaseRental" || cs.Months != 12 || cs.RentWei != ethtypes.Ether(1).String() || cs.DepositWei != ethtypes.Ether(2).String() {
		t.Fatalf("terms: %+v", cs)
	}
	if len(cs.Obligations) != 0 {
		t.Fatalf("drafted contract owes nothing, got %+v", cs.Obligations)
	}

	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(2)}, "confirmAgreement"); err != nil {
		t.Fatal(err)
	}
	tower.Sync()
	st = tower.Status()
	if st.States[StateSigned] != 1 {
		t.Fatalf("after confirm: %+v", st.States)
	}
	if len(st.Contracts[0].Obligations) != 1 || st.Contracts[0].Obligations[0].Kind != "rent-due" {
		t.Fatalf("signed contract owes rent, got %+v", st.Contracts[0].Obligations)
	}

	for month := 1; month <= 2; month++ {
		if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1)}, "payRent"); err != nil {
			t.Fatal(err)
		}
	}
	tower.Sync()
	st = tower.Status()
	if st.States[StateActive] != 1 || st.Contracts[0].MonthsPaid != 2 {
		t.Fatalf("after rent: %+v", st.Contracts[0])
	}

	// Link a successor: the original goes modified-pending with a
	// confirm-modification obligation.
	v2 := deployRental(t, client, landlord, 12)
	if _, err := rental.Transact(web3.TxOpts{From: landlord.Address}, "setNext", v2.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Transact(web3.TxOpts{From: landlord.Address}, "setPrev", rental.Address); err != nil {
		t.Fatal(err)
	}
	tower.Sync()
	st = tower.Status()
	if st.States[StateModifiedPending] != 1 {
		t.Fatalf("after link: %+v", st.States)
	}
	var pending *ContractStatus
	for i := range st.Contracts {
		if st.Contracts[i].Address == rental.Address.Hex() {
			pending = &st.Contracts[i]
		}
	}
	if pending == nil || pending.State != StateModifiedPending {
		t.Fatalf("original not pending: %+v", st.Contracts)
	}
	if len(pending.Obligations) != 1 || pending.Obligations[0].Kind != "confirm-modification" {
		t.Fatalf("obligations: %+v", pending.Obligations)
	}

	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address}, "terminateContract"); err != nil {
		t.Fatal(err)
	}
	tower.Sync()
	st = tower.Status()
	if st.States[StateTerminated] != 1 {
		t.Fatalf("after terminate: %+v", st.States)
	}

	// The timeline replays the whole story in order.
	var types []string
	for _, ev := range tower.Timeline(rental.Address) {
		types = append(types, ev.Type)
	}
	want := []string{"created", "signed", "payment", "payment", "modify-pending", "terminated"}
	if len(types) != len(want) {
		t.Fatalf("timeline %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("timeline %v, want %v", types, want)
		}
	}
	// The successor's timeline carries its own creation and link.
	var v2types []string
	for _, ev := range tower.Timeline(v2.Address) {
		v2types = append(v2types, ev.Type)
	}
	if len(v2types) != 2 || v2types[0] != "created" || v2types[1] != "version-linked" {
		t.Fatalf("successor timeline %v", v2types)
	}
	if st.LagBlocks != 0 {
		t.Fatalf("lag %d after sync", st.LagBlocks)
	}
}

// TestTowerIgnoresForeignContracts: non-rental deployments (data
// stores, escrows) and plain transfers never enter the tower.
func TestTowerIgnoresForeignContracts(t *testing.T) {
	bc, client, accs := rig(t, 2)
	tower, err := New(bc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tower.Close()

	art := contracts.MustArtifact("DataStorage")
	if _, _, err := client.Deploy(web3.TxOpts{From: accs[0].Address}, art.ABI, art.Bytecode); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Transfer(web3.TxOpts{From: accs[0].Address, Value: ethtypes.Ether(1)}, accs[1].Address); err != nil {
		t.Fatal(err)
	}
	tower.Sync()
	if st := tower.Status(); st.Tracked != 0 {
		t.Fatalf("tracked %d foreign contracts", st.Tracked)
	}
}

// TestAlertFiresExactlyOnce is the acceptance scenario: a tenant stops
// paying, `overdue > 0 for 2 blocks` fires exactly once, the firing is
// visible in the contract's timeline and the alert history, and the
// rule rearms after the tenant catches up.
func TestAlertFiresExactlyOnce(t *testing.T) {
	bc, client, accs := rig(t, 3)
	landlord, tenant, other := accs[0], accs[1], accs[2]

	rules, err := ParseRules("missed-rent: overdue > 0 for 2 blocks")
	if err != nil {
		t.Fatal(err)
	}
	tower, err := New(bc, Config{RentPeriod: 2, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	defer tower.Close()

	rental := deployRental(t, client, landlord, 12)
	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(2)}, "confirmAgreement"); err != nil {
		t.Fatal(err)
	}
	tower.Sync()
	if st := tower.Status(); st.AlertsTotal != 0 {
		t.Fatalf("premature alert: %+v", st)
	}

	// The tenant goes silent; unrelated transfers keep sealing blocks.
	// Rent was due RentPeriod=2 blocks after signing, so the obligation
	// turns overdue, and after two consecutive overdue blocks the rule
	// must transition to firing — once.
	for i := 0; i < 6; i++ {
		if _, err := client.Transfer(web3.TxOpts{From: other.Address, Value: ethtypes.Ether(1)}, landlord.Address); err != nil {
			t.Fatal(err)
		}
		tower.Sync()
	}
	st := tower.Status()
	if st.Overdue == 0 {
		t.Fatalf("rent not overdue: %+v", st.Contracts[0])
	}
	if st.AlertsTotal != 1 || st.AlertsFiring != 1 {
		t.Fatalf("alerts total=%d firing=%d, want exactly one", st.AlertsTotal, st.AlertsFiring)
	}
	alerts := tower.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != "missed-rent" || alerts[0].Value < 1 {
		t.Fatalf("alert history %+v", alerts)
	}
	found := false
	for _, c := range alerts[0].Contracts {
		if c == rental.Address.Hex() {
			found = true
		}
	}
	if !found {
		t.Fatalf("alert does not implicate the contract: %+v", alerts[0])
	}
	// ... and therefore appears in the contract's timeline.
	sawAlert := false
	for _, ev := range tower.Timeline(rental.Address) {
		if ev.Type == "alert" && ev.Rule == "missed-rent" {
			sawAlert = true
		}
	}
	if !sawAlert {
		t.Fatal("alert missing from timeline")
	}
	// AlertsSince is the SSE read: everything after the last seen seq.
	if got := tower.AlertsSince(alerts[0].Seq); len(got) != 0 {
		t.Fatalf("AlertsSince past the end returned %+v", got)
	}
	if got := tower.AlertsSince(0); len(got) != 1 {
		t.Fatalf("AlertsSince(0) returned %d alerts", len(got))
	}

	// Tenant catches up: the obligation clears and the rule rearms
	// without a second firing.
	if _, err := rental.Transact(web3.TxOpts{From: tenant.Address, Value: ethtypes.Ether(1)}, "payRent"); err != nil {
		t.Fatal(err)
	}
	tower.Sync()
	st = tower.Status()
	if st.AlertsFiring != 0 {
		t.Fatalf("still firing after payment: %+v", st.Rules)
	}
	if st.AlertsTotal != 1 {
		t.Fatalf("re-fired: total %d", st.AlertsTotal)
	}
}

// TestTowerBackgroundLoop exercises Start/Close: the hub-driven path
// must fold without explicit Sync calls.
func TestTowerBackgroundLoop(t *testing.T) {
	bc, client, accs := rig(t, 2)
	tower, err := New(bc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tower.Start()
	defer tower.Close()

	rental := deployRental(t, client, accs[0], 6)
	if _, err := rental.Transact(web3.TxOpts{From: accs[1].Address, Value: ethtypes.Ether(2)}, "confirmAgreement"); err != nil {
		t.Fatal(err)
	}
	// The loop is asynchronous; Sync is the deterministic barrier and is
	// safe concurrently with it.
	tower.Sync()
	st := tower.Status()
	if st.Tracked != 1 || st.States[StateSigned] != 1 {
		t.Fatalf("background fold: %+v", st.States)
	}
}
